// Design-pattern case study (paper §V): the Carleton Pattern
// Repository rebuilt as a U-P2P community — rich metadata queries over
// a distributed pattern catalogue, a custom display stylesheet, and a
// source-code attachment downloaded with the pattern.
//
// Run: go run ./examples/designpatterns
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/transport"
	"repro/internal/xmldoc"
)

// customPatternView is the community designer's stylesheet (§V: "a
// custom stylesheet was required to render this complex object").
const customPatternView = `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:template match="/">
    <article class="pattern">
      <h1><xsl:value-of select="pattern/name"/></h1>
      <p class="meta"><xsl:value-of select="pattern/classification"/> pattern</p>
      <blockquote><xsl:value-of select="pattern/intent"/></blockquote>
      <h2>Participants</h2>
      <ul>
        <xsl:for-each select="pattern/participants">
          <li><xsl:value-of select="."/></li>
        </xsl:for-each>
      </ul>
      <h2>Applicability</h2>
      <p><xsl:value-of select="pattern/applicability"/></p>
    </article>
  </xsl:template>
</xsl:stylesheet>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three researcher peers on a Gnutella overlay: fully distributed,
	// no central index (the repository paper's unimplemented
	// "distributed mesh", realized).
	net := transport.NewMemNetwork()
	var nodes []*p2p.GnutellaNode
	var peers []*core.Servent
	for _, name := range []transport.PeerID{"carleton", "mit", "epfl"} {
		ep, err := net.Endpoint(name)
		if err != nil {
			return err
		}
		st := index.NewStore()
		node := p2p.NewGnutellaNode(ep, st)
		sv, err := core.NewServent(node, st)
		if err != nil {
			return err
		}
		nodes = append(nodes, node)
		peers = append(peers, sv)
	}
	for i := range nodes {
		for j := range nodes {
			if i != j {
				nodes[i].AddNeighbor(nodes[j].PeerID())
			}
		}
	}
	carleton, mit, epfl := peers[0], peers[1], peers[2]

	comm, err := carleton.CreateCommunity(core.CommunitySpec{
		Name:            "designpatterns",
		Description:     "software design patterns with searchable intent, keywords and participants",
		Keywords:        "design patterns gof software engineering",
		Category:        "computer-science",
		Protocol:        "Gnutella",
		SchemaSrc:       corpus.PatternSchemaSrc,
		DisplayStyleSrc: customPatternView,
	})
	if err != nil {
		return err
	}
	fmt.Println("carleton created", comm)

	// The other sites discover and join over the flood.
	for _, peer := range []*core.Servent{mit, epfl} {
		found, err := peer.DiscoverCommunities(query.MustParse("(keywords~=patterns)"), p2p.SearchOptions{TTL: 3})
		if err != nil {
			return err
		}
		if _, err := peer.JoinFromNetwork(found[0]); err != nil {
			return err
		}
	}
	fmt.Println("mit and epfl joined via root-community discovery")

	// Carleton publishes the GoF catalogue; the Observer pattern
	// carries a source-code attachment.
	patterns := corpus.DesignPatterns(corpus.GofCount, 7)
	for _, o := range patterns.Objects {
		var attachments map[string][]byte
		if o.Doc.ChildText("name") == "Observer" {
			uri := core.AttachmentURI("observer", "Observer.java")
			o.Doc.AppendChild(attachURIElement(uri))
			attachments = map[string][]byte{
				uri: []byte("public interface Observer { void update(Subject s); }"),
			}
		}
		if _, err := carleton.Publish(comm.ID, o.Doc, attachments); err != nil {
			return err
		}
	}
	fmt.Printf("carleton published %d patterns\n", corpus.GofCount)

	// MIT runs the rich queries the paper says filename search cannot
	// express (§II: "search not just name but purpose, keywords,
	// applications, etc.").
	queries := []string{
		"(intent~=one-to-many)",
		"(&(classification=behavioral)(keywords=notification))",
		"(participants=Subject)",
		"(|(name~=Factory)(keywords=factory))",
	}
	for _, q := range queries {
		hits, err := mit.Search(comm.ID, query.MustParse(q), p2p.SearchOptions{TTL: 3})
		if err != nil {
			return err
		}
		fmt.Printf("mit query %-55s -> %d hit(s)", q, len(hits))
		if len(hits) > 0 {
			fmt.Printf(" (first: %s, %d hop(s))", hits[0].Title, hits[0].Hops)
		}
		fmt.Println()
	}

	// EPFL downloads Observer — object, attachment and all — and
	// renders it through the custom stylesheet.
	hits, err := epfl.Search(comm.ID, query.MustParse("(name=Observer)"), p2p.SearchOptions{TTL: 3})
	if err != nil {
		return err
	}
	doc, err := epfl.Retrieve(hits[0].DocID, hits[0].Provider)
	if err != nil {
		return err
	}
	code, ok := epfl.Attachment(doc.Attachments[0])
	if !ok {
		return fmt.Errorf("attachment not downloaded")
	}
	fmt.Printf("epfl downloaded Observer with attachment (%d bytes of Java)\n", len(code))
	html, err := epfl.View(doc.ID)
	if err != nil {
		return err
	}
	fmt.Printf("custom stylesheet rendered %d bytes of HTML\n", len(html))

	// Replication: EPFL's download makes it a provider; kill Carleton
	// and the pattern survives.
	nodes[1].RemoveNeighbor(nodes[0].PeerID())
	nodes[2].RemoveNeighbor(nodes[0].PeerID())
	_ = carleton.Close()
	hits, err = mit.Search(comm.ID, query.MustParse("(name=Observer)"), p2p.SearchOptions{TTL: 3})
	if err != nil {
		return err
	}
	fmt.Printf("after carleton left: Observer still found at %d provider(s)\n", len(hits))
	return nil
}

func attachURIElement(uri string) *xmldoc.Node {
	n := xmldoc.NewElement("sourceCode")
	n.AppendChild(xmldoc.NewText(uri))
	return n
}
