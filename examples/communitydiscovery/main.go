// Community discovery (paper §I/§IV.A): "the problem of discovering
// the existence of a community is thus reduced to the problem of
// finding an object."
//
// This example builds a small ecosystem of communities (MP3,
// molecules, species, design patterns) spread across peers, then shows
// a newcomer discovering them all through nothing but root-community
// searches — including filtered discovery ("only science communities")
// and the metaclass analogy made concrete: the community schema (Fig.
// 3) validates every community object in flight.
//
// Run: go run ./examples/communitydiscovery
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/transport"
	"repro/internal/xmldoc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := transport.NewMemNetwork()
	sep, err := net.Endpoint("server")
	if err != nil {
		return err
	}
	p2p.NewIndexServer(sep)
	newPeer := func(name transport.PeerID) (*core.Servent, error) {
		ep, err := net.Endpoint(name)
		if err != nil {
			return nil, err
		}
		st := index.NewStore()
		return core.NewServent(p2p.NewCentralizedClient(ep, "server", st), st)
	}

	// Four founders, each hosting a different community.
	specs := []struct {
		peer     transport.PeerID
		name     string
		keywords string
		category string
		schema   string
	}{
		{"dj", "mp3", "music audio trading", "media", corpus.SongSchemaSrc},
		{"chemist", "molecules", "chemistry cml compounds", "science", corpus.MoleculeSchemaSrc},
		{"biologist", "species", "biodiversity field-guide taxa", "science", corpus.SpeciesSchemaSrc},
		{"engineer", "designpatterns", "software design gof", "computer-science", corpus.PatternSchemaSrc},
	}
	for _, s := range specs {
		peer, err := newPeer(s.peer)
		if err != nil {
			return err
		}
		if _, err := peer.CreateCommunity(core.CommunitySpec{
			Name:      s.name,
			Keywords:  s.keywords,
			Category:  s.category,
			SchemaSrc: s.schema,
		}); err != nil {
			return err
		}
		fmt.Printf("%s founded the %q community\n", s.peer, s.name)
	}

	// A newcomer arrives knowing NOTHING except the root community
	// (which every servent is born into).
	newbie, err := newPeer("newbie")
	if err != nil {
		return err
	}
	fmt.Printf("\nnewbie joins the network; joined communities: %v\n", newbie.Joined())

	// Discovery 1: everything. A community is just an object; this is
	// a plain search in the root community.
	all, err := newbie.DiscoverCommunities(query.MatchAll{}, p2p.SearchOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nroot-community search (*) found %d communities:\n", len(all))
	for _, r := range all {
		fmt.Printf("  - %-16s keywords=%q provider=%s\n", r.Attrs.Get("name"), r.Attrs.Get("keywords"), r.Provider)
	}

	// Discovery 2: filtered, using the community schema's own
	// attributes (Fig. 3's "category" field doing its job).
	science, err := newbie.DiscoverCommunities(query.MustParse("(category=science)"), p2p.SearchOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nfiltered discovery (category=science) found %d:\n", len(science))
	for _, r := range science {
		fmt.Printf("  - %s\n", r.Attrs.Get("name"))
	}

	// The metaclass analogy, concretely: every discovered community
	// object validates against the root community's schema.
	rootSchema := core.RootCommunity().Schema
	for _, r := range all {
		doc, err := newbie.Retrieve(r.DocID, r.Provider)
		if err != nil {
			return err
		}
		obj, err := xmldoc.ParseString(doc.XML)
		if err != nil {
			return err
		}
		if err := rootSchema.Validate(obj); err != nil {
			return fmt.Errorf("community object %s invalid: %w", r.Title, err)
		}
	}
	fmt.Printf("\nall %d community objects validate against the Fig. 3 community schema\n", len(all))

	// Join the science communities and use one immediately.
	for _, r := range science {
		c, err := newbie.JoinFromDocument(mustDoc(newbie, r))
		if err != nil {
			return err
		}
		fmt.Printf("newbie joined %q (schema %d bytes travelled as an attachment)\n", c.Name, len(c.SchemaSrc))
	}

	// Publish a molecule into the freshly joined community to prove
	// the downloaded schema is live.
	var moleculesID string
	for _, id := range newbie.Joined() {
		if c, ok := newbie.Community(id); ok && c.Name == "molecules" {
			moleculesID = id
		}
	}
	mol := corpus.Molecules(1, 1).Objects[0]
	docID, err := newbie.Publish(moleculesID, mol.Doc, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nnewbie published %s into the joined molecules community (%s)\n",
		mol.Doc.ChildText("title"), docID)
	fmt.Println("community discovery example complete")
	return nil
}

// mustDoc fetches the already-retrieved community document from the
// local store (Retrieve above cached it).
func mustDoc(sv *core.Servent, r p2p.Result) *index.Document {
	doc, err := sv.Store().Get(r.DocID)
	if err != nil {
		panic(err)
	}
	return doc
}
