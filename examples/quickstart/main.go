// Quickstart: the whole U-P2P idea in one file.
//
// 1. Describe a shared resource with an XML Schema (no code).
// 2. U-P2P generates the application: create form, search form, view.
// 3. Publish objects, search them by metadata, download from peers.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/transport"
)

// A recipe-sharing community, described purely as data — the paper's
// pitch is that this schema IS the application.
const recipeSchema = `<?xml version="1.0"?>
<schema xmlns="http://www.w3.org/2001/XMLSchema" xmlns:up2p="http://up2p.carleton.ca/ns/community">
 <element name="recipe">
  <complexType>
   <sequence>
    <element name="title" type="xsd:string" up2p:searchable="true"/>
    <element name="cuisine" type="cuisineType" up2p:searchable="true"/>
    <element name="ingredient" type="xsd:string" maxOccurs="unbounded" up2p:searchable="true"/>
    <element name="minutes" type="xsd:integer" up2p:searchable="true"/>
    <element name="instructions" type="xsd:string"/>
   </sequence>
  </complexType>
 </element>
 <simpleType name="cuisineType">
  <restriction base="string">
   <enumeration value="italian"/>
   <enumeration value="japanese"/>
   <enumeration value="mexican"/>
  </restriction>
 </simpleType>
</schema>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two peers and a Napster-style index server on an in-memory
	// network (swap in transport.ListenTCP for real sockets).
	net := transport.NewMemNetwork()
	sep, err := net.Endpoint("server")
	if err != nil {
		return err
	}
	p2p.NewIndexServer(sep)

	newPeer := func(name transport.PeerID) (*core.Servent, error) {
		ep, err := net.Endpoint(name)
		if err != nil {
			return nil, err
		}
		st := index.NewStore()
		return core.NewServent(p2p.NewCentralizedClient(ep, "server", st), st)
	}
	alice, err := newPeer("alice")
	if err != nil {
		return err
	}
	bob, err := newPeer("bob")
	if err != nil {
		return err
	}

	// Alice creates the community from the schema; it is published
	// into the root community so it can be discovered.
	comm, err := alice.CreateCommunity(core.CommunitySpec{
		Name:        "recipes",
		Description: "home cooking recipes with searchable ingredients",
		Keywords:    "food cooking recipes",
		SchemaSrc:   recipeSchema,
	})
	if err != nil {
		return err
	}
	fmt.Println("created", comm)

	// The create form is GENERATED from the schema — print a taste.
	form, err := comm.CreateFormHTML()
	if err != nil {
		return err
	}
	fmt.Printf("generated create form: %d bytes of HTML (one input per schema field)\n", len(form))

	// Alice publishes a recipe through the same path a form submission
	// takes.
	docID, err := alice.CreateFromForm(comm.ID, map[string][]string{
		"title":        {"Cacio e Pepe"},
		"cuisine":      {"italian"},
		"ingredient":   {"spaghetti", "pecorino", "black pepper"},
		"minutes":      {"20"},
		"instructions": {"Cook pasta; emulsify cheese with pasta water and pepper; toss."},
	})
	if err != nil {
		return err
	}
	fmt.Println("alice published", docID)

	// Bob discovers the community by searching the root community —
	// community discovery is just object search.
	found, err := bob.DiscoverCommunities(query.MustParse("(keywords~=cooking)"), p2p.SearchOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("bob discovered %d community(ies): %s\n", len(found), found[0].Title)

	// Joining downloads the community object + schema + stylesheets.
	joined, err := bob.JoinFromNetwork(found[0])
	if err != nil {
		return err
	}
	fmt.Println("bob joined", joined)

	// Bob searches by metadata no filename could carry.
	hits, err := bob.Search(joined.ID, query.MustParse("(&(ingredient=pecorino)(minutes<=30))"), p2p.SearchOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("bob's metadata search found %d recipe(s): %s (provided by %s)\n",
		len(hits), hits[0].Title, hits[0].Provider)

	// Bob downloads the full object and views it through the
	// community's stylesheet.
	if _, err := bob.Retrieve(hits[0].DocID, hits[0].Provider); err != nil {
		return err
	}
	html, err := bob.View(hits[0].DocID)
	if err != nil {
		return err
	}
	fmt.Printf("bob rendered the recipe to %d bytes of HTML via the view stylesheet\n", len(html))
	fmt.Println("quickstart complete")
	return nil
}
