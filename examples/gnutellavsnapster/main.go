// Protocol independence (paper §VI): the same U-P2P workload — create
// a community, publish MP3 objects, run metadata searches — executed
// twice, over a Napster-style centralized index and over a Gnutella
// flood, with zero changes to the application code. The example prints
// result parity and the message-cost difference between the two.
//
// Run: go run ./examples/gnutellavsnapster
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/sim"
)

const peers = 10

var searches = []string{
	"(genre=jazz)",
	"(artist~=miles)",
	"(&(genre=rock)(year>=1970))",
	"(title~=blue)",
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// workload runs the identical application logic over any protocol and
// reports sorted result titles and message counts per query.
func workload(proto sim.Protocol) (map[string][]string, map[string]int64, error) {
	titles := map[string][]string{}
	msgs := map[string]int64{}
	c, err := sim.NewCluster(sim.Config{Peers: peers, Protocol: proto, Degree: 4, Seed: 99})
	if err != nil {
		return nil, nil, err
	}
	comm, err := c.SeedCommunity(0, core.CommunitySpec{
		Name:      "mp3",
		Keywords:  "music trading",
		Protocol:  protoName(proto),
		SchemaSrc: corpus.SongSchemaSrc,
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := c.DiscoverAndJoinAll("mp3", peers); err != nil {
		return nil, nil, err
	}
	if _, err := c.PublishRoundRobin(comm.ID, corpus.Songs(80, 99).Objects); err != nil {
		return nil, nil, err
	}
	for _, q := range searches {
		before := c.Metrics()
		rs, err := c.SearchFrom(peers/2, comm.ID, query.MustParse(q), p2p.SearchOptions{TTL: 7})
		if err != nil {
			return nil, nil, err
		}
		ts := make([]string, 0, len(rs))
		for _, r := range rs {
			ts = append(ts, r.Title)
		}
		sort.Strings(ts)
		titles[q] = ts
		msgs[q] = c.Metrics().Delta(before).Counter("transport.msgs_delivered")
	}
	return titles, msgs, nil
}

func protoName(p sim.Protocol) string {
	if p == sim.Centralized {
		return "Napster"
	}
	return "Gnutella"
}

func run() error {
	fmt.Printf("running identical workload over both protocols (%d peers, 80 songs)\n\n", peers)
	nTitles, nMsgs, err := workload(sim.Centralized)
	if err != nil {
		return err
	}
	gTitles, gMsgs, err := workload(sim.Gnutella)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s %8s %8s %9s %8s %8s\n", "query", "nap hits", "gnu hits", "identical", "nap msg", "gnu msg")
	for _, q := range searches {
		same := "yes"
		if strings.Join(nTitles[q], "|") != strings.Join(gTitles[q], "|") {
			same = "NO"
		}
		fmt.Printf("%-34s %8d %8d %9s %8d %8d\n",
			q, len(nTitles[q]), len(gTitles[q]), same, nMsgs[q], gMsgs[q])
	}
	fmt.Println("\nsame application code, same results; only the message bill differs —")
	fmt.Println("the generic create/search/retrieve interface of §VI, demonstrated.")
	return nil
}
