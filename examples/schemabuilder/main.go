// Schema-builder tool (paper §VI future work): "We have also created a
// web-based tool for generating XML Schema. The benefits of
// integrating this with U-P2P will be to hide the underlying XML
// completely from the user."
//
// This example is that integration: a community founder writes a plain
// field list — never XML — and gets a complete community: generated
// schema, generated forms, working metadata search.
//
// Run: go run ./examples/schemabuilder
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/schemagen"
	"repro/internal/transport"
)

// fieldSpec is everything the founder writes. No XML anywhere.
const fieldSpec = `
# a community for sharing board game designs
boardgame
title       string                         searchable
designer    string                         searchable repeated
mechanism   enum(deckbuilding,worker-placement,auction,coop)  searchable
players     integer                        searchable
minutes     integer                        optional searchable
rulebook    anyURI                         optional attachment
notes       string                         optional
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The tool turns the plain spec into an XML Schema.
	schemaSrc, err := schemagen.GenerateFromText(fieldSpec)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d bytes of XML Schema from %d lines of plain text\n",
		len(schemaSrc), len(strings.Split(strings.TrimSpace(fieldSpec), "\n")))

	// One peer network is enough to show the generated community
	// working end to end.
	net := transport.NewMemNetwork()
	sep, err := net.Endpoint("server")
	if err != nil {
		return err
	}
	p2p.NewIndexServer(sep)
	ep, err := net.Endpoint("founder")
	if err != nil {
		return err
	}
	st := index.NewStore()
	founder, err := core.NewServent(p2p.NewCentralizedClient(ep, "server", st), st)
	if err != nil {
		return err
	}

	comm, err := founder.CreateCommunity(core.CommunitySpec{
		Name:        "boardgames",
		Description: "board game designs with searchable mechanisms",
		Keywords:    "games tabletop design",
		SchemaSrc:   schemaSrc,
	})
	if err != nil {
		return err
	}
	fmt.Println("created", comm)

	// The generated schema drives the generated forms.
	form, err := comm.CreateFormHTML()
	if err != nil {
		return err
	}
	fmt.Printf("create form: %d bytes; mechanism renders as a dropdown: %v\n",
		len(form), strings.Contains(form, `<select name="mechanism"`))

	// Publish through the form path, search by the declared metadata.
	games := []map[string][]string{
		{"title": {"Dominion"}, "designer": {"Donald X. Vaccarino"}, "mechanism": {"deckbuilding"}, "players": {"4"}, "minutes": {"30"}},
		{"title": {"Agricola"}, "designer": {"Uwe Rosenberg"}, "mechanism": {"worker-placement"}, "players": {"4"}, "minutes": {"90"}},
		{"title": {"Ra"}, "designer": {"Reiner Knizia"}, "mechanism": {"auction"}, "players": {"5"}, "minutes": {"60"}},
		{"title": {"Pandemic"}, "designer": {"Matt Leacock"}, "mechanism": {"coop"}, "players": {"4"}, "minutes": {"45"}},
	}
	for _, g := range games {
		if _, err := founder.CreateFromForm(comm.ID, g); err != nil {
			return err
		}
	}
	fmt.Printf("published %d games through the generated create form\n", len(games))

	queries := []string{
		"(mechanism=worker-placement)",
		"(&(players>=4)(minutes<=45))",
		"(designer~=knizia)",
	}
	for _, q := range queries {
		rs, err := founder.Search(comm.ID, query.MustParse(q), p2p.SearchOptions{})
		if err != nil {
			return err
		}
		titles := make([]string, 0, len(rs))
		for _, r := range rs {
			titles = append(titles, r.Title)
		}
		fmt.Printf("query %-28s -> %v\n", q, titles)
	}
	fmt.Println("schema builder example complete — no XML was written by hand")
	return nil
}
