# Development and CI entry points. CI (.github/workflows/ci.yml) runs
# exactly these targets, so a green `make ci` locally means a green PR.

GO ?= go

.PHONY: build test race fmt vet bench-smoke determinism sim-smoke hotspot-smoke ops-smoke crash-smoke trace-smoke profile-smoke scale-smoke tcp-nightly ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-sensitive internal packages (the sharded
# store and everything that drives it).
race:
	$(GO) test -race ./internal/...

# Fail when any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Compile-and-run every benchmark once so they cannot rot, plus
# reduced-scale runs of E13 (the flooding-vs-DHT scaling comparison
# must keep producing both columns) and E18 (the WAL overhead and
# recovery measurements must keep completing).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/up2pbench -run E13 -e13-max-peers 100
	$(GO) run ./cmd/up2pbench -run E18 -wal-docs 40 -wal-recovery-batches 20,60

# Determinism gate: the golden-trace tests must produce identical
# message-trace hashes on repeated in-process runs (catches map-order
# leaks, global counters, unseeded randomness). Covers all four
# protocols, including the DHT (replication, expiry, refresh).
determinism:
	$(GO) test ./internal/sim -run Golden -count=2

# Scenario experiments at reduced scale: prove the discrete-event
# engine end to end (churn, latency model, recall accounting) in CI,
# on the flooding protocols (E10) and the DHT overlay (E14).
sim-smoke:
	$(GO) run ./cmd/up2pbench -run E10 -scn-peers 150 -scn-queries 50
	$(GO) run ./cmd/up2pbench -run E14 -scn-peers 120 -scn-queries 40

# Hotspot smoke: the reduced flash-crowd scenario (100-peer DHT, one
# bursted community filter) must show the caching STORE at least
# halving the hottest holder's burst load with full recall, and the
# cache-enabled run must stay deterministic (-count=2).
hotspot-smoke:
	$(GO) test ./internal/sim -run FlashCrowd -count=2

# Ops-surface smoke: boot up2pd, curl /metrics (both formats) and
# /healthz, and assert the output is well-formed (needs curl + jq).
ops-smoke:
	$(GO) build -o /tmp/up2pd-ops-smoke ./cmd/up2pd
	sh scripts/ops_smoke.sh /tmp/up2pd-ops-smoke

# Tracing smoke: boot up2pd with full trace sampling, issue a traced
# query through the web search path, and assert /debug/traces serves a
# well-formed span tree (needs curl + jq).
trace-smoke:
	$(GO) build -o /tmp/up2pd-trace-smoke ./cmd/up2pd
	sh scripts/trace_smoke.sh /tmp/up2pd-trace-smoke

# Profiling smoke: boot up2pd with -debug-addr, pull a heap profile
# off the pprof listener, and assert the public ops address does not
# expose it (needs curl).
profile-smoke:
	$(GO) build -o /tmp/up2pd-profile-smoke ./cmd/up2pd
	sh scripts/profile_smoke.sh /tmp/up2pd-profile-smoke

# Scale gate: a ~5k-peer DHT deployment under churn on the virtual
# clock must finish inside its wall-clock budget with full recall —
# the canary for scale regressions (an accidental O(n^2) in the event
# engine, a per-message allocation creeping back).
scale-smoke:
	UP2P_SCALE_SMOKE=1 $(GO) test ./internal/sim -run ScaleSmoke -v -timeout 15m

# Nightly socket truth: the E10/E14 churn scenarios scaled down and
# replayed over real TCP sockets (framing, dialing, concurrent read
# loops, dead-peer errors). Scheduled in CI; not part of `make ci`.
tcp-nightly:
	UP2P_TCP_NIGHTLY=1 $(GO) test ./internal/sim -run TCPNightly -v -count=1

# Durability gate: the kill-at-random-offset and recovery tests under
# the race detector. Catches both torn-log regressions and data races
# on the WAL append path.
crash-smoke:
	$(GO) test -race -count=1 -run 'WAL|Crash|Poisoned|ConsistentCut|CorruptMiddle' ./internal/index ./internal/core

ci: build fmt vet test race bench-smoke determinism sim-smoke hotspot-smoke ops-smoke trace-smoke profile-smoke crash-smoke scale-smoke
