// Command up2pd runs a U-P2P servent: a web interface (§IV.B) over a
// P2P node speaking the centralized (Napster-style), Gnutella,
// FastTrack super-peer, or Kademlia DHT protocol, over real TCP.
//
// Configuration is flags with UP2P_* environment-variable fallbacks
// (flag > env > default; see LoadConfig). Every mode serves an ops
// surface on the HTTP address: /metrics (Prometheus text, or
// expvar-style JSON with ?format=json), /healthz, and /debug/traces
// (recent and slowest query span trees once -trace-sample is set).
// -debug-addr additionally serves net/http/pprof on a separate,
// operator-only listener. Logging is structured (log/slog) with
// -log-format text|json and -log-level.
//
// Topology bootstrapping:
//
//	# start a centralized index server
//	up2pd -mode indexserver -p2p 127.0.0.1:7001 -http 127.0.0.1:8080
//
//	# start a servent against it
//	up2pd -mode centralized -p2p 127.0.0.1:7002 -server 127.0.0.1:7001 -http 127.0.0.1:8081
//
//	# or a Gnutella servent with bootstrap neighbors
//	up2pd -mode gnutella -p2p 127.0.0.1:7002 -neighbors 127.0.0.1:7003,127.0.0.1:7004 -http 127.0.0.1:8081
//
//	# or a Kademlia DHT servent joining via bootstrap contacts
//	UP2P_MODE=dht UP2P_P2P=127.0.0.1:7002 UP2P_NEIGHBORS=127.0.0.1:7003 up2pd -http 127.0.0.1:8081
//
// Optionally pre-seed a demo community: -seed designpatterns|mp3|cml|species.
package main

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dht"
	"repro/internal/errs"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/servent"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "up2pd:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg, err := LoadConfig(os.Args[1:], os.Getenv)
	if err != nil {
		return err
	}
	logger := cfg.Logger(os.Stderr)
	slog.SetDefault(logger)

	// One registry for the whole daemon: transport, protocol node,
	// store, and error telemetry aggregate here and are served on
	// /metrics.
	reg := metrics.NewRegistry()
	start := time.Now()

	node, err := transport.ListenTCP(cfg.P2PAddr)
	if err != nil {
		return err
	}
	node.SetMetrics(reg)
	logger.Info("p2p listening", "peer", string(node.ID()), "mode", cfg.Mode)

	// Tracing: one tracer for the whole daemon, sampled at the
	// configured rate; the collector behind /debug/traces assembles
	// this node's spans (trees rooted elsewhere show as partial).
	// With -trace-sample 0 the tracer stays nil — the zero-allocation
	// disabled state — and /debug/traces just serves zero traces.
	collector := trace.NewCollector()
	var tracer *trace.Tracer
	if cfg.TraceSample > 0 {
		tracer = trace.New(string(node.ID()), cfg.Mode, trace.WithSampling(cfg.TraceSample))
		collector.Attach(tracer)
		logger.Info("tracing enabled", "sample", cfg.TraceSample)
	}

	// pprof rides its own listener so profiling is never exposed on
	// the public web/ops address.
	if cfg.DebugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(cfg.DebugAddr, dbg); err != nil {
				logger.Error("debug listener failed", "addr", cfg.DebugAddr, "err", err)
			}
		}()
		logger.Info("pprof debug surface", "addr", cfg.DebugAddr)
	}

	base := func() health {
		return health{Status: "ok", Mode: cfg.Mode, Peer: string(node.ID()), Uptime: uptimeSince(start)}
	}
	var (
		app      http.Handler
		healthFn func() health
		cleanup  func() error
	)

	switch cfg.Mode {
	case "indexserver":
		store, err := openStore(cfg, reg, logger)
		if err != nil {
			return err
		}
		is := p2p.NewIndexServerOn(node, store)
		is.SetTracer(tracer)
		healthFn = func() health {
			h := base()
			h.Docs = is.Len()
			return h
		}
		cleanup = func() error {
			err := node.Close()
			// Clean shutdown folds the WAL into one snapshot (no-op
			// without -wal).
			if cerr := store.Close(); err == nil {
				err = cerr
			}
			return err
		}
	case "superpeer":
		sp := p2p.NewSuperPeer(node)
		sp.SetTracer(tracer)
		for _, n := range cfg.Neighbors {
			sp.AddNeighbor(transport.PeerID(n))
		}
		healthFn = func() health {
			h := base()
			h.LivePeers = len(sp.Neighbors())
			h.Docs = sp.Len()
			return h
		}
		cleanup = sp.Close
	default:
		sv, hf, err := buildServent(cfg, node, reg, tracer, logger, base)
		if err != nil {
			return err
		}
		if cfg.StateDir != "" {
			defer func() {
				if err := saveState(sv, cfg, logger); err != nil {
					logger.Error("save state failed", "dir", cfg.StateDir, "err", err, "code", errs.Code(err))
				}
			}()
		}
		app = servent.New(sv)
		healthFn = hf
		cleanup = func() error {
			err := sv.Close()
			// Clean shutdown folds the WAL into one snapshot (no-op
			// without -wal).
			if cerr := sv.Store().Close(); err == nil {
				err = cerr
			}
			return err
		}
		logger.Info("web interface up", "url", "http://"+cfg.HTTPAddr+"/")
	}

	logger.Info("ops surface up", "addr", cfg.HTTPAddr,
		"endpoints", "/metrics /healthz /debug/traces")
	srv := &http.Server{Addr: cfg.HTTPAddr, Handler: opsMux(reg, healthFn, trace.Handler(collector), app)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	// SIGTERM is what systemd and docker send on stop; missing it
	// (the old os.Interrupt-only Notify) skipped the state save.
	intc := make(chan os.Signal, 1)
	signal.Notify(intc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		_ = cleanup()
		return err
	case <-intc:
		logger.Info("shutting down")
		_ = srv.Close()
		return cleanup()
	}
}

// buildServent wires a servent-mode P2P node (centralized, gnutella,
// fasttrack, dht) onto the shared registry and tracer, and returns it
// with its mode-specific health callback.
func buildServent(cfg Config, node *transport.TCPNode, reg *metrics.Registry, tracer *trace.Tracer, logger *slog.Logger, base func() health) (*core.Servent, func() health, error) {
	store, err := openStore(cfg, reg, logger)
	if err != nil {
		return nil, nil, err
	}
	var network p2p.Network
	var healthFn func() health
	switch cfg.Mode {
	case "centralized":
		client := p2p.NewCentralizedClient(node, transport.PeerID(cfg.Server), store)
		client.SetMetrics(reg)
		client.SetTracer(tracer)
		network = client
		healthFn = func() health {
			h := base()
			h.Server = string(client.Server())
			h.LivePeers = 1
			h.Docs = store.Len()
			return h
		}
	case "fasttrack":
		leaf := p2p.NewFastTrackLeaf(node, transport.PeerID(cfg.Server), store)
		leaf.SetMetrics(reg)
		leaf.SetTracer(tracer)
		network = leaf
		healthFn = func() health {
			h := base()
			h.Server = string(leaf.Server())
			h.LivePeers = 1
			h.Docs = store.Len()
			return h
		}
	case "gnutella":
		g := p2p.NewGnutellaNode(node, store)
		g.SetMetrics(reg)
		g.SetTracer(tracer)
		for _, n := range cfg.Neighbors {
			g.AddNeighbor(transport.PeerID(n))
		}
		// Grow the overlay beyond the bootstrap list via Ping/Pong.
		if found := g.Discover(3); len(found) > 0 {
			logger.Info("discovered peers via ping/pong", "count", len(found))
		}
		network = g
		healthFn = func() health {
			h := base()
			h.LivePeers = len(g.Neighbors())
			h.Docs = store.Len()
			return h
		}
	case "dht":
		d := dht.NewNode(node, store, dht.Config{CacheRecords: cfg.DHTCache})
		d.SetMetrics(reg)
		d.SetTracer(tracer)
		var boot []transport.PeerID
		for _, n := range cfg.Neighbors {
			boot = append(boot, transport.PeerID(n))
		}
		// The Kademlia join (self-lookup off the bootstrap contacts)
		// populates the routing table before the servent starts.
		d.Bootstrap(boot...)
		logger.Info("dht joined", "bootstrap_contacts", len(boot), "routing_contacts", d.TableLen())
		// Periodic maintenance: without it every record this daemon
		// publishes would expire at RecordTTL and dead contacts would
		// linger. The simulator paces this on the virtual clock
		// (DHTRefreshEvery); a real daemon paces it on the wall clock,
		// refreshing at half the TTL so records never lapse.
		go func() {
			tick := time.NewTicker(dht.DefaultRecordTTL / 2)
			defer tick.Stop()
			for range tick.C {
				if err := d.Refresh(); err != nil {
					return // node closed
				}
			}
		}()
		network = d
		healthFn = func() health {
			h := base()
			h.LivePeers = d.TableLen()
			h.Docs = store.Len()
			h.DHTRecords = d.RecordCount()
			return h
		}
	default:
		return nil, nil, fmt.Errorf("unknown mode %q", cfg.Mode)
	}

	sv, err := core.NewServent(network, store)
	if err != nil {
		return nil, nil, err
	}
	// The servent roots a trace per web-interface search and logs
	// failed searches with their errs code and trace ID.
	sv.SetTracer(tracer)
	sv.SetLogger(logger)
	if cfg.StateDir != "" {
		if err := loadState(sv, cfg, logger); err != nil {
			return nil, nil, err
		}
	}
	if cfg.Seed != "" {
		if err := seedCommunity(sv, cfg.Seed, cfg.SeedN); err != nil {
			return nil, nil, err
		}
		logger.Info("seeded demo community", "community", cfg.Seed, "objects", cfg.SeedN)
	}
	return sv, healthFn, nil
}

func seedCommunity(sv *core.Servent, name string, n int) error {
	c, err := corpus.ByName(name, n, 1)
	if err != nil {
		return err
	}
	comm, err := sv.CreateCommunity(core.CommunitySpec{
		Name:        name,
		Description: "seeded demo community",
		Keywords:    name,
		SchemaSrc:   c.SchemaSrc,
	})
	if err != nil {
		return err
	}
	for _, o := range c.Objects {
		if _, err := sv.Publish(comm.ID, o.Doc, nil); err != nil {
			return err
		}
	}
	return nil
}

// openStore builds the daemon's metadata store: WAL-backed (crash
// recovery runs inside OpenStore) when -wal is set, plain in-memory
// otherwise.
func openStore(cfg Config, reg *metrics.Registry, logger *slog.Logger) (*index.Store, error) {
	opts := []index.Option{index.WithMetrics(reg), index.WithLogger(logger)}
	if cfg.WAL {
		policy, err := index.ParseFsyncPolicy(cfg.Fsync)
		if err != nil {
			return nil, err
		}
		dir := walDir(cfg)
		opts = append(opts, index.WithWAL(dir), index.WithWALFsync(policy))
		store, err := index.OpenStore(opts...)
		if err != nil {
			return nil, err
		}
		logger.Info("wal open", "dir", dir, "fsync", string(policy), "objects_recovered", store.Len())
		return store, nil
	}
	return index.NewStore(opts...), nil
}

// walDir is where the store's log and compacted snapshot live.
func walDir(cfg Config) string { return filepath.Join(cfg.StateDir, "wal") }

// loadState restores servent state and store from the state directory
// when snapshots exist; a fresh directory is not an error. With the
// WAL enabled the store was already recovered by openStore, so only
// the servent state file is read; either way restored objects are
// re-announced to the network.
func loadState(sv *core.Servent, cfg Config, logger *slog.Logger) error {
	stateFile := filepath.Join(cfg.StateDir, "servent.json")
	if f, err := os.Open(stateFile); err == nil {
		defer f.Close()
		if err := sv.LoadState(f); err != nil {
			return err
		}
		logger.Info("restored servent state", "file", stateFile)
	}
	if !cfg.WAL {
		storeFile := filepath.Join(cfg.StateDir, "store.json")
		if f, err := os.Open(storeFile); err == nil {
			defer f.Close()
			if err := sv.Store().Load(f); err != nil {
				return err
			}
			logger.Info("restored store snapshot", "file", storeFile, "objects", sv.Store().Len())
		}
	}
	// Re-announce restored objects (from store.json or WAL recovery).
	for _, communityID := range sv.Store().Communities() {
		for _, d := range sv.SearchLocal(communityID, query.MatchAll{}, 0) {
			if err := sv.Network().Publish(d); err != nil {
				return err
			}
		}
	}
	return nil
}

// saveState writes servent state (and, without a WAL, the store
// snapshot) into the state directory. A WAL-backed store persists
// through Close instead: clean shutdown compacts the log.
func saveState(sv *core.Servent, cfg Config, logger *slog.Logger) error {
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return err
	}
	write := func(name string, save func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(cfg.StateDir, name))
		if err != nil {
			return err
		}
		if err := save(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("servent.json", sv.SaveState); err != nil {
		return err
	}
	if !cfg.WAL {
		if err := write("store.json", sv.Store().Save); err != nil {
			return err
		}
	}
	logger.Info("saved state", "dir", cfg.StateDir)
	return nil
}
