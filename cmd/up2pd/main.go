// Command up2pd runs a U-P2P servent: a web interface (§IV.B) over a
// P2P node speaking the centralized (Napster-style), Gnutella,
// FastTrack super-peer, or Kademlia DHT protocol, over real TCP.
//
// Topology bootstrapping:
//
//	# start a centralized index server
//	up2pd -mode indexserver -p2p 127.0.0.1:7001
//
//	# start a servent against it
//	up2pd -mode centralized -p2p 127.0.0.1:7002 -server 127.0.0.1:7001 -http 127.0.0.1:8081
//
//	# or a Gnutella servent with bootstrap neighbors
//	up2pd -mode gnutella -p2p 127.0.0.1:7002 -neighbors 127.0.0.1:7003,127.0.0.1:7004 -http 127.0.0.1:8081
//
//	# or a Kademlia DHT servent joining via bootstrap contacts
//	up2pd -mode dht -p2p 127.0.0.1:7002 -neighbors 127.0.0.1:7003 -http 127.0.0.1:8081
//
// Optionally pre-seed a demo community: -seed designpatterns|mp3|cml|species.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dht"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/servent"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "up2pd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode      = flag.String("mode", "centralized", "indexserver | superpeer | centralized | gnutella | fasttrack | dht")
		p2pAddr   = flag.String("p2p", "127.0.0.1:7001", "TCP address for the P2P layer")
		httpAddr  = flag.String("http", "127.0.0.1:8080", "HTTP address for the web interface")
		server    = flag.String("server", "", "index server / super-peer address (centralized, fasttrack modes)")
		neighbors = flag.String("neighbors", "", "comma-separated neighbors (gnutella nodes, super-peer overlay)")
		seed      = flag.String("seed", "", "pre-seed a demo community: designpatterns|mp3|cml|species")
		seedN     = flag.Int("seedn", 23, "number of seeded objects")
		stateDir  = flag.String("state", "", "directory for persistent state (loaded at start, saved on shutdown)")
	)
	flag.Parse()

	node, err := transport.ListenTCP(*p2pAddr)
	if err != nil {
		return err
	}
	log.Printf("p2p listening on %s", node.ID())

	switch *mode {
	case "indexserver":
		p2p.NewIndexServer(node)
		log.Printf("index server running; Ctrl-C to stop")
		waitForInterrupt()
		return node.Close()
	case "superpeer":
		sp := p2p.NewSuperPeer(node)
		for _, n := range strings.Split(*neighbors, ",") {
			if n = strings.TrimSpace(n); n != "" {
				sp.AddNeighbor(transport.PeerID(n))
			}
		}
		log.Printf("super-peer running; Ctrl-C to stop")
		waitForInterrupt()
		return sp.Close()
	}

	store := index.NewStore()
	var network p2p.Network
	switch *mode {
	case "centralized":
		if *server == "" {
			return fmt.Errorf("centralized mode requires -server")
		}
		network = p2p.NewCentralizedClient(node, transport.PeerID(*server), store)
	case "fasttrack":
		if *server == "" {
			return fmt.Errorf("fasttrack mode requires -server (the super-peer)")
		}
		network = p2p.NewFastTrackLeaf(node, transport.PeerID(*server), store)
	case "gnutella":
		g := p2p.NewGnutellaNode(node, store)
		for _, n := range strings.Split(*neighbors, ",") {
			if n = strings.TrimSpace(n); n != "" {
				g.AddNeighbor(transport.PeerID(n))
			}
		}
		// Grow the overlay beyond the bootstrap list via Ping/Pong.
		if found := g.Discover(3); len(found) > 0 {
			log.Printf("discovered %d additional peers via ping/pong", len(found))
		}
		network = g
	case "dht":
		d := dht.NewNode(node, store, dht.Config{})
		var boot []transport.PeerID
		for _, n := range strings.Split(*neighbors, ",") {
			if n = strings.TrimSpace(n); n != "" {
				boot = append(boot, transport.PeerID(n))
			}
		}
		// The Kademlia join (self-lookup off the bootstrap contacts)
		// populates the routing table before the servent starts.
		d.Bootstrap(boot...)
		log.Printf("dht joined via %d bootstrap contacts; %d routing contacts", len(boot), d.TableLen())
		// Periodic maintenance: without it every record this daemon
		// publishes would expire at RecordTTL and dead contacts would
		// linger. The simulator paces this on the virtual clock
		// (DHTRefreshEvery); a real daemon paces it on the wall clock,
		// refreshing at half the TTL so records never lapse.
		go func() {
			tick := time.NewTicker(dht.DefaultRecordTTL / 2)
			defer tick.Stop()
			for range tick.C {
				if err := d.Refresh(); err != nil {
					return // node closed
				}
			}
		}()
		network = d
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	sv, err := core.NewServent(network, store)
	if err != nil {
		return err
	}
	if *stateDir != "" {
		if err := loadState(sv, *stateDir); err != nil {
			return err
		}
		defer func() {
			if err := saveState(sv, *stateDir); err != nil {
				log.Printf("save state: %v", err)
			}
		}()
	}
	if *seed != "" {
		if err := seedCommunity(sv, *seed, *seedN); err != nil {
			return err
		}
		log.Printf("seeded %d %s objects", *seedN, *seed)
	}

	h := servent.New(sv)
	log.Printf("web interface on http://%s/", *httpAddr)
	srv := &http.Server{Addr: *httpAddr, Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	intc := make(chan os.Signal, 1)
	signal.Notify(intc, os.Interrupt)
	select {
	case err := <-errc:
		return err
	case <-intc:
		log.Printf("shutting down")
		_ = srv.Close()
		return sv.Close()
	}
}

func seedCommunity(sv *core.Servent, name string, n int) error {
	c, err := corpus.ByName(name, n, 1)
	if err != nil {
		return err
	}
	comm, err := sv.CreateCommunity(core.CommunitySpec{
		Name:        name,
		Description: "seeded demo community",
		Keywords:    name,
		SchemaSrc:   c.SchemaSrc,
	})
	if err != nil {
		return err
	}
	for _, o := range c.Objects {
		if _, err := sv.Publish(comm.ID, o.Doc, nil); err != nil {
			return err
		}
	}
	return nil
}

func waitForInterrupt() {
	intc := make(chan os.Signal, 1)
	signal.Notify(intc, os.Interrupt)
	<-intc
}

// loadState restores servent state and store from dir when the
// snapshot files exist; a fresh directory is not an error.
func loadState(sv *core.Servent, dir string) error {
	stateFile := filepath.Join(dir, "servent.json")
	if f, err := os.Open(stateFile); err == nil {
		defer f.Close()
		if err := sv.LoadState(f); err != nil {
			return err
		}
		log.Printf("restored servent state from %s", stateFile)
	}
	storeFile := filepath.Join(dir, "store.json")
	if f, err := os.Open(storeFile); err == nil {
		defer f.Close()
		if err := sv.Store().Load(f); err != nil {
			return err
		}
		// Re-announce restored objects.
		for _, communityID := range sv.Store().Communities() {
			for _, d := range sv.SearchLocal(communityID, query.MatchAll{}, 0) {
				if err := sv.Network().Publish(d); err != nil {
					return err
				}
			}
		}
		log.Printf("restored %d objects from %s", sv.Store().Len(), storeFile)
	}
	return nil
}

// saveState writes servent state and store snapshots into dir.
func saveState(sv *core.Servent, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, save func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := save(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("servent.json", sv.SaveState); err != nil {
		return err
	}
	if err := write("store.json", sv.Store().Save); err != nil {
		return err
	}
	log.Printf("saved state to %s", dir)
	return nil
}
