package main

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/metrics"
)

// health is the /healthz payload: enough for an operator (or a
// readiness probe) to see what the daemon is, who it talks to, and how
// much it holds, without scraping the full metrics surface.
type health struct {
	Status string `json:"status"`
	Mode   string `json:"mode"`
	// Peer is this daemon's P2P identity (the transport address).
	Peer   string `json:"peer"`
	Uptime string `json:"uptime"`
	// LivePeers counts known overlay contacts: routing-table entries
	// for dht (liveness-maintained by eviction), neighbors for
	// gnutella/superpeer, the one upstream server for
	// centralized/fasttrack.
	LivePeers int `json:"live_peers"`
	// Server is the upstream index server / super-peer, when the mode
	// has one.
	Server string `json:"server,omitempty"`
	// Docs is the local store size: objects shared by a servent,
	// registrations indexed by an indexserver/superpeer.
	Docs int `json:"docs"`
	// DHTRecords is the count of unexpired DHT records this node holds
	// for the overlay (dht mode only).
	DHTRecords int `json:"dht_records,omitempty"`
}

// opsMux mounts the ops surface — /metrics (Prometheus text, or
// expvar-style JSON with ?format=json), /healthz, and /debug/traces
// (query span trees; see internal/trace) — and delegates everything
// else to app when the mode has a web interface.
func opsMux(reg *metrics.Registry, healthFn func() health, traces http.Handler, app http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.Handle("/debug/traces", traces)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(healthFn())
	})
	if app != nil {
		mux.Handle("/", app)
	}
	return mux
}

// uptimeSince formats the daemon's age for the health payload.
func uptimeSince(start time.Time) string {
	return time.Since(start).Round(time.Second).String()
}
