package main

import (
	"strings"
	"testing"
)

func envMap(m map[string]string) func(string) string {
	return func(k string) string { return m[k] }
}

func TestLoadConfigDefaults(t *testing.T) {
	cfg, err := LoadConfig([]string{"-server", "127.0.0.1:7009"}, envMap(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != "centralized" || cfg.P2PAddr != "127.0.0.1:7001" || cfg.SeedN != 23 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

func TestLoadConfigDefaultCentralizedRequiresServer(t *testing.T) {
	// The default mode is centralized, which requires a server.
	_, err := LoadConfig(nil, envMap(nil))
	if err == nil || !strings.Contains(err.Error(), "requires -server") {
		t.Fatalf("want missing-server error, got %v", err)
	}
}

func TestLoadConfigEnvFallback(t *testing.T) {
	env := envMap(map[string]string{
		"UP2P_MODE":      "dht",
		"UP2P_P2P":       "10.0.0.1:9000",
		"UP2P_NEIGHBORS": "a:1, b:2 ,",
		"UP2P_SEEDN":     "7",
	})
	cfg, err := LoadConfig(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != "dht" || cfg.P2PAddr != "10.0.0.1:9000" || cfg.SeedN != 7 {
		t.Fatalf("env fallbacks not applied: %+v", cfg)
	}
	if len(cfg.Neighbors) != 2 || cfg.Neighbors[0] != "a:1" || cfg.Neighbors[1] != "b:2" {
		t.Fatalf("neighbors not split/trimmed: %q", cfg.Neighbors)
	}
}

func TestLoadConfigFlagBeatsEnv(t *testing.T) {
	env := envMap(map[string]string{"UP2P_MODE": "dht", "UP2P_HTTP": "1.2.3.4:80"})
	cfg, err := LoadConfig([]string{"-mode", "gnutella"}, env)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != "gnutella" {
		t.Fatalf("flag should beat env, got mode %q", cfg.Mode)
	}
	if cfg.HTTPAddr != "1.2.3.4:80" {
		t.Fatalf("untouched flag should fall back to env, got http %q", cfg.HTTPAddr)
	}
}

func TestLoadConfigRejects(t *testing.T) {
	cases := [][]string{
		{"-mode", "napster"},                 // unknown mode
		{"-mode", "gnutella", "-http", ""},   // ops surface is mandatory
		{"-mode", "gnutella", "-seedn", "0"}, // non-positive seed count
		{"-mode", "fasttrack"},               // no super-peer
	}
	for _, args := range cases {
		if _, err := LoadConfig(args, envMap(nil)); err == nil {
			t.Errorf("LoadConfig(%q) accepted invalid config", args)
		}
	}
}

func TestLoadConfigBadEnvSeedN(t *testing.T) {
	if _, err := LoadConfig(nil, envMap(map[string]string{"UP2P_SEEDN": "lots"})); err == nil {
		t.Fatal("malformed UP2P_SEEDN accepted")
	}
}

func TestLoadConfigWALFlags(t *testing.T) {
	// Defaults: WAL off, fsync always.
	cfg, err := LoadConfig([]string{"-mode", "gnutella"}, envMap(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WAL || cfg.Fsync != "always" {
		t.Fatalf("unexpected WAL defaults: %+v", cfg)
	}
	// Flag form.
	cfg, err = LoadConfig([]string{"-mode", "gnutella", "-state", "/tmp/s", "-wal", "-fsync", "os"}, envMap(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.WAL || cfg.Fsync != "os" {
		t.Fatalf("WAL flags not applied: %+v", cfg)
	}
	// Env form.
	cfg, err = LoadConfig([]string{"-mode", "gnutella", "-state", "/tmp/s"},
		envMap(map[string]string{"UP2P_WAL": "true", "UP2P_FSYNC": "os"}))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.WAL || cfg.Fsync != "os" {
		t.Fatalf("WAL env not applied: %+v", cfg)
	}
}

func TestLoadConfigWALValidation(t *testing.T) {
	if _, err := LoadConfig([]string{"-mode", "gnutella", "-wal"}, envMap(nil)); err == nil || !strings.Contains(err.Error(), "requires -state") {
		t.Fatalf("want wal-requires-state error, got %v", err)
	}
	if _, err := LoadConfig([]string{"-mode", "gnutella", "-state", "/tmp/s", "-wal", "-fsync", "sometimes"}, envMap(nil)); err == nil || !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("want bad-fsync error, got %v", err)
	}
	if _, err := LoadConfig([]string{"-mode", "gnutella"}, envMap(map[string]string{"UP2P_WAL": "maybe"})); err == nil {
		t.Fatal("bad UP2P_WAL accepted")
	}
}

func TestLoadConfigObservabilityFlags(t *testing.T) {
	// Defaults: tracing off, no debug listener, text logs at info.
	cfg, err := LoadConfig([]string{"-mode", "gnutella"}, envMap(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TraceSample != 0 || cfg.DebugAddr != "" || cfg.LogFormat != "text" || cfg.LogLevel != "info" {
		t.Fatalf("unexpected observability defaults: %+v", cfg)
	}
	// Flag form.
	cfg, err = LoadConfig([]string{"-mode", "gnutella", "-trace-sample", "0.25",
		"-debug-addr", "127.0.0.1:6060", "-log-format", "json", "-log-level", "debug"}, envMap(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TraceSample != 0.25 || cfg.DebugAddr != "127.0.0.1:6060" || cfg.LogFormat != "json" || cfg.LogLevel != "debug" {
		t.Fatalf("observability flags not applied: %+v", cfg)
	}
	// Env form.
	cfg, err = LoadConfig([]string{"-mode", "gnutella"}, envMap(map[string]string{
		"UP2P_TRACE_SAMPLE": "0.5",
		"UP2P_DEBUG":        "127.0.0.1:6061",
		"UP2P_LOG_FORMAT":   "json",
		"UP2P_LOG_LEVEL":    "warn",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TraceSample != 0.5 || cfg.DebugAddr != "127.0.0.1:6061" || cfg.LogFormat != "json" || cfg.LogLevel != "warn" {
		t.Fatalf("observability env not applied: %+v", cfg)
	}
}

func TestLoadConfigObservabilityValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "gnutella", "-trace-sample", "1.5"},
		{"-mode", "gnutella", "-trace-sample", "-0.1"},
		{"-mode", "gnutella", "-log-format", "xml"},
		{"-mode", "gnutella", "-log-level", "loud"},
	} {
		if _, err := LoadConfig(args, envMap(nil)); err == nil {
			t.Errorf("LoadConfig(%q) accepted invalid config", args)
		}
	}
	if _, err := LoadConfig(nil, envMap(map[string]string{"UP2P_TRACE_SAMPLE": "lots"})); err == nil {
		t.Fatal("malformed UP2P_TRACE_SAMPLE accepted")
	}
}
