package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"

	"repro/internal/index"
)

// Config collects every up2pd setting in one validated struct. Each
// field is settable as a command-line flag or, when the flag is left at
// its default, through an UP2P_* environment variable; precedence is
// flag > environment > built-in default.
type Config struct {
	// Mode selects the protocol role: indexserver | superpeer |
	// centralized | gnutella | fasttrack | dht. Env: UP2P_MODE.
	Mode string
	// P2PAddr is the TCP address for the P2P layer. Env: UP2P_P2P.
	P2PAddr string
	// HTTPAddr is the HTTP address serving the web interface and the
	// ops endpoints (/metrics, /healthz). Env: UP2P_HTTP.
	HTTPAddr string
	// Server is the index server / super-peer address required by the
	// centralized and fasttrack modes. Env: UP2P_SERVER.
	Server string
	// Neighbors are bootstrap peers (gnutella neighbors, super-peer
	// overlay links, DHT contacts). Env: UP2P_NEIGHBORS
	// (comma-separated).
	Neighbors []string
	// Seed optionally pre-seeds a demo community:
	// designpatterns|mp3|cml|species. Env: UP2P_SEED.
	Seed string
	// SeedN is the number of seeded objects. Env: UP2P_SEEDN.
	SeedN int
	// StateDir is the directory for persistent state, loaded at start
	// and saved on shutdown; empty disables persistence. Env:
	// UP2P_STATE.
	StateDir string
	// WAL enables the store's write-ahead log under StateDir/wal:
	// every write is durable when acknowledged, crash recovery replays
	// snapshot + log on start, and clean shutdown compacts. Requires
	// StateDir. Env: UP2P_WAL (1/true).
	WAL bool
	// Fsync is the WAL fsync policy: "always" (default; survives power
	// loss) or "os" (page-cache flushing; survives process crash
	// only). Env: UP2P_FSYNC.
	Fsync string
	// DHTCache enables Kademlia's caching STORE in dht mode: after a
	// successful FIND_VALUE the querier replicates the result set onto
	// the closest lookup-path node that did not hold it, with a halved
	// TTL, so flash crowds terminate before reaching the key's
	// holders. Ignored outside dht mode. Env: UP2P_DHT_CACHE (1/true).
	DHTCache bool
	// TraceSample is the head-based trace sampling rate in [0,1]: that
	// fraction of queries this daemon roots become recorded span trees
	// on /debug/traces. 0 (default) disables tracing entirely — the
	// zero-allocation nil-tracer path. Env: UP2P_TRACE_SAMPLE.
	TraceSample float64
	// DebugAddr, when set, serves net/http/pprof on its own listener
	// (separate from the public HTTP address, so profiling stays
	// operator-only). Empty (default) disables it. Env: UP2P_DEBUG.
	DebugAddr string
	// LogFormat selects the slog handler: "text" (default) or "json".
	// Env: UP2P_LOG_FORMAT.
	LogFormat string
	// LogLevel is the minimum level logged: debug | info | warn |
	// error (default info). Env: UP2P_LOG_LEVEL.
	LogLevel string
}

// LoadConfig parses args (without the program name), filling unset
// flags from getenv, then validates the result. getenv is injected so
// tests can run without mutating the process environment.
func LoadConfig(args []string, getenv func(string) string) (Config, error) {
	env := func(key, fallback string) string {
		if v := getenv(key); v != "" {
			return v
		}
		return fallback
	}
	seedN := 23
	if v := getenv("UP2P_SEEDN"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return Config{}, fmt.Errorf("UP2P_SEEDN: %v", err)
		}
		seedN = n
	}
	walDefault := false
	if v := getenv("UP2P_WAL"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return Config{}, fmt.Errorf("UP2P_WAL: %v", err)
		}
		walDefault = b
	}
	cacheDefault := false
	if v := getenv("UP2P_DHT_CACHE"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return Config{}, fmt.Errorf("UP2P_DHT_CACHE: %v", err)
		}
		cacheDefault = b
	}
	sampleDefault := 0.0
	if v := getenv("UP2P_TRACE_SAMPLE"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Config{}, fmt.Errorf("UP2P_TRACE_SAMPLE: %v", err)
		}
		sampleDefault = f
	}

	var cfg Config
	fs := flag.NewFlagSet("up2pd", flag.ContinueOnError)
	fs.StringVar(&cfg.Mode, "mode", env("UP2P_MODE", "centralized"), "indexserver | superpeer | centralized | gnutella | fasttrack | dht (env UP2P_MODE)")
	fs.StringVar(&cfg.P2PAddr, "p2p", env("UP2P_P2P", "127.0.0.1:7001"), "TCP address for the P2P layer (env UP2P_P2P)")
	fs.StringVar(&cfg.HTTPAddr, "http", env("UP2P_HTTP", "127.0.0.1:8080"), "HTTP address for the web interface and ops endpoints (env UP2P_HTTP)")
	fs.StringVar(&cfg.Server, "server", env("UP2P_SERVER", ""), "index server / super-peer address (centralized, fasttrack modes; env UP2P_SERVER)")
	neighbors := fs.String("neighbors", env("UP2P_NEIGHBORS", ""), "comma-separated bootstrap neighbors (env UP2P_NEIGHBORS)")
	fs.StringVar(&cfg.Seed, "seed", env("UP2P_SEED", ""), "pre-seed a demo community: designpatterns|mp3|cml|species (env UP2P_SEED)")
	fs.IntVar(&cfg.SeedN, "seedn", seedN, "number of seeded objects (env UP2P_SEEDN)")
	fs.StringVar(&cfg.StateDir, "state", env("UP2P_STATE", ""), "directory for persistent state, loaded at start and saved on shutdown (env UP2P_STATE)")
	fs.BoolVar(&cfg.WAL, "wal", walDefault, "write-ahead log the store under <state>/wal: acked writes survive crashes (env UP2P_WAL)")
	fs.StringVar(&cfg.Fsync, "fsync", env("UP2P_FSYNC", string(index.FsyncAlways)), "WAL fsync policy: always | os (env UP2P_FSYNC)")
	fs.BoolVar(&cfg.DHTCache, "dht-cache", cacheDefault, "dht mode: cache FIND_VALUE results on lookup-path nodes with halved TTL (env UP2P_DHT_CACHE)")
	fs.Float64Var(&cfg.TraceSample, "trace-sample", sampleDefault, "per-query trace sampling rate in [0,1]; 0 disables tracing (env UP2P_TRACE_SAMPLE)")
	fs.StringVar(&cfg.DebugAddr, "debug-addr", env("UP2P_DEBUG", ""), "separate listener for net/http/pprof; empty disables (env UP2P_DEBUG)")
	fs.StringVar(&cfg.LogFormat, "log-format", env("UP2P_LOG_FORMAT", "text"), "log output format: text | json (env UP2P_LOG_FORMAT)")
	fs.StringVar(&cfg.LogLevel, "log-level", env("UP2P_LOG_LEVEL", "info"), "minimum log level: debug | info | warn | error (env UP2P_LOG_LEVEL)")
	if err := fs.Parse(args); err != nil {
		return Config{}, err
	}
	for _, n := range strings.Split(*neighbors, ",") {
		if n = strings.TrimSpace(n); n != "" {
			cfg.Neighbors = append(cfg.Neighbors, n)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate checks the cross-field constraints that flag parsing alone
// cannot express.
func (c Config) Validate() error {
	switch c.Mode {
	case "indexserver", "superpeer", "centralized", "gnutella", "fasttrack", "dht":
	default:
		return fmt.Errorf("unknown mode %q", c.Mode)
	}
	if c.P2PAddr == "" {
		return fmt.Errorf("p2p address must not be empty")
	}
	if c.HTTPAddr == "" {
		return fmt.Errorf("http address must not be empty (every mode serves /metrics and /healthz)")
	}
	if (c.Mode == "centralized" || c.Mode == "fasttrack") && c.Server == "" {
		return fmt.Errorf("%s mode requires -server (or UP2P_SERVER)", c.Mode)
	}
	if c.SeedN <= 0 {
		return fmt.Errorf("seedn must be positive, got %d", c.SeedN)
	}
	if c.WAL && c.StateDir == "" {
		return fmt.Errorf("-wal requires -state (or UP2P_STATE): the log lives under the state directory")
	}
	if _, err := index.ParseFsyncPolicy(c.Fsync); err != nil {
		return err
	}
	if c.TraceSample < 0 || c.TraceSample > 1 {
		return fmt.Errorf("trace-sample must be in [0,1], got %g", c.TraceSample)
	}
	switch c.LogFormat {
	case "text", "json":
	default:
		return fmt.Errorf("unknown log format %q (want text or json)", c.LogFormat)
	}
	if _, err := parseLogLevel(c.LogLevel); err != nil {
		return err
	}
	return nil
}

// parseLogLevel maps the -log-level string onto a slog.Level.
func parseLogLevel(s string) (slog.Level, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
	}
	return lvl, nil
}

// Logger builds the daemon logger the config describes, writing to w.
// Validate has already vetted format and level.
func (c Config) Logger(w io.Writer) *slog.Logger {
	lvl, _ := parseLogLevel(c.LogLevel)
	opts := &slog.HandlerOptions{Level: lvl}
	if c.LogFormat == "json" {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
