// Command up2pbench runs the experiment suite of EXPERIMENTS.md and
// prints every table/figure reproduction (F1–F3, E1–E16, E18).
//
//	up2pbench                          # run everything
//	up2pbench -run E3                  # one experiment
//	up2pbench -run E10 -scn-peers 200  # scenario experiment, reduced scale
//	up2pbench -run E13 -dht-k 8        # DHT comparison, smaller replication
//	up2pbench -run E16 -e16-burst 100  # flash crowd, reduced burst
//	up2pbench -run E18 -wal-docs 50    # WAL durability cost, reduced scale
//	up2pbench -list                    # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "up2pbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		only = flag.String("run", "", "run a single experiment by ID (F1..F3, E1..E16, E18)")
		list = flag.Bool("list", false, "list experiments and exit")
		// E9 (store scalability) workload knobs.
		storeWorkers = flag.Int("store-workers", bench.StoreBenchConfig.Workers,
			"E9: concurrent store clients")
		storeShards = flag.Int("store-shards", bench.StoreBenchConfig.Shards,
			"E9: shard count of the sharded store configurations")
		storeComms = flag.Int("store-communities", bench.StoreBenchConfig.Communities,
			"E9: number of seeded communities")
		storeDocs = flag.Int("store-docs", bench.StoreBenchConfig.DocsPerCommunity,
			"E9: documents per community")
		storeOps = flag.Int("store-ops", bench.StoreBenchConfig.OpsPerWorker,
			"E9: operations per client")
		// E10–E12 (discrete-event scenario) workload knobs.
		scnPeers = flag.Int("scn-peers", bench.ScenarioBenchConfig.Peers,
			"E10-E12: scenario population")
		scnQueries = flag.Int("scn-queries", bench.ScenarioBenchConfig.Queries,
			"E10-E12: queries per scenario run")
		scnSeed = flag.Int64("scn-seed", bench.ScenarioBenchConfig.Seed,
			"E10-E16: scenario seed (same seed -> identical trace)")
		// E13–E15 (DHT comparison) knobs.
		dhtK = flag.Int("dht-k", bench.DHTBenchConfig.K,
			"E13-E15: DHT bucket capacity / replication factor")
		dhtAlpha = flag.Int("dht-alpha", bench.DHTBenchConfig.Alpha,
			"E13-E15: DHT lookup parallelism")
		e13Peers = flag.Int("e13-max-peers", bench.DHTBenchConfig.E13MaxPeers,
			"E13: cap on the population ladder")
		wireCodec = flag.String("codec", bench.DHTBenchConfig.Codec,
			"E13-E15: wire codec for cluster frames (binary|json)")
		// E16 (flash-crowd hot key) knobs.
		e16Peers = flag.Int("e16-peers", bench.HotspotBenchConfig.Peers,
			"E16: DHT population under the flash crowd")
		e16Burst = flag.Int("e16-burst", bench.HotspotBenchConfig.Burst,
			"E16: queries in the flash-crowd burst")
		e16Split = flag.Int("e16-split-threshold", bench.HotspotBenchConfig.SplitThreshold,
			"E16: per-holder record count that triggers hot-key splitting")
		// E18 (WAL durability) knobs.
		walDocs = flag.Int("wal-docs", bench.WALBenchConfig.DocsPerCommunity,
			"E18: documents per community in the ingest workloads")
		walBatches = flag.String("wal-recovery-batches", "",
			"E18: comma-separated log lengths (in batches) for the recovery curve")
	)
	flag.Parse()
	bench.StoreBenchConfig.Workers = *storeWorkers
	bench.StoreBenchConfig.Shards = *storeShards
	bench.StoreBenchConfig.Communities = *storeComms
	bench.StoreBenchConfig.DocsPerCommunity = *storeDocs
	bench.StoreBenchConfig.OpsPerWorker = *storeOps
	bench.ScenarioBenchConfig.Peers = *scnPeers
	bench.ScenarioBenchConfig.Queries = *scnQueries
	bench.ScenarioBenchConfig.Seed = *scnSeed
	bench.DHTBenchConfig.K = *dhtK
	bench.DHTBenchConfig.Alpha = *dhtAlpha
	bench.DHTBenchConfig.E13MaxPeers = *e13Peers
	bench.DHTBenchConfig.Codec = *wireCodec
	bench.HotspotBenchConfig.Peers = *e16Peers
	bench.HotspotBenchConfig.Burst = *e16Burst
	bench.HotspotBenchConfig.SplitThreshold = *e16Split
	bench.WALBenchConfig.DocsPerCommunity = *walDocs
	if *walBatches != "" {
		var lens []int
		for _, s := range strings.Split(*walBatches, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("-wal-recovery-batches: bad length %q", s)
			}
			lens = append(lens, n)
		}
		bench.WALBenchConfig.RecoveryBatches = lens
	}

	if *list {
		for _, r := range bench.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return nil
	}
	runners := bench.All()
	if *only != "" {
		r, ok := bench.ByID(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *only)
		}
		runners = []bench.Runner{r}
	}
	for _, r := range runners {
		start := time.Now()
		tbl, err := r.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Println(tbl.Format())
		fmt.Printf("(%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
