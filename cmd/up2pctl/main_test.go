package main

import (
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/servent"
	"repro/internal/transport"
)

func TestExtract(t *testing.T) {
	body := "<li>one</li> junk <li>two</li>"
	got := extract(body, "<li>", "</li>")
	if !reflect.DeepEqual(got, []string{"one", "two"}) {
		t.Errorf("extract = %v", got)
	}
	if got := extract("no list items", "<li>", "</li>"); got != nil {
		t.Errorf("extract none = %v", got)
	}
	if got := extract("<li>unterminated", "<li>", "</li>"); got != nil {
		t.Errorf("extract unterminated = %v", got)
	}
}

func TestStripTags(t *testing.T) {
	if got := stripTags(`<a href="x">link</a> text`); got != "link  text" {
		t.Errorf("stripTags = %q", got)
	}
	if got := stripTags("plain"); got != "plain" {
		t.Errorf("plain = %q", got)
	}
}

func TestKVToValues(t *testing.T) {
	vals, err := kvToValues([]string{"a=1", "b=two words"})
	if err != nil {
		t.Fatal(err)
	}
	if vals.Get("a") != "1" || vals.Get("b") != "two words" {
		t.Errorf("vals = %v", vals)
	}
	if _, err := kvToValues([]string{"novalue"}); err == nil {
		t.Error("missing '=' accepted")
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"unknown-subcommand"},
		{"search"},
		{"create"},
		{"view"},
		{"view", "a", "b"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestCLIAgainstLiveServent drives the real web handler through the
// CLI client end to end.
func TestCLIAgainstLiveServent(t *testing.T) {
	net := transport.NewMemNetwork()
	sep, err := net.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	p2p.NewIndexServer(sep)
	ep, err := net.Endpoint("peer")
	if err != nil {
		t.Fatal(err)
	}
	st := index.NewStore()
	sv, err := core.NewServent(p2p.NewCentralizedClient(ep, "server", st), st)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := sv.CreateCommunity(core.CommunitySpec{
		Name: "mp3", Keywords: "music", SchemaSrc: corpus.SongSchemaSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(servent.New(sv))
	defer web.Close()

	capture := func(fn func() error) (string, error) {
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		callErr := fn()
		w.Close()
		os.Stdout = old
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String(), callErr
	}

	out, err := capture(func() error {
		return run([]string{"-servent", web.URL, "communities"})
	})
	if err != nil {
		t.Fatalf("communities: %v", err)
	}
	if !strings.Contains(out, "mp3") {
		t.Errorf("communities output = %q", out)
	}

	if _, err := capture(func() error {
		return run([]string{"-servent", web.URL, "create", comm.ID,
			"title=So What", "artist=Miles Davis", "genre=jazz"})
	}); err != nil {
		t.Fatalf("create: %v", err)
	}

	out, err = capture(func() error {
		return run([]string{"-servent", web.URL, "search", comm.ID, "artist=Miles Davis"})
	})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if !strings.Contains(out, "So What") {
		t.Errorf("search output = %q", out)
	}

	out, err = capture(func() error {
		return run([]string{"-servent", web.URL, "discover", "keywords=music"})
	})
	if err != nil || !strings.Contains(out, "mp3") {
		t.Errorf("discover = %q, %v", out, err)
	}

	// Bad create surfaces the servent's error.
	_, err = capture(func() error {
		return run([]string{"-servent", web.URL, "create", comm.ID, "genre=polka"})
	})
	if err == nil {
		t.Error("invalid create succeeded")
	}
}
