// Command up2pctl is a command-line client for a running up2pd
// servent's web interface: publish, search, discover, join, view.
//
//	up2pctl -servent http://127.0.0.1:8080 communities
//	up2pctl -servent http://127.0.0.1:8080 discover keywords=gof
//	up2pctl -servent http://127.0.0.1:8080 search <communityID> title=Observer
//	up2pctl -servent http://127.0.0.1:8080 create <communityID> title=X artist=Y genre=jazz
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"regexp"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "up2pctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("up2pctl", flag.ContinueOnError)
	serventURL := fs.String("servent", "http://127.0.0.1:8080", "servent base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: up2pctl [-servent URL] communities|discover|search|create|view ...")
	}
	client := &client{base: strings.TrimRight(*serventURL, "/"), http: http.DefaultClient}
	switch rest[0] {
	case "communities":
		return client.communities()
	case "discover":
		return client.discover(rest[1:])
	case "search":
		if len(rest) < 2 {
			return fmt.Errorf("usage: search <communityID> [field=value ...]")
		}
		return client.search(rest[1], rest[2:])
	case "create":
		if len(rest) < 2 {
			return fmt.Errorf("usage: create <communityID> field=value ...")
		}
		return client.create(rest[1], rest[2:])
	case "view":
		if len(rest) != 2 {
			return fmt.Errorf("usage: view <docID>")
		}
		return client.view(rest[1])
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

type client struct {
	base string
	http *http.Client
}

func (c *client) get(path string) (string, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 400 {
		return "", fmt.Errorf("servent returned %s: %s", resp.Status, stripTags(string(body)))
	}
	return string(body), nil
}

func kvToValues(kvs []string) (url.Values, error) {
	vals := url.Values{}
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("argument %q is not field=value", kv)
		}
		vals.Add(k, v)
	}
	return vals, nil
}

func (c *client) communities() error {
	body, err := c.get("/")
	if err != nil {
		return err
	}
	for _, li := range extract(body, "<li>", "</li>") {
		fmt.Println(stripTags(li))
	}
	return nil
}

func (c *client) discover(kvs []string) error {
	vals, err := kvToValues(kvs)
	if err != nil {
		return err
	}
	body, err := c.get("/discover?" + vals.Encode())
	if err != nil {
		return err
	}
	printRows(body)
	return nil
}

func (c *client) search(community string, kvs []string) error {
	vals, err := kvToValues(kvs)
	if err != nil {
		return err
	}
	vals.Set("community", community)
	body, err := c.get("/search?" + vals.Encode())
	if err != nil {
		return err
	}
	printRows(body)
	return nil
}

func (c *client) create(community string, kvs []string) error {
	vals, err := kvToValues(kvs)
	if err != nil {
		return err
	}
	resp, err := c.http.PostForm(c.base+"/create?community="+url.QueryEscape(community), vals)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return fmt.Errorf("create failed (%s): %s", resp.Status, stripTags(string(body)))
	}
	fmt.Println("created; final URL:", resp.Request.URL)
	return nil
}

func (c *client) view(docID string) error {
	body, err := c.get("/view?doc=" + url.QueryEscape(docID))
	if err != nil {
		return err
	}
	fmt.Println(stripTags(body))
	return nil
}

func printRows(body string) {
	rows := extract(body, "<tr>", "</tr>")
	for _, r := range rows {
		cells := extract(r, "<td>", "</td>")
		if len(cells) == 0 {
			continue
		}
		out := make([]string, 0, len(cells))
		for _, cell := range cells {
			out = append(out, strings.TrimSpace(stripTags(cell)))
		}
		fmt.Println(strings.Join(out, " | "))
	}
}

func extract(s, open, close string) []string {
	var out []string
	for {
		i := strings.Index(s, open)
		if i < 0 {
			return out
		}
		s = s[i+len(open):]
		j := strings.Index(s, close)
		if j < 0 {
			return out
		}
		out = append(out, s[:j])
		s = s[j+len(close):]
	}
}

var tagRE = regexp.MustCompile(`<[^>]*>`)

func stripTags(s string) string {
	return strings.TrimSpace(tagRE.ReplaceAllString(s, " "))
}
