package stylegen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/query"
	"repro/internal/xmldoc"
	"repro/internal/xsd"
)

// BuildObject assembles a schema-valid XML object from submitted form
// values: the processing behind the generated create form. Keys are
// slash-joined field paths (as emitted by the create stylesheet and
// xsd.Fields); repeated fields take multiple values. The result is
// validated against the schema before being returned.
func BuildObject(s *xsd.Schema, values map[string][]string) (*xmldoc.Node, error) {
	if s == nil || s.Root == nil {
		return nil, fmt.Errorf("stylegen: schema has no root element")
	}
	root := xmldoc.NewElement(s.Root.Name)
	if s.Root.Type == nil || s.Root.Type.Kind != xsd.TypeComplex {
		// Simple-typed root: single value under the empty path or the
		// root's own name.
		v := firstValue(values, "", s.Root.Name)
		root.AppendChild(xmldoc.NewText(v))
	} else {
		buildChildren(root, s.Root.Type, "", values)
	}
	if err := s.Validate(root); err != nil {
		return nil, fmt.Errorf("stylegen: form values invalid: %w", err)
	}
	return root, nil
}

// buildChildren appends child elements for a complex type in schema
// declaration order, so sequence validation holds.
func buildChildren(parent *xmldoc.Node, t *xsd.Type, prefix string, values map[string][]string) {
	for _, decl := range t.Children {
		path := decl.Name
		if prefix != "" {
			path = prefix + "/" + decl.Name
		}
		if decl.Type != nil && decl.Type.Kind == xsd.TypeComplex {
			// Nested complex element: include when any descendant field
			// has a value, or when required.
			hasValues := anyWithPrefix(values, path+"/")
			if !hasValues && decl.MinOccurs == 0 {
				continue
			}
			el := xmldoc.NewElement(decl.Name)
			buildChildren(el, decl.Type, path, values)
			parent.AppendChild(el)
			continue
		}
		vals := values[path]
		if len(vals) == 0 {
			if decl.MinOccurs == 0 {
				continue
			}
			// Required but missing: emit an empty element so validation
			// reports the value error rather than a structure error.
			vals = []string{""}
		}
		max := decl.MaxOccurs
		for i, v := range vals {
			if max != xsd.Unbounded && i >= max {
				break
			}
			el := xmldoc.NewElement(decl.Name)
			if v != "" {
				el.AppendChild(xmldoc.NewText(v))
			}
			parent.AppendChild(el)
		}
	}
}

func anyWithPrefix(values map[string][]string, prefix string) bool {
	for k, vs := range values {
		if strings.HasPrefix(k, prefix) {
			for _, v := range vs {
				if strings.TrimSpace(v) != "" {
					return true
				}
			}
		}
	}
	return false
}

func firstValue(values map[string][]string, keys ...string) string {
	for _, k := range keys {
		if vs := values[k]; len(vs) > 0 {
			return vs[0]
		}
	}
	return ""
}

// BuildFilter converts submitted search-form values into a query
// filter: non-empty fields become assertions conjoined with AND. A
// value containing '*' searches by wildcard; values prefixed with the
// comparison operators >=, <=, >, < compare ordered; everything else
// is an equality assertion. Empty input yields MatchAll.
func BuildFilter(values map[string][]string) query.Filter {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var subs []query.Filter
	for _, k := range keys {
		for _, v := range values[k] {
			v = strings.TrimSpace(v)
			if v == "" {
				continue
			}
			subs = append(subs, fieldAssertion(k, v))
		}
	}
	switch len(subs) {
	case 0:
		return query.MatchAll{}
	case 1:
		return subs[0]
	default:
		return &query.And{Subs: subs}
	}
}

func fieldAssertion(attr, v string) query.Filter {
	switch {
	case strings.HasPrefix(v, ">="):
		return &query.Assertion{Attr: attr, Op: query.OpGe, Value: strings.TrimSpace(v[2:])}
	case strings.HasPrefix(v, "<="):
		return &query.Assertion{Attr: attr, Op: query.OpLe, Value: strings.TrimSpace(v[2:])}
	case strings.HasPrefix(v, ">"):
		return &query.Assertion{Attr: attr, Op: query.OpGt, Value: strings.TrimSpace(v[1:])}
	case strings.HasPrefix(v, "<"):
		return &query.Assertion{Attr: attr, Op: query.OpLt, Value: strings.TrimSpace(v[1:])}
	case strings.HasPrefix(v, "~"):
		return &query.Assertion{Attr: attr, Op: query.OpContains, Value: strings.TrimSpace(v[1:])}
	default:
		return &query.Assertion{Attr: attr, Op: query.OpEq, Value: v}
	}
}
