package stylegen

import (
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/xmldoc"
	"repro/internal/xsd"
)

const patternSchema = `
<schema xmlns="http://www.w3.org/2001/XMLSchema" xmlns:up2p="http://up2p.carleton.ca/ns/community">
 <element name="pattern">
  <complexType>
   <sequence>
    <element name="title" type="xsd:string" up2p:searchable="true"/>
    <element name="category" type="categoryType" up2p:searchable="true"/>
    <element name="intent" type="xsd:string" up2p:searchable="true"/>
    <element name="solution">
     <complexType>
      <sequence>
       <element name="structure" type="xsd:string"/>
       <element name="participants" type="xsd:string" minOccurs="0" maxOccurs="unbounded" up2p:searchable="true"/>
      </sequence>
     </complexType>
    </element>
    <element name="year" type="xsd:integer" minOccurs="0"/>
   </sequence>
  </complexType>
 </element>
 <simpleType name="categoryType">
  <restriction base="string">
   <enumeration value="creational"/>
   <enumeration value="structural"/>
   <enumeration value="behavioral"/>
  </restriction>
 </simpleType>
</schema>`

func schema(t *testing.T) *xsd.Schema {
	t.Helper()
	s, err := xsd.ParseString(patternSchema)
	if err != nil {
		t.Fatalf("parse schema: %v", err)
	}
	return s
}

func TestCreateFormGeneration(t *testing.T) {
	s := schema(t)
	html, err := CreateFormHTML(s)
	if err != nil {
		t.Fatalf("create form: %v", err)
	}
	for _, want := range []string{
		`class="up2p-create"`,
		`name="title"`,
		`name="intent"`,
		`name="solution/structure"`,    // nested path via prefix param
		`name="solution/participants"`, // repeated nested field
		`<select name="category"`,      // enumerated type renders a select
		`<option value="behavioral">`,
		`<legend>solution</legend>`,
		`name="year"`,
		`type="submit"`,
	} {
		if !strings.Contains(html, want) {
			t.Errorf("create form missing %q in:\n%s", want, html)
		}
	}
}

func TestSearchFormGeneration(t *testing.T) {
	s := schema(t)
	html, err := SearchFormHTML(s)
	if err != nil {
		t.Fatalf("search form: %v", err)
	}
	for _, want := range []string{
		`class="up2p-search"`,
		`action="search"`,
		`name="title"`,
		`name="solution/participants"`,
		`value="Search"`,
	} {
		if !strings.Contains(html, want) {
			t.Errorf("search form missing %q", want)
		}
	}
}

func TestViewRendering(t *testing.T) {
	obj := xmldoc.MustParse(`<pattern><title>Observer</title><solution><structure>diagram</structure></solution></pattern>`)
	html, err := ViewHTML(obj)
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	for _, want := range []string{
		`class="up2p-view"`,
		`<h3>pattern</h3>`,
		`<h3>solution</h3>`,
		`>title</span>`,
		`>Observer</span>`,
		`>structure</span>`,
	} {
		if !strings.Contains(html, want) {
			t.Errorf("view missing %q in:\n%s", want, html)
		}
	}
}

func TestGenerateIndexingStylesheet(t *testing.T) {
	s := schema(t)
	src, err := GenerateIndexingStylesheet(s)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	// Only searchable fields appear.
	for _, want := range []string{`"/pattern/title"`, `"/pattern/category"`, `"/pattern/intent"`, `"/pattern/solution/participants"`} {
		if !strings.Contains(src, want) {
			t.Errorf("indexing stylesheet missing %q:\n%s", want, src)
		}
	}
	for _, reject := range []string{`"/pattern/year"`, `"/pattern/solution/structure"`} {
		if strings.Contains(src, reject) {
			t.Errorf("indexing stylesheet includes unsearchable %q", reject)
		}
	}
}

func TestIndexerExtract(t *testing.T) {
	s := schema(t)
	ix, err := NewIndexer(s)
	if err != nil {
		t.Fatalf("indexer: %v", err)
	}
	obj := xmldoc.MustParse(`<pattern>
	  <title>Observer</title>
	  <category>behavioral</category>
	  <intent>Define a one-to-many dependency</intent>
	  <solution>
	    <structure>long diagram text that should not be indexed</structure>
	    <participants>Subject</participants>
	    <participants>Observer</participants>
	  </solution>
	  <year>1994</year>
	</pattern>`)
	attrs, err := ix.Extract(obj)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if got := attrs.Get("title"); got != "Observer" {
		t.Errorf("title = %q", got)
	}
	if got := len(attrs["solution/participants"]); got != 2 {
		t.Errorf("participants = %v", attrs["solution/participants"])
	}
	if _, present := attrs["solution/structure"]; present {
		t.Error("unsearchable structure was indexed")
	}
	if _, present := attrs["year"]; present {
		t.Error("unsearchable year was indexed")
	}
}

func TestIndexerSkipsEmptyValues(t *testing.T) {
	s := schema(t)
	ix, err := NewIndexer(s)
	if err != nil {
		t.Fatal(err)
	}
	obj := xmldoc.MustParse(`<pattern><title></title><category>structural</category><intent>i</intent><solution><structure>s</structure></solution></pattern>`)
	attrs, err := ix.Extract(obj)
	if err != nil {
		t.Fatal(err)
	}
	if _, present := attrs["title"]; present {
		t.Error("empty title indexed")
	}
}

func TestIndexerFromCustomSource(t *testing.T) {
	// A custom indexing stylesheet (the §V case study scenario): index
	// only the title, lowercased via translate.
	src := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	  <xsl:template match="/">
	    <attributes>
	      <attribute name="title"><xsl:value-of select="translate(/pattern/title, 'ABCDEFGHIJKLMNOPQRSTUVWXYZ', 'abcdefghijklmnopqrstuvwxyz')"/></attribute>
	    </attributes>
	  </xsl:template>
	</xsl:stylesheet>`
	ix, err := NewIndexerFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := ix.Extract(xmldoc.MustParse(`<pattern><title>OBSERVER</title></pattern>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := attrs.Get("title"); got != "observer" {
		t.Errorf("custom indexer title = %q", got)
	}
	if ix.Source() != src {
		t.Error("Source() mismatch")
	}
	if _, err := NewIndexerFromSource("<bogus/>"); err == nil {
		t.Error("bad source compiled")
	}
}

func TestBuildObject(t *testing.T) {
	s := schema(t)
	obj, err := BuildObject(s, map[string][]string{
		"title":                 {"Observer"},
		"category":              {"behavioral"},
		"intent":                {"Define a one-to-many dependency"},
		"solution/structure":    {"UML"},
		"solution/participants": {"Subject", "ConcreteObserver"},
		"year":                  {"1994"},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if got := obj.ChildText("title"); got != "Observer" {
		t.Errorf("title = %q", got)
	}
	if got := len(obj.Child("solution").ChildrenNamed("participants")); got != 2 {
		t.Errorf("participants = %d", got)
	}
	if err := s.Validate(obj); err != nil {
		t.Errorf("built object invalid: %v", err)
	}
}

func TestBuildObjectOptionalOmitted(t *testing.T) {
	s := schema(t)
	obj, err := BuildObject(s, map[string][]string{
		"title":              {"Visitor"},
		"category":           {"behavioral"},
		"intent":             {"Represent an operation"},
		"solution/structure": {"UML"},
		// year and participants omitted (both optional)
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if obj.Child("year") != nil {
		t.Error("optional year emitted")
	}
}

func TestBuildObjectInvalidValues(t *testing.T) {
	s := schema(t)
	_, err := BuildObject(s, map[string][]string{
		"title":              {"X"},
		"category":           {"not-a-category"},
		"intent":             {"i"},
		"solution/structure": {"s"},
	})
	if err == nil {
		t.Error("invalid enum accepted")
	}
	// Missing required field.
	_, err = BuildObject(s, map[string][]string{
		"category":           {"structural"},
		"intent":             {"i"},
		"solution/structure": {"s"},
	})
	if err != nil {
		// title missing produces empty element which is valid for
		// xsd:string; so this should actually succeed.
		t.Logf("missing title: %v", err)
	}
}

func TestBuildObjectRespectsMaxOccurs(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
	 <element name="o"><complexType><sequence>
	   <element name="v" type="xsd:string" maxOccurs="2"/>
	 </sequence></complexType></element></schema>`
	s, err := xsd.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := BuildObject(s, map[string][]string{"v": {"a", "b", "c"}})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if got := len(obj.ChildrenNamed("v")); got != 2 {
		t.Errorf("v count = %d, want clamped to 2", got)
	}
}

func TestBuildFilter(t *testing.T) {
	f := BuildFilter(map[string][]string{
		"title":    {"Observer"},
		"year":     {">=1990"},
		"intent":   {"~dependency"},
		"category": {""},
	})
	attrs := query.Attrs{
		"title":  {"Observer"},
		"year":   {"1994"},
		"intent": {"Define a one-to-many dependency"},
	}
	if !f.Match(attrs) {
		t.Errorf("filter %s did not match", f.String())
	}
	attrs["year"] = []string{"1985"}
	if f.Match(attrs) {
		t.Error("filter matched out-of-range year")
	}
	// Empty form matches everything.
	if _, ok := BuildFilter(nil).(query.MatchAll); !ok {
		t.Error("empty form filter is not MatchAll")
	}
	// Single field yields a bare assertion.
	single := BuildFilter(map[string][]string{"title": {"X"}})
	if _, ok := single.(*query.Assertion); !ok {
		t.Errorf("single filter = %T", single)
	}
	// Operators.
	ops := BuildFilter(map[string][]string{"a": {"<5"}, "b": {"<=5"}, "c": {">5"}, "d": {"w*d"}})
	if !ops.Match(query.Attrs{"a": {"3"}, "b": {"5"}, "c": {"9"}, "d": {"wild"}}) {
		t.Errorf("ops filter %s failed", ops.String())
	}
}

func TestFormRoundTrip(t *testing.T) {
	// The full Fig. 1 loop: schema -> create form -> submitted values
	// -> object -> validate -> index -> search filter finds it.
	s := schema(t)
	values := map[string][]string{
		"title":                 {"Composite"},
		"category":              {"structural"},
		"intent":                {"Compose objects into tree structures"},
		"solution/structure":    {"UML class diagram"},
		"solution/participants": {"Component", "Leaf", "Composite"},
	}
	obj, err := BuildObject(s, values)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ix, err := NewIndexer(s)
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := ix.Extract(obj)
	if err != nil {
		t.Fatal(err)
	}
	f := BuildFilter(map[string][]string{"title": {"Composite"}, "category": {"structural"}})
	if !f.Match(attrs) {
		t.Errorf("round-trip filter %s missed attrs %v", f.String(), attrs)
	}
}
