// Package stylegen holds the default stylesheets and generated
// transforms that make U-P2P generative (paper Fig. 1/Fig. 2): the
// create and search stylesheets transform a community's XML Schema
// into HTML forms, the view stylesheet renders any shared object, and
// the indexing stylesheet — generated per schema — filters an object's
// searchable fields into the attribute set submitted to the metadata
// index ("U-P2P provides default stylesheets that operate on any
// community schema", §IV.A).
package stylegen

import (
	"fmt"
	"strings"

	"repro/internal/query"
	"repro/internal/xmldoc"
	"repro/internal/xsd"
	"repro/internal/xslt"
)

// createStylesheetSrc transforms a *schema document* into an HTML
// create form: one labelled input per leaf element, a <select> when
// the element's type is an enumerated restriction, fieldsets for
// nested complex types. Field names are slash-joined paths matching
// xsd.Fields, carried down via a template parameter.
const createStylesheetSrc = `
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="/">
    <form class="up2p-create" method="post" action="create">
      <xsl:apply-templates select="schema/element/complexType/sequence/element | schema/element/complexType/choice/element | schema/element/complexType/all/element">
        <xsl:with-param name="prefix" select="''"/>
      </xsl:apply-templates>
      <input type="submit" value="Create"/>
    </form>
  </xsl:template>

  <xsl:template match="element">
    <xsl:param name="prefix" select="''"/>
    <xsl:choose>
      <xsl:when test="complexType">
        <fieldset>
          <legend><xsl:value-of select="@name"/></legend>
          <xsl:apply-templates select="complexType/sequence/element | complexType/choice/element | complexType/all/element">
            <xsl:with-param name="prefix" select="concat($prefix, @name, '/')"/>
          </xsl:apply-templates>
        </fieldset>
      </xsl:when>
      <xsl:otherwise>
        <xsl:call-template name="field">
          <xsl:with-param name="prefix" select="$prefix"/>
        </xsl:call-template>
      </xsl:otherwise>
    </xsl:choose>
  </xsl:template>

  <xsl:template name="field">
    <xsl:param name="prefix" select="''"/>
    <xsl:variable name="t" select="substring-after(@type, ':')"/>
    <xsl:variable name="tn" select="@type"/>
    <div class="up2p-field">
      <label for="{concat($prefix, @name)}"><xsl:value-of select="@name"/></label>
      <xsl:choose>
        <xsl:when test="//simpleType[@name = $tn]/restriction/enumeration">
          <select name="{concat($prefix, @name)}" id="{concat($prefix, @name)}">
            <xsl:for-each select="//simpleType[@name = $tn]/restriction/enumeration">
              <option value="{@value}"><xsl:value-of select="@value"/></option>
            </xsl:for-each>
          </select>
        </xsl:when>
        <xsl:otherwise>
          <input type="text" name="{concat($prefix, @name)}" id="{concat($prefix, @name)}" data-type="{$t}"/>
        </xsl:otherwise>
      </xsl:choose>
    </div>
  </xsl:template>
</xsl:stylesheet>`

// searchStylesheetSrc is the create form's sibling: same walk over the
// schema, but every field is optional and the form posts to search.
const searchStylesheetSrc = `
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="/">
    <form class="up2p-search" method="get" action="search">
      <xsl:apply-templates select="schema/element/complexType/sequence/element | schema/element/complexType/choice/element | schema/element/complexType/all/element">
        <xsl:with-param name="prefix" select="''"/>
      </xsl:apply-templates>
      <input type="submit" value="Search"/>
    </form>
  </xsl:template>

  <xsl:template match="element">
    <xsl:param name="prefix" select="''"/>
    <xsl:choose>
      <xsl:when test="complexType">
        <fieldset>
          <legend><xsl:value-of select="@name"/></legend>
          <xsl:apply-templates select="complexType/sequence/element | complexType/choice/element | complexType/all/element">
            <xsl:with-param name="prefix" select="concat($prefix, @name, '/')"/>
          </xsl:apply-templates>
        </fieldset>
      </xsl:when>
      <xsl:otherwise>
        <div class="up2p-field">
          <label for="{concat($prefix, @name)}"><xsl:value-of select="@name"/></label>
          <input type="text" name="{concat($prefix, @name)}" id="{concat($prefix, @name)}" placeholder="any"/>
        </div>
      </xsl:otherwise>
    </xsl:choose>
  </xsl:template>
</xsl:stylesheet>`

// viewStylesheetSrc renders any shared object generically: nested
// elements become sections, leaves become label/value rows. Community
// designers override this with a custom display stylesheet (§V did,
// for design patterns).
const viewStylesheetSrc = `
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="/">
    <div class="up2p-view"><xsl:apply-templates/></div>
  </xsl:template>
  <xsl:template match="*">
    <xsl:choose>
      <xsl:when test="*">
        <div class="up2p-section">
          <h3><xsl:value-of select="local-name()"/></h3>
          <xsl:apply-templates/>
        </div>
      </xsl:when>
      <xsl:otherwise>
        <div class="up2p-row">
          <span class="up2p-label"><xsl:value-of select="local-name()"/></span>
          <span class="up2p-value"><xsl:value-of select="."/></span>
        </div>
      </xsl:otherwise>
    </xsl:choose>
  </xsl:template>
  <xsl:template match="text()"/>
</xsl:stylesheet>`

// Styles bundles the three presentation stylesheets of a community
// (Fig. 3's displaystyle/createstyle/searchstyle) plus the generated
// indexing transform.
type Styles struct {
	Create *xslt.Stylesheet
	Search *xslt.Stylesheet
	View   *xslt.Stylesheet
}

// Defaults returns freshly compiled default stylesheets. Compilation
// of the built-in sources cannot fail; failures panic at startup.
func Defaults() Styles {
	return Styles{
		Create: xslt.MustCompileString(createStylesheetSrc),
		Search: xslt.MustCompileString(searchStylesheetSrc),
		View:   xslt.MustCompileString(viewStylesheetSrc),
	}
}

// DefaultSources returns the raw XSLT texts, for publishing alongside
// a community object (communities share their stylesheets).
func DefaultSources() (create, search, view string) {
	return createStylesheetSrc, searchStylesheetSrc, viewStylesheetSrc
}

// CreateFormHTML renders the create form for a schema using the
// default create stylesheet.
func CreateFormHTML(s *xsd.Schema) (string, error) {
	return Defaults().Create.Apply(s.Doc())
}

// SearchFormHTML renders the search form for a schema.
func SearchFormHTML(s *xsd.Schema) (string, error) {
	return Defaults().Search.Apply(s.Doc())
}

// ViewHTML renders an object with the default view stylesheet.
func ViewHTML(obj *xmldoc.Node) (string, error) {
	return Defaults().View.Apply(obj)
}

// GenerateIndexingStylesheet builds, from a schema, the "Indexed
// Attribute XSL" of Fig. 1: an XSLT document that filters an object of
// that community down to its searchable attributes. The community
// designer can replace it (§V: "The community designer can also
// control this by implementing a stylesheet to filter indexable
// attributes").
func GenerateIndexingStylesheet(s *xsd.Schema) (string, error) {
	if s == nil || s.Root == nil {
		return "", fmt.Errorf("stylegen: schema has no root element")
	}
	fields := s.SearchableFields()
	var b strings.Builder
	b.WriteString(`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">` + "\n")
	b.WriteString("  <xsl:template match=\"/\">\n    <attributes>\n")
	for _, f := range fields {
		sel := "/" + s.Root.Name + "/" + f.Path
		fmt.Fprintf(&b, "      <xsl:for-each select=%q>\n", sel)
		fmt.Fprintf(&b, "        <attribute name=%q><xsl:value-of select=\"normalize-space(.)\"/></attribute>\n", f.Path)
		b.WriteString("      </xsl:for-each>\n")
	}
	b.WriteString("    </attributes>\n  </xsl:template>\n</xsl:stylesheet>")
	return b.String(), nil
}

// Indexer extracts indexed attributes from objects of one community:
// a compiled indexing stylesheet plus the plumbing to turn its output
// into query.Attrs.
type Indexer struct {
	sheet *xslt.Stylesheet
	src   string
}

// NewIndexer compiles the generated indexing stylesheet for a schema.
func NewIndexer(s *xsd.Schema) (*Indexer, error) {
	src, err := GenerateIndexingStylesheet(s)
	if err != nil {
		return nil, err
	}
	sheet, err := xslt.CompileString(src)
	if err != nil {
		return nil, fmt.Errorf("stylegen: compile indexing stylesheet: %w", err)
	}
	return &Indexer{sheet: sheet, src: src}, nil
}

// NewIndexerFromSource compiles a custom indexing stylesheet (the §V
// case study supplies its own).
func NewIndexerFromSource(src string) (*Indexer, error) {
	sheet, err := xslt.CompileString(src)
	if err != nil {
		return nil, fmt.Errorf("stylegen: compile indexing stylesheet: %w", err)
	}
	return &Indexer{sheet: sheet, src: src}, nil
}

// Source returns the stylesheet text.
func (ix *Indexer) Source() string { return ix.src }

// Extract runs the indexing transform over an object and returns the
// attribute set for the metadata index. Empty values are dropped.
func (ix *Indexer) Extract(obj *xmldoc.Node) (query.Attrs, error) {
	nodes, err := ix.sheet.ApplyNodes(obj)
	if err != nil {
		return nil, fmt.Errorf("stylegen: indexing transform: %w", err)
	}
	attrs := query.Attrs{}
	for _, n := range nodes {
		if n.Kind != xmldoc.KindElement {
			continue
		}
		n.Walk(func(m *xmldoc.Node) bool {
			if m.Kind == xmldoc.KindElement && m.LocalName() == "attribute" {
				name, _ := m.Attr("name")
				val := strings.TrimSpace(m.Text())
				if name != "" && val != "" {
					attrs.Add(name, val)
				}
				return false
			}
			return true
		})
	}
	return attrs, nil
}
