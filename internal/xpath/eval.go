// Package xpath implements the subset of XPath 1.0 that U-P2P's
// stylesheets and indexing transforms require: location paths over all
// major axes, predicates with position semantics, the four value
// types, the core function library, node-set unions, and arithmetic /
// comparison operators.
//
// The engine evaluates over xmldoc trees. Name tests match on local
// name when unprefixed ("element" matches "xsd:element") and on the
// exact prefixed name otherwise, which mirrors how the paper's
// documents address nodes.
package xpath

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xmldoc"
)

// Expr is a compiled XPath expression, safe for concurrent use.
type Expr struct {
	src  string
	root expr
}

// Compile parses src into a reusable expression.
func Compile(src string) (*Expr, error) {
	root, err := parse(src)
	if err != nil {
		return nil, err
	}
	return &Expr{src: src, root: root}, nil
}

// MustCompile is Compile that panics on error; for expression
// literals whose validity is a program invariant.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Source returns the original expression text.
func (e *Expr) Source() string { return e.src }

// Env carries optional evaluation bindings.
type Env struct {
	// Vars binds $name variable references.
	Vars map[string]Value
	// Position and Size set the initial context position()/last();
	// zero values default to 1. XSLT supplies these for nodes being
	// processed inside for-each / apply-templates.
	Position int
	Size     int
}

// context is the dynamic evaluation context.
type context struct {
	node *xmldoc.Node
	pos  int // 1-based position() within size
	size int
	env  *Env
}

func (c *context) at(n *xmldoc.Node, pos, size int) *context {
	return &context{node: n, pos: pos, size: size, env: c.env}
}

// Eval evaluates the expression with n as the context node.
func (e *Expr) Eval(n *xmldoc.Node) Value {
	return e.EvalEnv(n, nil)
}

// EvalEnv evaluates with variable bindings.
func (e *Expr) EvalEnv(n *xmldoc.Node, env *Env) Value {
	pos, size := 1, 1
	if env != nil {
		if env.Position > 0 {
			pos = env.Position
		}
		if env.Size > 0 {
			size = env.Size
		}
	}
	ctx := &context{node: n, pos: pos, size: size, env: env}
	return e.root.eval(ctx)
}

// Select evaluates and returns the node-set result; non-node-set
// results yield nil.
func (e *Expr) Select(n *xmldoc.Node) []*xmldoc.Node {
	v := e.Eval(n)
	if v.Kind != KindNodeSet {
		return nil
	}
	return v.Nodes
}

// First returns the first selected node or nil.
func (e *Expr) First(n *xmldoc.Node) *xmldoc.Node {
	ns := e.Select(n)
	if len(ns) == 0 {
		return nil
	}
	return ns[0]
}

// EvalString is a convenience for Eval(...).String().
func (e *Expr) EvalString(n *xmldoc.Node) string { return e.Eval(n).String() }

// EvalBool is a convenience for Eval(...).Boolean().
func (e *Expr) EvalBool(n *xmldoc.Node) bool { return e.Eval(n).Boolean() }

// EvalNumber is a convenience for Eval(...).Number().
func (e *Expr) EvalNumber(n *xmldoc.Node) float64 { return e.Eval(n).Number() }

// Select compiles and evaluates expr against n in one call.
func Select(n *xmldoc.Node, src string) ([]*xmldoc.Node, error) {
	e, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return e.Select(n), nil
}

// --- expression evaluation ---

func (b *binOp) eval(ctx *context) Value {
	switch b.op {
	case "or":
		if b.l.eval(ctx).Boolean() {
			return BooleanValue(true)
		}
		return BooleanValue(b.r.eval(ctx).Boolean())
	case "and":
		if !b.l.eval(ctx).Boolean() {
			return BooleanValue(false)
		}
		return BooleanValue(b.r.eval(ctx).Boolean())
	case "=", "!=":
		return BooleanValue(compareEq(b.l.eval(ctx), b.r.eval(ctx), b.op == "!="))
	case "<", "<=", ">", ">=":
		return BooleanValue(compareRel(b.l.eval(ctx), b.r.eval(ctx), b.op))
	}
	l, r := b.l.eval(ctx).Number(), b.r.eval(ctx).Number()
	switch b.op {
	case "+":
		return NumberValue(l + r)
	case "-":
		return NumberValue(l - r)
	case "*":
		return NumberValue(l * r)
	case "div":
		return NumberValue(l / r)
	case "mod":
		return NumberValue(math.Mod(l, r))
	}
	panic(fmt.Sprintf("xpath: unknown operator %q", b.op))
}

// compareEq implements XPath = / != semantics including node-set
// existential comparison.
func compareEq(l, r Value, neq bool) bool {
	eq := func(a, b Value) bool {
		// If either is boolean compare as booleans; else if either is
		// number compare as numbers; else strings.
		switch {
		case a.Kind == KindBoolean || b.Kind == KindBoolean:
			return a.Boolean() == b.Boolean()
		case a.Kind == KindNumber || b.Kind == KindNumber:
			return a.Number() == b.Number()
		default:
			return a.String() == b.String()
		}
	}
	if l.Kind == KindNodeSet && r.Kind == KindNodeSet {
		for _, ln := range l.Nodes {
			for _, rn := range r.Nodes {
				same := nodeStringValue(ln) == nodeStringValue(rn)
				if same != neq {
					return true
				}
			}
		}
		return false
	}
	if l.Kind == KindNodeSet {
		l, r = r, l
	}
	if r.Kind == KindNodeSet {
		for _, rn := range r.Nodes {
			res := eq(l, StringValue(nodeStringValue(rn)))
			if res != neq {
				return true
			}
		}
		return false
	}
	return eq(l, r) != neq
}

func compareRel(l, r Value, op string) bool {
	cmp := func(a, b float64) bool {
		switch op {
		case "<":
			return a < b
		case "<=":
			return a <= b
		case ">":
			return a > b
		default:
			return a >= b
		}
	}
	lvals := relOperands(l)
	rvals := relOperands(r)
	for _, a := range lvals {
		for _, b := range rvals {
			if cmp(a, b) {
				return true
			}
		}
	}
	return false
}

func relOperands(v Value) []float64 {
	if v.Kind == KindNodeSet {
		out := make([]float64, 0, len(v.Nodes))
		for _, n := range v.Nodes {
			out = append(out, parseNumber(nodeStringValue(n)))
		}
		return out
	}
	return []float64{v.Number()}
}

func (n *negExpr) eval(ctx *context) Value {
	return NumberValue(-n.x.eval(ctx).Number())
}

func (u *unionExpr) eval(ctx *context) Value {
	l := u.l.eval(ctx)
	r := u.r.eval(ctx)
	seen := make(map[*xmldoc.Node]bool, len(l.Nodes)+len(r.Nodes))
	out := make([]*xmldoc.Node, 0, len(l.Nodes)+len(r.Nodes))
	for _, set := range [][]*xmldoc.Node{l.Nodes, r.Nodes} {
		for _, n := range set {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return NodeSetValue(out)
}

func (n *numberLit) eval(*context) Value { return NumberValue(n.v) }
func (s *stringLit) eval(*context) Value { return StringValue(s.v) }

func (v *varRef) eval(ctx *context) Value {
	if ctx.env != nil {
		if val, ok := ctx.env.Vars[v.name]; ok {
			return val
		}
	}
	return StringValue("")
}

func (f *funcCall) eval(ctx *context) Value {
	fn := coreFunctions[f.name]
	return fn(ctx, f.args)
}

func (fe *filterExpr) eval(ctx *context) Value {
	v := fe.primary.eval(ctx)
	if v.Kind != KindNodeSet {
		return v
	}
	nodes := v.Nodes
	for _, pred := range fe.preds {
		nodes = applyPredicate(ctx, nodes, pred)
	}
	return NodeSetValue(nodes)
}

func (pe *pathExpr) eval(ctx *context) Value {
	var current []*xmldoc.Node
	switch {
	case pe.start != nil:
		v := pe.start.eval(ctx)
		if v.Kind != KindNodeSet {
			return NodeSetValue(nil)
		}
		current = v.Nodes
	case pe.abs:
		root := ctx.node.Root()
		if len(pe.steps) == 0 {
			// "/" alone selects the root element (this tree has no
			// separate document node to expose). When evaluation
			// already started at a virtual document node (XSLT), peel
			// it to the document element.
			if root.Name == "#document" && len(root.Children) == 1 {
				return NodeSetValue([]*xmldoc.Node{root.Children[0]})
			}
			return NodeSetValue([]*xmldoc.Node{root})
		}
		// Evaluate steps from a transient document node so that
		// "/library" matches the document element itself. If the tree
		// is already rooted at a virtual document node, reuse it.
		docNode := root
		if root.Name != "#document" {
			docNode = &xmldoc.Node{
				Kind:     xmldoc.KindElement,
				Name:     "#document",
				Children: []*xmldoc.Node{root},
			}
		}
		current = []*xmldoc.Node{docNode}
	default:
		current = []*xmldoc.Node{ctx.node}
	}
	for _, st := range pe.steps {
		current = evalStep(ctx, current, st)
		if len(current) == 0 {
			break
		}
	}
	return NodeSetValue(current)
}

// evalStep applies one location step to each node in the input set,
// concatenating results in document order and de-duplicating.
func evalStep(ctx *context, input []*xmldoc.Node, st *step) []*xmldoc.Node {
	var out []*xmldoc.Node
	seen := map[*xmldoc.Node]bool{}
	for _, n := range input {
		cands := axisNodes(n, st.ax)
		matched := make([]*xmldoc.Node, 0, len(cands))
		for _, c := range cands {
			if matchTest(c, st.test, st.ax) {
				matched = append(matched, c)
			}
		}
		for _, pred := range st.preds {
			matched = applyPredicate(ctx, matched, pred)
		}
		for _, m := range matched {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	if len(input) > 1 {
		// Steps applied to multiple input nodes can interleave results
		// out of document order (e.g. the expansion of //); restore it.
		out = sortDocOrder(out)
	}
	return out
}

// sortDocOrder sorts nodes into document order by indexing one walk of
// the shared root. Synthesized attribute nodes order just after their
// owning element, by attribute position.
func sortDocOrder(nodes []*xmldoc.Node) []*xmldoc.Node {
	if len(nodes) < 2 {
		return nodes
	}
	idx := make(map[*xmldoc.Node]int)
	i := 0
	nodes[0].Root().Walk(func(n *xmldoc.Node) bool {
		idx[n] = i
		i += 16 // leave room for attribute offsets
		return true
	})
	key := func(n *xmldoc.Node) int {
		if n.Kind == xmldoc.KindAttribute && n.Parent != nil {
			base, ok := idx[n.Parent]
			if !ok {
				return 1 << 30
			}
			for ai, a := range n.Parent.Attrs {
				if a.Name == n.Name {
					return base + 1 + ai
				}
			}
			return base + 1
		}
		if k, ok := idx[n]; ok {
			return k
		}
		return 1 << 30 // foreign tree: keep at the end, stable
	}
	sort.SliceStable(nodes, func(a, b int) bool { return key(nodes[a]) < key(nodes[b]) })
	return nodes
}

// applyPredicate filters nodes by the predicate, honouring position
// semantics: a numeric predicate selects that 1-based position.
func applyPredicate(ctx *context, nodes []*xmldoc.Node, pred expr) []*xmldoc.Node {
	out := nodes[:0:0]
	size := len(nodes)
	for i, n := range nodes {
		sub := ctx.at(n, i+1, size)
		v := pred.eval(sub)
		if v.Kind == KindNumber {
			if int(v.Num) == i+1 {
				out = append(out, n)
			}
			continue
		}
		if v.Boolean() {
			out = append(out, n)
		}
	}
	return out
}

// axisNodes returns the candidate nodes along an axis, in axis order.
func axisNodes(n *xmldoc.Node, ax axis) []*xmldoc.Node {
	switch ax {
	case axisChild:
		return n.Children
	case axisSelf:
		return []*xmldoc.Node{n}
	case axisParent:
		if n.Parent != nil {
			return []*xmldoc.Node{n.Parent}
		}
		return nil
	case axisAncestor, axisAncestorOrSelf:
		var out []*xmldoc.Node
		if ax == axisAncestorOrSelf {
			out = append(out, n)
		}
		for p := n.Parent; p != nil; p = p.Parent {
			out = append(out, p)
		}
		return out
	case axisDescendant, axisDescendantOrSelf:
		var out []*xmldoc.Node
		if ax == axisDescendantOrSelf {
			out = append(out, n)
		}
		var rec func(*xmldoc.Node)
		rec = func(m *xmldoc.Node) {
			for _, c := range m.Children {
				out = append(out, c)
				rec(c)
			}
		}
		rec(n)
		return out
	case axisAttribute:
		out := make([]*xmldoc.Node, 0, len(n.Attrs))
		for _, a := range n.Attrs {
			out = append(out, &xmldoc.Node{
				Kind:   xmldoc.KindAttribute,
				Name:   a.Name,
				Data:   a.Value,
				Parent: n,
			})
		}
		return out
	case axisFollowingSibling, axisPrecedingSibling:
		if n.Parent == nil {
			return nil
		}
		idx := n.Index()
		if idx < 0 {
			return nil
		}
		sibs := n.Parent.Children
		if ax == axisFollowingSibling {
			return sibs[idx+1:]
		}
		// preceding-sibling in reverse document order (nearest first).
		out := make([]*xmldoc.Node, 0, idx)
		for i := idx - 1; i >= 0; i-- {
			out = append(out, sibs[i])
		}
		return out
	}
	return nil
}

// matchTest applies the node test. Unprefixed name tests match local
// names; prefixed tests require the exact prefixed name.
func matchTest(n *xmldoc.Node, t nodeTest, ax axis) bool {
	switch t.kind {
	case testNode:
		return true
	case testText:
		return n.Kind == xmldoc.KindText
	case testComment:
		return n.Kind == xmldoc.KindComment
	case testName:
		principal := xmldoc.KindElement
		if ax == axisAttribute {
			principal = xmldoc.KindAttribute
		}
		if n.Kind != principal {
			return false
		}
		return nameMatches(n, t.name)
	}
	return false
}

func nameMatches(n *xmldoc.Node, test string) bool {
	if test == "*" {
		return true
	}
	if n.Name == test {
		return true
	}
	// Unprefixed test matches any prefix's local name.
	for i := 0; i < len(test); i++ {
		if test[i] == ':' {
			return false // prefixed test: exact only
		}
	}
	return n.LocalName() == test
}
