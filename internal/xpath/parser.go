package xpath

import (
	"fmt"
	"strconv"
)

// parser implements a recursive-descent parser for the XPath 1.0
// grammar subset described in the package documentation.
type parser struct {
	toks []token
	pos  int
	src  string
}

func parse(src string) (expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("xpath: trailing input %s in %q", p.peek(), src)
	}
	return e, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) backup()     { p.pos-- }

// accept consumes the next token if it has the given kind.
func (p *parser) accept(k tokKind) bool {
	if p.peek().kind == k {
		p.pos++
		return true
	}
	return false
}

// acceptName consumes a name token with the exact given text (used for
// word operators "and", "or", "div", "mod").
func (p *parser) acceptName(text string) bool {
	if p.peek().kind == tokName && p.peek().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return token{}, fmt.Errorf("xpath: expected %s, got %s in %q", what, t, p.src)
	}
	return t, nil
}

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptName("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binOp{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.acceptName("and") {
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = &binOp{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseEquality() (expr, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokEq):
			op = "="
		case p.accept(tokNeq):
			op = "!="
		default:
			return l, nil
		}
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = &binOp{op: op, l: l, r: r}
	}
}

func (p *parser) parseRelational() (expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokLt):
			op = "<"
		case p.accept(tokLe):
			op = "<="
		case p.accept(tokGt):
			op = ">"
		case p.accept(tokGe):
			op = ">="
		default:
			return l, nil
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &binOp{op: op, l: l, r: r}
	}
}

func (p *parser) parseAdditive() (expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokPlus):
			op = "+"
		case p.accept(tokMinus):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &binOp{op: op, l: l, r: r}
	}
}

func (p *parser) parseMultiplicative() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokStar):
			op = "*"
		case p.acceptName("div"):
			op = "div"
		case p.acceptName("mod"):
			op = "mod"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binOp{op: op, l: l, r: r}
	}
}

func (p *parser) parseUnary() (expr, error) {
	if p.accept(tokMinus) {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &negExpr{x: x}, nil
	}
	return p.parseUnion()
}

func (p *parser) parseUnion() (expr, error) {
	l, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPipe) {
		r, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		l = &unionExpr{l: l, r: r}
	}
	return l, nil
}

// parsePath parses a PathExpr: either a LocationPath, or a FilterExpr
// optionally followed by /RelativeLocationPath.
func (p *parser) parsePath() (expr, error) {
	t := p.peek()
	switch t.kind {
	case tokSlash, tokDoubleSlash:
		return p.parseLocationPath(true)
	case tokDot, tokDotDot, tokAt, tokStar, tokAxis:
		return p.parseLocationPath(false)
	case tokName:
		// A bare name starts a location path unless it is a function
		// call (name followed by '(' and not a node-type test).
		if p.isFunctionCall() {
			return p.parseFilterPath()
		}
		return p.parseLocationPath(false)
	case tokNumber, tokLiteral, tokDollar, tokLParen:
		return p.parseFilterPath()
	default:
		return nil, fmt.Errorf("xpath: unexpected %s in %q", t, p.src)
	}
}

// isFunctionCall reports whether the upcoming name token begins a
// function call rather than a name test. Node-type tests (text(),
// node(), comment()) are parsed as steps, not calls.
func (p *parser) isFunctionCall() bool {
	t := p.peek()
	if t.kind != tokName {
		return false
	}
	switch t.text {
	case "text", "node", "comment":
		return false
	}
	return p.toks[p.pos+1].kind == tokLParen
}

// parseFilterPath parses FilterExpr ('/' | '//') RelativeLocationPath?.
func (p *parser) parseFilterPath() (expr, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	fe := &filterExpr{primary: prim}
	for p.peek().kind == tokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		fe.preds = append(fe.preds, pred)
	}
	var start expr = fe
	if len(fe.preds) == 0 {
		start = prim
	}
	switch p.peek().kind {
	case tokSlash, tokDoubleSlash:
		pe := &pathExpr{start: start}
		if err := p.parseSteps(pe); err != nil {
			return nil, err
		}
		return pe, nil
	}
	return start, nil
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("xpath: bad number %q: %w", t.text, err)
		}
		return &numberLit{v: f}, nil
	case tokLiteral:
		return &stringLit{v: t.text}, nil
	case tokDollar:
		name, err := p.expect(tokName, "variable name")
		if err != nil {
			return nil, err
		}
		return &varRef{name: name.text}, nil
	case tokLParen:
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tokName:
		// Function call.
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		fc := &funcCall{name: t.text}
		if !p.accept(tokRParen) {
			for {
				arg, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				fc.args = append(fc.args, arg)
				if p.accept(tokRParen) {
					break
				}
				if _, err := p.expect(tokComma, ","); err != nil {
					return nil, err
				}
			}
		}
		if _, ok := coreFunctions[fc.name]; !ok {
			return nil, fmt.Errorf("xpath: unknown function %q in %q", fc.name, p.src)
		}
		return fc, nil
	default:
		return nil, fmt.Errorf("xpath: unexpected %s in %q", t, p.src)
	}
}

func (p *parser) parseLocationPath(absStart bool) (expr, error) {
	pe := &pathExpr{}
	if absStart {
		pe.abs = true
		t := p.next() // '/' or '//'
		if t.kind == tokDoubleSlash {
			pe.steps = append(pe.steps, &step{ax: axisDescendantOrSelf, test: nodeTest{kind: testNode}})
		} else if isStepStart(p.peek().kind) {
			// "/" alone selects the root; steps optional.
		} else {
			return pe, nil
		}
		if !isStepStart(p.peek().kind) {
			if t.kind == tokDoubleSlash {
				return nil, fmt.Errorf("xpath: '//' must be followed by a step in %q", p.src)
			}
			return pe, nil
		}
	}
	st, err := p.parseStep()
	if err != nil {
		return nil, err
	}
	pe.steps = append(pe.steps, st)
	if err := p.parseSteps(pe); err != nil {
		return nil, err
	}
	return pe, nil
}

// parseSteps consumes ('/' Step | '//' Step)* appending to pe.
func (p *parser) parseSteps(pe *pathExpr) error {
	for {
		switch {
		case p.accept(tokSlash):
		case p.accept(tokDoubleSlash):
			pe.steps = append(pe.steps, &step{ax: axisDescendantOrSelf, test: nodeTest{kind: testNode}})
		default:
			return nil
		}
		st, err := p.parseStep()
		if err != nil {
			return err
		}
		pe.steps = append(pe.steps, st)
	}
}

func isStepStart(k tokKind) bool {
	switch k {
	case tokName, tokStar, tokAt, tokDot, tokDotDot, tokAxis:
		return true
	}
	return false
}

func (p *parser) parseStep() (*step, error) {
	t := p.next()
	st := &step{ax: axisChild}
	switch t.kind {
	case tokDot:
		return &step{ax: axisSelf, test: nodeTest{kind: testNode}}, nil
	case tokDotDot:
		return &step{ax: axisParent, test: nodeTest{kind: testNode}}, nil
	case tokAt:
		st.ax = axisAttribute
		nt, err := p.parseNodeTest()
		if err != nil {
			return nil, err
		}
		st.test = nt
	case tokAxis:
		ax, ok := axisNames[t.text]
		if !ok {
			return nil, fmt.Errorf("xpath: unsupported axis %q in %q", t.text, p.src)
		}
		st.ax = ax
		nt, err := p.parseNodeTest()
		if err != nil {
			return nil, err
		}
		st.test = nt
	case tokName, tokStar:
		p.backup()
		nt, err := p.parseNodeTest()
		if err != nil {
			return nil, err
		}
		st.test = nt
	default:
		return nil, fmt.Errorf("xpath: expected step, got %s in %q", t, p.src)
	}
	for p.peek().kind == tokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		st.preds = append(st.preds, pred)
	}
	return st, nil
}

func (p *parser) parseNodeTest() (nodeTest, error) {
	t := p.next()
	switch t.kind {
	case tokStar:
		return nodeTest{kind: testName, name: "*"}, nil
	case tokName:
		switch t.text {
		case "text", "node", "comment":
			if p.accept(tokLParen) {
				if _, err := p.expect(tokRParen, ")"); err != nil {
					return nodeTest{}, err
				}
				switch t.text {
				case "text":
					return nodeTest{kind: testText}, nil
				case "node":
					return nodeTest{kind: testNode}, nil
				default:
					return nodeTest{kind: testComment}, nil
				}
			}
		}
		return nodeTest{kind: testName, name: t.text}, nil
	default:
		return nodeTest{}, fmt.Errorf("xpath: expected node test, got %s in %q", t, p.src)
	}
}

func (p *parser) parsePredicate() (expr, error) {
	if _, err := p.expect(tokLBracket, "["); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket, "]"); err != nil {
		return nil, err
	}
	return e, nil
}
