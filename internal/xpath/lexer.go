package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds of the XPath subset.
type tokKind int

const (
	tokEOF  tokKind = iota + 1
	tokName         // NCName or prefixed QName
	tokNumber
	tokLiteral // quoted string
	tokSlash
	tokDoubleSlash
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokDot
	tokDotDot
	tokAt
	tokComma
	tokPipe
	tokStar
	tokEq
	tokNeq
	tokLt
	tokLe
	tokGt
	tokGe
	tokPlus
	tokMinus
	tokDollar
	tokAxis // "axisname::"
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of expression"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes an XPath expression.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; XPath expressions are short.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '/':
		l.pos++
		if l.peekByte() == '/' {
			l.pos++
			return token{tokDoubleSlash, "//", start}, nil
		}
		return token{tokSlash, "/", start}, nil
	case '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case '.':
		l.pos++
		if l.peekByte() == '.' {
			l.pos++
			return token{tokDotDot, "..", start}, nil
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos--
			return l.lexNumber()
		}
		return token{tokDot, ".", start}, nil
	case '@':
		l.pos++
		return token{tokAt, "@", start}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case '|':
		l.pos++
		return token{tokPipe, "|", start}, nil
	case '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case '=':
		l.pos++
		return token{tokEq, "=", start}, nil
	case '!':
		l.pos++
		if l.peekByte() != '=' {
			return token{}, fmt.Errorf("xpath: unexpected '!' at %d in %q", start, l.src)
		}
		l.pos++
		return token{tokNeq, "!=", start}, nil
	case '<':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
			return token{tokLe, "<=", start}, nil
		}
		return token{tokLt, "<", start}, nil
	case '>':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
			return token{tokGe, ">=", start}, nil
		}
		return token{tokGt, ">", start}, nil
	case '+':
		l.pos++
		return token{tokPlus, "+", start}, nil
	case '-':
		l.pos++
		return token{tokMinus, "-", start}, nil
	case '$':
		l.pos++
		return token{tokDollar, "$", start}, nil
	case '\'', '"':
		quote := c
		end := strings.IndexByte(l.src[l.pos+1:], quote)
		if end < 0 {
			return token{}, fmt.Errorf("xpath: unterminated string at %d in %q", start, l.src)
		}
		lit := l.src[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return token{tokLiteral, lit, start}, nil
	}
	if isDigit(c) {
		return l.lexNumber()
	}
	if isNameStart(rune(c)) {
		return l.lexName()
	}
	return token{}, fmt.Errorf("xpath: unexpected character %q at %d in %q", c, start, l.src)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	return token{tokNumber, l.src[start:l.pos], start}, nil
}

func (l *lexer) lexName() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isNameChar(rune(l.src[l.pos])) {
		l.pos++
	}
	// QName may include one prefix colon, but "::" terminates the name
	// and becomes an axis marker.
	if l.pos+1 < len(l.src) && l.src[l.pos] == ':' && l.src[l.pos+1] == ':' {
		name := l.src[start:l.pos]
		l.pos += 2
		return token{tokAxis, name, start}, nil
	}
	if l.pos < len(l.src) && l.src[l.pos] == ':' && l.pos+1 < len(l.src) && isNameStart(rune(l.src[l.pos+1])) {
		l.pos++
		for l.pos < len(l.src) && isNameChar(rune(l.src[l.pos])) {
			l.pos++
		}
	}
	return token{tokName, l.src[start:l.pos], start}, nil
}

func (l *lexer) peekByte() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
