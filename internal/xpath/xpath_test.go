package xpath

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmldoc"
)

const testDoc = `
<library>
  <book id="b1" year="1994">
    <title>Design Patterns</title>
    <author>Gamma</author>
    <author>Helm</author>
    <price>54.99</price>
  </book>
  <book id="b2" year="1999">
    <title>Refactoring</title>
    <author>Fowler</author>
    <price>47.50</price>
  </book>
  <journal id="j1">
    <title>IEEE Internet Computing</title>
  </journal>
</library>`

func doc(t *testing.T) *xmldoc.Node {
	t.Helper()
	n, err := xmldoc.ParseString(testDoc)
	if err != nil {
		t.Fatalf("parse test doc: %v", err)
	}
	return n
}

func sel(t *testing.T, n *xmldoc.Node, src string) []*xmldoc.Node {
	t.Helper()
	e, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return e.Select(n)
}

func TestSelectBasics(t *testing.T) {
	d := doc(t)
	tests := []struct {
		src  string
		want int
	}{
		{"book", 3}, // from root element: no children named book? actually library is context; book children = 2... see below
	}
	_ = tests
	if got := len(sel(t, d, "book")); got != 2 {
		t.Errorf("book = %d, want 2", got)
	}
	if got := len(sel(t, d, "*")); got != 3 {
		t.Errorf("* = %d, want 3", got)
	}
	if got := len(sel(t, d, "book/author")); got != 3 {
		t.Errorf("book/author = %d, want 3", got)
	}
	if got := len(sel(t, d, "//author")); got != 3 {
		t.Errorf("//author = %d, want 3", got)
	}
	if got := len(sel(t, d, "/library/book")); got != 2 {
		t.Errorf("/library/book = %d, want 2", got)
	}
	if got := len(sel(t, d, "journal|book")); got != 3 {
		t.Errorf("union = %d, want 3", got)
	}
}

func TestPredicates(t *testing.T) {
	d := doc(t)
	if got := sel(t, d, "book[1]/title")[0].Text(); got != "Design Patterns" {
		t.Errorf("book[1]/title = %q", got)
	}
	if got := sel(t, d, "book[2]/title")[0].Text(); got != "Refactoring" {
		t.Errorf("book[2]/title = %q", got)
	}
	if got := sel(t, d, "book[last()]/title")[0].Text(); got != "Refactoring" {
		t.Errorf("book[last()] = %q", got)
	}
	if got := len(sel(t, d, "book[@year='1994']")); got != 1 {
		t.Errorf("attr predicate = %d", got)
	}
	if got := len(sel(t, d, "book[author='Fowler']")); got != 1 {
		t.Errorf("child-value predicate = %d", got)
	}
	if got := len(sel(t, d, "book[price>50]")); got != 1 {
		t.Errorf("numeric predicate = %d", got)
	}
	if got := len(sel(t, d, "book[count(author)=2]")); got != 1 {
		t.Errorf("count predicate = %d", got)
	}
	if got := len(sel(t, d, "book[position()=2]")); got != 1 {
		t.Errorf("position predicate = %d", got)
	}
}

func TestAttributes(t *testing.T) {
	d := doc(t)
	attrs := sel(t, d, "book/@id")
	if len(attrs) != 2 {
		t.Fatalf("@id count = %d", len(attrs))
	}
	if attrs[0].Kind != xmldoc.KindAttribute || attrs[0].Data != "b1" {
		t.Errorf("first @id = %+v", attrs[0])
	}
	all := sel(t, d, "book[1]/@*")
	if len(all) != 2 {
		t.Errorf("@* = %d, want 2", len(all))
	}
}

func TestAxes(t *testing.T) {
	d := doc(t)
	title := sel(t, d, "book[1]/title")[0]
	if got := MustCompile("..").First(title); got == nil || got.LocalName() != "book" {
		t.Errorf(".. = %v", got)
	}
	if got := MustCompile("ancestor::library").Select(title); len(got) != 1 {
		t.Errorf("ancestor = %d", len(got))
	}
	if got := MustCompile("ancestor-or-self::*").Select(title); len(got) != 3 {
		t.Errorf("ancestor-or-self = %d", len(got))
	}
	if got := MustCompile("following-sibling::*").Select(title); len(got) != 3 {
		t.Errorf("following-sibling = %d, want 3 (2 authors + price)", len(got))
	}
	authors := sel(t, d, "book[1]/author")
	if got := MustCompile("preceding-sibling::title").Select(authors[0]); len(got) != 1 {
		t.Errorf("preceding-sibling = %d", len(got))
	}
	if got := MustCompile("descendant::title").Select(d); len(got) != 3 {
		t.Errorf("descendant = %d", len(got))
	}
	if got := MustCompile("self::book").Select(authors[0]); len(got) != 0 {
		t.Errorf("self::book on author = %d", len(got))
	}
	if got := MustCompile("descendant-or-self::book").Select(d); len(got) != 2 {
		t.Errorf("descendant-or-self::book = %d", len(got))
	}
}

func TestTextNodes(t *testing.T) {
	d := doc(t)
	texts := sel(t, d, "book[1]/title/text()")
	if len(texts) != 1 || texts[0].Data != "Design Patterns" {
		t.Errorf("text() = %v", texts)
	}
	nodes := sel(t, d, "book[1]/node()")
	if len(nodes) != 4 {
		t.Errorf("node() = %d, want 4 elements", len(nodes))
	}
}

func TestStringFunctions(t *testing.T) {
	d := doc(t)
	tests := []struct {
		src, want string
	}{
		{"string(book[1]/title)", "Design Patterns"},
		{"concat('a', 'b', 'c')", "abc"},
		{"substring('hello', 2)", "ello"},
		{"substring('hello', 2, 3)", "ell"},
		{"substring-before('key=value', '=')", "key"},
		{"substring-after('key=value', '=')", "value"},
		{"normalize-space('  a   b  ')", "a b"},
		{"translate('abc', 'abc', 'ABC')", "ABC"},
		{"translate('abcd', 'abc', 'A')", "Ad"},
		{"name(book[1])", "book"},
		{"local-name(book[1])", "book"},
	}
	for _, tt := range tests {
		e, err := Compile(tt.src)
		if err != nil {
			t.Errorf("compile %q: %v", tt.src, err)
			continue
		}
		if got := e.EvalString(d); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestBooleanAndNumberFunctions(t *testing.T) {
	d := doc(t)
	boolTests := []struct {
		src  string
		want bool
	}{
		{"contains('design patterns', 'pattern')", true},
		{"starts-with('gnutella', 'gnu')", true},
		{"starts-with('gnutella', 'nap')", false},
		{"not(false())", true},
		{"true()", true},
		{"boolean(book)", true},
		{"boolean(missing)", false},
		{"count(book) = 2", true},
		{"book/price > 50", true},
		{"book/price > 60", false},
		{"string-length('abc') = 3", true},
	}
	for _, tt := range boolTests {
		if got := MustCompile(tt.src).EvalBool(d); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
	numTests := []struct {
		src  string
		want float64
	}{
		{"count(//author)", 3},
		{"sum(book/price)", 102.49},
		{"floor(2.7)", 2},
		{"ceiling(2.1)", 3},
		{"round(2.5)", 3},
		{"round(-2.5)", -2},
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 div 4", 2.5},
		{"10 mod 3", 1},
		{"-5 + 2", -3},
	}
	for _, tt := range numTests {
		got := MustCompile(tt.src).EvalNumber(d)
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestNumberFormatting(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{"string(3)", "3"},
		{"string(3.5)", "3.5"},
		{"string(1 div 0)", "Infinity"},
		{"string(-1 div 0)", "-Infinity"},
		{"string(number('junk'))", "NaN"},
	}
	n := xmldoc.NewElement("x")
	for _, tt := range tests {
		if got := MustCompile(tt.src).EvalString(n); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestVariables(t *testing.T) {
	d := doc(t)
	e := MustCompile("book[@id = $want]/title")
	env := &Env{Vars: map[string]Value{"want": StringValue("b2")}}
	v := e.EvalEnv(d, env)
	if len(v.Nodes) != 1 || v.Nodes[0].Text() != "Refactoring" {
		t.Errorf("variable predicate = %v", v.Nodes)
	}
	// Unbound variable: empty string.
	if got := MustCompile("$missing").EvalString(d); got != "" {
		t.Errorf("unbound var = %q", got)
	}
}

func TestPrefixedNameMatching(t *testing.T) {
	schema := `<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="community"><complexType><sequence><element name="name" type="xsd:string"/></sequence></complexType></element></schema>`
	d, err := xmldoc.ParseString(schema)
	if err != nil {
		t.Fatal(err)
	}
	// Unprefixed test matches prefixed nodes.
	if got := len(sel(t, d, "//element")); got != 2 {
		t.Errorf("//element = %d, want 2", got)
	}
	// Prefixed test matches exactly.
	if got := len(sel(t, d, "//xsd:element")); got != 2 {
		t.Errorf("//xsd:element = %d, want 2", got)
	}
	if got := MustCompile("element/@name").EvalString(d); got != "community" {
		t.Errorf("@name = %q", got)
	}
}

func TestRootAndAbsolutePaths(t *testing.T) {
	d := doc(t)
	deep := sel(t, d, "book[1]/author")[0]
	if got := len(MustCompile("/library").Select(deep)); got != 1 {
		t.Errorf("absolute path from deep node = %d", got)
	}
	if got := len(MustCompile("//book").Select(deep)); got != 2 {
		t.Errorf("// from deep node = %d", got)
	}
	if got := MustCompile("/").Select(deep); len(got) != 1 || got[0].Name != "library" {
		t.Errorf("/ = %v", got)
	}
}

func TestFilterExprWithPath(t *testing.T) {
	d := doc(t)
	// Parenthesized expression followed by a path.
	if got := len(sel(t, d, "(book|journal)/title")); got != 3 {
		t.Errorf("(union)/title = %d", got)
	}
	if got := len(sel(t, d, "(//book)[1]/author")); got != 2 {
		t.Errorf("(//book)[1]/author = %d", got)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"book[",
		"book]",
		"@",
		"unknownfn()",
		"book[@]",
		"'unterminated",
		"a ! b",
		"1 +",
		"//",
		"$",
		"axis-typo::x",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestNodeSetComparisons(t *testing.T) {
	d := doc(t)
	// Existential semantics: any author equals.
	if !MustCompile("book/author = 'Fowler'").EvalBool(d) {
		t.Error("existential = failed")
	}
	// != is also existential: some author != 'Fowler' is true.
	if !MustCompile("book/author != 'Fowler'").EvalBool(d) {
		t.Error("existential != failed")
	}
	// Node-set vs node-set.
	if !MustCompile("book[1]/title = //title").EvalBool(d) {
		t.Error("nodeset vs nodeset = failed")
	}
	// Empty node-set compares false.
	if MustCompile("missing = 'x'").EvalBool(d) {
		t.Error("empty nodeset = value should be false")
	}
}

func TestEvalOnAttributeContext(t *testing.T) {
	d := doc(t)
	attr := sel(t, d, "book[1]/@id")[0]
	if got := MustCompile("string(.)").EvalString(attr); got != "b1" {
		t.Errorf("string(attr) = %q", got)
	}
	if got := MustCompile("..").First(attr); got == nil || got.LocalName() != "book" {
		t.Errorf("parent of attribute = %v", got)
	}
}

// Property: compiling and evaluating any expression built from a safe
// grammar never panics and Select never returns nil nodes.
func TestPropertyNoPanics(t *testing.T) {
	d := doc(t)
	parts := []string{"book", "author", "title", "@id", "*", "text()", "..", "."}
	f := func(a, b, c uint8) bool {
		src := parts[int(a)%len(parts)] + "/" + parts[int(b)%len(parts)]
		if c%2 == 0 {
			src = "//" + src
		}
		e, err := Compile(src)
		if err != nil {
			// Some combinations are invalid (e.g. @id/..); that's fine
			// as long as it's an error, not a panic.
			return true
		}
		for _, n := range e.Select(d) {
			if n == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: position predicates partition — book[1] and book[2]
// together equal book.
func TestPropertyPositionPartition(t *testing.T) {
	d := doc(t)
	all := sel(t, d, "book")
	var parts []*xmldoc.Node
	for i := 1; i <= len(all); i++ {
		parts = append(parts, sel(t, d, "book["+itoa(i)+"]")...)
	}
	if len(parts) != len(all) {
		t.Fatalf("partition size %d != %d", len(parts), len(all))
	}
	for i := range all {
		if all[i] != parts[i] {
			t.Errorf("partition order differs at %d", i)
		}
	}
}

func itoa(i int) string {
	return strings.TrimSpace(strings.Repeat("", 0) + string(rune('0'+i)))
}

func TestSelectHelper(t *testing.T) {
	d := doc(t)
	ns, err := Select(d, "book/title")
	if err != nil || len(ns) != 2 {
		t.Errorf("Select helper = %v, %v", ns, err)
	}
	if _, err := Select(d, "[["); err == nil {
		t.Error("Select with bad expr: no error")
	}
}

func TestSourceAccessor(t *testing.T) {
	e := MustCompile("book/title")
	if e.Source() != "book/title" {
		t.Errorf("Source = %q", e.Source())
	}
}
