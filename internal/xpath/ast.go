package xpath

// AST node types for the XPath subset. Expressions evaluate to a Value
// (node-set, string, number, or boolean) relative to a context.

type expr interface {
	eval(ctx *context) Value
}

// binOp is a binary operator application.
type binOp struct {
	op   string // "or" "and" "=" "!=" "<" "<=" ">" ">=" "+" "-" "*" "div" "mod"
	l, r expr
}

// negExpr is unary minus.
type negExpr struct{ x expr }

// unionExpr is the '|' node-set union.
type unionExpr struct{ l, r expr }

// numberLit is a numeric literal.
type numberLit struct{ v float64 }

// stringLit is a quoted string literal.
type stringLit struct{ v string }

// varRef references a variable binding ($name).
type varRef struct{ name string }

// funcCall invokes a core-library function.
type funcCall struct {
	name string
	args []expr
}

// pathExpr is a location path, optionally rooted at a filter
// expression (e.g. "func(..)/child" or "(expr)[1]/x").
type pathExpr struct {
	abs   bool // starts with '/'
	start expr // nil for pure location paths
	steps []*step
}

// filterExpr is a primary expression with predicates.
type filterExpr struct {
	primary expr
	preds   []expr
}

// axis identifies a traversal direction.
type axis int

const (
	axisChild axis = iota + 1
	axisDescendant
	axisDescendantOrSelf
	axisParent
	axisAncestor
	axisAncestorOrSelf
	axisSelf
	axisAttribute
	axisFollowingSibling
	axisPrecedingSibling
)

var axisNames = map[string]axis{
	"child":              axisChild,
	"descendant":         axisDescendant,
	"descendant-or-self": axisDescendantOrSelf,
	"parent":             axisParent,
	"ancestor":           axisAncestor,
	"ancestor-or-self":   axisAncestorOrSelf,
	"self":               axisSelf,
	"attribute":          axisAttribute,
	"following-sibling":  axisFollowingSibling,
	"preceding-sibling":  axisPrecedingSibling,
}

// nodeTest restricts which nodes a step selects.
type nodeTest struct {
	kind testKind
	name string // for testName: "*", "local", or "pfx:local"
}

type testKind int

const (
	testName    testKind = iota + 1 // name or *
	testText                        // text()
	testNode                        // node()
	testComment                     // comment()
)

// step is one location step: axis::test[pred]*.
type step struct {
	ax    axis
	test  nodeTest
	preds []expr
}
