package xpath

import (
	"math"
	"strings"

	"repro/internal/xmldoc"
)

// xpathFunc implements one core-library function.
type xpathFunc func(ctx *context, args []expr) Value

// coreFunctions is the XPath 1.0 core function library subset. The
// parser validates function names against this table at compile time.
var coreFunctions map[string]xpathFunc

func init() {
	// Populated in init because entries reference helper closures; the
	// table is written once and read-only afterwards.
	coreFunctions = map[string]xpathFunc{
		"last":             fnLast,
		"position":         fnPosition,
		"count":            fnCount,
		"name":             fnName,
		"local-name":       fnLocalName,
		"string":           fnString,
		"concat":           fnConcat,
		"starts-with":      fnStartsWith,
		"contains":         fnContains,
		"substring-before": fnSubstringBefore,
		"substring-after":  fnSubstringAfter,
		"substring":        fnSubstring,
		"string-length":    fnStringLength,
		"normalize-space":  fnNormalizeSpace,
		"translate":        fnTranslate,
		"boolean":          fnBoolean,
		"not":              fnNot,
		"true":             fnTrue,
		"false":            fnFalse,
		"number":           fnNumber,
		"sum":              fnSum,
		"floor":            fnFloor,
		"ceiling":          fnCeiling,
		"round":            fnRound,
	}
}

// argString evaluates args[i] as a string, defaulting to the context
// node's string-value when the argument is absent.
func argString(ctx *context, args []expr, i int) string {
	if i >= len(args) {
		return nodeStringValue(ctx.node)
	}
	return args[i].eval(ctx).String()
}

func fnLast(ctx *context, _ []expr) Value     { return NumberValue(float64(ctx.size)) }
func fnPosition(ctx *context, _ []expr) Value { return NumberValue(float64(ctx.pos)) }

func fnCount(ctx *context, args []expr) Value {
	if len(args) == 0 {
		return NumberValue(0)
	}
	v := args[0].eval(ctx)
	if v.Kind != KindNodeSet {
		return NumberValue(0)
	}
	return NumberValue(float64(len(v.Nodes)))
}

func fnName(ctx *context, args []expr) Value {
	n := argNode(ctx, args)
	if n == nil {
		return StringValue("")
	}
	return StringValue(n.Name)
}

func fnLocalName(ctx *context, args []expr) Value {
	n := argNode(ctx, args)
	if n == nil {
		return StringValue("")
	}
	return StringValue(n.LocalName())
}

func argNode(ctx *context, args []expr) *xmldoc.Node {
	if len(args) == 0 {
		return ctx.node
	}
	v := args[0].eval(ctx)
	if v.Kind != KindNodeSet || len(v.Nodes) == 0 {
		return nil
	}
	return v.Nodes[0]
}

func fnString(ctx *context, args []expr) Value {
	return StringValue(argString(ctx, args, 0))
}

func fnConcat(ctx *context, args []expr) Value {
	var b strings.Builder
	for _, a := range args {
		b.WriteString(a.eval(ctx).String())
	}
	return StringValue(b.String())
}

func fnStartsWith(ctx *context, args []expr) Value {
	return BooleanValue(strings.HasPrefix(argString(ctx, args, 0), argString(ctx, args, 1)))
}

func fnContains(ctx *context, args []expr) Value {
	return BooleanValue(strings.Contains(argString(ctx, args, 0), argString(ctx, args, 1)))
}

func fnSubstringBefore(ctx *context, args []expr) Value {
	s, sep := argString(ctx, args, 0), argString(ctx, args, 1)
	if i := strings.Index(s, sep); i >= 0 {
		return StringValue(s[:i])
	}
	return StringValue("")
}

func fnSubstringAfter(ctx *context, args []expr) Value {
	s, sep := argString(ctx, args, 0), argString(ctx, args, 1)
	if i := strings.Index(s, sep); i >= 0 {
		return StringValue(s[i+len(sep):])
	}
	return StringValue("")
}

// fnSubstring implements XPath substring() with its 1-based, rounded
// index semantics.
func fnSubstring(ctx *context, args []expr) Value {
	s := []rune(argString(ctx, args, 0))
	if len(args) < 2 {
		return StringValue(string(s))
	}
	start := math.Round(args[1].eval(ctx).Number())
	end := math.Inf(1)
	if len(args) >= 3 {
		end = start + math.Round(args[2].eval(ctx).Number())
	}
	if math.IsNaN(start) || math.IsNaN(end) {
		return StringValue("")
	}
	var b strings.Builder
	for i, r := range s {
		p := float64(i + 1)
		if p >= start && p < end {
			b.WriteRune(r)
		}
	}
	return StringValue(b.String())
}

func fnStringLength(ctx *context, args []expr) Value {
	return NumberValue(float64(len([]rune(argString(ctx, args, 0)))))
}

func fnNormalizeSpace(ctx *context, args []expr) Value {
	return StringValue(strings.Join(strings.Fields(argString(ctx, args, 0)), " "))
}

func fnTranslate(ctx *context, args []expr) Value {
	s := argString(ctx, args, 0)
	from := []rune(argString(ctx, args, 1))
	to := []rune(argString(ctx, args, 2))
	mapping := make(map[rune]rune, len(from))
	drop := make(map[rune]bool)
	for i, f := range from {
		if _, dup := mapping[f]; dup || drop[f] {
			continue
		}
		if i < len(to) {
			mapping[f] = to[i]
		} else {
			drop[f] = true
		}
	}
	var b strings.Builder
	for _, r := range s {
		if drop[r] {
			continue
		}
		if m, ok := mapping[r]; ok {
			b.WriteRune(m)
			continue
		}
		b.WriteRune(r)
	}
	return StringValue(b.String())
}

func fnBoolean(ctx *context, args []expr) Value {
	if len(args) == 0 {
		return BooleanValue(false)
	}
	return BooleanValue(args[0].eval(ctx).Boolean())
}

func fnNot(ctx *context, args []expr) Value {
	if len(args) == 0 {
		return BooleanValue(true)
	}
	return BooleanValue(!args[0].eval(ctx).Boolean())
}

func fnTrue(*context, []expr) Value  { return BooleanValue(true) }
func fnFalse(*context, []expr) Value { return BooleanValue(false) }

func fnNumber(ctx *context, args []expr) Value {
	if len(args) == 0 {
		return NumberValue(parseNumber(nodeStringValue(ctx.node)))
	}
	return NumberValue(args[0].eval(ctx).Number())
}

func fnSum(ctx *context, args []expr) Value {
	if len(args) == 0 {
		return NumberValue(0)
	}
	v := args[0].eval(ctx)
	if v.Kind != KindNodeSet {
		return NumberValue(math.NaN())
	}
	total := 0.0
	for _, n := range v.Nodes {
		total += parseNumber(nodeStringValue(n))
	}
	return NumberValue(total)
}

func fnFloor(ctx *context, args []expr) Value {
	if len(args) == 0 {
		return NumberValue(math.NaN())
	}
	return NumberValue(math.Floor(args[0].eval(ctx).Number()))
}

func fnCeiling(ctx *context, args []expr) Value {
	if len(args) == 0 {
		return NumberValue(math.NaN())
	}
	return NumberValue(math.Ceil(args[0].eval(ctx).Number()))
}

func fnRound(ctx *context, args []expr) Value {
	if len(args) == 0 {
		return NumberValue(math.NaN())
	}
	f := args[0].eval(ctx).Number()
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return NumberValue(f)
	}
	// XPath rounds half toward +infinity.
	return NumberValue(math.Floor(f + 0.5))
}
