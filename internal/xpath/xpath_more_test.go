package xpath

import (
	"testing"

	"repro/internal/xmldoc"
)

func TestDocumentOrderOfDoubleSlash(t *testing.T) {
	d := xmldoc.MustParse(`<r><a><v>1</v></a><v>2</v><b><v>3</v></b></r>`)
	got := MustCompile("//v").Select(d)
	if len(got) != 3 {
		t.Fatalf("count = %d", len(got))
	}
	for i, want := range []string{"1", "2", "3"} {
		if got[i].Text() != want {
			t.Errorf("order[%d] = %q, want %q", i, got[i].Text(), want)
		}
	}
}

func TestUnionPreservesFirstOccurrence(t *testing.T) {
	d := xmldoc.MustParse(`<r><a/><b/></r>`)
	got := MustCompile("a|b|a").Select(d)
	if len(got) != 2 {
		t.Errorf("union dedup = %d nodes", len(got))
	}
}

func TestArithmeticOverNodeValues(t *testing.T) {
	d := xmldoc.MustParse(`<o><price>10.5</price><qty>3</qty></o>`)
	if got := MustCompile("price * qty").EvalNumber(d); got != 31.5 {
		t.Errorf("price*qty = %v", got)
	}
	if got := MustCompile("sum(price|qty)").EvalNumber(d); got != 13.5 {
		t.Errorf("sum = %v", got)
	}
}

func TestPredicateChaining(t *testing.T) {
	d := xmldoc.MustParse(`<l><i k="a">1</i><i k="a">2</i><i k="b">3</i></l>`)
	got := MustCompile("i[@k='a'][2]").Select(d)
	if len(got) != 1 || got[0].Text() != "2" {
		t.Errorf("chained predicates = %v", got)
	}
	// Order matters: [2][@k='a'] selects the 2nd item then filters.
	got = MustCompile("i[2][@k='a']").Select(d)
	if len(got) != 1 || got[0].Text() != "2" {
		t.Errorf("reversed chain = %v", got)
	}
	got = MustCompile("i[3][@k='a']").Select(d)
	if len(got) != 0 {
		t.Errorf("i[3][@k='a'] = %v", got)
	}
}

func TestBooleanCoercionsInPredicates(t *testing.T) {
	d := xmldoc.MustParse(`<l><i><sub/></i><i/></l>`)
	if got := len(MustCompile("i[sub]").Select(d)); got != 1 {
		t.Errorf("existence predicate = %d", got)
	}
	if got := len(MustCompile("i[not(sub)]").Select(d)); got != 1 {
		t.Errorf("not-existence predicate = %d", got)
	}
}

func TestCountOverDescendants(t *testing.T) {
	d := xmldoc.MustParse(`<r><p><c/><c/></p><p><c/></p></r>`)
	if got := MustCompile("count(//c)").EvalNumber(d); got != 3 {
		t.Errorf("count(//c) = %v", got)
	}
	if got := len(MustCompile("p[count(c) = 2]").Select(d)); got != 1 {
		t.Errorf("count predicate = %d", got)
	}
}

func TestStringValueOfComplexElement(t *testing.T) {
	d := xmldoc.MustParse(`<r><name>Abstract <em>Factory</em> pattern</name></r>`)
	if got := MustCompile("string(name)").EvalString(d); got != "Abstract Factory pattern" {
		t.Errorf("string-value = %q", got)
	}
	if !MustCompile("contains(name, 'Factory')").EvalBool(d) {
		t.Error("contains over mixed content failed")
	}
}

func TestParentAndAncestorFromDeep(t *testing.T) {
	d := xmldoc.MustParse(`<a><b><c><d/></c></b></a>`)
	deep := MustCompile("//d").First(d)
	if got := MustCompile("../..").First(deep); got == nil || got.Name != "b" {
		t.Errorf("../.. = %v", got)
	}
	if got := len(MustCompile("ancestor::*").Select(deep)); got != 3 {
		t.Errorf("ancestors = %d", got)
	}
}

func TestNumericStringEdgeCases(t *testing.T) {
	d := xmldoc.NewElement("x")
	cases := []struct {
		src  string
		want string
	}{
		{"string(0.5)", "0.5"},
		{"string(-0.5 - 0.5)", "-1"},
		{"string(2 * 0.5)", "1"},
		{"substring('12345', 0)", "12345"},
		{"substring('12345', 1.5, 2.6)", "234"}, // spec example
		{"normalize-space('')", ""},
	}
	for _, c := range cases {
		if got := MustCompile(c.src).EvalString(d); got != c.want {
			t.Errorf("%s = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestEmptyNodeSetBehaviours(t *testing.T) {
	d := xmldoc.MustParse(`<r><a>1</a></r>`)
	if MustCompile("missing < a").EvalBool(d) {
		t.Error("empty < nonempty should be false")
	}
	if got := MustCompile("string(missing)").EvalString(d); got != "" {
		t.Errorf("string(empty) = %q", got)
	}
	if got := MustCompile("count(missing)").EvalNumber(d); got != 0 {
		t.Errorf("count(empty) = %v", got)
	}
	if MustCompile("missing").EvalBool(d) {
		t.Error("boolean(empty nodeset) = true")
	}
}

func TestSelfAxisWithName(t *testing.T) {
	d := xmldoc.MustParse(`<r><a/><b/></r>`)
	nodes := MustCompile("*[self::a]").Select(d)
	if len(nodes) != 1 || nodes[0].Name != "a" {
		t.Errorf("self:: filter = %v", nodes)
	}
}

func TestFilterExprPredicateOnVariable(t *testing.T) {
	d := xmldoc.MustParse(`<l><i>1</i><i>2</i><i>3</i></l>`)
	items := MustCompile("i").Select(d)
	env := &Env{Vars: map[string]Value{"set": NodeSetValue(items)}}
	e := MustCompile("$set[2]")
	v := e.EvalEnv(d, env)
	if len(v.Nodes) != 1 || v.Nodes[0].Text() != "2" {
		t.Errorf("$set[2] = %v", v.Nodes)
	}
	e2 := MustCompile("count($set)")
	if got := e2.EvalEnv(d, env).Number(); got != 3 {
		t.Errorf("count($set) = %v", got)
	}
}
