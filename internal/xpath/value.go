package xpath

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/xmldoc"
)

// ValueKind discriminates the four XPath value types.
type ValueKind int

// XPath value kinds.
const (
	KindNodeSet ValueKind = iota + 1
	KindString
	KindNumber
	KindBoolean
)

// Value is the result of evaluating an XPath expression: exactly one
// of the four XPath 1.0 types.
type Value struct {
	Kind  ValueKind
	Nodes []*xmldoc.Node
	Str   string
	Num   float64
	Bool  bool
}

// NodeSetValue wraps a node list as a Value.
func NodeSetValue(nodes []*xmldoc.Node) Value { return Value{Kind: KindNodeSet, Nodes: nodes} }

// StringValue wraps a string as a Value.
func StringValue(s string) Value { return Value{Kind: KindString, Str: s} }

// NumberValue wraps a float64 as a Value.
func NumberValue(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// BooleanValue wraps a bool as a Value.
func BooleanValue(b bool) Value { return Value{Kind: KindBoolean, Bool: b} }

// String converts per the XPath string() rules: the string-value of
// the first node for node-sets, lexical forms for numbers/booleans.
func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindNumber:
		return formatNumber(v.Num)
	case KindBoolean:
		if v.Bool {
			return "true"
		}
		return "false"
	case KindNodeSet:
		if len(v.Nodes) == 0 {
			return ""
		}
		return nodeStringValue(v.Nodes[0])
	default:
		return ""
	}
}

// Number converts per the XPath number() rules.
func (v Value) Number() float64 {
	switch v.Kind {
	case KindNumber:
		return v.Num
	case KindBoolean:
		if v.Bool {
			return 1
		}
		return 0
	default:
		return parseNumber(v.String())
	}
}

// Boolean converts per the XPath boolean() rules: non-empty node-set,
// non-empty string, non-zero non-NaN number.
func (v Value) Boolean() bool {
	switch v.Kind {
	case KindBoolean:
		return v.Bool
	case KindNodeSet:
		return len(v.Nodes) > 0
	case KindString:
		return v.Str != ""
	case KindNumber:
		return v.Num != 0 && !math.IsNaN(v.Num)
	default:
		return false
	}
}

// nodeStringValue is the XPath string-value of a node: concatenated
// descendant text for elements, data for text/comment/attribute.
func nodeStringValue(n *xmldoc.Node) string {
	switch n.Kind {
	case xmldoc.KindElement:
		return n.Text()
	default:
		return n.Data
	}
}

// formatNumber renders a float per XPath: integers print without a
// decimal point; NaN prints "NaN".
func formatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatFloat(f, 'f', 0, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// parseNumber implements XPath number(string): leading/trailing space
// allowed, anything else yields NaN.
func parseNumber(s string) float64 {
	s = strings.TrimSpace(s)
	if s == "" {
		return math.NaN()
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}
