package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/query"
)

// StoreBenchConfig tunes E9, the store-scalability experiment. The
// up2pbench command exposes these as flags so operators can size the
// workload to their hardware.
var StoreBenchConfig = struct {
	// Communities is the number of distinct communities seeded.
	Communities int
	// DocsPerCommunity is the corpus size per community.
	DocsPerCommunity int
	// Workers is the number of concurrent clients; each is pinned to
	// one community (round-robin) like a servent serving one user.
	Workers int
	// OpsPerWorker is the operation count each worker executes.
	OpsPerWorker int
	// Shards is the stripe count of the sharded configurations.
	Shards int
}{
	Communities:      16,
	DocsPerCommunity: 200,
	Workers:          8,
	OpsPerWorker:     3000,
	Shards:           index.DefaultShards,
}

// RunE9 measures metadata-store throughput under concurrent
// publishers and searchers: the single-lock baseline (the original
// store: one shard, no cache) against the sharded store, with and
// without the per-shard result cache. Three workloads per
// configuration: batch ingest, community-scoped search, and a mixed
// read-mostly stream (1 put per 8 ops).
func RunE9() (Table, error) {
	cfg := StoreBenchConfig
	t := Table{
		ID:    "E9",
		Title: "metadata store scalability: single-lock vs sharded",
		Headers: []string{
			"configuration", "workload", "workers", "ops", "ops/sec", "speedup",
		},
		Notes: []string{
			fmt.Sprintf("%d communities x %d docs; %d workers x %d ops; community-pinned clients",
				cfg.Communities, cfg.DocsPerCommunity, cfg.Workers, cfg.OpsPerWorker),
			"expected shape: sharding colocates each community (and its inverted-index slice) in one stripe, so search cost no longer grows with the other communities' postings and writers contend per community, not globally",
			"the cache row shows repeated popular queries served without recomputation (generation-validated per-shard LRU)",
		},
	}

	configs := []struct {
		name string
		opts []index.Option
	}{
		{"single-lock (1 shard, no cache)", []index.Option{index.WithShards(1), index.WithCacheSize(0)}},
		{fmt.Sprintf("sharded (%d shards, no cache)", cfg.Shards), []index.Option{index.WithShards(cfg.Shards), index.WithCacheSize(0)}},
		{fmt.Sprintf("sharded+cache (%d shards)", cfg.Shards), []index.Option{index.WithShards(cfg.Shards)}},
	}
	baseline := make(map[string]float64) // workload -> baseline ops/sec

	for ci, c := range configs {
		store := index.NewStore(c.opts...)
		ingestOps, ingestSec := seedStore(store, cfg.Communities, cfg.DocsPerCommunity)
		record := func(workload string, ops int, seconds float64) {
			rate := float64(ops) / seconds
			speedup := "1.00x"
			if ci == 0 {
				baseline[workload] = rate
			} else if b := baseline[workload]; b > 0 {
				speedup = fmt.Sprintf("%.2fx", rate/b)
			}
			t.Rows = append(t.Rows, []string{
				c.name, workload,
				fmt.Sprintf("%d", cfg.Workers),
				fmt.Sprintf("%d", ops),
				fmt.Sprintf("%.0f", rate),
				speedup,
			})
		}
		record("batch ingest", ingestOps, ingestSec)
		searchOps, searchSec := runStoreWorkload(store, cfg.Workers, cfg.OpsPerWorker, cfg.Communities, false)
		record("search", searchOps, searchSec)
		mixedOps, mixedSec := runStoreWorkload(store, cfg.Workers, cfg.OpsPerWorker, cfg.Communities, true)
		record("mixed 8:1", mixedOps, mixedSec)
	}
	return t, nil
}

// seedStore loads the synthetic corpus through PutBatch, one batch per
// community, and reports documents loaded and elapsed seconds.
func seedStore(store *index.Store, communities, docsPer int) (int, float64) {
	start := time.Now()
	total := 0
	for c := 0; c < communities; c++ {
		comm := fmt.Sprintf("community-%02d", c)
		batch := make([]*index.Document, 0, docsPer)
		for i := 0; i < docsPer; i++ {
			batch = append(batch, &index.Document{
				ID:          index.DocID(fmt.Sprintf("d-%02d-%04d", c, i)),
				CommunityID: comm,
				Title:       fmt.Sprintf("Doc %d", i),
				XML:         "<obj>payload</obj>",
				Attrs: query.Attrs{
					"k":    {fmt.Sprintf("v%d", i%10)},
					"tags": {"alpha", fmt.Sprintf("t%d", i%5)},
				},
			})
		}
		if err := store.PutBatch(batch); err != nil {
			panic(fmt.Sprintf("bench: seed store: %v", err))
		}
		total += len(batch)
	}
	return total, time.Since(start).Seconds()
}

// runStoreWorkload drives workers concurrent clients and returns
// (total ops, elapsed seconds). Each worker is pinned to one
// community and rotates through a small filter set (the popular-query
// pattern); with mixed, every 8th operation is a Put into the
// worker's community.
func runStoreWorkload(store *index.Store, workers, opsPer, communities int, mixed bool) (int, float64) {
	filters := make([]query.Filter, 8)
	for i := range filters {
		filters[i] = query.MustParse(fmt.Sprintf("(k=v%d)", i))
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			comm := fmt.Sprintf("community-%02d", w%communities)
			for i := 0; i < opsPer; i++ {
				if mixed && i%8 == 7 {
					_ = store.Put(&index.Document{
						ID:          index.DocID(fmt.Sprintf("w-%02d-%06d", w, i)),
						CommunityID: comm,
						Title:       "written",
						Attrs:       query.Attrs{"k": {"v1"}},
					})
					continue
				}
				store.Search(comm, filters[i%len(filters)], 20)
			}
		}(w)
	}
	wg.Wait()
	return workers * opsPer, time.Since(start).Seconds()
}
