package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/index"
	"repro/internal/query"
)

// WALBenchConfig tunes E18, the crash-safe persistence experiment. The
// up2pbench command exposes these as flags.
var WALBenchConfig = struct {
	// Communities is the number of distinct communities seeded.
	Communities int
	// DocsPerCommunity is the corpus size per community.
	DocsPerCommunity int
	// BatchDocs is the PutBatch size of the batch-ingest workload (and
	// of the recovery-log writer).
	BatchDocs int
	// RecoveryBatches are the log lengths (in batches of BatchDocs
	// documents) of the recovery-time curve.
	RecoveryBatches []int
}{
	Communities:      8,
	DocsPerCommunity: 150,
	BatchDocs:        25,
	RecoveryBatches:  []int{50, 200, 800},
}

// RunE18 measures what durability costs and what recovery buys:
// ingest throughput with the WAL off, on with fsync=os, and on with
// fsync=always (batch and single-document workloads), then recovery
// time as a function of log length (replaying an uncompacted log into
// a fresh store, the crash-restart path).
func RunE18() (Table, error) {
	cfg := WALBenchConfig
	t := Table{
		ID:    "E18",
		Title: "crash-safe persistence: WAL ingest overhead and recovery time",
		Headers: []string{
			"phase", "configuration", "docs", "log MB", "secs", "docs/sec", "relative",
		},
		Notes: []string{
			fmt.Sprintf("%d communities x %d docs; batches of %d", cfg.Communities, cfg.DocsPerCommunity, cfg.BatchDocs),
			"expected shape: fsync=always pays one fsync per acked write, so single-doc ingest collapses to the disk's sync rate while batches amortize it; fsync=os stays near the in-memory rate",
			"recovery replays snapshot + log ordered by LSN; time grows linearly with uncompacted log length, which is what compaction bounds",
		},
	}

	ingestConfigs := []struct {
		name  string
		wal   bool
		fsync index.FsyncPolicy
	}{
		{"no wal", false, ""},
		{"wal fsync=os", true, index.FsyncOS},
		{"wal fsync=always", true, index.FsyncAlways},
	}
	baseline := make(map[string]float64) // workload -> no-wal docs/sec
	for _, c := range ingestConfigs {
		for _, workload := range []string{"batch ingest", "single-doc put"} {
			dir, store, err := e18Open(c.wal, c.fsync)
			if err != nil {
				return Table{}, err
			}
			docs := cfg.Communities * cfg.DocsPerCommunity
			batch := cfg.BatchDocs
			if workload == "single-doc put" {
				batch = 1
				docs /= 5 // fsync-bound: keep the slowest cell short
			}
			start := time.Now()
			if err := e18Ingest(store, docs, batch, 0); err != nil {
				return Table{}, err
			}
			secs := time.Since(start).Seconds()
			logMB := e18LogMB(dir)
			if err := e18Close(dir, store); err != nil {
				return Table{}, err
			}
			rate := float64(docs) / secs
			rel := "1.00x"
			if c.name == "no wal" {
				baseline[workload] = rate
			} else if b := baseline[workload]; b > 0 {
				rel = fmt.Sprintf("%.2fx", rate/b)
			}
			t.Rows = append(t.Rows, []string{
				"ingest (" + workload + ")", c.name,
				fmt.Sprintf("%d", docs), logMB,
				fmt.Sprintf("%.3f", secs), fmt.Sprintf("%.0f", rate), rel,
			})
		}
	}

	for _, batches := range cfg.RecoveryBatches {
		secs, docs, logMB, err := e18Recovery(batches, cfg.BatchDocs)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			"recover", fmt.Sprintf("%d-batch log", batches),
			fmt.Sprintf("%d", docs), logMB,
			fmt.Sprintf("%.3f", secs), fmt.Sprintf("%.0f", float64(docs)/secs), "-",
		})
	}
	return t, nil
}

// e18Open builds a fresh store, WAL-backed in a temp directory when
// wal is set. Auto-compaction is off so measured logs keep their full
// length.
func e18Open(wal bool, fsync index.FsyncPolicy) (string, *index.Store, error) {
	if !wal {
		return "", index.NewStore(), nil
	}
	dir, err := os.MkdirTemp("", "up2p-e18-*")
	if err != nil {
		return "", nil, err
	}
	store, err := index.OpenStore(
		index.WithWAL(dir),
		index.WithWALFsync(fsync),
		index.WithWALCompactBytes(0),
	)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	return dir, store, nil
}

// e18Close releases a store from e18Open and removes its directory.
func e18Close(dir string, store *index.Store) error {
	err := store.Close()
	if dir != "" {
		os.RemoveAll(dir)
	}
	return err
}

// e18Ingest writes docs documents in PutBatch calls of the given size,
// spread over the configured community count, numbering from seq to
// keep IDs distinct across calls.
func e18Ingest(store *index.Store, docs, batchSize, seq int) error {
	comms := WALBenchConfig.Communities
	for n := 0; n < docs; n += batchSize {
		batch := make([]*index.Document, 0, batchSize)
		for i := n; i < n+batchSize && i < docs; i++ {
			batch = append(batch, &index.Document{
				ID:          index.DocID(fmt.Sprintf("d-%08d", seq+i)),
				CommunityID: fmt.Sprintf("community-%02d", i%comms),
				Title:       fmt.Sprintf("Doc %d", seq+i),
				XML:         "<obj>payload</obj>",
				Attrs:       query.Attrs{"k": {fmt.Sprintf("v%d", i%10)}},
			})
		}
		if err := store.PutBatch(batch); err != nil {
			return err
		}
	}
	return nil
}

// e18Recovery writes an uncompacted log of the given length, copies
// the WAL directory aside (preserving the un-folded log the way a
// crash would), and times OpenStore replaying it.
func e18Recovery(batches, batchDocs int) (secs float64, docs int, logMB string, err error) {
	dir, store, err := e18Open(true, index.FsyncOS)
	if err != nil {
		return 0, 0, "", err
	}
	defer os.RemoveAll(dir)
	docs = batches * batchDocs
	if err := e18Ingest(store, docs, batchDocs, 0); err != nil {
		return 0, 0, "", err
	}
	// Copy before Close: Close compacts, and the point is to replay
	// the full log, as after a crash.
	crashDir, err := e18CopyDir(dir)
	if err != nil {
		return 0, 0, "", err
	}
	defer os.RemoveAll(crashDir)
	if err := store.Close(); err != nil {
		return 0, 0, "", err
	}
	logMB = e18LogMB(crashDir)

	start := time.Now()
	recovered, err := index.OpenStore(index.WithWAL(crashDir), index.WithWALCompactBytes(0))
	if err != nil {
		return 0, 0, "", err
	}
	secs = time.Since(start).Seconds()
	if got := recovered.Len(); got != docs {
		recovered.Close()
		return 0, 0, "", fmt.Errorf("E18: recovered %d docs, want %d", got, docs)
	}
	return secs, docs, logMB, recovered.Close()
}

// e18CopyDir copies a WAL directory into a fresh temp directory.
func e18CopyDir(dir string) (string, error) {
	out, err := os.MkdirTemp("", "up2p-e18-crash-*")
	if err != nil {
		return "", err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		os.RemoveAll(out)
		return "", err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			os.RemoveAll(out)
			return "", err
		}
		if err := os.WriteFile(filepath.Join(out, e.Name()), data, 0o644); err != nil {
			os.RemoveAll(out)
			return "", err
		}
	}
	return out, nil
}

// e18LogMB sums the wal segment sizes under dir ("-" without a WAL).
func e18LogMB(dir string) string {
	if dir == "" {
		return "-"
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "-"
	}
	var total int64
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "wal-") {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return fmt.Sprintf("%.2f", float64(total)/(1<<20))
}
