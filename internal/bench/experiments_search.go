package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/stylegen"
	"repro/internal/xmldoc"
	"repro/internal/xsd"
)

// RunE1 measures community discovery through the root community: the
// paper's claim that "the community discovery problem becomes just a
// specific case of the more general problem of resource discovery".
func RunE1() (Table, error) {
	t := Table{
		ID:      "E1",
		Title:   "Community discovery via root-community search",
		Headers: []string{"protocol", "peers", "discovered/joined", "success", "msgs total", "msgs/joiner"},
		Notes: []string{
			"expected shape: 100% discovery on both protocols;",
			"centralized messages per joiner stay ~constant, flooding grows with N",
		},
	}
	for _, proto := range []sim.Protocol{sim.Centralized, sim.Gnutella, sim.FastTrack} {
		for _, n := range []int{4, 8, 16, 32} {
			c, err := sim.NewCluster(sim.Config{Peers: n, Protocol: proto, Degree: 4, Seed: 11})
			if err != nil {
				return t, err
			}
			if _, err := c.SeedCommunity(0, core.CommunitySpec{
				Name:      "patterns",
				Keywords:  "gof design software",
				SchemaSrc: corpus.PatternSchemaSrc,
			}); err != nil {
				return t, err
			}
			before := c.Metrics()
			joined, err := c.DiscoverAndJoinAll("patterns", 8)
			if err != nil {
				return t, err
			}
			msgs := c.Metrics().Delta(before).Counter("transport.msgs_delivered")
			joiners := n - 1 // creator already joined
			perJoiner := float64(msgs)
			if joiners > 0 {
				perJoiner = float64(msgs) / float64(joiners)
			}
			t.Rows = append(t.Rows, []string{
				proto.String(),
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d/%d", joined, n),
				fmt.Sprintf("%.0f%%", 100*float64(joined)/float64(n)),
				fmt.Sprintf("%d", msgs),
				fmt.Sprintf("%.1f", perJoiner),
			})
		}
	}
	return t, nil
}

// e2Query is one E2/E7 query with a structural ground truth.
type e2Query struct {
	label    string
	filter   string
	fileTerm string // what a filename search would have to use
	relevant func(o corpus.Object) bool
}

func e2Queries() []e2Query {
	return []e2Query{
		{
			label:    "by name (Observer)",
			filter:   "(name~=Observer)",
			fileTerm: "observer",
			relevant: func(o corpus.Object) bool {
				return strings.Contains(o.Doc.ChildText("name"), "Observer")
			},
		},
		{
			label:    "behavioral classification",
			filter:   "(classification=behavioral)",
			fileTerm: "behavioral",
			relevant: func(o corpus.Object) bool {
				return o.Doc.ChildText("classification") == "behavioral"
			},
		},
		{
			label:    "intent: one-to-many",
			filter:   "(intent~=one-to-many)",
			fileTerm: "one-to-many",
			relevant: func(o corpus.Object) bool {
				return strings.Contains(o.Doc.ChildText("intent"), "one-to-many")
			},
		},
		{
			label:    "keyword: notification",
			filter:   "(keywords=notification)",
			fileTerm: "notification",
			relevant: func(o corpus.Object) bool {
				for _, k := range o.Doc.ChildrenNamed("keywords") {
					if strings.TrimSpace(k.Text()) == "notification" {
						return true
					}
				}
				return false
			},
		},
		{
			label:    "participant: Subject",
			filter:   "(participants=Subject)",
			fileTerm: "subject",
			relevant: func(o corpus.Object) bool {
				for _, p := range o.Doc.ChildrenNamed("participants") {
					if strings.TrimSpace(p.Text()) == "Subject" {
						return true
					}
				}
				return false
			},
		},
	}
}

// RunE2 quantifies §II's core motivation: filename matching "acts as a
// barrier to sharing of complex objects", versus metadata search over
// indexed attributes.
func RunE2() (Table, error) {
	t := Table{
		ID:      "E2",
		Title:   "Metadata search vs filename-substring baseline (design-pattern corpus, n=115)",
		Headers: []string{"query", "relevant", "metadata hits", "metadata recall", "filename hits", "filename recall"},
		Notes: []string{
			"expected shape: metadata recall 100% on attribute queries; filename recall",
			"collapses except where the term happens to appear in the filename (names)",
		},
	}
	c := corpus.DesignPatterns(115, 21)
	schema, err := xsd.ParseString(c.SchemaSrc)
	if err != nil {
		return t, err
	}
	ix, err := stylegen.NewIndexer(schema)
	if err != nil {
		return t, err
	}
	store := index.NewStore()
	for i, o := range c.Objects {
		attrs, err := ix.Extract(o.Doc)
		if err != nil {
			return t, err
		}
		if err := store.Put(&index.Document{
			ID:          index.DocID(fmt.Sprintf("p%03d", i)),
			CommunityID: "patterns",
			Title:       o.Doc.ChildText("name"),
			XML:         o.Doc.String(),
			Attrs:       attrs,
		}); err != nil {
			return t, err
		}
	}
	for _, q := range e2Queries() {
		relevant := 0
		for _, o := range c.Objects {
			if q.relevant(o) {
				relevant++
			}
		}
		metaHits := len(store.Search("patterns", query.MustParse(q.filter), 0))
		fileHits := 0
		for _, o := range c.Objects {
			if strings.Contains(strings.ToLower(o.Filename), strings.ToLower(q.fileTerm)) {
				fileHits++
			}
		}
		t.Rows = append(t.Rows, []string{
			q.label,
			fmt.Sprintf("%d", relevant),
			fmt.Sprintf("%d", metaHits),
			recallPct(metaHits, relevant),
			fmt.Sprintf("%d", fileHits),
			recallPct(fileHits, relevant),
		})
	}
	return t, nil
}

func recallPct(hits, relevant int) string {
	if relevant == 0 {
		return "n/a"
	}
	if hits > relevant {
		hits = relevant // report capped recall; precision errors show in hit counts
	}
	return fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(relevant))
}

// RunE3 sweeps network size and TTL measuring per-query message cost:
// the centralized-vs-distributed trade-off the paper declines to pick
// a side on (§IV.B), quantified.
func RunE3() (Table, error) {
	t := Table{
		ID:      "E3",
		Title:   "Per-query message cost: centralized index vs Gnutella flooding",
		Headers: []string{"protocol", "peers", "TTL", "msgs/query", "bytes/query", "results"},
		Notes: []string{
			"expected shape: centralized stays ~2 msgs/query at any N;",
			"flooding grows with N and TTL; low TTL trades coverage for cost;",
			"fasttrack sits between: flooding bounded to the super-peer overlay",
		},
	}
	const queries = 10
	pubCorpus := corpus.DesignPatterns(46, 31)
	run := func(proto sim.Protocol, peers, ttl int) error {
		c, err := sim.NewCluster(sim.Config{Peers: peers, Protocol: proto, Degree: 4, Seed: 31})
		if err != nil {
			return err
		}
		comm, err := c.SeedCommunity(0, core.CommunitySpec{Name: "patterns", SchemaSrc: corpus.PatternSchemaSrc})
		if err != nil {
			return err
		}
		if _, err := c.DiscoverAndJoinAll("patterns", peers); err != nil {
			return err
		}
		if _, err := c.PublishRoundRobin(comm.ID, pubCorpus.Objects); err != nil {
			return err
		}
		before := c.Metrics()
		rng := rand.New(rand.NewSource(77))
		results := 0
		for q := 0; q < queries; q++ {
			from := rng.Intn(peers)
			rs, err := c.SearchFrom(from, comm.ID, query.MustParse("(classification=behavioral)"), p2p.SearchOptions{TTL: ttl})
			if err != nil {
				return err
			}
			results += len(rs)
		}
		st := c.Metrics().Delta(before)
		t.Rows = append(t.Rows, []string{
			proto.String(),
			fmt.Sprintf("%d", peers),
			fmt.Sprintf("%d", ttl),
			fmt.Sprintf("%.1f", float64(st.Counter("transport.msgs_delivered"))/queries),
			fmt.Sprintf("%.0f", float64(st.Counter("transport.bytes_delivered"))/queries),
			fmt.Sprintf("%.1f", float64(results)/queries),
		})
		return nil
	}
	for _, n := range []int{8, 16, 32, 64} {
		if err := run(sim.Centralized, n, 0); err != nil {
			return t, err
		}
	}
	for _, n := range []int{8, 16, 32, 64} {
		if err := run(sim.Gnutella, n, 7); err != nil {
			return t, err
		}
	}
	// FastTrack hybrid: flooding bounded to the super-peer overlay.
	for _, n := range []int{8, 16, 32, 64} {
		if err := run(sim.FastTrack, n, 7); err != nil {
			return t, err
		}
	}
	// TTL ablation at fixed N.
	for _, ttl := range []int{1, 2, 3, 5, 7} {
		if err := run(sim.Gnutella, 32, ttl); err != nil {
			return t, err
		}
	}
	return t, nil
}

// RunE4 measures the searchable-field trade-off of §IV.C.2: marking
// fewer fields keeps the index small but loses queries that reference
// unindexed attributes.
func RunE4() (Table, error) {
	t := Table{
		ID:      "E4",
		Title:   "Index selectivity: searchable-field marking vs index size and recall",
		Headers: []string{"searchable fields", "postings", "answerable queries", "avg recall"},
		Notes: []string{
			"expected shape: postings grow with marked fields; recall of the fixed",
			"query set rises from partial to 100% as referenced fields get marked",
		},
	}
	// Cumulative marking order: name, classification, intent, keywords,
	// applicability, participants.
	order := []string{"name", "classification", "intent", "keywords", "applicability", "participants"}
	c := corpus.DesignPatterns(115, 21)
	queries := e2Queries()
	for k := 1; k <= len(order); k++ {
		marked := order[:k]
		schemaSrc, err := remarkSearchable(corpus.PatternSchemaSrc, marked)
		if err != nil {
			return t, err
		}
		schema, err := xsd.ParseString(schemaSrc)
		if err != nil {
			return t, err
		}
		ix, err := stylegen.NewIndexer(schema)
		if err != nil {
			return t, err
		}
		store := index.NewStore()
		for i, o := range c.Objects {
			attrs, err := ix.Extract(o.Doc)
			if err != nil {
				return t, err
			}
			if err := store.Put(&index.Document{
				ID:          index.DocID(fmt.Sprintf("p%03d", i)),
				CommunityID: "patterns",
				Attrs:       attrs,
			}); err != nil {
				return t, err
			}
		}
		totalRecall, answerable := 0.0, 0
		for _, q := range queries {
			relevant := 0
			for _, o := range c.Objects {
				if q.relevant(o) {
					relevant++
				}
			}
			hits := len(store.Search("patterns", query.MustParse(q.filter), 0))
			if relevant > 0 {
				r := float64(hits) / float64(relevant)
				if r > 1 {
					r = 1
				}
				totalRecall += r
				if hits > 0 {
					answerable++
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (%s)", k, strings.Join(marked, ",")),
			fmt.Sprintf("%d", store.Postings()),
			fmt.Sprintf("%d/%d", answerable, len(queries)),
			fmt.Sprintf("%.0f%%", 100*totalRecall/float64(len(queries))),
		})
	}
	return t, nil
}

// remarkSearchable rewrites the searchable markers in a schema source
// so that exactly the named element declarations are marked.
func remarkSearchable(schemaSrc string, marked []string) (string, error) {
	doc, err := xmldoc.ParseString(schemaSrc)
	if err != nil {
		return "", err
	}
	want := make(map[string]bool, len(marked))
	for _, m := range marked {
		want[m] = true
	}
	doc.Walk(func(n *xmldoc.Node) bool {
		if n.Kind == xmldoc.KindElement && n.LocalName() == "element" {
			name, _ := n.Attr("name")
			n.RemoveAttr("up2p:searchable")
			if want[name] {
				n.SetAttr("up2p:searchable", "true")
			}
		}
		return true
	})
	return doc.String(), nil
}

// RunE5 quantifies the robustness observation of §II ("by downloading
// popular files, users increased the robustness of the network"):
// object availability under peer failure, as a function of replica
// count created by downloads.
func RunE5() (Table, error) {
	t := Table{
		ID:      "E5",
		Title:   "Replication (downloads) vs availability under peer failure (Gnutella, 20 peers)",
		Headers: []string{"replicas", "failed peers", "trials", "availability"},
		Notes: []string{
			"replicas are created by Retrieve: downloaders republish (as in Napster);",
			"expected shape: availability rises steeply with replica count",
		},
	}
	const peers = 20
	const trials = 15
	for _, replicas := range []int{1, 2, 4, 8} {
		for _, failFrac := range []float64{0.25, 0.5} {
			available := 0
			for trial := 0; trial < trials; trial++ {
				ok, err := e5Trial(peers, replicas, failFrac, int64(1000+trial))
				if err != nil {
					return t, err
				}
				if ok {
					available++
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", replicas),
				fmt.Sprintf("%.0f%%", failFrac*100),
				fmt.Sprintf("%d", trials),
				fmt.Sprintf("%.0f%%", 100*float64(available)/float64(trials)),
			})
		}
	}
	return t, nil
}

func e5Trial(peers, replicas int, failFrac float64, seed int64) (bool, error) {
	c, err := sim.NewCluster(sim.Config{Peers: peers, Protocol: sim.Gnutella, Degree: 4, Seed: seed})
	if err != nil {
		return false, err
	}
	comm, err := c.SeedCommunity(0, core.CommunitySpec{Name: "patterns", SchemaSrc: corpus.PatternSchemaSrc})
	if err != nil {
		return false, err
	}
	if _, err := c.DiscoverAndJoinAll("patterns", peers); err != nil {
		return false, err
	}
	obj := corpus.DesignPatterns(1, seed).Objects[0]
	docID, err := c.Servents[0].Publish(comm.ID, obj.Doc.Clone(), nil)
	if err != nil {
		return false, err
	}
	rng := rand.New(rand.NewSource(seed))
	// Downloads create replicas on distinct random peers.
	holders := map[int]bool{0: true}
	for len(holders) < replicas && len(holders) < peers {
		p := rng.Intn(peers)
		if holders[p] {
			continue
		}
		if _, err := c.Servents[p].Retrieve(docID, c.Servents[0].PeerID()); err != nil {
			return false, err
		}
		holders[p] = true
	}
	// Fail a random subset of peers.
	fail := int(failFrac * float64(peers))
	failed := map[int]bool{}
	for len(failed) < fail {
		p := rng.Intn(peers)
		if failed[p] {
			continue
		}
		failed[p] = true
		c.KillPeer(p)
	}
	// A surviving peer searches and retrieves.
	searcher := -1
	for i := 0; i < peers; i++ {
		if !failed[i] {
			searcher = i
			break
		}
	}
	if searcher < 0 {
		return false, nil
	}
	rs, err := c.SearchFrom(searcher, comm.ID, query.MustParse("(name=*)"), p2p.SearchOptions{TTL: 10})
	if err != nil {
		return false, err
	}
	for _, r := range rs {
		if r.DocID != docID {
			continue
		}
		if _, err := c.Servents[searcher].Retrieve(r.DocID, r.Provider); err == nil {
			return true, nil
		}
	}
	return false, nil
}
