package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// ScenarioBenchConfig scales the discrete-event scenario experiments
// (E10–E12); up2pbench exposes the fields as -scn-* flags so CI smoke
// jobs can shrink them and profiling runs can grow them.
var ScenarioBenchConfig = struct {
	// Peers is the E10 population (E11/E12 cap it lower; see each
	// experiment).
	Peers int
	// Queries approximates the measured queries per scenario run.
	Queries int
	// Seed drives every scenario in the suite.
	Seed int64
}{Peers: 1000, Queries: 120, Seed: 11}

// scenarioDuration is the virtual length of every E10–E12 run. Virtual
// time is free, so the choice only shapes rates.
const scenarioDuration = 60 * time.Second

func scenarioQueryRate() float64 {
	return float64(ScenarioBenchConfig.Queries) / scenarioDuration.Seconds()
}

// RunE10 sweeps peer churn across all three protocols on the virtual
// clock: the population/dynamics dimension of the paper's evaluation
// that wall-clock simulation could not reach (a 1000-peer churning
// Gnutella run finishes in seconds of real time and is reproducible
// bit-for-bit from the seed).
func RunE10() (Table, error) {
	t := Table{
		ID:      "E10",
		Title:   fmt.Sprintf("Churn sweep on the virtual clock (%d peers, %d queries, virtual %v)", ScenarioBenchConfig.Peers, ScenarioBenchConfig.Queries, scenarioDuration),
		Headers: []string{"protocol", "churn", "arr/dep", "final peers", "msgs/query", "recall", "lat p50", "lat p95", "real time"},
		Notes: []string{
			"churn = fraction of the population arriving (and departing) over the run;",
			"expected shape: recall holds near 100% while the overlay stays connected",
			"(degree-4 wiring of arrivals); msgs/query: centralized O(1), fasttrack",
			"bounded by the super-peer overlay, gnutella O(edges) and shrinking with churn",
			"as departures thin the edge set; virtual latency: flooding pays multi-hop paths",
		},
	}
	for _, proto := range []sim.Protocol{sim.Centralized, sim.Gnutella, sim.FastTrack} {
		for _, churn := range []float64{0, 0.05, 0.20} {
			rate := churn * float64(ScenarioBenchConfig.Peers) / scenarioDuration.Seconds()
			r, err := sim.RunScenario(sim.ScenarioConfig{
				Cluster: sim.Config{
					Peers:    ScenarioBenchConfig.Peers,
					Protocol: proto,
					Degree:   4,
					Seed:     ScenarioBenchConfig.Seed,
					Latency:  30 * time.Millisecond,
					Jitter:   20 * time.Millisecond,
				},
				Duration:       scenarioDuration,
				QueryRate:      scenarioQueryRate(),
				InitialObjects: ScenarioBenchConfig.Peers,
				ArrivalRate:    rate,
				DepartureRate:  rate,
			})
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				proto.String(),
				fmt.Sprintf("%.0f%%", churn*100),
				fmt.Sprintf("%d/%d", r.Arrivals, r.Departures),
				fmt.Sprintf("%d", r.FinalPeers),
				fmt.Sprintf("%.1f", r.MsgsPerQuery()),
				fmt.Sprintf("%.0f%%", 100*r.MeanRecall(0, 0)),
				fmt.Sprintf("%v", r.LatencyPercentile(50).Round(time.Millisecond)),
				fmt.Sprintf("%v", r.LatencyPercentile(95).Round(time.Millisecond)),
				fmt.Sprintf("%v", r.Elapsed.Round(time.Millisecond)),
			})
		}
	}
	return t, nil
}

// RunE11 sweeps message loss: datagram semantics degrade each protocol
// differently (centralized searches fail outright when the single
// request/reply pair is lost; flooding degrades gracefully because
// redundant paths remain).
func RunE11() (Table, error) {
	peers := ScenarioBenchConfig.Peers
	if peers > 200 {
		peers = 200
	}
	t := Table{
		ID:      "E11",
		Title:   fmt.Sprintf("Loss sweep (%d peers, %d queries)", peers, ScenarioBenchConfig.Queries),
		Headers: []string{"protocol", "loss", "dropped", "failed queries", "msgs/query", "recall"},
		Notes: []string{
			"expected shape: centralized recall collapses ~linearly with loss (one lost",
			"frame kills the whole query); gnutella degrades gracefully via path redundancy;",
			"fasttrack sits between (leaf->super is a single point, the overlay floods)",
		},
	}
	for _, proto := range []sim.Protocol{sim.Centralized, sim.Gnutella, sim.FastTrack} {
		for _, loss := range []float64{0, 0.01, 0.05, 0.15} {
			r, err := sim.RunScenario(sim.ScenarioConfig{
				Cluster: sim.Config{
					Peers:    peers,
					Protocol: proto,
					Degree:   4,
					Seed:     ScenarioBenchConfig.Seed,
					DropRate: loss,
				},
				Duration:       scenarioDuration,
				QueryRate:      scenarioQueryRate(),
				InitialObjects: peers,
			})
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				proto.String(),
				fmt.Sprintf("%.0f%%", loss*100),
				fmt.Sprintf("%d", r.Dropped),
				fmt.Sprintf("%d", r.Failed),
				fmt.Sprintf("%.1f", r.MsgsPerQuery()),
				fmt.Sprintf("%.0f%%", 100*r.MeanRecall(0, 0)),
			})
		}
	}
	return t, nil
}

// RunE12 measures FastTrack super-peer failover: recall before the
// failure, during the outage window (orphaned leaves unfindable), and
// after leaf re-registration restores them.
func RunE12() (Table, error) {
	peers := ScenarioBenchConfig.Peers
	if peers > 400 {
		peers = 400
	}
	const (
		supers   = 10
		failAt   = 20 * time.Second
		rehomeIn = 10 * time.Second
	)
	t := Table{
		ID:      "E12",
		Title:   fmt.Sprintf("Super-peer failover (fasttrack, %d peers, %d super-peers, 3 fail at %v, rehome +%v)", peers, supers, failAt, rehomeIn),
		Headers: []string{"phase", "window", "queries", "msgs/query", "recall"},
		Notes: []string{
			"expected shape: recall ~100% before; dips during the outage in proportion",
			"to the orphaned fraction; recovers after leaves re-register elsewhere",
		},
	}
	r, err := sim.RunScenario(sim.ScenarioConfig{
		Cluster: sim.Config{
			Peers:      peers,
			Protocol:   sim.FastTrack,
			SuperPeers: supers,
			Seed:       ScenarioBenchConfig.Seed,
		},
		Duration:       scenarioDuration,
		QueryRate:      4 * scenarioQueryRate(), // dense sampling: phases are short
		InitialObjects: peers,
		FailSupersAt:   failAt,
		FailSupers:     3,
		RehomeDelay:    rehomeIn,
	})
	if err != nil {
		return t, err
	}
	phase := func(name string, from, to time.Duration) {
		queries, msgs := 0, int64(0)
		for _, s := range r.Samples {
			if s.At >= from && s.At < to {
				queries++
				msgs += s.Messages
			}
		}
		perQuery := 0.0
		if queries > 0 {
			perQuery = float64(msgs) / float64(queries)
		}
		recall := "n/a" // an unmeasured window must not read as 100%
		if m := r.MeanRecall(from, to); !math.IsNaN(m) {
			recall = fmt.Sprintf("%.0f%%", 100*m)
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%v-%v", from, to),
			fmt.Sprintf("%d", queries),
			fmt.Sprintf("%.1f", perQuery),
			recall,
		})
	}
	phase("before failure", 0, failAt)
	phase("outage", failAt, failAt+rehomeIn)
	phase("after rehome", failAt+rehomeIn+time.Second, scenarioDuration)
	t.Notes = append(t.Notes, fmt.Sprintf("%d leaves re-registered after the outage", r.Rehomed))
	return t, nil
}
