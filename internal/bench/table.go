// Package bench implements the experiment harness behind
// EXPERIMENTS.md: one runner per figure (F1–F3) and per quantified
// claim (E1–E16, E18), each reproducing the corresponding artifact of
// the paper — or extending its evaluation, as the discrete-event
// scenario experiments E10–E12, the structured-overlay comparison
// E13–E15, the flash-crowd hotspot measurement E16, and the
// crash-safe persistence measurement E18 do — as a printed table. All
// runs are seeded and deterministic.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: paper-style rows.
type Table struct {
	// ID is the experiment identifier (F1..F3, E1..E16, E18).
	ID string
	// Title describes the experiment.
	Title string
	// Headers name the columns.
	Headers []string
	// Rows hold the measurements.
	Rows [][]string
	// Notes carry the expected shape and caveats.
	Notes []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	for _, row := range append([][]string{t.Headers, sep}, t.Rows...) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func() (Table, error)
}

// All returns every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"F1", "shared object model pipeline (Fig. 1)", RunF1},
		{"F2", "schema-to-form generation (Fig. 2)", RunF2},
		{"F3", "community schema round trip (Fig. 3)", RunF3},
		{"E1", "community discovery via root community", RunE1},
		{"E2", "metadata vs filename search recall", RunE2},
		{"E3", "protocol message cost: centralized vs flooding", RunE3},
		{"E4", "index selectivity (searchable-field marking)", RunE4},
		{"E5", "replication vs availability under churn", RunE5},
		{"E6", "generative pipeline throughput", RunE6},
		{"E7", "design-pattern case study (§V)", RunE7},
		{"E8", "protocol independence", RunE8},
		{"E9", "metadata store scalability: single-lock vs sharded", RunE9},
		{"E10", "churn sweep on the virtual clock", RunE10},
		{"E11", "message-loss sweep", RunE11},
		{"E12", "super-peer failover and leaf re-registration", RunE12},
		{"E13", "search cost scaling: flooding vs Kademlia DHT", RunE13},
		{"E14", "churn sweep: flooding vs DHT with refresh repair", RunE14},
		{"E15", "loss sweep: flooding vs DHT", RunE15},
		{"E16", "flash-crowd hot key: caching STORE + key splitting", RunE16},
		// E17 is reserved for ROADMAP items (postings compaction,
		// distributed keyword search).
		{"E18", "crash-safe persistence: WAL overhead and recovery", RunE18},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}
