package bench

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/p2p"
	"repro/internal/p2p/codec"
	"repro/internal/query"
	"repro/internal/sim"
)

// DHTBenchConfig scales the structured-overlay experiments (E13–E15);
// up2pbench exposes the fields as -dht-* flags.
var DHTBenchConfig = struct {
	// K is the DHT bucket capacity / replication factor and Alpha the
	// lookup parallelism used by every E13–E15 run.
	K     int
	Alpha int
	// E13MaxPeers caps the E13 population ladder (the ladder keeps
	// its shape; rungs above the cap are skipped).
	E13MaxPeers int
	// Codec selects the wire codec of every E13–E15 cluster: "binary"
	// (default) or "json". Switching codecs changes allocation cost,
	// never results — the sim package's codec-equivalence test pins
	// that.
	Codec string
}{K: 16, Alpha: 3, E13MaxPeers: 10000, Codec: "binary"}

// dhtScenarioCluster builds the cluster config shared by the DHT rows
// of E14/E15.
func dhtScenarioCluster(peers int, proto sim.Protocol) sim.Config {
	return sim.Config{
		Peers:    peers,
		Protocol: proto,
		Degree:   4,
		Seed:     ScenarioBenchConfig.Seed,
		DHTK:     DHTBenchConfig.K,
		DHTAlpha: DHTBenchConfig.Alpha,
		Codec:    codec.ByName(DHTBenchConfig.Codec),
	}
}

// dhtRefreshEvery is the maintenance cadence of the E14/E15 DHT rows:
// frequent enough to repair a 20% churn within the run, rare enough
// that maintenance traffic stays visible as a separate line item.
const dhtRefreshEvery = 10 * time.Second

// RunE13 measures lookup cost scaling against population: the
// structural difference between flooding (message cost grows with the
// edge set, i.e. linearly in n) and DHT routing (iterative lookups
// converge in O(log n) rounds). Both protocols run the identical
// seeded workload over the identical corpus.
func RunE13() (Table, error) {
	t := Table{
		ID:      "E13",
		Title:   fmt.Sprintf("Search cost scaling: Gnutella flooding vs Kademlia DHT (k=%d, α=%d)", DHTBenchConfig.K, DHTBenchConfig.Alpha),
		Headers: []string{"protocol", "peers", "msgs/query", "bytes/query", "mean hops", "results/query", "allocs/msg", "live heap MB"},
		Notes: []string{
			"expected shape: flooding msgs/query grows ~linearly with peers (the flood",
			"covers the overlay's edge set); DHT msgs/query grows ~logarithmically (α-wide",
			"iterative lookup waves toward the community key, k replicas answering);",
			"hops: flood depth where hits sat vs DHT lookup rounds;",
			"allocs/msg: heap allocations per delivered message over the query phase",
			"(process-wide Mallocs delta — rerun with -codec json for the JSON baseline);",
			"live heap MB: post-GC heap holding the whole cluster after the run",
		},
	}
	const queries = 20
	// The corpus is part of the workload definition and stays fixed;
	// topology, replica placement, and query origins all follow
	// -scn-seed like the other scenario experiments.
	pubCorpus := corpus.DesignPatterns(60, 13)
	ladder := []int{25, 50, 100, 200, 400, 800, 2500, 10000, 25000}
	run := func(proto sim.Protocol, peers int) error {
		c, err := sim.NewCluster(dhtScenarioCluster(peers, proto))
		if err != nil {
			return err
		}
		comm, err := c.SeedCommunity(0, core.CommunitySpec{Name: "patterns", SchemaSrc: corpus.PatternSchemaSrc})
		if err != nil {
			return err
		}
		if err := c.InstallCommunityAll(comm); err != nil {
			return err
		}
		if _, err := c.PublishRoundRobin(comm.ID, pubCorpus.Objects); err != nil {
			return err
		}
		before := c.Metrics()
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		rng := rand.New(rand.NewSource(ScenarioBenchConfig.Seed + 77))
		results, hopSum, hopN := 0, 0, 0
		for q := 0; q < queries; q++ {
			from := rng.Intn(peers)
			rs, err := c.SearchFrom(from, comm.ID, query.MustParse("(classification=behavioral)"), p2p.SearchOptions{TTL: p2p.DefaultTTL})
			if err != nil {
				return err
			}
			results += len(rs)
			maxHops := 0
			for _, r := range rs {
				if r.Hops > maxHops {
					maxHops = r.Hops
				}
			}
			if len(rs) > 0 {
				hopSum += maxHops
				hopN++
			}
		}
		st := c.Metrics().Delta(before)
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		allocsPerMsg := 0.0
		if delivered := st.Counter("transport.msgs_delivered"); delivered > 0 {
			allocsPerMsg = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(delivered)
		}
		runtime.GC()
		runtime.ReadMemStats(&msAfter)
		// Without this the cluster is dead at the GC above and the
		// heap column would read near-zero at every rung.
		runtime.KeepAlive(c)
		meanHops := 0.0
		if hopN > 0 {
			meanHops = float64(hopSum) / float64(hopN)
		}
		t.Rows = append(t.Rows, []string{
			proto.String(),
			fmt.Sprintf("%d", peers),
			fmt.Sprintf("%.1f", float64(st.Counter("transport.msgs_delivered"))/queries),
			fmt.Sprintf("%.0f", float64(st.Counter("transport.bytes_delivered"))/queries),
			fmt.Sprintf("%.1f", meanHops),
			fmt.Sprintf("%.1f", float64(results)/queries),
			fmt.Sprintf("%.1f", allocsPerMsg),
			fmt.Sprintf("%.1f", float64(msAfter.HeapAlloc)/(1<<20)),
		})
		return nil
	}
	for _, proto := range []sim.Protocol{sim.Gnutella, sim.DHT} {
		for _, n := range ladder {
			if n > DHTBenchConfig.E13MaxPeers {
				break
			}
			if err := run(proto, n); err != nil {
				return t, err
			}
		}
	}
	return t, nil
}

// RunE14 reruns the E10 churn sweep head-to-head on flooding vs the
// DHT: Poisson arrivals/departures take record replicas with them,
// and the scheduled refresh (bucket repair + republish, the DHT's
// rehome-equivalent) is what keeps recall up.
func RunE14() (Table, error) {
	t := Table{
		ID: "E14",
		Title: fmt.Sprintf("Churn sweep, flooding vs DHT (%d peers, %d queries, refresh every %v)",
			ScenarioBenchConfig.Peers, ScenarioBenchConfig.Queries, dhtRefreshEvery),
		Headers: []string{"protocol", "churn", "arr/dep", "final peers", "refreshes", "msgs/query", "recall", "lat p50", "lat p95", "real time", "total msgs"},
		Notes: []string{
			"same workload as E10 (compare its centralized/fasttrack rows); expected",
			"shape: DHT recall holds near 100% across churn because departures leave",
			"k-1 replicas and each refresh re-replicates onto the current closest-k,",
			"at per-query cost that is O(log n) instead of O(edges);",
			"msgs/query charges only query traffic; maintenance (refresh probes,",
			"republish STOREs) lands in total msgs;",
			"the dht-always row reruns the heaviest churn rung with adaptive republish",
			"disabled (every refresh re-STOREs every key): same recall and query cost,",
			"more total messages — the gap is what the intact-holder-set check saves",
		},
	}
	runRow := func(label string, proto sim.Protocol, churn float64, republishAlways bool) error {
		rate := churn * float64(ScenarioBenchConfig.Peers) / scenarioDuration.Seconds()
		cluster := dhtScenarioCluster(ScenarioBenchConfig.Peers, proto)
		cluster.Latency = 30 * time.Millisecond
		cluster.Jitter = 20 * time.Millisecond
		cluster.DHTRepublishAlways = republishAlways
		r, err := sim.RunScenario(sim.ScenarioConfig{
			Cluster:         cluster,
			Duration:        scenarioDuration,
			QueryRate:       scenarioQueryRate(),
			InitialObjects:  ScenarioBenchConfig.Peers,
			ArrivalRate:     rate,
			DepartureRate:   rate,
			DHTRefreshEvery: dhtRefreshEvery,
		})
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.0f%%", churn*100),
			fmt.Sprintf("%d/%d", r.Arrivals, r.Departures),
			fmt.Sprintf("%d", r.FinalPeers),
			fmt.Sprintf("%d", r.Refreshes),
			fmt.Sprintf("%.1f", r.MsgsPerQuery()),
			fmt.Sprintf("%.0f%%", 100*r.MeanRecall(0, 0)),
			fmt.Sprintf("%v", r.LatencyPercentile(50).Round(time.Millisecond)),
			fmt.Sprintf("%v", r.LatencyPercentile(95).Round(time.Millisecond)),
			fmt.Sprintf("%v", r.Elapsed.Round(time.Millisecond)),
			fmt.Sprintf("%d", r.Messages),
		})
		return nil
	}
	for _, proto := range []sim.Protocol{sim.Gnutella, sim.DHT} {
		for _, churn := range []float64{0, 0.05, 0.20} {
			if err := runRow(proto.String(), proto, churn, false); err != nil {
				return t, err
			}
		}
	}
	// Ablation: the adaptive-republish gain, measured at the heaviest
	// churn rung (compare against the dht 20% row above).
	if err := runRow("dht-always", sim.DHT, 0.20, true); err != nil {
		return t, err
	}
	return t, nil
}

// RunE15 reruns the E11 loss sweep on the DHT: datagram loss costs a
// flood redundancy and costs the DHT replicas (lost STOREs) and
// lookup progress (lost RPC waves) — but like flooding, and unlike
// the centralized protocol, no single lost frame can fail a query.
func RunE15() (Table, error) {
	peers := ScenarioBenchConfig.Peers
	if peers > 200 {
		peers = 200
	}
	t := Table{
		ID:      "E15",
		Title:   fmt.Sprintf("Loss sweep, flooding vs DHT (%d peers, %d queries)", peers, ScenarioBenchConfig.Queries),
		Headers: []string{"protocol", "loss", "dropped", "failed queries", "msgs/query", "recall"},
		Notes: []string{
			"same workload as E11 (compare its centralized collapse); expected shape:",
			"neither protocol hard-fails a query (no single point on the query path);",
			"flooding's recall erodes as drops prune flood subtrees, while the DHT",
			"holds ~100%: a lost STORE leaves k-1 replicas (restored each refresh) and",
			"lookups route around lost waves — at a fraction of flooding's cost",
		},
	}
	for _, proto := range []sim.Protocol{sim.Gnutella, sim.DHT} {
		for _, loss := range []float64{0, 0.01, 0.05, 0.15} {
			cluster := dhtScenarioCluster(peers, proto)
			cluster.DropRate = loss
			r, err := sim.RunScenario(sim.ScenarioConfig{
				Cluster:         cluster,
				Duration:        scenarioDuration,
				QueryRate:       scenarioQueryRate(),
				InitialObjects:  peers,
				DHTRefreshEvery: dhtRefreshEvery,
			})
			if err != nil {
				return t, err
			}
			recall := "n/a"
			if m := r.MeanRecall(0, 0); !math.IsNaN(m) {
				recall = fmt.Sprintf("%.0f%%", 100*m)
			}
			t.Rows = append(t.Rows, []string{
				proto.String(),
				fmt.Sprintf("%.0f%%", loss*100),
				fmt.Sprintf("%d", r.Dropped),
				fmt.Sprintf("%d", r.Failed),
				fmt.Sprintf("%.1f", r.MsgsPerQuery()),
				recall,
			})
		}
	}
	return t, nil
}
