package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment once and checks the
// structural invariants of their tables.
func TestAllExperimentsRun(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tbl, err := r.Run()
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if tbl.ID != r.ID {
				t.Errorf("table ID = %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Headers) {
					t.Errorf("row %d has %d cells, want %d", i, len(row), len(tbl.Headers))
				}
			}
			out := tbl.Format()
			if !strings.Contains(out, r.ID) {
				t.Error("formatted table missing ID")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e2"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := ByID("zz"); ok {
		t.Error("bogus ID found")
	}
}

// TestE1Shape verifies the paper's expected shape: 100% discovery and
// centralized cost per joiner below flooding cost at the largest N.
func TestE1Shape(t *testing.T) {
	tbl, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	perJoiner := map[string]float64{}
	for _, row := range tbl.Rows {
		if row[3] != "100%" {
			t.Errorf("discovery not total: %v", row)
		}
		if row[1] == "32" {
			per, _ := strconv.ParseFloat(row[5], 64)
			perJoiner[row[0]] = per
		}
	}
	if !(perJoiner["centralized"] < perJoiner["fasttrack"] && perJoiner["fasttrack"] < perJoiner["gnutella"]) {
		t.Errorf("per-joiner cost ordering violated at N=32: %v", perJoiner)
	}
}

// TestE2Shape verifies metadata recall dominates filename recall on
// attribute queries (the paper's core motivation).
func TestE2Shape(t *testing.T) {
	tbl, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	attributeRows := 0
	for _, row := range tbl.Rows {
		meta := pct(t, row[3])
		file := pct(t, row[5])
		if meta != 100 {
			t.Errorf("metadata recall %v%% on %q, want 100%%", meta, row[0])
		}
		if !strings.Contains(row[0], "name") {
			attributeRows++
			if file >= meta {
				t.Errorf("filename recall %v%% >= metadata %v%% on attribute query %q", file, meta, row[0])
			}
		}
	}
	if attributeRows < 3 {
		t.Errorf("too few attribute queries: %d", attributeRows)
	}
}

// TestE3Shape verifies flooding cost grows with N while centralized
// cost stays flat, and that TTL trades coverage for messages.
func TestE3Shape(t *testing.T) {
	tbl, err := RunE3()
	if err != nil {
		t.Fatal(err)
	}
	var central []float64
	var flood []float64
	ttlMsgs := map[int]float64{}
	ttlResults := map[int]float64{}
	for _, row := range tbl.Rows {
		msgs, _ := strconv.ParseFloat(row[3], 64)
		switch row[0] {
		case "centralized":
			central = append(central, msgs)
		case "gnutella":
			if row[1] == "32" {
				ttl, _ := strconv.Atoi(row[2])
				ttlMsgs[ttl] = msgs
				res, _ := strconv.ParseFloat(row[5], 64)
				ttlResults[ttl] = res
			}
			if row[2] == "7" {
				flood = append(flood, msgs)
			}
		}
	}
	for _, m := range central {
		if m > 4 {
			t.Errorf("centralized msgs/query = %v, want O(1)", m)
		}
	}
	if len(flood) >= 2 && flood[len(flood)-1] <= flood[0] {
		t.Errorf("flooding cost not growing with N: %v", flood)
	}
	if ttlMsgs[1] >= ttlMsgs[7] {
		t.Errorf("TTL1 msgs %v >= TTL7 msgs %v", ttlMsgs[1], ttlMsgs[7])
	}
	if ttlResults[1] > ttlResults[7] {
		t.Errorf("TTL1 results %v > TTL7 %v", ttlResults[1], ttlResults[7])
	}
}

// TestE4Shape verifies postings grow with marked fields and recall
// reaches 100% when all queried fields are marked.
func TestE4Shape(t *testing.T) {
	tbl, err := RunE4()
	if err != nil {
		t.Fatal(err)
	}
	var postings []int
	for _, row := range tbl.Rows {
		p, _ := strconv.Atoi(row[1])
		postings = append(postings, p)
	}
	for i := 1; i < len(postings); i++ {
		if postings[i] < postings[i-1] {
			t.Errorf("postings not monotone: %v", postings)
		}
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if pct(t, last[3]) != 100 {
		t.Errorf("full marking recall = %v", last[3])
	}
	first := tbl.Rows[0]
	if pct(t, first[3]) >= 100 {
		t.Errorf("single-field recall = %v, expected partial", first[3])
	}
}

// TestE5Shape verifies availability rises with replication.
func TestE5Shape(t *testing.T) {
	tbl, err := RunE5()
	if err != nil {
		t.Fatal(err)
	}
	avail := map[string]map[int]float64{} // failFrac -> replicas -> availability
	for _, row := range tbl.Rows {
		r, _ := strconv.Atoi(row[0])
		if avail[row[1]] == nil {
			avail[row[1]] = map[int]float64{}
		}
		avail[row[1]][r] = pct(t, row[3])
	}
	for frac, m := range avail {
		if m[8] < m[1] {
			t.Errorf("fail %s: availability with 8 replicas (%v) below 1 replica (%v)", frac, m[8], m[1])
		}
		if m[8] < 90 {
			t.Errorf("fail %s: 8 replicas only %v%% available", frac, m[8])
		}
	}
}

// TestE8Shape verifies both protocols return identical result sets.
func TestE8Shape(t *testing.T) {
	tbl, err := RunE8()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[3] != "yes" {
			t.Errorf("results differ across protocols for %q: %v", row[0], row)
		}
	}
}

func pct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return f
}

func TestTableFormat(t *testing.T) {
	tbl := Table{
		ID: "T", Title: "demo",
		Headers: []string{"a", "long-header"},
		Rows:    [][]string{{"xxxxxx", "1"}},
		Notes:   []string{"a note"},
	}
	out := tbl.Format()
	for _, want := range []string{"T — demo", "long-header", "xxxxxx", "note: a note", "------"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q in:\n%s", want, out)
		}
	}
}
