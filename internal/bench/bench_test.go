package bench

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestMain shrinks the scenario experiments to test scale: the full
// 1000-peer sweeps are an up2pbench artifact (and the dedicated
// acceptance test in internal/sim), not something every `go test`
// should pay ~50s for.
func TestMain(m *testing.M) {
	ScenarioBenchConfig.Peers = 120
	ScenarioBenchConfig.Queries = 45
	DHTBenchConfig.E13MaxPeers = 100
	if raceEnabled {
		// The race job pays ~10x per message; the shapes under test
		// survive at 60 peers.
		ScenarioBenchConfig.Peers = 60
		ScenarioBenchConfig.Queries = 30
	}
	os.Exit(m.Run())
}

// TestAllExperimentsRun executes every experiment once and checks the
// structural invariants of their tables.
func TestAllExperimentsRun(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tbl, err := r.Run()
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if tbl.ID != r.ID {
				t.Errorf("table ID = %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Headers) {
					t.Errorf("row %d has %d cells, want %d", i, len(row), len(tbl.Headers))
				}
			}
			out := tbl.Format()
			if !strings.Contains(out, r.ID) {
				t.Error("formatted table missing ID")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e2"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := ByID("zz"); ok {
		t.Error("bogus ID found")
	}
}

// TestE1Shape verifies the paper's expected shape: 100% discovery and
// centralized cost per joiner below flooding cost at the largest N.
func TestE1Shape(t *testing.T) {
	tbl, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	perJoiner := map[string]float64{}
	for _, row := range tbl.Rows {
		if row[3] != "100%" {
			t.Errorf("discovery not total: %v", row)
		}
		if row[1] == "32" {
			per, _ := strconv.ParseFloat(row[5], 64)
			perJoiner[row[0]] = per
		}
	}
	if !(perJoiner["centralized"] < perJoiner["fasttrack"] && perJoiner["fasttrack"] < perJoiner["gnutella"]) {
		t.Errorf("per-joiner cost ordering violated at N=32: %v", perJoiner)
	}
}

// TestE2Shape verifies metadata recall dominates filename recall on
// attribute queries (the paper's core motivation).
func TestE2Shape(t *testing.T) {
	tbl, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	attributeRows := 0
	for _, row := range tbl.Rows {
		meta := pct(t, row[3])
		file := pct(t, row[5])
		if meta != 100 {
			t.Errorf("metadata recall %v%% on %q, want 100%%", meta, row[0])
		}
		if !strings.Contains(row[0], "name") {
			attributeRows++
			if file >= meta {
				t.Errorf("filename recall %v%% >= metadata %v%% on attribute query %q", file, meta, row[0])
			}
		}
	}
	if attributeRows < 3 {
		t.Errorf("too few attribute queries: %d", attributeRows)
	}
}

// TestE3Shape verifies flooding cost grows with N while centralized
// cost stays flat, and that TTL trades coverage for messages.
func TestE3Shape(t *testing.T) {
	tbl, err := RunE3()
	if err != nil {
		t.Fatal(err)
	}
	var central []float64
	var flood []float64
	ttlMsgs := map[int]float64{}
	ttlResults := map[int]float64{}
	for _, row := range tbl.Rows {
		msgs, _ := strconv.ParseFloat(row[3], 64)
		switch row[0] {
		case "centralized":
			central = append(central, msgs)
		case "gnutella":
			if row[1] == "32" {
				ttl, _ := strconv.Atoi(row[2])
				ttlMsgs[ttl] = msgs
				res, _ := strconv.ParseFloat(row[5], 64)
				ttlResults[ttl] = res
			}
			if row[2] == "7" {
				flood = append(flood, msgs)
			}
		}
	}
	for _, m := range central {
		if m > 4 {
			t.Errorf("centralized msgs/query = %v, want O(1)", m)
		}
	}
	if len(flood) >= 2 && flood[len(flood)-1] <= flood[0] {
		t.Errorf("flooding cost not growing with N: %v", flood)
	}
	if ttlMsgs[1] >= ttlMsgs[7] {
		t.Errorf("TTL1 msgs %v >= TTL7 msgs %v", ttlMsgs[1], ttlMsgs[7])
	}
	if ttlResults[1] > ttlResults[7] {
		t.Errorf("TTL1 results %v > TTL7 %v", ttlResults[1], ttlResults[7])
	}
}

// TestE4Shape verifies postings grow with marked fields and recall
// reaches 100% when all queried fields are marked.
func TestE4Shape(t *testing.T) {
	tbl, err := RunE4()
	if err != nil {
		t.Fatal(err)
	}
	var postings []int
	for _, row := range tbl.Rows {
		p, _ := strconv.Atoi(row[1])
		postings = append(postings, p)
	}
	for i := 1; i < len(postings); i++ {
		if postings[i] < postings[i-1] {
			t.Errorf("postings not monotone: %v", postings)
		}
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if pct(t, last[3]) != 100 {
		t.Errorf("full marking recall = %v", last[3])
	}
	first := tbl.Rows[0]
	if pct(t, first[3]) >= 100 {
		t.Errorf("single-field recall = %v, expected partial", first[3])
	}
}

// TestE5Shape verifies availability rises with replication.
func TestE5Shape(t *testing.T) {
	tbl, err := RunE5()
	if err != nil {
		t.Fatal(err)
	}
	avail := map[string]map[int]float64{} // failFrac -> replicas -> availability
	for _, row := range tbl.Rows {
		r, _ := strconv.Atoi(row[0])
		if avail[row[1]] == nil {
			avail[row[1]] = map[int]float64{}
		}
		avail[row[1]][r] = pct(t, row[3])
	}
	for frac, m := range avail {
		if m[8] < m[1] {
			t.Errorf("fail %s: availability with 8 replicas (%v) below 1 replica (%v)", frac, m[8], m[1])
		}
		if m[8] < 90 {
			t.Errorf("fail %s: 8 replicas only %v%% available", frac, m[8])
		}
	}
}

// TestE8Shape verifies both protocols return identical result sets.
func TestE8Shape(t *testing.T) {
	tbl, err := RunE8()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[3] != "yes" {
			t.Errorf("results differ across protocols for %q: %v", row[0], row)
		}
	}
}

// TestE10Shape verifies the churn sweep's cost ordering (centralized <
// fasttrack < gnutella per query) and that recall survives churn on a
// connected overlay.
func TestE10Shape(t *testing.T) {
	tbl, err := RunE10()
	if err != nil {
		t.Fatal(err)
	}
	perProto := map[string]float64{}
	for _, row := range tbl.Rows {
		msgs, _ := strconv.ParseFloat(row[4], 64)
		perProto[row[0]] += msgs
		if r := pct(t, row[5]); r < 90 {
			t.Errorf("%s churn %s: recall %v%%", row[0], row[1], r)
		}
	}
	if !(perProto["centralized"] < perProto["fasttrack"] && perProto["fasttrack"] < perProto["gnutella"]) {
		t.Errorf("msgs/query ordering violated: %v", perProto)
	}
}

// TestE11Shape verifies loss monotonically erodes recall and that
// flooding never hard-fails a query while centralized does.
func TestE11Shape(t *testing.T) {
	tbl, err := RunE11()
	if err != nil {
		t.Fatal(err)
	}
	recalls := map[string][]float64{}
	failed := map[string]int{}
	for _, row := range tbl.Rows {
		recalls[row[0]] = append(recalls[row[0]], pct(t, row[5]))
		n, _ := strconv.Atoi(row[3])
		failed[row[0]] += n
	}
	for proto, rs := range recalls {
		// Gnutella's lossless recall sits a few points below 100: its
		// flood horizon (TTL x degree) misses want-set holders that a
		// diverse corpus scatters across the overlay. Centralized and
		// FastTrack have global indexes and stay at 100 lossless.
		floor := 95.0
		if proto == "gnutella" {
			floor = 88
		}
		if rs[0] < floor {
			t.Errorf("%s lossless recall = %v%%", proto, rs[0])
		}
		if rs[len(rs)-1] >= rs[0] {
			t.Errorf("%s recall did not erode with loss: %v", proto, rs)
		}
	}
	if failed["gnutella"] != 0 {
		t.Errorf("gnutella queries hard-failed under loss: %d (flooding has no single point)", failed["gnutella"])
	}
	if failed["centralized"] == 0 {
		t.Error("centralized never failed a query under 15% loss; timeout path untested")
	}
}

// TestE12Shape verifies the failover arc: steady, dip, recovery.
func TestE12Shape(t *testing.T) {
	tbl, err := RunE12()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	before, outage, after := pct(t, tbl.Rows[0][4]), pct(t, tbl.Rows[1][4]), pct(t, tbl.Rows[2][4])
	if before < 99 {
		t.Errorf("recall before failure = %v%%", before)
	}
	if outage >= before {
		t.Errorf("no outage dip: %v%% >= %v%%", outage, before)
	}
	if after <= outage {
		t.Errorf("no recovery after rehome: %v%% <= %v%%", after, outage)
	}
}

// TestE13Shape is the DHT acceptance gate: on the identical seeded
// workload, flooding's per-query message cost keeps growing with
// population while the DHT's stays near-flat (logarithmic), without
// losing results.
func TestE13Shape(t *testing.T) {
	tbl, err := RunE13()
	if err != nil {
		t.Fatal(err)
	}
	cost := map[string][]float64{} // protocol -> msgs/query per rung
	results := map[string][]float64{}
	for _, row := range tbl.Rows {
		msgs, _ := strconv.ParseFloat(row[2], 64)
		res, _ := strconv.ParseFloat(row[5], 64)
		cost[row[0]] = append(cost[row[0]], msgs)
		results[row[0]] = append(results[row[0]], res)
	}
	g, d := cost["gnutella"], cost["dht"]
	if len(g) < 3 || len(d) < 3 {
		t.Fatalf("ladder too short: %v / %v", g, d)
	}
	gGrowth := g[len(g)-1] / g[0]
	dGrowth := d[len(d)-1] / d[0]
	if dGrowth > 1.8 {
		t.Errorf("DHT cost not ~O(log n): grew %.2fx across the ladder (%v)", dGrowth, d)
	}
	if gGrowth < 1.5 {
		t.Errorf("flooding cost did not grow with N: %.2fx (%v)", gGrowth, g)
	}
	// Compare growth above flat: flooding's excess must dwarf the
	// DHT's (e.g. 2.0x vs 1.02x at the CI ladder).
	if gGrowth-1 < 4*(dGrowth-1) {
		t.Errorf("no clear separation: flooding %.2fx vs DHT %.2fx", gGrowth, dGrowth)
	}
	if g[len(g)-1] < 5*d[len(d)-1] {
		t.Errorf("at the largest rung flooding (%.1f) is not >> DHT (%.1f)", g[len(g)-1], d[len(d)-1])
	}
	dRes := results["dht"]
	if dRes[len(dRes)-1] < dRes[0] {
		t.Errorf("DHT results eroded with scale: %v", dRes)
	}
}

// TestE14Shape: under churn the DHT must hold recall (refresh repairs
// replicas) at a per-query cost far below flooding's.
func TestE14Shape(t *testing.T) {
	tbl, err := RunE14()
	if err != nil {
		t.Fatal(err)
	}
	maxCost := map[string]float64{}
	totalAt20 := map[string]float64{} // protocol -> total msgs at the 20% rung
	for _, row := range tbl.Rows {
		msgs, _ := strconv.ParseFloat(row[5], 64)
		if msgs > maxCost[row[0]] {
			maxCost[row[0]] = msgs
		}
		if row[1] == "20%" {
			totalAt20[row[0]], _ = strconv.ParseFloat(row[10], 64)
		}
		if row[0] == "dht" {
			if r := pct(t, row[6]); r < 95 {
				t.Errorf("dht churn %s: recall %v%%, want >= 95%%", row[1], r)
			}
			if row[1] != "0%" && row[4] == "0" {
				t.Errorf("dht churn %s: no refresh rounds ran", row[1])
			}
		}
	}
	if maxCost["dht"]*3 > maxCost["gnutella"] {
		t.Errorf("dht cost (%.1f) not well below flooding (%.1f)", maxCost["dht"], maxCost["gnutella"])
	}
	// The ablation rung must show the adaptive-republish saving: with
	// the intact-holder-set check disabled, every refresh re-STOREs
	// every key, so total traffic has to rise.
	if totalAt20["dht-always"] <= totalAt20["dht"] {
		t.Errorf("dht-always total msgs (%.0f) not above adaptive dht (%.0f)",
			totalAt20["dht-always"], totalAt20["dht"])
	}
}

// TestE15Shape: no hard query failures on either protocol, and the
// DHT's replicated records must weather loss at least as well as
// flooding's path redundancy.
func TestE15Shape(t *testing.T) {
	tbl, err := RunE15()
	if err != nil {
		t.Fatal(err)
	}
	recall := map[string]map[string]float64{} // protocol -> loss -> recall
	for _, row := range tbl.Rows {
		if row[3] != "0" {
			t.Errorf("%s hard-failed %s queries under %s loss", row[0], row[3], row[1])
		}
		if recall[row[0]] == nil {
			recall[row[0]] = map[string]float64{}
		}
		recall[row[0]][row[1]] = pct(t, row[5])
	}
	for _, loss := range []string{"0%", "1%", "5%", "15%"} {
		if recall["dht"][loss] < recall["gnutella"][loss] {
			t.Errorf("at %s loss dht recall %v%% below gnutella %v%%", loss, recall["dht"][loss], recall["gnutella"][loss])
		}
	}
	if recall["dht"]["15%"] < 90 {
		t.Errorf("dht recall at 15%% loss = %v%%, replication not doing its job", recall["dht"]["15%"])
	}
}

func pct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return f
}

func TestTableFormat(t *testing.T) {
	tbl := Table{
		ID: "T", Title: "demo",
		Headers: []string{"a", "long-header"},
		Rows:    [][]string{{"xxxxxx", "1"}},
		Notes:   []string{"a note"},
	}
	out := tbl.Format()
	for _, want := range []string{"T — demo", "long-header", "xxxxxx", "note: a note", "------"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q in:\n%s", want, out)
		}
	}
}
