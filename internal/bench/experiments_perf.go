package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/stylegen"
	"repro/internal/xsd"
)

// RunE6 measures the generative pipeline's hot-path throughput: the
// servent cost the paper's JSP/Xalan prototype paid on every request.
func RunE6() (Table, error) {
	t := Table{
		ID:      "E6",
		Title:   "Generative pipeline throughput (pattern community)",
		Headers: []string{"operation", "iterations", "us/op", "ops/sec"},
	}
	schema, err := xsd.ParseString(corpus.PatternSchemaSrc)
	if err != nil {
		return t, err
	}
	obj := corpus.DesignPatterns(1, 1).Objects[0].Doc
	ix, err := stylegen.NewIndexer(schema)
	if err != nil {
		return t, err
	}
	filter := query.MustParse("(&(classification=behavioral)(keywords=notification))")
	attrs, err := ix.Extract(obj)
	if err != nil {
		return t, err
	}
	styles := stylegen.Defaults()

	measure := func(name string, iters int, fn func() error) error {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		el := time.Since(start)
		perOp := el / time.Duration(iters)
		ops := float64(time.Second) / float64(perOp)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", iters),
			fmt.Sprintf("%.1f", float64(perOp.Nanoseconds())/1e3),
			fmt.Sprintf("%.0f", ops),
		})
		return nil
	}

	if err := measure("parse schema", 2000, func() error {
		_, err := xsd.ParseString(corpus.PatternSchemaSrc)
		return err
	}); err != nil {
		return t, err
	}
	if err := measure("validate object", 5000, func() error {
		return schema.Validate(obj)
	}); err != nil {
		return t, err
	}
	if err := measure("generate create form", 2000, func() error {
		_, err := styles.Create.Apply(schema.Doc())
		return err
	}); err != nil {
		return t, err
	}
	if err := measure("render object view", 2000, func() error {
		_, err := styles.View.Apply(obj)
		return err
	}); err != nil {
		return t, err
	}
	if err := measure("indexing transform", 5000, func() error {
		_, err := ix.Extract(obj)
		return err
	}); err != nil {
		return t, err
	}
	if err := measure("filter match", 200000, func() error {
		filter.Match(attrs)
		return nil
	}); err != nil {
		return t, err
	}
	return t, nil
}

// RunE7 reproduces the §V case study end to end: a design-pattern
// community with a custom display stylesheet and rich queries over the
// published repository.
func RunE7() (Table, error) {
	t := Table{
		ID:      "E7",
		Title:   "Design-pattern case study (§V): 6 peers, 115 patterns, rich queries",
		Headers: []string{"query", "hits", "first result"},
		Notes: []string{
			"\"prior to our work there has been no way to share design patterns in a",
			"peer-to-peer fashion that incorporates meta-data search\" (§V) — this table is that system running",
		},
	}
	customView := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	  <xsl:template match="/">
	    <article class="pattern">
	      <h1><xsl:value-of select="pattern/name"/></h1>
	      <p class="classification"><xsl:value-of select="pattern/classification"/></p>
	      <p class="intent"><xsl:value-of select="pattern/intent"/></p>
	      <ul><xsl:for-each select="pattern/participants"><li><xsl:value-of select="."/></li></xsl:for-each></ul>
	    </article>
	  </xsl:template>
	</xsl:stylesheet>`
	c, err := sim.NewCluster(sim.Config{Peers: 6, Protocol: sim.Centralized, Seed: 71})
	if err != nil {
		return t, err
	}
	comm, err := c.SeedCommunity(0, core.CommunitySpec{
		Name:            "designpatterns",
		Description:     "Carleton Pattern Repository as a U-P2P community",
		Keywords:        "design patterns gof software",
		Category:        "computer-science",
		SchemaSrc:       corpus.PatternSchemaSrc,
		DisplayStyleSrc: customView,
	})
	if err != nil {
		return t, err
	}
	if _, err := c.DiscoverAndJoinAll("designpatterns", 7); err != nil {
		return t, err
	}
	objs := corpus.DesignPatterns(115, 21).Objects
	_, err = c.PublishRoundRobin(comm.ID, objs)
	if err != nil {
		return t, err
	}
	queries := []struct{ label, filter string }{
		{"name Observer", "(name=Observer)"},
		{"intent ~ one-to-many", "(intent~=one-to-many)"},
		{"behavioral AND notification", "(&(classification=behavioral)(keywords=notification))"},
		{"participant Subject", "(participants=Subject)"},
		{"creational OR structural", "(|(classification=creational)(classification=structural))"},
		{"negation: NOT behavioral", "(!(classification=behavioral))"},
	}
	for _, q := range queries {
		rs, err := c.SearchFrom(3, comm.ID, query.MustParse(q.filter), p2p.SearchOptions{})
		if err != nil {
			return t, err
		}
		first := "-"
		if len(rs) > 0 {
			first = rs[0].Title
		}
		t.Rows = append(t.Rows, []string{q.label, fmt.Sprintf("%d", len(rs)), first})
	}
	// Custom stylesheet actually renders retrieved objects.
	rs, err := c.SearchFrom(5, comm.ID, query.MustParse("(name=Visitor)"), p2p.SearchOptions{})
	if err != nil || len(rs) == 0 {
		return t, fmt.Errorf("case study: Visitor not found (%v)", err)
	}
	if _, err := c.Servents[5].Retrieve(rs[0].DocID, rs[0].Provider); err != nil {
		return t, err
	}
	html, err := c.Servents[5].View(rs[0].DocID)
	if err != nil {
		return t, err
	}
	if !strings.Contains(html, `class="pattern"`) {
		return t, fmt.Errorf("custom stylesheet not applied: %q", html)
	}
	t.Rows = append(t.Rows, []string{"custom view of retrieved Visitor", "1", fmt.Sprintf("%d bytes of HTML", len(html))})
	return t, nil
}

// RunE8 demonstrates §VI's protocol independence: the identical
// servent workload over both networks returns identical result sets,
// differing only in message cost.
func RunE8() (Table, error) {
	t := Table{
		ID:      "E8",
		Title:   "Protocol independence: identical workload, centralized vs Gnutella",
		Headers: []string{"query", "centralized hits", "gnutella hits", "identical results", "c msgs", "g msgs"},
		Notes: []string{
			"the core servent code is identical in both columns; only the injected",
			"p2p.Network differs (the generic create/search/retrieve interface of §VI)",
		},
	}
	queries := []string{
		"(classification=behavioral)",
		"(name~=Factory)",
		"(keywords=tree)",
		"(*)",
	}
	type outcome struct {
		titles map[string][]string
		msgs   map[string]int64
	}
	run := func(proto sim.Protocol) (outcome, error) {
		o := outcome{titles: map[string][]string{}, msgs: map[string]int64{}}
		c, err := sim.NewCluster(sim.Config{Peers: 6, Protocol: proto, Degree: 5, Seed: 81})
		if err != nil {
			return o, err
		}
		comm, err := c.SeedCommunity(0, core.CommunitySpec{Name: "patterns", SchemaSrc: corpus.PatternSchemaSrc})
		if err != nil {
			return o, err
		}
		if _, err := c.DiscoverAndJoinAll("patterns", 7); err != nil {
			return o, err
		}
		if _, err := c.PublishRoundRobin(comm.ID, corpus.DesignPatterns(46, 81).Objects); err != nil {
			return o, err
		}
		for _, q := range queries {
			before := c.Metrics()
			rs, err := c.SearchFrom(2, comm.ID, query.MustParse(q), p2p.SearchOptions{TTL: 7})
			if err != nil {
				return o, err
			}
			titles := make([]string, 0, len(rs))
			for _, r := range rs {
				titles = append(titles, r.Title)
			}
			sort.Strings(titles)
			o.titles[q] = titles
			o.msgs[q] = c.Metrics().Delta(before).Counter("transport.msgs_delivered")
		}
		return o, nil
	}
	co, err := run(sim.Centralized)
	if err != nil {
		return t, err
	}
	gOut, err := run(sim.Gnutella)
	if err != nil {
		return t, err
	}
	for _, q := range queries {
		same := "yes"
		if strings.Join(co.titles[q], "|") != strings.Join(gOut.titles[q], "|") {
			same = "NO"
		}
		t.Rows = append(t.Rows, []string{
			q,
			fmt.Sprintf("%d", len(co.titles[q])),
			fmt.Sprintf("%d", len(gOut.titles[q])),
			same,
			fmt.Sprintf("%d", co.msgs[q]),
			fmt.Sprintf("%d", gOut.msgs[q]),
		})
	}
	return t, nil
}
