package bench

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// HotspotBenchConfig scales the E16 flash-crowd experiment; up2pbench
// exposes the fields as -e16-* flags.
//
// K and Alpha deliberately differ from the DHT defaults: at 200 peers
// a k=16 routing table covers most of the network, so nearly every
// querier already knows the hot key's holders and reaches them in one
// hop — no lookup path exists for a cached copy to intercept. k=4
// models the regime the paper cares about (a network much larger than
// any routing table, where lookups take multiple hops through nodes
// near the key), which is where a flash crowd actually concentrates
// load and where the caching STORE earns its keep.
var HotspotBenchConfig = struct {
	// Peers is the DHT population under the flash crowd.
	Peers int
	// Burst is how many back-to-back queries the flash crowd aims at
	// the popular community filter.
	Burst int
	// SplitThreshold is the per-holder record count that triggers
	// hot-key splitting in the cache+split row.
	SplitThreshold int
	// K and Alpha are the Kademlia bucket size and lookup width for
	// the experiment's cluster (see the partial-table note above).
	K, Alpha int
}{Peers: 200, Burst: 300, SplitThreshold: 128, K: 4, Alpha: 2}

// RunE16 measures flash-crowd survival on the DHT: the same seeded
// burst of queries for one popular filter against one community key,
// run three ways — baseline, with Kademlia's caching STORE, and with
// caching plus attribute-sharded hot-key splitting. The headline is
// the load on the hot key's k natural holders over the burst window
// (holder max / holder mean messages): caching replicates the hot
// result set onto lookup-path nodes with halved TTLs, so queriers
// terminate before ever reaching the holders and their load collapses.
func RunE16() (Table, error) {
	peers := HotspotBenchConfig.Peers
	burst := HotspotBenchConfig.Burst
	t := Table{
		ID: "E16",
		Title: fmt.Sprintf("Flash-crowd hot key: caching STORE + key splitting (%d peers, %d-query burst, k=%d α=%d)",
			peers, burst, HotspotBenchConfig.K, HotspotBenchConfig.Alpha),
		Headers: []string{"mode", "holder max", "holder mean", "burst max", "burst mean", "recall", "cache stores", "cache hits", "key splits"},
		Notes: []string{
			"holder max/mean = messages received during the burst window by the k live",
			"peers XOR-closest to the hot community key (its natural holders); burst",
			"max/mean = the same over all live peers; expected shape: caching cuts",
			"holder load >=2x on the same seed with recall unchanged, because cached",
			"copies on lookup-path nodes terminate queries before they reach the",
			"holders; splitting additionally bounds per-holder record state",
		},
	}
	modes := []struct {
		name  string
		cache bool
		split int
	}{
		{"baseline", false, 0},
		{"cache", true, 0},
		{"cache+split", true, HotspotBenchConfig.SplitThreshold},
	}
	for _, m := range modes {
		cluster := dhtScenarioCluster(peers, sim.DHT)
		cluster.DHTK = HotspotBenchConfig.K
		cluster.DHTAlpha = HotspotBenchConfig.Alpha
		cluster.DHTCache = m.cache
		cluster.DHTSplitThreshold = m.split
		cluster.PeerLoad = true
		r, err := sim.RunScenario(sim.ScenarioConfig{
			Cluster:  cluster,
			Duration: scenarioDuration,
			// Light background traffic; the burst is the measurement.
			QueryRate:       0.5,
			InitialObjects:  2 * peers,
			BurstAt:         scenarioDuration / 2,
			BurstQueries:    burst,
			DHTRefreshEvery: dhtRefreshEvery,
		})
		if err != nil {
			return t, err
		}
		if r.Load == nil {
			return t, fmt.Errorf("bench: E16 %s row produced no load measurement", m.name)
		}
		recall := "n/a"
		if mr := r.MeanRecall(0, 0); !math.IsNaN(mr) {
			recall = fmt.Sprintf("%.0f%%", 100*mr)
		}
		t.Rows = append(t.Rows, []string{
			m.name,
			fmt.Sprintf("%d", r.Load.HolderMax),
			fmt.Sprintf("%.1f", r.Load.HolderMean),
			fmt.Sprintf("%d", r.Load.Max),
			fmt.Sprintf("%.1f", r.Load.Mean),
			recall,
			fmt.Sprintf("%d", r.Metrics.Counter("dht.cache_stores")),
			fmt.Sprintf("%d", r.Metrics.Counter("dht.cache_hits")),
			fmt.Sprintf("%d", r.Metrics.Counter("dht.key_splits")),
		})
	}
	return t, nil
}
