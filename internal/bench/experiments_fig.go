package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/stylegen"
	"repro/internal/xmldoc"
	"repro/internal/xsd"
)

// RunF1 reproduces Fig. 1 (the shared object model) as an executable
// pipeline: the schema instantiates an object through the create
// form, the indexing stylesheet extracts its indexed attributes, and
// the view stylesheet renders it.
func RunF1() (Table, error) {
	t := Table{
		ID:      "F1",
		Title:   "Shared object model pipeline (Fig. 1): schema -> forms -> object -> index -> view",
		Headers: []string{"stage", "artifact", "size (bytes)", "status"},
		Notes: []string{
			"every stage is driven by the community schema, none by hand-written per-community code",
		},
	}
	schema, err := xsd.ParseString(corpus.PatternSchemaSrc)
	if err != nil {
		return t, err
	}
	add := func(stage, artifact string, size int) {
		t.Rows = append(t.Rows, []string{stage, artifact, fmt.Sprintf("%d", size), "ok"})
	}
	add("parse schema", "xsd.Schema (pattern community)", len(corpus.PatternSchemaSrc))

	createHTML, err := stylegen.CreateFormHTML(schema)
	if err != nil {
		return t, err
	}
	add("create stylesheet", "HTML create form", len(createHTML))

	searchHTML, err := stylegen.SearchFormHTML(schema)
	if err != nil {
		return t, err
	}
	add("search stylesheet", "HTML search form", len(searchHTML))

	obj, err := stylegen.BuildObject(schema, map[string][]string{
		"name":           {"Observer"},
		"classification": {"behavioral"},
		"intent":         {"Define a one-to-many dependency between objects"},
		"keywords":       {"notification", "publish-subscribe"},
		"participants":   {"Subject", "Observer"},
	})
	if err != nil {
		return t, err
	}
	add("create form submission", "schema-valid <pattern> object", len(obj.String()))

	if err := schema.Validate(obj); err != nil {
		return t, fmt.Errorf("validate: %w", err)
	}
	add("schema validation", "0 violations", 0)

	ix, err := stylegen.NewIndexer(schema)
	if err != nil {
		return t, err
	}
	attrs, err := ix.Extract(obj)
	if err != nil {
		return t, err
	}
	add("indexing stylesheet", fmt.Sprintf("%d indexed attributes", len(attrs)), len(ix.Source()))

	viewHTML, err := stylegen.ViewHTML(obj)
	if err != nil {
		return t, err
	}
	add("view stylesheet", "HTML object view", len(viewHTML))

	f := stylegen.BuildFilter(map[string][]string{"keywords": {"notification"}})
	if !f.Match(attrs) {
		return t, fmt.Errorf("search filter missed the object's own attributes")
	}
	add("search filter", "query matches indexed attributes", len(f.String()))
	return t, nil
}

// RunF2 reproduces Fig. 2: the schema+stylesheet pair generates the
// three application functions for every bundled community, with no
// community-specific code.
func RunF2() (Table, error) {
	t := Table{
		ID:      "F2",
		Title:   "Schema-to-application generation (Fig. 2) across community schemas",
		Headers: []string{"community", "fields", "searchable", "create form B", "search form B", "enum selects"},
		Notes: []string{
			"the same default stylesheets generate all forms; enum types render as <select>",
		},
	}
	schemas := []struct {
		name string
		src  string
	}{
		{"root (Fig. 3)", ""},
		{"designpatterns", corpus.PatternSchemaSrc},
		{"mp3", corpus.SongSchemaSrc},
		{"cml", corpus.MoleculeSchemaSrc},
		{"species", corpus.SpeciesSchemaSrc},
	}
	for _, sc := range schemas {
		var schema *xsd.Schema
		if sc.src == "" {
			schema = core.RootCommunity().Schema
		} else {
			var err error
			schema, err = xsd.ParseString(sc.src)
			if err != nil {
				return t, fmt.Errorf("%s: %w", sc.name, err)
			}
		}
		create, err := stylegen.CreateFormHTML(schema)
		if err != nil {
			return t, fmt.Errorf("%s create: %w", sc.name, err)
		}
		search, err := stylegen.SearchFormHTML(schema)
		if err != nil {
			return t, fmt.Errorf("%s search: %w", sc.name, err)
		}
		t.Rows = append(t.Rows, []string{
			sc.name,
			fmt.Sprintf("%d", len(schema.Fields())),
			fmt.Sprintf("%d", len(schema.SearchableFields())),
			fmt.Sprintf("%d", len(create)),
			fmt.Sprintf("%d", len(search)),
			fmt.Sprintf("%d", strings.Count(create, "<select")),
		})
	}
	return t, nil
}

// RunF3 reproduces Fig. 3: the community schema itself — parsed,
// enforced, and used to round-trip community objects.
func RunF3() (Table, error) {
	t := Table{
		ID:      "F3",
		Title:   "Community schema (Fig. 3): validation and community-object round trip",
		Headers: []string{"check", "outcome"},
	}
	root := core.RootCommunity()
	pass := func(check, outcome string) {
		t.Rows = append(t.Rows, []string{check, outcome})
	}
	pass("schema parses", fmt.Sprintf("%d fields, protocol enum %v",
		len(root.Schema.Fields()), root.Schema.Types["protocolTypes"].Enum))

	c, err := core.NewCommunity(core.CommunitySpec{
		Name:      "mp3",
		Protocol:  "Gnutella",
		SchemaSrc: corpus.SongSchemaSrc,
	})
	if err != nil {
		return t, err
	}
	obj, attachments := c.Marshal()
	if err := root.Schema.Validate(obj); err != nil {
		return t, fmt.Errorf("marshalled community invalid: %w", err)
	}
	pass("community object validates", "0 violations")

	back, err := core.UnmarshalCommunity(obj, attachments)
	if err != nil {
		return t, err
	}
	if back.ID != c.ID {
		return t, fmt.Errorf("round trip changed ID: %s -> %s", c.ID, back.ID)
	}
	pass("round trip preserves identity", back.ID)

	// Negative cases: the schema actually constrains.
	bad := obj.Clone()
	bad.SetChildText("protocol", "Freenet")
	if err := root.Schema.Validate(bad); err == nil {
		return t, fmt.Errorf("invalid protocol accepted")
	}
	pass("protocol outside enumeration rejected", "violation reported")

	bad2 := obj.Clone()
	bad2.RemoveChild(bad2.Child("schema"))
	if err := root.Schema.Validate(bad2); err == nil {
		return t, fmt.Errorf("missing schema field accepted")
	}
	pass("missing schema element rejected", "violation reported")

	bad3 := obj.Clone()
	bad3.AppendChild(xmldoc.NewElement("undeclared"))
	if err := root.Schema.Validate(bad3); err == nil {
		return t, fmt.Errorf("undeclared element accepted")
	}
	pass("undeclared element rejected", "violation reported")
	return t, nil
}
