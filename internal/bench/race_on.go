//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in; the
// test harness shrinks scenario workloads under its ~10x slowdown.
const raceEnabled = true
