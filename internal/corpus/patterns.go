package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// PatternSchemaSrc is the design-pattern community schema of the §V
// case study, derived (as the paper did) from the Carleton Pattern
// Repository's DTD: name, classification, intent, motivation,
// applicability, participants, collaborations, consequences, known
// uses — with the searchable subset marked, since "a design patterns
// community requires the ability to search not just name but purpose,
// keywords, applications, etc." (§II).
const PatternSchemaSrc = `<?xml version="1.0"?>
<schema xmlns="http://www.w3.org/2001/XMLSchema" xmlns:up2p="http://up2p.carleton.ca/ns/community">
 <element name="pattern">
  <complexType>
   <sequence>
    <element name="name" type="xsd:string" up2p:searchable="true"/>
    <element name="classification" type="classificationType" up2p:searchable="true"/>
    <element name="intent" type="xsd:string" up2p:searchable="true"/>
    <element name="keywords" type="xsd:string" minOccurs="0" maxOccurs="unbounded" up2p:searchable="true"/>
    <element name="motivation" type="xsd:string" minOccurs="0"/>
    <element name="applicability" type="xsd:string" minOccurs="0" up2p:searchable="true"/>
    <element name="structure" type="xsd:string" minOccurs="0"/>
    <element name="participants" type="xsd:string" minOccurs="0" maxOccurs="unbounded" up2p:searchable="true"/>
    <element name="collaborations" type="xsd:string" minOccurs="0"/>
    <element name="consequences" type="xsd:string" minOccurs="0"/>
    <element name="knownUses" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
    <element name="sourceCode" type="xsd:anyURI" minOccurs="0" up2p:attachment="true"/>
   </sequence>
  </complexType>
 </element>
 <simpleType name="classificationType">
  <restriction base="string">
   <enumeration value="creational"/>
   <enumeration value="structural"/>
   <enumeration value="behavioral"/>
  </restriction>
 </simpleType>
</schema>`

// gofPattern is the ground-truth description of one GoF pattern.
type gofPattern struct {
	name           string
	classification string
	intent         string
	keywords       []string
	applicability  string
	participants   []string
}

// gofCatalog is the full GoF 23, with intents close to the book's.
var gofCatalog = []gofPattern{
	{"Abstract Factory", "creational", "Provide an interface for creating families of related or dependent objects without specifying their concrete classes", []string{"factory", "family", "creation"}, "a system should be independent of how its products are created", []string{"AbstractFactory", "ConcreteFactory", "AbstractProduct"}},
	{"Builder", "creational", "Separate the construction of a complex object from its representation so that the same construction process can create different representations", []string{"construction", "stepwise"}, "the algorithm for creating a complex object should be independent of its parts", []string{"Builder", "ConcreteBuilder", "Director"}},
	{"Factory Method", "creational", "Define an interface for creating an object but let subclasses decide which class to instantiate", []string{"factory", "virtual constructor"}, "a class cannot anticipate the class of objects it must create", []string{"Product", "Creator", "ConcreteCreator"}},
	{"Prototype", "creational", "Specify the kinds of objects to create using a prototypical instance and create new objects by copying this prototype", []string{"clone", "copy"}, "classes to instantiate are specified at run-time", []string{"Prototype", "ConcretePrototype", "Client"}},
	{"Singleton", "creational", "Ensure a class only has one instance and provide a global point of access to it", []string{"single", "global", "instance"}, "there must be exactly one instance of a class", []string{"Singleton"}},
	{"Adapter", "structural", "Convert the interface of a class into another interface clients expect", []string{"wrapper", "interface", "conversion"}, "you want to use an existing class and its interface does not match", []string{"Target", "Adapter", "Adaptee"}},
	{"Bridge", "structural", "Decouple an abstraction from its implementation so that the two can vary independently", []string{"handle", "body", "decouple"}, "you want to avoid a permanent binding between abstraction and implementation", []string{"Abstraction", "Implementor", "RefinedAbstraction"}},
	{"Composite", "structural", "Compose objects into tree structures to represent part-whole hierarchies", []string{"tree", "hierarchy", "recursion"}, "you want to represent part-whole hierarchies of objects", []string{"Component", "Leaf", "Composite"}},
	{"Decorator", "structural", "Attach additional responsibilities to an object dynamically", []string{"wrapper", "extension", "dynamic"}, "to add responsibilities to individual objects without affecting others", []string{"Component", "ConcreteComponent", "Decorator"}},
	{"Facade", "structural", "Provide a unified interface to a set of interfaces in a subsystem", []string{"simplify", "subsystem", "unified"}, "you want to provide a simple interface to a complex subsystem", []string{"Facade", "Subsystem"}},
	{"Flyweight", "structural", "Use sharing to support large numbers of fine-grained objects efficiently", []string{"sharing", "memory", "intrinsic"}, "an application uses a large number of objects", []string{"Flyweight", "ConcreteFlyweight", "FlyweightFactory"}},
	{"Proxy", "structural", "Provide a surrogate or placeholder for another object to control access to it", []string{"surrogate", "placeholder", "access"}, "you need a more versatile reference to an object than a simple pointer", []string{"Proxy", "Subject", "RealSubject"}},
	{"Chain of Responsibility", "behavioral", "Avoid coupling the sender of a request to its receiver by giving more than one object a chance to handle the request", []string{"chain", "handler", "request"}, "more than one object may handle a request", []string{"Handler", "ConcreteHandler", "Client"}},
	{"Command", "behavioral", "Encapsulate a request as an object thereby letting you parameterize clients with different requests", []string{"action", "transaction", "undo"}, "you want to parameterize objects by an action to perform", []string{"Command", "ConcreteCommand", "Invoker", "Receiver"}},
	{"Interpreter", "behavioral", "Given a language define a representation for its grammar along with an interpreter that uses the representation", []string{"grammar", "language", "expression"}, "there is a language to interpret and its grammar is simple", []string{"AbstractExpression", "TerminalExpression", "Context"}},
	{"Iterator", "behavioral", "Provide a way to access the elements of an aggregate object sequentially without exposing its underlying representation", []string{"cursor", "traversal", "collection"}, "to access an aggregate object's contents without exposing its representation", []string{"Iterator", "ConcreteIterator", "Aggregate"}},
	{"Mediator", "behavioral", "Define an object that encapsulates how a set of objects interact", []string{"coupling", "coordination", "hub"}, "a set of objects communicate in well-defined but complex ways", []string{"Mediator", "ConcreteMediator", "Colleague"}},
	{"Memento", "behavioral", "Without violating encapsulation capture and externalize an object's internal state so that the object can be restored to this state later", []string{"snapshot", "undo", "state"}, "a snapshot of an object's state must be saved", []string{"Memento", "Originator", "Caretaker"}},
	{"Observer", "behavioral", "Define a one-to-many dependency between objects so that when one object changes state all its dependents are notified and updated automatically", []string{"notification", "publish-subscribe", "dependency"}, "a change to one object requires changing others and you don't know how many", []string{"Subject", "Observer", "ConcreteSubject", "ConcreteObserver"}},
	{"State", "behavioral", "Allow an object to alter its behavior when its internal state changes", []string{"state machine", "behavior", "transition"}, "an object's behavior depends on its state", []string{"Context", "State", "ConcreteState"}},
	{"Strategy", "behavioral", "Define a family of algorithms encapsulate each one and make them interchangeable", []string{"algorithm", "policy", "interchangeable"}, "many related classes differ only in their behavior", []string{"Strategy", "ConcreteStrategy", "Context"}},
	{"Template Method", "behavioral", "Define the skeleton of an algorithm in an operation deferring some steps to subclasses", []string{"skeleton", "hook", "inheritance"}, "to implement the invariant parts of an algorithm once", []string{"AbstractClass", "ConcreteClass"}},
	{"Visitor", "behavioral", "Represent an operation to be performed on the elements of an object structure", []string{"operation", "double dispatch", "traversal"}, "an object structure contains many classes with differing interfaces", []string{"Visitor", "ConcreteVisitor", "Element"}},
}

// DesignPatterns generates n pattern objects: the GoF 23 first, then
// deterministic synthetic variants (idioms, domain adaptations) so
// corpora can grow to thousands while keeping realistic attribute
// distributions. Filenames deliberately contain only the pattern name
// — the information loss the paper blames filename search for.
func DesignPatterns(n int, seed int64) Corpus {
	r := rand.New(rand.NewSource(seed))
	domains := []string{"GUI", "networking", "persistence", "compiler", "game", "telephony", "workflow", "simulation"}
	langs := []string{"Java", "Cpp", "Smalltalk", "Eiffel", "Python"}
	objects := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		base := gofCatalog[i%len(gofCatalog)]
		p := base
		variant := i / len(gofCatalog)
		if variant > 0 {
			domain := pick(r, domains)
			lang := pick(r, langs)
			p.name = fmt.Sprintf("%s for %s (%s idiom %d)", base.name, domain, lang, variant)
			p.intent = base.intent + " adapted to " + domain + " systems"
			p.keywords = append(append([]string{}, base.keywords...), strings.ToLower(domain), strings.ToLower(lang))
		}
		doc := el("pattern", "")
		doc.AppendChild(el("name", p.name))
		doc.AppendChild(el("classification", p.classification))
		doc.AppendChild(el("intent", p.intent))
		for _, k := range p.keywords {
			doc.AppendChild(el("keywords", k))
		}
		doc.AppendChild(el("motivation", "Consider a "+pick(r, domains)+" application that needs "+strings.ToLower(base.name)+" behaviour."))
		doc.AppendChild(el("applicability", p.applicability))
		doc.AppendChild(el("structure", "UML class diagram omitted"))
		for _, part := range p.participants {
			doc.AppendChild(el("participants", part))
		}
		doc.AppendChild(el("collaborations", "Participants collaborate as described in the GoF catalogue."))
		doc.AppendChild(el("consequences", "Trade-offs: "+pick(r, []string{"flexibility vs complexity", "decoupling vs indirection", "reuse vs performance"})))
		doc.AppendChild(el("knownUses", pick(r, []string{"ET++", "InterViews", "MacApp", "JDK", "Unidraw"})))
		filename := strings.ReplaceAll(strings.ToLower(base.name), " ", "_")
		if variant > 0 {
			filename = fmt.Sprintf("%s_v%d", filename, variant)
		}
		objects = append(objects, Object{Doc: doc, Filename: filename + ".xml"})
	}
	return Corpus{Name: "designpatterns", SchemaSrc: PatternSchemaSrc, Objects: objects}
}

// GofCount is the number of base catalogue patterns.
const GofCount = 23
