// Package corpus generates deterministic, schema-valid object corpora
// for the communities the paper motivates (§I): design patterns (the
// §V case study), MP3 metadata (the Napster lineage), CML-style
// chemical molecules, and biodiversity species descriptions.
//
// The original Carleton Pattern Repository is long gone; these
// generators substitute synthetic corpora with controlled attribute
// distributions so the search-recall experiments (E2, E7) measure the
// same phenomenon the paper argues about: metadata queries finding
// objects that filename matching cannot.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/xmldoc"
)

// Object is one generated corpus entry.
type Object struct {
	// Doc is the schema-valid XML object.
	Doc *xmldoc.Node
	// Filename is the plausible filename a classic file-sharing system
	// would expose for this object — the baseline search target of E2.
	Filename string
}

// Corpus couples a community schema with its generated objects.
type Corpus struct {
	// Name labels the corpus ("designpatterns", "mp3", ...).
	Name string
	// SchemaSrc is the community's XML Schema text.
	SchemaSrc string
	// Objects are the generated entries.
	Objects []Object
}

// pick returns a deterministic pseudo-random element of choices.
func pick(r *rand.Rand, choices []string) string {
	return choices[r.Intn(len(choices))]
}

// pickSome returns k distinct elements (k clamped to len).
func pickSome(r *rand.Rand, choices []string, k int) []string {
	if k > len(choices) {
		k = len(choices)
	}
	perm := r.Perm(len(choices))
	out := make([]string, 0, k)
	for _, i := range perm[:k] {
		out = append(out, choices[i])
	}
	return out
}

// el builds an element with text content.
func el(name, text string) *xmldoc.Node {
	n := xmldoc.NewElement(name)
	if text != "" {
		n.AppendChild(xmldoc.NewText(text))
	}
	return n
}

// ByName returns the named generator's corpus.
func ByName(name string, n int, seed int64) (Corpus, error) {
	switch name {
	case "designpatterns":
		return DesignPatterns(n, seed), nil
	case "mp3":
		return Songs(n, seed), nil
	case "cml":
		return Molecules(n, seed), nil
	case "species":
		return Species(n, seed), nil
	default:
		return Corpus{}, fmt.Errorf("corpus: unknown corpus %q", name)
	}
}

// Names lists the available corpora.
func Names() []string {
	return []string{"designpatterns", "mp3", "cml", "species"}
}
