package corpus

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/xsd"
)

// TestAllCorporaSchemaValid is the load-bearing test: every generated
// object validates against its community schema, at both small and
// larger-than-catalogue sizes (variant generation paths).
func TestAllCorporaSchemaValid(t *testing.T) {
	for _, name := range Names() {
		for _, n := range []int{5, 60} {
			c, err := ByName(name, n, 42)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(c.Objects) != n {
				t.Fatalf("%s: generated %d, want %d", name, len(c.Objects), n)
			}
			s, err := xsd.ParseString(c.SchemaSrc)
			if err != nil {
				t.Fatalf("%s schema: %v", name, err)
			}
			for i, obj := range c.Objects {
				if err := s.Validate(obj.Doc); err != nil {
					t.Errorf("%s[%d] (%s) invalid: %v", name, i, obj.Filename, err)
				}
				if obj.Filename == "" {
					t.Errorf("%s[%d] missing filename", name, i)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, _ := ByName(name, 30, 7)
		b, _ := ByName(name, 30, 7)
		for i := range a.Objects {
			if a.Objects[i].Doc.String() != b.Objects[i].Doc.String() {
				t.Errorf("%s[%d] differs across runs with same seed", name, i)
			}
		}
		if name == "cml" {
			continue // molecules derive purely from the catalogue; seed-independent
		}
		c, _ := ByName(name, 30, 8)
		same := true
		for i := range a.Objects {
			if a.Objects[i].Doc.String() != c.Objects[i].Doc.String() {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s identical across different seeds", name)
		}
	}
}

func TestPatternsBaseCatalogue(t *testing.T) {
	c := DesignPatterns(GofCount, 1)
	names := map[string]bool{}
	for _, o := range c.Objects {
		names[o.Doc.ChildText("name")] = true
	}
	for _, want := range []string{"Observer", "Visitor", "Singleton", "Composite", "Abstract Factory"} {
		if !names[want] {
			t.Errorf("GoF catalogue missing %s", want)
		}
	}
	// Observer's intent contains the canonical phrase used by E2
	// metadata queries.
	var observerIntent string
	for _, o := range c.Objects {
		if o.Doc.ChildText("name") == "Observer" {
			observerIntent = o.Doc.ChildText("intent")
		}
	}
	if !strings.Contains(observerIntent, "one-to-many dependency") {
		t.Errorf("Observer intent = %q", observerIntent)
	}
}

func TestPatternVariantsSearchable(t *testing.T) {
	c := DesignPatterns(100, 3)
	// Variants keep the base classification enum values.
	s := xsd.MustParseString(c.SchemaSrc)
	class, _ := s.FieldByPath("classification")
	valid := map[string]bool{}
	for _, e := range class.Enum {
		valid[e] = true
	}
	for i, o := range c.Objects {
		if !valid[o.Doc.ChildText("classification")] {
			t.Errorf("object %d classification %q not in enum", i, o.Doc.ChildText("classification"))
		}
	}
}

func TestSongFilenamesLoseMetadata(t *testing.T) {
	// The premise of E2: filenames carry artist+title but not genre,
	// album or year.
	c := Songs(50, 5)
	for _, o := range c.Objects {
		genre := o.Doc.ChildText("genre")
		if strings.Contains(strings.ToLower(o.Filename), genre) {
			t.Errorf("filename %q leaks genre %q", o.Filename, genre)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("bogus", 1, 1); err == nil {
		t.Error("unknown corpus accepted")
	}
}

func TestMoleculeHomologueMassMonotone(t *testing.T) {
	c := Molecules(30, 1)
	// Homologues of the same base grow in molar mass.
	baseMass := map[string]float64{}
	for i, o := range c.Objects {
		title := o.Doc.ChildText("title")
		mass := o.Doc.ChildText("molarMass")
		if i < len(moleculeCatalog) {
			baseMass[title] = parseMass(t, mass)
			continue
		}
		base := strings.SplitN(title, " homologue", 2)[0]
		if bm, ok := baseMass[base]; ok {
			if parseMass(t, mass) <= bm {
				t.Errorf("homologue %q mass %s not above base %v", title, mass, bm)
			}
		}
	}
}

func parseMass(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad mass %q", s)
	}
	return f
}
