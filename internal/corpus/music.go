package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// SongSchemaSrc is the MP3 community schema: the paper's canonical
// example ("an MP3-sharing community shares MP3 objects", §I) with
// the genre/artist attributes its intro proposes for sub-communities.
const SongSchemaSrc = `<?xml version="1.0"?>
<schema xmlns="http://www.w3.org/2001/XMLSchema" xmlns:up2p="http://up2p.carleton.ca/ns/community">
 <element name="song">
  <complexType>
   <sequence>
    <element name="title" type="xsd:string" up2p:searchable="true"/>
    <element name="artist" type="xsd:string" up2p:searchable="true"/>
    <element name="album" type="xsd:string" minOccurs="0" up2p:searchable="true"/>
    <element name="genre" type="genreType" up2p:searchable="true"/>
    <element name="year" type="xsd:integer" minOccurs="0" up2p:searchable="true"/>
    <element name="bitrate" type="xsd:integer" minOccurs="0"/>
    <element name="audio" type="xsd:anyURI" minOccurs="0" up2p:attachment="true"/>
   </sequence>
  </complexType>
 </element>
 <simpleType name="genreType">
  <restriction base="string">
   <enumeration value="jazz"/>
   <enumeration value="rock"/>
   <enumeration value="classical"/>
   <enumeration value="electronic"/>
   <enumeration value="folk"/>
  </restriction>
 </simpleType>
</schema>`

var (
	artists    = []string{"Miles Davis", "John Coltrane", "Bill Evans", "Thelonious Monk", "Charles Mingus", "Art Blakey", "Sonny Rollins", "Herbie Hancock", "Led Zeppelin", "Pink Floyd", "King Crimson", "Brian Eno", "Aphex Twin", "Boards of Canada", "Nick Drake", "Joni Mitchell", "Glenn Gould", "Arvo Part"}
	adjectives = []string{"Blue", "Giant", "Quiet", "Electric", "Silent", "Golden", "Broken", "Distant", "Hidden", "Burning"}
	nouns      = []string{"Steps", "Garden", "Mirror", "River", "Signal", "Window", "Harbor", "Machine", "Forest", "Circuit"}
	genres     = []string{"jazz", "rock", "classical", "electronic", "folk"}
)

// Songs generates n song objects with artist/genre skew: a few artists
// dominate (Zipf-ish), matching real library distributions so
// sub-community experiments (MP3 trading focused on one artist, §I)
// have something to focus on.
func Songs(n int, seed int64) Corpus {
	r := rand.New(rand.NewSource(seed))
	objects := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		// Zipf-ish skew: earlier artists more likely.
		ai := int(float64(len(artists)) * r.Float64() * r.Float64())
		artist := artists[ai]
		title := fmt.Sprintf("%s %s", pick(r, adjectives), pick(r, nouns))
		if i%7 == 0 {
			title = fmt.Sprintf("%s No. %d", title, r.Intn(12)+1)
		}
		album := fmt.Sprintf("The %s %s", pick(r, adjectives), pick(r, nouns))
		genre := genres[ai%len(genres)]
		year := 1950 + r.Intn(52)

		doc := el("song", "")
		doc.AppendChild(el("title", title))
		doc.AppendChild(el("artist", artist))
		doc.AppendChild(el("album", album))
		doc.AppendChild(el("genre", genre))
		doc.AppendChild(el("year", fmt.Sprintf("%d", year)))
		doc.AppendChild(el("bitrate", pick(r, []string{"128", "192", "256", "320"})))

		// Classic file-sharing filename: artist - title, lossy about
		// album/genre/year.
		filename := strings.ToLower(strings.ReplaceAll(artist+" - "+title, " ", "_")) + ".mp3"
		objects = append(objects, Object{Doc: doc, Filename: filename})
	}
	return Corpus{Name: "mp3", SchemaSrc: SongSchemaSrc, Objects: objects}
}
