package corpus

import (
	"fmt"
	"math/rand"
)

// MoleculeSchemaSrc is the CML-inspired molecule community schema
// (the paper cites Chemical Markup Language as an existing base of
// XML descriptions chemists could share, §I/§III).
const MoleculeSchemaSrc = `<?xml version="1.0"?>
<schema xmlns="http://www.w3.org/2001/XMLSchema" xmlns:up2p="http://up2p.carleton.ca/ns/community">
 <element name="molecule">
  <complexType>
   <sequence>
    <element name="title" type="xsd:string" up2p:searchable="true"/>
    <element name="formula" type="xsd:string" up2p:searchable="true"/>
    <element name="molarMass" type="xsd:decimal" up2p:searchable="true"/>
    <element name="casNumber" type="xsd:string" minOccurs="0" up2p:searchable="true"/>
    <element name="category" type="xsd:string" minOccurs="0" up2p:searchable="true"/>
    <element name="atoms">
     <complexType>
      <sequence>
       <element name="atom" minOccurs="0" maxOccurs="unbounded">
        <complexType>
         <sequence>
          <element name="elementType" type="xsd:string"/>
          <element name="count" type="xsd:integer"/>
         </sequence>
        </complexType>
       </element>
      </sequence>
     </complexType>
    </element>
   </sequence>
  </complexType>
 </element>
</schema>`

// baseMolecule is a real compound used to seed the generator.
type baseMolecule struct {
	title    string
	formula  string
	mass     float64
	cas      string
	category string
	atoms    map[string]int
}

var moleculeCatalog = []baseMolecule{
	{"Water", "H2O", 18.015, "7732-18-5", "inorganic", map[string]int{"H": 2, "O": 1}},
	{"Methane", "CH4", 16.043, "74-82-8", "alkane", map[string]int{"C": 1, "H": 4}},
	{"Ethanol", "C2H6O", 46.069, "64-17-5", "alcohol", map[string]int{"C": 2, "H": 6, "O": 1}},
	{"Benzene", "C6H6", 78.114, "71-43-2", "aromatic", map[string]int{"C": 6, "H": 6}},
	{"Glucose", "C6H12O6", 180.156, "50-99-7", "carbohydrate", map[string]int{"C": 6, "H": 12, "O": 6}},
	{"Caffeine", "C8H10N4O2", 194.19, "58-08-2", "alkaloid", map[string]int{"C": 8, "H": 10, "N": 4, "O": 2}},
	{"Aspirin", "C9H8O4", 180.158, "50-78-2", "pharmaceutical", map[string]int{"C": 9, "H": 8, "O": 4}},
	{"Ammonia", "NH3", 17.031, "7664-41-7", "inorganic", map[string]int{"N": 1, "H": 3}},
	{"Acetone", "C3H6O", 58.08, "67-64-1", "ketone", map[string]int{"C": 3, "H": 6, "O": 1}},
	{"Toluene", "C7H8", 92.141, "108-88-3", "aromatic", map[string]int{"C": 7, "H": 8}},
}

// Molecules generates n molecule objects: the real catalogue first,
// then synthetic homologues (chain-extended variants) with coherent
// formula/mass/atom counts.
func Molecules(n int, seed int64) Corpus {
	r := rand.New(rand.NewSource(seed))
	objects := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		base := moleculeCatalog[i%len(moleculeCatalog)]
		m := base
		ext := i / len(moleculeCatalog)
		atoms := make(map[string]int, len(base.atoms))
		for k, v := range base.atoms {
			atoms[k] = v
		}
		if ext > 0 {
			// Homologue: add CH2 groups.
			atoms["C"] += ext
			atoms["H"] += 2 * ext
			m.title = fmt.Sprintf("%s homologue +%dCH2", base.title, ext)
			m.formula = fmt.Sprintf("C%dH%d(base %s)", atoms["C"], atoms["H"], base.formula)
			m.mass = base.mass + float64(ext)*14.027
			m.cas = fmt.Sprintf("%s-x%d", base.cas, ext)
		}
		doc := el("molecule", "")
		doc.AppendChild(el("title", m.title))
		doc.AppendChild(el("formula", m.formula))
		doc.AppendChild(el("molarMass", fmt.Sprintf("%.3f", m.mass)))
		doc.AppendChild(el("casNumber", m.cas))
		doc.AppendChild(el("category", m.category))
		atomsEl := el("atoms", "")
		for _, sym := range []string{"C", "H", "N", "O"} {
			if c, ok := atoms[sym]; ok {
				a := el("atom", "")
				a.AppendChild(el("elementType", sym))
				a.AppendChild(el("count", fmt.Sprintf("%d", c)))
				atomsEl.AppendChild(a)
			}
		}
		doc.AppendChild(atomsEl)
		_ = r
		objects = append(objects, Object{
			Doc:      doc,
			Filename: fmt.Sprintf("mol_%04d.cml", i),
		})
	}
	return Corpus{Name: "cml", SchemaSrc: MoleculeSchemaSrc, Objects: objects}
}
