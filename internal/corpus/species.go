package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// SpeciesSchemaSrc is the biodiversity community schema (the paper
// cites electronic field guides as a motivating existing base of
// species descriptions, §I/§III).
const SpeciesSchemaSrc = `<?xml version="1.0"?>
<schema xmlns="http://www.w3.org/2001/XMLSchema" xmlns:up2p="http://up2p.carleton.ca/ns/community">
 <element name="species">
  <complexType>
   <sequence>
    <element name="scientificName" type="xsd:string" up2p:searchable="true"/>
    <element name="commonName" type="xsd:string" up2p:searchable="true"/>
    <element name="kingdom" type="xsd:string" up2p:searchable="true"/>
    <element name="family" type="xsd:string" up2p:searchable="true"/>
    <element name="habitat" type="xsd:string" minOccurs="0" maxOccurs="unbounded" up2p:searchable="true"/>
    <element name="conservationStatus" type="statusType" up2p:searchable="true"/>
    <element name="description" type="xsd:string" minOccurs="0"/>
   </sequence>
  </complexType>
 </element>
 <simpleType name="statusType">
  <restriction base="string">
   <enumeration value="least-concern"/>
   <enumeration value="near-threatened"/>
   <enumeration value="vulnerable"/>
   <enumeration value="endangered"/>
   <enumeration value="critically-endangered"/>
  </restriction>
 </simpleType>
</schema>`

type baseSpecies struct {
	scientific string
	common     string
	kingdom    string
	family     string
	habitats   []string
	status     string
}

var speciesCatalog = []baseSpecies{
	{"Panthera tigris", "Tiger", "Animalia", "Felidae", []string{"tropical forest", "grassland"}, "endangered"},
	{"Ursus arctos", "Brown Bear", "Animalia", "Ursidae", []string{"boreal forest", "tundra"}, "least-concern"},
	{"Gorilla beringei", "Mountain Gorilla", "Animalia", "Hominidae", []string{"montane forest"}, "critically-endangered"},
	{"Haliaeetus leucocephalus", "Bald Eagle", "Animalia", "Accipitridae", []string{"wetland", "coast"}, "least-concern"},
	{"Dermochelys coriacea", "Leatherback Sea Turtle", "Animalia", "Dermochelyidae", []string{"open ocean", "beach"}, "vulnerable"},
	{"Sequoia sempervirens", "Coast Redwood", "Plantae", "Cupressaceae", []string{"temperate rainforest"}, "endangered"},
	{"Quercus robur", "English Oak", "Plantae", "Fagaceae", []string{"deciduous forest"}, "least-concern"},
	{"Amanita muscaria", "Fly Agaric", "Fungi", "Amanitaceae", []string{"boreal forest"}, "least-concern"},
	{"Monodon monoceros", "Narwhal", "Animalia", "Monodontidae", []string{"arctic ocean"}, "near-threatened"},
	{"Strigops habroptilus", "Kakapo", "Animalia", "Strigopidae", []string{"island forest"}, "critically-endangered"},
}

// Species generates n species descriptions: real entries first, then
// synthetic congeners (same genus, invented epithets).
func Species(n int, seed int64) Corpus {
	r := rand.New(rand.NewSource(seed))
	epithets := []string{"borealis", "australis", "minor", "major", "occidentalis", "orientalis", "montanus", "sylvestris"}
	objects := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		base := speciesCatalog[i%len(speciesCatalog)]
		sp := base
		variant := i / len(speciesCatalog)
		if variant > 0 {
			genus := strings.Fields(base.scientific)[0]
			epithet := epithets[(variant-1)%len(epithets)]
			sp.scientific = fmt.Sprintf("%s %s", genus, epithet)
			sp.common = fmt.Sprintf("%s (%s form)", base.common, epithet)
		}
		doc := el("species", "")
		doc.AppendChild(el("scientificName", sp.scientific))
		doc.AppendChild(el("commonName", sp.common))
		doc.AppendChild(el("kingdom", sp.kingdom))
		doc.AppendChild(el("family", sp.family))
		for _, h := range pickSome(r, sp.habitats, 1+r.Intn(len(sp.habitats))) {
			doc.AppendChild(el("habitat", h))
		}
		doc.AppendChild(el("conservationStatus", sp.status))
		doc.AppendChild(el("description", fmt.Sprintf("%s is a member of family %s recorded in %s.", sp.scientific, sp.family, sp.habitats[0])))
		objects = append(objects, Object{
			Doc:      doc,
			Filename: strings.ToLower(strings.ReplaceAll(sp.scientific, " ", "_")) + ".xml",
		})
	}
	return Corpus{Name: "species", SchemaSrc: SpeciesSchemaSrc, Objects: objects}
}
