package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
)

// MemNetwork is a deterministic in-memory network hub. Delivery is
// synchronous: Send invokes the receiver's handler on the caller's
// goroutine, so when a flood's initial Send returns, the entire
// cascade has completed — which makes simulation experiments exact
// rather than timing-dependent.
//
// Fault injection: per-message drop probability (seeded PRNG) and
// pairwise partitions. A latency model charges virtual time per hop
// without sleeping; totals are available in Stats.
type MemNetwork struct {
	mu        sync.RWMutex
	endpoints map[PeerID]*memEndpoint
	rng       *rand.Rand
	rngMu     sync.Mutex
	dropRate  float64
	dropModel func(from, to PeerID) float64
	latency   func(from, to PeerID) time.Duration
	parts     map[[2]PeerID]bool

	// Delivery accounting lives in the metrics registry: atomic handles
	// resolved once at construction, so the record path takes no lock
	// and allocates nothing. statsMu below only guards the path-latency
	// high-water mark and the trace hash, which need ordered folding.
	reg        *metrics.Registry
	mDelivered *metrics.Counter
	mBytes     *metrics.Counter
	mDropped   *metrics.Counter
	mSimLat    *metrics.Counter
	mPerType   *metrics.CounterVec
	mHopLat    *metrics.Histogram

	statsMu sync.Mutex
	// maxVT is the high-water cumulative virtual latency reached by any
	// delivery since the last ResetPath: on the synchronous network a
	// cascade's maxVT is the virtual instant its last message lands,
	// i.e. the query's virtual completion latency.
	maxVT time.Duration
	// peerLoad, when enabled, counts delivered messages per receiving
	// peer — the per-node load distribution hotspot experiments read
	// skew from. Guarded by statsMu like the other ordered folds.
	peerLoad map[PeerID]int64
	// trace, when enabled, folds every delivery attempt (including
	// drops) into a running FNV-1a hash: two runs of one deterministic
	// scenario produce identical hashes, and any divergence in message
	// order, content, or loss decisions changes the hash.
	traceOn  bool
	trace    uint64
	traceLen uint64
}

// MemOption configures a MemNetwork.
type MemOption func(*MemNetwork)

// WithSeed sets the PRNG seed for drop decisions (default 1).
func WithSeed(seed int64) MemOption {
	return func(n *MemNetwork) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithDropRate sets the probability in [0,1) that any message is lost.
func WithDropRate(p float64) MemOption {
	return func(n *MemNetwork) { n.dropRate = p }
}

// WithLatencyModel sets the per-hop virtual latency function.
func WithLatencyModel(f func(from, to PeerID) time.Duration) MemOption {
	return func(n *MemNetwork) { n.latency = f }
}

// WithFixedLatency charges a constant virtual latency per hop.
func WithFixedLatency(d time.Duration) MemOption {
	return WithLatencyModel(func(PeerID, PeerID) time.Duration { return d })
}

// WithDropModel sets a per-link drop probability, overriding the
// global drop rate for links where it returns a positive value (e.g.
// dsim.LinkLoss). Loss decisions still come from the seeded PRNG so
// they stay reproducible given a deterministic delivery order.
func WithDropModel(f func(from, to PeerID) float64) MemOption {
	return func(n *MemNetwork) { n.dropModel = f }
}

// WithTrace enables message-trace hashing from the start (see
// TraceHash).
func WithTrace() MemOption {
	return func(n *MemNetwork) { n.traceOn = true }
}

// WithPeerLoad enables per-receiver delivery counting (see PeerLoad).
// Off by default: a map update per delivery is cheap but not free.
func WithPeerLoad() MemOption {
	return func(n *MemNetwork) { n.peerLoad = make(map[PeerID]int64) }
}

// WithMetrics records delivery accounting into reg instead of a
// private registry — pass a shared registry to aggregate a cluster, or
// metrics.Discard() to turn accounting off entirely.
func WithMetrics(reg *metrics.Registry) MemOption {
	return func(n *MemNetwork) { n.reg = reg }
}

// NewMemNetwork creates an empty hub.
func NewMemNetwork(opts ...MemOption) *MemNetwork {
	n := &MemNetwork{
		endpoints: make(map[PeerID]*memEndpoint),
		rng:       rand.New(rand.NewSource(1)),
		parts:     make(map[[2]PeerID]bool),
	}
	for _, o := range opts {
		o(n)
	}
	if n.reg == nil {
		n.reg = metrics.NewRegistry()
	}
	n.mDelivered = n.reg.Counter("transport.msgs_delivered")
	n.mBytes = n.reg.Counter("transport.bytes_delivered")
	n.mDropped = n.reg.Counter("transport.msgs_dropped")
	n.mSimLat = n.reg.Counter("transport.sim_latency_ns")
	n.mPerType = n.reg.CounterVec("transport.msgs_by_type", "type")
	n.mHopLat = n.reg.Histogram("transport.hop_latency_ns")
	return n
}

// Metrics returns the registry this network records into.
func (n *MemNetwork) Metrics() *metrics.Registry { return n.reg }

// Endpoint attaches a new peer. Attaching an existing live ID fails.
func (n *MemNetwork) Endpoint(id PeerID) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.endpoints[id]; exists {
		return nil, fmt.Errorf("transport: peer %q already attached", id)
	}
	ep := &memEndpoint{net: n, id: id}
	n.endpoints[id] = ep
	return ep, nil
}

// Partition blocks traffic between a and b (both directions).
func (n *MemNetwork) Partition(a, b PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[pairKey(a, b)] = true
}

// Heal removes a partition between a and b.
func (n *MemNetwork) Heal(a, b PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.parts, pairKey(a, b))
}

// MaxPathLatency returns the largest cumulative virtual latency any
// delivery chain has reached since the last ResetPath. With a latency
// model installed, ResetPath before a synchronous operation and
// MaxPathLatency after it yield that operation's virtual completion
// time — the "how long would this search have taken" number the
// scenario experiments report percentiles of, measured without any
// real waiting.
func (n *MemNetwork) MaxPathLatency() time.Duration {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.maxVT
}

// ResetPath zeroes the path-latency high-water mark.
func (n *MemNetwork) ResetPath() {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	n.maxVT = 0
}

// PeerLoad returns a copy of the per-receiver delivered-message
// counts since construction, or nil unless WithPeerLoad was set.
// Snapshot one before and one after a window and subtract to get the
// window's load distribution.
func (n *MemNetwork) PeerLoad() map[PeerID]int64 {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	if n.peerLoad == nil {
		return nil
	}
	out := make(map[PeerID]int64, len(n.peerLoad))
	for id, c := range n.peerLoad {
		out[id] = c
	}
	return out
}

// TraceHash returns the running hash over every delivery attempt since
// construction (or the count of hashed events via TraceLen). Zero
// until WithTrace is set.
func (n *MemNetwork) TraceHash() uint64 {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.trace
}

// TraceLen returns how many delivery attempts the trace hash covers.
func (n *MemNetwork) TraceLen() uint64 {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.traceLen
}

// Streaming FNV-1a: the same constants and byte order hash/fnv uses,
// inlined so the per-delivery trace fold allocates nothing (fnv.New64a
// heap-allocates its state every call). Hash values are bit-identical
// to the previous implementation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvFoldByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvFoldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvFoldBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// foldTraceLocked mixes one delivery attempt into the trace hash by
// streaming the frame through FNV-1a. Caller holds statsMu.
func (n *MemNetwork) foldTraceLocked(msg *Message, dropped bool) {
	h := uint64(fnvOffset64)
	if n.trace != 0 {
		for i := 0; i < 8; i++ {
			h = fnvFoldByte(h, byte(n.trace>>(8*i)))
		}
	}
	h = fnvFoldString(h, string(msg.From))
	h = fnvFoldByte(h, 0)
	h = fnvFoldString(h, string(msg.To))
	h = fnvFoldByte(h, 0)
	h = fnvFoldString(h, msg.Type)
	h = fnvFoldByte(h, 0)
	if dropped {
		h = fnvFoldByte(h, 'x')
	}
	h = fnvFoldBytes(h, msg.Payload)
	n.trace = h
	n.traceLen++
}

// Peers returns the IDs of currently attached peers.
func (n *MemNetwork) Peers() []PeerID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]PeerID, 0, len(n.endpoints))
	for id := range n.endpoints {
		out = append(out, id)
	}
	return out
}

func pairKey(a, b PeerID) [2]PeerID {
	if a > b {
		a, b = b, a
	}
	return [2]PeerID{a, b}
}

// deliver routes one message. senderVT is the cumulative virtual
// latency of the delivery chain that produced this send (zero for
// top-level sends): the message lands at senderVT plus its own link
// latency, and the receiving endpoint carries that arrival time while
// its handler runs so everything the handler sends in turn inherits
// it. That threads exact per-chain virtual time through a synchronous
// cascade with no real clocks involved.
//
// The message travels by pointer — the network never mutates it, so
// the only copy on the whole path is the one handed to the receiving
// handler, and a delivery allocates nothing (pinned by test).
func (n *MemNetwork) deliver(msg *Message, senderVT time.Duration) error {
	n.mu.RLock()
	dst, ok := n.endpoints[msg.To]
	partitioned := n.parts[pairKey(msg.From, msg.To)]
	latFn := n.latency
	drop := n.dropRate
	dropFn := n.dropModel
	n.mu.RUnlock()
	if !ok {
		n.reg.CountError(ErrUnknownPeer)
		return fmt.Errorf("%w: %s", ErrUnknownPeer, msg.To)
	}
	if partitioned {
		n.reg.CountError(ErrPartitioned)
		return fmt.Errorf("%w: %s <-> %s", ErrPartitioned, msg.From, msg.To)
	}
	if dropFn != nil {
		if p := dropFn(msg.From, msg.To); p > 0 {
			drop = p
		}
	}
	if drop > 0 {
		n.rngMu.Lock()
		lost := n.rng.Float64() < drop
		n.rngMu.Unlock()
		if lost {
			n.mDropped.Inc()
			n.reg.CountError(ErrDropped)
			if n.traceOn {
				n.statsMu.Lock()
				n.foldTraceLocked(msg, true)
				n.statsMu.Unlock()
			}
			return nil // silent loss, like a real datagram network
		}
	}
	var lat time.Duration
	if latFn != nil {
		lat = latFn(msg.From, msg.To)
	}
	arrival := senderVT + lat
	n.mDelivered.Inc()
	n.mBytes.Add(int64(len(msg.Payload)))
	n.mPerType.With(msg.Type).Inc()
	n.mSimLat.Add(int64(lat))
	n.mHopLat.Observe(int64(lat))
	n.statsMu.Lock()
	if arrival > n.maxVT {
		n.maxVT = arrival
	}
	if n.peerLoad != nil {
		n.peerLoad[msg.To]++
	}
	if n.traceOn {
		n.foldTraceLocked(msg, false)
	}
	n.statsMu.Unlock()

	dst.mu.Lock()
	h := dst.handler
	closed := dst.closed
	prevVT := dst.vt
	if !closed {
		dst.vt = arrival
	}
	dst.mu.Unlock()
	if closed {
		n.reg.CountError(ErrClosed)
		return fmt.Errorf("%w: %s", ErrClosed, msg.To)
	}
	if h != nil {
		h(*msg)
	}
	dst.mu.Lock()
	dst.vt = prevVT
	dst.mu.Unlock()
	return nil
}

type memEndpoint struct {
	net     *MemNetwork
	id      PeerID
	mu      sync.RWMutex
	handler Handler
	closed  bool
	// vt is the arrival virtual time of the message currently being
	// handled, inherited by sends the handler makes. Exact under a
	// single experiment driver (the cascade is one call stack);
	// concurrent drivers interleave values without data races, and
	// path accounting simply loses meaning there.
	vt time.Duration
}

var _ Endpoint = (*memEndpoint)(nil)

func (e *memEndpoint) ID() PeerID { return e.id }

func (e *memEndpoint) Send(msg Message) error {
	e.mu.RLock()
	closed := e.closed
	vt := e.vt
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	msg.From = e.id
	return e.net.deliver(&msg, vt)
}

func (e *memEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

func (e *memEndpoint) Synchronous() bool { return true }

// ChainOffset returns the arrival virtual time of the message this
// endpoint is currently handling (zero outside a handler) — see
// transport.ChainOffset.
func (e *memEndpoint) ChainOffset() time.Duration {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.vt
}

func (e *memEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.net.mu.Lock()
	delete(e.net.endpoints, e.id)
	e.net.mu.Unlock()
	return nil
}
