package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// MemNetwork is a deterministic in-memory network hub. Delivery is
// synchronous: Send invokes the receiver's handler on the caller's
// goroutine, so when a flood's initial Send returns, the entire
// cascade has completed — which makes simulation experiments exact
// rather than timing-dependent.
//
// Fault injection: per-message drop probability (seeded PRNG) and
// pairwise partitions. A latency model charges virtual time per hop
// without sleeping; totals are available in Stats.
type MemNetwork struct {
	mu        sync.RWMutex
	endpoints map[PeerID]*memEndpoint
	rng       *rand.Rand
	rngMu     sync.Mutex
	dropRate  float64
	latency   func(from, to PeerID) time.Duration
	parts     map[[2]PeerID]bool

	stats   Stats
	statsMu sync.Mutex
}

// MemOption configures a MemNetwork.
type MemOption func(*MemNetwork)

// WithSeed sets the PRNG seed for drop decisions (default 1).
func WithSeed(seed int64) MemOption {
	return func(n *MemNetwork) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithDropRate sets the probability in [0,1) that any message is lost.
func WithDropRate(p float64) MemOption {
	return func(n *MemNetwork) { n.dropRate = p }
}

// WithLatencyModel sets the per-hop virtual latency function.
func WithLatencyModel(f func(from, to PeerID) time.Duration) MemOption {
	return func(n *MemNetwork) { n.latency = f }
}

// WithFixedLatency charges a constant virtual latency per hop.
func WithFixedLatency(d time.Duration) MemOption {
	return WithLatencyModel(func(PeerID, PeerID) time.Duration { return d })
}

// NewMemNetwork creates an empty hub.
func NewMemNetwork(opts ...MemOption) *MemNetwork {
	n := &MemNetwork{
		endpoints: make(map[PeerID]*memEndpoint),
		rng:       rand.New(rand.NewSource(1)),
		parts:     make(map[[2]PeerID]bool),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Endpoint attaches a new peer. Attaching an existing live ID fails.
func (n *MemNetwork) Endpoint(id PeerID) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.endpoints[id]; exists {
		return nil, fmt.Errorf("transport: peer %q already attached", id)
	}
	ep := &memEndpoint{net: n, id: id}
	n.endpoints[id] = ep
	return ep, nil
}

// Partition blocks traffic between a and b (both directions).
func (n *MemNetwork) Partition(a, b PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[pairKey(a, b)] = true
}

// Heal removes a partition between a and b.
func (n *MemNetwork) Heal(a, b PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.parts, pairKey(a, b))
}

// Stats returns a copy of the accounting counters.
func (n *MemNetwork) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	cp := n.stats
	cp.PerType = make(map[string]int64, len(n.stats.PerType))
	for k, v := range n.stats.PerType {
		cp.PerType[k] = v
	}
	return cp
}

// ResetStats zeroes the counters (between experiment phases).
func (n *MemNetwork) ResetStats() {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	n.stats = Stats{}
}

// Peers returns the IDs of currently attached peers.
func (n *MemNetwork) Peers() []PeerID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]PeerID, 0, len(n.endpoints))
	for id := range n.endpoints {
		out = append(out, id)
	}
	return out
}

func pairKey(a, b PeerID) [2]PeerID {
	if a > b {
		a, b = b, a
	}
	return [2]PeerID{a, b}
}

func (n *MemNetwork) deliver(msg Message) error {
	n.mu.RLock()
	dst, ok := n.endpoints[msg.To]
	partitioned := n.parts[pairKey(msg.From, msg.To)]
	latFn := n.latency
	drop := n.dropRate
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, msg.To)
	}
	if partitioned {
		return fmt.Errorf("%w: %s <-> %s", ErrPartitioned, msg.From, msg.To)
	}
	if drop > 0 {
		n.rngMu.Lock()
		lost := n.rng.Float64() < drop
		n.rngMu.Unlock()
		if lost {
			n.statsMu.Lock()
			n.stats.Dropped++
			n.statsMu.Unlock()
			return nil // silent loss, like a real datagram network
		}
	}
	var lat time.Duration
	if latFn != nil {
		lat = latFn(msg.From, msg.To)
	}
	n.statsMu.Lock()
	n.stats.Messages++
	n.stats.Bytes += int64(len(msg.Payload))
	if n.stats.PerType == nil {
		n.stats.PerType = make(map[string]int64)
	}
	n.stats.PerType[msg.Type]++
	n.stats.SimulatedLatency += int64(lat)
	n.statsMu.Unlock()

	dst.mu.RLock()
	h := dst.handler
	closed := dst.closed
	dst.mu.RUnlock()
	if closed {
		return fmt.Errorf("%w: %s", ErrClosed, msg.To)
	}
	if h != nil {
		h(msg)
	}
	return nil
}

type memEndpoint struct {
	net     *MemNetwork
	id      PeerID
	mu      sync.RWMutex
	handler Handler
	closed  bool
}

var _ Endpoint = (*memEndpoint)(nil)

func (e *memEndpoint) ID() PeerID { return e.id }

func (e *memEndpoint) Send(msg Message) error {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	msg.From = e.id
	return e.net.deliver(msg)
}

func (e *memEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

func (e *memEndpoint) Synchronous() bool { return true }

func (e *memEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.net.mu.Lock()
	delete(e.net.endpoints, e.id)
	e.net.mu.Unlock()
	return nil
}
