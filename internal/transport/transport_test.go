package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMemSendReceive(t *testing.T) {
	net := NewMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	b.SetHandler(func(m Message) { got = m })
	if err := a.Send(Message{To: "b", Type: "ping", Payload: []byte("hi")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got.From != "a" || got.Type != "ping" || string(got.Payload) != "hi" {
		t.Errorf("got = %+v", got)
	}
	if !a.Synchronous() {
		t.Error("mem endpoint not synchronous")
	}
}

func TestMemSynchronousCascade(t *testing.T) {
	// a->b triggers b->c inside b's handler; when a's Send returns, c
	// must already have handled the message.
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	c, _ := net.Endpoint("c")
	var reached bool
	c.SetHandler(func(Message) { reached = true })
	b.SetHandler(func(m Message) {
		_ = b.Send(Message{To: "c", Type: "fwd", Payload: m.Payload})
	})
	if err := a.Send(Message{To: "b", Type: "start"}); err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Error("cascade did not complete synchronously")
	}
}

func TestMemUnknownPeerAndClose(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	err := a.Send(Message{To: "ghost", Type: "x"})
	if !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v", err)
	}
	b, _ := net.Endpoint("b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Message{To: "b", Type: "x"}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("send to closed = %v", err)
	}
	if err := b.Send(Message{To: "a", Type: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("send from closed = %v", err)
	}
	// Re-attach after close is allowed.
	if _, err := net.Endpoint("b"); err != nil {
		t.Errorf("re-attach: %v", err)
	}
}

func TestMemDuplicateAttach(t *testing.T) {
	net := NewMemNetwork()
	if _, err := net.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint("a"); err == nil {
		t.Error("duplicate attach succeeded")
	}
}

func TestMemStats(t *testing.T) {
	net := NewMemNetwork(WithFixedLatency(5 * time.Millisecond))
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	b.SetHandler(func(Message) {})
	for i := 0; i < 3; i++ {
		if err := a.Send(Message{To: "b", Type: "query", Payload: []byte("1234")}); err != nil {
			t.Fatal(err)
		}
	}
	snap := net.Metrics().Snapshot()
	if m, by := snap.Counter("transport.msgs_delivered"), snap.Counter("transport.bytes_delivered"); m != 3 || by != 12 {
		t.Errorf("msgs=%d bytes=%d, want 3/12", m, by)
	}
	if q := snap.Label("transport.msgs_by_type", "query"); q != 3 {
		t.Errorf("per-type query = %d", q)
	}
	if lat := snap.Counter("transport.sim_latency_ns"); lat != int64(15*time.Millisecond) {
		t.Errorf("latency = %d", lat)
	}
	// Phase accounting is snapshot deltas, not resets.
	if d := net.Metrics().Snapshot().Delta(snap).Counter("transport.msgs_delivered"); d != 0 {
		t.Errorf("quiet-period delta = %d", d)
	}
}

func TestMemDropRateDeterministic(t *testing.T) {
	run := func() int64 {
		net := NewMemNetwork(WithSeed(42), WithDropRate(0.5))
		a, _ := net.Endpoint("a")
		b, _ := net.Endpoint("b")
		var received int64
		b.SetHandler(func(Message) { atomic.AddInt64(&received, 1) })
		for i := 0; i < 100; i++ {
			_ = a.Send(Message{To: "b", Type: "x"})
		}
		return received
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Errorf("non-deterministic drops: %d vs %d", r1, r2)
	}
	if r1 == 0 || r1 == 100 {
		t.Errorf("drop rate not applied: received %d/100", r1)
	}
}

func TestMemPartition(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	b.SetHandler(func(Message) {})
	net.Partition("a", "b")
	if err := a.Send(Message{To: "b", Type: "x"}); !errors.Is(err, ErrPartitioned) {
		t.Errorf("partitioned send = %v", err)
	}
	net.Heal("a", "b")
	if err := a.Send(Message{To: "b", Type: "x"}); err != nil {
		t.Errorf("healed send = %v", err)
	}
}

func TestMemPeers(t *testing.T) {
	net := NewMemNetwork()
	net.Endpoint("a")
	net.Endpoint("b")
	if got := len(net.Peers()); got != 2 {
		t.Errorf("peers = %d", got)
	}
}

func TestMemConcurrentSends(t *testing.T) {
	net := NewMemNetwork()
	hub, _ := net.Endpoint("hub")
	var count int64
	hub.SetHandler(func(Message) { atomic.AddInt64(&count, 1) })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		ep, err := net.Endpoint(PeerID(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(e Endpoint) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = e.Send(Message{To: "hub", Type: "x"})
			}
		}(ep)
	}
	wg.Wait()
	if count != 800 {
		t.Errorf("count = %d", count)
	}
}

func TestTCPSendReceive(t *testing.T) {
	n1, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	got := make(chan Message, 1)
	n2.SetHandler(func(m Message) { got <- m })
	if err := n1.Send(Message{To: n2.ID(), Type: "query", Payload: []byte(`{"q":1}`)}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case m := <-got:
		if m.From != n1.ID() || m.Type != "query" {
			t.Errorf("got = %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for message")
	}
	if n1.Synchronous() {
		t.Error("tcp reports synchronous")
	}
}

func TestTCPBidirectional(t *testing.T) {
	n1, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	pong := make(chan struct{}, 1)
	n2.SetHandler(func(m Message) {
		if m.Type == "ping" {
			_ = n2.Send(Message{To: m.From, Type: "pong"})
		}
	})
	n1.SetHandler(func(m Message) {
		if m.Type == "pong" {
			pong <- struct{}{}
		}
	})
	if err := n1.Send(Message{To: n2.ID(), Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-pong:
	case <-time.After(2 * time.Second):
		t.Fatal("no pong")
	}
}

func TestTCPManyMessages(t *testing.T) {
	n1, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	var count int64
	done := make(chan struct{}, 1)
	const total = 500
	n2.SetHandler(func(Message) {
		if atomic.AddInt64(&count, 1) == total {
			done <- struct{}{}
		}
	})
	for i := 0; i < total; i++ {
		if err := n1.Send(Message{To: n2.ID(), Type: "x", Payload: []byte("payload")}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/%d arrived", atomic.LoadInt64(&count), total)
	}
}

func TestTCPSendToDeadPeer(t *testing.T) {
	n1, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	if err := n1.Send(Message{To: "127.0.0.1:1", Type: "x"}); err == nil {
		t.Error("send to dead address succeeded")
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	n, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := n.Send(Message{To: "127.0.0.1:1", Type: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close = %v", err)
	}
}

// TestMemDeliveryZeroAlloc pins the MemNetwork hot path: with trace
// hashing, per-peer load counting, a latency model, and metrics all
// enabled, a delivered message must not allocate. This is the floor
// the 10k-peer scale ladder stands on — at millions of deliveries per
// run, one allocation per message is GC-bound, zero is CPU-bound.
func TestMemDeliveryZeroAlloc(t *testing.T) {
	n := NewMemNetwork(
		WithTrace(),
		WithPeerLoad(),
		WithFixedLatency(5*time.Millisecond),
	)
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	b.SetHandler(func(Message) {})
	msg := Message{To: "b", Type: "query", Payload: []byte("filter=(k=v)")}
	// Warm: first delivery creates the per-type counter and the
	// peer-load map entry.
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(500, func() {
		if err := a.Send(msg); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Fatalf("delivery allocs/op = %v, want 0", got)
	}
	if n.TraceHash() == 0 || n.TraceLen() == 0 {
		t.Fatal("trace hashing was not active during the pin")
	}
}
