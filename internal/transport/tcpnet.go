package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/metrics"
)

// maxFrame bounds a single wire frame (16 MiB) so a corrupt length
// prefix cannot exhaust memory.
const maxFrame = 16 << 20

// TCPNode is a peer endpoint over real TCP. Frames are a 4-byte
// big-endian length followed by the JSON-encoded Message. Outbound
// connections are cached per destination address; inbound messages are
// dispatched to the handler on per-connection goroutines.
//
// Peer addressing: TCP has no directory, so peers are identified by
// their listen address ("host:port") — PeerID and dial address
// coincide.
type TCPNode struct {
	ln      net.Listener
	id      PeerID
	mu      sync.Mutex
	handler Handler
	conns   map[PeerID]net.Conn
	inbound map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup

	reg       *metrics.Registry
	mSent     *metrics.Counter
	mSentB    *metrics.Counter
	mReceived *metrics.Counter
	mRecvB    *metrics.Counter
}

var _ Endpoint = (*TCPNode)(nil)

// ListenTCP starts a node on addr (use "127.0.0.1:0" for an ephemeral
// port; the assigned address becomes the node's PeerID).
func ListenTCP(addr string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	n := &TCPNode{
		ln:      ln,
		id:      PeerID(ln.Addr().String()),
		conns:   make(map[PeerID]net.Conn),
		inbound: make(map[net.Conn]struct{}),
	}
	n.SetMetrics(metrics.Discard())
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// SetMetrics points the node's traffic accounting at reg. Like the
// protocol nodes' SetClock, call it before traffic starts; metrics are
// discarded until then.
func (n *TCPNode) SetMetrics(reg *metrics.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg = reg
	n.mSent = reg.Counter("transport.tcp_msgs_sent")
	n.mSentB = reg.Counter("transport.tcp_bytes_sent")
	n.mReceived = reg.Counter("transport.tcp_msgs_received")
	n.mRecvB = reg.Counter("transport.tcp_bytes_received")
}

// ID implements Endpoint.
func (n *TCPNode) ID() PeerID { return n.id }

// Synchronous implements Endpoint: TCP delivery is asynchronous.
func (n *TCPNode) Synchronous() bool { return false }

// SetHandler implements Endpoint.
func (n *TCPNode) SetHandler(h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

// Send implements Endpoint. The destination PeerID is its TCP address.
func (n *TCPNode) Send(msg Message) error {
	msg.From = n.id
	conn, err := n.conn(msg.To)
	if err != nil {
		return err
	}
	data, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	if len(data) > maxFrame {
		return fmt.Errorf("transport: frame too large (%d bytes)", len(data))
	}
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(data)))
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if _, err := conn.Write(lenbuf[:]); err != nil {
		n.dropConnLocked(msg.To)
		n.reg.CountError(ErrDropped)
		return fmt.Errorf("transport: write: %w", err)
	}
	if _, err := conn.Write(data); err != nil {
		n.dropConnLocked(msg.To)
		n.reg.CountError(ErrDropped)
		return fmt.Errorf("transport: write: %w", err)
	}
	n.mSent.Inc()
	n.mSentB.Add(int64(len(data)))
	return nil
}

// conn returns a cached or fresh outbound connection.
func (n *TCPNode) conn(to PeerID) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()
	c, err := net.Dial("tcp", string(to))
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", to, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.conns[to]; ok {
		c.Close()
		return existing, nil
	}
	n.conns[to] = c
	return c, nil
}

func (n *TCPNode) dropConnLocked(to PeerID) {
	if c, ok := n.conns[to]; ok {
		c.Close()
		delete(n.conns, to)
	}
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		var lenbuf [4]byte
		if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenbuf[:])
		if size > maxFrame {
			return
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(r, data); err != nil {
			return
		}
		var msg Message
		if err := json.Unmarshal(data, &msg); err != nil {
			continue // skip malformed frame, keep the connection
		}
		n.mu.Lock()
		h := n.handler
		n.mReceived.Inc()
		n.mRecvB.Add(int64(size))
		n.mu.Unlock()
		if h != nil {
			h(msg)
		}
	}
}

// Close implements Endpoint: stops accepting, closes all connections,
// and waits for reader goroutines to exit.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for id, c := range n.conns {
		c.Close()
		delete(n.conns, id)
	}
	for c := range n.inbound {
		c.Close()
	}
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	return err
}
