// Package transport provides message delivery between U-P2P peers.
//
// Two implementations share one interface: an in-memory simulated
// network (deterministic, instrumented with message/byte counters,
// latency model, drop and partition fault injection — the substrate
// for the paper-scale experiments) and a real TCP transport
// (length-prefixed JSON frames) proving the protocol code paths do not
// depend on the simulator.
package transport

import (
	"errors"

	"repro/internal/errs"
)

// PeerID identifies a peer on the network.
type PeerID string

// Message is one protocol datagram. Payload encoding is the p2p
// layer's concern (JSON in this implementation).
type Message struct {
	From    PeerID `json:"from"`
	To      PeerID `json:"to"`
	Type    string `json:"type"`
	Payload []byte `json:"payload"`
}

// Handler consumes inbound messages. Handlers must not block
// indefinitely; they may call Send (transports guarantee this does not
// deadlock).
type Handler func(Message)

// Endpoint is one peer's attachment to a network.
type Endpoint interface {
	// ID returns the peer's identity on the network.
	ID() PeerID
	// Send delivers a message to another peer.
	Send(msg Message) error
	// SetHandler installs the inbound message handler. Must be called
	// before the first message arrives.
	SetHandler(Handler)
	// Synchronous reports whether Send returns only after the message
	// (and everything it transitively triggered) has been handled.
	// True for the in-memory network; false for TCP.
	Synchronous() bool
	// Close detaches the endpoint; subsequent sends to it fail.
	Close() error
}

// Common transport errors. Each carries a structured code
// ("transport.<name>") so the metrics registry's error counter family
// can classify failures; identity semantics (errors.Is against the
// sentinel, including through fmt.Errorf("%w: ...") wrapping) are
// unchanged from the errors.New originals.
var (
	ErrUnknownPeer error = errs.New("transport.unknown_peer", "transport: unknown peer")
	ErrClosed      error = errs.New("transport.closed", "transport: endpoint closed")
	ErrDropped     error = errs.New("transport.dropped", "transport: message dropped")
	ErrPartitioned error = errs.New("transport.partitioned", "transport: peers partitioned")
)

// IsPeerDead reports whether a Send error definitively means the
// destination peer has left the network (its endpoint closed or was
// never attached), as opposed to transient conditions like loss or a
// partition. Overlay-maintenance code uses this to evict a contact on
// first failure instead of waiting out a liveness probe: the DHT's
// routing-table repair treats it as an authoritative death notice.
func IsPeerDead(err error) bool {
	return errors.Is(err, ErrUnknownPeer) || errors.Is(err, ErrClosed)
}
