// Package transport provides message delivery between U-P2P peers.
//
// Two implementations share one interface: an in-memory simulated
// network (deterministic, instrumented with message/byte counters,
// latency model, drop and partition fault injection — the substrate
// for the paper-scale experiments) and a real TCP transport
// (length-prefixed JSON frames) proving the protocol code paths do not
// depend on the simulator.
package transport

import (
	"errors"
	"time"

	"repro/internal/errs"
)

// PeerID identifies a peer on the network.
type PeerID string

// Message is one protocol datagram. Payload encoding is the p2p
// layer's concern (JSON in this implementation).
//
// TraceID/SpanID carry the distributed-tracing context as header
// fields, deliberately outside Payload: the simulator's golden-trace
// hash folds only From/To/Type/Payload, and the TCP framing omits
// zero values, so enabling tracing leaves both the hash and the
// untraced wire bytes bit-identical.
type Message struct {
	From    PeerID `json:"from"`
	To      PeerID `json:"to"`
	Type    string `json:"type"`
	Payload []byte `json:"payload"`
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`
}

// Handler consumes inbound messages. Handlers must not block
// indefinitely; they may call Send (transports guarantee this does not
// deadlock).
type Handler func(Message)

// Endpoint is one peer's attachment to a network.
type Endpoint interface {
	// ID returns the peer's identity on the network.
	ID() PeerID
	// Send delivers a message to another peer.
	Send(msg Message) error
	// SetHandler installs the inbound message handler. Must be called
	// before the first message arrives.
	SetHandler(Handler)
	// Synchronous reports whether Send returns only after the message
	// (and everything it transitively triggered) has been handled.
	// True for the in-memory network; false for TCP.
	Synchronous() bool
	// Close detaches the endpoint; subsequent sends to it fail.
	Close() error
}

// Common transport errors. Each carries a structured code
// ("transport.<name>") so the metrics registry's error counter family
// can classify failures; identity semantics (errors.Is against the
// sentinel, including through fmt.Errorf("%w: ...") wrapping) are
// unchanged from the errors.New originals.
var (
	ErrUnknownPeer error = errs.New("transport.unknown_peer", "transport: unknown peer")
	ErrClosed      error = errs.New("transport.closed", "transport: endpoint closed")
	ErrDropped     error = errs.New("transport.dropped", "transport: message dropped")
	ErrPartitioned error = errs.New("transport.partitioned", "transport: peers partitioned")
)

// ChainOffset returns the cumulative virtual latency of the delivery
// chain currently being handled on ep, when the transport tracks one
// (the in-memory simulated network does; real transports return
// zero). Message handlers use it to timestamp trace spans at their
// true virtual arrival instant: the simulator's clock does not
// advance while a synchronous cascade runs, so without the offset
// every span in a flood would appear to start at the same instant.
func ChainOffset(ep Endpoint) time.Duration {
	if co, ok := ep.(interface{ ChainOffset() time.Duration }); ok {
		return co.ChainOffset()
	}
	return 0
}

// IsPeerDead reports whether a Send error definitively means the
// destination peer has left the network (its endpoint closed or was
// never attached), as opposed to transient conditions like loss or a
// partition. Overlay-maintenance code uses this to evict a contact on
// first failure instead of waiting out a liveness probe: the DHT's
// routing-table repair treats it as an authoritative death notice.
func IsPeerDead(err error) bool {
	return errors.Is(err, ErrUnknownPeer) || errors.Is(err, ErrClosed)
}
