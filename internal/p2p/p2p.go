// Package p2p implements U-P2P's protocol-independent network layer.
//
// The paper deliberately refuses to fix a network architecture: "U-P2P
// does not focus on the underlying network architecture or
// discriminate between centralized or distributed approaches" (§IV.B),
// and its future-work section proposes "a generic interface with
// primitives for create, search and retrieve" (§VI). Network is that
// interface. Three real implementations are provided, matching the
// full protocol enumeration of the community schema (Fig. 3):
//
//   - Centralized: a Napster-style index server; peers register
//     metadata centrally, search costs O(1) messages, retrieval is
//     peer-to-peer.
//   - Gnutella: fully distributed TTL-bounded query flooding with
//     reverse-path query-hit routing and Ping/Pong neighbor
//     discovery; metadata stays on the publishing peer.
//   - FastTrack: super-peer hybrid; leaves register with a super-peer
//     and queries flood only the super-peer overlay.
//
// All run over any transport.Endpoint, so the same protocol code
// serves the in-memory simulator and real TCP.
package p2p

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsim"
	"repro/internal/errs"
	"repro/internal/index"
	"repro/internal/p2p/codec"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Message types on the wire.
const (
	// Centralized protocol.
	MsgRegister = "register"
	// MsgRegisterBatch registers many documents in one frame: the wire
	// half of the store's batched ingest path.
	MsgRegisterBatch = "register-batch"
	MsgUnregister    = "unregister"
	MsgSearch        = "search"
	MsgSearchHit     = "search-hit"
	// Gnutella protocol.
	MsgQuery    = "query"
	MsgQueryHit = "query-hit"
	// Shared retrieval protocol (§IV.C.2: download from the providing
	// peer, including attachments).
	MsgFetch           = "fetch"
	MsgFetchReply      = "fetch-reply"
	MsgAttachment      = "attachment"
	MsgAttachmentReply = "attachment-reply"
)

// Result is one search hit: the full metadata of a matching object
// plus its provider, per §IV.C.2 ("Results ... will consist of full
// meta-data for each search result").
type Result struct {
	DocID       index.DocID      `json:"docId"`
	Provider    transport.PeerID `json:"provider"`
	CommunityID string           `json:"communityId"`
	Title       string           `json:"title"`
	Attrs       query.Attrs      `json:"attrs"`
	Hops        int              `json:"hops"`
}

// SearchOptions tune one search call.
type SearchOptions struct {
	// Limit caps the number of results (0 = unlimited).
	Limit int
	// TTL bounds flooding depth (Gnutella only; 0 uses DefaultTTL).
	TTL int
	// Timeout bounds result collection on asynchronous transports
	// (0 uses DefaultTimeout). Ignored on the synchronous simulator.
	Timeout time.Duration
	// Trace is the caller's trace context; when valid (the query was
	// sampled upstream), the search records a child span and stamps it
	// on every wire message the search fans out.
	Trace trace.Context
}

// Defaults for SearchOptions.
const (
	DefaultTTL     = 7
	DefaultTimeout = 2 * time.Second
)

// AttachmentProvider resolves a local attachment URI to its bytes.
// The servent installs one so peers can download flagged attachments.
type AttachmentProvider func(uri string) ([]byte, bool)

// Network is the generic peer-to-peer interface: create (Publish),
// search, and retrieve.
type Network interface {
	// PeerID returns this node's network identity.
	PeerID() transport.PeerID
	// Publish makes a document discoverable on the network.
	Publish(doc *index.Document) error
	// PublishBatch makes many documents discoverable at once. It is
	// semantically a loop over Publish, but implementations amortize:
	// one store batch locally and (where a registration protocol
	// exists) one register-batch message instead of one per document.
	PublishBatch(docs []*index.Document) error
	// Unpublish withdraws a document.
	Unpublish(id index.DocID) error
	// Search finds matching documents within a community.
	Search(communityID string, f query.Filter, opts SearchOptions) ([]Result, error)
	// Retrieve downloads the full document from a providing peer.
	Retrieve(id index.DocID, from transport.PeerID) (*index.Document, error)
	// RetrieveAttachment downloads one attachment from a peer.
	RetrieveAttachment(uri string, from transport.PeerID) ([]byte, error)
	// SetAttachmentProvider installs the resolver for local attachments.
	SetAttachmentProvider(p AttachmentProvider)
	// Close detaches from the network.
	Close() error
}

// Common errors, carrying structured codes ("p2p.<name>") for the
// metrics registry's error counter family. Identity semantics are
// unchanged: errors.Is against the sentinels still holds through
// fmt.Errorf("%w: ...") wrapping.
var (
	ErrTimeout     error = errs.New("p2p.timeout", "p2p: timed out awaiting response")
	ErrNotProvided error = errs.New("p2p.not_provided", "p2p: peer does not provide the requested item")
	ErrClosed      error = errs.New("p2p.closed", "p2p: node closed")
)

// --- wire payloads ---

type searchPayload struct {
	ReqID       uint64 `json:"reqId"`
	CommunityID string `json:"communityId"`
	Filter      string `json:"filter"`
	Limit       int    `json:"limit"`
}

type searchHitPayload struct {
	ReqID   uint64   `json:"reqId"`
	Results []Result `json:"results"`
}

type registerPayload struct {
	DocID       index.DocID `json:"docId"`
	CommunityID string      `json:"communityId"`
	Title       string      `json:"title"`
	Attrs       query.Attrs `json:"attrs"`
}

type registerBatchPayload struct {
	Docs []registerPayload `json:"docs"`
}

// registerPayloadFor extracts the registered metadata of a document.
func registerPayloadFor(doc *index.Document) registerPayload {
	return registerPayload{
		DocID:       doc.ID,
		CommunityID: doc.CommunityID,
		Title:       doc.Title,
		Attrs:       doc.Attrs,
	}
}

// registerBatchChunk bounds documents per register-batch frame so a
// large batch cannot exceed the transport's frame limit.
const registerBatchChunk = 512

type unregisterPayload struct {
	DocID index.DocID `json:"docId"`
}

type queryPayload struct {
	GUID        uint64           `json:"guid"`
	Origin      transport.PeerID `json:"origin"`
	CommunityID string           `json:"communityId"`
	Filter      string           `json:"filter"`
	TTL         int              `json:"ttl"`
	Hops        int              `json:"hops"`
}

type queryHitPayload struct {
	GUID    uint64   `json:"guid"`
	Results []Result `json:"results"`
}

type fetchPayload struct {
	ReqID uint64      `json:"reqId"`
	DocID index.DocID `json:"docId"`
}

type fetchReplyPayload struct {
	ReqID uint64          `json:"reqId"`
	Found bool            `json:"found"`
	Doc   *index.Document `json:"doc,omitempty"`
}

type attachmentPayload struct {
	ReqID uint64 `json:"reqId"`
	URI   string `json:"uri"`
}

type attachmentReplyPayload struct {
	ReqID uint64 `json:"reqId"`
	Found bool   `json:"found"`
	Data  []byte `json:"data,omitempty"`
}

// --- request/response correlation ---

// PendingTable matches responses to outstanding requests by ID. It is
// exported (with Await) so additional protocol implementations — the
// DHT overlay in internal/dht — reuse the same correlation layer
// instead of reimplementing it. Request IDs count locally per table,
// which keeps them deterministic per node per run (a requirement of
// golden-trace reproducibility, like the per-node GUID sources).
//
// Replies travel as decoded frames, not raw bytes: the receiving
// handler decodes once and resolves with the typed value, and the
// awaiter type-asserts — no payload is unmarshaled twice.
type PendingTable struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64]chan any
}

// NewPendingTable returns an empty correlation table.
func NewPendingTable() *PendingTable {
	return &PendingTable{m: make(map[uint64]chan any)}
}

// Create registers a new request and returns its ID and reply channel.
func (p *PendingTable) Create() (uint64, chan any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.next++
	id := p.next
	ch := make(chan any, 1)
	p.m[id] = ch
	return id, ch
}

// Resolve delivers a decoded reply frame; late or unknown responses
// are dropped.
func (p *PendingTable) Resolve(id uint64, reply any) {
	p.mu.Lock()
	ch, ok := p.m[id]
	if ok {
		delete(p.m, id)
	}
	p.mu.Unlock()
	if ok {
		select {
		case ch <- reply:
		default:
		}
	}
}

// Drop abandons a request.
func (p *PendingTable) Drop(id uint64) {
	p.mu.Lock()
	delete(p.m, id)
	p.mu.Unlock()
}

// Await waits for a response with a timeout measured on clk. On a
// synchronous transport the reply to a Send (if any) has already been
// delivered by the time Send returned, so an empty channel is a
// definitive timeout: Await returns immediately instead of blocking a
// wall-clock timeout out, which is what lets lossy simulations run
// 100k queries in seconds and keeps virtual clocks free of real
// waiting.
func Await(clk dsim.Clock, synchronous bool, ch chan any, timeout time.Duration) (any, error) {
	select {
	case reply := <-ch:
		return reply, nil
	default:
	}
	if synchronous {
		return nil, ErrTimeout
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if clk == nil {
		clk = dsim.Wall
	}
	select {
	case reply := <-ch:
		return reply, nil
	case <-clk.After(timeout):
		return nil, ErrTimeout
	}
}

// guidSource issues query GUIDs that are unique across the network yet
// deterministic per run: the high bits hash the issuing peer's ID, the
// low 24 bits count locally. A process-global counter would leak state
// between runs and break golden-trace reproducibility (two identical
// scenarios in one process would flood with different GUIDs).
type guidSource struct {
	prefix uint64
	ctr    atomic.Uint64
}

func newGUIDSource(id transport.PeerID) *guidSource {
	h := fnv.New64a()
	h.Write([]byte(id))
	return &guidSource{prefix: h.Sum64() << 24}
}

func (g *guidSource) next() uint64 { return g.prefix | (g.ctr.Add(1) & (1<<24 - 1)) }

// Neighbor sets are copy-on-write sorted slices: membership changes
// (rare: wiring, churn) build a fresh slice, reads (hot: every flood)
// share the current one with no snapshot, no sort, no allocation —
// and iteration order is deterministic by construction.

// peerSliceAdd returns a new sorted slice with peer inserted (no-op
// when already present). The input slice is never mutated.
func peerSliceAdd(s []transport.PeerID, peer transport.PeerID) []transport.PeerID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= peer })
	if i < len(s) && s[i] == peer {
		return s
	}
	out := make([]transport.PeerID, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, peer)
	return append(out, s[i:]...)
}

// peerSliceRemove returns a new sorted slice without peer (no-op when
// absent). The input slice is never mutated.
func peerSliceRemove(s []transport.PeerID, peer transport.PeerID) []transport.PeerID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= peer })
	if i >= len(s) || s[i] != peer {
		return s
	}
	out := make([]transport.PeerID, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

// ServeFetch answers MsgFetch from a local store: the provider side of
// Retrieve, shared by every protocol implementation (including the DHT
// overlay in internal/dht, which is why it is exported). When the
// inbound frame carries a trace context and tr is non-nil, the serve
// is recorded as a child span with the reply attributed to it.
func ServeFetch(c codec.Codec, tr *trace.Tracer, ep transport.Endpoint, store *index.Store, msg transport.Message) {
	var req fetchPayload
	if err := c.DecodeValue(&req, msg.Payload); err != nil {
		return
	}
	inCtx := trace.Context{Trace: msg.TraceID, Span: msg.SpanID}
	sp := tr.StartAt(inCtx, "fetch.serve", transport.ChainOffset(ep))
	sp.SetPeer(string(msg.From))
	defer sp.Finish()
	tctx := sp.ContextOr(inCtx)
	reply := fetchReplyPayload{ReqID: req.ReqID}
	if doc, err := store.Get(req.DocID); err == nil {
		reply.Found = true
		reply.Doc = doc
	} else {
		sp.SetErr(fmt.Errorf("%w: %s", ErrNotProvided, req.DocID))
	}
	payload := c.Encode(&reply)
	_ = ep.Send(transport.Message{
		To:      msg.From,
		Type:    MsgFetchReply,
		Payload: payload,
		TraceID: tctx.Trace,
		SpanID:  tctx.Span,
	})
	sp.AddMsgs(1, int64(len(payload)))
}

// ServeAttachment answers MsgAttachment via the provider callback.
func ServeAttachment(c codec.Codec, tr *trace.Tracer, ep transport.Endpoint, provider AttachmentProvider, msg transport.Message) {
	var req attachmentPayload
	if err := c.DecodeValue(&req, msg.Payload); err != nil {
		return
	}
	inCtx := trace.Context{Trace: msg.TraceID, Span: msg.SpanID}
	sp := tr.StartAt(inCtx, "attachment.serve", transport.ChainOffset(ep))
	sp.SetPeer(string(msg.From))
	defer sp.Finish()
	tctx := sp.ContextOr(inCtx)
	reply := attachmentReplyPayload{ReqID: req.ReqID}
	if provider != nil {
		if data, ok := provider(req.URI); ok {
			reply.Found = true
			reply.Data = data
		}
	}
	if !reply.Found {
		sp.SetErr(ErrNotProvided)
	}
	payload := c.Encode(&reply)
	_ = ep.Send(transport.Message{
		To:      msg.From,
		Type:    MsgAttachmentReply,
		Payload: payload,
		TraceID: tctx.Trace,
		SpanID:  tctx.Span,
	})
	sp.AddMsgs(1, int64(len(payload)))
}

// RetrieveFrom implements the client side of Retrieve for every
// protocol. sp, when active, is the caller's fetch span: the request
// frame is stamped with its context and attributed to it (the caller
// finishes the span).
func RetrieveFrom(c codec.Codec, clk dsim.Clock, ep transport.Endpoint, pending *PendingTable, sp *trace.ActiveSpan, id index.DocID, from transport.PeerID, timeout time.Duration) (*index.Document, error) {
	reqID, ch := pending.Create()
	tctx := sp.Context()
	payload := c.Encode(&fetchPayload{ReqID: reqID, DocID: id})
	err := ep.Send(transport.Message{
		To:      from,
		Type:    MsgFetch,
		Payload: payload,
		TraceID: tctx.Trace,
		SpanID:  tctx.Span,
	})
	sp.AddMsgs(1, int64(len(payload)))
	if err != nil {
		pending.Drop(reqID)
		sp.SetErr(err)
		return nil, fmt.Errorf("p2p: fetch: %w", err)
	}
	got, err := Await(clk, ep.Synchronous(), ch, timeout)
	if err != nil {
		pending.Drop(reqID)
		sp.SetErr(err)
		return nil, err
	}
	reply, ok := got.(*fetchReplyPayload)
	if !ok {
		return nil, fmt.Errorf("p2p: fetch reply: unexpected frame %T", got)
	}
	if !reply.Found || reply.Doc == nil {
		err := fmt.Errorf("%w: %s at %s", ErrNotProvided, id, from)
		sp.SetErr(err)
		return nil, err
	}
	return reply.Doc, nil
}

// RetrieveAttachmentFrom implements the client side of attachment
// download for both protocols. sp is the caller's span, as in
// RetrieveFrom.
func RetrieveAttachmentFrom(c codec.Codec, clk dsim.Clock, ep transport.Endpoint, pending *PendingTable, sp *trace.ActiveSpan, uri string, from transport.PeerID, timeout time.Duration) ([]byte, error) {
	reqID, ch := pending.Create()
	tctx := sp.Context()
	payload := c.Encode(&attachmentPayload{ReqID: reqID, URI: uri})
	err := ep.Send(transport.Message{
		To:      from,
		Type:    MsgAttachment,
		Payload: payload,
		TraceID: tctx.Trace,
		SpanID:  tctx.Span,
	})
	sp.AddMsgs(1, int64(len(payload)))
	if err != nil {
		pending.Drop(reqID)
		sp.SetErr(err)
		return nil, fmt.Errorf("p2p: attachment: %w", err)
	}
	got, err := Await(clk, ep.Synchronous(), ch, timeout)
	if err != nil {
		pending.Drop(reqID)
		sp.SetErr(err)
		return nil, err
	}
	reply, ok := got.(*attachmentReplyPayload)
	if !ok {
		return nil, fmt.Errorf("p2p: attachment reply: unexpected frame %T", got)
	}
	if !reply.Found {
		err := fmt.Errorf("%w: attachment %s at %s", ErrNotProvided, uri, from)
		sp.SetErr(err)
		return nil, err
	}
	return reply.Data, nil
}

// ResolveRetrievalReply routes an inbound MsgFetchReply or
// MsgAttachmentReply to its awaiting request: decode once, resolve
// with the typed frame. It reports whether the message was one of the
// retrieval reply types (decoded or not), so protocol handlers can
// delegate both cases in one call.
func ResolveRetrievalReply(c codec.Codec, pending *PendingTable, msg transport.Message) bool {
	switch msg.Type {
	case MsgFetchReply:
		var reply fetchReplyPayload
		if err := c.DecodeValue(&reply, msg.Payload); err == nil {
			pending.Resolve(reply.ReqID, &reply)
		}
		return true
	case MsgAttachmentReply:
		var reply attachmentReplyPayload
		if err := c.DecodeValue(&reply, msg.Payload); err == nil {
			pending.Resolve(reply.ReqID, &reply)
		}
		return true
	}
	return false
}

// ReannounceLocal streams every document in the local store through
// announce, in DocID order. It is the shared "re-register everything I
// hold" step behind leaf re-registration after super-peer failover
// (CentralizedClient.Rehome, and therefore FastTrackLeaf.Rehome) and
// behind the DHT overlay's republish/bucket-repair path — one
// definition of what a peer re-announces, three recovery mechanisms.
func ReannounceLocal(store *index.Store, announce func(docs []*index.Document) error) error {
	return announce(store.Search("", query.MatchAll{}, 0))
}
