package p2p

import (
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/transport"
)

// ftFixture: S super-peers in a ring, L leaves per super-peer.
type ftFixture struct {
	net    *transport.MemNetwork
	supers []*SuperPeer
	leaves []*FastTrackLeaf
}

func newFTFixture(t *testing.T, superN, leavesPer int) *ftFixture {
	t.Helper()
	net := transport.NewMemNetwork()
	f := &ftFixture{net: net}
	for i := 0; i < superN; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("super%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		f.supers = append(f.supers, NewSuperPeer(ep))
	}
	for i := 0; i < superN; i++ {
		f.supers[i].AddNeighbor(f.supers[(i+1)%superN].PeerID())
		f.supers[(i+1)%superN].AddNeighbor(f.supers[i].PeerID())
	}
	for i := 0; i < superN*leavesPer; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("leaf%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		super := f.supers[i%superN]
		f.leaves = append(f.leaves, NewFastTrackLeaf(ep, super.PeerID(), index.NewStore()))
	}
	return f
}

func TestFastTrackSearchAcrossSuperPeers(t *testing.T) {
	f := newFTFixture(t, 3, 2)
	// Leaf 0 is under super0; leaf 5 under super2.
	if err := f.leaves[5].Publish(doc("d1", "c", "Observer", map[string]string{"title": "Observer"})); err != nil {
		t.Fatal(err)
	}
	rs, err := f.leaves[0].Search("c", query.MustParse("(title=Observer)"), SearchOptions{})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if len(rs) != 1 {
		t.Fatalf("results = %+v", rs)
	}
	if rs[0].Provider != f.leaves[5].PeerID() {
		t.Errorf("provider = %s", rs[0].Provider)
	}
	// Retrieval is direct leaf-to-leaf.
	got, err := f.leaves[0].Retrieve(rs[0].DocID, rs[0].Provider)
	if err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	if got.Title != "Observer" {
		t.Errorf("doc = %+v", got)
	}
}

func TestFastTrackLocalSuperPeerAnswers(t *testing.T) {
	f := newFTFixture(t, 2, 2)
	// Two leaves on the same super-peer.
	f.leaves[0].Publish(doc("a", "c", "A", map[string]string{"k": "v"}))
	f.leaves[2].Publish(doc("b", "c", "B", map[string]string{"k": "v"}))
	rs, err := f.leaves[0].Search("c", query.MustParse("(k=v)"), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Errorf("results = %+v", rs)
	}
}

func TestFastTrackFloodBoundedToSuperOverlay(t *testing.T) {
	f := newFTFixture(t, 4, 4) // 4 supers, 16 leaves
	f.leaves[0].Publish(doc("d", "c", "T", map[string]string{"k": "v"}))
	before := f.net.Metrics().Snapshot()
	if _, err := f.leaves[1].Search("c", query.MustParse("(k=v)"), SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	msgs := f.net.Metrics().Snapshot().Delta(before).Counter("transport.msgs_delivered")
	// Query flooding happens only among the 4 super-peers; with 16
	// leaves a full Gnutella flood would be far larger. Search round
	// trip (2) + ring flood (<= 2*4 queries + hits).
	if msgs > 16 {
		t.Errorf("messages = %d, super-peer flood should be small", msgs)
	}
}

func TestFastTrackUnpublishAndDropLeaf(t *testing.T) {
	f := newFTFixture(t, 2, 2)
	d := doc("d", "c", "T", map[string]string{"k": "v"})
	if err := f.leaves[0].Publish(d); err != nil {
		t.Fatal(err)
	}
	if err := f.leaves[0].Unpublish("d"); err != nil {
		t.Fatal(err)
	}
	rs, _ := f.leaves[1].Search("c", query.MustParse("(k=v)"), SearchOptions{})
	if len(rs) != 0 {
		t.Errorf("results after unpublish = %+v", rs)
	}
	// DropLeaf removes a dead leaf's registrations.
	f.leaves[0].Publish(d)
	f.supers[0].DropLeaf(f.leaves[0].PeerID())
	rs, _ = f.leaves[1].Search("c", query.MustParse("(k=v)"), SearchOptions{})
	if len(rs) != 0 {
		t.Errorf("results after DropLeaf = %+v", rs)
	}
	if f.supers[0].Len() != 0 {
		t.Errorf("super index len = %d", f.supers[0].Len())
	}
}

func TestFastTrackDuplicateSuppression(t *testing.T) {
	// Ring of supers: results must not duplicate despite two paths.
	f := newFTFixture(t, 4, 1)
	f.leaves[2].Publish(doc("d", "c", "T", map[string]string{"k": "v"}))
	rs, err := f.leaves[0].Search("c", query.MustParse("(k=v)"), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Errorf("results = %+v", rs)
	}
}
