// Package codec is the pluggable wire-payload serialization layer
// under every protocol implementation (internal/p2p and internal/dht).
//
// Two codecs encode the same registered frame types:
//
//   - JSON: the original wire format, kept selectable so small runs
//     can prove protocol-level equivalence against the binary codec
//     (identical message counts and recall, byte content aside).
//   - Binary: a hand-rolled length-prefixed format for the hot frame
//     types. Encoding appends into pooled scratch and costs one exact
//     allocation per frame; decoding walks the buffer with a cursor
//     and allocates only the decoded fields. This is what makes a
//     10k-peer simulated run allocator-bound work feasible: the JSON
//     path costs dozens of reflection-driven allocations per frame.
//
// Both codecs are deterministic — map-valued fields (query.Attrs)
// encode in sorted key order — so the golden-trace hash of a seeded
// scenario is bit-identical across runs under either codec.
//
// Frames register themselves (Register, keyed by the wire type string
// of the transport.Message that carries them) from init functions in
// the protocol packages; this package knows no concrete frame, so it
// sits below p2p and dht without import cycles.
package codec

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"slices"
	"sync"

	"repro/internal/query"
)

// Frame is one wire payload: anything that can append itself to a
// binary buffer and decode itself back. JSON encoding uses the
// frame's ordinary struct tags.
type Frame interface {
	AppendBinary(dst []byte) []byte
	DecodeBinary(data []byte) error
}

// Codec turns frames into payload bytes and back.
type Codec interface {
	// Name identifies the codec ("json", "binary").
	Name() string
	// Encode serializes a frame into a fresh payload slice. Payload
	// types are plain data; an encoding failure is a programming error
	// and panics, like the marshal helpers it replaces.
	Encode(f Frame) []byte
	// DecodeValue deserializes a payload into the caller's frame value
	// — the hot path for handlers that know the expected type from the
	// message's wire type and decode exactly once at the endpoint.
	DecodeValue(f Frame, payload []byte) error
}

// JSON is the reflection-based codec: the original wire format.
var JSON Codec = jsonCodec{}

// Binary is the length-prefixed binary codec.
var Binary Codec = binaryCodec{}

// Default is the codec protocol nodes use unless one is injected
// (sim.Config.Codec / SetCodec): binary, the allocation-lean format.
var Default = Binary

// ByName resolves a codec by its name; unknown names return Default.
func ByName(name string) Codec {
	switch name {
	case "json":
		return JSON
	case "binary":
		return Binary
	default:
		return Default
	}
}

type jsonCodec struct{}

func (jsonCodec) Name() string { return "json" }

func (jsonCodec) Encode(f Frame) []byte {
	b, err := json.Marshal(f)
	if err != nil {
		panic(fmt.Sprintf("codec: json encode: %v", err))
	}
	return b
}

func (jsonCodec) DecodeValue(f Frame, payload []byte) error {
	return json.Unmarshal(payload, f)
}

type binaryCodec struct{}

func (binaryCodec) Name() string { return "binary" }

// encScratch pools the append buffers binary encoding grows into, so
// steady-state encoding costs exactly one allocation: the final
// exact-size payload copy (which must be fresh — payloads outlive the
// encode call on asynchronous transports).
var encScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

func (binaryCodec) Encode(f Frame) []byte {
	bp := encScratch.Get().(*[]byte)
	b := f.AppendBinary((*bp)[:0])
	out := make([]byte, len(b))
	copy(out, b)
	*bp = b[:0]
	encScratch.Put(bp)
	return out
}

func (binaryCodec) DecodeValue(f Frame, payload []byte) error {
	return f.DecodeBinary(payload)
}

// --- frame registry ---

var (
	regMu    sync.RWMutex
	registry = make(map[string]func() Frame)
)

// Register associates a wire type string (transport.Message.Type) with
// a frame constructor. Protocol packages register their payloads from
// init; re-registering a type panics (it would silently shadow wire
// behaviour).
func Register(wireType string, ctor func() Frame) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[wireType]; dup {
		panic(fmt.Sprintf("codec: wire type %q registered twice", wireType))
	}
	registry[wireType] = ctor
}

// New returns a fresh frame for a registered wire type.
func New(wireType string) (Frame, bool) {
	regMu.RLock()
	ctor, ok := registry[wireType]
	regMu.RUnlock()
	if !ok {
		return nil, false
	}
	return ctor(), true
}

// Types returns every registered wire type, sorted — the enumeration
// codec round-trip tests sweep.
func Types() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for t := range registry {
		out = append(out, t)
	}
	slices.Sort(out)
	return out
}

// Decode deserializes a payload of a registered wire type into a
// fresh frame — the generic path for endpoints that route on the wire
// type alone.
func Decode(c Codec, wireType string, payload []byte) (Frame, error) {
	f, ok := New(wireType)
	if !ok {
		return nil, fmt.Errorf("codec: unknown wire type %q", wireType)
	}
	if err := c.DecodeValue(f, payload); err != nil {
		return nil, err
	}
	return f, nil
}

// --- binary primitives ---
//
// The building blocks frames compose their AppendBinary/DecodeBinary
// from: uvarint-framed strings and byte slices, single-byte bools, and
// sorted-key attribute maps. All append-style, no intermediate
// buffers.

// AppendUvarint appends v.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendString appends a uvarint length prefix and the string bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a uvarint length prefix and the raw bytes.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendBool appends one byte.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendAttrs appends an attribute map in sorted key order (the
// determinism requirement: map iteration order must never reach the
// wire).
func AppendAttrs(dst []byte, a query.Attrs) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(a)))
	if len(a) == 0 {
		return dst
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		dst = AppendString(dst, k)
		vals := a[k]
		dst = binary.AppendUvarint(dst, uint64(len(vals)))
		for _, v := range vals {
			dst = AppendString(dst, v)
		}
	}
	return dst
}

// Reader is a decoding cursor over one binary payload. Truncated or
// oversized input sets a sticky error; reads after an error return
// zero values, so frames can decode unconditionally and check Err
// once at the end.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader starts a cursor at the payload's beginning.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("codec: truncated or corrupt binary payload at offset %d", r.off)
	}
}

// Uvarint reads one varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Len reads a uvarint length prefix, bounds-checked against the
// remaining payload so a corrupt prefix cannot drive huge allocations.
func (r *Reader) Len() int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.data)-r.off) {
		r.fail()
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	if r.err != nil {
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

// Bytes reads a length-prefixed byte slice (copied: payload buffers
// are not owned by the decoded frame).
func (r *Reader) Bytes() []byte {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[r.off:r.off+n])
	r.off += n
	return out
}

// Fixed reads exactly n raw bytes into dst (fixed-width fields like
// 160-bit DHT IDs).
func (r *Reader) Fixed(dst []byte) {
	if r.err != nil {
		return
	}
	if len(r.data)-r.off < len(dst) {
		r.fail()
		return
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
}

// Bool reads one byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.data) {
		r.fail()
		return false
	}
	b := r.data[r.off]
	r.off++
	return b != 0
}

// Attrs reads an attribute map written by AppendAttrs (nil for an
// empty one, mirroring the JSON behaviour).
func (r *Reader) Attrs() query.Attrs {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	a := make(query.Attrs, n)
	for i := 0; i < n; i++ {
		k := r.String()
		nv := r.Len()
		if r.err != nil {
			return nil
		}
		vals := make([]string, 0, nv)
		for j := 0; j < nv; j++ {
			vals = append(vals, r.String())
		}
		a[k] = vals
	}
	if r.err != nil {
		return nil
	}
	return a
}
