package codec

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/query"
)

// testFrame exercises every primitive: varints, strings, bytes,
// bools, and the sorted-attrs map.
type testFrame struct {
	ReqID uint64      `json:"reqId"`
	Name  string      `json:"name"`
	Blob  []byte      `json:"blob,omitempty"`
	Found bool        `json:"found"`
	Attrs query.Attrs `json:"attrs,omitempty"`
	Tags  []string    `json:"tags,omitempty"`
}

func (f *testFrame) AppendBinary(dst []byte) []byte {
	dst = AppendUvarint(dst, f.ReqID)
	dst = AppendString(dst, f.Name)
	dst = AppendBytes(dst, f.Blob)
	dst = AppendBool(dst, f.Found)
	dst = AppendAttrs(dst, f.Attrs)
	dst = AppendUvarint(dst, uint64(len(f.Tags)))
	for _, t := range f.Tags {
		dst = AppendString(dst, t)
	}
	return dst
}

func (f *testFrame) DecodeBinary(data []byte) error {
	r := NewReader(data)
	f.ReqID = r.Uvarint()
	f.Name = r.String()
	f.Blob = r.Bytes()
	f.Found = r.Bool()
	f.Attrs = r.Attrs()
	n := r.Len()
	f.Tags = f.Tags[:0]
	for i := 0; i < n; i++ {
		f.Tags = append(f.Tags, r.String())
	}
	if len(f.Tags) == 0 {
		f.Tags = nil
	}
	return r.Err()
}

func sampleFrame() *testFrame {
	a := query.Attrs{}
	a.Add("classification", "behavioral")
	a.Add("classification", "structural")
	a.Add("author", "GoF")
	return &testFrame{
		ReqID: 1<<40 + 7,
		Name:  "observer",
		Blob:  []byte{0, 1, 2, 0xff},
		Found: true,
		Attrs: a,
		Tags:  []string{"x", "y"},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, f := range []*testFrame{sampleFrame(), {}} {
		enc := Binary.Encode(f)
		var got testFrame
		if err := Binary.DecodeValue(&got, enc); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(f, &got) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", f, &got)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := sampleFrame()
	enc := JSON.Encode(f)
	var got testFrame
	if err := JSON.DecodeValue(&got, enc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(f, &got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", f, &got)
	}
}

// TestBinaryDeterministic: map-valued fields must encode identically
// regardless of map iteration order, run after run.
func TestBinaryDeterministic(t *testing.T) {
	base := Binary.Encode(sampleFrame())
	for i := 0; i < 32; i++ {
		if got := Binary.Encode(sampleFrame()); !bytes.Equal(base, got) {
			t.Fatalf("encoding not deterministic on iteration %d", i)
		}
	}
}

func TestBinaryTruncated(t *testing.T) {
	enc := Binary.Encode(sampleFrame())
	for cut := 0; cut < len(enc); cut++ {
		var got testFrame
		if err := Binary.DecodeValue(&got, enc[:cut]); err == nil {
			// A prefix may be a valid shorter frame only if every
			// remaining field happens to decode as zero — with our
			// sample's trailing content that never happens.
			t.Fatalf("truncation at %d/%d not detected", cut, len(enc))
		}
	}
}

func TestReaderCorruptLength(t *testing.T) {
	// A length prefix far beyond the buffer must fail, not allocate.
	buf := AppendUvarint(nil, 1<<50)
	r := NewReader(buf)
	if r.Bytes() != nil || r.Err() == nil {
		t.Fatal("oversized length prefix not rejected")
	}
}

func TestByName(t *testing.T) {
	if ByName("json") != JSON || ByName("binary") != Binary {
		t.Fatal("ByName mapping broken")
	}
	if ByName("") != Default || ByName("bogus") != Default {
		t.Fatal("ByName default broken")
	}
}

// TestBinaryEncodeAllocs pins the binary hot path: one allocation per
// Encode (the exact-size payload), zero per DecodeValue beyond the
// decoded fields themselves (none for this all-scalar frame).
func TestBinaryEncodeAllocs(t *testing.T) {
	f := &testFrame{ReqID: 42, Name: "q", Found: true}
	// Warm the scratch pool.
	Binary.Encode(f)
	if n := testing.AllocsPerRun(200, func() {
		Binary.Encode(f)
	}); n > 1 {
		t.Fatalf("binary encode allocs/op = %v, want <= 1", n)
	}
	enc := Binary.Encode(f)
	var dst testFrame
	if n := testing.AllocsPerRun(200, func() {
		dst = testFrame{}
		if err := Binary.DecodeValue(&dst, enc); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("binary decode allocs/op = %v, want 0", n)
	}
}

// TestWirePathAllocComparison backs the EXPERIMENTS.md claim about
// per-message wire cost: on an RPC-shaped scalar frame (the shape of
// pings, findNode waves, and reply headers — the bulk of DHT traffic)
// the binary path spends 1 allocation per encode+decode round trip
// against JSON's 5. The assertion is deliberately looser than the
// measured 5x so a stdlib encoding/json improvement doesn't break CI;
// if it fires, remeasure and update the doc.
func TestWirePathAllocComparison(t *testing.T) {
	f := &testFrame{ReqID: 42, Name: "q", Found: true}
	Binary.Encode(f) // warm the scratch pool
	binEnc := Binary.Encode(f)
	jsonEnc := JSON.Encode(f)
	var dst testFrame
	bin := testing.AllocsPerRun(500, func() { Binary.Encode(f) }) +
		testing.AllocsPerRun(500, func() { dst = testFrame{}; Binary.DecodeValue(&dst, binEnc) })
	jsn := testing.AllocsPerRun(500, func() { JSON.Encode(f) }) +
		testing.AllocsPerRun(500, func() { dst = testFrame{}; JSON.DecodeValue(&dst, jsonEnc) })
	t.Logf("scalar frame allocs per encode+decode: binary=%v json=%v (%.1fx)", bin, jsn, jsn/bin)
	if bin > 1 {
		t.Errorf("binary wire path allocs/msg = %v, want <= 1", bin)
	}
	if jsn < 3*bin {
		t.Errorf("json/binary alloc ratio %.1fx below 3x — remeasure and update EXPERIMENTS.md", jsn/bin)
	}
}

func BenchmarkBinaryRoundTrip(b *testing.B) {
	f := sampleFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := Binary.Encode(f)
		var got testFrame
		if err := Binary.DecodeValue(&got, enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSONRoundTrip(b *testing.B) {
	f := sampleFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := JSON.Encode(f)
		var got testFrame
		if err := JSON.DecodeValue(&got, enc); err != nil {
			b.Fatal(err)
		}
	}
}
