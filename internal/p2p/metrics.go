package p2p

import (
	"time"

	"repro/internal/dsim"
	"repro/internal/metrics"
)

// NodeMetrics bundles the per-protocol telemetry handles every
// p2p.Network implementation records into: query/register/fetch
// counts in protocol-labeled counter families plus an end-to-end
// search-latency histogram. Handles are resolved once, so the record
// path is pure atomics.
type NodeMetrics struct {
	reg       *metrics.Registry
	Searches  *metrics.Counter
	Results   *metrics.Counter
	Publishes *metrics.Counter
	Fetches   *metrics.Counter
	SearchLat *metrics.Histogram
}

// NewNodeMetrics resolves the handles for one protocol ("centralized",
// "gnutella", "fasttrack", "dht") in reg: the families p2p.searches,
// p2p.search_results, p2p.publishes, and p2p.fetches labeled by
// protocol, and the histogram p2p.search_latency_ns.<proto>.
func NewNodeMetrics(reg *metrics.Registry, proto string) *NodeMetrics {
	return &NodeMetrics{
		reg:       reg,
		Searches:  reg.CounterVec("p2p.searches", "protocol").With(proto),
		Results:   reg.CounterVec("p2p.search_results", "protocol").With(proto),
		Publishes: reg.CounterVec("p2p.publishes", "protocol").With(proto),
		Fetches:   reg.CounterVec("p2p.fetches", "protocol").With(proto),
		SearchLat: reg.Histogram("p2p.search_latency_ns." + proto),
	}
}

// CountError feeds the registry's error counter family.
func (m *NodeMetrics) CountError(err error) { m.reg.CountError(err) }

// ObserveSearch records one completed search: the result count and the
// elapsed time since start on the node's clock. On the synchronous
// simulated network elapsed is ~0 (virtual latency lives in the
// transport's path accounting); over TCP it is the real round-trip.
func (m *NodeMetrics) ObserveSearch(clk dsim.Clock, start time.Time, results int) {
	m.Searches.Inc()
	m.Results.Add(int64(results))
	m.SearchLat.Observe(int64(clk.Now().Sub(start)))
}
