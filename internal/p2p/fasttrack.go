package p2p

import (
	"slices"
	"sort"
	"sync"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/p2p/codec"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/transport"
)

// FastTrack-style super-peer protocol: the third network named in the
// paper's Fig. 3 protocol enumeration. Ordinary peers (leaves) attach
// to one super-peer and upload their metadata to it, as Napster
// clients do to the central server; super-peers flood queries among
// themselves, as Gnutella nodes do. The hybrid bounds flooding to the
// (much smaller) super-peer overlay while avoiding a single central
// index.
//
// Message reuse: leaves speak the centralized wire protocol
// (register/unregister/search) to their super-peer; super-peers speak
// the Gnutella wire protocol (query/query-hit) among themselves.
// Retrieval is the shared direct fetch protocol in both roles.

// serverEntry is one leaf registration on a super-peer.
type serverEntry struct {
	provider    transport.PeerID
	communityID string
	title       string
	attrs       query.Attrs
}

// SuperPeer is a FastTrack hub: it indexes its leaves' metadata and
// floods queries across the super-peer overlay.
type SuperPeer struct {
	ep     transport.Endpoint
	guids  *guidSource
	cdc    codec.Codec
	tracer *trace.Tracer

	mu        sync.RWMutex
	leafIndex map[index.DocID][]serverEntry
	// docIDs mirrors leafIndex's keys in sorted order, maintained on
	// registration/removal, so every search iterates deterministically
	// without re-sorting the keyset on the query hot path.
	docIDs []index.DocID
	// neighbors is a copy-on-write sorted slice, like GnutellaNode's:
	// overlay floods iterate it with no snapshot allocation.
	neighbors []transport.PeerID
	seen      map[uint64]transport.PeerID
	collect   map[uint64]*hitCollector
	closed    bool
}

// NewSuperPeer attaches a super-peer to the network.
func NewSuperPeer(ep transport.Endpoint) *SuperPeer {
	s := &SuperPeer{
		ep:        ep,
		guids:     newGUIDSource(ep.ID()),
		cdc:       codec.Default,
		leafIndex: make(map[index.DocID][]serverEntry),
		seen:      make(map[uint64]transport.PeerID),
		collect:   make(map[uint64]*hitCollector),
	}
	ep.SetHandler(s.handle)
	return s
}

// PeerID returns the super-peer's identity.
func (s *SuperPeer) PeerID() transport.PeerID { return s.ep.ID() }

// SetTracer installs the super-peer's span recorder (nil disables
// tracing, the default). Call before traffic starts.
func (s *SuperPeer) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

func (s *SuperPeer) tr() *trace.Tracer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tracer
}

// SetCodec installs the wire codec (default codec.Default). Call
// before traffic starts, and use one codec network-wide.
func (s *SuperPeer) SetCodec(c codec.Codec) {
	if c != nil {
		s.cdc = c
	}
}

// AddNeighbor links this super-peer to another (one direction).
func (s *SuperPeer) AddNeighbor(peer transport.PeerID) {
	if peer == s.ep.ID() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.neighbors = peerSliceAdd(s.neighbors, peer)
}

// RemoveNeighbor unlinks a failed super-peer from the overlay.
func (s *SuperPeer) RemoveNeighbor(peer transport.PeerID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.neighbors = peerSliceRemove(s.neighbors, peer)
}

// Neighbors returns a copy of the current super-peer overlay links,
// sorted.
func (s *SuperPeer) Neighbors() []transport.PeerID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return slices.Clone(s.neighbors)
}

// Len returns the number of distinct documents indexed for leaves.
func (s *SuperPeer) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.leafIndex)
}

// DropLeaf removes a departed leaf's registrations.
func (s *SuperPeer) DropLeaf(peer transport.PeerID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, entries := range s.leafIndex {
		kept := entries[:0]
		for _, e := range entries {
			if e.provider != peer {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(s.leafIndex, id)
			s.removeDocIDLocked(id)
		} else {
			s.leafIndex[id] = kept
		}
	}
}

// insertDocIDLocked adds id to the sorted keyset mirror (caller holds
// mu; no-op if present).
func (s *SuperPeer) insertDocIDLocked(id index.DocID) {
	i := sort.Search(len(s.docIDs), func(k int) bool { return s.docIDs[k] >= id })
	if i < len(s.docIDs) && s.docIDs[i] == id {
		return
	}
	s.docIDs = append(s.docIDs, "")
	copy(s.docIDs[i+1:], s.docIDs[i:])
	s.docIDs[i] = id
}

// removeDocIDLocked drops id from the sorted keyset mirror (caller
// holds mu).
func (s *SuperPeer) removeDocIDLocked(id index.DocID) {
	i := sort.Search(len(s.docIDs), func(k int) bool { return s.docIDs[k] >= id })
	if i < len(s.docIDs) && s.docIDs[i] == id {
		s.docIDs = append(s.docIDs[:i], s.docIDs[i+1:]...)
	}
}

// Close detaches the super-peer.
func (s *SuperPeer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.ep.Close()
}

func (s *SuperPeer) handle(msg transport.Message) {
	switch msg.Type {
	case MsgRegister:
		var reg registerPayload
		if err := s.cdc.DecodeValue(&reg, msg.Payload); err != nil {
			return
		}
		sp := s.startSpan(msg, "register.serve")
		s.registerLeaf(msg.From, []registerPayload{reg})
		sp.Finish()
	case MsgRegisterBatch:
		var batch registerBatchPayload
		if err := s.cdc.DecodeValue(&batch, msg.Payload); err != nil {
			return
		}
		sp := s.startSpan(msg, "register.serve")
		s.registerLeaf(msg.From, batch.Docs)
		sp.Finish()
	case MsgUnregister:
		var unreg unregisterPayload
		if err := s.cdc.DecodeValue(&unreg, msg.Payload); err != nil {
			return
		}
		s.mu.Lock()
		entries := s.leafIndex[unreg.DocID]
		kept := entries[:0]
		for _, e := range entries {
			if e.provider != msg.From {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(s.leafIndex, unreg.DocID)
			s.removeDocIDLocked(unreg.DocID)
		} else {
			s.leafIndex[unreg.DocID] = kept
		}
		s.mu.Unlock()
	case MsgSearch:
		// A leaf's search: answer from the local leaf index, then flood
		// the super-peer overlay and merge.
		s.handleLeafSearch(msg)
	case MsgQuery:
		s.handleQuery(msg)
	case MsgQueryHit:
		s.handleQueryHit(msg)
	}
}

// registerLeaf upserts one leaf's registrations (single or batched).
func (s *SuperPeer) registerLeaf(from transport.PeerID, regs []registerPayload) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, reg := range regs {
		entries := s.leafIndex[reg.DocID]
		if len(entries) == 0 {
			s.insertDocIDLocked(reg.DocID)
		}
		replaced := false
		for i, e := range entries {
			if e.provider == from {
				entries[i] = serverEntry{from, reg.CommunityID, reg.Title, reg.Attrs}
				replaced = true
				break
			}
		}
		if !replaced {
			entries = append(entries, serverEntry{from, reg.CommunityID, reg.Title, reg.Attrs})
		}
		s.leafIndex[reg.DocID] = entries
	}
}

// handleLeafSearch serves a leaf: local hits immediately, remote hits
// gathered by flooding other super-peers.
func (s *SuperPeer) handleLeafSearch(msg transport.Message) {
	var req searchPayload
	if err := s.cdc.DecodeValue(&req, msg.Payload); err != nil {
		return
	}
	inCtx := trace.Context{Trace: msg.TraceID, Span: msg.SpanID}
	sp := s.startSpan(msg, "leaf.search")
	sp.SetCommunity(req.CommunityID)
	defer sp.Finish()
	tctx := sp.ContextOr(inCtx)
	f, err := query.Parse(req.Filter)
	if err != nil {
		f = query.MatchAll{}
	}
	results := s.localSearch(req.CommunityID, f, req.Limit)

	guid := s.guids.next()
	col := &hitCollector{done: make(chan struct{}), limit: req.Limit}
	col.add(results)
	s.mu.Lock()
	s.collect[guid] = col
	s.seen[guid] = s.ep.ID()
	neighbors := s.neighbors
	s.mu.Unlock()
	q := queryPayload{
		GUID:        guid,
		Origin:      s.ep.ID(),
		CommunityID: req.CommunityID,
		Filter:      f.String(),
		TTL:         DefaultTTL,
	}
	payload := s.cdc.Encode(&q)
	for _, n := range neighbors {
		_ = s.ep.Send(transport.Message{To: n, Type: MsgQuery, Payload: payload,
			TraceID: tctx.Trace, SpanID: tctx.Span})
		sp.AddMsgs(1, int64(len(payload)))
	}
	// On the synchronous simulator the flood has completed; reply with
	// everything collected. (Over TCP a production implementation would
	// defer the reply; the experiments run on the simulator.)
	merged := col.snapshot(req.Limit)
	s.mu.Lock()
	delete(s.collect, guid)
	s.mu.Unlock()
	reply := s.cdc.Encode(&searchHitPayload{ReqID: req.ReqID, Results: merged})
	_ = s.ep.Send(transport.Message{
		To:      msg.From,
		Type:    MsgSearchHit,
		Payload: reply,
		TraceID: tctx.Trace,
		SpanID:  tctx.Span,
	})
	sp.AddMsgs(1, int64(len(reply)))
}

// startSpan opens a handler span for an inbound traced frame.
func (s *SuperPeer) startSpan(msg transport.Message, op string) trace.ActiveSpan {
	sp := s.tr().StartAt(trace.Context{Trace: msg.TraceID, Span: msg.SpanID}, op, transport.ChainOffset(s.ep))
	sp.SetPeer(string(msg.From))
	return sp
}

// localSearch scans the leaf index in DocID order (providers keep
// registration order within a document), so identical registrations
// always yield identically ordered hits — map-order results would leak
// nondeterminism into every query-hit payload. The sorted docIDs
// mirror makes this free at query time.
func (s *SuperPeer) localSearch(communityID string, f query.Filter, limit int) []Result {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Result
	for _, id := range s.docIDs {
		for _, e := range s.leafIndex[id] {
			if communityID != "" && e.communityID != communityID {
				continue
			}
			if !f.Match(e.attrs) {
				continue
			}
			out = append(out, Result{
				DocID:       id,
				Provider:    e.provider,
				CommunityID: e.communityID,
				Title:       e.title,
				Attrs:       e.attrs,
			})
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

func (s *SuperPeer) handleQuery(msg transport.Message) {
	var q queryPayload
	if err := s.cdc.DecodeValue(&q, msg.Payload); err != nil {
		return
	}
	inCtx := trace.Context{Trace: msg.TraceID, Span: msg.SpanID}
	sp := s.startSpan(msg, "query")
	sp.SetCommunity(q.CommunityID)
	defer sp.Finish()
	tctx := sp.ContextOr(inCtx)
	s.mu.Lock()
	if _, dup := s.seen[q.GUID]; dup {
		s.mu.Unlock()
		sp.SetOp("query.dup")
		return
	}
	s.seen[q.GUID] = msg.From
	neighbors := s.neighbors
	s.mu.Unlock()
	f, err := query.Parse(q.Filter)
	if err != nil {
		return
	}
	hops := q.Hops + 1
	results := s.localSearch(q.CommunityID, f, 0)
	for i := range results {
		results[i].Hops = hops
	}
	if len(results) > 0 {
		hit := s.cdc.Encode(&queryHitPayload{GUID: q.GUID, Results: results})
		_ = s.ep.Send(transport.Message{
			To:      msg.From,
			Type:    MsgQueryHit,
			Payload: hit,
			TraceID: tctx.Trace,
			SpanID:  tctx.Span,
		})
		sp.AddMsgs(1, int64(len(hit)))
	}
	if q.TTL <= 1 {
		return
	}
	fwd := q
	fwd.TTL--
	fwd.Hops = hops
	payload := s.cdc.Encode(&fwd)
	for _, n := range neighbors {
		if n != msg.From {
			_ = s.ep.Send(transport.Message{To: n, Type: MsgQuery, Payload: payload,
				TraceID: tctx.Trace, SpanID: tctx.Span})
			sp.AddMsgs(1, int64(len(payload)))
		}
	}
}

func (s *SuperPeer) handleQueryHit(msg transport.Message) {
	var hit queryHitPayload
	if err := s.cdc.DecodeValue(&hit, msg.Payload); err != nil {
		return
	}
	s.mu.RLock()
	col := s.collect[hit.GUID]
	back, seen := s.seen[hit.GUID]
	self := s.ep.ID()
	s.mu.RUnlock()
	inCtx := trace.Context{Trace: msg.TraceID, Span: msg.SpanID}
	if col != nil {
		sp := s.startSpan(msg, "hit")
		sp.Finish()
		col.add(hit.Results)
		return
	}
	if !seen || back == self {
		return
	}
	sp := s.startSpan(msg, "hit.relay")
	tctx := sp.ContextOr(inCtx)
	_ = s.ep.Send(transport.Message{To: back, Type: MsgQueryHit, Payload: msg.Payload,
		TraceID: tctx.Trace, SpanID: tctx.Span})
	sp.AddMsgs(1, int64(len(msg.Payload)))
	sp.Finish()
}

// FastTrackLeaf is an ordinary peer in the super-peer network. Its
// wire behaviour toward the super-peer is exactly the centralized
// client's, so it simply wraps one — including Rehome, which moves the
// leaf to a live super-peer and re-registers its documents after its
// super-peer fails.
type FastTrackLeaf struct {
	*CentralizedClient
}

var _ Network = (*FastTrackLeaf)(nil)

// NewFastTrackLeaf attaches a leaf to its super-peer.
func NewFastTrackLeaf(ep transport.Endpoint, super transport.PeerID, store *index.Store) *FastTrackLeaf {
	c := NewCentralizedClient(ep, super, store)
	// A leaf is a centralized client pointed at a super-peer; its
	// telemetry is labeled as fasttrack traffic.
	c.metricsProto = "fasttrack"
	c.nm = NewNodeMetrics(metrics.Discard(), c.metricsProto)
	return &FastTrackLeaf{CentralizedClient: c}
}
