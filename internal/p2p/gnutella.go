package p2p

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/p2p/codec"

	"repro/internal/dsim"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/transport"
)

// GnutellaNode is a peer in the distributed protocol: queries flood
// the overlay with a TTL, each peer answers from its local metadata
// index, and query hits travel back along the reverse path — the
// classic Gnutella 0.4 design the paper names.
type GnutellaNode struct {
	ep      transport.Endpoint
	store   *index.Store
	pending *PendingTable
	guids   *guidSource
	clk     dsim.Clock
	cdc     codec.Codec
	nm      *NodeMetrics
	tracer  *trace.Tracer

	mu sync.RWMutex
	// neighbors is a copy-on-write sorted slice: floods iterate it
	// directly with no per-search sort or snapshot allocation, and
	// membership changes replace the slice wholesale (they are rare —
	// overlay wiring and churn — while floods are the hot path).
	neighbors []transport.PeerID
	// seen maps query GUID -> the neighbor the query arrived from, for
	// duplicate suppression and reverse-path hit routing.
	seen map[uint64]transport.PeerID
	// collect gathers hits for queries this node originated.
	collect map[uint64]*hitCollector
	attach  AttachmentProvider
	disc    *discoveryState
	closed  bool
}

type hitCollector struct {
	mu      sync.Mutex
	results []Result
	done    chan struct{} // closed when the limit is reached
	limit   int
	closed  bool
}

func (h *hitCollector) add(rs []Result) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.results = append(h.results, rs...)
	if h.limit > 0 && len(h.results) >= h.limit && !h.closed {
		h.closed = true
		close(h.done)
	}
}

func (h *hitCollector) snapshot(limit int) []Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := append([]Result(nil), h.results...)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

var _ Network = (*GnutellaNode)(nil)

// NewGnutellaNode attaches a node to the overlay. Topology is supplied
// via AddNeighbor (the simulator wires it; over TCP a bootstrap list
// plays the same role).
func NewGnutellaNode(ep transport.Endpoint, store *index.Store) *GnutellaNode {
	g := &GnutellaNode{
		ep:      ep,
		store:   store,
		pending: NewPendingTable(),
		guids:   newGUIDSource(ep.ID()),
		clk:     dsim.Wall,
		cdc:     codec.Default,
		seen:    make(map[uint64]transport.PeerID),
		collect: make(map[uint64]*hitCollector),
	}
	g.nm = NewNodeMetrics(metrics.Discard(), "gnutella")
	ep.SetHandler(g.handle)
	return g
}

// SetMetrics points the node's telemetry at reg, labeled "gnutella".
// Like SetClock, call before traffic starts; metrics are discarded
// until then.
func (g *GnutellaNode) SetMetrics(reg *metrics.Registry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nm = NewNodeMetrics(reg, "gnutella")
}

func (g *GnutellaNode) nodeMetrics() *NodeMetrics {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nm
}

// SetTracer installs the node's span recorder (nil disables tracing,
// the default). Like SetClock, call before traffic starts.
func (g *GnutellaNode) SetTracer(t *trace.Tracer) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tracer = t
}

func (g *GnutellaNode) tr() *trace.Tracer {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.tracer
}

// SetClock installs the clock that paces this node's timeouts (default
// wall). Call before traffic starts.
func (g *GnutellaNode) SetClock(clk dsim.Clock) {
	if clk != nil {
		g.clk = clk
	}
}

// SetCodec installs the wire codec (default codec.Default). Call
// before traffic starts, and use one codec network-wide.
func (g *GnutellaNode) SetCodec(c codec.Codec) {
	if c != nil {
		g.cdc = c
	}
}

// PeerID implements Network.
func (g *GnutellaNode) PeerID() transport.PeerID { return g.ep.ID() }

// AddNeighbor links this node to a peer in the overlay (one
// direction; callers typically link both ways).
func (g *GnutellaNode) AddNeighbor(peer transport.PeerID) {
	if peer == g.ep.ID() {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.neighbors = peerSliceAdd(g.neighbors, peer)
}

// RemoveNeighbor unlinks a peer.
func (g *GnutellaNode) RemoveNeighbor(peer transport.PeerID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.neighbors = peerSliceRemove(g.neighbors, peer)
}

// Neighbors returns a copy of the current neighbor set, sorted.
func (g *GnutellaNode) Neighbors() []transport.PeerID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return slices.Clone(g.neighbors)
}

// SetAttachmentProvider implements Network.
func (g *GnutellaNode) SetAttachmentProvider(p AttachmentProvider) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.attach = p
}

// Publish implements Network: in Gnutella metadata stays local; the
// object becomes discoverable because queries reach this peer.
func (g *GnutellaNode) Publish(doc *index.Document) error {
	if err := g.store.Put(doc); err != nil {
		return err
	}
	g.nodeMetrics().Publishes.Inc()
	return nil
}

// PublishBatch implements Network: with no registration protocol, a
// batch is purely a local store batch (one shard lock round).
func (g *GnutellaNode) PublishBatch(docs []*index.Document) error {
	if err := g.store.PutBatch(docs); err != nil {
		return err
	}
	g.nodeMetrics().Publishes.Add(int64(len(docs)))
	return nil
}

// Unpublish implements Network.
func (g *GnutellaNode) Unpublish(id index.DocID) error {
	g.store.Delete(id)
	return nil
}

// Search implements Network: flood a query with a TTL and collect
// reverse-path hits. On the synchronous simulator the entire flood
// completes before the sends return, so collection is exact; on
// asynchronous transports we wait for the timeout (or the limit).
func (g *GnutellaNode) Search(communityID string, f query.Filter, opts SearchOptions) ([]Result, error) {
	if f == nil {
		f = query.MatchAll{}
	}
	ttl := opts.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	nm := g.nodeMetrics()
	start := g.clk.Now()
	guid := g.guids.next()
	sp := g.tr().Start(opts.Trace, "search")
	sp.SetCommunity(communityID)
	tctx := sp.ContextOr(opts.Trace)
	col := &hitCollector{done: make(chan struct{}), limit: opts.Limit}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		nm.CountError(ErrClosed)
		sp.SetErr(ErrClosed)
		sp.Finish()
		return nil, ErrClosed
	}
	g.collect[guid] = col
	g.seen[guid] = g.ep.ID() // suppress loops back to the origin
	neighbors := g.neighborList()
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.collect, guid)
		g.mu.Unlock()
	}()

	// Answer from the local index first (a peer is also a member of
	// the network it searches).
	local := g.localResults(communityID, f, opts.Limit)
	col.add(local)

	q := queryPayload{
		GUID:        guid,
		Origin:      g.ep.ID(),
		CommunityID: communityID,
		Filter:      f.String(),
		TTL:         ttl,
		Hops:        0,
	}
	payload := g.cdc.Encode(&q)
	for _, n := range neighbors {
		// Unreachable neighbors are skipped, like UDP loss in the
		// original protocol.
		_ = g.ep.Send(transport.Message{To: n, Type: MsgQuery, Payload: payload,
			TraceID: tctx.Trace, SpanID: tctx.Span})
		sp.AddMsgs(1, int64(len(payload)))
	}
	if g.ep.Synchronous() {
		out := col.snapshot(opts.Limit)
		nm.ObserveSearch(g.clk, start, len(out))
		sp.Finish()
		return out, nil
	}
	select {
	case <-col.done:
	case <-g.clk.After(timeoutOr(opts.Timeout)):
	}
	out := col.snapshot(opts.Limit)
	nm.ObserveSearch(g.clk, start, len(out))
	sp.Finish()
	return out, nil
}

// Retrieve implements Network: direct download from the provider, as
// Gnutella does out-of-band from the overlay.
func (g *GnutellaNode) Retrieve(id index.DocID, from transport.PeerID) (*index.Document, error) {
	if from == g.PeerID() {
		return g.store.Get(id)
	}
	nm := g.nodeMetrics()
	sp := g.tr().Root("fetch")
	sp.SetPeer(string(from))
	defer sp.Finish()
	doc, err := RetrieveFrom(g.cdc, g.clk, g.ep, g.pending, &sp, id, from, 0)
	if err != nil {
		nm.CountError(err)
		return nil, err
	}
	nm.Fetches.Inc()
	return doc, nil
}

// RetrieveAttachment implements Network.
func (g *GnutellaNode) RetrieveAttachment(uri string, from transport.PeerID) ([]byte, error) {
	sp := g.tr().Root("attachment")
	sp.SetPeer(string(from))
	defer sp.Finish()
	return RetrieveAttachmentFrom(g.cdc, g.clk, g.ep, g.pending, &sp, uri, from, 0)
}

// Close implements Network.
func (g *GnutellaNode) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	return g.ep.Close()
}

// neighborList returns the sorted copy-on-write neighbor slice
// (caller holds mu): already ordered, shared read-only — floods fan
// out deterministically with zero snapshot cost.
func (g *GnutellaNode) neighborList() []transport.PeerID {
	return g.neighbors
}

func (g *GnutellaNode) localResults(communityID string, f query.Filter, limit int) []Result {
	docs := g.store.Search(communityID, f, limit)
	out := make([]Result, 0, len(docs))
	for _, d := range docs {
		out = append(out, Result{
			DocID:       d.ID,
			Provider:    g.ep.ID(),
			CommunityID: d.CommunityID,
			Title:       d.Title,
			Attrs:       d.Attrs,
		})
	}
	return out
}

func (g *GnutellaNode) handle(msg transport.Message) {
	switch msg.Type {
	case MsgQuery:
		g.handleQuery(msg)
	case MsgQueryHit:
		g.handleQueryHit(msg)
	case MsgPing:
		g.handlePing(msg)
	case MsgPong:
		g.handlePong(msg)
	case MsgFetch:
		ServeFetch(g.cdc, g.tr(), g.ep, g.store, msg)
	case MsgFetchReply, MsgAttachmentReply:
		ResolveRetrievalReply(g.cdc, g.pending, msg)
	case MsgAttachment:
		g.mu.RLock()
		p := g.attach
		g.mu.RUnlock()
		ServeAttachment(g.cdc, g.tr(), g.ep, p, msg)
	}
}

func (g *GnutellaNode) handleQuery(msg transport.Message) {
	var q queryPayload
	if err := g.cdc.DecodeValue(&q, msg.Payload); err != nil {
		return
	}
	inCtx := trace.Context{Trace: msg.TraceID, Span: msg.SpanID}
	sp := g.tr().StartAt(inCtx, "query", transport.ChainOffset(g.ep))
	sp.SetPeer(string(msg.From))
	sp.SetCommunity(q.CommunityID)
	defer sp.Finish()
	tctx := sp.ContextOr(inCtx)
	g.mu.Lock()
	if _, dup := g.seen[q.GUID]; dup {
		g.mu.Unlock()
		sp.SetOp("query.dup")
		return // duplicate: already served and forwarded
	}
	g.seen[q.GUID] = msg.From
	neighbors := g.neighborList()
	g.mu.Unlock()

	f, err := query.Parse(q.Filter)
	if err != nil {
		return // malformed query: drop, per protocol robustness rules
	}
	hops := q.Hops + 1
	results := g.localResults(q.CommunityID, f, 0)
	for i := range results {
		results[i].Hops = hops
	}
	if len(results) > 0 {
		hit := g.cdc.Encode(&queryHitPayload{GUID: q.GUID, Results: results})
		// Route the hit back toward the origin along the reverse path.
		_ = g.ep.Send(transport.Message{To: msg.From, Type: MsgQueryHit, Payload: hit,
			TraceID: tctx.Trace, SpanID: tctx.Span})
		sp.AddMsgs(1, int64(len(hit)))
	}
	// Forward the flood while TTL remains.
	if q.TTL <= 1 {
		return
	}
	fwd := q
	fwd.TTL--
	fwd.Hops = hops
	payload := g.cdc.Encode(&fwd)
	for _, n := range neighbors {
		if n == msg.From {
			continue
		}
		_ = g.ep.Send(transport.Message{To: n, Type: MsgQuery, Payload: payload,
			TraceID: tctx.Trace, SpanID: tctx.Span})
		sp.AddMsgs(1, int64(len(payload)))
	}
}

func (g *GnutellaNode) handleQueryHit(msg transport.Message) {
	var hit queryHitPayload
	if err := g.cdc.DecodeValue(&hit, msg.Payload); err != nil {
		return
	}
	g.mu.RLock()
	col := g.collect[hit.GUID]
	back, seen := g.seen[hit.GUID]
	self := g.ep.ID()
	g.mu.RUnlock()
	inCtx := trace.Context{Trace: msg.TraceID, Span: msg.SpanID}
	if col != nil {
		sp := g.tr().StartAt(inCtx, "hit", transport.ChainOffset(g.ep))
		sp.SetPeer(string(msg.From))
		sp.Finish()
		col.add(hit.Results)
		return
	}
	if !seen || back == self {
		return // unknown or stale query: drop the hit
	}
	sp := g.tr().StartAt(inCtx, "hit.relay", transport.ChainOffset(g.ep))
	sp.SetPeer(string(msg.From))
	tctx := sp.ContextOr(inCtx)
	// Relay one hop back along the reverse path.
	_ = g.ep.Send(transport.Message{To: back, Type: MsgQueryHit, Payload: msg.Payload,
		TraceID: tctx.Trace, SpanID: tctx.Span})
	sp.AddMsgs(1, int64(len(msg.Payload)))
	sp.Finish()
}

// ForgetQueries clears the seen-GUID table (between experiment runs;
// real Gnutella ages entries out).
func (g *GnutellaNode) ForgetQueries() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seen = make(map[uint64]transport.PeerID)
}

// String describes the node.
func (g *GnutellaNode) String() string {
	return fmt.Sprintf("gnutella(%s, %d neighbors)", g.ep.ID(), len(g.Neighbors()))
}
