package p2p

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/transport"
)

// TestSuperPeerChurnRace hammers one super-peer with concurrent leaf
// registration, unregistration, drops, and leaf searches — the exact
// interleaving super-peer churn produces over an asynchronous
// transport. Run under -race (the CI race job covers internal/...):
// the point is that registerLeaf/DropLeaf/handleLeafSearch share the
// leaf index safely. Afterward the index must contain exactly the
// registrations of leaves that were never dropped.
func TestSuperPeerChurnRace(t *testing.T) {
	net := transport.NewMemNetwork()
	sep, err := net.Endpoint("super")
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSuperPeer(sep)

	const (
		churners = 4  // leaves that register and get dropped repeatedly
		keepers  = 3  // leaves whose registrations must survive
		rounds   = 50 // register/drop cycles per churner
	)
	attrs := query.Attrs{}
	attrs.Add("kind", "thing")

	newLeaf := func(name string) *FastTrackLeaf {
		ep, err := net.Endpoint(transport.PeerID(name))
		if err != nil {
			t.Fatal(err)
		}
		return NewFastTrackLeaf(ep, "super", index.NewStore())
	}

	var wg sync.WaitGroup
	// Keepers publish once and then search in a loop.
	for k := 0; k < keepers; k++ {
		leaf := newLeaf(fmt.Sprintf("keeper%d", k))
		doc := &index.Document{
			ID:          index.DocID(fmt.Sprintf("keep-%d", k)),
			CommunityID: "c",
			Title:       "kept",
			Attrs:       attrs,
		}
		if err := leaf.Publish(doc); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(leaf *FastTrackLeaf) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := leaf.Search("c", query.MustParse("(kind=thing)"), SearchOptions{}); err != nil {
					t.Errorf("leaf search: %v", err)
					return
				}
			}
		}(leaf)
	}
	// Churners register batches; a paired goroutine drops them.
	for c := 0; c < churners; c++ {
		leaf := newLeaf(fmt.Sprintf("churn%d", c))
		id := leaf.PeerID()
		wg.Add(2)
		go func(leaf *FastTrackLeaf, c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				docs := []*index.Document{
					{ID: index.DocID(fmt.Sprintf("churn-%d-a", c)), CommunityID: "c", Attrs: attrs},
					{ID: index.DocID(fmt.Sprintf("churn-%d-b", c)), CommunityID: "c", Attrs: attrs},
				}
				if err := leaf.PublishBatch(docs); err != nil {
					t.Errorf("publish batch: %v", err)
					return
				}
				if i%3 == 0 {
					if err := leaf.Unpublish(docs[0].ID); err != nil {
						t.Errorf("unpublish: %v", err)
						return
					}
				}
			}
		}(leaf, c)
		go func(id transport.PeerID) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				sp.DropLeaf(id)
			}
		}(id)
	}
	wg.Wait()

	// Quiesce: drop every churner once more, so only keepers remain.
	for c := 0; c < churners; c++ {
		sp.DropLeaf(transport.PeerID(fmt.Sprintf("churn%d", c)))
	}
	if got := sp.Len(); got != keepers {
		t.Errorf("super-peer index has %d documents after churn, want %d", got, keepers)
	}
	probe := newLeaf("probe")
	rs, err := probe.Search("c", query.MustParse("(kind=thing)"), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[index.DocID]bool{}
	for _, r := range rs {
		seen[r.DocID] = true
	}
	if len(seen) != keepers {
		t.Errorf("post-churn search sees %d distinct docs, want %d: %v", len(seen), keepers, seen)
	}
	for k := 0; k < keepers; k++ {
		if !seen[index.DocID(fmt.Sprintf("keep-%d", k))] {
			t.Errorf("keeper %d's registration lost during churn", k)
		}
	}
}
