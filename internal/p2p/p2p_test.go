package p2p

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/transport"
)

func doc(id, community, title string, kv map[string]string) *index.Document {
	attrs := query.Attrs{}
	for k, v := range kv {
		attrs.Add(k, v)
	}
	return &index.Document{
		ID:          index.DocID(id),
		CommunityID: community,
		Title:       title,
		XML:         "<obj><title>" + title + "</title></obj>",
		Attrs:       attrs,
	}
}

// --- centralized protocol ---

type centralFixture struct {
	net     *transport.MemNetwork
	server  *IndexServer
	clients []*CentralizedClient
}

func newCentralFixture(t *testing.T, nClients int) *centralFixture {
	t.Helper()
	net := transport.NewMemNetwork()
	sep, err := net.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	f := &centralFixture{net: net, server: NewIndexServer(sep)}
	for i := 0; i < nClients; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("peer%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		f.clients = append(f.clients, NewCentralizedClient(ep, "server", index.NewStore()))
	}
	return f
}

func TestCentralizedPublishSearchRetrieve(t *testing.T) {
	f := newCentralFixture(t, 2)
	pub, seeker := f.clients[0], f.clients[1]
	if err := pub.Publish(doc("d1", "patterns", "Observer", map[string]string{"title": "Observer"})); err != nil {
		t.Fatalf("publish: %v", err)
	}
	results, err := seeker.Search("patterns", query.MustParse("(title=Observer)"), SearchOptions{})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	r := results[0]
	if r.Provider != pub.PeerID() || r.DocID != "d1" {
		t.Errorf("result = %+v", r)
	}
	got, err := seeker.Retrieve(r.DocID, r.Provider)
	if err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	if got.Title != "Observer" || got.XML == "" {
		t.Errorf("doc = %+v", got)
	}
}

func TestCentralizedCommunityScoping(t *testing.T) {
	f := newCentralFixture(t, 1)
	c := f.clients[0]
	c.Publish(doc("d1", "patterns", "Observer", map[string]string{"title": "Observer"}))
	c.Publish(doc("d2", "mp3", "Blue", map[string]string{"title": "Blue"}))
	rs, err := c.Search("mp3", query.MatchAll{}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].DocID != "d2" {
		t.Errorf("mp3 results = %+v", rs)
	}
	all, err := c.Search("", query.MatchAll{}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("all = %d", len(all))
	}
}

func TestCentralizedUnpublish(t *testing.T) {
	f := newCentralFixture(t, 1)
	c := f.clients[0]
	c.Publish(doc("d1", "c", "T", map[string]string{"k": "v"}))
	if f.server.Len() != 1 {
		t.Fatalf("server len = %d", f.server.Len())
	}
	if err := c.Unpublish("d1"); err != nil {
		t.Fatal(err)
	}
	if f.server.Len() != 0 {
		t.Errorf("server len after unpublish = %d", f.server.Len())
	}
	rs, _ := c.Search("c", query.MatchAll{}, SearchOptions{})
	if len(rs) != 0 {
		t.Errorf("results after unpublish = %v", rs)
	}
}

func TestCentralizedReplicas(t *testing.T) {
	// Two peers publish the same DocID (a replica); both providers are
	// returned, and DropPeer removes only one.
	f := newCentralFixture(t, 2)
	d := doc("same", "c", "T", map[string]string{"k": "v"})
	f.clients[0].Publish(d)
	f.clients[1].Publish(d)
	rs, _ := f.clients[0].Search("c", query.MatchAll{}, SearchOptions{})
	if len(rs) != 2 {
		t.Fatalf("replica results = %d", len(rs))
	}
	f.server.DropPeer(f.clients[0].PeerID())
	rs, _ = f.clients[1].Search("c", query.MatchAll{}, SearchOptions{})
	if len(rs) != 1 || rs[0].Provider != f.clients[1].PeerID() {
		t.Errorf("after drop = %+v", rs)
	}
}

func TestCentralizedSearchLimit(t *testing.T) {
	f := newCentralFixture(t, 1)
	c := f.clients[0]
	for i := 0; i < 10; i++ {
		c.Publish(doc(fmt.Sprintf("d%02d", i), "c", "T", map[string]string{"k": "v"}))
	}
	rs, _ := c.Search("c", query.MustParse("(k=v)"), SearchOptions{Limit: 3})
	if len(rs) != 3 {
		t.Errorf("limit 3 returned %d", len(rs))
	}
}

func TestCentralizedRetrieveMissing(t *testing.T) {
	f := newCentralFixture(t, 2)
	_, err := f.clients[0].Retrieve("ghost", f.clients[1].PeerID())
	if !errors.Is(err, ErrNotProvided) {
		t.Errorf("err = %v", err)
	}
}

func TestCentralizedAttachments(t *testing.T) {
	f := newCentralFixture(t, 2)
	provider, seeker := f.clients[0], f.clients[1]
	provider.SetAttachmentProvider(func(uri string) ([]byte, bool) {
		if uri == "file:pattern.code" {
			return []byte("class Observer {}"), true
		}
		return nil, false
	})
	data, err := seeker.RetrieveAttachment("file:pattern.code", provider.PeerID())
	if err != nil {
		t.Fatalf("attachment: %v", err)
	}
	if string(data) != "class Observer {}" {
		t.Errorf("data = %q", data)
	}
	if _, err := seeker.RetrieveAttachment("file:missing", provider.PeerID()); !errors.Is(err, ErrNotProvided) {
		t.Errorf("missing attachment err = %v", err)
	}
}

// --- gnutella protocol ---

type gnutellaFixture struct {
	net   *transport.MemNetwork
	nodes []*GnutellaNode
}

// newGnutellaLine wires nodes in a line: n0 - n1 - n2 - ... so TTL
// effects are observable.
func newGnutellaLine(t *testing.T, n int) *gnutellaFixture {
	t.Helper()
	net := transport.NewMemNetwork()
	f := &gnutellaFixture{net: net}
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("g%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		f.nodes = append(f.nodes, NewGnutellaNode(ep, index.NewStore()))
	}
	for i := 0; i+1 < n; i++ {
		f.nodes[i].AddNeighbor(f.nodes[i+1].PeerID())
		f.nodes[i+1].AddNeighbor(f.nodes[i].PeerID())
	}
	return f
}

func TestGnutellaFloodSearch(t *testing.T) {
	f := newGnutellaLine(t, 5)
	// Object at the far end of the line.
	f.nodes[4].Publish(doc("d1", "patterns", "Observer", map[string]string{"title": "Observer"}))
	rs, err := f.nodes[0].Search("patterns", query.MustParse("(title=Observer)"), SearchOptions{TTL: 7})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if len(rs) != 1 {
		t.Fatalf("results = %+v", rs)
	}
	if rs[0].Provider != f.nodes[4].PeerID() {
		t.Errorf("provider = %s", rs[0].Provider)
	}
	if rs[0].Hops != 4 {
		t.Errorf("hops = %d, want 4", rs[0].Hops)
	}
}

func TestGnutellaTTLHorizon(t *testing.T) {
	f := newGnutellaLine(t, 6)
	f.nodes[5].Publish(doc("far", "c", "Far", map[string]string{"k": "v"}))
	f.nodes[2].Publish(doc("near", "c", "Near", map[string]string{"k": "v"}))
	// TTL 2 reaches nodes 1 and 2 only.
	rs, err := f.nodes[0].Search("c", query.MustParse("(k=v)"), SearchOptions{TTL: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].DocID != "near" {
		t.Errorf("TTL 2 results = %+v", rs)
	}
	// TTL 7 reaches everything.
	rs, err = f.nodes[0].Search("c", query.MustParse("(k=v)"), SearchOptions{TTL: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Errorf("TTL 7 results = %+v", rs)
	}
}

func TestGnutellaLocalResultsIncluded(t *testing.T) {
	f := newGnutellaLine(t, 2)
	f.nodes[0].Publish(doc("mine", "c", "Mine", map[string]string{"k": "v"}))
	rs, err := f.nodes[0].Search("c", query.MustParse("(k=v)"), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Provider != f.nodes[0].PeerID() || rs[0].Hops != 0 {
		t.Errorf("local results = %+v", rs)
	}
}

func TestGnutellaDuplicateSuppressionInCycle(t *testing.T) {
	// Ring topology: without duplicate suppression a query would loop.
	net := transport.NewMemNetwork()
	var nodes []*GnutellaNode
	const n = 4
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, NewGnutellaNode(ep, index.NewStore()))
	}
	for i := 0; i < n; i++ {
		nodes[i].AddNeighbor(nodes[(i+1)%n].PeerID())
		nodes[(i+1)%n].AddNeighbor(nodes[i].PeerID())
	}
	nodes[2].Publish(doc("d", "c", "T", map[string]string{"k": "v"}))
	rs, err := nodes[0].Search("c", query.MustParse("(k=v)"), SearchOptions{TTL: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The object must be found exactly once despite two paths.
	if len(rs) != 1 {
		t.Errorf("results in ring = %+v", rs)
	}
	// And the message count must be bounded (no infinite loop):
	msgs := net.Metrics().Snapshot().Counter("transport.msgs_delivered")
	if msgs > 20 {
		t.Errorf("too many messages in ring: %d", msgs)
	}
}

func TestGnutellaMessageCostGrowsWithTTL(t *testing.T) {
	f := newGnutellaLine(t, 10)
	base := f.net.Metrics().Snapshot()
	_, err := f.nodes[0].Search("c", query.MustParse("(k=v)"), SearchOptions{TTL: 2})
	if err != nil {
		t.Fatal(err)
	}
	mid := f.net.Metrics().Snapshot()
	low := mid.Delta(base).Counter("transport.msgs_delivered")
	if _, err = f.nodes[0].Search("c", query.MustParse("(k=v)"), SearchOptions{TTL: 9}); err != nil {
		t.Fatal(err)
	}
	high := f.net.Metrics().Snapshot().Delta(mid).Counter("transport.msgs_delivered")
	if high <= low {
		t.Errorf("messages TTL9 (%d) not > TTL2 (%d)", high, low)
	}
}

func TestGnutellaRetrieve(t *testing.T) {
	f := newGnutellaLine(t, 3)
	f.nodes[2].Publish(doc("d1", "c", "T", map[string]string{"k": "v"}))
	rs, err := f.nodes[0].Search("c", query.MustParse("(k=v)"), SearchOptions{})
	if err != nil || len(rs) != 1 {
		t.Fatalf("search: %v %v", rs, err)
	}
	got, err := f.nodes[0].Retrieve(rs[0].DocID, rs[0].Provider)
	if err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	if got.Title != "T" {
		t.Errorf("doc = %+v", got)
	}
	// Self-retrieve short-circuits.
	f.nodes[0].Publish(doc("local", "c", "L", nil))
	if _, err := f.nodes[0].Retrieve("local", f.nodes[0].PeerID()); err != nil {
		t.Errorf("self retrieve: %v", err)
	}
}

func TestGnutellaSearchLimit(t *testing.T) {
	f := newGnutellaLine(t, 5)
	for i, n := range f.nodes {
		n.Publish(doc(fmt.Sprintf("d%d", i), "c", "T", map[string]string{"k": "v"}))
	}
	rs, err := f.nodes[0].Search("c", query.MustParse("(k=v)"), SearchOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Errorf("limit 2 = %d results", len(rs))
	}
}

func TestGnutellaNeighborOps(t *testing.T) {
	f := newGnutellaLine(t, 3)
	n := f.nodes[1]
	if got := len(n.Neighbors()); got != 2 {
		t.Errorf("neighbors = %d", got)
	}
	n.RemoveNeighbor(f.nodes[0].PeerID())
	if got := len(n.Neighbors()); got != 1 {
		t.Errorf("after remove = %d", got)
	}
	// Self-neighbor is ignored.
	n.AddNeighbor(n.PeerID())
	if got := len(n.Neighbors()); got != 1 {
		t.Errorf("self neighbor added: %d", got)
	}
}

func TestGnutellaClosedNodeSearchFails(t *testing.T) {
	f := newGnutellaLine(t, 2)
	f.nodes[0].Close()
	if _, err := f.nodes[0].Search("c", query.MatchAll{}, SearchOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
}

func TestGnutellaPartitionedNeighborSkipped(t *testing.T) {
	f := newGnutellaLine(t, 3)
	f.nodes[2].Publish(doc("d", "c", "T", map[string]string{"k": "v"}))
	f.net.Partition(f.nodes[0].PeerID(), f.nodes[1].PeerID())
	rs, err := f.nodes[0].Search("c", query.MustParse("(k=v)"), SearchOptions{})
	if err != nil {
		t.Fatalf("search across partition errored: %v", err)
	}
	if len(rs) != 0 {
		t.Errorf("results across partition = %+v", rs)
	}
}

// --- cross-protocol: identical workload, both networks (E8 seed) ---

func TestProtocolIndependenceSameResults(t *testing.T) {
	titles := []string{"Observer", "Visitor", "Composite", "Strategy"}

	runWorkload := func(nets []Network) map[string]int {
		for i, title := range titles {
			d := doc(fmt.Sprintf("d%d", i), "patterns", title, map[string]string{"title": title})
			if err := nets[i%len(nets)].Publish(d); err != nil {
				t.Fatalf("publish: %v", err)
			}
		}
		out := map[string]int{}
		for _, q := range []string{"(title=Observer)", "(title=*o*)", "(*)"} {
			rs, err := nets[0].Search("patterns", query.MustParse(q), SearchOptions{TTL: 7})
			if err != nil {
				t.Fatalf("search %s: %v", q, err)
			}
			out[q] = len(rs)
		}
		return out
	}

	// Centralized network.
	cf := newCentralFixture(t, 3)
	var cnets []Network
	for _, c := range cf.clients {
		cnets = append(cnets, c)
	}
	centralCounts := runWorkload(cnets)

	// Gnutella network (fully connected for equal reach).
	net := transport.NewMemNetwork()
	var gnodes []*GnutellaNode
	for i := 0; i < 3; i++ {
		ep, _ := net.Endpoint(transport.PeerID(fmt.Sprintf("g%d", i)))
		gnodes = append(gnodes, NewGnutellaNode(ep, index.NewStore()))
	}
	for i := range gnodes {
		for j := range gnodes {
			if i != j {
				gnodes[i].AddNeighbor(gnodes[j].PeerID())
			}
		}
	}
	var gnets []Network
	for _, g := range gnodes {
		gnets = append(gnets, g)
	}
	gnutellaCounts := runWorkload(gnets)

	for q, want := range centralCounts {
		if got := gnutellaCounts[q]; got != want {
			t.Errorf("query %s: centralized=%d gnutella=%d", q, want, got)
		}
	}
}
