package p2p

// Binary wire format for the p2p payloads (see internal/p2p/codec).
// Each payload implements codec.Frame; field order here IS the wire
// format, so changes re-baseline golden traces. Every frame registers
// under its transport message type for generic decoding.

import (
	"repro/internal/index"
	"repro/internal/p2p/codec"
	"repro/internal/transport"
)

func init() {
	codec.Register(MsgRegister, func() codec.Frame { return new(registerPayload) })
	codec.Register(MsgRegisterBatch, func() codec.Frame { return new(registerBatchPayload) })
	codec.Register(MsgUnregister, func() codec.Frame { return new(unregisterPayload) })
	codec.Register(MsgSearch, func() codec.Frame { return new(searchPayload) })
	codec.Register(MsgSearchHit, func() codec.Frame { return new(searchHitPayload) })
	codec.Register(MsgQuery, func() codec.Frame { return new(queryPayload) })
	codec.Register(MsgQueryHit, func() codec.Frame { return new(queryHitPayload) })
	codec.Register(MsgFetch, func() codec.Frame { return new(fetchPayload) })
	codec.Register(MsgFetchReply, func() codec.Frame { return new(fetchReplyPayload) })
	codec.Register(MsgAttachment, func() codec.Frame { return new(attachmentPayload) })
	codec.Register(MsgAttachmentReply, func() codec.Frame { return new(attachmentReplyPayload) })
	codec.Register(MsgPing, func() codec.Frame { return new(pingPayload) })
	codec.Register(MsgPong, func() codec.Frame { return new(pongPayload) })
}

// --- shared composites ---

func appendResult(dst []byte, r *Result) []byte {
	dst = codec.AppendString(dst, string(r.DocID))
	dst = codec.AppendString(dst, string(r.Provider))
	dst = codec.AppendString(dst, r.CommunityID)
	dst = codec.AppendString(dst, r.Title)
	dst = codec.AppendAttrs(dst, r.Attrs)
	dst = codec.AppendUvarint(dst, uint64(r.Hops))
	return dst
}

func readResult(r *codec.Reader, out *Result) {
	out.DocID = index.DocID(r.String())
	out.Provider = transport.PeerID(r.String())
	out.CommunityID = r.String()
	out.Title = r.String()
	out.Attrs = r.Attrs()
	out.Hops = int(r.Uvarint())
}

func appendResults(dst []byte, rs []Result) []byte {
	dst = codec.AppendUvarint(dst, uint64(len(rs)))
	for i := range rs {
		dst = appendResult(dst, &rs[i])
	}
	return dst
}

func readResults(r *codec.Reader) []Result {
	n := r.Len()
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]Result, n)
	for i := range out {
		readResult(r, &out[i])
	}
	return out
}

func appendDocument(dst []byte, d *index.Document) []byte {
	dst = codec.AppendString(dst, string(d.ID))
	dst = codec.AppendString(dst, d.CommunityID)
	dst = codec.AppendString(dst, d.Title)
	dst = codec.AppendString(dst, d.XML)
	dst = codec.AppendAttrs(dst, d.Attrs)
	dst = codec.AppendUvarint(dst, uint64(len(d.Attachments)))
	for _, a := range d.Attachments {
		dst = codec.AppendString(dst, a)
	}
	return dst
}

func readDocument(r *codec.Reader) *index.Document {
	d := &index.Document{
		ID:          index.DocID(r.String()),
		CommunityID: r.String(),
		Title:       r.String(),
		XML:         r.String(),
		Attrs:       r.Attrs(),
	}
	if n := r.Len(); n > 0 {
		d.Attachments = make([]string, n)
		for i := range d.Attachments {
			d.Attachments[i] = r.String()
		}
	}
	return d
}

// --- centralized / fasttrack registration ---

func (p *registerPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendString(dst, string(p.DocID))
	dst = codec.AppendString(dst, p.CommunityID)
	dst = codec.AppendString(dst, p.Title)
	return codec.AppendAttrs(dst, p.Attrs)
}

func (p *registerPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.readFrom(r)
	return r.Err()
}

func (p *registerPayload) readFrom(r *codec.Reader) {
	p.DocID = index.DocID(r.String())
	p.CommunityID = r.String()
	p.Title = r.String()
	p.Attrs = r.Attrs()
}

func (p *registerBatchPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, uint64(len(p.Docs)))
	for i := range p.Docs {
		dst = p.Docs[i].AppendBinary(dst)
	}
	return dst
}

func (p *registerBatchPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	if n := r.Len(); n > 0 {
		p.Docs = make([]registerPayload, n)
		for i := range p.Docs {
			p.Docs[i].readFrom(r)
		}
	}
	return r.Err()
}

func (p *unregisterPayload) AppendBinary(dst []byte) []byte {
	return codec.AppendString(dst, string(p.DocID))
}

func (p *unregisterPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.DocID = index.DocID(r.String())
	return r.Err()
}

func (p *searchPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.ReqID)
	dst = codec.AppendString(dst, p.CommunityID)
	dst = codec.AppendString(dst, p.Filter)
	return codec.AppendUvarint(dst, uint64(p.Limit))
}

func (p *searchPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.ReqID = r.Uvarint()
	p.CommunityID = r.String()
	p.Filter = r.String()
	p.Limit = int(r.Uvarint())
	return r.Err()
}

func (p *searchHitPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.ReqID)
	return appendResults(dst, p.Results)
}

func (p *searchHitPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.ReqID = r.Uvarint()
	p.Results = readResults(r)
	return r.Err()
}

// --- gnutella flooding ---

func (p *queryPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.GUID)
	dst = codec.AppendString(dst, string(p.Origin))
	dst = codec.AppendString(dst, p.CommunityID)
	dst = codec.AppendString(dst, p.Filter)
	dst = codec.AppendUvarint(dst, uint64(p.TTL))
	return codec.AppendUvarint(dst, uint64(p.Hops))
}

func (p *queryPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.GUID = r.Uvarint()
	p.Origin = transport.PeerID(r.String())
	p.CommunityID = r.String()
	p.Filter = r.String()
	p.TTL = int(r.Uvarint())
	p.Hops = int(r.Uvarint())
	return r.Err()
}

func (p *queryHitPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.GUID)
	return appendResults(dst, p.Results)
}

func (p *queryHitPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.GUID = r.Uvarint()
	p.Results = readResults(r)
	return r.Err()
}

// --- shared retrieval ---

func (p *fetchPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.ReqID)
	return codec.AppendString(dst, string(p.DocID))
}

func (p *fetchPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.ReqID = r.Uvarint()
	p.DocID = index.DocID(r.String())
	return r.Err()
}

func (p *fetchReplyPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.ReqID)
	dst = codec.AppendBool(dst, p.Found)
	hasDoc := p.Doc != nil
	dst = codec.AppendBool(dst, hasDoc)
	if hasDoc {
		dst = appendDocument(dst, p.Doc)
	}
	return dst
}

func (p *fetchReplyPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.ReqID = r.Uvarint()
	p.Found = r.Bool()
	if r.Bool() {
		p.Doc = readDocument(r)
	}
	return r.Err()
}

func (p *attachmentPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.ReqID)
	return codec.AppendString(dst, p.URI)
}

func (p *attachmentPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.ReqID = r.Uvarint()
	p.URI = r.String()
	return r.Err()
}

func (p *attachmentReplyPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.ReqID)
	dst = codec.AppendBool(dst, p.Found)
	return codec.AppendBytes(dst, p.Data)
}

func (p *attachmentReplyPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.ReqID = r.Uvarint()
	p.Found = r.Bool()
	p.Data = r.Bytes()
	return r.Err()
}

// --- ping/pong discovery ---

func (p *pingPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.GUID)
	dst = codec.AppendString(dst, string(p.Origin))
	dst = codec.AppendUvarint(dst, uint64(p.TTL))
	return codec.AppendUvarint(dst, uint64(p.Hops))
}

func (p *pingPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.GUID = r.Uvarint()
	p.Origin = transport.PeerID(r.String())
	p.TTL = int(r.Uvarint())
	p.Hops = int(r.Uvarint())
	return r.Err()
}

func (p *pongPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.GUID)
	dst = codec.AppendString(dst, string(p.Peer))
	return codec.AppendUvarint(dst, uint64(p.Hops))
}

func (p *pongPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.GUID = r.Uvarint()
	p.Peer = transport.PeerID(r.String())
	p.Hops = int(r.Uvarint())
	return r.Err()
}
