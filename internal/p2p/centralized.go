package p2p

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dsim"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/p2p/codec"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/transport"
)

// IndexServer is the Napster-style central index. It stores only
// metadata (attributes + provider); objects stay on their publishing
// peers and are fetched peer-to-peer, exactly like Napster's split
// between central search and direct download.
//
// Metadata lives in the same sharded index.Store the peers use
// locally, so server-side search rides the inverted index, community
// sharding, and result cache instead of scanning a flat entry map;
// the server only adds a provider table mapping each DocID to the
// peers serving it.
type IndexServer struct {
	ep transport.Endpoint

	// mu serializes registration state: providers and the matching
	// store entries mutate together under it (TCP dispatches handlers
	// on per-connection goroutines, so a register and an unregister
	// for one DocID can race), keeping the invariant that every
	// stored document has at least one provider. Searches take
	// mu.RLock across the store query and the provider expansion so
	// they observe one consistent registration state.
	mu        sync.RWMutex
	store     *index.Store
	providers map[index.DocID][]transport.PeerID // registration order
	tracer    *trace.Tracer
	cdc       codec.Codec
}

// NewIndexServer attaches a server to the given endpoint with a
// default store configuration.
func NewIndexServer(ep transport.Endpoint) *IndexServer {
	return NewIndexServerOn(ep, index.NewStore())
}

// NewIndexServerOn attaches a server backed by the given store, so
// deployments tune shard count and cache size to their load.
func NewIndexServerOn(ep transport.Endpoint, store *index.Store) *IndexServer {
	s := &IndexServer{
		ep:        ep,
		store:     store,
		providers: make(map[index.DocID][]transport.PeerID),
		cdc:       codec.Default,
	}
	ep.SetHandler(s.handle)
	return s
}

// SetTracer installs the server's span recorder (nil disables
// tracing, the default). Call before traffic starts.
func (s *IndexServer) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

func (s *IndexServer) tr() *trace.Tracer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tracer
}

// SetCodec installs the wire codec (default codec.Default). Call
// before traffic starts, and use one codec network-wide.
func (s *IndexServer) SetCodec(c codec.Codec) {
	if c != nil {
		s.cdc = c
	}
}

// Len returns the number of distinct registered documents.
func (s *IndexServer) Len() int { return s.store.Len() }

// DropPeer removes all registrations from a peer (simulating a peer
// disconnect noticed by the server). Documents left without any
// provider leave the metadata store in one batch.
func (s *IndexServer) DropPeer(peer transport.PeerID) {
	var orphaned []index.DocID
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, provs := range s.providers {
		kept := provs[:0]
		for _, p := range provs {
			if p != peer {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			delete(s.providers, id)
			orphaned = append(orphaned, id)
		} else {
			s.providers[id] = kept
		}
	}
	s.store.DeleteBatch(orphaned)
}

func (s *IndexServer) handle(msg transport.Message) {
	switch msg.Type {
	case MsgRegister:
		var reg registerPayload
		if err := s.cdc.DecodeValue(&reg, msg.Payload); err != nil {
			return
		}
		sp := s.startSpan(msg, "register.serve")
		s.register(msg.From, []registerPayload{reg})
		sp.Finish()
	case MsgRegisterBatch:
		var batch registerBatchPayload
		if err := s.cdc.DecodeValue(&batch, msg.Payload); err != nil {
			return
		}
		sp := s.startSpan(msg, "register.serve")
		s.register(msg.From, batch.Docs)
		sp.Finish()
	case MsgUnregister:
		var unreg unregisterPayload
		if err := s.cdc.DecodeValue(&unreg, msg.Payload); err != nil {
			return
		}
		s.mu.Lock()
		provs := s.providers[unreg.DocID]
		kept := provs[:0]
		for _, p := range provs {
			if p != msg.From {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			delete(s.providers, unreg.DocID)
			s.store.Delete(unreg.DocID)
		} else {
			s.providers[unreg.DocID] = kept
		}
		s.mu.Unlock()
	case MsgSearch:
		var req searchPayload
		if err := s.cdc.DecodeValue(&req, msg.Payload); err != nil {
			return
		}
		inCtx := trace.Context{Trace: msg.TraceID, Span: msg.SpanID}
		sp := s.startSpan(msg, "search.serve")
		sp.SetCommunity(req.CommunityID)
		tctx := sp.ContextOr(inCtx)
		f, err := query.Parse(req.Filter)
		if err != nil {
			f = query.MatchAll{}
		}
		results := s.search(req.CommunityID, f, req.Limit)
		payload := s.cdc.Encode(&searchHitPayload{ReqID: req.ReqID, Results: results})
		_ = s.ep.Send(transport.Message{
			To:      msg.From,
			Type:    MsgSearchHit,
			Payload: payload,
			TraceID: tctx.Trace,
			SpanID:  tctx.Span,
		})
		sp.AddMsgs(1, int64(len(payload)))
		sp.Finish()
	}
}

// startSpan opens a handler span for an inbound traced frame.
func (s *IndexServer) startSpan(msg transport.Message, op string) trace.ActiveSpan {
	sp := s.tr().StartAt(trace.Context{Trace: msg.TraceID, Span: msg.SpanID}, op, transport.ChainOffset(s.ep))
	sp.SetPeer(string(msg.From))
	return sp
}

// register records from as a provider of each document and upserts the
// metadata in one store batch. Replicas are content-addressed, so a
// re-registration refreshes metadata identically for every provider.
func (s *IndexServer) register(from transport.PeerID, regs []registerPayload) {
	docs := make([]*index.Document, 0, len(regs))
	for _, reg := range regs {
		if reg.DocID == "" {
			continue
		}
		docs = append(docs, &index.Document{
			ID:          reg.DocID,
			CommunityID: reg.CommunityID,
			Title:       reg.Title,
			Attrs:       reg.Attrs,
		})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, doc := range docs {
		provs := s.providers[doc.ID]
		known := false
		for _, p := range provs {
			if p == from {
				known = true
				break
			}
		}
		if !known {
			s.providers[doc.ID] = append(provs, from)
		}
	}
	_ = s.store.PutBatch(docs)
}

func (s *IndexServer) search(communityID string, f query.Filter, limit int) []Result {
	// The whole read runs under mu so the store query and the
	// provider expansion see one consistent registration state
	// (lock order mu -> store, same as register). Every stored
	// document then has at least one provider, so limit docs yield at
	// least limit results and the store never materializes more
	// matches than the client asked for.
	s.mu.RLock()
	defer s.mu.RUnlock()
	docs := s.store.Search(communityID, f, limit)
	var out []Result
	for _, d := range docs {
		for _, p := range s.providers[d.ID] {
			out = append(out, Result{
				DocID:       d.ID,
				Provider:    p,
				CommunityID: d.CommunityID,
				Title:       d.Title,
				Attrs:       d.Attrs,
			})
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// CentralizedClient is a peer in the centralized protocol: it keeps
// its shared objects in a local store, registers their metadata with
// the index server, and serves fetches from other peers directly.
type CentralizedClient struct {
	ep      transport.Endpoint
	store   *index.Store
	pending *PendingTable
	clk     dsim.Clock
	cdc     codec.Codec
	nm      *NodeMetrics
	// metricsProto labels this client's telemetry; "centralized" here,
	// overridden to "fasttrack" by NewFastTrackLeaf (a leaf is this
	// client pointed at a super-peer).
	metricsProto string
	tracer       *trace.Tracer

	mu     sync.RWMutex
	server transport.PeerID // mutable: Rehome repoints it after failover
	attach AttachmentProvider
	closed bool
}

var _ Network = (*CentralizedClient)(nil)

// NewCentralizedClient attaches a client to the network; server is the
// index server's peer ID. store holds the peer's shared objects.
func NewCentralizedClient(ep transport.Endpoint, server transport.PeerID, store *index.Store) *CentralizedClient {
	c := &CentralizedClient{
		ep:           ep,
		server:       server,
		store:        store,
		pending:      NewPendingTable(),
		clk:          dsim.Wall,
		cdc:          codec.Default,
		metricsProto: "centralized",
	}
	c.nm = NewNodeMetrics(metrics.Discard(), c.metricsProto)
	ep.SetHandler(c.handle)
	return c
}

// SetMetrics points the client's telemetry at reg, labeled with the
// client's protocol. Like SetClock, call before traffic starts;
// metrics are discarded until then.
func (c *CentralizedClient) SetMetrics(reg *metrics.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nm = NewNodeMetrics(reg, c.metricsProto)
}

func (c *CentralizedClient) nodeMetrics() *NodeMetrics {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nm
}

// SetTracer installs the client's span recorder (nil disables
// tracing, the default). Call before traffic starts.
func (c *CentralizedClient) SetTracer(t *trace.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

func (c *CentralizedClient) tr() *trace.Tracer {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tracer
}

// PeerID implements Network.
func (c *CentralizedClient) PeerID() transport.PeerID { return c.ep.ID() }

// SetClock installs the clock that paces this client's timeouts
// (default wall). Call before traffic starts.
func (c *CentralizedClient) SetClock(clk dsim.Clock) {
	if clk != nil {
		c.clk = clk
	}
}

// SetCodec installs the wire codec (default codec.Default). Call
// before traffic starts, and use one codec network-wide.
func (c *CentralizedClient) SetCodec(cd codec.Codec) {
	if cd != nil {
		c.cdc = cd
	}
}

// Server returns the index server (or super-peer) this client is
// currently attached to.
func (c *CentralizedClient) Server() transport.PeerID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.server
}

// SetAttachmentProvider implements Network.
func (c *CentralizedClient) SetAttachmentProvider(p AttachmentProvider) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attach = p
}

// Publish implements Network: store locally, register centrally.
func (c *CentralizedClient) Publish(doc *index.Document) error {
	if err := c.store.Put(doc); err != nil {
		return err
	}
	c.nodeMetrics().Publishes.Inc()
	sp := c.tr().Root("publish")
	sp.SetPeer(string(c.Server()))
	sp.SetCommunity(doc.CommunityID)
	defer sp.Finish()
	tctx := sp.Context()
	reg := registerPayloadFor(doc)
	payload := c.cdc.Encode(&reg)
	sp.AddMsgs(1, int64(len(payload)))
	return c.ep.Send(transport.Message{
		To:      c.Server(),
		Type:    MsgRegister,
		Payload: payload,
		TraceID: tctx.Trace,
		SpanID:  tctx.Span,
	})
}

// PublishBatch implements Network: one local store batch plus one
// register-batch frame per chunk, so bulk publication costs one shard
// lock round and one server message per few hundred documents instead
// of one each per document.
func (c *CentralizedClient) PublishBatch(docs []*index.Document) error {
	if len(docs) == 0 {
		return nil
	}
	if err := c.store.PutBatch(docs); err != nil {
		return err
	}
	c.nodeMetrics().Publishes.Add(int64(len(docs)))
	return c.registerBatch(c.Server(), docs)
}

// registerBatch streams docs to the given server in register-batch
// chunks, recorded as one "register" root span when sampled.
func (c *CentralizedClient) registerBatch(server transport.PeerID, docs []*index.Document) error {
	sp := c.tr().Root("register")
	sp.SetPeer(string(server))
	defer sp.Finish()
	tctx := sp.Context()
	for start := 0; start < len(docs); start += registerBatchChunk {
		end := start + registerBatchChunk
		if end > len(docs) {
			end = len(docs)
		}
		regs := make([]registerPayload, 0, end-start)
		for _, doc := range docs[start:end] {
			regs = append(regs, registerPayloadFor(doc))
		}
		payload := c.cdc.Encode(&registerBatchPayload{Docs: regs})
		err := c.ep.Send(transport.Message{
			To:      server,
			Type:    MsgRegisterBatch,
			Payload: payload,
			TraceID: tctx.Trace,
			SpanID:  tctx.Span,
		})
		sp.AddMsgs(1, int64(len(payload)))
		if err != nil {
			sp.SetErr(err)
			return err
		}
	}
	return nil
}

// Rehome repoints the client at a new server (FastTrack leaves call
// this when their super-peer fails) and re-registers every locally
// stored document with it — ReannounceLocal over the register-batch
// wire path, driven by the caller's failure-detection schedule rather
// than an internal wall-clock timer.
func (c *CentralizedClient) Rehome(server transport.PeerID) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.server = server
	c.mu.Unlock()
	return ReannounceLocal(c.store, func(docs []*index.Document) error {
		return c.registerBatch(server, docs)
	})
}

// Unpublish implements Network.
func (c *CentralizedClient) Unpublish(id index.DocID) error {
	c.store.Delete(id)
	return c.ep.Send(transport.Message{
		To:      c.Server(),
		Type:    MsgUnregister,
		Payload: c.cdc.Encode(&unregisterPayload{DocID: id}),
	})
}

// Search implements Network: one round trip to the index server.
func (c *CentralizedClient) Search(communityID string, f query.Filter, opts SearchOptions) ([]Result, error) {
	if f == nil {
		f = query.MatchAll{}
	}
	nm := c.nodeMetrics()
	start := c.clk.Now()
	sp := c.tr().Start(opts.Trace, "search")
	sp.SetCommunity(communityID)
	sp.SetPeer(string(c.Server()))
	defer sp.Finish()
	tctx := sp.ContextOr(opts.Trace)
	reqID, ch := c.pending.Create()
	payload := c.cdc.Encode(&searchPayload{
		ReqID:       reqID,
		CommunityID: communityID,
		Filter:      f.String(),
		Limit:       opts.Limit,
	})
	err := c.ep.Send(transport.Message{
		To:      c.Server(),
		Type:    MsgSearch,
		Payload: payload,
		TraceID: tctx.Trace,
		SpanID:  tctx.Span,
	})
	sp.AddMsgs(1, int64(len(payload)))
	if err != nil {
		c.pending.Drop(reqID)
		nm.CountError(err)
		sp.SetErr(err)
		return nil, fmt.Errorf("p2p: search: %w", err)
	}
	got, err := Await(c.clk, c.ep.Synchronous(), ch, opts.Timeout)
	if err != nil {
		c.pending.Drop(reqID)
		nm.CountError(err)
		sp.SetErr(err)
		return nil, err
	}
	hit, ok := got.(*searchHitPayload)
	if !ok {
		return nil, fmt.Errorf("p2p: search reply: unexpected frame %T", got)
	}
	nm.ObserveSearch(c.clk, start, len(hit.Results))
	return hit.Results, nil
}

// Retrieve implements Network: direct peer-to-peer download.
func (c *CentralizedClient) Retrieve(id index.DocID, from transport.PeerID) (*index.Document, error) {
	if from == c.PeerID() {
		return c.store.Get(id)
	}
	nm := c.nodeMetrics()
	sp := c.tr().Root("fetch")
	sp.SetPeer(string(from))
	defer sp.Finish()
	doc, err := RetrieveFrom(c.cdc, c.clk, c.ep, c.pending, &sp, id, from, 0)
	if err != nil {
		nm.CountError(err)
		return nil, err
	}
	nm.Fetches.Inc()
	return doc, nil
}

// RetrieveAttachment implements Network.
func (c *CentralizedClient) RetrieveAttachment(uri string, from transport.PeerID) ([]byte, error) {
	sp := c.tr().Root("attachment")
	sp.SetPeer(string(from))
	defer sp.Finish()
	return RetrieveAttachmentFrom(c.cdc, c.clk, c.ep, c.pending, &sp, uri, from, 0)
}

// Close implements Network.
func (c *CentralizedClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.ep.Close()
}

func (c *CentralizedClient) handle(msg transport.Message) {
	switch msg.Type {
	case MsgSearchHit:
		var hit searchHitPayload
		if err := c.cdc.DecodeValue(&hit, msg.Payload); err != nil {
			return
		}
		c.pending.Resolve(hit.ReqID, &hit)
	case MsgFetchReply, MsgAttachmentReply:
		ResolveRetrievalReply(c.cdc, c.pending, msg)
	case MsgFetch:
		ServeFetch(c.cdc, c.tr(), c.ep, c.store, msg)
	case MsgAttachment:
		c.mu.RLock()
		p := c.attach
		c.mu.RUnlock()
		ServeAttachment(c.cdc, c.tr(), c.ep, p, msg)
	}
}

// timeoutOr returns opts timeout or the default.
func timeoutOr(d time.Duration) time.Duration {
	if d <= 0 {
		return DefaultTimeout
	}
	return d
}
