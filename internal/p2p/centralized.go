package p2p

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/transport"
)

// IndexServer is the Napster-style central index. It stores only
// metadata (attributes + provider); objects stay on their publishing
// peers and are fetched peer-to-peer, exactly like Napster's split
// between central search and direct download.
type IndexServer struct {
	ep transport.Endpoint

	mu      sync.RWMutex
	entries map[index.DocID][]serverEntry // replicas share a DocID
}

type serverEntry struct {
	provider    transport.PeerID
	communityID string
	title       string
	attrs       query.Attrs
}

// NewIndexServer attaches a server to the given endpoint.
func NewIndexServer(ep transport.Endpoint) *IndexServer {
	s := &IndexServer{
		ep:      ep,
		entries: make(map[index.DocID][]serverEntry),
	}
	ep.SetHandler(s.handle)
	return s
}

// Len returns the number of distinct registered documents.
func (s *IndexServer) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// DropPeer removes all registrations from a peer (simulating a peer
// disconnect noticed by the server).
func (s *IndexServer) DropPeer(peer transport.PeerID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, entries := range s.entries {
		kept := entries[:0]
		for _, e := range entries {
			if e.provider != peer {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(s.entries, id)
		} else {
			s.entries[id] = kept
		}
	}
}

func (s *IndexServer) handle(msg transport.Message) {
	switch msg.Type {
	case MsgRegister:
		var reg registerPayload
		if err := json.Unmarshal(msg.Payload, &reg); err != nil {
			return
		}
		s.mu.Lock()
		entries := s.entries[reg.DocID]
		replaced := false
		for i, e := range entries {
			if e.provider == msg.From {
				entries[i] = serverEntry{msg.From, reg.CommunityID, reg.Title, reg.Attrs}
				replaced = true
				break
			}
		}
		if !replaced {
			entries = append(entries, serverEntry{msg.From, reg.CommunityID, reg.Title, reg.Attrs})
		}
		s.entries[reg.DocID] = entries
		s.mu.Unlock()
	case MsgUnregister:
		var unreg unregisterPayload
		if err := json.Unmarshal(msg.Payload, &unreg); err != nil {
			return
		}
		s.mu.Lock()
		entries := s.entries[unreg.DocID]
		kept := entries[:0]
		for _, e := range entries {
			if e.provider != msg.From {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(s.entries, unreg.DocID)
		} else {
			s.entries[unreg.DocID] = kept
		}
		s.mu.Unlock()
	case MsgSearch:
		var req searchPayload
		if err := json.Unmarshal(msg.Payload, &req); err != nil {
			return
		}
		f, err := query.Parse(req.Filter)
		if err != nil {
			f = query.MatchAll{}
		}
		results := s.search(req.CommunityID, f, req.Limit)
		_ = s.ep.Send(transport.Message{
			To:      msg.From,
			Type:    MsgSearchHit,
			Payload: marshal(searchHitPayload{ReqID: req.ReqID, Results: results}),
		})
	}
}

func (s *IndexServer) search(communityID string, f query.Filter, limit int) []Result {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Result
	ids := make([]index.DocID, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, e := range s.entries[id] {
			if communityID != "" && e.communityID != communityID {
				continue
			}
			if !f.Match(e.attrs) {
				continue
			}
			out = append(out, Result{
				DocID:       id,
				Provider:    e.provider,
				CommunityID: e.communityID,
				Title:       e.title,
				Attrs:       e.attrs,
			})
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// CentralizedClient is a peer in the centralized protocol: it keeps
// its shared objects in a local store, registers their metadata with
// the index server, and serves fetches from other peers directly.
type CentralizedClient struct {
	ep      transport.Endpoint
	server  transport.PeerID
	store   *index.Store
	pending *pendingTable

	mu     sync.RWMutex
	attach AttachmentProvider
	closed bool
}

var _ Network = (*CentralizedClient)(nil)

// NewCentralizedClient attaches a client to the network; server is the
// index server's peer ID. store holds the peer's shared objects.
func NewCentralizedClient(ep transport.Endpoint, server transport.PeerID, store *index.Store) *CentralizedClient {
	c := &CentralizedClient{
		ep:      ep,
		server:  server,
		store:   store,
		pending: newPendingTable(),
	}
	ep.SetHandler(c.handle)
	return c
}

// PeerID implements Network.
func (c *CentralizedClient) PeerID() transport.PeerID { return c.ep.ID() }

// SetAttachmentProvider implements Network.
func (c *CentralizedClient) SetAttachmentProvider(p AttachmentProvider) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attach = p
}

// Publish implements Network: store locally, register centrally.
func (c *CentralizedClient) Publish(doc *index.Document) error {
	if err := c.store.Put(doc); err != nil {
		return err
	}
	return c.ep.Send(transport.Message{
		To:   c.server,
		Type: MsgRegister,
		Payload: marshal(registerPayload{
			DocID:       doc.ID,
			CommunityID: doc.CommunityID,
			Title:       doc.Title,
			Attrs:       doc.Attrs,
		}),
	})
}

// Unpublish implements Network.
func (c *CentralizedClient) Unpublish(id index.DocID) error {
	c.store.Delete(id)
	return c.ep.Send(transport.Message{
		To:      c.server,
		Type:    MsgUnregister,
		Payload: marshal(unregisterPayload{DocID: id}),
	})
}

// Search implements Network: one round trip to the index server.
func (c *CentralizedClient) Search(communityID string, f query.Filter, opts SearchOptions) ([]Result, error) {
	if f == nil {
		f = query.MatchAll{}
	}
	reqID, ch := c.pending.create()
	err := c.ep.Send(transport.Message{
		To:   c.server,
		Type: MsgSearch,
		Payload: marshal(searchPayload{
			ReqID:       reqID,
			CommunityID: communityID,
			Filter:      f.String(),
			Limit:       opts.Limit,
		}),
	})
	if err != nil {
		c.pending.drop(reqID)
		return nil, fmt.Errorf("p2p: search: %w", err)
	}
	raw, err := await(ch, opts.Timeout)
	if err != nil {
		c.pending.drop(reqID)
		return nil, err
	}
	var hit searchHitPayload
	if err := json.Unmarshal(raw, &hit); err != nil {
		return nil, fmt.Errorf("p2p: search reply: %w", err)
	}
	return hit.Results, nil
}

// Retrieve implements Network: direct peer-to-peer download.
func (c *CentralizedClient) Retrieve(id index.DocID, from transport.PeerID) (*index.Document, error) {
	if from == c.PeerID() {
		return c.store.Get(id)
	}
	return retrieveFrom(c.ep, c.pending, id, from, 0)
}

// RetrieveAttachment implements Network.
func (c *CentralizedClient) RetrieveAttachment(uri string, from transport.PeerID) ([]byte, error) {
	return retrieveAttachmentFrom(c.ep, c.pending, uri, from, 0)
}

// Close implements Network.
func (c *CentralizedClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.ep.Close()
}

func (c *CentralizedClient) handle(msg transport.Message) {
	switch msg.Type {
	case MsgSearchHit:
		var hit searchHitPayload
		if err := json.Unmarshal(msg.Payload, &hit); err != nil {
			return
		}
		c.pending.resolve(hit.ReqID, msg.Payload)
	case MsgFetchReply:
		var reply fetchReplyPayload
		if err := json.Unmarshal(msg.Payload, &reply); err != nil {
			return
		}
		c.pending.resolve(reply.ReqID, msg.Payload)
	case MsgAttachmentReply:
		var reply attachmentReplyPayload
		if err := json.Unmarshal(msg.Payload, &reply); err != nil {
			return
		}
		c.pending.resolve(reply.ReqID, msg.Payload)
	case MsgFetch:
		serveFetch(c.ep, c.store, msg)
	case MsgAttachment:
		c.mu.RLock()
		p := c.attach
		c.mu.RUnlock()
		serveAttachment(c.ep, p, msg)
	}
}

// timeoutOr returns opts timeout or the default.
func timeoutOr(d time.Duration) time.Duration {
	if d <= 0 {
		return DefaultTimeout
	}
	return d
}
