package p2p

import (
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/transport"
)

func TestDiscoverFindsPeersBeyondNeighbors(t *testing.T) {
	// Line: g0 - g1 - g2 - g3. g0 knows only g1.
	f := newGnutellaLine(t, 4)
	if got := len(f.nodes[0].Neighbors()); got != 1 {
		t.Fatalf("initial neighbors = %d", got)
	}
	added := f.nodes[0].Discover(3)
	// TTL 3 reaches g1 (pong), g2 (pong), g3 (pong): g2 and g3 are new.
	if len(added) != 2 {
		t.Fatalf("discovered = %v", added)
	}
	if got := len(f.nodes[0].Neighbors()); got != 3 {
		t.Errorf("neighbors after discover = %d, want 3", got)
	}
	// The new links are live: a TTL-1 search now reaches g3 directly.
	f.nodes[3].Publish(doc("far", "c", "Far", map[string]string{"k": "v"}))
	rs, err := f.nodes[0].Search("c", query.MustParse("(k=v)"), SearchOptions{TTL: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Errorf("search over discovered link = %+v", rs)
	}
}

func TestDiscoverRespectsMaxNeighbors(t *testing.T) {
	// A star of 12 nodes around a hub; an outsider connected to the hub
	// discovers them all but links only up to MaxNeighbors.
	net := transport.NewMemNetwork()
	hubEP, err := net.Endpoint("hub")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewGnutellaNode(hubEP, index.NewStore())
	for i := 0; i < 12; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("s%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		n := NewGnutellaNode(ep, index.NewStore())
		n.AddNeighbor(hub.PeerID())
		hub.AddNeighbor(n.PeerID())
	}
	outEP, err := net.Endpoint("outsider")
	if err != nil {
		t.Fatal(err)
	}
	outsider := NewGnutellaNode(outEP, index.NewStore())
	outsider.AddNeighbor(hub.PeerID())
	hub.AddNeighbor(outsider.PeerID())

	outsider.Discover(2)
	if got := len(outsider.Neighbors()); got > MaxNeighbors {
		t.Errorf("neighbors = %d, exceeds cap %d", got, MaxNeighbors)
	}
	if got := len(outsider.Neighbors()); got <= 1 {
		t.Errorf("discovery added nothing: %d", got)
	}
}

func TestDiscoverIdempotentAndClosed(t *testing.T) {
	f := newGnutellaLine(t, 3)
	f.nodes[0].Discover(3)
	before := len(f.nodes[0].Neighbors())
	// Second discovery: everyone already known.
	added := f.nodes[0].Discover(3)
	if len(added) != 0 {
		t.Errorf("rediscovered = %v", added)
	}
	if got := len(f.nodes[0].Neighbors()); got != before {
		t.Errorf("neighbors changed: %d -> %d", before, got)
	}
	f.nodes[0].Close()
	if got := f.nodes[0].Discover(3); got != nil {
		t.Errorf("closed node discovered %v", got)
	}
}

func TestPingPongDoesNotDisturbSearch(t *testing.T) {
	f := newGnutellaLine(t, 4)
	f.nodes[2].Publish(doc("d", "c", "T", map[string]string{"k": "v"}))
	f.nodes[0].Discover(2)
	rs, err := f.nodes[0].Search("c", query.MustParse("(k=v)"), SearchOptions{TTL: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Errorf("search after discovery = %+v", rs)
	}
}
