package p2p

import (
	"sync"

	"repro/internal/transport"
)

// Gnutella Ping/Pong peer discovery (protocol v0.4 descriptors 0x00
// and 0x01): a Ping floods like a query; every node that receives it
// answers with a Pong carrying its address, routed back along the
// reverse path. The originator learns of peers beyond its immediate
// neighbors and links to them, growing the overlay without any
// central directory — the mechanism real Gnutella used after the
// initial bootstrap hosts.

// Ping/Pong message types.
const (
	MsgPing = "ping"
	MsgPong = "pong"
)

type pingPayload struct {
	GUID   uint64           `json:"guid"`
	Origin transport.PeerID `json:"origin"`
	TTL    int              `json:"ttl"`
	Hops   int              `json:"hops"`
}

type pongPayload struct {
	GUID uint64           `json:"guid"`
	Peer transport.PeerID `json:"peer"`
	Hops int              `json:"hops"`
}

// MaxNeighbors caps a node's overlay degree during discovery, like the
// connection limits of real Gnutella servents.
const MaxNeighbors = 8

// discoveryState tracks outstanding pings on a GnutellaNode.
type discoveryState struct {
	mu sync.Mutex
	// pongs collects discovered peers for pings this node originated.
	pongs map[uint64][]transport.PeerID
}

func newDiscoveryState() *discoveryState {
	return &discoveryState{pongs: make(map[uint64][]transport.PeerID)}
}

// Discover floods a Ping with the given TTL and links to every peer
// that answers, up to MaxNeighbors total neighbors. It returns the
// newly discovered peers. On the synchronous simulator all pongs have
// arrived when the sends return.
func (g *GnutellaNode) Discover(ttl int) []transport.PeerID {
	if ttl <= 0 {
		ttl = 2
	}
	guid := g.guids.next()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	if g.disc == nil {
		g.disc = newDiscoveryState()
	}
	g.seen[guid] = g.ep.ID()
	neighbors := g.neighborList()
	g.mu.Unlock()
	g.disc.mu.Lock()
	g.disc.pongs[guid] = nil
	g.disc.mu.Unlock()

	payload := g.cdc.Encode(&pingPayload{GUID: guid, Origin: g.ep.ID(), TTL: ttl})
	for _, n := range neighbors {
		_ = g.ep.Send(transport.Message{To: n, Type: MsgPing, Payload: payload})
	}

	g.disc.mu.Lock()
	discovered := g.disc.pongs[guid]
	delete(g.disc.pongs, guid)
	g.disc.mu.Unlock()

	var added []transport.PeerID
	for _, peer := range discovered {
		g.mu.Lock()
		grown := peerSliceAdd(g.neighbors, peer)
		if len(grown) > len(g.neighbors) && len(g.neighbors) < MaxNeighbors && peer != g.ep.ID() {
			g.neighbors = grown
			added = append(added, peer)
		}
		g.mu.Unlock()
	}
	return added
}

// handlePing answers with a Pong and forwards the flood.
func (g *GnutellaNode) handlePing(msg transport.Message) {
	var p pingPayload
	if err := g.cdc.DecodeValue(&p, msg.Payload); err != nil {
		return
	}
	g.mu.Lock()
	if _, dup := g.seen[p.GUID]; dup {
		g.mu.Unlock()
		return
	}
	g.seen[p.GUID] = msg.From
	neighbors := g.neighborList()
	g.mu.Unlock()
	hops := p.Hops + 1
	// Pong back toward the origin along the reverse path.
	_ = g.ep.Send(transport.Message{
		To:      msg.From,
		Type:    MsgPong,
		Payload: g.cdc.Encode(&pongPayload{GUID: p.GUID, Peer: g.ep.ID(), Hops: hops}),
	})
	if p.TTL <= 1 {
		return
	}
	fwd := p
	fwd.TTL--
	fwd.Hops = hops
	payload := g.cdc.Encode(&fwd)
	for _, n := range neighbors {
		if n != msg.From {
			_ = g.ep.Send(transport.Message{To: n, Type: MsgPing, Payload: payload})
		}
	}
}

// handlePong collects at the origin or relays backward.
func (g *GnutellaNode) handlePong(msg transport.Message) {
	var p pongPayload
	if err := g.cdc.DecodeValue(&p, msg.Payload); err != nil {
		return
	}
	g.mu.RLock()
	disc := g.disc
	back, seen := g.seen[p.GUID]
	self := g.ep.ID()
	g.mu.RUnlock()
	if disc != nil {
		disc.mu.Lock()
		if _, mine := disc.pongs[p.GUID]; mine {
			disc.pongs[p.GUID] = append(disc.pongs[p.GUID], p.Peer)
			disc.mu.Unlock()
			return
		}
		disc.mu.Unlock()
	}
	if !seen || back == self {
		return
	}
	_ = g.ep.Send(transport.Message{To: back, Type: MsgPong, Payload: msg.Payload})
}
