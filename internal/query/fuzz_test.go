package query

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestPropertyParserNeverPanics feeds the parser adversarial strings
// assembled from the filter grammar's alphabet: it must either parse
// or return an error, never panic, and parsed filters must evaluate
// without panicking. (Evaluation-correctness fuzzing — random filters
// against corpus-generated documents, checked against a naive linear
// scan — lives in fuzz_corpus_test.go, in the external test package so
// it can import the store.)
func TestPropertyParserNeverPanics(t *testing.T) {
	alphabet := []string{
		"(", ")", "&", "|", "!", "=", "~=", ">=", "<=", ">", "<", "*",
		"a", "title", "keywords", "1994", " ", "value", "(&", "))", "(a=b)",
	}
	attrs := Attrs{"a": {"b"}, "title": {"value"}, "keywords": {"1994"}}
	f := func(seed int64, length uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		n := int(length%24) + 1
		for i := 0; i < n; i++ {
			b.WriteString(alphabet[r.Intn(len(alphabet))])
		}
		filter, err := Parse(b.String())
		if err != nil {
			return true
		}
		filter.Match(attrs) // must not panic
		reparsed, err := Parse(filter.String())
		if err != nil {
			t.Logf("canonical form unparseable: %q -> %q: %v", b.String(), filter.String(), err)
			return false
		}
		return reparsed.Match(attrs) == filter.Match(attrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropertyWildcardConsistency: wildcardMatch on a pattern without
// '*' equals case-insensitive equality.
func TestPropertyWildcardConsistency(t *testing.T) {
	words := []string{"Observer", "observer", "OBSERVER", "Visitor", "obs", ""}
	f := func(pi, vi uint8) bool {
		p := words[int(pi)%len(words)]
		v := words[int(vi)%len(words)]
		if strings.ContainsRune(p, '*') {
			return true
		}
		return wildcardMatch(p, v) == strings.EqualFold(p, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyComplementConsistency: f and (!f) never agree.
func TestPropertyComplementConsistency(t *testing.T) {
	filters := []string{
		"(a=1)", "(a~=x)", "(a>=2)", "(&(a=1)(b=2))", "(|(a=1)(b=2))",
	}
	vals := []string{"1", "2", "x", "xy", ""}
	f := func(fi, av, bv uint8) bool {
		base := MustParse(filters[int(fi)%len(filters)])
		neg := &Not{Sub: base}
		attrs := Attrs{"a": {vals[int(av)%len(vals)]}, "b": {vals[int(bv)%len(vals)]}}
		return base.Match(attrs) != neg.Match(attrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
