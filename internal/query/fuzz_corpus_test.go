// Fuzzing filters against corpus-generated documents: where
// fuzz_test.go (package query) round-trips the parser on adversarial
// strings, this file (package query_test, so it may import the store
// that itself imports query) generates random but well-formed filters
// and checks the sharded, inverted-index-accelerated store returns
// exactly the documents a naive linear scan matches — the oracle that
// keeps index acceleration honest (its candidate pruning must stay a
// superset, its post-filter exact).
package query_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/query"
)

// corpusAttrs extracts a query.Attrs view of a generated pattern
// object directly from its XML children (independent of the stylegen
// indexing pipeline, so this test exercises query+index only).
func corpusAttrs(o corpus.Object) query.Attrs {
	attrs := query.Attrs{}
	for _, field := range []string{"name", "classification", "intent", "keywords", "applicability", "participants"} {
		for _, n := range o.Doc.ChildrenNamed(field) {
			if v := strings.TrimSpace(n.Text()); v != "" {
				attrs.Add(field, v)
			}
		}
	}
	return attrs
}

// filterGen builds random well-formed filters over the corpus
// vocabulary: assertions with every operator, wildcards, and nested
// and/or/not combinations.
type filterGen struct {
	r      *rand.Rand
	fields []string
	values []string
}

func newFilterGen(r *rand.Rand, docs []query.Attrs) *filterGen {
	g := &filterGen{
		r:      r,
		fields: []string{"name", "classification", "intent", "keywords", "participants", "nosuchfield"},
	}
	seen := map[string]bool{}
	for _, attrs := range docs {
		for _, vals := range attrs {
			for _, v := range vals {
				if !seen[v] {
					seen[v] = true
					g.values = append(g.values, v)
				}
			}
		}
	}
	// Values that match nothing, and wildcard fodder.
	g.values = append(g.values, "zzz-absent", "*", "Ob*er", "*pattern*")
	return g
}

func (g *filterGen) value() string {
	v := g.values[g.r.Intn(len(g.values))]
	// Occasionally take a fragment to exercise substring/wildcard ops.
	if len(v) > 4 && g.r.Intn(3) == 0 {
		v = v[1 : len(v)-1]
	}
	// Filter syntax reserves these; the parser would reject them inside
	// a value.
	v = strings.Map(func(r rune) rune {
		switch r {
		case '(', ')', '&', '|', '!', '=', '<', '>', '~':
			return ' '
		}
		return r
	}, v)
	if strings.TrimSpace(v) == "" {
		v = "x"
	}
	return v
}

func (g *filterGen) filter(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		field := g.fields[g.r.Intn(len(g.fields))]
		op := []string{"=", "~=", ">=", "<=", ">", "<"}[g.r.Intn(6)]
		return fmt.Sprintf("(%s%s%s)", field, op, g.value())
	}
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprintf("(&%s%s)", g.filter(depth-1), g.filter(depth-1))
	case 1:
		return fmt.Sprintf("(|%s%s)", g.filter(depth-1), g.filter(depth-1))
	default:
		return fmt.Sprintf("(!%s)", g.filter(depth-1))
	}
}

// TestPropertyStoreMatchesLinearScan: for random filters over a
// corpus-backed store, Store.Search returns exactly the IDs a linear
// Filter.Match scan selects, in every store configuration (sharded and
// single-lock, cached and uncached).
func TestPropertyStoreMatchesLinearScan(t *testing.T) {
	objs := corpus.DesignPatterns(60, 19).Objects
	attrs := make([]query.Attrs, len(objs))
	for i, o := range objs {
		attrs[i] = corpusAttrs(o)
	}
	stores := map[string]*index.Store{
		"sharded":     index.NewStore(),
		"single-lock": index.NewStore(index.WithShards(1), index.WithCacheSize(0)),
	}
	for _, st := range stores {
		for i := range objs {
			if err := st.Put(&index.Document{
				ID:          index.DocID(fmt.Sprintf("p%03d", i)),
				CommunityID: "patterns",
				Attrs:       attrs[i],
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	f := func(seed int64) bool {
		g := newFilterGen(rand.New(rand.NewSource(seed)), attrs)
		src := g.filter(3)
		filter, err := query.Parse(src)
		if err != nil {
			t.Logf("generator emitted unparseable filter %q: %v", src, err)
			return false
		}
		want := map[index.DocID]bool{}
		for i := range attrs {
			if filter.Match(attrs[i]) {
				want[index.DocID(fmt.Sprintf("p%03d", i))] = true
			}
		}
		for name, st := range stores {
			got := st.Search("patterns", filter, 0)
			if len(got) != len(want) {
				t.Logf("%s: filter %q: store=%d scan=%d", name, src, len(got), len(want))
				return false
			}
			for _, d := range got {
				if !want[d.ID] {
					t.Logf("%s: filter %q: store returned non-matching %s", name, src, d.ID)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStoreLimitIsPrefix: a limited search returns a prefix of
// the unlimited (ID-sorted) result in both store configurations.
func TestPropertyStoreLimitIsPrefix(t *testing.T) {
	objs := corpus.DesignPatterns(40, 23).Objects
	st := index.NewStore()
	for i, o := range objs {
		if err := st.Put(&index.Document{
			ID:          index.DocID(fmt.Sprintf("p%03d", i)),
			CommunityID: "patterns",
			Attrs:       corpusAttrs(o),
		}); err != nil {
			t.Fatal(err)
		}
	}
	f := func(seed int64, limit uint8) bool {
		g := newFilterGen(rand.New(rand.NewSource(seed)), nil)
		g.values = []string{"*", "behavioral", "Observer", "a"}
		filter, err := query.Parse(g.filter(2))
		if err != nil {
			return false
		}
		full := st.Search("patterns", filter, 0)
		lim := int(limit%12) + 1
		part := st.Search("patterns", filter, lim)
		if len(part) > lim {
			return false
		}
		if len(full) >= lim && len(part) != lim {
			return false
		}
		for i := range part {
			if part[i].ID != full[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
