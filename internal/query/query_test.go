package query

import (
	"strings"
	"testing"
	"testing/quick"
)

func attrs() Attrs {
	return Attrs{
		"title":    {"Observer"},
		"keywords": {"behavioral", "notification", "GoF"},
		"year":     {"1994"},
		"intent":   {"Define a one-to-many dependency between objects"},
	}
}

func mustMatch(t *testing.T, src string, want bool) {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if got := f.Match(attrs()); got != want {
		t.Errorf("%q matched = %v, want %v", src, got, want)
	}
}

func TestAssertions(t *testing.T) {
	mustMatch(t, "(title=Observer)", true)
	mustMatch(t, "(title=observer)", true) // equality is case-insensitive
	mustMatch(t, "(title=Visitor)", false)
	mustMatch(t, "(title=Obs*)", true)
	mustMatch(t, "(title=*server)", true)
	mustMatch(t, "(title=O*s*r)", true)
	mustMatch(t, "(title=O*x*)", false)
	mustMatch(t, "(title=*)", true)
	mustMatch(t, "(missing=*)", false)
	mustMatch(t, "(intent~=one-to-many)", true)
	mustMatch(t, "(intent~=ONE-TO-MANY)", true)
	mustMatch(t, "(intent~=many-to-one)", false)
	mustMatch(t, "(year>=1990)", true)
	mustMatch(t, "(year>1994)", false)
	mustMatch(t, "(year<=1994)", true)
	mustMatch(t, "(year<1800)", false)
}

func TestMultiValuedAttrs(t *testing.T) {
	// Any keyword value can satisfy the assertion.
	mustMatch(t, "(keywords=GoF)", true)
	mustMatch(t, "(keywords=notification)", true)
	mustMatch(t, "(keywords=structural)", false)
}

func TestComposition(t *testing.T) {
	mustMatch(t, "(&(title=Observer)(year>=1990))", true)
	mustMatch(t, "(&(title=Observer)(year>2000))", false)
	mustMatch(t, "(|(title=Visitor)(title=Observer))", true)
	mustMatch(t, "(|(title=Visitor)(title=Strategy))", false)
	mustMatch(t, "(!(title=Visitor))", true)
	mustMatch(t, "(!(title=Observer))", false)
	mustMatch(t, "(&(keywords=GoF)(!(year<1990))(|(title=Obs*)(title=Vis*)))", true)
}

func TestBareShorthand(t *testing.T) {
	mustMatch(t, "title=Observer", true)
	mustMatch(t, "year>=1990", true)
}

func TestMatchAll(t *testing.T) {
	for _, src := range []string{"(*)", "*"} {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if !f.Match(Attrs{}) {
			t.Errorf("%q should match empty attrs", src)
		}
	}
	// As sub-filter.
	mustMatch(t, "(&(*)(title=Observer))", true)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"(",
		"()",
		"(&)",
		"(title)",
		"(=x)",
		"((a=b)",
		"(a=b))",
		"(!(a=b)extra)",
		"(a~b)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"(title=Observer)",
		"(&(a=1)(b=2))",
		"(|(a=1)(!(b~=x))(c>=3))",
		"(keywords=*)",
		"(*)",
	}
	for _, src := range srcs {
		f := MustParse(src)
		again, err := Parse(f.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", f.String(), err)
		}
		if again.String() != f.String() {
			t.Errorf("round trip %q -> %q -> %q", src, f.String(), again.String())
		}
	}
}

func TestReferencedAttributes(t *testing.T) {
	f := MustParse("(&(title=x)(|(year>1990)(title=y))(!(keywords~=z)))")
	got := ReferencedAttributes(f)
	want := []string{"keywords", "title", "year"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("attrs = %v, want %v", got, want)
	}
	if len(ReferencedAttributes(MatchAll{})) != 0 {
		t.Error("MatchAll references attributes")
	}
}

func TestLexicographicComparison(t *testing.T) {
	a := Attrs{"name": {"beta"}}
	f := MustParse("(name>=alpha)")
	if !f.Match(a) {
		t.Error("beta >= alpha failed")
	}
	f = MustParse("(name>beta)")
	if f.Match(a) {
		t.Error("beta > beta matched")
	}
}

func TestAttrsHelpers(t *testing.T) {
	a := Attrs{}
	a.Add("k", "v1")
	a.Add("k", "v2")
	if a.Get("k") != "v1" {
		t.Errorf("Get = %q", a.Get("k"))
	}
	if a.Get("none") != "" {
		t.Error("Get missing != \"\"")
	}
	cl := a.Clone()
	cl.Add("k", "v3")
	if len(a["k"]) != 2 {
		t.Error("Clone aliased values")
	}
}

// Property: De Morgan — !(a&b) ≡ (!a)|(!b) over random attr sets.
func TestPropertyDeMorgan(t *testing.T) {
	lhs := MustParse("(!(&(x=1)(y=1)))")
	rhs := MustParse("(|(!(x=1))(!(y=1)))")
	f := func(xv, yv uint8) bool {
		a := Attrs{
			"x": {itoa(int(xv % 3))},
			"y": {itoa(int(yv % 3))},
		}
		return lhs.Match(a) == rhs.Match(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: parse(f.String()) matches identically to f on random data.
func TestPropertyStringParseEquivalence(t *testing.T) {
	filters := []Filter{
		MustParse("(&(a=1)(b~=x))"),
		MustParse("(|(a>=2)(!(b=yes)))"),
		MustParse("(a=w*ld)"),
	}
	vals := []string{"1", "2", "x", "yes", "world", "wld", ""}
	f := func(fi, av, bv uint8) bool {
		orig := filters[int(fi)%len(filters)]
		reparsed := MustParse(orig.String())
		a := Attrs{"a": {vals[int(av)%len(vals)]}, "b": {vals[int(bv)%len(vals)]}}
		return orig.Match(a) == reparsed.Match(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: wildcard '*' alone matches any non-empty value set.
func TestPropertyPresence(t *testing.T) {
	f := MustParse("(k=*)")
	prop := func(v string) bool {
		return f.Match(Attrs{"k": {v}})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}
