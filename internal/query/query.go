// Package query implements the attribute-filter language U-P2P uses
// between servent and metadata store. The paper's prototype formatted
// these as CMIP queries over the Magenta agent framework; we reproduce
// the same expressive power (attribute assertions composed with
// and/or/not) with an LDAP-style concrete syntax, which is the closest
// widely-understood notation for CMIP-like filters:
//
//	(title=Observer)              exact match
//	(title=Obs*)                  wildcard match
//	(title=*)                     presence
//	(keywords~=behavioral)        case-insensitive substring
//	(year>=1994) (year<2000)      ordering (numeric when both sides parse)
//	(&(a=1)(b=2))  (|(a=1)(a=2))  (!(a=1))   composition
//
// Attributes are multi-valued: an assertion holds when any value
// matches, which models repeated XML elements (e.g. several keywords).
package query

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Attrs is the attribute set a filter evaluates against: the indexed
// fields extracted from one shared XML object.
type Attrs map[string][]string

// Add appends a value to an attribute.
func (a Attrs) Add(name, value string) {
	a[name] = append(a[name], value)
}

// Get returns the first value of an attribute, or "".
func (a Attrs) Get(name string) string {
	if vs := a[name]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Clone deep-copies the attribute set.
func (a Attrs) Clone() Attrs {
	out := make(Attrs, len(a))
	for k, vs := range a {
		out[k] = append([]string(nil), vs...)
	}
	return out
}

// Filter is a parsed query filter.
type Filter interface {
	// Match reports whether the attribute set satisfies the filter.
	Match(Attrs) bool
	// String renders the canonical textual form (parseable by Parse).
	String() string
	// Attributes appends the attribute names the filter references.
	Attributes(into []string) []string
}

// Op is a comparison operator in an assertion.
type Op int

// Comparison operators.
const (
	OpEq       Op = iota + 1 // =, with * wildcards; (a=*) is presence
	OpContains               // ~= case-insensitive substring
	OpGe                     // >=
	OpLe                     // <=
	OpGt                     // >
	OpLt                     // <
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpContains:
		return "~="
	case OpGe:
		return ">="
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpLt:
		return "<"
	default:
		return "?"
	}
}

// Assertion is a single attribute comparison.
type Assertion struct {
	Attr  string
	Op    Op
	Value string
}

// Match implements Filter.
func (a *Assertion) Match(attrs Attrs) bool {
	vals := attrs[a.Attr]
	if a.Op == OpEq && a.Value == "*" {
		return len(vals) > 0
	}
	for _, v := range vals {
		if a.matchValue(v) {
			return true
		}
	}
	return false
}

func (a *Assertion) matchValue(v string) bool {
	switch a.Op {
	case OpEq:
		if strings.ContainsRune(a.Value, '*') {
			return wildcardMatch(a.Value, v)
		}
		if strings.EqualFold(v, a.Value) {
			return true
		}
		// Word-level equality: "(title=blue)" matches "Kind of Blue".
		// This mirrors how the metadata index tokenizes values, so a
		// user searching a single word finds multi-word fields.
		if !strings.ContainsAny(a.Value, " \t") {
			for _, w := range strings.Fields(v) {
				if strings.EqualFold(strings.Trim(w, ",.;:!?\"'()"), a.Value) {
					return true
				}
			}
		}
		return false
	case OpContains:
		return strings.Contains(strings.ToLower(v), strings.ToLower(a.Value))
	case OpGe, OpLe, OpGt, OpLt:
		return compareOrdered(v, a.Value, a.Op)
	default:
		return false
	}
}

// compareOrdered compares numerically when both operands parse as
// numbers, lexicographically otherwise.
func compareOrdered(have, want string, op Op) bool {
	hf, herr := strconv.ParseFloat(strings.TrimSpace(have), 64)
	wf, werr := strconv.ParseFloat(strings.TrimSpace(want), 64)
	var cmp int
	if herr == nil && werr == nil {
		switch {
		case hf < wf:
			cmp = -1
		case hf > wf:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(have, want)
	}
	switch op {
	case OpGe:
		return cmp >= 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpLt:
		return cmp < 0
	}
	return false
}

// wildcardMatch matches v against a pattern with '*' wildcards,
// case-insensitively.
func wildcardMatch(pattern, v string) bool {
	p := strings.ToLower(pattern)
	s := strings.ToLower(v)
	parts := strings.Split(p, "*")
	if len(parts) == 1 {
		// No '*' at all: plain case-insensitive equality.
		return s == p
	}
	// Leading segment must prefix; trailing must suffix; middles in order.
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	last := parts[len(parts)-1]
	middles := parts[1 : len(parts)-1]
	for _, m := range middles {
		if m == "" {
			continue
		}
		i := strings.Index(s, m)
		if i < 0 {
			return false
		}
		s = s[i+len(m):]
	}
	return strings.HasSuffix(s, last)
}

// String implements Filter.
func (a *Assertion) String() string {
	return "(" + a.Attr + a.Op.String() + a.Value + ")"
}

// Attributes implements Filter.
func (a *Assertion) Attributes(into []string) []string { return append(into, a.Attr) }

// And is the conjunction of sub-filters.
type And struct{ Subs []Filter }

// Match implements Filter.
func (f *And) Match(attrs Attrs) bool {
	for _, s := range f.Subs {
		if !s.Match(attrs) {
			return false
		}
	}
	return true
}

// String implements Filter.
func (f *And) String() string { return composite("&", f.Subs) }

// Attributes implements Filter.
func (f *And) Attributes(into []string) []string { return compositeAttrs(into, f.Subs) }

// Or is the disjunction of sub-filters.
type Or struct{ Subs []Filter }

// Match implements Filter.
func (f *Or) Match(attrs Attrs) bool {
	for _, s := range f.Subs {
		if s.Match(attrs) {
			return true
		}
	}
	return false
}

// String implements Filter.
func (f *Or) String() string { return composite("|", f.Subs) }

// Attributes implements Filter.
func (f *Or) Attributes(into []string) []string { return compositeAttrs(into, f.Subs) }

// Not negates a sub-filter.
type Not struct{ Sub Filter }

// Match implements Filter.
func (f *Not) Match(attrs Attrs) bool { return !f.Sub.Match(attrs) }

// String implements Filter.
func (f *Not) String() string { return "(!" + f.Sub.String() + ")" }

// Attributes implements Filter.
func (f *Not) Attributes(into []string) []string { return f.Sub.Attributes(into) }

// MatchAll matches every object (the empty query).
type MatchAll struct{}

// Match implements Filter.
func (MatchAll) Match(Attrs) bool { return true }

// String implements Filter.
func (MatchAll) String() string { return "(*)" }

// Attributes implements Filter.
func (MatchAll) Attributes(into []string) []string { return into }

func composite(op string, subs []Filter) string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(op)
	for _, s := range subs {
		b.WriteString(s.String())
	}
	b.WriteByte(')')
	return b.String()
}

func compositeAttrs(into []string, subs []Filter) []string {
	for _, s := range subs {
		into = s.Attributes(into)
	}
	return into
}

// ReferencedAttributes returns the sorted, de-duplicated attribute
// names a filter touches; the search form uses this to route queries
// at only-indexed fields.
func ReferencedAttributes(f Filter) []string {
	names := f.Attributes(nil)
	sort.Strings(names)
	out := names[:0]
	var prev string
	for i, n := range names {
		if i == 0 || n != prev {
			out = append(out, n)
		}
		prev = n
	}
	return out
}

// --- parser ---

// SyntaxError reports a malformed filter string.
type SyntaxError struct {
	Src string
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query: %s at %d in %q", e.Msg, e.Pos, e.Src)
}

// ErrEmpty is returned for an empty filter string.
var ErrEmpty = errors.New("query: empty filter")

// Parse parses a filter expression. A bare "attr=value" (without
// parentheses) is accepted as shorthand for "(attr=value)". An empty
// or "(*)" filter matches everything.
func Parse(src string) (Filter, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, ErrEmpty
	}
	if s == "(*)" || s == "*" {
		return MatchAll{}, nil
	}
	if !strings.HasPrefix(s, "(") {
		s = "(" + s + ")"
	}
	p := &fparser{src: s}
	f, err := p.parseFilter()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, &SyntaxError{Src: src, Pos: p.pos, Msg: "trailing input"}
	}
	return f, nil
}

// MustParse panics on error; for compiled-in filters.
func MustParse(src string) Filter {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type fparser struct {
	src string
	pos int
}

func (p *fparser) errf(format string, args ...any) error {
	return &SyntaxError{Src: p.src, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *fparser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *fparser) parseFilter() (Filter, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, p.errf("expected '('")
	}
	p.pos++
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, p.errf("unterminated filter")
	}
	switch p.src[p.pos] {
	case '&', '|':
		op := p.src[p.pos]
		p.pos++
		var subs []Filter
		for {
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ')' {
				p.pos++
				break
			}
			sub, err := p.parseFilter()
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
		}
		if len(subs) == 0 {
			return nil, p.errf("empty composite filter")
		}
		if op == '&' {
			return &And{Subs: subs}, nil
		}
		return &Or{Subs: subs}, nil
	case '!':
		p.pos++
		sub, err := p.parseFilter()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, p.errf("expected ')' after negation")
		}
		p.pos++
		return &Not{Sub: sub}, nil
	case '*':
		// "(*)" match-all as a sub-filter.
		p.pos++
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, p.errf("expected ')' after '*'")
		}
		p.pos++
		return MatchAll{}, nil
	default:
		return p.parseAssertion()
	}
}

func (p *fparser) parseAssertion() (Filter, error) {
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune("=<>~()", rune(p.src[p.pos])) {
		p.pos++
	}
	attr := strings.TrimSpace(p.src[start:p.pos])
	if attr == "" {
		return nil, p.errf("missing attribute name")
	}
	if p.pos >= len(p.src) {
		return nil, p.errf("missing operator")
	}
	var op Op
	switch p.src[p.pos] {
	case '=':
		op = OpEq
		p.pos++
	case '~':
		if p.pos+1 >= len(p.src) || p.src[p.pos+1] != '=' {
			return nil, p.errf("expected '~='")
		}
		op = OpContains
		p.pos += 2
	case '>':
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '=' {
			op = OpGe
			p.pos += 2
		} else {
			op = OpGt
			p.pos++
		}
	case '<':
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '=' {
			op = OpLe
			p.pos += 2
		} else {
			op = OpLt
			p.pos++
		}
	default:
		return nil, p.errf("expected operator, got %q", p.src[p.pos])
	}
	vstart := p.pos
	depth := 0
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' {
			depth++
		}
		if c == ')' {
			if depth == 0 {
				break
			}
			depth--
		}
		p.pos++
	}
	if p.pos >= len(p.src) {
		return nil, p.errf("unterminated assertion")
	}
	value := strings.TrimSpace(p.src[vstart:p.pos])
	p.pos++ // consume ')'
	return &Assertion{Attr: attr, Op: op, Value: value}, nil
}
