package xslt

import (
	"fmt"
	"strings"

	"repro/internal/xmldoc"
)

// pattern is a compiled XSLT match pattern: a union of path patterns.
// The supported grammar covers what U-P2P stylesheets need:
//
//	"/"            document root
//	"name"         element by (local or prefixed) name
//	"*"            any element
//	"a/b"          b whose parent matches a
//	"a//b"         b with an ancestor matching a
//	"/a/b"         anchored at the root
//	"text()"       text nodes
//	"node()"       any node
//	"@name", "@*"  attributes
//	"p1 | p2"      union
type pattern struct {
	src  string
	alts []pathPattern
}

// pathPattern is one alternative: a chain of step matchers applied
// from the target node upward.
type pathPattern struct {
	steps    []stepPattern // last step matches the node itself
	anchored bool          // leading '/': first step's parent must be the root
	rootOnly bool          // the pattern "/" itself
}

type stepPattern struct {
	test     string // element name, "*", "text()", "node()", "@name", "@*"
	ancestor bool   // true when separated from the previous step by "//"
}

func compilePattern(src string) (*pattern, error) {
	p := &pattern{src: src}
	for _, alt := range strings.Split(src, "|") {
		alt = strings.TrimSpace(alt)
		if alt == "" {
			return nil, fmt.Errorf("xslt: empty pattern alternative in %q", src)
		}
		pp, err := compilePathPattern(alt)
		if err != nil {
			return nil, err
		}
		p.alts = append(p.alts, pp)
	}
	return p, nil
}

func compilePathPattern(src string) (pathPattern, error) {
	if src == "/" {
		return pathPattern{rootOnly: true}, nil
	}
	pp := pathPattern{}
	rest := src
	if strings.HasPrefix(rest, "//") {
		rest = rest[2:]
	} else if strings.HasPrefix(rest, "/") {
		pp.anchored = true
		rest = rest[1:]
	}
	// Split on '/' but treat "//" as marking the following step as an
	// ancestor-separated step.
	var steps []stepPattern
	ancestorNext := false
	for rest != "" {
		var seg string
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seg = rest[:i]
			if i+1 < len(rest) && rest[i+1] == '/' {
				rest = rest[i+2:]
				steps = append(steps, stepPattern{test: seg, ancestor: ancestorNext})
				ancestorNext = true
				continue
			}
			rest = rest[i+1:]
		} else {
			seg = rest
			rest = ""
		}
		if seg == "" {
			return pathPattern{}, fmt.Errorf("xslt: empty step in pattern %q", src)
		}
		steps = append(steps, stepPattern{test: seg, ancestor: ancestorNext})
		ancestorNext = false
	}
	if len(steps) == 0 {
		return pathPattern{}, fmt.Errorf("xslt: pattern %q has no steps", src)
	}
	for _, st := range steps {
		if err := checkStepTest(st.test); err != nil {
			return pathPattern{}, fmt.Errorf("xslt: pattern %q: %w", src, err)
		}
	}
	pp.steps = steps
	return pp, nil
}

func checkStepTest(test string) error {
	switch {
	case test == "*", test == "text()", test == "node()", test == "comment()", test == "@*":
		return nil
	case strings.HasPrefix(test, "@"):
		return nil
	case strings.ContainsAny(test, "[]()"):
		return fmt.Errorf("unsupported step %q (predicates not allowed in patterns)", test)
	default:
		return nil
	}
}

// matches reports whether the node matches any alternative.
func (p *pattern) matches(n *xmldoc.Node) bool {
	for _, alt := range p.alts {
		if alt.matches(n) {
			return true
		}
	}
	return false
}

func (pp pathPattern) matches(n *xmldoc.Node) bool {
	if pp.rootOnly {
		// The virtual document node used by the executor.
		return n.Name == "#document" && n.Parent == nil
	}
	return matchSteps(n, pp.steps, pp.anchored)
}

// matchSteps checks the step chain right-to-left from n upward.
func matchSteps(n *xmldoc.Node, steps []stepPattern, anchored bool) bool {
	last := steps[len(steps)-1]
	if !stepTestMatches(n, last.test) {
		return false
	}
	rest := steps[:len(steps)-1]
	cur := parentOf(n)
	if len(rest) == 0 {
		if anchored {
			return cur != nil && cur.Name == "#document" || cur == nil
		}
		return true
	}
	prev := rest[len(rest)-1]
	if last.ancestor {
		// Any ancestor chain may satisfy the remaining steps.
		for a := cur; a != nil; a = parentOf(a) {
			if matchSteps(a, rest, anchored) {
				return true
			}
		}
		return false
	}
	_ = prev
	if cur == nil {
		return false
	}
	return matchSteps(cur, rest, anchored)
}

func parentOf(n *xmldoc.Node) *xmldoc.Node { return n.Parent }

func stepTestMatches(n *xmldoc.Node, test string) bool {
	switch test {
	case "node()":
		return true
	case "text()":
		return n.Kind == xmldoc.KindText
	case "comment()":
		return n.Kind == xmldoc.KindComment
	case "*":
		return n.Kind == xmldoc.KindElement && n.Name != "#document"
	case "@*":
		return n.Kind == xmldoc.KindAttribute
	}
	if strings.HasPrefix(test, "@") {
		return n.Kind == xmldoc.KindAttribute && nameTestMatches(n, test[1:])
	}
	return n.Kind == xmldoc.KindElement && nameTestMatches(n, test)
}

func nameTestMatches(n *xmldoc.Node, test string) bool {
	if n.Name == test {
		return true
	}
	if strings.ContainsRune(test, ':') {
		return false
	}
	return n.LocalName() == test
}

// defaultPriority follows the XSLT 1.0 rules: name tests 0, */node
// tests -0.5, multi-step patterns +0.5.
func (p *pattern) defaultPriority() float64 {
	best := -1.0
	for _, alt := range p.alts {
		var pr float64
		switch {
		case alt.rootOnly:
			pr = 0.5
		case len(alt.steps) > 1 || alt.anchored:
			pr = 0.5
		default:
			switch alt.steps[0].test {
			case "*", "node()", "@*":
				pr = -0.5
			case "text()", "comment()":
				pr = -0.5
			default:
				pr = 0
			}
		}
		if pr > best {
			best = pr
		}
	}
	return best
}
