package xslt

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// instruction is one compiled step of a template body.
type instruction interface {
	exec(ex *executor, ctx *execCtx, out *xmldoc.Node) error
}

// compileSequence compiles a template body (children of xsl:template
// or of a compound instruction).
func compileSequence(nodes []*xmldoc.Node) ([]instruction, error) {
	var out []instruction
	for _, n := range nodes {
		switch n.Kind {
		case xmldoc.KindText:
			out = append(out, &literalText{text: n.Data})
		case xmldoc.KindComment:
			// Comments in the stylesheet are dropped.
		case xmldoc.KindElement:
			ins, err := compileElement(n)
			if err != nil {
				return nil, err
			}
			out = append(out, ins)
		}
	}
	return out, nil
}

func compileElement(n *xmldoc.Node) (instruction, error) {
	if n.Prefix() != "xsl" {
		return compileLiteralElement(n)
	}
	switch n.LocalName() {
	case "value-of":
		sel, err := requiredExpr(n, "select")
		if err != nil {
			return nil, err
		}
		return &valueOf{sel: sel}, nil
	case "text":
		return &literalText{text: n.Text()}, nil
	case "apply-templates":
		at := &applyTemplatesIns{}
		if s, ok := n.Attr("select"); ok {
			e, err := xpath.Compile(s)
			if err != nil {
				return nil, fmt.Errorf("xslt: apply-templates: %w", err)
			}
			at.sel = e
		}
		var err error
		at.params, err = compileWithParams(n)
		if err != nil {
			return nil, err
		}
		at.sorts, err = compileSorts(n)
		if err != nil {
			return nil, err
		}
		return at, nil
	case "call-template":
		name, ok := n.Attr("name")
		if !ok {
			return nil, errors.New("xslt: call-template without name")
		}
		params, err := compileWithParams(n)
		if err != nil {
			return nil, err
		}
		return &callTemplate{name: name, params: params}, nil
	case "for-each":
		sel, err := requiredExpr(n, "select")
		if err != nil {
			return nil, err
		}
		sorts, err := compileSorts(n)
		if err != nil {
			return nil, err
		}
		body, err := compileSequence(withoutSorts(n.Children))
		if err != nil {
			return nil, err
		}
		return &forEach{sel: sel, body: body, sorts: sorts}, nil
	case "if":
		test, err := requiredExpr(n, "test")
		if err != nil {
			return nil, err
		}
		body, err := compileSequence(n.Children)
		if err != nil {
			return nil, err
		}
		return &ifIns{test: test, body: body}, nil
	case "choose":
		ch := &choose{}
		for _, c := range n.Elements() {
			switch c.LocalName() {
			case "when":
				test, err := requiredExpr(c, "test")
				if err != nil {
					return nil, err
				}
				body, err := compileSequence(c.Children)
				if err != nil {
					return nil, err
				}
				ch.whens = append(ch.whens, whenClause{test: test, body: body})
			case "otherwise":
				body, err := compileSequence(c.Children)
				if err != nil {
					return nil, err
				}
				ch.otherwise = body
			default:
				return nil, fmt.Errorf("xslt: unexpected <%s> in choose", c.Name)
			}
		}
		if len(ch.whens) == 0 {
			return nil, errors.New("xslt: choose without when")
		}
		return ch, nil
	case "element":
		name, ok := n.Attr("name")
		if !ok {
			return nil, errors.New("xslt: element without name")
		}
		avt, err := compileAVT(name)
		if err != nil {
			return nil, err
		}
		body, err := compileSequence(n.Children)
		if err != nil {
			return nil, err
		}
		return &elementIns{name: avt, body: body}, nil
	case "attribute":
		name, ok := n.Attr("name")
		if !ok {
			return nil, errors.New("xslt: attribute without name")
		}
		avt, err := compileAVT(name)
		if err != nil {
			return nil, err
		}
		body, err := compileSequence(n.Children)
		if err != nil {
			return nil, err
		}
		return &attributeIns{name: avt, body: body}, nil
	case "copy-of":
		sel, err := requiredExpr(n, "select")
		if err != nil {
			return nil, err
		}
		return &copyOf{sel: sel}, nil
	case "copy":
		body, err := compileSequence(n.Children)
		if err != nil {
			return nil, err
		}
		return &copyIns{body: body}, nil
	case "variable":
		name, ok := n.Attr("name")
		if !ok {
			return nil, errors.New("xslt: variable without name")
		}
		v := &variableIns{name: name}
		if s, ok := n.Attr("select"); ok {
			e, err := xpath.Compile(s)
			if err != nil {
				return nil, fmt.Errorf("xslt: variable %s: %w", name, err)
			}
			v.sel = e
		} else {
			body, err := compileSequence(n.Children)
			if err != nil {
				return nil, err
			}
			v.body = body
		}
		return v, nil
	case "comment", "processing-instruction", "message":
		// Harmless output-side instructions we do not model.
		return &noop{}, nil
	default:
		return nil, fmt.Errorf("xslt: unsupported instruction xsl:%s", n.LocalName())
	}
}

func compileLiteralElement(n *xmldoc.Node) (instruction, error) {
	le := &literalElement{name: n.Name}
	for _, a := range n.Attrs {
		avt, err := compileAVT(a.Value)
		if err != nil {
			return nil, fmt.Errorf("xslt: attribute %s: %w", a.Name, err)
		}
		le.attrs = append(le.attrs, avtAttr{name: a.Name, value: avt})
	}
	body, err := compileSequence(n.Children)
	if err != nil {
		return nil, err
	}
	le.body = body
	return le, nil
}

func compileWithParams(n *xmldoc.Node) ([]withParam, error) {
	var out []withParam
	for _, c := range n.ChildrenNamed("with-param") {
		name, ok := c.Attr("name")
		if !ok {
			return nil, errors.New("xslt: with-param without name")
		}
		wp := withParam{name: name}
		if s, ok := c.Attr("select"); ok {
			e, err := xpath.Compile(s)
			if err != nil {
				return nil, fmt.Errorf("xslt: with-param %s: %w", name, err)
			}
			wp.sel = e
		} else {
			wp.text = strings.TrimSpace(c.Text())
		}
		out = append(out, wp)
	}
	return out, nil
}

func compileSorts(n *xmldoc.Node) ([]sortSpec, error) {
	var out []sortSpec
	for _, c := range n.ChildrenNamed("sort") {
		sel := c.AttrDefault("select", ".")
		e, err := xpath.Compile(sel)
		if err != nil {
			return nil, fmt.Errorf("xslt: sort: %w", err)
		}
		out = append(out, sortSpec{
			sel:      e,
			numeric:  c.AttrDefault("data-type", "text") == "number",
			reversed: c.AttrDefault("order", "ascending") == "descending",
		})
	}
	return out, nil
}

func withoutSorts(nodes []*xmldoc.Node) []*xmldoc.Node {
	out := make([]*xmldoc.Node, 0, len(nodes))
	for _, n := range nodes {
		if n.Kind == xmldoc.KindElement && n.Prefix() == "xsl" && n.LocalName() == "sort" {
			continue
		}
		out = append(out, n)
	}
	return out
}

func requiredExpr(n *xmldoc.Node, attr string) (*xpath.Expr, error) {
	v, ok := n.Attr(attr)
	if !ok {
		return nil, fmt.Errorf("xslt: %s requires %s attribute", n.Name, attr)
	}
	e, err := xpath.Compile(v)
	if err != nil {
		return nil, fmt.Errorf("xslt: %s: %w", n.Name, err)
	}
	return e, nil
}

// --- attribute value templates ---

// avt is a compiled attribute value template: literal segments
// interleaved with XPath expressions written as {expr}.
type avt struct {
	segments []avtSegment
}

type avtSegment struct {
	literal string
	expr    *xpath.Expr // nil for literal segments
}

func compileAVT(src string) (*avt, error) {
	a := &avt{}
	for len(src) > 0 {
		open := strings.IndexByte(src, '{')
		if open < 0 {
			a.segments = append(a.segments, avtSegment{literal: strings.ReplaceAll(src, "}}", "}")})
			break
		}
		// "{{" escapes a literal brace.
		if open+1 < len(src) && src[open+1] == '{' {
			a.segments = append(a.segments, avtSegment{literal: src[:open+1]})
			src = src[open+2:]
			continue
		}
		if open > 0 {
			a.segments = append(a.segments, avtSegment{literal: strings.ReplaceAll(src[:open], "}}", "}")})
		}
		closeIdx := strings.IndexByte(src[open:], '}')
		if closeIdx < 0 {
			return nil, fmt.Errorf("xslt: unterminated '{' in AVT %q", src)
		}
		exprSrc := src[open+1 : open+closeIdx]
		e, err := xpath.Compile(exprSrc)
		if err != nil {
			return nil, fmt.Errorf("xslt: AVT %q: %w", src, err)
		}
		a.segments = append(a.segments, avtSegment{expr: e})
		src = src[open+closeIdx+1:]
	}
	return a, nil
}

func (a *avt) eval(ctx *execCtx) string {
	var b strings.Builder
	for _, s := range a.segments {
		if s.expr != nil {
			b.WriteString(s.expr.EvalEnv(ctx.node, ctx.env()).String())
			continue
		}
		b.WriteString(s.literal)
	}
	return b.String()
}

// --- instruction implementations ---

type noop struct{}

func (*noop) exec(*executor, *execCtx, *xmldoc.Node) error { return nil }

type literalText struct{ text string }

func (i *literalText) exec(_ *executor, _ *execCtx, out *xmldoc.Node) error {
	out.AppendChild(xmldoc.NewText(i.text))
	return nil
}

type valueOf struct{ sel *xpath.Expr }

func (i *valueOf) exec(_ *executor, ctx *execCtx, out *xmldoc.Node) error {
	s := i.sel.EvalEnv(ctx.node, ctx.env()).String()
	if s != "" {
		out.AppendChild(xmldoc.NewText(s))
	}
	return nil
}

type withParam struct {
	name string
	sel  *xpath.Expr
	text string
}

func evalParams(ctx *execCtx, params []withParam) map[string]xpath.Value {
	if len(params) == 0 {
		return nil
	}
	out := make(map[string]xpath.Value, len(params))
	for _, p := range params {
		if p.sel != nil {
			out[p.name] = p.sel.EvalEnv(ctx.node, ctx.env())
			continue
		}
		out[p.name] = xpath.StringValue(p.text)
	}
	return out
}

type applyTemplatesIns struct {
	sel    *xpath.Expr
	params []withParam
	sorts  []sortSpec
}

func (i *applyTemplatesIns) exec(ex *executor, ctx *execCtx, out *xmldoc.Node) error {
	var nodes []*xmldoc.Node
	if i.sel != nil {
		v := i.sel.EvalEnv(ctx.node, ctx.env())
		if v.Kind != xpath.KindNodeSet {
			return fmt.Errorf("xslt: apply-templates select %q is not a node-set", i.sel.Source())
		}
		nodes = v.Nodes
	} else {
		nodes = ctx.node.Children
	}
	nodes = sortNodes(nodes, i.sorts, ctx.env())
	return ex.applyTemplates(ctx, nodes, out, evalParams(ctx, i.params))
}

type callTemplate struct {
	name   string
	params []withParam
}

func (i *callTemplate) exec(ex *executor, ctx *execCtx, out *xmldoc.Node) error {
	t, ok := ex.sheet.named[i.name]
	if !ok {
		return fmt.Errorf("xslt: call-template: no template named %q", i.name)
	}
	if ctx.depth > maxDepth {
		return ErrTooDeep
	}
	sub := ctx.child(ctx.node, ctx.pos, ctx.size)
	return ex.invoke(sub, t, out, evalParams(ctx, i.params))
}

type forEach struct {
	sel   *xpath.Expr
	body  []instruction
	sorts []sortSpec
}

func (i *forEach) exec(ex *executor, ctx *execCtx, out *xmldoc.Node) error {
	v := i.sel.EvalEnv(ctx.node, ctx.env())
	if v.Kind != xpath.KindNodeSet {
		return fmt.Errorf("xslt: for-each select %q is not a node-set", i.sel.Source())
	}
	nodes := sortNodes(v.Nodes, i.sorts, ctx.env())
	for idx, n := range nodes {
		sub := ctx.child(n, idx+1, len(nodes))
		if err := execAll(ex, sub, i.body, out); err != nil {
			return err
		}
	}
	return nil
}

type ifIns struct {
	test *xpath.Expr
	body []instruction
}

func (i *ifIns) exec(ex *executor, ctx *execCtx, out *xmldoc.Node) error {
	if i.test.EvalEnv(ctx.node, ctx.env()).Boolean() {
		return execAll(ex, ctx, i.body, out)
	}
	return nil
}

type whenClause struct {
	test *xpath.Expr
	body []instruction
}

type choose struct {
	whens     []whenClause
	otherwise []instruction
}

func (i *choose) exec(ex *executor, ctx *execCtx, out *xmldoc.Node) error {
	for _, w := range i.whens {
		if w.test.EvalEnv(ctx.node, ctx.env()).Boolean() {
			return execAll(ex, ctx, w.body, out)
		}
	}
	if i.otherwise != nil {
		return execAll(ex, ctx, i.otherwise, out)
	}
	return nil
}

type elementIns struct {
	name *avt
	body []instruction
}

func (i *elementIns) exec(ex *executor, ctx *execCtx, out *xmldoc.Node) error {
	el := xmldoc.NewElement(i.name.eval(ctx))
	if err := execAll(ex, ctx, i.body, el); err != nil {
		return err
	}
	out.AppendChild(el)
	return nil
}

type attributeIns struct {
	name *avt
	body []instruction
}

func (i *attributeIns) exec(ex *executor, ctx *execCtx, out *xmldoc.Node) error {
	tmp := xmldoc.NewElement("#attr")
	if err := execAll(ex, ctx, i.body, tmp); err != nil {
		return err
	}
	out.SetAttr(i.name.eval(ctx), tmp.Text())
	return nil
}

type copyOf struct{ sel *xpath.Expr }

func (i *copyOf) exec(_ *executor, ctx *execCtx, out *xmldoc.Node) error {
	v := i.sel.EvalEnv(ctx.node, ctx.env())
	if v.Kind != xpath.KindNodeSet {
		out.AppendChild(xmldoc.NewText(v.String()))
		return nil
	}
	for _, n := range v.Nodes {
		if n.Kind == xmldoc.KindAttribute {
			out.SetAttr(n.Name, n.Data)
			continue
		}
		out.AppendChild(n.Clone())
	}
	return nil
}

type copyIns struct{ body []instruction }

func (i *copyIns) exec(ex *executor, ctx *execCtx, out *xmldoc.Node) error {
	n := ctx.node
	switch n.Kind {
	case xmldoc.KindElement:
		if n.Name == "#document" {
			// Copying the (virtual) document node copies its content.
			return execAll(ex, ctx, i.body, out)
		}
		el := xmldoc.NewElement(n.Name)
		if err := execAll(ex, ctx, i.body, el); err != nil {
			return err
		}
		out.AppendChild(el)
	case xmldoc.KindText:
		out.AppendChild(xmldoc.NewText(n.Data))
	case xmldoc.KindAttribute:
		out.SetAttr(n.Name, n.Data)
	}
	return nil
}

type variableIns struct {
	name string
	sel  *xpath.Expr
	body []instruction
}

func (i *variableIns) exec(ex *executor, ctx *execCtx, out *xmldoc.Node) error {
	if i.sel != nil {
		ctx.vars[i.name] = i.sel.EvalEnv(ctx.node, ctx.env())
		return nil
	}
	tmp := xmldoc.NewElement("#var")
	if err := execAll(ex, ctx, i.body, tmp); err != nil {
		return err
	}
	ctx.vars[i.name] = xpath.StringValue(tmp.Text())
	return nil
}

type avtAttr struct {
	name  string
	value *avt
}

type literalElement struct {
	name  string
	attrs []avtAttr
	body  []instruction
}

func (i *literalElement) exec(ex *executor, ctx *execCtx, out *xmldoc.Node) error {
	el := xmldoc.NewElement(i.name)
	for _, a := range i.attrs {
		el.SetAttr(a.name, a.value.eval(ctx))
	}
	if err := execAll(ex, ctx, i.body, el); err != nil {
		return err
	}
	out.AppendChild(el)
	return nil
}

// execAll runs a compiled body. Variable scoping: each body gets a
// fresh scope so xsl:variable bindings do not leak to siblings of the
// enclosing instruction.
func execAll(ex *executor, ctx *execCtx, body []instruction, out *xmldoc.Node) error {
	scope := ctx.withVars()
	for _, ins := range body {
		if err := ins.exec(ex, scope, out); err != nil {
			return err
		}
	}
	return nil
}
