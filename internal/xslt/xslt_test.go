package xslt

import (
	"strings"
	"testing"

	"repro/internal/xmldoc"
)

func apply(t *testing.T, sheet, doc string) string {
	t.Helper()
	s, err := CompileString(sheet)
	if err != nil {
		t.Fatalf("compile stylesheet: %v", err)
	}
	d, err := xmldoc.ParseString(doc)
	if err != nil {
		t.Fatalf("parse doc: %v", err)
	}
	out, err := s.Apply(d)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	return out
}

const header = `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">`

func TestValueOf(t *testing.T) {
	out := apply(t, header+`
	  <xsl:template match="/">
	    <xsl:value-of select="greeting/name"/>
	  </xsl:template>
	</xsl:stylesheet>`,
		`<greeting><name>world</name></greeting>`)
	if out != "world" {
		t.Errorf("out = %q", out)
	}
}

func TestLiteralElementsAndAVT(t *testing.T) {
	out := apply(t, header+`
	  <xsl:template match="/">
	    <html><body id="{item/@id}">
	      <h1><xsl:value-of select="item/title"/></h1>
	    </body></html>
	  </xsl:template>
	</xsl:stylesheet>`,
		`<item id="i7"><title>Observer</title></item>`)
	want := `<html><body id="i7"><h1>Observer</h1></body></html>`
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestForEachWithPosition(t *testing.T) {
	out := apply(t, header+`
	  <xsl:template match="/">
	    <xsl:for-each select="list/item">
	      <li n="{position()}"><xsl:value-of select="."/></li>
	    </xsl:for-each>
	  </xsl:template>
	</xsl:stylesheet>`,
		`<list><item>a</item><item>b</item></list>`)
	want := `<li n="1">a</li><li n="2">b</li>`
	if out != want {
		t.Errorf("out = %q", out)
	}
}

func TestForEachSort(t *testing.T) {
	out := apply(t, header+`
	  <xsl:template match="/">
	    <xsl:for-each select="list/item">
	      <xsl:sort select="."/>
	      <v><xsl:value-of select="."/></v>
	    </xsl:for-each>
	  </xsl:template>
	</xsl:stylesheet>`,
		`<list><item>c</item><item>a</item><item>b</item></list>`)
	if out != "<v>a</v><v>b</v><v>c</v>" {
		t.Errorf("sorted out = %q", out)
	}
	// Numeric descending.
	out = apply(t, header+`
	  <xsl:template match="/">
	    <xsl:for-each select="l/i">
	      <xsl:sort select="." data-type="number" order="descending"/>
	      <v><xsl:value-of select="."/></v>
	    </xsl:for-each>
	  </xsl:template>
	</xsl:stylesheet>`,
		`<l><i>9</i><i>100</i><i>20</i></l>`)
	if out != "<v>100</v><v>20</v><v>9</v>" {
		t.Errorf("numeric sort = %q", out)
	}
}

func TestIfAndChoose(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/">
	    <xsl:for-each select="l/i">
	      <xsl:if test=". > 5"><big><xsl:value-of select="."/></big></xsl:if>
	      <xsl:choose>
	        <xsl:when test=". = 3"><three/></xsl:when>
	        <xsl:when test=". = 7"><seven/></xsl:when>
	        <xsl:otherwise><other v="{.}"/></xsl:otherwise>
	      </xsl:choose>
	    </xsl:for-each>
	  </xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<l><i>3</i><i>7</i><i>1</i></l>`)
	want := `<three/><big>7</big><seven/><other v="1"/>`
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestApplyTemplatesRecursion(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/"><doc><xsl:apply-templates/></doc></xsl:template>
	  <xsl:template match="section">
	    <sec title="{@title}"><xsl:apply-templates/></sec>
	  </xsl:template>
	  <xsl:template match="para"><p><xsl:value-of select="."/></p></xsl:template>
	</xsl:stylesheet>`
	doc := `<root><section title="one"><para>x</para><para>y</para></section><section title="two"><para>z</para></section></root>`
	out := apply(t, sheet, doc)
	want := `<doc><sec title="one"><p>x</p><p>y</p></sec><sec title="two"><p>z</p></sec></doc>`
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestBuiltinRulesCopyText(t *testing.T) {
	// No template matches <b>; built-in rules recurse and copy text.
	sheet := header + `
	  <xsl:template match="a"><wrapped><xsl:apply-templates/></wrapped></xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<a>hello <b>bold</b> end</a>`)
	if out != "<wrapped>hello bold end</wrapped>" {
		t.Errorf("out = %q", out)
	}
}

func TestTemplatePriorityAndConflict(t *testing.T) {
	// Name test (priority 0) beats * (priority -0.5); explicit priority
	// beats both; later template wins ties.
	sheet := header + `
	  <xsl:template match="*"><star/></xsl:template>
	  <xsl:template match="item"><named/></xsl:template>
	  <xsl:template match="special" priority="2"><boosted/></xsl:template>
	  <xsl:template match="special"><plain/></xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<root><item/><special/><other/></root>`)
	// root matches * → <star/> (children not processed since template
	// body has no apply-templates)... we need apply-templates in *.
	_ = out
	sheet2 := header + `
	  <xsl:template match="/"><xsl:apply-templates select="root/*"/></xsl:template>
	  <xsl:template match="*"><star/></xsl:template>
	  <xsl:template match="item"><named/></xsl:template>
	  <xsl:template match="special" priority="2"><boosted/></xsl:template>
	  <xsl:template match="special"><plain/></xsl:template>
	</xsl:stylesheet>`
	out2 := apply(t, sheet2, `<root><item/><special/><other/></root>`)
	if out2 != "<named/><boosted/><star/>" {
		t.Errorf("out = %q", out2)
	}
}

func TestPathPatterns(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/"><xsl:apply-templates select="//name"/></xsl:template>
	  <xsl:template match="community/name"><c><xsl:value-of select="."/></c></xsl:template>
	  <xsl:template match="name"><n><xsl:value-of select="."/></n></xsl:template>
	</xsl:stylesheet>`
	doc := `<root><community><name>mp3</name></community><other><name>x</name></other></root>`
	out := apply(t, sheet, doc)
	if out != "<c>mp3</c><n>x</n>" {
		t.Errorf("out = %q", out)
	}
}

func TestAncestorPattern(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/"><xsl:apply-templates select="//v"/></xsl:template>
	  <xsl:template match="deep//v"><hit/></xsl:template>
	  <xsl:template match="v"><miss/></xsl:template>
	</xsl:stylesheet>`
	doc := `<r><deep><mid><v/></mid></deep><v/></r>`
	out := apply(t, sheet, doc)
	if out != "<hit/><miss/>" {
		t.Errorf("out = %q", out)
	}
}

func TestNamedTemplatesAndParams(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/">
	    <xsl:call-template name="row">
	      <xsl:with-param name="label" select="'Name'"/>
	      <xsl:with-param name="value" select="obj/name"/>
	    </xsl:call-template>
	    <xsl:call-template name="row"/>
	  </xsl:template>
	  <xsl:template name="row">
	    <xsl:param name="label" select="'?'"/>
	    <xsl:param name="value"/>
	    <tr><td><xsl:value-of select="$label"/></td><td><xsl:value-of select="$value"/></td></tr>
	  </xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<obj><name>Observer</name></obj>`)
	want := `<tr><td>Name</td><td>Observer</td></tr><tr><td>?</td><td/></tr>`
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestVariables(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/">
	    <xsl:variable name="n" select="count(l/i)"/>
	    <xsl:variable name="msg">items</xsl:variable>
	    <r><xsl:value-of select="concat($n, ' ', $msg)"/></r>
	  </xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<l><i/><i/><i/></l>`)
	if out != "<r>3 items</r>" {
		t.Errorf("out = %q", out)
	}
}

func TestVariableScoping(t *testing.T) {
	// A variable bound inside for-each does not leak out.
	sheet := header + `
	  <xsl:template match="/">
	    <xsl:for-each select="l/i">
	      <xsl:variable name="v" select="."/>
	      <x><xsl:value-of select="$v"/></x>
	    </xsl:for-each>
	    <after><xsl:value-of select="$v"/></after>
	  </xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<l><i>1</i></l>`)
	if out != "<x>1</x><after/>" {
		t.Errorf("out = %q", out)
	}
}

func TestElementAndAttributeInstructions(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/">
	    <xsl:element name="{obj/kind}">
	      <xsl:attribute name="id"><xsl:value-of select="obj/@id"/></xsl:attribute>
	      <xsl:value-of select="obj/title"/>
	    </xsl:element>
	  </xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<obj id="9"><kind>pattern</kind><title>Visitor</title></obj>`)
	if out != `<pattern id="9">Visitor</pattern>` {
		t.Errorf("out = %q", out)
	}
}

func TestCopyOfAndCopy(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/"><out><xsl:copy-of select="doc/keep"/></out></xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<doc><keep a="1"><sub>x</sub></keep><drop/></doc>`)
	if out != `<out><keep a="1"><sub>x</sub></keep></out>` {
		t.Errorf("copy-of = %q", out)
	}
	// Identity transform via xsl:copy.
	identity := header + `
	  <xsl:template match="node()">
	    <xsl:copy><xsl:copy-of select="@*"/><xsl:apply-templates/></xsl:copy>
	  </xsl:template>
	</xsl:stylesheet>`
	src := `<a x="1"><b>t</b><c/></a>`
	out2 := apply(t, identity, src)
	want, _ := xmldoc.ParseString(src)
	got, err := xmldoc.ParseString(out2)
	if err != nil {
		t.Fatalf("reparse identity output %q: %v", out2, err)
	}
	if !xmldoc.Equal(want, got) {
		t.Errorf("identity = %q", out2)
	}
}

func TestTextOutputMethod(t *testing.T) {
	sheet := header + `
	  <xsl:output method="text"/>
	  <xsl:template match="/">
	    <xsl:for-each select="l/i"><xsl:value-of select="."/><xsl:text>,</xsl:text></xsl:for-each>
	  </xsl:template>
	</xsl:stylesheet>`
	s, err := CompileString(sheet)
	if err != nil {
		t.Fatal(err)
	}
	if s.OutputMethod() != "text" {
		t.Errorf("method = %q", s.OutputMethod())
	}
	d := xmldoc.MustParse(`<l><i>a</i><i>b</i></l>`)
	out, err := s.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if out != "a,b," {
		t.Errorf("out = %q", out)
	}
}

func TestApplyTemplatesSelectWithSort(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/">
	    <xsl:apply-templates select="l/i"><xsl:sort select="@k"/></xsl:apply-templates>
	  </xsl:template>
	  <xsl:template match="i"><v><xsl:value-of select="@k"/></v></xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<l><i k="b"/><i k="a"/></l>`)
	if out != "<v>a</v><v>b</v>" {
		t.Errorf("out = %q", out)
	}
}

func TestRecursionGuard(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/"><xsl:call-template name="loop"/></xsl:template>
	  <xsl:template name="loop"><xsl:call-template name="loop"/></xsl:template>
	</xsl:stylesheet>`
	s, err := CompileString(sheet)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Apply(xmldoc.MustParse("<x/>"))
	if err == nil || !strings.Contains(err.Error(), "too deep") {
		t.Errorf("err = %v, want recursion guard", err)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"not stylesheet", `<html/>`},
		{"no templates", header + `</xsl:stylesheet>`},
		{"template without match or name", header + `<xsl:template><x/></xsl:template></xsl:stylesheet>`},
		{"bad xpath", header + `<xsl:template match="/"><xsl:value-of select="[[["/></xsl:template></xsl:stylesheet>`},
		{"value-of without select", header + `<xsl:template match="/"><xsl:value-of/></xsl:template></xsl:stylesheet>`},
		{"unknown instruction", header + `<xsl:template match="/"><xsl:frobnicate/></xsl:template></xsl:stylesheet>`},
		{"bad AVT", header + `<xsl:template match="/"><a href="{unclosed"/></xsl:template></xsl:stylesheet>`},
		{"pattern with predicate", header + `<xsl:template match="a[1]"><x/></xsl:template></xsl:stylesheet>`},
		{"duplicate named", header + `<xsl:template name="t"><a/></xsl:template><xsl:template name="t"><b/></xsl:template></xsl:stylesheet>`},
		{"choose without when", header + `<xsl:template match="/"><xsl:choose><xsl:otherwise/></xsl:choose></xsl:template></xsl:stylesheet>`},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := CompileString(tt.src); err == nil {
				t.Errorf("compiled %s without error", tt.name)
			}
		})
	}
}

func TestCallUnknownTemplate(t *testing.T) {
	sheet := header + `<xsl:template match="/"><xsl:call-template name="ghost"/></xsl:template></xsl:stylesheet>`
	s, err := CompileString(sheet)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(xmldoc.MustParse("<x/>")); err == nil {
		t.Error("calling unknown template succeeded")
	}
}

func TestAVTEscaping(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/"><a v="{{literal}} {x}"/></xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<x>val</x>`)
	if out != `<a v="{literal} val"/>` {
		t.Errorf("out = %q", out)
	}
}

func TestSchemaToFormTransform(t *testing.T) {
	// A miniature of the paper's Fig. 2: transform an XML Schema into
	// an HTML create form, one input per declared element.
	sheet := header + `
	  <xsl:template match="/">
	    <form action="create">
	      <xsl:for-each select="schema/element/complexType/sequence/element">
	        <label><xsl:value-of select="@name"/></label>
	        <input name="{@name}" type="text"/>
	      </xsl:for-each>
	    </form>
	  </xsl:template>
	</xsl:stylesheet>`
	schema := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
	  <element name="song"><complexType><sequence>
	    <element name="title" type="xsd:string"/>
	    <element name="artist" type="xsd:string"/>
	  </sequence></complexType></element>
	</schema>`
	out := apply(t, sheet, schema)
	want := `<form action="create"><label>title</label><input name="title" type="text"/><label>artist</label><input name="artist" type="text"/></form>`
	if out != want {
		t.Errorf("form = %q, want %q", out, want)
	}
}

func TestApplyNodes(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/"><a/><b/><xsl:text>tail</xsl:text></xsl:template>
	</xsl:stylesheet>`
	s, err := CompileString(sheet)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := s.ApplyNodes(xmldoc.MustParse("<x/>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	if nodes[0].Name != "a" || nodes[2].Data != "tail" {
		t.Errorf("nodes = %v", nodes)
	}
	if _, err := s.ApplyNodes(nil); err == nil {
		t.Error("nil doc accepted")
	}
}
