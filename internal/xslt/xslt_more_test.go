package xslt

import (
	"strings"
	"testing"

	"repro/internal/xmldoc"
)

func TestApplyTemplatesWithParams(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/">
	    <xsl:apply-templates select="list/item">
	      <xsl:with-param name="tag" select="'li'"/>
	    </xsl:apply-templates>
	  </xsl:template>
	  <xsl:template match="item">
	    <xsl:param name="tag" select="'div'"/>
	    <xsl:element name="{$tag}"><xsl:value-of select="."/></xsl:element>
	  </xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<list><item>a</item><item>b</item></list>`)
	if out != "<li>a</li><li>b</li>" {
		t.Errorf("out = %q", out)
	}
}

func TestParamDefaultUsedWithoutWithParam(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/"><xsl:apply-templates select="l/i"/></xsl:template>
	  <xsl:template match="i">
	    <xsl:param name="tag" select="'span'"/>
	    <xsl:element name="{$tag}"/>
	  </xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<l><i/></l>`)
	if out != "<span/>" {
		t.Errorf("out = %q", out)
	}
}

func TestNestedForEachPositions(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/">
	    <xsl:for-each select="m/row">
	      <xsl:for-each select="cell">
	        <c p="{position()}"><xsl:value-of select="."/></c>
	      </xsl:for-each>
	      <eol r="{position()}"/>
	    </xsl:for-each>
	  </xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<m><row><cell>a</cell><cell>b</cell></row><row><cell>c</cell></row></m>`)
	want := `<c p="1">a</c><c p="2">b</c><eol r="1"/><c p="1">c</c><eol r="2"/>`
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestLastFunctionInTemplate(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/">
	    <xsl:for-each select="l/i">
	      <xsl:value-of select="."/>
	      <xsl:if test="position() != last()"><xsl:text>, </xsl:text></xsl:if>
	    </xsl:for-each>
	  </xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<l><i>x</i><i>y</i><i>z</i></l>`)
	if out != "x, y, z" {
		t.Errorf("out = %q", out)
	}
}

func TestAttributePatternTemplate(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/"><xsl:apply-templates select="e/@*"/></xsl:template>
	  <xsl:template match="@id"><id><xsl:value-of select="."/></id></xsl:template>
	  <xsl:template match="@*"><other name="{name()}"/></xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<e id="7" class="x"/>`)
	if out != `<id>7</id><other name="class"/>` {
		t.Errorf("out = %q", out)
	}
}

func TestChooseFirstMatchingWhenWins(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/">
	    <xsl:choose>
	      <xsl:when test="true()"><first/></xsl:when>
	      <xsl:when test="true()"><second/></xsl:when>
	    </xsl:choose>
	  </xsl:template>
	</xsl:stylesheet>`
	if out := apply(t, sheet, `<x/>`); out != "<first/>" {
		t.Errorf("out = %q", out)
	}
}

func TestTextEscapingInOutput(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/"><v><xsl:value-of select="d"/></v></xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<d>a &lt; b &amp; c</d>`)
	back, err := xmldoc.ParseString(out)
	if err != nil {
		t.Fatalf("output not well-formed: %v\n%s", err, out)
	}
	if back.Text() != "a < b & c" {
		t.Errorf("text = %q", back.Text())
	}
}

func TestVariableHoldingNodeSet(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/">
	    <xsl:variable name="items" select="l/i[. > 2]"/>
	    <n><xsl:value-of select="count($items)"/></n>
	    <xsl:for-each select="$items"><v><xsl:value-of select="."/></v></xsl:for-each>
	  </xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<l><i>1</i><i>3</i><i>5</i></l>`)
	if out != "<n>2</n><v>3</v><v>5</v>" {
		t.Errorf("out = %q", out)
	}
}

func TestModeLessTemplatesCompose(t *testing.T) {
	// Two stylesheets applied in sequence: schema -> intermediate ->
	// final, the composition pattern the indexing pipeline uses.
	first := MustCompileString(header + `
	  <xsl:template match="/">
	    <mid><xsl:for-each select="src/v"><x><xsl:value-of select="."/></x></xsl:for-each></mid>
	  </xsl:template>
	</xsl:stylesheet>`)
	second := MustCompileString(header + `
	  <xsl:template match="/"><out n="{count(mid/x)}"/></xsl:template>
	</xsl:stylesheet>`)
	midNodes, err := first.ApplyNodes(xmldoc.MustParse(`<src><v>1</v><v>2</v></src>`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := second.Apply(midNodes[0])
	if err != nil {
		t.Fatal(err)
	}
	if out != `<out n="2"/>` {
		t.Errorf("out = %q", out)
	}
}

func TestCommentsInStylesheetIgnored(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/"><!-- produces nothing --><y/></xsl:template>
	</xsl:stylesheet>`
	if out := apply(t, sheet, `<x/>`); out != "<y/>" {
		t.Errorf("out = %q", out)
	}
}

func TestWhitespaceTextPreservedViaXslText(t *testing.T) {
	sheet := header + `
	  <xsl:template match="/">a<xsl:text> </xsl:text>b</xsl:template>
	</xsl:stylesheet>`
	out := apply(t, sheet, `<x/>`)
	if !strings.Contains(out, "a b") {
		t.Errorf("out = %q", out)
	}
}

func TestDeepDocumentTransform(t *testing.T) {
	// Build a deep document and run the identity transform: exercises
	// recursion bookkeeping below the guard threshold.
	var b strings.Builder
	const depth = 100
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	identity := header + `
	  <xsl:template match="node()">
	    <xsl:copy><xsl:apply-templates/></xsl:copy>
	  </xsl:template>
	</xsl:stylesheet>`
	out := apply(t, identity, b.String())
	if !strings.Contains(out, "x") || strings.Count(out, "<d>") != depth {
		t.Errorf("deep identity lost structure: %d <d> tags", strings.Count(out, "<d>"))
	}
}
