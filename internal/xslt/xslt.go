// Package xslt implements the XSLT 1.0 subset that powers U-P2P's
// generative architecture (paper Fig. 2): default and custom
// stylesheets transform a community's XML Schema into create/search
// HTML forms, transform shared objects into view pages, and filter
// indexable attributes out of objects before submission to the
// metadata index.
//
// Supported instructions: template (match/name, priority, params),
// apply-templates (select, with-param), call-template, value-of,
// for-each (with sort), if, choose/when/otherwise, text, element,
// attribute, copy, copy-of, variable, param, with-param, plus literal
// result elements with attribute value templates. Built-in template
// rules follow the spec: elements recurse, text copies through.
package xslt

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// maxDepth bounds template recursion so a buggy stylesheet terminates
// with an error instead of exhausting the stack.
const maxDepth = 500

// ErrTooDeep is returned when template recursion exceeds maxDepth.
var ErrTooDeep = errors.New("xslt: template recursion too deep")

// Stylesheet is a compiled, reusable transformation.
type Stylesheet struct {
	templates []*template
	named     map[string]*template
	output    string // "xml", "html", or "text"
}

// template is one xsl:template rule.
type template struct {
	match    *pattern // nil for named-only templates
	name     string
	priority float64
	order    int // document order for tie-breaking
	params   []paramDecl
	body     []instruction
}

type paramDecl struct {
	name string
	sel  *xpath.Expr // default value; nil means empty string
}

// Compile builds a Stylesheet from its document form.
func Compile(doc *xmldoc.Node) (*Stylesheet, error) {
	if doc == nil || doc.LocalName() != "stylesheet" && doc.LocalName() != "transform" {
		return nil, errors.New("xslt: document element is not xsl:stylesheet")
	}
	s := &Stylesheet{named: make(map[string]*template), output: "xml"}
	for _, c := range doc.Elements() {
		switch c.LocalName() {
		case "template":
			t := &template{order: len(s.templates)}
			if m, ok := c.Attr("match"); ok {
				p, err := compilePattern(m)
				if err != nil {
					return nil, err
				}
				t.match = p
				t.priority = p.defaultPriority()
			}
			if pr, ok := c.Attr("priority"); ok {
				f, err := strconv.ParseFloat(pr, 64)
				if err != nil {
					return nil, fmt.Errorf("xslt: bad priority %q", pr)
				}
				t.priority = f
			}
			if n, ok := c.Attr("name"); ok {
				t.name = n
				if _, dup := s.named[n]; dup {
					return nil, fmt.Errorf("xslt: duplicate template name %q", n)
				}
				s.named[n] = t
			}
			if t.match == nil && t.name == "" {
				return nil, errors.New("xslt: template needs match or name")
			}
			body := c.Children
			// Leading xsl:param children declare template parameters.
			for len(body) > 0 {
				first := firstElement(body)
				if first == nil || first.LocalName() != "param" || first.Prefix() != "xsl" {
					break
				}
				pd := paramDecl{name: first.AttrDefault("name", "")}
				if pd.name == "" {
					return nil, errors.New("xslt: param without name")
				}
				if sel, ok := first.Attr("select"); ok {
					e, err := xpath.Compile(sel)
					if err != nil {
						return nil, fmt.Errorf("xslt: param %s: %w", pd.name, err)
					}
					pd.sel = e
				}
				t.params = append(t.params, pd)
				body = body[indexOf(body, first)+1:]
			}
			ins, err := compileSequence(body)
			if err != nil {
				return nil, err
			}
			t.body = ins
			s.templates = append(s.templates, t)
		case "output":
			if m, ok := c.Attr("method"); ok {
				s.output = m
			}
		case "variable", "param", "import", "include", "strip-space", "preserve-space", "key", "attribute-set":
			// Top-level variables are rare in U-P2P's stylesheets;
			// unsupported declarations are rejected loudly rather than
			// silently ignored.
			if c.LocalName() == "variable" || c.LocalName() == "param" {
				return nil, fmt.Errorf("xslt: top-level xsl:%s not supported", c.LocalName())
			}
			return nil, fmt.Errorf("xslt: unsupported declaration xsl:%s", c.LocalName())
		default:
			return nil, fmt.Errorf("xslt: unexpected top-level element <%s>", c.Name)
		}
	}
	if len(s.templates) == 0 {
		return nil, errors.New("xslt: stylesheet has no templates")
	}
	return s, nil
}

// CompileString parses and compiles a stylesheet from text.
func CompileString(src string) (*Stylesheet, error) {
	doc, err := xmldoc.ParseString(src)
	if err != nil {
		return nil, fmt.Errorf("xslt: %w", err)
	}
	return Compile(doc)
}

// MustCompileString panics on error; for built-in stylesheets.
func MustCompileString(src string) *Stylesheet {
	s, err := CompileString(src)
	if err != nil {
		panic(err)
	}
	return s
}

// OutputMethod returns the xsl:output method ("xml" by default).
func (s *Stylesheet) OutputMethod() string { return s.output }

// Apply transforms doc and returns the serialized result. The result
// is the concatenation of top-level output: text, or markup when the
// transform emits elements.
func (s *Stylesheet) Apply(doc *xmldoc.Node) (string, error) {
	nodes, err := s.ApplyNodes(doc)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, n := range nodes {
		if n.Kind == xmldoc.KindText && s.output == "text" {
			b.WriteString(n.Data)
			continue
		}
		b.WriteString(n.String())
	}
	return b.String(), nil
}

// ApplyNodes transforms doc and returns the result tree's top-level
// nodes, for callers that post-process output structurally (the
// indexing transform).
func (s *Stylesheet) ApplyNodes(doc *xmldoc.Node) ([]*xmldoc.Node, error) {
	if doc == nil {
		return nil, errors.New("xslt: nil input document")
	}
	ex := &executor{sheet: s, root: doc}
	out := xmldoc.NewElement("#output")
	// Processing starts at the (virtual) document root, matching "/".
	if err := ex.applyTemplates(docContext(doc), []*xmldoc.Node{virtualRoot(doc)}, out, nil); err != nil {
		return nil, err
	}
	return out.Children, nil
}

// virtualRoot wraps the document element in a transient parent so that
// match="/" has a node to match, mirroring the xpath package.
func virtualRoot(doc *xmldoc.Node) *xmldoc.Node {
	return &xmldoc.Node{
		Kind:     xmldoc.KindElement,
		Name:     "#document",
		Children: []*xmldoc.Node{doc},
	}
}

func docContext(doc *xmldoc.Node) *execCtx {
	return &execCtx{node: doc, pos: 1, size: 1, vars: map[string]xpath.Value{}}
}

// execCtx is the dynamic context during execution.
type execCtx struct {
	node  *xmldoc.Node
	pos   int
	size  int
	vars  map[string]xpath.Value
	depth int
}

func (c *execCtx) child(n *xmldoc.Node, pos, size int) *execCtx {
	return &execCtx{node: n, pos: pos, size: size, vars: c.vars, depth: c.depth + 1}
}

// withVars returns a context with an extended variable scope.
func (c *execCtx) withVars() *execCtx {
	nv := make(map[string]xpath.Value, len(c.vars)+2)
	for k, v := range c.vars {
		nv[k] = v
	}
	return &execCtx{node: c.node, pos: c.pos, size: c.size, vars: nv, depth: c.depth}
}

func (c *execCtx) env() *xpath.Env {
	return &xpath.Env{Vars: c.vars, Position: c.pos, Size: c.size}
}

// executor runs a compiled stylesheet over one input document.
type executor struct {
	sheet *Stylesheet
	root  *xmldoc.Node
}

// applyTemplates processes a node list, dispatching each node to its
// best-matching template or the built-in rules.
func (ex *executor) applyTemplates(ctx *execCtx, nodes []*xmldoc.Node, out *xmldoc.Node, params map[string]xpath.Value) error {
	if ctx.depth > maxDepth {
		return ErrTooDeep
	}
	size := len(nodes)
	for i, n := range nodes {
		sub := ctx.child(n, i+1, size)
		t := ex.bestTemplate(n)
		if t == nil {
			if err := ex.builtinRule(sub, n, out); err != nil {
				return err
			}
			continue
		}
		if err := ex.invoke(sub, t, out, params); err != nil {
			return err
		}
	}
	return nil
}

// invoke runs a template body with parameter binding.
func (ex *executor) invoke(ctx *execCtx, t *template, out *xmldoc.Node, params map[string]xpath.Value) error {
	scope := ctx.withVars()
	for _, pd := range t.params {
		if v, ok := params[pd.name]; ok {
			scope.vars[pd.name] = v
			continue
		}
		if pd.sel != nil {
			scope.vars[pd.name] = pd.sel.EvalEnv(ctx.node, ctx.env())
			continue
		}
		scope.vars[pd.name] = xpath.StringValue("")
	}
	return execAll(ex, scope, t.body, out)
}

// bestTemplate picks the matching template with highest priority,
// breaking ties by document order (last wins, per spec recovery).
func (ex *executor) bestTemplate(n *xmldoc.Node) *template {
	var best *template
	for _, t := range ex.sheet.templates {
		if t.match == nil || !t.match.matches(n) {
			continue
		}
		if best == nil || t.priority > best.priority ||
			(t.priority == best.priority && t.order > best.order) {
			best = t
		}
	}
	return best
}

// builtinRule implements the XSLT built-in templates: the document
// root and elements recurse into children; text copies through;
// attributes and comments produce nothing.
func (ex *executor) builtinRule(ctx *execCtx, n *xmldoc.Node, out *xmldoc.Node) error {
	switch n.Kind {
	case xmldoc.KindElement:
		return ex.applyTemplates(ctx, n.Children, out, nil)
	case xmldoc.KindText:
		out.AppendChild(xmldoc.NewText(n.Data))
	}
	return nil
}

func firstElement(nodes []*xmldoc.Node) *xmldoc.Node {
	for _, n := range nodes {
		if n.Kind == xmldoc.KindElement {
			return n
		}
		if n.Kind == xmldoc.KindText && strings.TrimSpace(n.Data) != "" {
			return nil
		}
	}
	return nil
}

func indexOf(nodes []*xmldoc.Node, target *xmldoc.Node) int {
	for i, n := range nodes {
		if n == target {
			return i
		}
	}
	return -1
}

// sortSpec captures one xsl:sort.
type sortSpec struct {
	sel      *xpath.Expr
	numeric  bool
	reversed bool
}

func sortNodes(nodes []*xmldoc.Node, specs []sortSpec, env *xpath.Env) []*xmldoc.Node {
	if len(specs) == 0 {
		return nodes
	}
	sorted := append([]*xmldoc.Node(nil), nodes...)
	sort.SliceStable(sorted, func(i, j int) bool {
		for _, sp := range specs {
			vi := sp.sel.EvalEnv(sorted[i], env)
			vj := sp.sel.EvalEnv(sorted[j], env)
			var less, eq bool
			if sp.numeric {
				ni, nj := vi.Number(), vj.Number()
				less, eq = ni < nj, ni == nj
			} else {
				si, sj := vi.String(), vj.String()
				less, eq = si < sj, si == sj
			}
			if eq {
				continue
			}
			if sp.reversed {
				return !less
			}
			return less
		}
		return false
	})
	return sorted
}
