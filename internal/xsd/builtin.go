package xsd

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Builtin identifies an XML Schema primitive datatype supported by the
// subset. The zero value means "not a builtin".
type Builtin int

// Supported built-in types: everything used by the paper's community
// schema (Fig. 3), the design-pattern schema (§V) and the generated
// corpora.
const (
	BuiltinString Builtin = iota + 1
	BuiltinAnyURI
	BuiltinBoolean
	BuiltinInteger
	BuiltinInt
	BuiltinLong
	BuiltinDecimal
	BuiltinFloat
	BuiltinDouble
	BuiltinDate
	BuiltinDateTime
	BuiltinDuration
	BuiltinToken
	BuiltinID
)

var builtinNames = map[string]Builtin{
	"string":   BuiltinString,
	"anyURI":   BuiltinAnyURI,
	"boolean":  BuiltinBoolean,
	"integer":  BuiltinInteger,
	"int":      BuiltinInt,
	"long":     BuiltinLong,
	"decimal":  BuiltinDecimal,
	"float":    BuiltinFloat,
	"double":   BuiltinDouble,
	"date":     BuiltinDate,
	"dateTime": BuiltinDateTime,
	"duration": BuiltinDuration,
	"token":    BuiltinToken,
	"ID":       BuiltinID,
}

// String returns the unprefixed type name.
func (b Builtin) String() string {
	for name, v := range builtinNames {
		if v == b {
			return name
		}
	}
	return fmt.Sprintf("builtin(%d)", int(b))
}

// LookupBuiltin resolves a (possibly prefixed) type name to a Builtin.
func LookupBuiltin(name string) (Builtin, bool) {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name = name[i+1:]
	}
	b, ok := builtinNames[name]
	return b, ok
}

// IsNumeric reports whether values of this type order numerically.
func (b Builtin) IsNumeric() bool {
	switch b {
	case BuiltinInteger, BuiltinInt, BuiltinLong, BuiltinDecimal, BuiltinFloat, BuiltinDouble:
		return true
	}
	return false
}

// CheckValue validates a lexical value against the builtin type.
func (b Builtin) CheckValue(v string) error {
	s := strings.TrimSpace(v)
	switch b {
	case BuiltinString, BuiltinToken, BuiltinID:
		return nil
	case BuiltinAnyURI:
		if s == "" {
			return nil // empty URI permitted (paper's protocol field may be empty)
		}
		if _, err := url.Parse(s); err != nil {
			return fmt.Errorf("invalid anyURI %q: %v", v, err)
		}
		return nil
	case BuiltinBoolean:
		switch s {
		case "true", "false", "0", "1":
			return nil
		}
		return fmt.Errorf("invalid boolean %q", v)
	case BuiltinInteger, BuiltinInt, BuiltinLong:
		if _, err := strconv.ParseInt(s, 10, 64); err != nil {
			return fmt.Errorf("invalid integer %q", v)
		}
		return nil
	case BuiltinDecimal, BuiltinFloat, BuiltinDouble:
		if _, err := strconv.ParseFloat(s, 64); err != nil {
			return fmt.Errorf("invalid number %q", v)
		}
		return nil
	case BuiltinDate:
		if _, err := time.Parse("2006-01-02", s); err != nil {
			return fmt.Errorf("invalid date %q (want YYYY-MM-DD)", v)
		}
		return nil
	case BuiltinDateTime:
		if _, err := time.Parse(time.RFC3339, s); err != nil {
			if _, err2 := time.Parse("2006-01-02T15:04:05", s); err2 != nil {
				return fmt.Errorf("invalid dateTime %q", v)
			}
		}
		return nil
	case BuiltinDuration:
		if !strings.HasPrefix(s, "P") && !strings.HasPrefix(s, "-P") {
			return fmt.Errorf("invalid duration %q", v)
		}
		return nil
	default:
		return fmt.Errorf("unknown builtin type")
	}
}
