package xsd

import "strings"

// Field is a flattened leaf element of the schema: the unit of the
// generated create/search forms and of metadata indexing. Paths are
// relative to the document element, e.g. "solution/participants".
type Field struct {
	// Path is the slash-joined element path below the root.
	Path string
	// Name is the leaf element name.
	Name string
	// TypeName is the resolved type's display name ("string",
	// "anyURI", or the named simple type).
	TypeName string
	// Builtin is the primitive the value reduces to.
	Builtin Builtin
	// Enum lists permitted values when the type is an enumerated
	// restriction (rendered as a <select> in generated forms).
	Enum []string
	// Searchable marks the field for the metadata index (§IV.C.2).
	Searchable bool
	// Attachment marks an attachment-URI field (§IV.C.1).
	Attachment bool
	// Repeated reports maxOccurs > 1 (or unbounded).
	Repeated bool
	// Optional reports minOccurs == 0.
	Optional bool
}

// Fields returns the schema's leaf fields in document order, the
// flattening that drives form generation and the indexing transform.
// Nested complex types contribute dotted paths; recursion through a
// named complex type is cut off at first repetition.
func (s *Schema) Fields() []Field {
	var out []Field
	if s.Root == nil {
		return out
	}
	s.collectFields(s.Root, nil, map[*Type]bool{}, &out)
	return out
}

// SearchableFields returns only the fields marked searchable. When the
// schema marks none, every leaf field is considered searchable: the
// paper's default community schema predates the marker, so an unmarked
// schema searches on everything (matching the prototype's behaviour).
func (s *Schema) SearchableFields() []Field {
	all := s.Fields()
	var marked []Field
	for _, f := range all {
		if f.Searchable {
			marked = append(marked, f)
		}
	}
	if len(marked) == 0 {
		return all
	}
	return marked
}

// FieldByPath finds a field by its slash-joined path.
func (s *Schema) FieldByPath(path string) (Field, bool) {
	for _, f := range s.Fields() {
		if f.Path == path {
			return f, true
		}
	}
	return Field{}, false
}

func (s *Schema) collectFields(el *ElementDecl, prefix []string, seen map[*Type]bool, out *[]Field) {
	t := el.Type
	if t == nil {
		return
	}
	if t.Kind == TypeComplex {
		if t.Name != "" {
			if seen[t] {
				return
			}
			seen[t] = true
			defer delete(seen, t)
		}
		for _, c := range t.Children {
			var p []string
			if len(prefix) > 0 || el != s.Root {
				p = append(append(p, prefix...), el.Name)
			}
			// The root element's name is not part of field paths.
			if el == s.Root {
				p = prefix
			}
			s.collectFields(c, p, seen, out)
		}
		return
	}
	path := strings.Join(append(append([]string{}, prefix...), el.Name), "/")
	f := Field{
		Path:       path,
		Name:       el.Name,
		Builtin:    t.Builtin,
		Searchable: el.Searchable,
		Attachment: el.Attachment || t.Builtin == BuiltinAnyURI && el.Attachment,
		Repeated:   el.MaxOccurs == Unbounded || el.MaxOccurs > 1,
		Optional:   el.MinOccurs == 0,
	}
	switch {
	case t.Name != "":
		f.TypeName = t.Name
	case t.Kind == TypeBuiltin:
		f.TypeName = t.Builtin.String()
	default:
		f.TypeName = t.Builtin.String()
	}
	if t.Kind == TypeSimple {
		f.Enum = t.Enum
	}
	*out = append(*out, f)
}
