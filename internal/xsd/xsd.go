// Package xsd implements the XML Schema subset that U-P2P community
// descriptions use: top-level element declarations, complex types with
// sequence/choice/all content models, simple types derived by
// restriction (enumeration, pattern, length and value facets), the
// built-in primitive types appearing in the paper's artifacts, and
// occurrence constraints.
//
// Beyond validation the package exposes the structural introspection
// (Fields) that powers the generative half of the paper: default
// create/search stylesheets and the indexing transform are driven by
// walking the schema, and fields are marked searchable with the
// up2p:searchable attribute exactly as §IV.C.2 requires ("Schema
// authors will be required to mark fields as searchable").
package xsd

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmldoc"
)

// Unbounded is the MaxOccurs value for maxOccurs="unbounded".
const Unbounded = -1

// Schema is a parsed schema document.
type Schema struct {
	// TargetNamespace is the schema's targetNamespace attribute, if any.
	TargetNamespace string
	// Root is the first top-level element declaration; U-P2P object
	// schemas declare exactly one document element (e.g. "community").
	Root *ElementDecl
	// Elements holds all top-level element declarations by name.
	Elements map[string]*ElementDecl
	// Types holds named simple and complex types by name.
	Types map[string]*Type

	doc *xmldoc.Node
}

// ContentModel enumerates complex-type compositors.
type ContentModel int

// Content models.
const (
	ModelSequence ContentModel = iota + 1
	ModelChoice
	ModelAll
)

func (m ContentModel) String() string {
	switch m {
	case ModelSequence:
		return "sequence"
	case ModelChoice:
		return "choice"
	case ModelAll:
		return "all"
	default:
		return "none"
	}
}

// TypeKind discriminates Type variants.
type TypeKind int

// Type kinds.
const (
	TypeBuiltin TypeKind = iota + 1
	TypeSimple
	TypeComplex
)

// Type describes a simple or complex type.
type Type struct {
	Kind TypeKind
	Name string // empty for anonymous types

	// Builtin/simple facets.
	Builtin   Builtin // for TypeBuiltin, or the resolved base primitive for TypeSimple
	Base      string  // base type name for restrictions
	Enum      []string
	Pattern   string // XML Schema pattern facet (anchored regexp)
	MinLength int    // -1 when unset
	MaxLength int    // -1 when unset
	MinValue  *float64
	MaxValue  *float64

	// Complex content.
	Model    ContentModel
	Children []*ElementDecl
	Attrs    []*AttrDecl
	Mixed    bool
}

// ElementDecl is an element declaration (top-level or local particle).
type ElementDecl struct {
	Name      string
	TypeName  string // as written (e.g. "xsd:string", "protocolTypes"); empty for inline types
	Type      *Type  // resolved
	MinOccurs int
	MaxOccurs int // Unbounded for "unbounded"

	// Searchable marks the field for metadata indexing (up2p:searchable).
	Searchable bool
	// Attachment marks an anyURI element as a downloadable attachment
	// link (up2p:attachment), per §IV.C.1.
	Attachment bool
}

// AttrDecl is an attribute declaration on a complex type.
type AttrDecl struct {
	Name     string
	TypeName string
	Type     *Type
	Required bool
}

// ParseError reports a schema document that could not be interpreted.
type ParseError struct {
	Msg string
}

func (e *ParseError) Error() string { return "xsd: " + e.Msg }

// ErrNotASchema is returned when the document element is not <schema>.
var ErrNotASchema = errors.New("xsd: document element is not an XML Schema")

// Parse interprets an XML Schema document.
func Parse(doc *xmldoc.Node) (*Schema, error) {
	if doc == nil || doc.LocalName() != "schema" {
		return nil, ErrNotASchema
	}
	s := &Schema{
		TargetNamespace: doc.AttrDefault("targetNamespace", ""),
		Elements:        make(map[string]*ElementDecl),
		Types:           make(map[string]*Type),
		doc:             doc,
	}
	// First pass: collect named types so references resolve regardless
	// of declaration order.
	for _, c := range doc.Elements() {
		switch c.LocalName() {
		case "simpleType", "complexType":
			name, ok := c.Attr("name")
			if !ok || name == "" {
				return nil, &ParseError{Msg: "top-level type without name"}
			}
			if _, dup := s.Types[name]; dup {
				return nil, &ParseError{Msg: fmt.Sprintf("duplicate type %q", name)}
			}
			s.Types[name] = &Type{Name: name} // placeholder for cycles
		}
	}
	for _, c := range doc.Elements() {
		switch c.LocalName() {
		case "simpleType":
			t, err := s.parseSimpleType(c)
			if err != nil {
				return nil, err
			}
			*s.Types[c.AttrDefault("name", "")] = *t
			s.Types[c.AttrDefault("name", "")].Name = c.AttrDefault("name", "")
		case "complexType":
			t, err := s.parseComplexType(c)
			if err != nil {
				return nil, err
			}
			*s.Types[c.AttrDefault("name", "")] = *t
			s.Types[c.AttrDefault("name", "")].Name = c.AttrDefault("name", "")
		}
	}
	for _, c := range doc.Elements() {
		if c.LocalName() != "element" {
			continue
		}
		el, err := s.parseElement(c)
		if err != nil {
			return nil, err
		}
		if _, dup := s.Elements[el.Name]; dup {
			return nil, &ParseError{Msg: fmt.Sprintf("duplicate element %q", el.Name)}
		}
		s.Elements[el.Name] = el
		if s.Root == nil {
			s.Root = el
		}
	}
	if s.Root == nil {
		return nil, &ParseError{Msg: "schema declares no top-level element"}
	}
	// Resolve all deferred type references.
	if err := s.resolve(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseString parses a schema from its textual form.
func ParseString(src string) (*Schema, error) {
	doc, err := xmldoc.ParseString(src)
	if err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	return Parse(doc)
}

// MustParseString panics on error; for compiled-in schemas.
func MustParseString(src string) *Schema {
	s, err := ParseString(src)
	if err != nil {
		panic(err)
	}
	return s
}

// Doc returns the underlying schema document node (the input to the
// generative stylesheets of Fig. 2).
func (s *Schema) Doc() *xmldoc.Node { return s.doc }

// String serializes the schema's source document.
func (s *Schema) String() string { return s.doc.String() }

func (s *Schema) parseElement(n *xmldoc.Node) (*ElementDecl, error) {
	name, ok := n.Attr("name")
	if !ok || name == "" {
		return nil, &ParseError{Msg: "element without name"}
	}
	el := &ElementDecl{
		Name:      name,
		MinOccurs: 1,
		MaxOccurs: 1,
	}
	if v, ok := n.Attr("minOccurs"); ok {
		i, err := strconv.Atoi(v)
		if err != nil || i < 0 {
			return nil, &ParseError{Msg: fmt.Sprintf("element %q: bad minOccurs %q", name, v)}
		}
		el.MinOccurs = i
	}
	if v, ok := n.Attr("maxOccurs"); ok {
		if v == "unbounded" {
			el.MaxOccurs = Unbounded
		} else {
			i, err := strconv.Atoi(v)
			if err != nil || i < 0 {
				return nil, &ParseError{Msg: fmt.Sprintf("element %q: bad maxOccurs %q", name, v)}
			}
			el.MaxOccurs = i
		}
	}
	if el.MaxOccurs != Unbounded && el.MaxOccurs < el.MinOccurs {
		return nil, &ParseError{Msg: fmt.Sprintf("element %q: maxOccurs < minOccurs", name)}
	}
	el.Searchable = isTrue(attrAnyPrefix(n, "searchable"))
	el.Attachment = isTrue(attrAnyPrefix(n, "attachment"))

	typeName, hasType := n.Attr("type")
	inlineComplex := n.Child("complexType")
	inlineSimple := n.Child("simpleType")
	switch {
	case hasType && (inlineComplex != nil || inlineSimple != nil):
		return nil, &ParseError{Msg: fmt.Sprintf("element %q: both type attribute and inline type", name)}
	case hasType:
		el.TypeName = typeName
	case inlineComplex != nil:
		t, err := s.parseComplexType(inlineComplex)
		if err != nil {
			return nil, err
		}
		el.Type = t
	case inlineSimple != nil:
		t, err := s.parseSimpleType(inlineSimple)
		if err != nil {
			return nil, err
		}
		el.Type = t
	default:
		// No type: anyType; treat as string for U-P2P's purposes.
		el.TypeName = "xsd:string"
	}
	return el, nil
}

func (s *Schema) parseComplexType(n *xmldoc.Node) (*Type, error) {
	t := &Type{Kind: TypeComplex}
	t.Mixed = isTrue(n.AttrDefault("mixed", ""))
	for _, c := range n.Elements() {
		switch c.LocalName() {
		case "sequence", "choice", "all":
			if t.Model != 0 {
				return nil, &ParseError{Msg: "complexType with multiple compositors"}
			}
			switch c.LocalName() {
			case "sequence":
				t.Model = ModelSequence
			case "choice":
				t.Model = ModelChoice
			case "all":
				t.Model = ModelAll
			}
			for _, p := range c.Elements() {
				if p.LocalName() != "element" {
					return nil, &ParseError{Msg: fmt.Sprintf("unsupported particle <%s>", p.Name)}
				}
				el, err := s.parseElement(p)
				if err != nil {
					return nil, err
				}
				t.Children = append(t.Children, el)
			}
		case "attribute":
			a, err := s.parseAttribute(c)
			if err != nil {
				return nil, err
			}
			t.Attrs = append(t.Attrs, a)
		case "annotation":
			// Documentation; ignored.
		default:
			return nil, &ParseError{Msg: fmt.Sprintf("unsupported complexType child <%s>", c.Name)}
		}
	}
	if t.Model == 0 {
		t.Model = ModelSequence // empty content
	}
	return t, nil
}

func (s *Schema) parseAttribute(n *xmldoc.Node) (*AttrDecl, error) {
	name, ok := n.Attr("name")
	if !ok {
		return nil, &ParseError{Msg: "attribute without name"}
	}
	return &AttrDecl{
		Name:     name,
		TypeName: n.AttrDefault("type", "xsd:string"),
		Required: n.AttrDefault("use", "") == "required",
	}, nil
}

func (s *Schema) parseSimpleType(n *xmldoc.Node) (*Type, error) {
	t := &Type{Kind: TypeSimple, MinLength: -1, MaxLength: -1}
	restr := n.Child("restriction")
	if restr == nil {
		return nil, &ParseError{Msg: "simpleType without restriction"}
	}
	t.Base = restr.AttrDefault("base", "xsd:string")
	for _, f := range restr.Elements() {
		val, hasVal := f.Attr("value")
		if !hasVal {
			return nil, &ParseError{Msg: fmt.Sprintf("facet <%s> without value", f.Name)}
		}
		switch f.LocalName() {
		case "enumeration":
			t.Enum = append(t.Enum, val)
		case "pattern":
			t.Pattern = val
		case "minLength":
			i, err := strconv.Atoi(val)
			if err != nil {
				return nil, &ParseError{Msg: "bad minLength " + val}
			}
			t.MinLength = i
		case "maxLength":
			i, err := strconv.Atoi(val)
			if err != nil {
				return nil, &ParseError{Msg: "bad maxLength " + val}
			}
			t.MaxLength = i
		case "minInclusive":
			fv, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, &ParseError{Msg: "bad minInclusive " + val}
			}
			t.MinValue = &fv
		case "maxInclusive":
			fv, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, &ParseError{Msg: "bad maxInclusive " + val}
			}
			t.MaxValue = &fv
		default:
			return nil, &ParseError{Msg: fmt.Sprintf("unsupported facet <%s>", f.Name)}
		}
	}
	return t, nil
}

// resolve links every TypeName reference to a concrete *Type.
func (s *Schema) resolve() error {
	var resolveEl func(el *ElementDecl, seen map[string]bool) error
	resolveType := func(name string) (*Type, error) {
		if b, ok := LookupBuiltin(name); ok {
			return &Type{Kind: TypeBuiltin, Name: name, Builtin: b}, nil
		}
		local := name
		if i := strings.IndexByte(local, ':'); i >= 0 {
			local = local[i+1:]
		}
		if t, ok := s.Types[local]; ok {
			return t, nil
		}
		return nil, &ParseError{Msg: fmt.Sprintf("unknown type %q", name)}
	}
	resolveEl = func(el *ElementDecl, seen map[string]bool) error {
		if el.Type == nil {
			t, err := resolveType(el.TypeName)
			if err != nil {
				return fmt.Errorf("element %q: %w", el.Name, err)
			}
			el.Type = t
		}
		if el.Type.Kind == TypeComplex {
			key := el.Type.Name
			if key != "" {
				if seen[key] {
					return nil // recursive named type: already being resolved
				}
				seen[key] = true
			}
			for _, c := range el.Type.Children {
				if err := resolveEl(c, seen); err != nil {
					return err
				}
			}
			for _, a := range el.Type.Attrs {
				if a.Type == nil {
					t, err := resolveType(a.TypeName)
					if err != nil {
						return fmt.Errorf("attribute %q: %w", a.Name, err)
					}
					a.Type = t
				}
			}
		}
		if el.Type.Kind == TypeSimple && el.Type.Builtin == 0 {
			if err := s.resolveSimpleBase(el.Type, map[*Type]bool{}); err != nil {
				return fmt.Errorf("element %q: %w", el.Name, err)
			}
		}
		return nil
	}
	// Resolve named simple types' bases first (they may chain).
	for _, t := range s.Types {
		if t.Kind == TypeSimple {
			if err := s.resolveSimpleBase(t, map[*Type]bool{}); err != nil {
				return err
			}
		}
	}
	for _, el := range s.Elements {
		if err := resolveEl(el, map[string]bool{}); err != nil {
			return err
		}
	}
	return nil
}

// resolveSimpleBase computes the primitive Builtin at the bottom of a
// simple-type restriction chain.
func (s *Schema) resolveSimpleBase(t *Type, seen map[*Type]bool) error {
	if t.Builtin != 0 {
		return nil
	}
	if seen[t] {
		return &ParseError{Msg: fmt.Sprintf("cyclic simpleType derivation at %q", t.Name)}
	}
	seen[t] = true
	if b, ok := LookupBuiltin(t.Base); ok {
		t.Builtin = b
		return nil
	}
	local := t.Base
	if i := strings.IndexByte(local, ':'); i >= 0 {
		local = local[i+1:]
	}
	base, ok := s.Types[local]
	if !ok || base.Kind != TypeSimple {
		return &ParseError{Msg: fmt.Sprintf("simpleType %q: unknown base %q", t.Name, t.Base)}
	}
	if err := s.resolveSimpleBase(base, seen); err != nil {
		return err
	}
	t.Builtin = base.Builtin
	// Inherit enumeration from base when the derived type adds none
	// (restriction can only narrow).
	if len(t.Enum) == 0 {
		t.Enum = base.Enum
	}
	return nil
}

// attrAnyPrefix finds an attribute by local name regardless of prefix
// ("up2p:searchable", "searchable").
func attrAnyPrefix(n *xmldoc.Node, local string) string {
	for _, a := range n.Attrs {
		name := a.Name
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[i+1:]
		}
		if name == local {
			return a.Value
		}
	}
	return ""
}

func isTrue(v string) bool {
	return v == "true" || v == "1" || v == "yes"
}
