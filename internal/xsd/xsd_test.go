package xsd

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmldoc"
)

// fig3Schema is the paper's Fig. 3 community schema, verbatim.
const fig3Schema = `<?xml version="1.0"?>
<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <element name="community">
  <complexType>
   <sequence>
    <element name="name" type="xsd:string"/>
    <element name="description" type="xsd:string"/>
    <element name="keywords" type="xsd:string"/>
    <element name="category" type="xsd:string"/>
    <element name="security" type="xsd:string"/>
    <element name="protocol" type="protocolTypes"/>
    <element name="schema" type="xsd:anyURI"/>
    <element name="displaystyle" type="xsd:anyURI"/>
    <element name="createstyle" type="xsd:anyURI"/>
    <element name="searchstyle" type="xsd:anyURI"/>
   </sequence>
  </complexType>
 </element>
 <simpleType name="protocolTypes">
  <restriction base="string">
   <enumeration value=""/>
   <enumeration value="Napster"/>
   <enumeration value="Gnutella"/>
   <enumeration value="FastTrack"/>
  </restriction>
 </simpleType>
</schema>`

func fig3(t *testing.T) *Schema {
	t.Helper()
	s, err := ParseString(fig3Schema)
	if err != nil {
		t.Fatalf("parse Fig. 3 schema: %v", err)
	}
	return s
}

func TestParseFig3(t *testing.T) {
	s := fig3(t)
	if s.Root == nil || s.Root.Name != "community" {
		t.Fatalf("root = %+v", s.Root)
	}
	if s.Root.Type.Kind != TypeComplex {
		t.Fatalf("root type kind = %v", s.Root.Type.Kind)
	}
	if got := len(s.Root.Type.Children); got != 10 {
		t.Errorf("community has %d children, want 10", got)
	}
	pt, ok := s.Types["protocolTypes"]
	if !ok {
		t.Fatal("protocolTypes not registered")
	}
	if len(pt.Enum) != 4 {
		t.Errorf("protocolTypes enum = %v", pt.Enum)
	}
	if pt.Builtin != BuiltinString {
		t.Errorf("protocolTypes primitive = %v", pt.Builtin)
	}
	// The protocol element's type resolves to the named simple type.
	var protocol *ElementDecl
	for _, c := range s.Root.Type.Children {
		if c.Name == "protocol" {
			protocol = c
		}
	}
	if protocol == nil || protocol.Type != pt {
		t.Error("protocol element not linked to protocolTypes")
	}
}

func validCommunityDoc() string {
	return `<community>
  <name>mp3</name>
  <description>MP3 trading</description>
  <keywords>music audio</keywords>
  <category>media</category>
  <security>open</security>
  <protocol>Gnutella</protocol>
  <schema>http://example.org/mp3.xsd</schema>
  <displaystyle>http://example.org/view.xsl</displaystyle>
  <createstyle>http://example.org/create.xsl</createstyle>
  <searchstyle>http://example.org/search.xsl</searchstyle>
</community>`
}

func TestValidateFig3Instance(t *testing.T) {
	s := fig3(t)
	doc := xmldoc.MustParse(validCommunityDoc())
	if err := s.Validate(doc); err != nil {
		t.Fatalf("valid community rejected: %v", err)
	}
}

func TestValidateViolations(t *testing.T) {
	s := fig3(t)
	tests := []struct {
		name   string
		mutate func(*xmldoc.Node)
		substr string
	}{
		{
			"bad enum",
			func(d *xmldoc.Node) { d.SetChildText("protocol", "Freenet") },
			"enumeration",
		},
		{
			"missing element",
			func(d *xmldoc.Node) { d.RemoveChild(d.Child("category")) },
			"<category>",
		},
		{
			"extra element",
			func(d *xmldoc.Node) { d.AppendChild(xmldoc.NewElement("bogus")) },
			"unexpected element",
		},
		{
			"wrong order",
			func(d *xmldoc.Node) {
				name := d.Child("name")
				d.RemoveChild(name)
				d.AppendChild(name)
			},
			"expected",
		},
		{
			"element content in simple type",
			func(d *xmldoc.Node) { d.Child("name").AppendChild(xmldoc.NewElement("sub")) },
			"element content not allowed",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			doc := xmldoc.MustParse(validCommunityDoc())
			tt.mutate(doc)
			err := s.Validate(doc)
			if err == nil {
				t.Fatal("mutated document accepted")
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("error type = %T", err)
			}
			if !strings.Contains(err.Error(), tt.substr) {
				t.Errorf("error %q does not mention %q", err.Error(), tt.substr)
			}
		})
	}
}

func TestValidateWrongRoot(t *testing.T) {
	s := fig3(t)
	err := s.Validate(xmldoc.MustParse("<other/>"))
	if err == nil || !strings.Contains(err.Error(), "unexpected document element") {
		t.Errorf("err = %v", err)
	}
	if err := s.Validate(nil); err == nil {
		t.Error("nil document accepted")
	}
}

func TestEmptyProtocolAllowed(t *testing.T) {
	// Fig. 3 includes <enumeration value=""/> — empty protocol valid.
	s := fig3(t)
	doc := xmldoc.MustParse(validCommunityDoc())
	proto := doc.Child("protocol")
	proto.Children = nil
	if err := s.Validate(doc); err != nil {
		t.Errorf("empty protocol rejected: %v", err)
	}
}

func TestFieldsFlattening(t *testing.T) {
	s := fig3(t)
	fields := s.Fields()
	if len(fields) != 10 {
		t.Fatalf("fields = %d, want 10", len(fields))
	}
	if fields[0].Path != "name" || fields[0].Builtin != BuiltinString {
		t.Errorf("first field = %+v", fields[0])
	}
	var protocol Field
	for _, f := range fields {
		if f.Name == "protocol" {
			protocol = f
		}
	}
	if len(protocol.Enum) != 4 || protocol.TypeName != "protocolTypes" {
		t.Errorf("protocol field = %+v", protocol)
	}
	// No field marked searchable → all searchable by default.
	if got := len(s.SearchableFields()); got != 10 {
		t.Errorf("searchable = %d, want 10", got)
	}
}

const nestedSchema = `
<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <element name="pattern">
  <complexType>
   <sequence>
    <element name="title" type="xsd:string" up2p:searchable="true" xmlns:up2p="http://up2p.carleton.ca/ns/community"/>
    <element name="intent" type="xsd:string" up2p:searchable="true" xmlns:up2p="http://up2p.carleton.ca/ns/community"/>
    <element name="solution">
     <complexType>
      <sequence>
       <element name="participants" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
       <element name="code" type="xsd:anyURI" minOccurs="0" up2p:attachment="true" xmlns:up2p="http://up2p.carleton.ca/ns/community"/>
      </sequence>
     </complexType>
    </element>
    <element name="year" type="xsd:integer" minOccurs="0"/>
   </sequence>
  </complexType>
 </element>
</schema>`

func TestNestedFieldsAndMarkers(t *testing.T) {
	s, err := ParseString(nestedSchema)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fields := s.Fields()
	paths := make([]string, len(fields))
	for i, f := range fields {
		paths[i] = f.Path
	}
	want := []string{"title", "intent", "solution/participants", "solution/code", "year"}
	if strings.Join(paths, ",") != strings.Join(want, ",") {
		t.Errorf("paths = %v, want %v", paths, want)
	}
	search := s.SearchableFields()
	if len(search) != 2 || search[0].Path != "title" || search[1].Path != "intent" {
		t.Errorf("searchable = %+v", search)
	}
	var code Field
	for _, f := range fields {
		if f.Path == "solution/code" {
			code = f
		}
	}
	if !code.Attachment || !code.Optional {
		t.Errorf("code field = %+v", code)
	}
	var parts Field
	for _, f := range fields {
		if f.Path == "solution/participants" {
			parts = f
		}
	}
	if !parts.Repeated || !parts.Optional {
		t.Errorf("participants field = %+v", parts)
	}
	if _, ok := s.FieldByPath("solution/code"); !ok {
		t.Error("FieldByPath failed")
	}
	if _, ok := s.FieldByPath("nope"); ok {
		t.Error("FieldByPath found nonexistent")
	}
}

func TestOccurrenceValidation(t *testing.T) {
	s, err := ParseString(nestedSchema)
	if err != nil {
		t.Fatal(err)
	}
	valid := `<pattern><title>Observer</title><intent>notify</intent><solution><participants>Subject</participants><participants>Observer</participants></solution><year>1994</year></pattern>`
	if err := s.Validate(xmldoc.MustParse(valid)); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	// year omitted (minOccurs=0) is fine.
	noYear := `<pattern><title>t</title><intent>i</intent><solution/></pattern>`
	if err := s.Validate(xmldoc.MustParse(noYear)); err != nil {
		t.Errorf("optional year rejected: %v", err)
	}
	// bad integer
	badYear := `<pattern><title>t</title><intent>i</intent><solution/><year>not-a-number</year></pattern>`
	if err := s.Validate(xmldoc.MustParse(badYear)); err == nil {
		t.Error("bad integer accepted")
	}
}

func TestChoiceModel(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
	 <element name="media"><complexType><choice>
	   <element name="audio" type="xsd:string" maxOccurs="unbounded"/>
	   <element name="video" type="xsd:string" minOccurs="0"/>
	 </choice></complexType></element></schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmldoc.MustParse(`<media><audio>a</audio><audio>b</audio></media>`)); err != nil {
		t.Errorf("choice audio rejected: %v", err)
	}
	if err := s.Validate(xmldoc.MustParse(`<media><video>v</video></media>`)); err != nil {
		t.Errorf("choice video rejected: %v", err)
	}
	if err := s.Validate(xmldoc.MustParse(`<media><audio>a</audio><video>v</video></media>`)); err == nil {
		t.Error("mixed choice branches accepted")
	}
	if err := s.Validate(xmldoc.MustParse(`<media/>`)); err != nil {
		t.Errorf("empty with optional branch rejected: %v", err)
	}
	if err := s.Validate(xmldoc.MustParse(`<media><other/></media>`)); err == nil {
		t.Error("unknown branch accepted")
	}
}

func TestAllModel(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
	 <element name="song"><complexType><all>
	   <element name="title" type="xsd:string"/>
	   <element name="artist" type="xsd:string"/>
	   <element name="album" type="xsd:string" minOccurs="0"/>
	 </all></complexType></element></schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	// Any order works for xsd:all.
	if err := s.Validate(xmldoc.MustParse(`<song><artist>a</artist><title>t</title></song>`)); err != nil {
		t.Errorf("all out-of-order rejected: %v", err)
	}
	if err := s.Validate(xmldoc.MustParse(`<song><title>t</title></song>`)); err == nil {
		t.Error("missing required artist accepted")
	}
	if err := s.Validate(xmldoc.MustParse(`<song><title>a</title><title>b</title><artist>x</artist></song>`)); err == nil {
		t.Error("duplicate title in xsd:all accepted")
	}
}

func TestAttributeValidation(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
	 <element name="file"><complexType>
	   <sequence><element name="name" type="xsd:string"/></sequence>
	   <attribute name="size" type="xsd:integer" use="required"/>
	   <attribute name="mime" type="xsd:string"/>
	 </complexType></element></schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmldoc.MustParse(`<file size="100"><name>x</name></file>`)); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
	if err := s.Validate(xmldoc.MustParse(`<file><name>x</name></file>`)); err == nil {
		t.Error("missing required attribute accepted")
	}
	if err := s.Validate(xmldoc.MustParse(`<file size="big"><name>x</name></file>`)); err == nil {
		t.Error("non-integer size accepted")
	}
	if err := s.Validate(xmldoc.MustParse(`<file size="1" bogus="y"><name>x</name></file>`)); err == nil {
		t.Error("undeclared attribute accepted")
	}
}

func TestFacets(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
	 <element name="v" type="limited"/>
	 <simpleType name="limited">
	  <restriction base="xsd:string">
	   <minLength value="2"/><maxLength value="5"/><pattern value="[a-z]+"/>
	  </restriction>
	 </simpleType></schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ok := []string{"ab", "abcde"}
	bad := []string{"a", "abcdef", "ABC", "ab1"}
	for _, v := range ok {
		if err := s.Validate(xmldoc.MustParse("<v>" + v + "</v>")); err != nil {
			t.Errorf("%q rejected: %v", v, err)
		}
	}
	for _, v := range bad {
		if err := s.Validate(xmldoc.MustParse("<v>" + v + "</v>")); err == nil {
			t.Errorf("%q accepted", v)
		}
	}
}

func TestNumericRangeFacets(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
	 <element name="score" type="pct"/>
	 <simpleType name="pct"><restriction base="xsd:integer">
	  <minInclusive value="0"/><maxInclusive value="100"/>
	 </restriction></simpleType></schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmldoc.MustParse("<score>50</score>")); err != nil {
		t.Errorf("50 rejected: %v", err)
	}
	if err := s.Validate(xmldoc.MustParse("<score>101</score>")); err == nil {
		t.Error("101 accepted")
	}
	if err := s.Validate(xmldoc.MustParse("<score>-1</score>")); err == nil {
		t.Error("-1 accepted")
	}
}

func TestDerivedSimpleTypeChain(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
	 <element name="x" type="b"/>
	 <simpleType name="a"><restriction base="xsd:string">
	   <enumeration value="one"/><enumeration value="two"/></restriction></simpleType>
	 <simpleType name="b"><restriction base="a"><maxLength value="3"/></restriction></simpleType>
	</schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	// b inherits a's enumeration and adds maxLength.
	if err := s.Validate(xmldoc.MustParse("<x>one</x>")); err != nil {
		t.Errorf("one rejected: %v", err)
	}
	if err := s.Validate(xmldoc.MustParse("<x>two</x>")); err == nil {
		// "two" has length 3 which is fine... wait maxLength 3 allows it.
		// Actually "two" is valid; this should pass.
		t.Log("two accepted as expected")
	}
	if err := s.Validate(xmldoc.MustParse("<x>three</x>")); err == nil {
		t.Error("three accepted (not in enum, too long)")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		name, src string
	}{
		{"not schema", "<notschema/>"},
		{"no elements", `<schema xmlns="http://www.w3.org/2001/XMLSchema"><simpleType name="t"><restriction base="xsd:string"/></simpleType></schema>`},
		{"unknown type ref", `<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="e" type="nope"/></schema>`},
		{"element without name", `<schema xmlns="http://www.w3.org/2001/XMLSchema"><element type="xsd:string"/></schema>`},
		{"bad minOccurs", `<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="e"><complexType><sequence><element name="x" type="xsd:string" minOccurs="-2"/></sequence></complexType></element></schema>`},
		{"max lt min", `<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="e"><complexType><sequence><element name="x" type="xsd:string" minOccurs="3" maxOccurs="1"/></sequence></complexType></element></schema>`},
		{"dup type", `<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="e" type="xsd:string"/><simpleType name="t"><restriction base="xsd:string"/></simpleType><simpleType name="t"><restriction base="xsd:string"/></simpleType></schema>`},
		{"dup element", `<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="e" type="xsd:string"/><element name="e" type="xsd:string"/></schema>`},
		{"simpleType without restriction", `<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="e" type="t"/><simpleType name="t"/></schema>`},
		{"both type and inline", `<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="e" type="xsd:string"><complexType/></element></schema>`},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseString(tt.src); err == nil {
				t.Errorf("ParseString accepted %s", tt.name)
			}
		})
	}
}

func TestBuiltinCheckValue(t *testing.T) {
	cases := []struct {
		b   Builtin
		ok  []string
		bad []string
	}{
		{BuiltinString, []string{"", "anything"}, nil},
		{BuiltinBoolean, []string{"true", "false", "1", "0"}, []string{"yes", "TRUE"}},
		{BuiltinInteger, []string{"0", "-5", "123456789"}, []string{"1.5", "x", ""}},
		{BuiltinDecimal, []string{"1.5", "-0.01", "3"}, []string{"abc", ""}},
		{BuiltinDate, []string{"2002-02-14"}, []string{"14/02/2002", "2002"}},
		{BuiltinDateTime, []string{"2002-02-14T10:00:00Z", "2002-02-14T10:00:00"}, []string{"today"}},
		{BuiltinAnyURI, []string{"http://example.org/x", ""}, nil},
		{BuiltinDuration, []string{"P1Y", "-P3D"}, []string{"1 year"}},
	}
	for _, c := range cases {
		for _, v := range c.ok {
			if err := c.b.CheckValue(v); err != nil {
				t.Errorf("%v.CheckValue(%q) = %v, want nil", c.b, v, err)
			}
		}
		for _, v := range c.bad {
			if err := c.b.CheckValue(v); err == nil {
				t.Errorf("%v.CheckValue(%q) = nil, want error", c.b, v)
			}
		}
	}
}

func TestLookupBuiltin(t *testing.T) {
	if b, ok := LookupBuiltin("xsd:string"); !ok || b != BuiltinString {
		t.Error("xsd:string lookup failed")
	}
	if b, ok := LookupBuiltin("integer"); !ok || b != BuiltinInteger {
		t.Error("integer lookup failed")
	}
	if _, ok := LookupBuiltin("notatype"); ok {
		t.Error("bogus type resolved")
	}
	if !BuiltinInt.IsNumeric() || BuiltinString.IsNumeric() {
		t.Error("IsNumeric wrong")
	}
}

func TestValidateValue(t *testing.T) {
	s := fig3(t)
	var protocol *ElementDecl
	for _, c := range s.Root.Type.Children {
		if c.Name == "protocol" {
			protocol = c
		}
	}
	if err := s.ValidateValue(protocol, "Napster"); err != nil {
		t.Errorf("Napster rejected: %v", err)
	}
	if err := s.ValidateValue(protocol, "Kazaa"); err == nil {
		t.Error("Kazaa accepted")
	}
}

// Property: any sequence of values drawn from the enumeration
// validates; any value outside it fails.
func TestPropertyEnumClosed(t *testing.T) {
	s := fig3(t)
	enum := s.Types["protocolTypes"].Enum
	f := func(idx uint8, junkSuffix uint8) bool {
		doc := xmldoc.MustParse(validCommunityDoc())
		val := enum[int(idx)%len(enum)]
		doc.SetChildText("protocol", val)
		if s.Validate(doc) != nil {
			return false
		}
		doc.SetChildText("protocol", val+"X"+string(rune('a'+junkSuffix%26)))
		return s.Validate(doc) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Fields() paths are unique and non-empty for any of our
// bundled schemas.
func TestPropertyFieldPathsUnique(t *testing.T) {
	for _, src := range []string{fig3Schema, nestedSchema} {
		s, err := ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, f := range s.Fields() {
			if f.Path == "" {
				t.Error("empty field path")
			}
			if seen[f.Path] {
				t.Errorf("duplicate field path %q", f.Path)
			}
			seen[f.Path] = true
		}
	}
}

func TestMixedContent(t *testing.T) {
	src := `<schema xmlns="http://www.w3.org/2001/XMLSchema">
	 <element name="doc"><complexType mixed="true"><sequence>
	   <element name="b" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
	 </sequence></complexType></element></schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmldoc.MustParse(`<doc>text <b>bold</b> more</doc>`)); err != nil {
		t.Errorf("mixed content rejected: %v", err)
	}
	// Non-mixed rejects text.
	src2 := strings.Replace(src, ` mixed="true"`, "", 1)
	s2, err := ParseString(src2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(xmldoc.MustParse(`<doc>text <b>bold</b></doc>`)); err == nil {
		t.Error("text in element-only content accepted")
	}
}
