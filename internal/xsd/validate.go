package xsd

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/xmldoc"
)

// Violation is one validation failure at a document location.
type Violation struct {
	// Path locates the offending node, e.g. "/community/protocol".
	Path string
	// Msg describes the failure.
	Msg string
}

func (v Violation) String() string { return v.Path + ": " + v.Msg }

// ValidationError aggregates all violations found in one document.
type ValidationError struct {
	Violations []Violation
}

func (e *ValidationError) Error() string {
	if len(e.Violations) == 1 {
		return "xsd: invalid document: " + e.Violations[0].String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "xsd: invalid document (%d violations):", len(e.Violations))
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// validator accumulates violations during a walk.
type validator struct {
	schema *Schema
	out    []Violation
}

func (v *validator) addf(path, format string, args ...any) {
	v.out = append(v.out, Violation{Path: path, Msg: fmt.Sprintf(format, args...)})
}

// Validate checks an instance document against the schema's root
// element declaration. It returns nil when valid, otherwise a
// *ValidationError listing every violation found.
func (s *Schema) Validate(doc *xmldoc.Node) error {
	if doc == nil {
		return &ValidationError{Violations: []Violation{{Path: "/", Msg: "nil document"}}}
	}
	decl, ok := s.Elements[doc.LocalName()]
	if !ok {
		return &ValidationError{Violations: []Violation{{
			Path: "/" + doc.LocalName(),
			Msg:  fmt.Sprintf("unexpected document element; schema declares %q", s.Root.Name),
		}}}
	}
	v := &validator{schema: s}
	v.element(doc, decl, "/"+doc.LocalName())
	if len(v.out) > 0 {
		return &ValidationError{Violations: v.out}
	}
	return nil
}

// ValidateValue checks a single lexical value against an element
// declaration's (simple) type. Used by the servent when processing
// create-form submissions field by field.
func (s *Schema) ValidateValue(decl *ElementDecl, value string) error {
	if decl.Type == nil {
		return nil
	}
	v := &validator{schema: s}
	v.simpleValue(value, decl.Type, decl.Name)
	if len(v.out) > 0 {
		return &ValidationError{Violations: v.out}
	}
	return nil
}

func (v *validator) element(n *xmldoc.Node, decl *ElementDecl, path string) {
	t := decl.Type
	if t == nil {
		return
	}
	switch t.Kind {
	case TypeBuiltin, TypeSimple:
		// Element must have text-only content.
		for _, c := range n.Children {
			if c.Kind == xmldoc.KindElement {
				v.addf(path, "element content not allowed in simple-typed element (<%s>)", c.Name)
				return
			}
		}
		v.simpleValue(strings.TrimSpace(n.Text()), t, path)
	case TypeComplex:
		v.complexContent(n, t, path)
	}
}

func (v *validator) simpleValue(val string, t *Type, path string) {
	switch t.Kind {
	case TypeBuiltin:
		if err := t.Builtin.CheckValue(val); err != nil {
			v.addf(path, "%v", err)
		}
	case TypeSimple:
		if t.Builtin != 0 {
			if err := t.Builtin.CheckValue(val); err != nil {
				v.addf(path, "%v", err)
				return
			}
		}
		if len(t.Enum) > 0 {
			found := false
			for _, e := range t.Enum {
				if e == val {
					found = true
					break
				}
			}
			if !found {
				v.addf(path, "value %q not in enumeration %v", val, t.Enum)
			}
		}
		if t.Pattern != "" {
			re, err := regexp.Compile("^(?:" + t.Pattern + ")$")
			if err != nil {
				v.addf(path, "unusable pattern facet %q: %v", t.Pattern, err)
			} else if !re.MatchString(val) {
				v.addf(path, "value %q does not match pattern %q", val, t.Pattern)
			}
		}
		runes := len([]rune(val))
		if t.MinLength >= 0 && runes < t.MinLength {
			v.addf(path, "length %d below minLength %d", runes, t.MinLength)
		}
		if t.MaxLength >= 0 && runes > t.MaxLength {
			v.addf(path, "length %d above maxLength %d", runes, t.MaxLength)
		}
		if t.MinValue != nil || t.MaxValue != nil {
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				v.addf(path, "value %q is not numeric for range facet", val)
				return
			}
			if t.MinValue != nil && f < *t.MinValue {
				v.addf(path, "value %v below minInclusive %v", f, *t.MinValue)
			}
			if t.MaxValue != nil && f > *t.MaxValue {
				v.addf(path, "value %v above maxInclusive %v", f, *t.MaxValue)
			}
		}
	}
}

func (v *validator) complexContent(n *xmldoc.Node, t *Type, path string) {
	// Attributes.
	declared := make(map[string]*AttrDecl, len(t.Attrs))
	for _, a := range t.Attrs {
		declared[a.Name] = a
		if _, present := n.Attr(a.Name); a.Required && !present {
			v.addf(path, "missing required attribute %q", a.Name)
		}
	}
	for _, a := range n.Attrs {
		if strings.HasPrefix(a.Name, "xmlns") || strings.Contains(a.Name, ":") {
			continue // namespace decls and foreign-namespace attrs allowed
		}
		d, ok := declared[a.Name]
		if !ok {
			v.addf(path, "undeclared attribute %q", a.Name)
			continue
		}
		if d.Type != nil {
			v.simpleValue(a.Value, d.Type, path+"/@"+a.Name)
		}
	}
	// Text content only allowed when mixed.
	if !t.Mixed {
		for _, c := range n.Children {
			if c.Kind == xmldoc.KindText && strings.TrimSpace(c.Data) != "" {
				v.addf(path, "text content not allowed in element-only content")
				break
			}
		}
	}
	kids := n.Elements()
	switch t.Model {
	case ModelSequence:
		v.sequence(kids, t.Children, path)
	case ModelChoice:
		v.choice(kids, t.Children, path)
	case ModelAll:
		v.all(kids, t.Children, path)
	}
}

// sequence validates ordered content with occurrence counting.
func (v *validator) sequence(kids []*xmldoc.Node, decls []*ElementDecl, path string) {
	i := 0
	for _, d := range decls {
		count := 0
		for i < len(kids) && kids[i].LocalName() == d.Name {
			v.element(kids[i], d, childPath(path, d.Name, count))
			i++
			count++
			if d.MaxOccurs != Unbounded && count >= d.MaxOccurs {
				break
			}
		}
		if count < d.MinOccurs {
			v.addf(path, "expected %d+ <%s>, found %d", d.MinOccurs, d.Name, count)
		}
	}
	for ; i < len(kids); i++ {
		v.addf(path, "unexpected element <%s>", kids[i].Name)
	}
}

// choice validates that children all match exactly one branch.
func (v *validator) choice(kids []*xmldoc.Node, decls []*ElementDecl, path string) {
	if len(kids) == 0 {
		// Valid only if some branch allows zero occurrences.
		for _, d := range decls {
			if d.MinOccurs == 0 {
				return
			}
		}
		v.addf(path, "empty content; choice requires one of %s", declNames(decls))
		return
	}
	var branch *ElementDecl
	for _, d := range decls {
		if d.Name == kids[0].LocalName() {
			branch = d
			break
		}
	}
	if branch == nil {
		v.addf(path, "element <%s> matches no choice branch %s", kids[0].Name, declNames(decls))
		return
	}
	count := 0
	for _, k := range kids {
		if k.LocalName() != branch.Name {
			v.addf(path, "mixed choice branches: <%s> after <%s>", k.Name, branch.Name)
			return
		}
		v.element(k, branch, childPath(path, branch.Name, count))
		count++
	}
	if count < branch.MinOccurs {
		v.addf(path, "expected %d+ <%s>, found %d", branch.MinOccurs, branch.Name, count)
	}
	if branch.MaxOccurs != Unbounded && count > branch.MaxOccurs {
		v.addf(path, "expected at most %d <%s>, found %d", branch.MaxOccurs, branch.Name, count)
	}
}

// all validates unordered content where each declared element appears
// within its occurrence bounds.
func (v *validator) all(kids []*xmldoc.Node, decls []*ElementDecl, path string) {
	counts := make(map[string]int, len(decls))
	byName := make(map[string]*ElementDecl, len(decls))
	for _, d := range decls {
		byName[d.Name] = d
	}
	for _, k := range kids {
		d, ok := byName[k.LocalName()]
		if !ok {
			v.addf(path, "unexpected element <%s>", k.Name)
			continue
		}
		v.element(k, d, childPath(path, d.Name, counts[d.Name]))
		counts[d.Name]++
	}
	for _, d := range decls {
		c := counts[d.Name]
		if c < d.MinOccurs {
			v.addf(path, "expected %d+ <%s>, found %d", d.MinOccurs, d.Name, c)
		}
		max := d.MaxOccurs
		if max == Unbounded {
			continue
		}
		if max > 1 {
			max = 1 // xsd:all caps occurrences at 1
		}
		if c > max {
			v.addf(path, "expected at most %d <%s>, found %d", max, d.Name, c)
		}
	}
}

func childPath(parent, name string, idx int) string {
	if idx == 0 {
		return parent + "/" + name
	}
	return fmt.Sprintf("%s/%s[%d]", parent, name, idx+1)
}

func declNames(decls []*ElementDecl) string {
	names := make([]string, len(decls))
	for i, d := range decls {
		names[i] = d.Name
	}
	return "{" + strings.Join(names, ", ") + "}"
}
