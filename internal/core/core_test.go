package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/transport"
	"repro/internal/xmldoc"
)

const songSchema = `
<schema xmlns="http://www.w3.org/2001/XMLSchema" xmlns:up2p="http://up2p.carleton.ca/ns/community">
 <element name="song">
  <complexType>
   <sequence>
    <element name="title" type="xsd:string" up2p:searchable="true"/>
    <element name="artist" type="xsd:string" up2p:searchable="true"/>
    <element name="album" type="xsd:string" minOccurs="0" up2p:searchable="true"/>
    <element name="bitrate" type="xsd:integer" minOccurs="0"/>
   </sequence>
  </complexType>
 </element>
</schema>`

// fixture builds n servents on one centralized mem-network.
type fixture struct {
	net      *transport.MemNetwork
	server   *p2p.IndexServer
	servents []*Servent
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	net := transport.NewMemNetwork()
	sep, err := net.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{net: net, server: p2p.NewIndexServer(sep)}
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("peer%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		st := index.NewStore()
		client := p2p.NewCentralizedClient(ep, "server", st)
		sv, err := NewServent(client, st)
		if err != nil {
			t.Fatal(err)
		}
		f.servents = append(f.servents, sv)
	}
	return f
}

func TestRootCommunityBootstrap(t *testing.T) {
	f := newFixture(t, 1)
	sv := f.servents[0]
	if !sv.IsJoined(RootCommunityID) {
		t.Fatal("servent not in root community")
	}
	joined := sv.Joined()
	if len(joined) != 1 || joined[0] != RootCommunityID {
		t.Errorf("joined = %v", joined)
	}
	root, ok := sv.Community(RootCommunityID)
	if !ok {
		t.Fatal("root community not installed")
	}
	if root.Schema.Root.Name != "community" {
		t.Errorf("root schema element = %q", root.Schema.Root.Name)
	}
	// Fig. 3 protocol enumeration present.
	pt, ok := root.Schema.Types["protocolTypes"]
	if !ok || len(pt.Enum) != 4 {
		t.Errorf("protocolTypes = %+v", pt)
	}
}

func TestCreateCommunityAndPublish(t *testing.T) {
	f := newFixture(t, 1)
	sv := f.servents[0]
	c, err := sv.CreateCommunity(CommunitySpec{
		Name:        "mp3",
		Description: "MP3 trading community",
		Keywords:    "music audio mp3",
		Category:    "media",
		Security:    "open",
		Protocol:    "Napster",
		SchemaSrc:   songSchema,
	})
	if err != nil {
		t.Fatalf("create community: %v", err)
	}
	if !sv.IsJoined(c.ID) {
		t.Error("creator did not join own community")
	}
	obj := xmldoc.MustParse(`<song><title>So What</title><artist>Miles Davis</artist><album>Kind of Blue</album><bitrate>320</bitrate></song>`)
	docID, err := sv.Publish(c.ID, obj, nil)
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	rs, err := sv.Search(c.ID, query.MustParse("(artist~=miles)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if len(rs) != 1 || rs[0].DocID != docID {
		t.Fatalf("results = %+v", rs)
	}
	if rs[0].Title != "So What" {
		t.Errorf("title = %q", rs[0].Title)
	}
	// bitrate is not searchable: not in result attrs.
	if _, present := rs[0].Attrs["bitrate"]; present {
		t.Error("unsearchable bitrate was indexed")
	}
}

// TestPublishBatchMatchesPublish: the batched ingest path yields the
// same doc IDs, local store state, and network visibility as
// one-by-one Publish — on both the publisher and the index server.
func TestPublishBatchMatchesPublish(t *testing.T) {
	f := newFixture(t, 2)
	batcher, single := f.servents[0], f.servents[1]
	c, err := batcher.CreateCommunity(CommunitySpec{Name: "mp3", SchemaSrc: songSchema})
	if err != nil {
		t.Fatalf("create community: %v", err)
	}
	found, err := single.DiscoverCommunities(query.MustParse("(name=mp3)"), p2p.SearchOptions{})
	if err != nil || len(found) == 0 {
		t.Fatalf("discover = %v, %v", found, err)
	}
	if _, err := single.JoinFromNetwork(found[0]); err != nil {
		t.Fatalf("join: %v", err)
	}
	srcs := []string{
		`<song><title>So What</title><artist>Miles Davis</artist></song>`,
		`<song><title>Naima</title><artist>John Coltrane</artist></song>`,
		`<song><title>Footprints</title><artist>Wayne Shorter</artist></song>`,
	}
	var objs []*xmldoc.Node
	for _, src := range srcs {
		objs = append(objs, xmldoc.MustParse(src))
	}
	batchIDs, err := batcher.PublishBatch(c.ID, objs)
	if err != nil {
		t.Fatalf("publish batch: %v", err)
	}
	if len(batchIDs) != len(objs) {
		t.Fatalf("batch ids = %d, want %d", len(batchIDs), len(objs))
	}
	for i, src := range srcs {
		id, err := single.Publish(c.ID, xmldoc.MustParse(src), nil)
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if id != batchIDs[i] {
			t.Errorf("object %d: batch id %s != single id %s", i, batchIDs[i], id)
		}
		if !batcher.Store().Has(batchIDs[i]) {
			t.Errorf("object %d missing from batcher's store", i)
		}
	}
	// The server indexed the batch: every object searchable, with both
	// peers as providers.
	rs, err := batcher.Search(c.ID, query.MustParse("(artist~=miles)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %+v, want the replica from each peer", rs)
	}

	// Validation is all-or-nothing: one bad object rejects the batch.
	_, err = batcher.PublishBatch(c.ID, []*xmldoc.Node{
		xmldoc.MustParse(`<song><title>OK</title><artist>A</artist></song>`),
		xmldoc.MustParse(`<song><artist>missing title</artist></song>`),
	})
	if err == nil {
		t.Fatal("batch with invalid object accepted")
	}
	if _, err := batcher.PublishBatch("nope", nil); !errors.Is(err, ErrNotJoined) {
		t.Errorf("unjoined community error = %v", err)
	}
}

func TestPublishValidatesAgainstSchema(t *testing.T) {
	f := newFixture(t, 1)
	sv := f.servents[0]
	c, err := sv.CreateCommunity(CommunitySpec{Name: "mp3", SchemaSrc: songSchema})
	if err != nil {
		t.Fatal(err)
	}
	// Missing required artist.
	_, err = sv.Publish(c.ID, xmldoc.MustParse(`<song><title>X</title></song>`), nil)
	if err == nil {
		t.Error("invalid object published")
	}
	// Wrong root element.
	_, err = sv.Publish(c.ID, xmldoc.MustParse(`<movie/>`), nil)
	if err == nil {
		t.Error("wrong-rooted object published")
	}
	// Unknown community.
	_, err = sv.Publish("nope", xmldoc.MustParse(`<song/>`), nil)
	if !errors.Is(err, ErrNotJoined) {
		t.Errorf("unknown community err = %v", err)
	}
}

func TestCommunityDiscoveryAndJoin(t *testing.T) {
	f := newFixture(t, 2)
	creator, joiner := f.servents[0], f.servents[1]
	_, err := creator.CreateCommunity(CommunitySpec{
		Name:      "design-patterns",
		Keywords:  "gof software design",
		Category:  "computer-science",
		SchemaSrc: songSchema, // schema content irrelevant to discovery
	})
	if err != nil {
		t.Fatal(err)
	}
	// Discovery = searching the root community (the paper's central claim).
	rs, err := joiner.DiscoverCommunities(query.MustParse("(keywords~=gof)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	if len(rs) != 1 {
		t.Fatalf("discovered = %+v", rs)
	}
	if rs[0].Provider != creator.PeerID() {
		t.Errorf("provider = %s", rs[0].Provider)
	}
	// Join: downloads community object + schema/stylesheet attachments.
	c, err := joiner.JoinFromNetwork(rs[0])
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if c.Name != "design-patterns" {
		t.Errorf("joined name = %q", c.Name)
	}
	if !joiner.IsJoined(c.ID) {
		t.Error("not joined after JoinFromNetwork")
	}
	// Schema arrived intact: joiner can search the new community.
	if _, err := joiner.Search(c.ID, query.MatchAll{}, p2p.SearchOptions{}); err != nil {
		t.Errorf("search joined community: %v", err)
	}
	// And publish into it.
	obj := xmldoc.MustParse(`<song><title>T</title><artist>A</artist></song>`)
	if _, err := joiner.Publish(c.ID, obj, nil); err != nil {
		t.Errorf("publish to joined community: %v", err)
	}
}

func TestSearchRequiresJoin(t *testing.T) {
	f := newFixture(t, 2)
	creator, outsider := f.servents[0], f.servents[1]
	c, err := creator.CreateCommunity(CommunitySpec{Name: "m", SchemaSrc: songSchema})
	if err != nil {
		t.Fatal(err)
	}
	_, err = outsider.Search(c.ID, query.MatchAll{}, p2p.SearchOptions{})
	if !errors.Is(err, ErrNotJoined) {
		t.Errorf("outsider search err = %v, want ErrNotJoined", err)
	}
}

func TestRetrieveReplicatesAndDownloadsAttachments(t *testing.T) {
	f := newFixture(t, 2)
	pub, dl := f.servents[0], f.servents[1]
	c, err := pub.CreateCommunity(CommunitySpec{Name: "m", SchemaSrc: songSchema})
	if err != nil {
		t.Fatal(err)
	}
	attURI := AttachmentURI("song1", "audio.mp3")
	obj := xmldoc.MustParse(`<song><title>T</title><artist>A</artist></song>`)
	docID, err := pub.Publish(c.ID, obj, map[string][]byte{attURI: []byte("MP3DATA")})
	if err != nil {
		t.Fatal(err)
	}
	// Joiner discovers + joins + searches + retrieves.
	rs, err := dl.DiscoverCommunities(query.MustParse("(name=m)"), p2p.SearchOptions{})
	if err != nil || len(rs) != 1 {
		t.Fatalf("discover: %v %v", rs, err)
	}
	if _, err := dl.JoinFromNetwork(rs[0]); err != nil {
		t.Fatal(err)
	}
	hits, err := dl.Search(c.ID, query.MustParse("(title=T)"), p2p.SearchOptions{})
	if err != nil || len(hits) != 1 {
		t.Fatalf("search: %v %v", hits, err)
	}
	doc, err := dl.Retrieve(hits[0].DocID, hits[0].Provider)
	if err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	if doc.ID != docID {
		t.Errorf("doc ID = %s", doc.ID)
	}
	// Attachment content arrived.
	data, ok := dl.Attachment(attURI)
	if !ok || string(data) != "MP3DATA" {
		t.Errorf("attachment = %q, %v", data, ok)
	}
	// Replication: downloader is now a provider too.
	rs2, err := pub.Search(c.ID, query.MustParse("(title=T)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	providers := map[transport.PeerID]bool{}
	for _, r := range rs2 {
		providers[r.Provider] = true
	}
	if !providers[dl.PeerID()] {
		t.Errorf("downloader not a provider after retrieve: %v", providers)
	}
}

func TestViewUsesStylesheets(t *testing.T) {
	f := newFixture(t, 1)
	sv := f.servents[0]
	c, err := sv.CreateCommunity(CommunitySpec{Name: "m", SchemaSrc: songSchema})
	if err != nil {
		t.Fatal(err)
	}
	obj := xmldoc.MustParse(`<song><title>So What</title><artist>Miles Davis</artist></song>`)
	docID, err := sv.Publish(c.ID, obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	html, err := sv.View(docID)
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	if !strings.Contains(html, "So What") || !strings.Contains(html, "up2p-view") {
		t.Errorf("view html = %q", html)
	}
}

func TestViewCustomStylesheet(t *testing.T) {
	f := newFixture(t, 1)
	sv := f.servents[0]
	custom := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	  <xsl:template match="/"><article class="custom"><xsl:value-of select="song/title"/></article></xsl:template>
	</xsl:stylesheet>`
	c, err := sv.CreateCommunity(CommunitySpec{Name: "m", SchemaSrc: songSchema, DisplayStyleSrc: custom})
	if err != nil {
		t.Fatal(err)
	}
	docID, err := sv.Publish(c.ID, xmldoc.MustParse(`<song><title>X</title><artist>A</artist></song>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	html, err := sv.View(docID)
	if err != nil {
		t.Fatal(err)
	}
	if html != `<article class="custom">X</article>` {
		t.Errorf("custom view = %q", html)
	}
}

func TestCreateFromForm(t *testing.T) {
	f := newFixture(t, 1)
	sv := f.servents[0]
	c, err := sv.CreateCommunity(CommunitySpec{Name: "m", SchemaSrc: songSchema})
	if err != nil {
		t.Fatal(err)
	}
	docID, err := sv.CreateFromForm(c.ID, map[string][]string{
		"title":  {"Blue in Green"},
		"artist": {"Miles Davis"},
	})
	if err != nil {
		t.Fatalf("create from form: %v", err)
	}
	doc, err := sv.Store().Get(docID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Title != "Blue in Green" {
		t.Errorf("title = %q", doc.Title)
	}
	// Bad form values rejected.
	if _, err := sv.CreateFromForm(c.ID, map[string][]string{"bitrate": {"NaN"}}); err == nil {
		t.Error("invalid form accepted")
	}
}

func TestSearchFormAndForms(t *testing.T) {
	f := newFixture(t, 1)
	sv := f.servents[0]
	c, err := sv.CreateCommunity(CommunitySpec{Name: "m", SchemaSrc: songSchema})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.CreateFromForm(c.ID, map[string][]string{"title": {"A"}, "artist": {"X"}}); err != nil {
		t.Fatal(err)
	}
	rs, err := sv.SearchForm(c.ID, map[string][]string{"artist": {"X"}}, p2p.SearchOptions{})
	if err != nil || len(rs) != 1 {
		t.Errorf("search form = %v, %v", rs, err)
	}
	// Form generation via community helpers.
	html, err := c.CreateFormHTML()
	if err != nil || !strings.Contains(html, `name="title"`) {
		t.Errorf("create form: %v", err)
	}
	html, err = c.SearchFormHTML()
	if err != nil || !strings.Contains(html, `action="search"`) {
		t.Errorf("search form: %v", err)
	}
}

func TestLeave(t *testing.T) {
	f := newFixture(t, 1)
	sv := f.servents[0]
	c, err := sv.CreateCommunity(CommunitySpec{Name: "m", SchemaSrc: songSchema})
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Leave(c.ID); err != nil {
		t.Fatal(err)
	}
	if sv.IsJoined(c.ID) {
		t.Error("still joined after leave")
	}
	if err := sv.Leave(c.ID); !errors.Is(err, ErrNotJoined) {
		t.Errorf("double leave = %v", err)
	}
	if err := sv.Leave(RootCommunityID); err == nil {
		t.Error("left root community")
	}
}

func TestCommunityMarshalRoundTrip(t *testing.T) {
	c, err := NewCommunity(CommunitySpec{
		Name:        "cml",
		Description: "Chemical markup molecules",
		Keywords:    "chemistry molecules",
		Category:    "science",
		Security:    "open",
		Protocol:    "Gnutella",
		SchemaSrc:   songSchema,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj, attachments := c.Marshal()
	// Valid under the root (Fig. 3) schema.
	if err := RootCommunity().Schema.Validate(obj); err != nil {
		t.Fatalf("community object invalid under Fig. 3 schema: %v", err)
	}
	back, err := UnmarshalCommunity(obj, attachments)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.ID != c.ID {
		t.Errorf("ID changed: %s vs %s", back.ID, c.ID)
	}
	if back.Name != c.Name || back.Protocol != c.Protocol || back.SchemaSrc != c.SchemaSrc {
		t.Errorf("fields changed: %+v", back)
	}
	// Defaults not misidentified as custom styles.
	if back.DisplayStyleSrc != "" || back.CreateStyleSrc != "" {
		t.Error("default styles round-tripped as custom")
	}
}

func TestCommunityValidation(t *testing.T) {
	if _, err := NewCommunity(CommunitySpec{SchemaSrc: songSchema}); !errors.Is(err, ErrNoName) {
		t.Errorf("no name err = %v", err)
	}
	if _, err := NewCommunity(CommunitySpec{Name: "x"}); !errors.Is(err, ErrNoSchema) {
		t.Errorf("no schema err = %v", err)
	}
	if _, err := NewCommunity(CommunitySpec{Name: "x", SchemaSrc: "<notaschema/>"}); err == nil {
		t.Error("bad schema accepted")
	}
	if _, err := NewCommunity(CommunitySpec{Name: "x", SchemaSrc: songSchema, DisplayStyleSrc: "<junk"}); err == nil {
		t.Error("bad stylesheet accepted")
	}
}

func TestUnmarshalCommunityErrors(t *testing.T) {
	if _, err := UnmarshalCommunity(xmldoc.MustParse("<other/>"), nil); err == nil {
		t.Error("non-community unmarshalled")
	}
	obj := xmldoc.MustParse(`<community><name>x</name><schema>up2p://x/schema.xsd</schema></community>`)
	if _, err := UnmarshalCommunity(obj, map[string][]byte{}); err == nil {
		t.Error("missing schema attachment accepted")
	}
}

func TestDocIDDeterministic(t *testing.T) {
	obj1 := xmldoc.MustParse(`<song><title>T</title><artist>A</artist></song>`)
	obj2 := xmldoc.MustParse(`<song><title>T</title><artist>A</artist></song>`)
	if DocIDFor("c", obj1) != DocIDFor("c", obj2) {
		t.Error("same object, different IDs")
	}
	if DocIDFor("c", obj1) == DocIDFor("other", obj1) {
		t.Error("community not part of ID")
	}
}

func TestSameCommunityIDAcrossPeers(t *testing.T) {
	// Two peers independently creating the same community converge on
	// the same ID (content addressing).
	spec := CommunitySpec{Name: "same", SchemaSrc: songSchema}
	a, err := NewCommunity(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCommunity(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Errorf("IDs differ: %s vs %s", a.ID, b.ID)
	}
}

func TestCustomIndexingStylesheet(t *testing.T) {
	f := newFixture(t, 1)
	sv := f.servents[0]
	// Index only the artist, ignoring the searchable markers.
	custom := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	  <xsl:template match="/">
	    <attributes>
	      <attribute name="artist"><xsl:value-of select="/song/artist"/></attribute>
	    </attributes>
	  </xsl:template>
	</xsl:stylesheet>`
	c, err := sv.CreateCommunity(CommunitySpec{Name: "m", SchemaSrc: songSchema, IndexStyleSrc: custom})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Publish(c.ID, xmldoc.MustParse(`<song><title>T</title><artist>A</artist></song>`), nil); err != nil {
		t.Fatal(err)
	}
	// Title is NOT indexed under the custom transform.
	rs, err := sv.Search(c.ID, query.MustParse("(title=T)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("title matched despite custom indexer: %+v", rs)
	}
	rs, err = sv.Search(c.ID, query.MustParse("(artist=A)"), p2p.SearchOptions{})
	if err != nil || len(rs) != 1 {
		t.Errorf("artist search = %v, %v", rs, err)
	}
}

func TestGnutellaServents(t *testing.T) {
	// The same servent code on the Gnutella network (protocol
	// independence at the core layer).
	net := transport.NewMemNetwork()
	var nodes []*p2p.GnutellaNode
	var servents []*Servent
	for i := 0; i < 3; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("g%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		st := index.NewStore()
		node := p2p.NewGnutellaNode(ep, st)
		nodes = append(nodes, node)
		sv, err := NewServent(node, st)
		if err != nil {
			t.Fatal(err)
		}
		servents = append(servents, sv)
	}
	for i := range nodes {
		for j := range nodes {
			if i != j {
				nodes[i].AddNeighbor(nodes[j].PeerID())
			}
		}
	}
	c, err := servents[0].CreateCommunity(CommunitySpec{Name: "m", SchemaSrc: songSchema})
	if err != nil {
		t.Fatal(err)
	}
	// Peer 2 discovers the community over the flood.
	rs, err := servents[2].DiscoverCommunities(query.MustParse("(name=m)"), p2p.SearchOptions{TTL: 3})
	if err != nil || len(rs) != 1 {
		t.Fatalf("gnutella discover = %v, %v", rs, err)
	}
	if _, err := servents[2].JoinFromNetwork(rs[0]); err != nil {
		t.Fatalf("gnutella join: %v", err)
	}
	if !servents[2].IsJoined(c.ID) {
		t.Error("not joined over gnutella")
	}
}
