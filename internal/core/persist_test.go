package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/xmldoc"
)

func TestServentStateRoundTrip(t *testing.T) {
	f := newFixture(t, 2)
	original := f.servents[0]
	c, err := original.CreateCommunity(CommunitySpec{
		Name:            "mp3",
		Description:     "music",
		SchemaSrc:       songSchema,
		DisplayStyleSrc: `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0"><xsl:template match="/"><x/></xsl:template></xsl:stylesheet>`,
	})
	if err != nil {
		t.Fatal(err)
	}
	docID, err := original.Publish(c.ID, xmldoc.MustParse(`<song><title>T</title><artist>A</artist></song>`),
		map[string][]byte{"up2p://x/file.bin": []byte("DATA")})
	if err != nil {
		t.Fatal(err)
	}

	var state bytes.Buffer
	if err := original.SaveState(&state); err != nil {
		t.Fatalf("save state: %v", err)
	}
	var docs bytes.Buffer
	if err := original.Store().Save(&docs); err != nil {
		t.Fatalf("save store: %v", err)
	}

	// "Restart": a fresh servent on a new network identity restores
	// both snapshots.
	restored := f.servents[1]
	if err := restored.LoadState(&state); err != nil {
		t.Fatalf("load state: %v", err)
	}
	if err := restored.Store().Load(&docs); err != nil {
		t.Fatalf("load store: %v", err)
	}
	if !restored.IsJoined(c.ID) {
		t.Fatal("community not restored")
	}
	rc, _ := restored.Community(c.ID)
	if rc.DisplayStyleSrc == "" {
		t.Error("custom stylesheet lost")
	}
	// The restored store serves local searches and views.
	local := restored.SearchLocal(c.ID, query.MustParse("(title=T)"), 0)
	if len(local) != 1 || local[0].ID != docID {
		t.Fatalf("restored search = %+v", local)
	}
	html, err := restored.View(docID)
	if err != nil || !strings.Contains(html, "<x/>") {
		t.Errorf("restored view = %q, %v", html, err)
	}
	// Attachments restored.
	if data, ok := restored.Attachment("up2p://x/file.bin"); !ok || string(data) != "DATA" {
		t.Errorf("attachment = %q, %v", data, ok)
	}
	// Root community still exactly once.
	joined := restored.Joined()
	if joined[0] != RootCommunityID || len(joined) != 2 {
		t.Errorf("joined = %v", joined)
	}
}

func TestLoadStateErrors(t *testing.T) {
	f := newFixture(t, 1)
	sv := f.servents[0]
	if err := sv.LoadState(strings.NewReader("not json")); err == nil {
		t.Error("bad json accepted")
	}
	if err := sv.LoadState(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("future version accepted")
	}
	if err := sv.LoadState(strings.NewReader(`{"version":1,"communities":[{"Name":"x"}]}`)); err == nil {
		t.Error("community without schema accepted")
	}
}

func TestRestoredServentWorksOnNetwork(t *testing.T) {
	// A servent restored from snapshots participates normally: its
	// restored objects are re-publishable and searchable by peers.
	f := newFixture(t, 2)
	donor, fresh := f.servents[0], f.servents[1]
	c, err := donor.CreateCommunity(CommunitySpec{Name: "m", SchemaSrc: songSchema})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.Publish(c.ID, xmldoc.MustParse(`<song><title>T</title><artist>A</artist></song>`), nil); err != nil {
		t.Fatal(err)
	}
	var state, docs bytes.Buffer
	if err := donor.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	if err := donor.Store().Save(&docs); err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadState(&state); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Store().Load(&docs); err != nil {
		t.Fatal(err)
	}
	// Re-announce restored objects to the network.
	for _, d := range fresh.SearchLocal(c.ID, query.MatchAll{}, 0) {
		if err := fresh.Network().Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := fresh.Search(c.ID, query.MustParse("(title=T)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	providers := map[string]bool{}
	for _, r := range rs {
		providers[string(r.Provider)] = true
	}
	if !providers[string(fresh.PeerID())] {
		t.Errorf("restored servent not providing: %v", providers)
	}
}

// TestLoadStateCorruptMiddleInstallsNothing is the regression test
// for partial installs: a bad spec in the middle of the state file
// used to error out after earlier communities were already installed.
// LoadState now validates every entry before installing any.
func TestLoadStateCorruptMiddleInstallsNothing(t *testing.T) {
	f := newFixture(t, 2)
	donor := f.servents[0]
	c1, err := donor.CreateCommunity(CommunitySpec{Name: "first", SchemaSrc: songSchema})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := donor.CreateCommunity(CommunitySpec{Name: "second", SchemaSrc: songSchema})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := donor.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// Poison the middle: splice a community with a broken schema
	// between the two good ones.
	var st serventState
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Communities) != 2 {
		t.Fatalf("saved %d communities, want 2", len(st.Communities))
	}
	bad := CommunitySpec{Name: "broken", SchemaSrc: "<not-a-schema"}
	st.Communities = []CommunitySpec{st.Communities[0], bad, st.Communities[1]}
	st.CommunityID = []string{st.CommunityID[0], "bogus", st.CommunityID[1]}
	poisoned, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}

	restored := f.servents[1]
	if err := restored.LoadState(bytes.NewReader(poisoned)); err == nil {
		t.Fatal("poisoned state accepted")
	}
	// Nothing was installed — not even the valid first community.
	if restored.IsJoined(c1.ID) {
		t.Error("community before the corrupt entry was installed")
	}
	if restored.IsJoined(c2.ID) {
		t.Error("community after the corrupt entry was installed")
	}
	if joined := restored.Joined(); len(joined) != 1 || joined[0] != RootCommunityID {
		t.Errorf("joined = %v, want only the root community", joined)
	}
}
