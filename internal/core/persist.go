package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/stylegen"
)

// serventState is the serialized servent: joined communities (by their
// full spec, so schemas and custom stylesheets survive) and the
// attachment store. Shared objects live in the index store, persisted
// separately via index.Store.Save.
type serventState struct {
	Version     int               `json:"version"`
	Communities []CommunitySpec   `json:"communities"`
	CommunityID []string          `json:"communityIds"`
	Attachments map[string][]byte `json:"attachments"`
}

// stateVersion guards the on-disk format.
const stateVersion = 1

// SaveState serializes joined communities (except the compiled-in
// root) and the attachment store.
func (s *Servent) SaveState(w io.Writer) error {
	s.mu.RLock()
	st := serventState{Version: stateVersion, Attachments: make(map[string][]byte, len(s.attachments))}
	ids := make([]string, 0, len(s.communities))
	for id := range s.communities {
		if id != RootCommunityID {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		c := s.communities[id]
		st.Communities = append(st.Communities, CommunitySpec{
			Name:            c.Name,
			Description:     c.Description,
			Keywords:        c.Keywords,
			Category:        c.Category,
			Security:        c.Security,
			Protocol:        c.Protocol,
			SchemaSrc:       c.SchemaSrc,
			DisplayStyleSrc: c.DisplayStyleSrc,
			CreateStyleSrc:  c.CreateStyleSrc,
			SearchStyleSrc:  c.SearchStyleSrc,
			IndexStyleSrc:   c.IndexStyleSrc,
		})
		st.CommunityID = append(st.CommunityID, id)
	}
	for uri, data := range s.attachments {
		st.Attachments[uri] = data
	}
	s.mu.RUnlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(st); err != nil {
		return fmt.Errorf("core: save state: %w", err)
	}
	return nil
}

// LoadState restores communities and attachments saved by SaveState.
// Shared objects are restored separately by loading the index store.
// Loaded community IDs are re-derived from content, so a state file
// from any peer installs identically.
//
// The load is all-or-nothing: every community spec is built and
// validated (schema, indexing stylesheet, ID drift) before any of
// them is installed, so a corrupt entry in the middle of the file
// cannot leave the servent half-restored.
func (s *Servent) LoadState(r io.Reader) error {
	var st serventState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: load state: %w", err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("core: load state: unsupported version %d", st.Version)
	}
	type stagedCommunity struct {
		c  *Community
		ix *stylegen.Indexer
	}
	staged := make([]stagedCommunity, 0, len(st.Communities))
	for i, spec := range st.Communities {
		c, err := NewCommunity(spec)
		if err != nil {
			return fmt.Errorf("core: load community %d: %w", i, err)
		}
		if i < len(st.CommunityID) && st.CommunityID[i] != c.ID {
			return fmt.Errorf("core: load community %q: ID drift (%s -> %s)",
				spec.Name, st.CommunityID[i], c.ID)
		}
		ix, err := c.Indexer()
		if err != nil {
			return fmt.Errorf("core: load community %q: %w", spec.Name, err)
		}
		staged = append(staged, stagedCommunity{c: c, ix: ix})
	}
	s.mu.Lock()
	for _, sc := range staged {
		s.communities[sc.c.ID] = sc.c
		s.indexers[sc.c.ID] = sc.ix
	}
	for uri, data := range st.Attachments {
		s.attachments[uri] = data
	}
	s.mu.Unlock()
	return nil
}
