package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dht"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/transport"
)

// pollUntil polls cond every 10ms until it reports success or the
// deadline passes, returning whether it succeeded. TCP delivery is
// asynchronous, so tests wait for observable state instead of sleeping
// fixed amounts — the deadline only bounds a failure, it never slows a
// passing run.
func pollUntil(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCentralizedOverTCP runs the full U-P2P flow — create community,
// discover, join, publish, search, retrieve with attachments — over
// real TCP sockets, proving the in-memory simulator is not load-
// bearing for protocol correctness.
func TestCentralizedOverTCP(t *testing.T) {
	serverNode, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverNode.Close()
	p2p.NewIndexServer(serverNode)

	newPeer := func() (*core.Servent, func()) {
		node, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		st := index.NewStore()
		sv, err := core.NewServent(p2p.NewCentralizedClient(node, serverNode.ID(), st), st)
		if err != nil {
			t.Fatal(err)
		}
		return sv, func() { _ = sv.Close() }
	}
	alice, closeAlice := newPeer()
	defer closeAlice()
	bob, closeBob := newPeer()
	defer closeBob()

	comm, err := alice.CreateCommunity(core.CommunitySpec{
		Name:      "mp3",
		Keywords:  "music",
		SchemaSrc: corpus.SongSchemaSrc,
	})
	if err != nil {
		t.Fatalf("create community: %v", err)
	}
	attURI := core.AttachmentURI("s1", "audio.mp3")
	song := corpus.Songs(1, 1).Objects[0].Doc
	docID, err := alice.Publish(comm.ID, song, map[string][]byte{attURI: []byte("AUDIO")})
	if err != nil {
		t.Fatalf("publish: %v", err)
	}

	// Registration is asynchronous over TCP: alice's register frame
	// races bob's search frame to the server, so poll until the
	// server has indexed the community (or the deadline passes).
	opts := p2p.SearchOptions{Timeout: 3 * time.Second}
	var found []p2p.Result
	pollUntil(t, 5*time.Second, func() bool {
		found, err = bob.DiscoverCommunities(query.MustParse("(keywords~=music)"), opts)
		if err != nil {
			t.Fatalf("discover over TCP: %v", err)
		}
		return len(found) > 0
	})
	if len(found) != 1 {
		t.Fatalf("found = %+v", found)
	}
	if _, err := bob.JoinFromNetwork(found[0]); err != nil {
		t.Fatalf("join over TCP: %v", err)
	}
	// The song's register frame is also asynchronous; poll as above.
	var hits []p2p.Result
	pollUntil(t, 5*time.Second, func() bool {
		hits, err = bob.Search(comm.ID, query.MatchAll{}, opts)
		if err != nil {
			t.Fatalf("search over TCP: %v", err)
		}
		return len(hits) > 0
	})
	if len(hits) != 1 {
		t.Fatalf("search hits = %+v", hits)
	}
	doc, err := bob.Retrieve(hits[0].DocID, hits[0].Provider)
	if err != nil {
		t.Fatalf("retrieve over TCP: %v", err)
	}
	if doc.ID != docID {
		t.Errorf("doc = %s, want %s", doc.ID, docID)
	}
	data, ok := bob.Attachment(attURI)
	if !ok || string(data) != "AUDIO" {
		t.Errorf("attachment = %q, %v", data, ok)
	}
}

// TestGnutellaOverTCP floods queries across a 3-node TCP overlay.
func TestGnutellaOverTCP(t *testing.T) {
	type peer struct {
		sv   *core.Servent
		node *p2p.GnutellaNode
	}
	var peers []peer
	for i := 0; i < 3; i++ {
		tn, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		st := index.NewStore()
		node := p2p.NewGnutellaNode(tn, st)
		sv, err := core.NewServent(node, st)
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, peer{sv, node})
		defer sv.Close()
	}
	// Line topology: 0 - 1 - 2.
	peers[0].node.AddNeighbor(peers[1].node.PeerID())
	peers[1].node.AddNeighbor(peers[0].node.PeerID())
	peers[1].node.AddNeighbor(peers[2].node.PeerID())
	peers[2].node.AddNeighbor(peers[1].node.PeerID())

	comm, err := peers[2].sv.CreateCommunity(core.CommunitySpec{
		Name:      "patterns",
		SchemaSrc: corpus.PatternSchemaSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := corpus.DesignPatterns(1, 1).Objects[0].Doc
	if _, err := peers[2].sv.Publish(comm.ID, obj, nil); err != nil {
		t.Fatal(err)
	}

	// Limit 1 lets the hit collector close as soon as the single
	// expected hit arrives instead of waiting out the full timeout;
	// polling with per-attempt timeouts absorbs slow TCP dial/accept
	// on loaded CI machines.
	opts := p2p.SearchOptions{TTL: 4, Timeout: time.Second, Limit: 1}
	var found []p2p.Result
	pollUntil(t, 10*time.Second, func() bool {
		var err error
		found, err = peers[0].sv.DiscoverCommunities(query.MustParse("(name=patterns)"), opts)
		if err != nil {
			t.Fatalf("flood discover over TCP: %v", err)
		}
		return len(found) > 0
	})
	if len(found) != 1 {
		t.Fatalf("found = %+v", found)
	}
	if found[0].Hops != 2 {
		t.Errorf("hops = %d, want 2 (line topology)", found[0].Hops)
	}
	if _, err := peers[0].sv.JoinFromNetwork(found[0]); err != nil {
		t.Fatalf("join over TCP flood: %v", err)
	}
	var hits []p2p.Result
	pollUntil(t, 10*time.Second, func() bool {
		var err error
		hits, err = peers[0].sv.Search(comm.ID, query.MustParse("(name=*)"), opts)
		if err != nil {
			t.Fatalf("flood search over TCP: %v", err)
		}
		return len(hits) > 0
	})
	if len(hits) != 1 {
		t.Fatalf("search hits = %+v", hits)
	}
}

// TestDHTOverTCP runs discovery, join, publish, search, and retrieval
// through the Kademlia overlay on real TCP sockets: iterative lookups
// genuinely await their RPCs here instead of riding the synchronous
// simulator's fast path.
func TestDHTOverTCP(t *testing.T) {
	var (
		svs   []*core.Servent
		nodes []*dht.Node
	)
	for i := 0; i < 4; i++ {
		tn, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		st := index.NewStore()
		node := dht.NewNode(tn, st, dht.Config{K: 4, Alpha: 2})
		sv, err := core.NewServent(node, st)
		if err != nil {
			t.Fatal(err)
		}
		svs = append(svs, sv)
		nodes = append(nodes, node)
		defer sv.Close()
	}
	// Everyone joins off node 0; over TCP the join lookups need the
	// listeners up, which they already are.
	for i := 1; i < len(nodes); i++ {
		nodes[i].Bootstrap(nodes[0].PeerID())
	}

	comm, err := svs[1].CreateCommunity(core.CommunitySpec{
		Name:      "patterns",
		SchemaSrc: corpus.PatternSchemaSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := corpus.DesignPatterns(1, 1).Objects[0].Doc
	if _, err := svs[1].Publish(comm.ID, obj, nil); err != nil {
		t.Fatal(err)
	}

	opts := p2p.SearchOptions{Timeout: 2 * time.Second}
	var found []p2p.Result
	pollUntil(t, 10*time.Second, func() bool {
		found, err = svs[3].DiscoverCommunities(query.MustParse("(name=patterns)"), opts)
		if err != nil {
			t.Fatalf("dht discover over TCP: %v", err)
		}
		return len(found) > 0
	})
	if len(found) == 0 {
		t.Fatal("community not discovered through the DHT")
	}
	if _, err := svs[3].JoinFromNetwork(found[0]); err != nil {
		t.Fatalf("join over TCP dht: %v", err)
	}
	var hits []p2p.Result
	pollUntil(t, 10*time.Second, func() bool {
		hits, err = svs[3].Search(comm.ID, query.MatchAll{}, opts)
		if err != nil {
			t.Fatalf("dht search over TCP: %v", err)
		}
		return len(hits) > 0
	})
	if len(hits) != 1 {
		t.Fatalf("search hits = %+v", hits)
	}
	if _, err := svs[3].Retrieve(hits[0].DocID, hits[0].Provider); err != nil {
		t.Fatalf("retrieve over TCP dht: %v", err)
	}
}
