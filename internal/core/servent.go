package core

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"

	"repro/internal/errs"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/stylegen"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// Servent is one U-P2P node: "Any browser can be used to interface to
// a U-P2P servent" (§IV.B). It owns the local metadata store, the set
// of joined communities, the attachment store, and a pluggable
// p2p.Network — the protocol independence the paper targets.
type Servent struct {
	net   p2p.Network
	store *index.Store

	mu          sync.RWMutex
	tracer      *trace.Tracer
	logger      *slog.Logger
	communities map[string]*Community
	indexers    map[string]*stylegen.Indexer
	attachments map[string][]byte
}

// Servent errors.
var (
	ErrNotJoined     = errors.New("core: community not joined")
	ErrNotCommunity  = errors.New("core: object is not a community")
	ErrAlreadyJoined = errors.New("core: community already joined")
)

// NewServent creates a servent on the given network and joins the root
// community. store must be the same Store the network layer was
// constructed with: the servent writes published objects into it and
// the network layer answers remote queries and fetches from it.
func NewServent(net p2p.Network, store *index.Store) (*Servent, error) {
	s := &Servent{
		net:         net,
		store:       store,
		communities: make(map[string]*Community),
		indexers:    make(map[string]*stylegen.Indexer),
		attachments: make(map[string][]byte),
	}
	net.SetAttachmentProvider(s.attachment)
	root := RootCommunity()
	if err := s.install(root); err != nil {
		return nil, err
	}
	return s, nil
}

// attachment implements p2p.AttachmentProvider.
func (s *Servent) attachment(uri string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.attachments[uri]
	return data, ok
}

// install registers a community locally (schema, indexer) without
// publishing anything.
func (s *Servent) install(c *Community) error {
	ix, err := c.Indexer()
	if err != nil {
		return fmt.Errorf("core: install %s: %w", c.Name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.communities[c.ID] = c
	s.indexers[c.ID] = ix
	return nil
}

// SetTracer installs a tracer: each Search that arrives without a
// trace context becomes the root of a new (sampled) trace. A nil
// tracer disables root creation; searches that already carry a
// context pass it through unchanged either way.
func (s *Servent) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
}

func (s *Servent) tr() *trace.Tracer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tracer
}

// SetLogger installs a structured logger for operational events
// (failed searches, with their errs code and trace ID). The default
// discards.
func (s *Servent) SetLogger(l *slog.Logger) {
	s.mu.Lock()
	s.logger = l
	s.mu.Unlock()
}

func (s *Servent) log() *slog.Logger {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.logger == nil {
		return slog.New(slog.DiscardHandler)
	}
	return s.logger
}

// PeerID returns the servent's network identity.
func (s *Servent) PeerID() transport.PeerID { return s.net.PeerID() }

// Network exposes the underlying protocol layer (for experiments).
func (s *Servent) Network() p2p.Network { return s.net }

// Store exposes the local metadata store (read-mostly; experiments
// inspect it).
func (s *Servent) Store() *index.Store { return s.store }

// Community returns a joined community.
func (s *Servent) Community(id string) (*Community, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.communities[id]
	return c, ok
}

// Joined lists joined community IDs, sorted, root first.
func (s *Servent) Joined() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.communities))
	for id := range s.communities {
		if id != RootCommunityID {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return append([]string{RootCommunityID}, out...)
}

// IsJoined reports community membership.
func (s *Servent) IsJoined(id string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.communities[id]
	return ok
}

// DocIDFor derives the content-addressed document ID used for
// published objects: replicas coincide across peers.
func DocIDFor(communityID string, obj *xmldoc.Node) index.DocID {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s", communityID, obj.String())
	return index.DocID("d-" + hex.EncodeToString(h.Sum(nil))[:20])
}

// Publish validates an object against its community schema, extracts
// its indexed attributes through the community's indexing transform,
// stores it locally, registers attachments, and announces it on the
// network — the Create function of §IV.C.1.
func (s *Servent) Publish(communityID string, obj *xmldoc.Node, attachments map[string][]byte) (index.DocID, error) {
	s.mu.RLock()
	c, joined := s.communities[communityID]
	ix := s.indexers[communityID]
	s.mu.RUnlock()
	if !joined {
		return "", fmt.Errorf("%w: %s", ErrNotJoined, communityID)
	}
	if err := c.Schema.Validate(obj); err != nil {
		return "", fmt.Errorf("core: publish: %w", err)
	}
	attrs, err := ix.Extract(obj)
	if err != nil {
		return "", fmt.Errorf("core: publish: %w", err)
	}
	docID := DocIDFor(communityID, obj)
	doc := &index.Document{
		ID:          docID,
		CommunityID: communityID,
		Title:       titleFor(obj, attrs),
		XML:         obj.String(),
		Attrs:       attrs,
	}
	for uri := range attachments {
		doc.Attachments = append(doc.Attachments, uri)
	}
	sort.Strings(doc.Attachments)
	s.mu.Lock()
	for uri, content := range attachments {
		s.attachments[uri] = content
	}
	s.mu.Unlock()
	if err := s.net.Publish(doc); err != nil {
		return "", fmt.Errorf("core: publish: %w", err)
	}
	return docID, nil
}

// PublishBatch validates, indexes, and publishes many objects of one
// community as a single batch: one store lock round per shard and (on
// registration protocols) one register-batch message, instead of one
// of each per object. It is the bulk-ingest path for corpus seeding
// and imports; objects with attachments go through Publish. The
// returned IDs align with objs. Validation is all-or-nothing: a bad
// object rejects the batch before anything is published.
func (s *Servent) PublishBatch(communityID string, objs []*xmldoc.Node) ([]index.DocID, error) {
	s.mu.RLock()
	c, joined := s.communities[communityID]
	ix := s.indexers[communityID]
	s.mu.RUnlock()
	if !joined {
		return nil, fmt.Errorf("%w: %s", ErrNotJoined, communityID)
	}
	docs := make([]*index.Document, len(objs))
	ids := make([]index.DocID, len(objs))
	for i, obj := range objs {
		if err := c.Schema.Validate(obj); err != nil {
			return nil, fmt.Errorf("core: publish batch object %d: %w", i, err)
		}
		attrs, err := ix.Extract(obj)
		if err != nil {
			return nil, fmt.Errorf("core: publish batch object %d: %w", i, err)
		}
		ids[i] = DocIDFor(communityID, obj)
		docs[i] = &index.Document{
			ID:          ids[i],
			CommunityID: communityID,
			Title:       titleFor(obj, attrs),
			XML:         obj.String(),
			Attrs:       attrs,
		}
	}
	if err := s.net.PublishBatch(docs); err != nil {
		return nil, fmt.Errorf("core: publish batch: %w", err)
	}
	return ids, nil
}

// titleFor picks a display title: the first non-empty indexed
// attribute in a stable order, else the first leaf text, else the
// element name.
func titleFor(obj *xmldoc.Node, attrs query.Attrs) string {
	names := make([]string, 0, len(attrs))
	for k := range attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	// Prefer fields called name/title when present.
	for _, pref := range []string{"name", "title"} {
		for _, n := range names {
			if n == pref || strings.HasSuffix(n, "/"+pref) {
				if v := attrs.Get(n); v != "" {
					return v
				}
			}
		}
	}
	for _, n := range names {
		if v := attrs.Get(n); v != "" {
			return v
		}
	}
	if t := strings.TrimSpace(obj.Text()); t != "" {
		if len(t) > 40 {
			t = t[:40]
		}
		return t
	}
	return obj.LocalName()
}

// CreateFromForm builds an object from create-form values and
// publishes it: the full generated-application loop.
func (s *Servent) CreateFromForm(communityID string, values map[string][]string) (index.DocID, error) {
	s.mu.RLock()
	c, joined := s.communities[communityID]
	s.mu.RUnlock()
	if !joined {
		return "", fmt.Errorf("%w: %s", ErrNotJoined, communityID)
	}
	obj, err := stylegen.BuildObject(c.Schema, values)
	if err != nil {
		return "", err
	}
	return s.Publish(communityID, obj, nil)
}

// Search runs a community-scoped query across the network (§IV.C.2).
// The servent must have joined the community ("a user must join a
// community by downloading its schema in order to conduct searches").
func (s *Servent) Search(communityID string, f query.Filter, opts p2p.SearchOptions) ([]p2p.Result, error) {
	if !s.IsJoined(communityID) {
		return nil, fmt.Errorf("%w: %s", ErrNotJoined, communityID)
	}
	var sp trace.ActiveSpan
	if !opts.Trace.Valid() {
		sp = s.tr().Root("query")
		sp.SetCommunity(communityID)
		opts.Trace = sp.ContextOr(opts.Trace)
	}
	results, err := s.net.Search(communityID, f, opts)
	sp.SetErr(err)
	sp.Finish()
	if err != nil {
		s.log().Warn("search failed",
			"community", communityID,
			"code", errs.Code(err),
			"trace_id", fmt.Sprintf("%016x", opts.Trace.Trace),
			"err", err)
	}
	return results, err
}

// SearchLocal queries only the local store (browsing downloads).
func (s *Servent) SearchLocal(communityID string, f query.Filter, limit int) []*index.Document {
	return s.store.Search(communityID, f, limit)
}

// SearchLocalXPath filters local objects with a full XPath boolean
// expression over the object documents themselves — the "richer
// languages such as the XML Query language" direction of §VI,
// implemented over our XPath engine. Unlike attribute filters this
// sees the whole object, not just indexed fields.
func (s *Servent) SearchLocalXPath(communityID, expr string, limit int) ([]*index.Document, error) {
	compiled, err := xpath.Compile(expr)
	if err != nil {
		return nil, fmt.Errorf("core: xpath query: %w", err)
	}
	var out []*index.Document
	for _, doc := range s.store.Search(communityID, query.MatchAll{}, 0) {
		obj, err := xmldoc.ParseString(doc.XML)
		if err != nil {
			continue // skip undecodable entries rather than failing the query
		}
		if compiled.EvalBool(obj) {
			out = append(out, doc)
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out, nil
}

// SearchForm runs a search built from search-form values.
func (s *Servent) SearchForm(communityID string, values map[string][]string, opts p2p.SearchOptions) ([]p2p.Result, error) {
	return s.Search(communityID, stylegen.BuildFilter(values), opts)
}

// Retrieve downloads an object (and its attachments) from a providing
// peer and stores both locally — the download step of §IV.C.2.
func (s *Servent) Retrieve(id index.DocID, from transport.PeerID) (*index.Document, error) {
	if from == s.PeerID() || s.store.Has(id) {
		return s.store.Get(id)
	}
	doc, err := s.net.Retrieve(id, from)
	if err != nil {
		return nil, err
	}
	for _, uri := range doc.Attachments {
		data, err := s.net.RetrieveAttachment(uri, from)
		if err != nil {
			return nil, fmt.Errorf("core: retrieve attachment %s: %w", uri, err)
		}
		s.mu.Lock()
		s.attachments[uri] = data
		s.mu.Unlock()
	}
	if err := s.store.Put(doc); err != nil {
		return nil, err
	}
	// Downloading replicates: this peer now also provides the object
	// (the Napster robustness effect the paper highlights in §II).
	if err := s.net.Publish(doc); err != nil {
		return nil, fmt.Errorf("core: republish after download: %w", err)
	}
	return doc, nil
}

// Attachment returns locally stored attachment content.
func (s *Servent) Attachment(uri string) ([]byte, bool) {
	return s.attachment(uri)
}

// View renders a stored object with its community's display
// stylesheet — the View function of §IV.C.3.
func (s *Servent) View(id index.DocID) (string, error) {
	doc, err := s.store.Get(id)
	if err != nil {
		return "", err
	}
	obj, err := xmldoc.ParseString(doc.XML)
	if err != nil {
		return "", fmt.Errorf("core: view: stored object unparseable: %w", err)
	}
	s.mu.RLock()
	c := s.communities[doc.CommunityID]
	s.mu.RUnlock()
	if c == nil {
		// Viewing an object of an un-joined community falls back to
		// the default stylesheet.
		return stylegen.ViewHTML(obj)
	}
	sheet, err := c.ViewStylesheet()
	if err != nil {
		return "", err
	}
	return sheet.Apply(obj)
}

// --- community lifecycle ---

// CreateCommunity creates a new community, publishes it into the root
// community (making it discoverable), and joins it locally.
func (s *Servent) CreateCommunity(spec CommunitySpec) (*Community, error) {
	c, err := NewCommunity(spec)
	if err != nil {
		return nil, err
	}
	obj, attachments := c.Marshal()
	if _, err := s.Publish(RootCommunityID, obj, attachments); err != nil {
		return nil, err
	}
	if err := s.install(c); err != nil {
		return nil, err
	}
	return c, nil
}

// AdoptCommunity installs an already-constructed community locally
// without any network traffic: the out-of-band bootstrap path used by
// large simulation scenarios (and by operators distributing a schema
// through other channels), where per-peer discovery floods would
// dominate the workload being measured.
func (s *Servent) AdoptCommunity(c *Community) error {
	if c == nil {
		return ErrNotCommunity
	}
	return s.install(c)
}

// DiscoverCommunities searches the root community: the paper's
// reduction of community discovery to object search.
func (s *Servent) DiscoverCommunities(f query.Filter, opts p2p.SearchOptions) ([]p2p.Result, error) {
	return s.Search(RootCommunityID, f, opts)
}

// JoinFromNetwork downloads a community object (with its schema and
// stylesheet attachments) from the providing peer and installs it:
// "a user must join a community by downloading its schema" (§IV.A).
func (s *Servent) JoinFromNetwork(r p2p.Result) (*Community, error) {
	if r.CommunityID != RootCommunityID {
		return nil, fmt.Errorf("%w (community %s)", ErrNotCommunity, r.CommunityID)
	}
	doc, err := s.Retrieve(r.DocID, r.Provider)
	if err != nil {
		return nil, err
	}
	return s.JoinFromDocument(doc)
}

// JoinFromDocument installs a community from an already-downloaded
// community object (its attachments must be in the attachment store).
func (s *Servent) JoinFromDocument(doc *index.Document) (*Community, error) {
	if doc.CommunityID != RootCommunityID {
		return nil, fmt.Errorf("%w (community %s)", ErrNotCommunity, doc.CommunityID)
	}
	obj, err := xmldoc.ParseString(doc.XML)
	if err != nil {
		return nil, fmt.Errorf("core: join: %w", err)
	}
	attachments := make(map[string][]byte, len(doc.Attachments))
	s.mu.RLock()
	for _, uri := range doc.Attachments {
		if data, ok := s.attachments[uri]; ok {
			attachments[uri] = data
		}
	}
	s.mu.RUnlock()
	c, err := UnmarshalCommunity(obj, attachments)
	if err != nil {
		return nil, err
	}
	if err := s.install(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Leave forgets a community (but keeps downloaded objects). The root
// community cannot be left.
func (s *Servent) Leave(communityID string) error {
	if communityID == RootCommunityID {
		return errors.New("core: cannot leave the root community")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.communities[communityID]; !ok {
		return fmt.Errorf("%w: %s", ErrNotJoined, communityID)
	}
	delete(s.communities, communityID)
	delete(s.indexers, communityID)
	return nil
}

// Close detaches the servent from the network.
func (s *Servent) Close() error { return s.net.Close() }
