// Package core implements U-P2P itself: communities described by XML
// Schema, the servent that creates/searches/views shared objects, and
// the paper's central idea — the community-as-object bootstrap.
//
// "a specific U-P2P community can be seen as a class instantiated by a
// more general metaclass: a Community-sharing community shares
// Community objects" (§I). The root community is compiled in; its
// schema is the paper's Fig. 3. Discovering a community is searching
// the root community; joining one is downloading its object plus the
// attached schema and stylesheets.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"repro/internal/stylegen"
	"repro/internal/xmldoc"
	"repro/internal/xsd"
	"repro/internal/xslt"
)

// RootCommunityID is the well-known ID of the bootstrap community that
// every servent joins by default ("All users are members of the global
// or root community by default", §IV.A).
const RootCommunityID = "up2p-root"

// rootSchemaSrc is the paper's Fig. 3 schema, verbatim (plus the up2p
// namespace declaration used by the searchable markers on no fields —
// the root community indexes every field, matching the prototype).
const rootSchemaSrc = `<?xml version="1.0"?>
<schema xmlns="http://www.w3.org/2001/XMLSchema">
 <element name="community">
  <complexType>
   <sequence>
    <element name="name" type="xsd:string"/>
    <element name="description" type="xsd:string"/>
    <element name="keywords" type="xsd:string"/>
    <element name="category" type="xsd:string"/>
    <element name="security" type="xsd:string"/>
    <element name="protocol" type="protocolTypes"/>
    <element name="schema" type="xsd:anyURI"/>
    <element name="displaystyle" type="xsd:anyURI"/>
    <element name="createstyle" type="xsd:anyURI"/>
    <element name="searchstyle" type="xsd:anyURI"/>
   </sequence>
  </complexType>
 </element>
 <simpleType name="protocolTypes">
  <restriction base="string">
   <enumeration value=""/>
   <enumeration value="Napster"/>
   <enumeration value="Gnutella"/>
   <enumeration value="FastTrack"/>
  </restriction>
 </simpleType>
</schema>`

// Community is a resource-sharing community: the object class it
// shares (the schema) plus its presentation stylesheets and the
// descriptive attributes of Fig. 3.
type Community struct {
	// ID is derived from the community's content hash, so the same
	// community created on two peers coincides.
	ID string
	// Descriptive attributes (Fig. 3).
	Name        string
	Description string
	Keywords    string
	Category    string
	Security    string
	Protocol    string
	// SchemaSrc is the XML Schema text describing shared objects.
	SchemaSrc string
	// Schema is the parsed form of SchemaSrc.
	Schema *xsd.Schema
	// Custom stylesheet sources; empty means use the defaults.
	DisplayStyleSrc string
	CreateStyleSrc  string
	SearchStyleSrc  string
	// IndexStyleSrc optionally overrides the generated indexing
	// transform (§V: the community designer controls indexing).
	IndexStyleSrc string
}

// Errors from community handling.
var (
	ErrNoName   = errors.New("core: community needs a name")
	ErrNoSchema = errors.New("core: community needs a schema")
)

// CommunitySpec is the input to CreateCommunity: the meta-data a user
// fills into the root community's create form.
type CommunitySpec struct {
	Name        string
	Description string
	Keywords    string
	Category    string
	Security    string
	Protocol    string // "", "Napster", "Gnutella", "FastTrack"
	SchemaSrc   string
	// Optional custom stylesheets.
	DisplayStyleSrc string
	CreateStyleSrc  string
	SearchStyleSrc  string
	IndexStyleSrc   string
}

// NewCommunity validates a spec and constructs the Community.
func NewCommunity(spec CommunitySpec) (*Community, error) {
	if strings.TrimSpace(spec.Name) == "" {
		return nil, ErrNoName
	}
	if strings.TrimSpace(spec.SchemaSrc) == "" {
		return nil, ErrNoSchema
	}
	schema, err := xsd.ParseString(spec.SchemaSrc)
	if err != nil {
		return nil, fmt.Errorf("core: community schema: %w", err)
	}
	for _, src := range []string{spec.DisplayStyleSrc, spec.CreateStyleSrc, spec.SearchStyleSrc, spec.IndexStyleSrc} {
		if src == "" {
			continue
		}
		if _, err := xslt.CompileString(src); err != nil {
			return nil, fmt.Errorf("core: community stylesheet: %w", err)
		}
	}
	c := &Community{
		Name:            spec.Name,
		Description:     spec.Description,
		Keywords:        spec.Keywords,
		Category:        spec.Category,
		Security:        spec.Security,
		Protocol:        spec.Protocol,
		SchemaSrc:       spec.SchemaSrc,
		Schema:          schema,
		DisplayStyleSrc: spec.DisplayStyleSrc,
		CreateStyleSrc:  spec.CreateStyleSrc,
		SearchStyleSrc:  spec.SearchStyleSrc,
		IndexStyleSrc:   spec.IndexStyleSrc,
	}
	c.ID = communityID(c)
	return c, nil
}

// communityID hashes the identity-bearing parts of a community.
func communityID(c *Community) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s", c.Name, c.SchemaSrc)
	return "c-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// RootCommunity constructs the compiled-in bootstrap community.
func RootCommunity() *Community {
	c := &Community{
		ID:          RootCommunityID,
		Name:        "Community-sharing community",
		Description: "The root community: shares Community objects so that communities themselves can be discovered (U-P2P bootstrap).",
		Keywords:    "community discovery bootstrap root metaclass",
		Category:    "meta",
		Security:    "open",
		Protocol:    "",
		SchemaSrc:   rootSchemaSrc,
		Schema:      xsd.MustParseString(rootSchemaSrc),
	}
	return c
}

// Attachment URI layout: communities carry their schema and
// stylesheets as attachments, downloaded when the community object is
// retrieved (§IV.C.1's attachment mechanism applied to the bootstrap).
const (
	attachSchema  = "schema.xsd"
	attachDisplay = "display.xsl"
	attachCreate  = "create.xsl"
	attachSearch  = "search.xsl"
	attachIndex   = "index.xsl"
)

// AttachmentURI names one attachment of a document.
func AttachmentURI(docID, name string) string {
	return "up2p://" + docID + "/" + name
}

// Marshal renders the community as a shared XML object valid under the
// root community schema, plus its attachment contents keyed by URI.
func (c *Community) Marshal() (*xmldoc.Node, map[string][]byte) {
	docID := c.ID
	uri := func(name string) string { return AttachmentURI(docID, name) }

	doc := xmldoc.NewElement("community")
	doc.SetChildText("name", c.Name)
	doc.SetChildText("description", c.Description)
	doc.SetChildText("keywords", c.Keywords)
	doc.SetChildText("category", c.Category)
	doc.SetChildText("security", c.Security)
	doc.SetChildText("protocol", c.Protocol)
	doc.SetChildText("schema", uri(attachSchema))

	attachments := map[string][]byte{
		uri(attachSchema): []byte(c.SchemaSrc),
	}
	defCreate, defSearch, defView := stylegen.DefaultSources()
	display, create, search := c.DisplayStyleSrc, c.CreateStyleSrc, c.SearchStyleSrc
	if display == "" {
		display = defView
	}
	if create == "" {
		create = defCreate
	}
	if search == "" {
		search = defSearch
	}
	doc.SetChildText("displaystyle", uri(attachDisplay))
	doc.SetChildText("createstyle", uri(attachCreate))
	doc.SetChildText("searchstyle", uri(attachSearch))
	attachments[uri(attachDisplay)] = []byte(display)
	attachments[uri(attachCreate)] = []byte(create)
	attachments[uri(attachSearch)] = []byte(search)
	if c.IndexStyleSrc != "" {
		attachments[uri(attachIndex)] = []byte(c.IndexStyleSrc)
	}
	return doc, attachments
}

// UnmarshalCommunity reconstructs a Community from its shared object
// and downloaded attachments. Custom stylesheets are recognised by
// their attachment names; absent ones fall back to defaults.
func UnmarshalCommunity(doc *xmldoc.Node, attachments map[string][]byte) (*Community, error) {
	if doc == nil || doc.LocalName() != "community" {
		return nil, errors.New("core: not a community object")
	}
	get := func(field string) []byte {
		uri := doc.ChildText(field)
		return attachments[uri]
	}
	schemaSrc := get("schema")
	if len(schemaSrc) == 0 {
		return nil, fmt.Errorf("core: community %q: schema attachment missing", doc.ChildText("name"))
	}
	spec := CommunitySpec{
		Name:        doc.ChildText("name"),
		Description: doc.ChildText("description"),
		Keywords:    doc.ChildText("keywords"),
		Category:    doc.ChildText("category"),
		Security:    doc.ChildText("security"),
		Protocol:    doc.ChildText("protocol"),
		SchemaSrc:   string(schemaSrc),
	}
	defCreate, defSearch, defView := stylegen.DefaultSources()
	if src := get("displaystyle"); len(src) > 0 && string(src) != defView {
		spec.DisplayStyleSrc = string(src)
	}
	if src := get("createstyle"); len(src) > 0 && string(src) != defCreate {
		spec.CreateStyleSrc = string(src)
	}
	if src := get("searchstyle"); len(src) > 0 && string(src) != defSearch {
		spec.SearchStyleSrc = string(src)
	}
	// Optional custom indexing stylesheet travels under a conventional
	// attachment name.
	for uri, content := range attachments {
		if strings.HasSuffix(uri, "/"+attachIndex) {
			spec.IndexStyleSrc = string(content)
		}
	}
	return NewCommunity(spec)
}

// Indexer builds the community's attribute extractor: the custom
// indexing stylesheet when provided, else one generated from the
// schema's searchable fields.
func (c *Community) Indexer() (*stylegen.Indexer, error) {
	if c.IndexStyleSrc != "" {
		return stylegen.NewIndexerFromSource(c.IndexStyleSrc)
	}
	return stylegen.NewIndexer(c.Schema)
}

// ViewStylesheet returns the compiled display stylesheet (custom or
// default).
func (c *Community) ViewStylesheet() (*xslt.Stylesheet, error) {
	if c.DisplayStyleSrc == "" {
		return stylegen.Defaults().View, nil
	}
	return xslt.CompileString(c.DisplayStyleSrc)
}

// CreateFormHTML renders the community's create form using its
// create stylesheet (custom or default) applied to its schema.
func (c *Community) CreateFormHTML() (string, error) {
	sheet := stylegen.Defaults().Create
	if c.CreateStyleSrc != "" {
		var err error
		sheet, err = xslt.CompileString(c.CreateStyleSrc)
		if err != nil {
			return "", err
		}
	}
	return sheet.Apply(c.Schema.Doc())
}

// SearchFormHTML renders the community's search form.
func (c *Community) SearchFormHTML() (string, error) {
	sheet := stylegen.Defaults().Search
	if c.SearchStyleSrc != "" {
		var err error
		sheet, err = xslt.CompileString(c.SearchStyleSrc)
		if err != nil {
			return "", err
		}
	}
	return sheet.Apply(c.Schema.Doc())
}

// String implements fmt.Stringer.
func (c *Community) String() string {
	return fmt.Sprintf("community %q (%s)", c.Name, c.ID)
}
