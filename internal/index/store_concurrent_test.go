package index

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/query"
)

// TestConcurrentMixedAcrossCommunities hammers the sharded store with
// 12 goroutines doing mixed Put/Search/Delete/Get across 4
// communities (run under -race in CI), then verifies the surviving
// state is exactly what sequential semantics predict: each goroutine
// owns a disjoint ID space, so the final contents are deterministic.
func TestConcurrentMixedAcrossCommunities(t *testing.T) {
	const (
		goroutines = 12
		iterations = 120
		keepEvery  = 3 // delete two of every three documents written
	)
	communities := []string{"patterns", "mp3", "species", "molecules"}
	s := NewStore(WithShards(8), WithCacheSize(32))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			comm := communities[g%len(communities)]
			other := communities[(g+1)%len(communities)]
			for i := 0; i < iterations; i++ {
				id := fmt.Sprintf("d-%d-%d", g, i)
				err := s.Put(doc(id, comm, "T", map[string][]string{
					"k": {fmt.Sprintf("v%d", i%7)},
				}))
				if err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				s.Search(comm, query.MustParse("(k=v1)"), 0)
				s.Search(other, query.MatchAll{}, 5)
				s.Get(DocID(id))
				s.Has(DocID(id))
				if i%keepEvery != 0 {
					if !s.Delete(DocID(id)) {
						t.Errorf("Delete(%s) = false, doc was just put", id)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	want := 0
	for g := 0; g < goroutines; g++ {
		for i := 0; i < iterations; i++ {
			if i%keepEvery == 0 {
				want++
				id := DocID(fmt.Sprintf("d-%d-%d", g, i))
				if !s.Has(id) {
					t.Fatalf("surviving doc %s missing", id)
				}
			}
		}
	}
	if got := s.Len(); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	total := 0
	for _, c := range communities {
		total += s.CommunityLen(c)
	}
	if total != want {
		t.Errorf("sum of CommunityLen = %d, want %d", total, want)
	}
	// Every survivor must be reachable through a community search.
	found := 0
	for _, c := range communities {
		found += len(s.Search(c, query.MatchAll{}, 0))
	}
	if found != want {
		t.Errorf("searchable docs = %d, want %d", found, want)
	}
}

// TestPutBatchMatchesSequential checks batch-vs-single equivalence:
// loading the same documents through PutBatch and through a Put loop
// must produce byte-identical snapshots and identical derived state,
// across several shard configurations.
func TestPutBatchMatchesSequential(t *testing.T) {
	mkDocs := func() []*Document {
		var docs []*Document
		for i := 0; i < 60; i++ {
			comm := fmt.Sprintf("c%d", i%5)
			docs = append(docs, doc(fmt.Sprintf("d%02d", i), comm, fmt.Sprintf("T%d", i), map[string][]string{
				"k":    {fmt.Sprintf("v%d", i%4)},
				"tags": {"shared token", fmt.Sprintf("t%d", i%3)},
			}))
		}
		// A duplicate ID: the batch must behave like sequential Puts
		// (last occurrence wins).
		docs = append(docs, doc("d07", "c2", "replaced", map[string][]string{"k": {"v9"}}))
		return docs
	}
	for _, shards := range []int{1, 4, 16} {
		single := NewStore(WithShards(shards))
		batch := NewStore(WithShards(shards))
		for _, d := range mkDocs() {
			if err := single.Put(d); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if err := batch.PutBatch(mkDocs()); err != nil {
			t.Fatalf("PutBatch: %v", err)
		}
		var a, b bytes.Buffer
		if err := single.Save(&a); err != nil {
			t.Fatal(err)
		}
		if err := batch.Save(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("shards=%d: batch snapshot differs from sequential snapshot", shards)
		}
		if single.Postings() != batch.Postings() {
			t.Errorf("shards=%d: postings %d != %d", shards, single.Postings(), batch.Postings())
		}
		if single.Len() != batch.Len() {
			t.Errorf("shards=%d: len %d != %d", shards, single.Len(), batch.Len())
		}
		f := query.MustParse("(k=v1)")
		for _, comm := range single.Communities() {
			ga, gb := ids(single.Search(comm, f, 0)), ids(batch.Search(comm, f, 0))
			if fmt.Sprint(ga) != fmt.Sprint(gb) {
				t.Errorf("shards=%d community %s: search %v != %v", shards, comm, ga, gb)
			}
		}
	}
}

// TestPutBatchValidation: an invalid document rejects the whole batch
// before anything is written.
func TestPutBatchValidation(t *testing.T) {
	s := NewStore()
	err := s.PutBatch([]*Document{
		doc("ok", "c", "T", nil),
		{CommunityID: "c"}, // no ID
	})
	if err == nil {
		t.Fatal("PutBatch accepted an ID-less document")
	}
	if s.Len() != 0 {
		t.Errorf("partial batch applied: Len = %d, want 0", s.Len())
	}
}

// TestDeleteBatch removes across communities and counts only documents
// that existed.
func TestDeleteBatch(t *testing.T) {
	s := NewStore(WithShards(4))
	var all []DocID
	for i := 0; i < 20; i++ {
		id := DocID(fmt.Sprintf("d%02d", i))
		all = append(all, id)
		if err := s.Put(doc(string(id), fmt.Sprintf("c%d", i%3), "T", map[string][]string{"k": {"v"}})); err != nil {
			t.Fatal(err)
		}
	}
	n := s.DeleteBatch(append(all[:10:10], "missing"))
	if n != 10 {
		t.Errorf("DeleteBatch = %d, want 10", n)
	}
	if s.Len() != 10 {
		t.Errorf("Len = %d, want 10", s.Len())
	}
	for _, id := range all[:10] {
		if s.Has(id) {
			t.Errorf("deleted doc %s still present", id)
		}
	}
	if n := s.DeleteBatch(all); n != 10 {
		t.Errorf("second DeleteBatch = %d, want 10", n)
	}
	if s.Len() != 0 || s.Postings() != 0 {
		t.Errorf("after full delete: Len=%d Postings=%d, want 0/0", s.Len(), s.Postings())
	}
}

// TestCacheInvalidationOnWrite: repeated queries are served from the
// per-shard cache, and any write to the community's shard makes the
// next query recompute and observe the write.
func TestCacheInvalidationOnWrite(t *testing.T) {
	s := NewStore(WithShards(4), WithCacheSize(16))
	put := func(id string) {
		t.Helper()
		if err := s.Put(doc(id, "c", "T", map[string][]string{"k": {"v"}})); err != nil {
			t.Fatal(err)
		}
	}
	put("d1")
	f := query.MustParse("(k=v)")

	if got := len(s.Search("c", f, 0)); got != 1 {
		t.Fatalf("initial search = %d docs, want 1", got)
	}
	misses0 := s.Metrics().Snapshot().Counter("index.cache_misses")
	if got := len(s.Search("c", f, 0)); got != 1 {
		t.Fatalf("repeat search = %d docs, want 1", got)
	}
	snap := s.Metrics().Snapshot()
	hits1, misses1 := snap.Counter("index.cache_hits"), snap.Counter("index.cache_misses")
	if hits1 == 0 {
		t.Error("repeat of identical query did not hit the cache")
	}
	if misses1 != misses0 {
		t.Errorf("repeat of identical query missed (misses %d -> %d)", misses0, misses1)
	}

	// A write must invalidate: the next identical query sees d2.
	put("d2")
	if got := len(s.Search("c", f, 0)); got != 2 {
		t.Fatalf("post-write search = %d docs, want 2 (stale cache served?)", got)
	}
	// And a delete too.
	s.Delete("d1")
	if got := ids(s.Search("c", f, 0)); len(got) != 1 || got[0] != "d2" {
		t.Fatalf("post-delete search = %v, want [d2]", got)
	}

	// Cached results must still be defensive copies.
	s.Search("c", f, 0) // prime
	res := s.Search("c", f, 0)
	res[0].Attrs.Add("k", "mutated")
	res[0].Title = "mutated"
	again := s.Search("c", f, 0)
	if again[0].Title == "mutated" || len(again[0].Attrs["k"]) != 1 {
		t.Error("cache leaked mutable document state to a caller")
	}
}

// TestCacheLRUEviction: the per-shard cache is bounded.
func TestCacheLRUEviction(t *testing.T) {
	s := NewStore(WithShards(1), WithCacheSize(4))
	if err := s.Put(doc("d1", "c", "T", map[string][]string{"k": {"v"}})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Search("c", query.MustParse(fmt.Sprintf("(k=v%d)", i)), 0)
	}
	if got := s.shards[0].cache.entries(); got > 4 {
		t.Errorf("cache grew to %d entries, cap 4", got)
	}
}

// TestCrossCommunityReplace: re-publishing an ID under a different
// community moves it between shards without leaving a stale copy.
func TestCrossCommunityReplace(t *testing.T) {
	s := NewStore(WithShards(8))
	if err := s.Put(doc("d1", "alpha", "A", map[string][]string{"k": {"v"}})); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(doc("d1", "beta", "B", map[string][]string{"k": {"v"}})); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	got, err := s.Get("d1")
	if err != nil || got.CommunityID != "beta" {
		t.Fatalf("Get = %+v, %v; want community beta", got, err)
	}
	if n := len(s.Search("alpha", query.MatchAll{}, 0)); n != 0 {
		t.Errorf("old community still returns %d docs", n)
	}
	if n := len(s.Search("beta", query.MatchAll{}, 0)); n != 1 {
		t.Errorf("new community returns %d docs, want 1", n)
	}
	if s.CommunityLen("alpha") != 0 || s.CommunityLen("beta") != 1 {
		t.Errorf("CommunityLen alpha=%d beta=%d, want 0/1", s.CommunityLen("alpha"), s.CommunityLen("beta"))
	}
}

// TestShardRoundingAndScoping: shard counts round up to powers of two
// and community scoping holds across shard configurations.
func TestShardRoundingAndScoping(t *testing.T) {
	for n, want := range map[int]int{0: 1, 1: 1, 3: 4, 16: 16, 17: 32} {
		if got := NewStore(WithShards(n)).NumShards(); got != want {
			t.Errorf("WithShards(%d) -> %d shards, want %d", n, got, want)
		}
	}
	s := NewStore(WithShards(4))
	for i := 0; i < 40; i++ {
		comm := fmt.Sprintf("c%d", i%8)
		if err := s.Put(doc(fmt.Sprintf("d%02d", i), comm, "T", map[string][]string{"k": {"v"}})); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < 8; c++ {
		comm := fmt.Sprintf("c%d", c)
		for _, d := range s.Search(comm, query.MatchAll{}, 0) {
			if d.CommunityID != comm {
				t.Errorf("search %s returned doc of %s", comm, d.CommunityID)
			}
		}
		if got := s.CommunityLen(comm); got != 5 {
			t.Errorf("CommunityLen(%s) = %d, want 5", comm, got)
		}
	}
	if got := len(s.Communities()); got != 8 {
		t.Errorf("Communities = %d, want 8", got)
	}
}
