// Package index implements U-P2P's local metadata store: the database
// role Magenta played in the paper's prototype. Each servent keeps one
// Store holding the XML objects it shares or has downloaded, plus an
// inverted index over the *indexed attributes* extracted from each
// object by the community's indexing transform (§IV.C.2: only fields
// marked searchable enter the index, keeping "small portions of
// content ... in the search engine instead of the entire XML object").
//
// Searches evaluate query.Filter expressions; equality assertions are
// accelerated through the inverted index, everything else scans the
// community's documents.
//
// The store is sharded for concurrency: documents partition across N
// lock-striped shards by a hash of their community ID, so one
// community's documents and its slice of the inverted index colocate
// in a single shard and community-scoped operations contend on exactly
// one lock. Batch ingest (PutBatch/DeleteBatch) takes each shard lock
// once per batch, and a small per-shard LRU caches recent query
// results, invalidated by a per-shard write generation.
package index

import (
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/errs"
	"repro/internal/metrics"
	"repro/internal/query"
)

// DocID identifies a stored document. U-P2P derives it from a content
// hash so replicas of the same object share an ID across peers.
type DocID string

// Document is one shared object plus its indexed metadata.
type Document struct {
	ID          DocID
	CommunityID string
	// Title is a human-readable label (typically the first indexed
	// attribute value).
	Title string
	// XML is the complete serialized object; returned on retrieval,
	// never scanned during search.
	XML string
	// Attrs are the indexed attributes extracted by the community's
	// indexing stylesheet.
	Attrs query.Attrs
	// Attachments lists attachment URIs flagged in the object
	// (§IV.C.1); downloaded only when the object is retrieved.
	Attachments []string
}

// clone returns a defensive copy so callers cannot mutate store state.
func (d *Document) clone() *Document {
	cp := *d
	cp.Attrs = d.Attrs.Clone()
	cp.Attachments = append([]string(nil), d.Attachments...)
	return &cp
}

// Common errors, carrying structured codes ("index.<name>") for the
// metrics registry's error counter family. Identity semantics are
// unchanged: errors.Is against the sentinels still holds through
// fmt.Errorf("%w: ...") wrapping.
var (
	ErrNotFound error = errs.New("index.not_found", "index: document not found")
	ErrNoID     error = errs.New("index.no_id", "index: document has no ID")
)

// Store tuning defaults.
const (
	// DefaultShards is the default lock-stripe count. Sixteen shards
	// keep per-shard maps small at millions of documents while the
	// stripe array stays two cache lines of pointers.
	DefaultShards = 16
	// DefaultCacheSize is the default per-shard query-result cache
	// capacity, in cached result sets.
	DefaultCacheSize = 128
	// maxCachedResults bounds the size of one cached result set.
	// Larger results are served uncached: caching them would pin
	// every returned document (including deleted ones, until LRU
	// pressure or a same-key lookup evicts the stale entry) for
	// little win, since huge scans are rarely repeated verbatim.
	maxCachedResults = 256
)

// Option configures a Store.
type Option func(*storeConfig)

type storeConfig struct {
	shards          int
	cacheSize       int
	metrics         *metrics.Registry
	logger          *slog.Logger
	walDir          string
	walFsync        FsyncPolicy
	walSegmentBytes int64
	walCompactBytes int64
}

func defaultStoreConfig() storeConfig {
	return storeConfig{
		shards:          DefaultShards,
		cacheSize:       DefaultCacheSize,
		walFsync:        FsyncAlways,
		walSegmentBytes: DefaultWALSegmentBytes,
		walCompactBytes: DefaultWALCompactBytes,
	}
}

// WithShards sets the shard count (rounded up to a power of two,
// minimum 1). One shard degenerates to a single-lock store — the
// baseline configuration the scaling experiments compare against.
func WithShards(n int) Option {
	return func(c *storeConfig) { c.shards = n }
}

// WithCacheSize sets the per-shard query-result cache capacity in
// entries; 0 disables result caching.
func WithCacheSize(n int) Option {
	return func(c *storeConfig) { c.cacheSize = n }
}

// WithMetrics records the store's telemetry (cache hits/misses,
// occupancy gauges) into reg. Default is a private registry; several
// stores sharing one registry aggregate: the index.docs and
// index.postings gauges sum across stores, index.shard_max_docs takes
// the max.
func WithMetrics(reg *metrics.Registry) Option {
	return func(c *storeConfig) { c.metrics = reg }
}

// WithLogger routes the store's operational log lines — WAL replay
// ranges, torn-tail truncations, compactions — to l. The default
// discards them; the counters in the metrics registry always record
// these events regardless of the logger.
func WithLogger(l *slog.Logger) Option {
	return func(c *storeConfig) { c.logger = l }
}

// WithWAL arms crash-safe persistence under dir: every write is
// appended to a per-shard write-ahead log before it is applied, and
// OpenStore replays snapshot + log on start. Only OpenStore honors
// this option (opening a log can fail); NewStore panics on it.
func WithWAL(dir string) Option {
	return func(c *storeConfig) { c.walDir = dir }
}

// WithWALFsync sets the log's fsync policy (default FsyncAlways).
func WithWALFsync(p FsyncPolicy) Option {
	return func(c *storeConfig) { c.walFsync = p }
}

// WithWALSegmentBytes sets the per-shard segment size beyond which
// appends rotate to a fresh file (default DefaultWALSegmentBytes).
func WithWALSegmentBytes(n int64) Option {
	return func(c *storeConfig) { c.walSegmentBytes = n }
}

// WithWALCompactBytes sets the total live-log size beyond which the
// next write triggers automatic compaction; 0 disables auto
// compaction (default DefaultWALCompactBytes).
func WithWALCompactBytes(n int64) Option {
	return func(c *storeConfig) { c.walCompactBytes = n }
}

// Store is a thread-safe sharded metadata store with an inverted
// index. See the package comment for the sharding design.
type Store struct {
	shards []*shard
	mask   uint32
	reg    *metrics.Registry
	hits   *metrics.Counter
	misses *metrics.Counter
	// dir routes DocID-keyed operations (Get/Has/Delete) to the shard
	// holding the document, so they need not know the community.
	// DocIDs are content-addressed over (community, content), so an ID
	// essentially never migrates between communities; sequential
	// cross-community re-publication of one ID is handled
	// (evictForeign), but CONCURRENT re-publication of one ID under
	// two different communities is unsupported — both copies can
	// survive, with the directory pointing at one of them — and needs
	// external serialization (the IndexServer serializes registrations
	// for exactly this reason).
	dir sync.Map // DocID -> uint32 shard index
	// wal, when non-nil, logs every write before it is applied; see
	// wal.go. Armed only by OpenStore.
	wal *wal
}

// shard holds one stripe of the store: the documents of every
// community hashing to it, their slice of the inverted index, and a
// result cache. All fields except cache are guarded by mu; cache has
// its own internal lock so reads can fill it while holding mu.RLock.
type shard struct {
	mu          sync.RWMutex
	docs        map[DocID]*Document
	byCommunity map[string]map[DocID]struct{}
	// inverted maps attr name -> normalized token -> posting set.
	inverted map[string]map[string]map[DocID]struct{}
	// postings counts index entries, for the E4 index-size experiment.
	postings int
	// gen counts writes to this shard. Cached results remember the gen
	// they were computed under and are discarded once it moves on, so
	// writers pay one increment — never a cache sweep.
	gen   uint64
	cache *resultCache
}

// NewStore returns an empty in-memory store with the given options
// (default: 16 shards, 128 cached result sets per shard). For a
// durable store, pass WithWAL to OpenStore instead; NewStore panics
// on WithWAL because arming a log can fail and NewStore has no error
// to return.
func NewStore(opts ...Option) *Store {
	cfg := defaultStoreConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.walDir != "" {
		panic("index: NewStore cannot arm a WAL; use OpenStore")
	}
	return newStore(cfg)
}

// newStore builds the in-memory structures shared by NewStore and
// OpenStore.
func newStore(cfg storeConfig) *Store {
	n := ceilPow2(cfg.shards)
	reg := cfg.metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Store{
		shards: make([]*shard, n),
		mask:   uint32(n - 1),
		reg:    reg,
		hits:   reg.Counter("index.cache_hits"),
		misses: reg.Counter("index.cache_misses"),
	}
	for i := range s.shards {
		sh := &shard{
			docs:        make(map[DocID]*Document),
			byCommunity: make(map[string]map[DocID]struct{}),
			inverted:    make(map[string]map[string]map[DocID]struct{}),
		}
		if cfg.cacheSize > 0 {
			sh.cache = newResultCache(cfg.cacheSize, s.hits, s.misses)
		}
		s.shards[i] = sh
	}
	reg.GaugeFunc("index.docs", func() int64 { return int64(s.Len()) })
	reg.GaugeFunc("index.postings", func() int64 { return int64(s.Postings()) })
	reg.GaugeFuncMax("index.shard_max_docs", func() int64 { return s.maxShardDocs() })
	return s
}

// Metrics returns the registry this store records into.
func (s *Store) Metrics() *metrics.Registry { return s.reg }

// maxShardDocs returns the document count of the fullest shard — the
// occupancy-skew signal behind the index.shard_max_docs gauge.
func (s *Store) maxShardDocs() int64 {
	var max int64
	for _, sh := range s.shards {
		sh.mu.RLock()
		if n := int64(len(sh.docs)); n > max {
			max = n
		}
		sh.mu.RUnlock()
	}
	return max
}

// NumShards reports the shard count (for experiments and diagnostics).
func (s *Store) NumShards() int { return len(s.shards) }

// ceilPow2 rounds n up to the next power of two, minimum 1.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardIndex maps a community to its stripe (FNV-1a).
func (s *Store) shardIndex(communityID string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(communityID); i++ {
		h ^= uint32(communityID[i])
		h *= prime32
	}
	return h & s.mask
}

// shardOf resolves a DocID through the directory; nil if unknown.
func (s *Store) shardOf(id DocID) *shard {
	if v, ok := s.dir.Load(id); ok {
		return s.shards[v.(uint32)]
	}
	return nil
}

// Put inserts or replaces a document. The document is copied; the
// caller keeps ownership of its argument. With a WAL armed, the write
// is logged (and, under FsyncAlways, synced) before it is applied; an
// error means the store is unchanged.
func (s *Store) Put(doc *Document) error {
	if doc == nil || doc.ID == "" {
		return ErrNoID
	}
	s.maybeCompact()
	cp := doc.clone()
	idx := s.shardIndex(cp.CommunityID)
	s.evictForeign(cp.ID, idx)
	sh := s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.wal != nil {
		if err := s.wal.appendRecord(idx, walRecord{Op: walOpPut, Docs: []*Document{cp}}); err != nil {
			return err
		}
	}
	sh.putLocked(cp)
	s.dir.Store(cp.ID, idx)
	return nil
}

// PutBatch inserts or replaces many documents, taking each shard lock
// once per shard instead of once per document — the bulk-ingest path
// for corpus seeding, snapshot load, and batched publication. The
// batch is validated up front: on an ID-less document nothing is
// written. Duplicate IDs within one batch behave like sequential Puts
// (the last occurrence wins).
//
// With a WAL armed, each shard's slice of the batch is logged before
// it is applied, and the batch is acknowledged (nil return) only once
// every record is on the log (synced, under FsyncAlways) — an
// acknowledged batch survives a crash. A mid-batch append failure
// leaves earlier shards applied and the failing shard untouched.
func (s *Store) PutBatch(docs []*Document) error {
	for _, d := range docs {
		if d == nil || d.ID == "" {
			return ErrNoID
		}
	}
	if len(docs) == 0 {
		return nil
	}
	s.maybeCompact()
	// Dedupe by ID, last occurrence winning, preserving first-seen
	// order for determinism.
	order := make([]DocID, 0, len(docs))
	byID := make(map[DocID]*Document, len(docs))
	for _, d := range docs {
		if _, seen := byID[d.ID]; !seen {
			order = append(order, d.ID)
		}
		byID[d.ID] = d
	}
	groups := make(map[uint32][]*Document)
	for _, id := range order {
		cp := byID[id].clone()
		idx := s.shardIndex(cp.CommunityID)
		s.evictForeign(cp.ID, idx)
		groups[idx] = append(groups[idx], cp)
	}
	idxs := make([]uint32, 0, len(groups))
	for idx := range groups {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		sh := s.shards[idx]
		sh.mu.Lock()
		if s.wal != nil {
			if err := s.wal.appendRecord(idx, walRecord{Op: walOpPut, Docs: groups[idx]}); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		for _, cp := range groups[idx] {
			sh.putLocked(cp)
			s.dir.Store(cp.ID, idx)
		}
		sh.mu.Unlock()
	}
	return nil
}

// evictForeign removes a previous copy of id living in a shard other
// than target — the document moved community. Rare: DocIDs embed the
// community in their content hash.
func (s *Store) evictForeign(id DocID, target uint32) {
	v, ok := s.dir.Load(id)
	if !ok {
		return
	}
	old := v.(uint32)
	if old == target {
		return
	}
	sh := s.shards[old]
	sh.mu.Lock()
	if d, ok := sh.docs[id]; ok {
		sh.removeLocked(d)
	}
	sh.mu.Unlock()
}

// Get returns a copy of the document.
func (s *Store) Get(id DocID) (*Document, error) {
	if sh := s.shardOf(id); sh != nil {
		sh.mu.RLock()
		d, ok := sh.docs[id]
		if ok {
			cp := d.clone()
			sh.mu.RUnlock()
			return cp, nil
		}
		sh.mu.RUnlock()
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
}

// Has reports whether the document is stored.
func (s *Store) Has(id DocID) bool {
	if sh := s.shardOf(id); sh != nil {
		sh.mu.RLock()
		_, ok := sh.docs[id]
		sh.mu.RUnlock()
		return ok
	}
	return false
}

// Delete removes a document, reporting whether it existed. With a WAL
// armed, a failed log append (counted under wal.append in the error
// family) leaves the document in place and reports false.
func (s *Store) Delete(id DocID) bool {
	v, ok := s.dir.Load(id)
	if !ok {
		return false
	}
	idx := v.(uint32)
	sh := s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d, present := sh.docs[id]
	if !present {
		return false
	}
	if s.wal != nil {
		if err := s.wal.appendRecord(idx, walRecord{Op: walOpDel, IDs: []DocID{id}}); err != nil {
			return false
		}
	}
	sh.removeLocked(d)
	s.dir.Delete(id)
	return true
}

// DeleteBatch removes many documents, taking each shard lock once per
// shard. It returns how many of the IDs were present.
func (s *Store) DeleteBatch(ids []DocID) int {
	s.maybeCompact()
	groups := make(map[uint32][]DocID)
	for _, id := range ids {
		if v, ok := s.dir.Load(id); ok {
			idx := v.(uint32)
			groups[idx] = append(groups[idx], id)
		}
	}
	idxs := make([]uint32, 0, len(groups))
	for idx := range groups {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	n := 0
	for _, idx := range idxs {
		sh := s.shards[idx]
		sh.mu.Lock()
		if s.wal != nil {
			if err := s.wal.appendRecord(idx, walRecord{Op: walOpDel, IDs: groups[idx]}); err != nil {
				sh.mu.Unlock()
				continue // this shard's deletes are skipped, not half-applied
			}
		}
		for _, id := range groups[idx] {
			if d, ok := sh.docs[id]; ok {
				sh.removeLocked(d)
				s.dir.Delete(id)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.docs)
		sh.mu.RUnlock()
	}
	return n
}

// CommunityLen returns the number of documents in one community.
func (s *Store) CommunityLen(communityID string) int {
	sh := s.shards[s.shardIndex(communityID)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.byCommunity[communityID])
}

// Communities returns the IDs of communities with stored documents,
// sorted.
func (s *Store) Communities() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for c := range sh.byCommunity {
			out = append(out, c)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Postings returns the number of inverted-index entries: the measured
// "index size" of experiment E4.
func (s *Store) Postings() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.postings
		sh.mu.RUnlock()
	}
	return n
}

// Search returns documents in the community whose indexed attributes
// satisfy the filter, sorted by ID for determinism. limit <= 0 means
// unlimited. An empty communityID searches all communities (spanning
// every shard, uncached).
func (s *Store) Search(communityID string, f query.Filter, limit int) []*Document {
	if f == nil {
		f = query.MatchAll{}
	}
	if communityID != "" {
		sh := s.shards[s.shardIndex(communityID)]
		return cloneDocs(sh.search(communityID, f, limit))
	}
	var all []*Document
	for _, sh := range s.shards {
		all = append(all, sh.search("", f, 0)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return cloneDocs(all)
}

// cloneDocs defensively copies a result set; cached canonical
// documents are never handed to callers directly.
func cloneDocs(docs []*Document) []*Document {
	if docs == nil {
		return nil
	}
	out := make([]*Document, len(docs))
	for i, d := range docs {
		out[i] = d.clone()
	}
	return out
}

// search runs one community-scoped (or, with "", shard-wide) query
// against this shard, consulting the result cache first. The returned
// documents are canonical store pointers — the caller must clone
// before handing them out.
func (sh *shard) search(communityID string, f query.Filter, limit int) []*Document {
	cacheable := sh.cache != nil && communityID != ""
	var key string
	if cacheable {
		key = cacheKey(communityID, f, limit)
	}
	sh.mu.RLock()
	if cacheable {
		if docs, ok := sh.cache.get(key, sh.gen); ok {
			sh.mu.RUnlock()
			return docs
		}
	}
	matches := sh.searchLocked(communityID, f, limit)
	gen := sh.gen
	sh.mu.RUnlock()
	if cacheable && len(matches) <= maxCachedResults {
		// A write may have slipped in after RUnlock; the entry then
		// carries a stale gen and the next get treats it as a miss.
		sh.cache.put(key, gen, matches)
	}
	return matches
}

// cacheKey identifies one materialized query: community, the filter's
// canonical string form, and the limit.
func cacheKey(communityID string, f query.Filter, limit int) string {
	return communityID + "\x00" + f.String() + "\x00" + strconv.Itoa(limit)
}

func (sh *shard) searchLocked(communityID string, f query.Filter, limit int) []*Document {
	candidates := sh.candidatesLocked(communityID, f)
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].ID < candidates[j].ID })
	var out []*Document
	for _, d := range candidates {
		if communityID != "" && d.CommunityID != communityID {
			continue
		}
		if !f.Match(d.Attrs) {
			continue
		}
		out = append(out, d)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// candidatesLocked narrows the scan set using the inverted index when
// the filter's top level is (or conjoins) an exact-match assertion.
func (sh *shard) candidatesLocked(communityID string, f query.Filter) []*Document {
	if ids := sh.indexedCandidatesLocked(f); ids != nil {
		out := make([]*Document, 0, len(ids))
		for id := range ids {
			if d, ok := sh.docs[id]; ok {
				out = append(out, d)
			}
		}
		return out
	}
	// Full community scan.
	var out []*Document
	if communityID != "" {
		for id := range sh.byCommunity[communityID] {
			out = append(out, sh.docs[id])
		}
		return out
	}
	for _, d := range sh.docs {
		out = append(out, d)
	}
	return out
}

// indexedCandidatesLocked returns a candidate ID set when the filter
// permits index acceleration, or nil to force a scan. Sound but not
// complete: it may return a superset of matches, never a subset.
func (sh *shard) indexedCandidatesLocked(f query.Filter) map[DocID]struct{} {
	switch t := f.(type) {
	case *query.Assertion:
		if t.Op != query.OpEq || strings.ContainsRune(t.Value, '*') {
			return nil
		}
		field := sh.inverted[t.Attr]
		if field == nil {
			return map[DocID]struct{}{}
		}
		// The whole normalized value is indexed as one token alongside
		// its words, so exact matches hit directly.
		return field[normalize(t.Value)]
	case *query.And:
		// Any one accelerable conjunct suffices (superset property).
		for _, sub := range t.Subs {
			if ids := sh.indexedCandidatesLocked(sub); ids != nil {
				return ids
			}
		}
		return nil
	default:
		return nil
	}
}

// putLocked installs cp in this shard, displacing any previous version
// (including one filed under a different community that hashed here).
func (sh *shard) putLocked(cp *Document) {
	if old, ok := sh.docs[cp.ID]; ok {
		sh.unindexLocked(old)
		if old.CommunityID != cp.CommunityID {
			sh.dropMembershipLocked(old)
		}
	}
	sh.docs[cp.ID] = cp
	comm := sh.byCommunity[cp.CommunityID]
	if comm == nil {
		comm = make(map[DocID]struct{})
		sh.byCommunity[cp.CommunityID] = comm
	}
	comm[cp.ID] = struct{}{}
	sh.indexLocked(cp)
	sh.gen++
}

// removeLocked deletes d from this shard entirely.
func (sh *shard) removeLocked(d *Document) {
	sh.unindexLocked(d)
	delete(sh.docs, d.ID)
	sh.dropMembershipLocked(d)
	sh.gen++
}

// dropMembershipLocked removes d from its community's member set.
func (sh *shard) dropMembershipLocked(d *Document) {
	if comm := sh.byCommunity[d.CommunityID]; comm != nil {
		delete(comm, d.ID)
		if len(comm) == 0 {
			delete(sh.byCommunity, d.CommunityID)
		}
	}
}

func (sh *shard) indexLocked(d *Document) {
	for attr, vals := range d.Attrs {
		field := sh.inverted[attr]
		if field == nil {
			field = make(map[string]map[DocID]struct{})
			sh.inverted[attr] = field
		}
		for _, v := range vals {
			for _, tok := range indexTokens(v) {
				set := field[tok]
				if set == nil {
					set = make(map[DocID]struct{})
					field[tok] = set
				}
				if _, dup := set[d.ID]; !dup {
					set[d.ID] = struct{}{}
					sh.postings++
				}
			}
		}
	}
}

func (sh *shard) unindexLocked(d *Document) {
	for attr, vals := range d.Attrs {
		field := sh.inverted[attr]
		if field == nil {
			continue
		}
		for _, v := range vals {
			for _, tok := range indexTokens(v) {
				if set := field[tok]; set != nil {
					if _, ok := set[d.ID]; ok {
						delete(set, d.ID)
						sh.postings--
					}
					if len(set) == 0 {
						delete(field, tok)
					}
				}
			}
		}
		if len(field) == 0 {
			delete(sh.inverted, attr)
		}
	}
}

// indexTokens yields the normalized full value plus its words, so both
// exact-value lookups and word queries hit the index.
func indexTokens(v string) []string {
	full := normalize(v)
	if full == "" {
		return nil
	}
	toks := []string{full}
	for _, w := range strings.FieldsFunc(full, func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	}) {
		if w != full {
			toks = append(toks, w)
		}
	}
	return toks
}

func normalize(v string) string {
	return strings.ToLower(strings.TrimSpace(v))
}
