// Package index implements U-P2P's local metadata store: the database
// role Magenta played in the paper's prototype. Each servent keeps one
// Store holding the XML objects it shares or has downloaded, plus an
// inverted index over the *indexed attributes* extracted from each
// object by the community's indexing transform (§IV.C.2: only fields
// marked searchable enter the index, keeping "small portions of
// content ... in the search engine instead of the entire XML object").
//
// Searches evaluate query.Filter expressions; equality assertions are
// accelerated through the inverted index, everything else scans the
// community's documents.
package index

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/query"
)

// DocID identifies a stored document. U-P2P derives it from a content
// hash so replicas of the same object share an ID across peers.
type DocID string

// Document is one shared object plus its indexed metadata.
type Document struct {
	ID          DocID
	CommunityID string
	// Title is a human-readable label (typically the first indexed
	// attribute value).
	Title string
	// XML is the complete serialized object; returned on retrieval,
	// never scanned during search.
	XML string
	// Attrs are the indexed attributes extracted by the community's
	// indexing stylesheet.
	Attrs query.Attrs
	// Attachments lists attachment URIs flagged in the object
	// (§IV.C.1); downloaded only when the object is retrieved.
	Attachments []string
}

// clone returns a defensive copy so callers cannot mutate store state.
func (d *Document) clone() *Document {
	cp := *d
	cp.Attrs = d.Attrs.Clone()
	cp.Attachments = append([]string(nil), d.Attachments...)
	return &cp
}

// Common errors.
var (
	ErrNotFound = errors.New("index: document not found")
	ErrNoID     = errors.New("index: document has no ID")
)

// Store is a thread-safe metadata store with an inverted index.
type Store struct {
	mu sync.RWMutex
	// docs maps ID to the canonical copy.
	docs map[DocID]*Document
	// byCommunity groups documents for community-scoped search.
	byCommunity map[string]map[DocID]struct{}
	// inverted maps attr name -> normalized token -> posting set.
	inverted map[string]map[string]map[DocID]struct{}
	// postings counts index entries, for the E4 index-size experiment.
	postings int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		docs:        make(map[DocID]*Document),
		byCommunity: make(map[string]map[DocID]struct{}),
		inverted:    make(map[string]map[string]map[DocID]struct{}),
	}
}

// Put inserts or replaces a document. The document is copied; the
// caller keeps ownership of its argument.
func (s *Store) Put(doc *Document) error {
	if doc == nil || doc.ID == "" {
		return ErrNoID
	}
	cp := doc.clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.docs[cp.ID]; ok {
		s.unindexLocked(old)
	}
	s.docs[cp.ID] = cp
	comm := s.byCommunity[cp.CommunityID]
	if comm == nil {
		comm = make(map[DocID]struct{})
		s.byCommunity[cp.CommunityID] = comm
	}
	comm[cp.ID] = struct{}{}
	s.indexLocked(cp)
	return nil
}

// Get returns a copy of the document.
func (s *Store) Get(id DocID) (*Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return d.clone(), nil
}

// Has reports whether the document is stored.
func (s *Store) Has(id DocID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.docs[id]
	return ok
}

// Delete removes a document, reporting whether it existed.
func (s *Store) Delete(id DocID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[id]
	if !ok {
		return false
	}
	s.unindexLocked(d)
	delete(s.docs, id)
	if comm := s.byCommunity[d.CommunityID]; comm != nil {
		delete(comm, id)
		if len(comm) == 0 {
			delete(s.byCommunity, d.CommunityID)
		}
	}
	return true
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// CommunityLen returns the number of documents in one community.
func (s *Store) CommunityLen(communityID string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byCommunity[communityID])
}

// Communities returns the IDs of communities with stored documents,
// sorted.
func (s *Store) Communities() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byCommunity))
	for c := range s.byCommunity {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Postings returns the number of inverted-index entries: the measured
// "index size" of experiment E4.
func (s *Store) Postings() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.postings
}

// Search returns documents in the community whose indexed attributes
// satisfy the filter, sorted by ID for determinism. limit <= 0 means
// unlimited. An empty communityID searches all communities.
func (s *Store) Search(communityID string, f query.Filter, limit int) []*Document {
	if f == nil {
		f = query.MatchAll{}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	candidates := s.candidatesLocked(communityID, f)
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].ID < candidates[j].ID })
	var out []*Document
	for _, d := range candidates {
		if communityID != "" && d.CommunityID != communityID {
			continue
		}
		if !f.Match(d.Attrs) {
			continue
		}
		out = append(out, d.clone())
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// candidatesLocked narrows the scan set using the inverted index when
// the filter's top level is (or conjoins) an exact-match assertion.
func (s *Store) candidatesLocked(communityID string, f query.Filter) []*Document {
	if ids := s.indexedCandidatesLocked(f); ids != nil {
		out := make([]*Document, 0, len(ids))
		for id := range ids {
			if d, ok := s.docs[id]; ok {
				out = append(out, d)
			}
		}
		return out
	}
	// Full community scan.
	var out []*Document
	if communityID != "" {
		for id := range s.byCommunity[communityID] {
			out = append(out, s.docs[id])
		}
		return out
	}
	for _, d := range s.docs {
		out = append(out, d)
	}
	return out
}

// indexedCandidatesLocked returns a candidate ID set when the filter
// permits index acceleration, or nil to force a scan. Sound but not
// complete: it may return a superset of matches, never a subset.
func (s *Store) indexedCandidatesLocked(f query.Filter) map[DocID]struct{} {
	switch t := f.(type) {
	case *query.Assertion:
		if t.Op != query.OpEq || strings.ContainsRune(t.Value, '*') {
			return nil
		}
		field := s.inverted[t.Attr]
		if field == nil {
			return map[DocID]struct{}{}
		}
		// The whole normalized value is indexed as one token alongside
		// its words, so exact matches hit directly.
		return field[normalize(t.Value)]
	case *query.And:
		// Any one accelerable conjunct suffices (superset property).
		for _, sub := range t.Subs {
			if ids := s.indexedCandidatesLocked(sub); ids != nil {
				return ids
			}
		}
		return nil
	default:
		return nil
	}
}

func (s *Store) indexLocked(d *Document) {
	for attr, vals := range d.Attrs {
		field := s.inverted[attr]
		if field == nil {
			field = make(map[string]map[DocID]struct{})
			s.inverted[attr] = field
		}
		for _, v := range vals {
			for _, tok := range indexTokens(v) {
				set := field[tok]
				if set == nil {
					set = make(map[DocID]struct{})
					field[tok] = set
				}
				if _, dup := set[d.ID]; !dup {
					set[d.ID] = struct{}{}
					s.postings++
				}
			}
		}
	}
}

func (s *Store) unindexLocked(d *Document) {
	for attr, vals := range d.Attrs {
		field := s.inverted[attr]
		if field == nil {
			continue
		}
		for _, v := range vals {
			for _, tok := range indexTokens(v) {
				if set := field[tok]; set != nil {
					if _, ok := set[d.ID]; ok {
						delete(set, d.ID)
						s.postings--
					}
					if len(set) == 0 {
						delete(field, tok)
					}
				}
			}
		}
		if len(field) == 0 {
			delete(s.inverted, attr)
		}
	}
}

// indexTokens yields the normalized full value plus its words, so both
// exact-value lookups and word queries hit the index.
func indexTokens(v string) []string {
	full := normalize(v)
	if full == "" {
		return nil
	}
	toks := []string{full}
	for _, w := range strings.FieldsFunc(full, func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	}) {
		if w != full {
			toks = append(toks, w)
		}
	}
	return toks
}

func normalize(v string) string {
	return strings.ToLower(strings.TrimSpace(v))
}
