package index

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/query"
)

// openWAL opens a WAL-backed store in dir with small segments so the
// tests exercise rotation.
func openWAL(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	opts = append([]Option{
		WithWAL(dir),
		WithWALSegmentBytes(4 << 10),
		WithWALCompactBytes(0), // compaction only when a test asks
	}, opts...)
	s, err := OpenStore(opts...)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

// walBatch builds batch b: docsPer documents spread over communities
// (and so over shards).
func walBatch(b, docsPer int) []*Document {
	docs := make([]*Document, 0, docsPer)
	for j := 0; j < docsPer; j++ {
		docs = append(docs, &Document{
			ID:          DocID(fmt.Sprintf("b%04d-d%d", b, j)),
			CommunityID: fmt.Sprintf("comm-%d", j%5),
			Title:       fmt.Sprintf("batch %d doc %d", b, j),
			XML:         "<o/>",
			Attrs:       query.Attrs{"batch": {fmt.Sprintf("%d", b)}},
		})
	}
	return docs
}

// walFileSizes snapshots the size of every segment file in dir.
func walFileSizes(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make(map[string]int64)
	for _, e := range entries {
		if _, _, ok := parseSegmentName(e.Name()); ok {
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			sizes[e.Name()] = fi.Size()
		}
	}
	return sizes
}

func TestWALRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	s := openWAL(t, dir)
	const batches, docsPer = 20, 6
	for b := 0; b < batches; b++ {
		if err := s.PutBatch(walBatch(b, docsPer)); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	// Crash: no Close, no Compact — the log is the only durable state.
	s.wal.closeFiles()

	r := openWAL(t, dir)
	if got, want := r.Len(), batches*docsPer; got != want {
		t.Fatalf("recovered %d docs, want %d", got, want)
	}
	d, err := r.Get("b0007-d3")
	if err != nil || d.Title != "batch 7 doc 3" || d.CommunityID != "comm-3" {
		t.Fatalf("recovered doc = %+v, %v", d, err)
	}
	// The inverted index is rebuilt: indexed search works.
	if got := len(r.Search("comm-0", query.MustParse("(batch=7)"), 0)); got != 2 {
		t.Fatalf("indexed search after recovery = %d docs, want 2", got)
	}
	if n := r.Metrics().Snapshot().Counter("index.wal_replayed"); n == 0 {
		t.Error("index.wal_replayed not counted")
	}
}

// TestWALKillAtRandomOffset is the crash-recovery acceptance test:
// write N acknowledged batches, then cut the log at a random byte —
// truncation or bit-flip, anywhere in any segment — and require that
// (a) reopening never fails and (b) every batch acknowledged before
// the cut point was written is intact.
func TestWALKillAtRandomOffset(t *testing.T) {
	const trials = 12
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			dir := t.TempDir()
			s := openWAL(t, dir)
			const batches, docsPer = 25, 6
			// ackSizes[b] = size of every segment when batch b was acked.
			ackSizes := make([]map[string]int64, batches)
			type op struct {
				putB int     // batch whose docs this op put (-1 for delete ops)
				dels []DocID // docs this op deleted
			}
			ops := make([]op, batches)
			deleted := make(map[DocID]int) // doc -> batch that deleted it
			for b := 0; b < batches; b++ {
				if b > 4 && b%5 == 0 {
					// A delete batch: drop two docs of batch b-3.
					ids := []DocID{
						DocID(fmt.Sprintf("b%04d-d0", b-3)),
						DocID(fmt.Sprintf("b%04d-d1", b-3)),
					}
					s.DeleteBatch(ids)
					ops[b] = op{putB: -1, dels: ids}
					for _, id := range ids {
						deleted[id] = b
					}
				} else {
					if err := s.PutBatch(walBatch(b, docsPer)); err != nil {
						t.Fatalf("batch %d: %v", b, err)
					}
					ops[b] = op{putB: b}
				}
				ackSizes[b] = walFileSizes(t, dir)
			}
			s.wal.closeFiles()

			// Choose the cut: a random byte in a random segment.
			sizes := walFileSizes(t, dir)
			var files []string
			for name, sz := range sizes {
				if sz > 0 {
					files = append(files, name)
				}
			}
			if len(files) == 0 {
				t.Fatal("no segments written")
			}
			victim := files[rng.Intn(len(files))]
			cut := rng.Int63n(sizes[victim] + 1)
			path := filepath.Join(dir, victim)
			if rng.Intn(2) == 0 || cut == sizes[victim] {
				if err := os.Truncate(path, cut); err != nil {
					t.Fatal(err)
				}
			} else {
				f, err := os.OpenFile(path, os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				var one [1]byte
				if _, err := f.ReadAt(one[:], cut); err != nil {
					t.Fatal(err)
				}
				one[0] ^= 0xff
				if _, err := f.WriteAt(one[:], cut); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			// Reopen: a torn/corrupt tail must never abort startup.
			r := openWAL(t, dir)

			// A batch survives iff every byte it ever appended — in the
			// victim file too — lies before the cut. Other files are
			// untouched, so only the victim's ack-time size matters.
			for b := 0; b < batches; b++ {
				if ackSizes[b][victim] > cut {
					continue // acked after the cut; no guarantee
				}
				o := ops[b]
				if o.putB >= 0 {
					for j := 0; j < docsPer; j++ {
						id := DocID(fmt.Sprintf("b%04d-d%d", o.putB, j))
						if _, wasDeleted := deleted[id]; wasDeleted {
							continue // judged with the delete batch below
						}
						d, err := r.Get(id)
						if err != nil {
							t.Errorf("acked batch %d lost doc %s (cut %s@%d): %v", b, id, victim, cut, err)
						} else if d.Title != fmt.Sprintf("batch %d doc %d", o.putB, j) {
							t.Errorf("doc %s corrupted: %q", id, d.Title)
						}
					}
				} else {
					// Nothing re-puts a deleted ID, so a surviving delete
					// must hold after recovery.
					for _, id := range o.dels {
						if r.Has(id) {
							t.Errorf("acked delete batch %d resurrected %s", b, id)
						}
					}
				}
			}
		})
	}
}

func TestWALTornTailTruncatedAndAppendable(t *testing.T) {
	dir := t.TempDir()
	s := openWAL(t, dir)
	if err := s.PutBatch(walBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	s.wal.closeFiles()
	// Smear a torn record onto the tail of every segment.
	for name := range walFileSizes(t, dir) {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x13, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	r := openWAL(t, dir)
	if got := r.Len(); got != 4 {
		t.Fatalf("recovered %d docs, want 4", got)
	}
	if n := r.Metrics().Snapshot().Label("errors", "wal.corrupt"); n == 0 {
		t.Error("torn tail not counted under wal.corrupt")
	}
	// The truncated segments accept appends again and a further
	// recovery sees both generations.
	if err := r.PutBatch(walBatch(1, 4)); err != nil {
		t.Fatal(err)
	}
	r.wal.closeFiles()
	r2 := openWAL(t, dir)
	if got := r2.Len(); got != 8 {
		t.Fatalf("after torn tail + append, recovered %d docs, want 8", got)
	}
}

func TestWALReplaysDeletesInOrder(t *testing.T) {
	dir := t.TempDir()
	s := openWAL(t, dir)
	if err := s.PutBatch(walBatch(0, 6)); err != nil {
		t.Fatal(err)
	}
	if !s.Delete("b0000-d2") {
		t.Fatal("delete failed")
	}
	// Re-put then delete again: replay order matters.
	if err := s.Put(walBatch(0, 6)[3]); err != nil {
		t.Fatal(err)
	}
	s.DeleteBatch([]DocID{"b0000-d3", "b0000-d4"})
	s.wal.closeFiles()

	r := openWAL(t, dir)
	if got := r.Len(); got != 3 {
		t.Fatalf("recovered %d docs, want 3", got)
	}
	for _, id := range []DocID{"b0000-d2", "b0000-d3", "b0000-d4"} {
		if r.Has(id) {
			t.Errorf("deleted doc %s resurrected by replay", id)
		}
	}
}

func TestWALCompactionFoldsLogIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openWAL(t, dir)
	for b := 0; b < 10; b++ {
		if err := s.PutBatch(walBatch(b, 6)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, walSnapshotName)); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	for name, sz := range walFileSizes(t, dir) {
		if sz != 0 {
			t.Errorf("segment %s not reset (size %d)", name, sz)
		}
	}
	// Writes after compaction land on the fresh log; recovery layers
	// them over the snapshot.
	if err := s.PutBatch(walBatch(10, 6)); err != nil {
		t.Fatal(err)
	}
	s.wal.closeFiles()
	r := openWAL(t, dir)
	if got := r.Len(); got != 11*6 {
		t.Fatalf("recovered %d docs, want %d", got, 11*6)
	}
}

func TestWALAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(WithWAL(dir), WithWALSegmentBytes(2<<10), WithWALCompactBytes(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 60; b++ {
		if err := s.PutBatch(walBatch(b, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, walSnapshotName)); err != nil {
		t.Fatalf("auto-compaction never ran: %v", err)
	}
	if total := s.wal.total.Load(); total > 16<<10 {
		t.Errorf("live log still %d bytes after auto-compaction", total)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openWAL(t, dir)
	if got := r.Len(); got != 60*4 {
		t.Fatalf("recovered %d docs, want %d", got, 60*4)
	}
}

func TestWALCloseCompactsCleanly(t *testing.T) {
	dir := t.TempDir()
	s := openWAL(t, dir)
	if err := s.PutBatch(walBatch(0, 6)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for name, sz := range walFileSizes(t, dir) {
		if sz != 0 {
			t.Errorf("segment %s not reset by clean shutdown (size %d)", name, sz)
		}
	}
	r := openWAL(t, dir)
	if got := r.Len(); got != 6 {
		t.Fatalf("recovered %d docs, want 6", got)
	}
}

func TestWALMetricsAndFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncOS} {
		t.Run(string(policy), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenStore(WithWAL(dir), WithWALFsync(policy))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.PutBatch(walBatch(0, 6)); err != nil {
				t.Fatal(err)
			}
			snap := s.Metrics().Snapshot()
			if snap.Counter("index.wal_appends") == 0 {
				t.Error("index.wal_appends not counted")
			}
			if snap.Counter("index.wal_bytes") == 0 {
				t.Error("index.wal_bytes not counted")
			}
			s.wal.closeFiles()
			r, err := OpenStore(WithWAL(dir), WithWALFsync(policy))
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Len(); got != 6 {
				t.Fatalf("recovered %d docs, want 6", got)
			}
		})
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad fsync policy accepted")
	}
}

// TestWALConcurrentWriters exercises logged writes from many
// goroutines (run under -race by make crash-smoke) and proves the
// result recovers.
func TestWALConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s := openWAL(t, dir, WithWALFsync(FsyncOS))
	const workers, batchesPer = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				docs := walBatch(w*100+b, 4)
				if err := s.PutBatch(docs); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if b%3 == 2 {
					s.Delete(docs[0].ID)
				}
			}
		}(w)
	}
	wg.Wait()
	want := s.Len()
	s.wal.closeFiles()
	r := openWAL(t, dir)
	if got := r.Len(); got != want {
		t.Fatalf("recovered %d docs, want %d", got, want)
	}
}

func TestNewStorePanicsOnWAL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStore(WithWAL) did not panic")
		}
	}()
	NewStore(WithWAL(t.TempDir()))
}

func TestWALLoadBecomesDurableBase(t *testing.T) {
	donor := seeded(t)
	var buf strings.Builder
	if err := donor.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s := openWAL(t, dir)
	if err := s.PutBatch(walBatch(0, 6)); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("load: %v", err)
	}
	s.wal.closeFiles()
	r := openWAL(t, dir)
	if got := r.Len(); got != donor.Len() {
		t.Fatalf("recovered %d docs, want %d (the loaded snapshot)", got, donor.Len())
	}
	if r.Has("b0000-d0") {
		t.Error("pre-load contents survived load + recovery")
	}
}
