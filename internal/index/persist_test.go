package index

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/query"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := seeded(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	restored := NewStore()
	if err := restored.Load(&buf); err != nil {
		t.Fatalf("load: %v", err)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", restored.Len(), s.Len())
	}
	if restored.Postings() != s.Postings() {
		t.Errorf("postings = %d, want %d (index rebuilt)", restored.Postings(), s.Postings())
	}
	// Same search behaviour.
	for _, f := range []string{"(title=Observer)", "(keywords=behavioral)", "(year>=1990)"} {
		a := ids(s.Search("patterns", query.MustParse(f), 0))
		b := ids(restored.Search("patterns", query.MustParse(f), 0))
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Errorf("%s: %v vs %v", f, a, b)
		}
	}
	// Documents round-trip fully.
	d, err := restored.Get("d4")
	if err != nil || d.Title != "Kind of Blue" || d.XML == "" {
		t.Errorf("d4 = %+v, %v", d, err)
	}
}

func TestSaveDeterministic(t *testing.T) {
	s := seeded(t)
	var a, b bytes.Buffer
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("snapshots differ between saves")
	}
}

func TestLoadReplacesContents(t *testing.T) {
	donor := seeded(t)
	var buf bytes.Buffer
	if err := donor.Save(&buf); err != nil {
		t.Fatal(err)
	}
	target := NewStore()
	if err := target.Put(doc("old", "stale", "Old", map[string][]string{"k": {"v"}})); err != nil {
		t.Fatal(err)
	}
	if err := target.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if target.Has("old") {
		t.Error("pre-load contents survived")
	}
	if got := target.Search("stale", query.MustParse("(k=v)"), 0); len(got) != 0 {
		t.Error("stale index entries survived load")
	}
}

func TestLoadErrors(t *testing.T) {
	s := NewStore()
	if err := s.Load(strings.NewReader("{")); err == nil {
		t.Error("truncated json accepted")
	}
	if err := s.Load(strings.NewReader(`{"version":2,"documents":[]}`)); err == nil {
		t.Error("future version accepted")
	}
	if err := s.Load(strings.NewReader(`{"version":1,"documents":[{"ID":""}]}`)); err == nil {
		t.Error("document without ID accepted")
	}
}
