package index

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/query"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := seeded(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	restored := NewStore()
	if err := restored.Load(&buf); err != nil {
		t.Fatalf("load: %v", err)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", restored.Len(), s.Len())
	}
	if restored.Postings() != s.Postings() {
		t.Errorf("postings = %d, want %d (index rebuilt)", restored.Postings(), s.Postings())
	}
	// Same search behaviour.
	for _, f := range []string{"(title=Observer)", "(keywords=behavioral)", "(year>=1990)"} {
		a := ids(s.Search("patterns", query.MustParse(f), 0))
		b := ids(restored.Search("patterns", query.MustParse(f), 0))
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Errorf("%s: %v vs %v", f, a, b)
		}
	}
	// Documents round-trip fully.
	d, err := restored.Get("d4")
	if err != nil || d.Title != "Kind of Blue" || d.XML == "" {
		t.Errorf("d4 = %+v, %v", d, err)
	}
}

func TestSaveDeterministic(t *testing.T) {
	s := seeded(t)
	var a, b bytes.Buffer
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("snapshots differ between saves")
	}
}

func TestLoadReplacesContents(t *testing.T) {
	donor := seeded(t)
	var buf bytes.Buffer
	if err := donor.Save(&buf); err != nil {
		t.Fatal(err)
	}
	target := NewStore()
	if err := target.Put(doc("old", "stale", "Old", map[string][]string{"k": {"v"}})); err != nil {
		t.Fatal(err)
	}
	if err := target.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if target.Has("old") {
		t.Error("pre-load contents survived")
	}
	if got := target.Search("stale", query.MustParse("(k=v)"), 0); len(got) != 0 {
		t.Error("stale index entries survived load")
	}
}

func TestLoadErrors(t *testing.T) {
	s := NewStore()
	if err := s.Load(strings.NewReader("{")); err == nil {
		t.Error("truncated json accepted")
	}
	if err := s.Load(strings.NewReader(`{"version":2,"documents":[]}`)); err == nil {
		t.Error("future version accepted")
	}
	if err := s.Load(strings.NewReader(`{"version":1,"documents":[{"ID":""}]}`)); err == nil {
		t.Error("document without ID accepted")
	}
}

// TestLoadPoisonedSnapshotLeavesStoreIntact is the regression test
// for the destructive-Load bug: Load used to clear every shard (and
// the directory) before re-ingesting, so a snapshot that failed
// validation mid-way left the store empty. Load now stages and swaps
// only on success.
func TestLoadPoisonedSnapshotLeavesStoreIntact(t *testing.T) {
	s := seeded(t)
	wantLen, wantPostings := s.Len(), s.Postings()
	// A poisoned snapshot: valid version, one good document, then one
	// with no ID.
	poisoned := `{"version":1,"documents":[
		{"ID":"good","CommunityID":"c","Title":"G","Attrs":{"k":["v"]}},
		{"ID":"","CommunityID":"c","Title":"bad"}]}`
	if err := s.Load(strings.NewReader(poisoned)); err == nil {
		t.Fatal("poisoned snapshot accepted")
	}
	if s.Len() != wantLen || s.Postings() != wantPostings {
		t.Fatalf("store damaged by failed load: len=%d (want %d) postings=%d (want %d)",
			s.Len(), wantLen, s.Postings(), wantPostings)
	}
	if s.Has("good") {
		t.Error("half of the failed snapshot was installed")
	}
	// The store still serves queries.
	if got := len(s.Search("patterns", query.MustParse("(title=Observer)"), 0)); got != 1 {
		t.Errorf("post-failure search = %d docs, want 1", got)
	}
}

// TestSaveConsistentCut is the regression test for torn snapshots:
// shard-by-shard locking let a concurrent cross-shard PutBatch appear
// half-written. Save now read-locks every shard before copying, so
// each batch is in a snapshot either wholly or not at all.
func TestSaveConsistentCut(t *testing.T) {
	s := NewStore(WithShards(8))
	const comms = 8 // spread every batch across shards
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]*Document, comms)
			for c := range batch {
				batch[c] = doc(
					fmt.Sprintf("k%06d-c%d", k, c),
					fmt.Sprintf("comm-%d", c),
					fmt.Sprintf("batch %d", k),
					map[string][]string{"k": {"v"}},
				)
			}
			if err := s.PutBatch(batch); err != nil {
				t.Errorf("put batch %d: %v", k, err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		var snap snapshot
		if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
			t.Fatal(err)
		}
		perBatch := make(map[string]int)
		for _, d := range snap.Documents {
			perBatch[string(d.ID[:7])]++
		}
		for k, n := range perBatch {
			if n != comms {
				t.Fatalf("snapshot %d tore batch %s: %d of %d docs", i, k, n, comms)
			}
		}
	}
	close(stop)
	<-done
}
