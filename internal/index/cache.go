package index

import (
	"container/list"
	"sync"

	"repro/internal/metrics"
)

// resultCache is one shard's LRU of materialized query results. An
// entry remembers the shard write generation it was computed under;
// get treats an entry from an older generation as a miss and evicts
// it, so shard writers invalidate the whole cache with one integer
// increment instead of a sweep.
//
// The cache stores canonical document pointers. That is safe because
// stored Documents are immutable once installed — Put replaces the
// pointer, never mutates — and a generation mismatch prevents a
// replaced document from ever being served. Callers clone on the way
// out (Store.Search), preserving the store's defensive-copy contract.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
	// hit/miss accounting lives in the owning store's metrics registry;
	// the handles are resolved once at construction.
	hits   *metrics.Counter
	misses *metrics.Counter
}

type cacheEntry struct {
	key  string
	gen  uint64
	docs []*Document
}

func newResultCache(capacity int, hits, misses *metrics.Counter) *resultCache {
	return &resultCache{
		cap:    capacity,
		ll:     list.New(),
		m:      make(map[string]*list.Element, capacity),
		hits:   hits,
		misses: misses,
	}
}

// get returns the cached result for key if it was computed under the
// current generation.
func (c *resultCache) get(key string, gen uint64) ([]*Document, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		c.ll.Remove(el)
		delete(c.m, key)
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return e.docs, true
}

// put stores a result computed under gen, evicting the least recently
// used entry when full.
func (c *resultCache) put(key string, gen uint64, docs []*Document) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*cacheEntry)
		e.gen = gen
		e.docs = docs
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, docs: docs})
	if c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

// entries returns the live entry count (tests only).
func (c *resultCache) entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
