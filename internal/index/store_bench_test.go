package index

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/query"
)

// The BenchmarkStore* family compares the single-lock baseline (one
// shard, no cache — the pre-sharding store) against the sharded store
// on concurrent community-scoped workloads. Run with:
//
//	go test -bench 'BenchmarkStore' -benchtime 2s ./internal/index/
const (
	benchCommunities = 16
	benchDocsPerComm = 200
)

func benchStore(b *testing.B, opts ...Option) *Store {
	b.Helper()
	s := NewStore(opts...)
	var docs []*Document
	for c := 0; c < benchCommunities; c++ {
		comm := fmt.Sprintf("community-%02d", c)
		for i := 0; i < benchDocsPerComm; i++ {
			docs = append(docs, &Document{
				ID:          DocID(fmt.Sprintf("d-%02d-%04d", c, i)),
				CommunityID: comm,
				Title:       fmt.Sprintf("Doc %d", i),
				XML:         "<obj>payload</obj>",
				Attrs: query.Attrs{
					"k":    {fmt.Sprintf("v%d", i%10)},
					"tags": {"alpha", fmt.Sprintf("t%d", i%5)},
				},
			})
		}
	}
	if err := s.PutBatch(docs); err != nil {
		b.Fatal(err)
	}
	return s
}

// benchSearchConcurrent: every worker loops community-scoped searches
// over a small rotating filter set — the popular-query pattern a
// community index serves under heavy read traffic.
func benchSearchConcurrent(b *testing.B, s *Store) {
	filters := make([]query.Filter, 8)
	for i := range filters {
		filters[i] = query.MustParse(fmt.Sprintf("(k=v%d)", i))
	}
	var n atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := n.Add(1)
		comm := fmt.Sprintf("community-%02d", int(w)%benchCommunities)
		i := 0
		for pb.Next() {
			got := s.Search(comm, filters[i%len(filters)], 20)
			if len(got) == 0 {
				b.Error("no results")
				return
			}
			i++
		}
	})
}

// benchMixedConcurrent: 1 put per 8 searches per worker, each worker
// pinned to one community — concurrent publishers and searchers.
func benchMixedConcurrent(b *testing.B, s *Store) {
	f := query.MustParse("(k=v1)")
	var n atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(n.Add(1))
		comm := fmt.Sprintf("community-%02d", w%benchCommunities)
		i := 0
		for pb.Next() {
			if i%8 == 7 {
				_ = s.Put(&Document{
					ID:          DocID(fmt.Sprintf("w-%02d-%06d", w, i)),
					CommunityID: comm,
					Title:       "written",
					Attrs:       query.Attrs{"k": {"v1"}},
				})
			} else {
				s.Search(comm, f, 20)
			}
			i++
		}
	})
}

func BenchmarkStoreSearchSingleLock(b *testing.B) {
	benchSearchConcurrent(b, benchStore(b, WithShards(1), WithCacheSize(0)))
}

func BenchmarkStoreSearchSharded(b *testing.B) {
	benchSearchConcurrent(b, benchStore(b, WithCacheSize(0)))
}

func BenchmarkStoreSearchShardedCached(b *testing.B) {
	benchSearchConcurrent(b, benchStore(b))
}

func BenchmarkStoreMixedSingleLock(b *testing.B) {
	benchMixedConcurrent(b, benchStore(b, WithShards(1), WithCacheSize(0)))
}

func BenchmarkStoreMixedSharded(b *testing.B) {
	benchMixedConcurrent(b, benchStore(b, WithCacheSize(0)))
}

func BenchmarkStoreMixedShardedCached(b *testing.B) {
	benchMixedConcurrent(b, benchStore(b))
}

// Ingest cost: one lock round trip per document vs per batch.
func BenchmarkStorePutSequential(b *testing.B) {
	s := NewStore(WithCacheSize(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Put(&Document{
			ID:          DocID(fmt.Sprintf("d%08d", i)),
			CommunityID: fmt.Sprintf("community-%02d", i%benchCommunities),
			Attrs:       query.Attrs{"k": {"v"}},
		})
	}
}

func BenchmarkStorePutBatch(b *testing.B) {
	const batchSize = 256
	s := NewStore(WithCacheSize(0))
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		batch := make([]*Document, 0, batchSize)
		for j := i; j < i+batchSize && j < b.N; j++ {
			batch = append(batch, &Document{
				ID:          DocID(fmt.Sprintf("d%08d", j)),
				CommunityID: fmt.Sprintf("community-%02d", j%benchCommunities),
				Attrs:       query.Attrs{"k": {"v"}},
			})
		}
		if err := s.PutBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
