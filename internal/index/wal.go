package index

// Write-ahead logging for the sharded store. Every mutation
// (Put/PutBatch/Delete/DeleteBatch) appends a framed, checksummed
// record to an append-only log *before* touching the in-memory shard,
// so a store that acknowledged a write can reproduce it after a crash:
// on open, the latest snapshot is loaded and the log replayed on top
// (see recovery.go). A torn tail — the partially written record a
// crash leaves behind — is truncated at the first bad checksum and
// never aborts startup.
//
// The log is per-shard: shard i appends to its own segment files
// (wal-<shard>-<seq>.log), under the same mutex that guards the
// shard's maps, so WAL appends add no cross-shard contention. Replay
// order across files is fixed by a global log sequence number (LSN)
// stamped into every record; recovery merges all segments and applies
// records in LSN order, which preserves cross-shard operation order
// even if the store reopens with a different shard count.
//
// Compaction folds the log into the existing snapshot format
// (snapshot.json, written atomically via temp file + rename) and
// resets every segment. It runs on Close (clean shutdown), on demand
// (Compact), and automatically once the live log exceeds
// WithWALCompactBytes.
//
// Errors carry the wal.* structured codes (wal.append, wal.replay,
// wal.corrupt, wal.compact) and are counted into the store's metrics
// registry alongside the index.wal_appends / index.wal_bytes /
// index.wal_replayed counters.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/errs"
	"repro/internal/metrics"
)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy string

const (
	// FsyncAlways fsyncs after every append: an acknowledged batch
	// survives both process crash and power loss. The default.
	FsyncAlways FsyncPolicy = "always"
	// FsyncOS leaves flushing to the OS page cache: an acknowledged
	// batch survives process crash but not power loss. Roughly an
	// order of magnitude faster on fsync-bound ingest (see E18).
	FsyncOS FsyncPolicy = "os"
)

// ParseFsyncPolicy validates a policy string (for flag/env wiring).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncOS:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("index: unknown fsync policy %q (want %q or %q)", s, FsyncAlways, FsyncOS)
}

// WAL tuning defaults.
const (
	// DefaultWALSegmentBytes is the per-shard segment size beyond
	// which appends rotate to a fresh segment file.
	DefaultWALSegmentBytes = 8 << 20
	// DefaultWALCompactBytes is the total live-log size beyond which
	// the next batch triggers an automatic compaction.
	DefaultWALCompactBytes = 64 << 20
	// walHeaderSize frames every record: 4-byte little-endian payload
	// length, then 4-byte CRC-32C of the payload.
	walHeaderSize = 8
	// walMaxRecord bounds a decoded record length; a larger length is
	// treated as corruption (it would otherwise allocate garbage).
	walMaxRecord = 256 << 20
	// walSnapshotName is the compacted base state inside the WAL dir,
	// in the persist.go snapshot format.
	walSnapshotName = "snapshot.json"
)

// WAL structured error sentinels. Append and replay failures wrap
// these so the metrics registry's error family counts them by code.
var (
	errWALAppend  = errs.New("wal.append", "wal: append failed")
	errWALReplay  = errs.New("wal.replay", "wal: replay failed")
	errWALCorrupt = errs.New("wal.corrupt", "wal: record checksum mismatch")
	errWALCompact = errs.New("wal.compact", "wal: compaction failed")
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one logged mutation: the documents one shard received
// from a PutBatch (Op "put"), or the IDs a shard dropped from a
// DeleteBatch (Op "del"). LSNs are globally ordered across shards.
type walRecord struct {
	LSN  uint64      `json:"lsn"`
	Op   string      `json:"op"`
	Docs []*Document `json:"docs,omitempty"`
	IDs  []DocID     `json:"ids,omitempty"`
}

const (
	walOpPut = "put"
	walOpDel = "del"
)

// shardLog is one shard's append handle. Writers mutate it under the
// owning shard's mutex; compaction and recovery mutate it while every
// shard mutex (or exclusive store ownership) is held, so no inner
// lock is needed.
type shardLog struct {
	f    *os.File
	seq  int
	size int64
}

// wal is the store-wide log state: one shardLog per stripe plus the
// shared sequencing, sizing, and telemetry.
type wal struct {
	dir          string
	policy       FsyncPolicy
	segmentBytes int64
	compactBytes int64

	lsn   atomic.Uint64 // last assigned LSN
	total atomic.Int64  // live bytes across all segments

	// compactMu serializes compactions (and Load's fold) so two
	// snapshot writers never race on snapshot.json.
	compactMu sync.Mutex

	logs []*shardLog

	log *slog.Logger

	appends  *metrics.Counter // index.wal_appends
	bytes    *metrics.Counter // index.wal_bytes
	replayed *metrics.Counter // index.wal_replayed
	reg      *metrics.Registry
}

// segmentName names shard sh's seq'th segment file.
func segmentName(sh, seq int) string {
	return fmt.Sprintf("wal-%03d-%06d.log", sh, seq)
}

// parseSegmentName inverts segmentName; ok is false for foreign files.
func parseSegmentName(name string) (sh, seq int, ok bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	parts := strings.Split(mid, "-")
	if len(parts) != 2 {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(parts[0], "%d", &sh); err != nil {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &seq); err != nil {
		return 0, 0, false
	}
	return sh, seq, true
}

// appendRecord frames, writes, and (per policy) fsyncs one record to
// shard idx's segment, rotating first when the segment is full. Called
// with shard idx's mutex held, before the mutation is applied; an
// error means nothing may be applied.
func (w *wal) appendRecord(idx uint32, rec walRecord) error {
	rec.LSN = w.lsn.Add(1)
	payload, err := json.Marshal(rec)
	if err != nil {
		return w.fail(errWALAppend, err)
	}
	if len(payload) > walMaxRecord {
		return w.fail(errWALAppend, fmt.Errorf("record of %d bytes exceeds limit", len(payload)))
	}
	sl := w.logs[idx]
	if sl.f == nil || (sl.size > 0 && sl.size+int64(walHeaderSize+len(payload)) > w.segmentBytes) {
		if err := w.rotate(sl, int(idx)); err != nil {
			return w.fail(errWALAppend, err)
		}
	}
	frame := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, walCRC))
	copy(frame[walHeaderSize:], payload)
	if _, err := sl.f.Write(frame); err != nil {
		// Truncate the torn frame so the segment stays appendable;
		// best effort — replay tolerates a torn tail regardless.
		_ = sl.f.Truncate(sl.size)
		return w.fail(errWALAppend, err)
	}
	if w.policy == FsyncAlways {
		if err := sl.f.Sync(); err != nil {
			return w.fail(errWALAppend, err)
		}
	}
	sl.size += int64(len(frame))
	w.total.Add(int64(len(frame)))
	w.appends.Inc()
	w.bytes.Add(int64(len(frame)))
	return nil
}

// rotate closes the current segment (if any) and opens the next one.
func (w *wal) rotate(sl *shardLog, idx int) error {
	if sl.f != nil {
		if err := sl.f.Close(); err != nil {
			return err
		}
	}
	sl.seq++
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(idx, sl.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	sl.f = f
	sl.size = 0
	return nil
}

// fail wraps err under a wal.* sentinel and counts it in the error
// family.
func (w *wal) fail(sentinel *errs.Error, err error) error {
	wrapped := fmt.Errorf("%w: %v", sentinel, err)
	w.reg.CountError(wrapped)
	return wrapped
}

// closeFiles drops every append handle without compacting — the
// crash-simulation path tests use, and the tail of Close.
func (w *wal) closeFiles() {
	for _, sl := range w.logs {
		if sl.f != nil {
			_ = sl.f.Close()
			sl.f = nil
		}
	}
}

// Compact folds the log into the snapshot and resets every segment:
// the durable state collapses to one snapshot.json and empty logs.
// Readers proceed concurrently; writers wait (every shard is
// read-locked for the duration). A no-op without a WAL.
func (s *Store) Compact() error {
	if s.wal == nil {
		return nil
	}
	w := s.wal
	w.compactMu.Lock()
	defer w.compactMu.Unlock()
	// Read-locking all shards excludes writers (and so appends), which
	// makes the cut consistent and the segment reset race-free, while
	// concurrent searches keep flowing.
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.RUnlock()
		}
	}()
	var docs []*Document
	for _, sh := range s.shards {
		for _, d := range sh.docs {
			docs = append(docs, d)
		}
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	reclaimed := w.total.Load()
	if err := writeSnapshotFile(w.dir, docs); err != nil {
		return w.fail(errWALCompact, err)
	}
	if err := w.resetSegments(); err != nil {
		return w.fail(errWALCompact, err)
	}
	w.log.Info("wal compacted", "docs", len(docs), "reclaimed_bytes", reclaimed)
	return nil
}

// resetSegments deletes every segment file and opens a fresh first
// segment per shard. Called with all shards locked (or during open).
func (w *wal) resetSegments() error {
	w.closeFiles()
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if _, _, ok := parseSegmentName(e.Name()); ok {
			if err := os.Remove(filepath.Join(w.dir, e.Name())); err != nil {
				return err
			}
		}
	}
	for i, sl := range w.logs {
		sl.seq = 0
		sl.size = 0
		if err := w.rotate(sl, i); err != nil {
			return err
		}
		sl.seq = 1 // rotate incremented from 0
	}
	w.total.Store(0)
	return nil
}

// writeSnapshotFile atomically replaces dir's snapshot.json: write to
// a temp file, fsync, rename, fsync the directory. A crash at any
// point leaves either the old or the new snapshot, never a torn one.
func writeSnapshotFile(dir string, docs []*Document) error {
	tmp, err := os.CreateTemp(dir, walSnapshotName+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := writeSnapshot(tmp, docs); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, walSnapshotName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file's entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Close compacts the log (clean shutdown leaves one snapshot and
// empty segments) and releases every file handle. A store without a
// WAL is a no-op. The store remains usable for in-memory operations
// afterwards, but further writes fail to log.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.Compact()
	s.wal.closeFiles()
	return err
}

// maybeCompact runs an automatic compaction when the live log has
// outgrown the configured bound. Called from write paths before any
// shard lock is held.
func (s *Store) maybeCompact() {
	if s.wal != nil && s.wal.compactBytes > 0 && s.wal.total.Load() > s.wal.compactBytes {
		// Best effort: a failed auto-compaction is already counted in
		// the error family; the write itself proceeds on the old log.
		_ = s.Compact()
	}
}
