package index

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

func doc(id, community, title string, attrs map[string][]string) *Document {
	a := query.Attrs{}
	for k, vs := range attrs {
		for _, v := range vs {
			a.Add(k, v)
		}
	}
	return &Document{
		ID:          DocID(id),
		CommunityID: community,
		Title:       title,
		XML:         "<obj>" + title + "</obj>",
		Attrs:       a,
	}
}

func seeded(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	docs := []*Document{
		doc("d1", "patterns", "Observer", map[string][]string{
			"title": {"Observer"}, "keywords": {"behavioral", "GoF"}, "year": {"1994"},
		}),
		doc("d2", "patterns", "Visitor", map[string][]string{
			"title": {"Visitor"}, "keywords": {"behavioral"}, "year": {"1994"},
		}),
		doc("d3", "patterns", "Composite", map[string][]string{
			"title": {"Composite"}, "keywords": {"structural"}, "year": {"1994"},
		}),
		doc("d4", "mp3", "Kind of Blue", map[string][]string{
			"title": {"Kind of Blue"}, "artist": {"Miles Davis"}, "year": {"1959"},
		}),
	}
	for _, d := range docs {
		if err := s.Put(d); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := seeded(t)
	d, err := s.Get("d1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if d.Title != "Observer" {
		t.Errorf("title = %q", d.Title)
	}
	if !s.Has("d2") || s.Has("nope") {
		t.Error("Has wrong")
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.CommunityLen("patterns") != 3 {
		t.Errorf("patterns = %d", s.CommunityLen("patterns"))
	}
	if !s.Delete("d3") {
		t.Error("Delete existing = false")
	}
	if s.Delete("d3") {
		t.Error("Delete twice = true")
	}
	if _, err := s.Get("d3"); err == nil {
		t.Error("Get after delete succeeded")
	}
	if s.Len() != 3 {
		t.Errorf("Len after delete = %d", s.Len())
	}
}

func TestPutValidation(t *testing.T) {
	s := NewStore()
	if err := s.Put(nil); err == nil {
		t.Error("nil doc accepted")
	}
	if err := s.Put(&Document{}); err == nil {
		t.Error("doc without ID accepted")
	}
}

func TestSearchExact(t *testing.T) {
	s := seeded(t)
	got := s.Search("patterns", query.MustParse("(title=Observer)"), 0)
	if len(got) != 1 || got[0].ID != "d1" {
		t.Fatalf("got = %v", ids(got))
	}
}

func TestSearchCommunityScoping(t *testing.T) {
	s := seeded(t)
	// year=1994 in patterns: 3 docs; in mp3: none.
	if got := s.Search("patterns", query.MustParse("(year=1994)"), 0); len(got) != 3 {
		t.Errorf("patterns 1994 = %v", ids(got))
	}
	if got := s.Search("mp3", query.MustParse("(year=1994)"), 0); len(got) != 0 {
		t.Errorf("mp3 1994 = %v", ids(got))
	}
	// Empty community searches everything.
	if got := s.Search("", query.MustParse("(year=*)"), 0); len(got) != 4 {
		t.Errorf("all year=* = %v", ids(got))
	}
}

func TestSearchOperators(t *testing.T) {
	s := seeded(t)
	cases := []struct {
		filter string
		want   []string
	}{
		{"(keywords=behavioral)", []string{"d1", "d2"}},
		{"(title~=site)", []string{"d3"}}, // compoSITE
		{"(title=Obs*)", []string{"d1"}},
		{"(&(keywords=behavioral)(title=Visitor))", []string{"d2"}},
		{"(|(title=Observer)(title=Composite))", []string{"d1", "d3"}},
		{"(!(keywords=behavioral))", []string{"d3"}},
		{"(year<1994)", nil},
		{"(*)", []string{"d1", "d2", "d3"}},
	}
	for _, c := range cases {
		got := ids(s.Search("patterns", query.MustParse(c.filter), 0))
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("%s = %v, want %v", c.filter, got, c.want)
		}
	}
}

func TestSearchLimit(t *testing.T) {
	s := seeded(t)
	got := s.Search("patterns", query.MustParse("(year=1994)"), 2)
	if len(got) != 2 {
		t.Errorf("limit 2 returned %d", len(got))
	}
}

func TestSearchNilFilter(t *testing.T) {
	s := seeded(t)
	if got := s.Search("patterns", nil, 0); len(got) != 3 {
		t.Errorf("nil filter = %d docs", len(got))
	}
}

func TestWordTokenization(t *testing.T) {
	s := seeded(t)
	// "Kind of Blue" indexes word tokens: exact word match hits.
	got := s.Search("mp3", query.MustParse("(title=blue)"), 0)
	if len(got) != 1 {
		t.Errorf("word match = %v", ids(got))
	}
	// Multi-word exact value matches too.
	got = s.Search("mp3", query.MustParse("(title=Kind of Blue)"), 0)
	if len(got) != 1 {
		t.Errorf("full value match = %v", ids(got))
	}
}

func TestReplaceReindexes(t *testing.T) {
	s := seeded(t)
	before := s.Postings()
	d := doc("d1", "patterns", "Renamed", map[string][]string{"title": {"Renamed"}})
	if err := s.Put(d); err != nil {
		t.Fatal(err)
	}
	if got := s.Search("patterns", query.MustParse("(title=Observer)"), 0); len(got) != 0 {
		t.Errorf("old title still matches: %v", ids(got))
	}
	if got := s.Search("patterns", query.MustParse("(title=Renamed)"), 0); len(got) != 1 {
		t.Errorf("new title = %v", ids(got))
	}
	if s.Postings() >= before {
		t.Errorf("postings %d not reduced from %d after replacing richer doc", s.Postings(), before)
	}
}

func TestDeleteCleansIndex(t *testing.T) {
	s := NewStore()
	if err := s.Put(doc("x", "c", "T", map[string][]string{"title": {"unique-token"}})); err != nil {
		t.Fatal(err)
	}
	if s.Postings() == 0 {
		t.Fatal("no postings after put")
	}
	s.Delete("x")
	if s.Postings() != 0 {
		t.Errorf("postings = %d after delete", s.Postings())
	}
	if got := s.Search("c", query.MustParse("(title=unique-token)"), 0); len(got) != 0 {
		t.Errorf("deleted doc found: %v", ids(got))
	}
}

func TestCommunities(t *testing.T) {
	s := seeded(t)
	got := s.Communities()
	if fmt.Sprint(got) != "[mp3 patterns]" {
		t.Errorf("communities = %v", got)
	}
}

func TestDocumentIsolation(t *testing.T) {
	s := seeded(t)
	d, _ := s.Get("d1")
	d.Attrs.Add("title", "mutated")
	d.Attachments = append(d.Attachments, "x")
	d2, _ := s.Get("d1")
	if len(d2.Attrs["title"]) != 1 {
		t.Error("mutation leaked into store")
	}
	// Mutating the doc passed to Put must not affect the store either.
	orig := doc("d9", "c", "T", map[string][]string{"k": {"v"}})
	if err := s.Put(orig); err != nil {
		t.Fatal(err)
	}
	orig.Attrs.Add("k", "v2")
	stored, _ := s.Get("d9")
	if len(stored.Attrs["k"]) != 1 {
		t.Error("Put aliased caller's attrs")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				id := fmt.Sprintf("d%d-%d", n, j)
				_ = s.Put(doc(id, "c", "T", map[string][]string{"k": {fmt.Sprintf("v%d", j)}}))
				s.Search("c", query.MustParse("(k=v1)"), 0)
				s.Get(DocID(id))
				if j%10 == 0 {
					s.Delete(DocID(id))
				}
			}
		}(i)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Error("store empty after concurrent writes")
	}
}

// Property: indexed-candidate acceleration returns exactly the same
// results as a brute-force scan for equality filters.
func TestPropertyIndexAccelerationSound(t *testing.T) {
	vals := []string{"alpha", "beta", "gamma", "alpha beta", "delta"}
	f := func(seed uint8, q uint8) bool {
		s := NewStore()
		var all []*Document
		for i := 0; i < 12; i++ {
			d := doc(fmt.Sprintf("d%d", i), "c", "t", map[string][]string{
				"k": {vals[(int(seed)+i)%len(vals)]},
			})
			all = append(all, d)
			if err := s.Put(d); err != nil {
				return false
			}
		}
		target := vals[int(q)%len(vals)]
		filter := &query.Assertion{Attr: "k", Op: query.OpEq, Value: target}
		got := map[DocID]bool{}
		for _, d := range s.Search("c", filter, 0) {
			got[d.ID] = true
		}
		for _, d := range all {
			want := filter.Match(d.Attrs)
			if got[d.ID] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: postings never go negative and return to zero when all
// documents are deleted.
func TestPropertyPostingsBalanced(t *testing.T) {
	f := func(n uint8) bool {
		s := NewStore()
		count := int(n%20) + 1
		for i := 0; i < count; i++ {
			_ = s.Put(doc(fmt.Sprintf("d%d", i), "c", "t", map[string][]string{
				"a": {fmt.Sprintf("value %d", i%5)},
				"b": {"shared token"},
			}))
		}
		if s.Postings() <= 0 {
			return false
		}
		for i := 0; i < count; i++ {
			s.Delete(DocID(fmt.Sprintf("d%d", i)))
		}
		return s.Postings() == 0 && s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func ids(docs []*Document) []string {
	if len(docs) == 0 {
		return nil
	}
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = string(d.ID)
	}
	return out
}
