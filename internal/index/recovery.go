package index

// Crash recovery: OpenStore rebuilds a WAL-backed store from its
// directory — load the compacted snapshot, then replay every log
// record in LSN order on top. See wal.go for the log format.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
)

// OpenStore builds a store and, when WithWAL is configured, recovers
// its durable state: the latest snapshot plus every acknowledged
// write still in the log. A torn log tail (the half-written record a
// crash leaves) is truncated at the first bad checksum and never
// aborts startup; a corrupt snapshot does abort, since the snapshot
// is written atomically and damage to it is real data loss, not a
// torn tail.
func OpenStore(opts ...Option) (*Store, error) {
	cfg := defaultStoreConfig()
	for _, o := range opts {
		o(&cfg)
	}
	s := newStore(cfg)
	if cfg.walDir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.walDir, 0o755); err != nil {
		return nil, fmt.Errorf("index: open: %w", err)
	}
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	w := &wal{
		dir:          cfg.walDir,
		policy:       cfg.walFsync,
		segmentBytes: cfg.walSegmentBytes,
		compactBytes: cfg.walCompactBytes,
		log:          logger,
		appends:      s.reg.Counter("index.wal_appends"),
		bytes:        s.reg.Counter("index.wal_bytes"),
		replayed:     s.reg.Counter("index.wal_replayed"),
		reg:          s.reg,
	}
	w.logs = make([]*shardLog, len(s.shards))
	for i := range w.logs {
		w.logs[i] = &shardLog{}
	}
	if err := s.recover(w); err != nil {
		return nil, err
	}
	// Arm logging only after replay, so recovery's applies are not
	// re-logged.
	s.wal = w
	return s, nil
}

// recover loads the snapshot and replays the log into s (whose WAL is
// not yet armed), then positions w's append handles at the live tail
// of each shard's newest segment.
func (s *Store) recover(w *wal) error {
	if f, err := os.Open(filepath.Join(w.dir, walSnapshotName)); err == nil {
		lerr := s.Load(f)
		f.Close()
		if lerr != nil {
			return fmt.Errorf("index: open: %w", lerr)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return w.fail(errWALReplay, err)
	}
	recs, sizes, maxLSN, err := w.scanSegments()
	if err != nil {
		return err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].LSN < recs[j].LSN })
	for _, rec := range recs {
		switch rec.Op {
		case walOpPut:
			if err := s.PutBatch(rec.Docs); err != nil {
				return w.fail(errWALReplay, fmt.Errorf("apply record lsn=%d: %w", rec.LSN, err))
			}
		case walOpDel:
			s.DeleteBatch(rec.IDs)
		default:
			// An unknown op from a future format: surface, don't guess.
			return w.fail(errWALReplay, fmt.Errorf("record lsn=%d has unknown op %q", rec.LSN, rec.Op))
		}
	}
	w.replayed.Add(int64(len(recs)))
	if len(recs) > 0 {
		// recs is sorted by LSN, so the range is first..maxLSN. The
		// replayed-LSN range used to be visible only as a counter; an
		// operator diagnosing recovery needs the actual positions.
		w.log.Info("wal replay complete",
			"records", len(recs), "min_lsn", recs[0].LSN, "max_lsn", maxLSN)
	} else {
		w.log.Debug("wal replay complete", "records", 0)
	}
	w.lsn.Store(maxLSN)
	// Reopen each shard's newest segment for appending; shards with no
	// surviving segment get one lazily on first append (rotate).
	var total int64
	for idx := range w.logs {
		seq, ok := sizes.newestSeq(idx)
		if !ok {
			continue
		}
		f, err := os.OpenFile(filepath.Join(w.dir, segmentName(idx, seq)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return w.fail(errWALReplay, err)
		}
		w.logs[idx].f = f
		w.logs[idx].seq = seq
		w.logs[idx].size = sizes[segKey{idx, seq}]
	}
	for _, n := range sizes {
		total += n
	}
	w.total.Store(total)
	return nil
}

type segKey struct {
	shard int
	seq   int
}

// segSizes maps each surviving segment to its post-truncation size.
type segSizes map[segKey]int64

// newestSeq returns the highest segment sequence recorded for shard.
func (m segSizes) newestSeq(shard int) (int, bool) {
	best, ok := 0, false
	for k := range m {
		if k.shard == shard && (!ok || k.seq > best) {
			best, ok = k.seq, true
		}
	}
	return best, ok
}

// scanSegments reads every record from every segment file, truncating
// each file at its first bad frame (torn tail). It returns the
// records, the surviving per-segment sizes, and the highest LSN seen.
func (w *wal) scanSegments() ([]walRecord, segSizes, uint64, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, nil, 0, w.fail(errWALReplay, err)
	}
	var recs []walRecord
	sizes := make(segSizes)
	var maxLSN uint64
	for _, e := range entries {
		shard, seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		path := filepath.Join(w.dir, e.Name())
		fileRecs, goodBytes, err := scanSegmentFile(path)
		if err != nil {
			return nil, nil, 0, w.fail(errWALReplay, err)
		}
		if fi, err := os.Stat(path); err == nil && fi.Size() > goodBytes {
			// Torn or corrupt tail: count it, cut it, keep going — but
			// say where the cut landed, not just that one happened (the
			// old silent wal.corrupt count left no way to find the
			// damaged segment).
			w.reg.CountError(fmt.Errorf("%w: %s at offset %d", errWALCorrupt, e.Name(), goodBytes))
			w.log.Warn("wal torn tail truncated",
				"code", "wal.corrupt", "segment", e.Name(),
				"offset", goodBytes, "dropped_bytes", fi.Size()-goodBytes)
			if err := os.Truncate(path, goodBytes); err != nil {
				return nil, nil, 0, w.fail(errWALReplay, err)
			}
		}
		sizes[segKey{shard, seq}] = goodBytes
		for _, r := range fileRecs {
			if r.LSN > maxLSN {
				maxLSN = r.LSN
			}
		}
		recs = append(recs, fileRecs...)
	}
	return recs, sizes, maxLSN, nil
}

// scanSegmentFile decodes records until EOF or the first bad frame,
// returning the good records and how many bytes they span. IO errors
// reading the file are returned; framing/checksum damage is not an
// error — the caller truncates at goodBytes.
func scanSegmentFile(path string) (recs []walRecord, goodBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var header [walHeaderSize]byte
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			return recs, goodBytes, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > walMaxRecord {
			return recs, goodBytes, nil // corrupt length
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, goodBytes, nil // torn payload
		}
		if crc32.Checksum(payload, walCRC) != sum {
			return recs, goodBytes, nil // flipped bits
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, goodBytes, nil // checksummed garbage: treat as cut
		}
		recs = append(recs, rec)
		goodBytes += int64(walHeaderSize) + int64(length)
	}
}
