package index

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// snapshot is the serialized store form: documents only; the inverted
// index is rebuilt on load (it is derived state).
type snapshot struct {
	Version   int         `json:"version"`
	Documents []*Document `json:"documents"`
}

// snapshotVersion guards against future format changes.
const snapshotVersion = 1

// Save writes the store's documents as JSON. The snapshot is
// deterministic (documents sorted by ID) so backups diff cleanly.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	docs := make([]*Document, 0, len(s.docs))
	for _, d := range s.docs {
		docs = append(docs, d.clone())
	}
	s.mu.RUnlock()
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(snapshot{Version: snapshotVersion, Documents: docs}); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load replaces the store's contents with a snapshot written by Save,
// rebuilding the inverted index.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("index: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("index: load: unsupported snapshot version %d", snap.Version)
	}
	s.mu.Lock()
	s.docs = make(map[DocID]*Document, len(snap.Documents))
	s.byCommunity = make(map[string]map[DocID]struct{})
	s.inverted = make(map[string]map[string]map[DocID]struct{})
	s.postings = 0
	s.mu.Unlock()
	for _, d := range snap.Documents {
		if err := s.Put(d); err != nil {
			return fmt.Errorf("index: load %s: %w", d.ID, err)
		}
	}
	return nil
}
