package index

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// snapshot is the serialized store form: documents only; the inverted
// index is rebuilt on load (it is derived state). The format is
// independent of the shard count, so snapshots move freely between
// store configurations.
type snapshot struct {
	Version   int         `json:"version"`
	Documents []*Document `json:"documents"`
}

// snapshotVersion guards against future format changes.
const snapshotVersion = 1

// Save writes the store's documents as JSON. The snapshot is
// deterministic (documents sorted by ID) so backups diff cleanly.
func (s *Store) Save(w io.Writer) error {
	var docs []*Document
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, d := range sh.docs {
			docs = append(docs, d.clone())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(snapshot{Version: snapshotVersion, Documents: docs}); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load replaces the store's contents with a snapshot written by Save,
// rebuilding the inverted index via one batch per shard. Like Save,
// it must not race other writers.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("index: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("index: load: unsupported snapshot version %d", snap.Version)
	}
	s.dir.Range(func(k, _ any) bool {
		s.dir.Delete(k)
		return true
	})
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.docs = make(map[DocID]*Document)
		sh.byCommunity = make(map[string]map[DocID]struct{})
		sh.inverted = make(map[string]map[string]map[DocID]struct{})
		sh.postings = 0
		sh.gen++
		sh.mu.Unlock()
	}
	if err := s.PutBatch(snap.Documents); err != nil {
		return fmt.Errorf("index: load: %w", err)
	}
	return nil
}
