package index

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// snapshot is the serialized store form: documents only; the inverted
// index is rebuilt on load (it is derived state). The format is
// independent of the shard count, so snapshots move freely between
// store configurations. The WAL's compacted base state (wal.go) uses
// the same format.
type snapshot struct {
	Version   int         `json:"version"`
	Documents []*Document `json:"documents"`
}

// snapshotVersion guards against future format changes.
const snapshotVersion = 1

// Save writes the store's documents as JSON. The snapshot is a
// consistent cut — every shard is read-locked before any document is
// copied, so a concurrent cross-shard PutBatch appears either wholly
// or not at all — and deterministic (documents sorted by ID) so
// backups diff cleanly. Concurrent readers and writers are safe;
// writers wait while the cut is taken (not while it is encoded).
func (s *Store) Save(w io.Writer) error {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	var docs []*Document
	for _, sh := range s.shards {
		for _, d := range sh.docs {
			docs = append(docs, d.clone())
		}
	}
	for _, sh := range s.shards {
		sh.mu.RUnlock()
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	return writeSnapshot(w, docs)
}

// writeSnapshot encodes already-collected, already-sorted documents.
func writeSnapshot(w io.Writer, docs []*Document) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(snapshot{Version: snapshotVersion, Documents: docs}); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load replaces the store's contents with a snapshot written by Save,
// rebuilding the inverted index. The snapshot is fully decoded,
// validated, and staged into fresh shard state before anything is
// installed: on any error the store is left exactly as it was, and
// the swap itself happens under every shard lock, so concurrent
// readers see either the old contents or the new, never a mix.
// With a WAL armed, a successful load compacts, making the loaded
// state the new durable base.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("index: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("index: load: unsupported snapshot version %d", snap.Version)
	}
	for _, d := range snap.Documents {
		if d == nil || d.ID == "" {
			return fmt.Errorf("index: load: %w", ErrNoID)
		}
	}
	// Stage into detached shard states (same dedupe semantics as
	// PutBatch: last occurrence of an ID wins, deduped globally so an
	// ID re-filed under another community cannot ghost in two shards).
	staged := make([]*shard, len(s.shards))
	for i := range staged {
		staged[i] = &shard{
			docs:        make(map[DocID]*Document),
			byCommunity: make(map[string]map[DocID]struct{}),
			inverted:    make(map[string]map[string]map[DocID]struct{}),
		}
	}
	order := make([]DocID, 0, len(snap.Documents))
	byID := make(map[DocID]*Document, len(snap.Documents))
	for _, d := range snap.Documents {
		if _, seen := byID[d.ID]; !seen {
			order = append(order, d.ID)
		}
		byID[d.ID] = d
	}
	for _, id := range order {
		cp := byID[id].clone()
		staged[s.shardIndex(cp.CommunityID)].putLocked(cp)
	}
	// Swap, atomically with respect to every reader and writer.
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	s.dir.Range(func(k, _ any) bool {
		s.dir.Delete(k)
		return true
	})
	for i, sh := range s.shards {
		sh.docs = staged[i].docs
		sh.byCommunity = staged[i].byCommunity
		sh.inverted = staged[i].inverted
		sh.postings = staged[i].postings
		sh.gen++
		for id := range sh.docs {
			s.dir.Store(id, uint32(i))
		}
	}
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
	if s.wal != nil {
		return s.Compact()
	}
	return nil
}
