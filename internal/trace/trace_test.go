package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dsim"
	"repro/internal/errs"
)

func TestRingEvictionOldestFirst(t *testing.T) {
	tr := New("n0", "gnutella", WithRingSize(4))
	for i := 0; i < 10; i++ {
		sp := tr.Root(fmt.Sprintf("op%d", i))
		sp.Finish()
	}
	if got := tr.Recorded(); got != 10 {
		t.Fatalf("Recorded() = %d, want 10", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot holds %d spans, want ring size 4", len(snap))
	}
	for i, s := range snap {
		want := fmt.Sprintf("op%d", 6+i)
		if s.Op != want {
			t.Errorf("snapshot[%d].Op = %q, want %q (oldest-first after eviction)", i, s.Op, want)
		}
	}
}

func TestPartialRingSnapshot(t *testing.T) {
	tr := New("n0", "dht", WithRingSize(8))
	for _, op := range []string{"a", "b"} {
		sp := tr.Root(op)
		sp.Finish()
	}
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].Op != "a" || snap[1].Op != "b" {
		t.Fatalf("partial snapshot = %+v, want [a b]", snap)
	}
}

func TestSamplingExact(t *testing.T) {
	for _, tc := range []struct {
		rate float64
		want int
	}{{0, 0}, {1, 100}, {0.25, 25}, {0.5, 50}} {
		tr := New("n0", "dht", WithSampling(tc.rate))
		kept := 0
		for i := 0; i < 100; i++ {
			sp := tr.Root("q")
			if sp.Active() {
				kept++
				sp.Finish()
			}
		}
		if kept != tc.want {
			t.Errorf("rate %g admitted %d of 100 roots, want exactly %d", tc.rate, kept, tc.want)
		}
	}
}

func TestSamplingDeterministic(t *testing.T) {
	pattern := func() []bool {
		tr := New("n0", "dht", WithSampling(0.3))
		out := make([]bool, 40)
		for i := range out {
			sp := tr.Root("q")
			out[i] = sp.Active()
			sp.Finish()
		}
		return out
	}
	a, b := pattern(), pattern()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling decision %d differs between identical tracers", i)
		}
	}
}

// TestDisabledZeroAlloc pins the hot-path contract: with tracing
// disabled (nil tracer, zero sampling, or an unsampled context) the
// whole span lifecycle must not allocate.
func TestDisabledZeroAlloc(t *testing.T) {
	var nilTr *Tracer
	zero := New("n0", "dht", WithSampling(0))
	live := New("n1", "dht")
	cases := map[string]func(){
		"nil tracer": func() {
			sp := nilTr.Root("q")
			sp.SetPeer("p")
			sp.SetCommunity("c")
			sp.AddMsgs(1, 64)
			sp.SetErr(nil)
			child := nilTr.Start(sp.ContextOr(Context{}), "child")
			child.Finish()
			sp.Finish()
		},
		"zero sampling": func() {
			sp := zero.Root("q")
			sp.AddMsgs(1, 64)
			sp.Finish()
		},
		"unsampled context": func() {
			sp := live.Start(Context{}, "child")
			sp.SetPeer("p")
			sp.Finish()
		},
		"nil pointer receiver": func() {
			var sp *ActiveSpan
			sp.SetPeer("p")
			sp.AddMsgs(1, 1)
			sp.Finish()
		},
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per op, want 0", name, allocs)
		}
	}
}

func TestSpanIDsClusterUnique(t *testing.T) {
	a := New("peer000", "dht")
	b := New("peer001", "dht")
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		for _, tr := range []*Tracer{a, b} {
			sp := tr.Root("q")
			id := sp.Context().Span
			if id == 0 {
				t.Fatal("minted zero span ID")
			}
			if seen[id] {
				t.Fatalf("duplicate span ID %x across tracers", id)
			}
			seen[id] = true
			sp.Finish()
		}
	}
}

func TestSetErrRecordsCode(t *testing.T) {
	tr := New("n0", "dht")
	sp := tr.Root("q")
	sp.SetErr(fmt.Errorf("wrapped: %w", errs.New("dht.lookup_rpc", "boom")))
	sp.Finish()
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Err != "dht.lookup_rpc" {
		t.Fatalf("span err = %+v, want code dht.lookup_rpc", snap)
	}
}

// buildTestTrace assembles a three-node cross-"node" trace on a
// virtual clock: driver root (50ms), a search child on peer000, and a
// handler grandchild on peer001 offset 25ms into the query.
func buildTestTrace(t *testing.T) (*Collector, *Tracer) {
	t.Helper()
	clk := dsim.NewVirtualClock()
	driver := New("driver", "gnutella", WithClock(clk))
	n1 := New("peer000", "gnutella", WithClock(clk), WithSampling(0))
	n2 := New("peer001", "gnutella", WithClock(clk), WithSampling(0))
	col := NewCollector()
	col.Attach(driver)
	col.Attach(n1)
	col.Attach(n2)
	col.Attach(nil) // must be ignored

	root := driver.Root("query")
	root.SetCommunity("c1")
	search := n1.Start(root.Context(), "search")
	search.AddMsgs(2, 128)
	handler := n2.StartAt(search.Context(), "query", 25*time.Millisecond)
	handler.SetPeer("peer000")
	handler.Finish()
	search.Finish()
	root.FinishWithDuration(50 * time.Millisecond)
	return col, driver
}

func TestCollectorAssemble(t *testing.T) {
	col, _ := buildTestTrace(t)
	trees := col.Assemble(Filter{})
	if len(trees) != 1 {
		t.Fatalf("assembled %d trees, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Partial {
		t.Error("complete trace marked partial")
	}
	if tree.Spans != 3 {
		t.Errorf("tree has %d spans, want 3", tree.Spans)
	}
	if tree.Root.Span.Op != "query" || tree.Root.Span.Node != "driver" {
		t.Errorf("root = %s@%s, want query@driver", tree.Root.Span.Op, tree.Root.Span.Node)
	}
	if tree.Duration() != 50*time.Millisecond {
		t.Errorf("root duration = %s, want 50ms", tree.Duration())
	}
	// Completeness: every non-root span's parent is in the tree, and
	// no span ends after the root.
	ids := make(map[uint64]bool)
	tree.Walk(func(n *Node) { ids[n.Span.ID] = true })
	rootEnd := tree.Start().Add(tree.Duration())
	tree.Walk(func(n *Node) {
		if !n.Span.Root() && !ids[n.Span.Parent] {
			t.Errorf("span %s has missing parent %x", n.Span.Op, n.Span.Parent)
		}
		if end := n.Span.Start.Add(n.Span.Duration); end.After(rootEnd) {
			t.Errorf("span %s ends at %s, after root end %s", n.Span.Op, end, rootEnd)
		}
	})
	// The 25ms hop offset must survive into the grandchild's start.
	search := tree.Root.Children[0]
	if len(search.Children) != 1 {
		t.Fatalf("search has %d children, want 1", len(search.Children))
	}
	if off := search.Children[0].Span.Start.Sub(tree.Start()); off != 25*time.Millisecond {
		t.Errorf("handler span offset = %s, want 25ms", off)
	}
}

func TestCollectorFilter(t *testing.T) {
	col, _ := buildTestTrace(t)
	for _, tc := range []struct {
		f    Filter
		want int
	}{
		{Filter{}, 1},
		{Filter{Proto: "gnutella"}, 1},
		{Filter{Proto: "gnutella", Community: "c1"}, 1},
		{Filter{Proto: "dht"}, 0},
		{Filter{Community: "nope"}, 0},
	} {
		if got := len(col.Assemble(tc.f)); got != tc.want {
			t.Errorf("Assemble(%+v) = %d trees, want %d", tc.f, got, tc.want)
		}
	}
}

func TestCollectorPartialTree(t *testing.T) {
	tr := New("n0", "dht")
	col := NewCollector()
	col.Attach(tr)
	// A child whose parent was never gathered (e.g. recorded on a peer
	// this collector cannot see) must surface as a partial tree, not
	// vanish.
	orphan := tr.StartAt(Context{Trace: 0xabc, Span: 0x999}, "findnode.serve", 0)
	orphan.Finish()
	trees := col.Assemble(Filter{})
	if len(trees) != 1 || !trees[0].Partial {
		t.Fatalf("orphan span assembled as %+v, want one partial tree", trees)
	}
	if trees[0].Root.Span.Op != "findnode.serve" {
		t.Errorf("partial root op = %q", trees[0].Root.Span.Op)
	}
}

func TestRecentAndSlowest(t *testing.T) {
	clk := dsim.NewVirtualClock()
	tr := New("driver", "dht", WithClock(clk))
	col := NewCollector()
	col.Attach(tr)
	durs := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 90 * time.Millisecond}
	for i, d := range durs {
		sp := tr.Root(fmt.Sprintf("q%d", i))
		sp.FinishWithDuration(d)
	}
	slow := col.Slowest(Filter{}, 2)
	if len(slow) != 2 || slow[0].Duration() != 90*time.Millisecond || slow[1].Duration() != 30*time.Millisecond {
		t.Errorf("Slowest(2) durations wrong: %+v", slow)
	}
	// All roots share the frozen virtual start, so Recent falls back
	// to trace-ID order; it must still be deterministic and capped.
	recent := col.Recent(Filter{}, 2)
	if len(recent) != 2 {
		t.Errorf("Recent(2) returned %d trees", len(recent))
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := New("n0", "dht", WithRingSize(64))
	col := NewCollector()
	col.Attach(tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Root("q")
				sp.AddMsgs(1, 10)
				sp.Finish()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			col.Assemble(Filter{})
		}
	}()
	wg.Wait()
	if got := tr.Recorded(); got != 8*200 {
		t.Fatalf("Recorded() = %d, want %d", got, 8*200)
	}
	if got := len(tr.Snapshot()); got != 64 {
		t.Fatalf("full ring snapshot = %d spans, want 64", got)
	}
}
