package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWaterfall(t *testing.T) {
	col, _ := buildTestTrace(t)
	trees := col.Assemble(Filter{})
	if len(trees) != 1 {
		t.Fatalf("assembled %d trees", len(trees))
	}
	w := trees[0].Waterfall()
	header := fmt.Sprintf("trace %016x  spans=3", trees[0].TraceID())
	if !strings.Contains(w, header) {
		t.Errorf("waterfall missing header %q:\n%s", header, w)
	}
	for _, want := range []string{"query", "search", "driver", "peer000", "peer001", "`- ", "50.0ms", "msgs=2 bytes=128"} {
		if !strings.Contains(w, want) {
			t.Errorf("waterfall missing %q:\n%s", want, w)
		}
	}
}

func TestTreeMarshalJSON(t *testing.T) {
	col, _ := buildTestTrace(t)
	tree := col.Assemble(Filter{})[0]
	raw, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Trace   string `json:"trace"`
		Partial bool   `json:"partial"`
		Spans   int    `json:"spans"`
		Root    struct {
			Op         string `json:"op"`
			Node       string `json:"node"`
			OffsetUS   int64  `json:"offset_us"`
			DurationUS int64  `json:"duration_us"`
			Children   []struct {
				Op       string `json:"op"`
				Children []struct {
					Op       string `json:"op"`
					OffsetUS int64  `json:"offset_us"`
				} `json:"children"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Trace != fmt.Sprintf("%016x", tree.TraceID()) {
		t.Errorf("trace field = %q", got.Trace)
	}
	if got.Partial || got.Spans != 3 {
		t.Errorf("partial=%v spans=%d, want false/3", got.Partial, got.Spans)
	}
	if got.Root.Op != "query" || got.Root.Node != "driver" {
		t.Errorf("root = %s@%s", got.Root.Op, got.Root.Node)
	}
	if got.Root.OffsetUS != 0 || got.Root.DurationUS != 50_000 {
		t.Errorf("root offset/duration = %d/%d us, want 0/50000", got.Root.OffsetUS, got.Root.DurationUS)
	}
	if len(got.Root.Children) != 1 || len(got.Root.Children[0].Children) != 1 {
		t.Fatalf("tree shape wrong: %s", raw)
	}
	if off := got.Root.Children[0].Children[0].OffsetUS; off != 25_000 {
		t.Errorf("grandchild offset = %d us, want 25000", off)
	}
}

func TestHandler(t *testing.T) {
	col, _ := buildTestTrace(t)
	h := Handler(col)

	// Default: JSON envelope, recent order.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var env struct {
		Order  string            `json:"order"`
		Count  int               `json:"count"`
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if env.Order != "recent" || env.Count != 1 || len(env.Traces) != 1 {
		t.Errorf("envelope = %+v", env)
	}

	// order=slowest is echoed back.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?order=slowest&n=5", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Order != "slowest" || env.Count != 1 {
		t.Errorf("slowest envelope = %+v", env)
	}

	// Filters that match nothing yield an empty, well-formed envelope.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?proto=dht", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Count != 0 {
		t.Errorf("proto=dht count = %d, want 0", env.Count)
	}

	// format=text renders waterfalls.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=text", nil))
	if body := rec.Body.String(); !strings.Contains(body, "trace ") || !strings.Contains(body, "query") {
		t.Errorf("text format missing waterfall:\n%s", body)
	}
}
