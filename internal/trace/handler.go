package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves assembled traces from a collector — mounted at
// /debug/traces on up2pd's ops listener. Query parameters:
//
//	n=10           how many traces (capped at 100)
//	order=slowest  slowest-first by root duration (default: recent)
//	proto=dht      keep traces touching this protocol
//	community=X    keep traces touching this community
//	format=text    ASCII waterfalls instead of JSON
func Handler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 10
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		if n > 100 {
			n = 100
		}
		f := Filter{
			Proto:     r.URL.Query().Get("proto"),
			Community: r.URL.Query().Get("community"),
		}
		var trees []*Tree
		order := r.URL.Query().Get("order")
		if order == "slowest" {
			trees = c.Slowest(f, n)
		} else {
			order = "recent"
			trees = c.Recent(f, n)
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, t := range trees {
				w.Write([]byte(t.Waterfall()))
				w.Write([]byte("\n"))
			}
			return
		}
		if trees == nil {
			trees = []*Tree{} // an empty surface is [], not null
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Order  string  `json:"order"`
			Count  int     `json:"count"`
			Traces []*Tree `json:"traces"`
		}{Order: order, Count: len(trees), Traces: trees})
	})
}
