// Package trace implements distributed per-query tracing for the
// U-P2P stack: a TraceID/SpanID context carried in every wire frame,
// per-node bounded ring buffers of finished spans, and a collector
// that reassembles cross-node span trees (see collector.go) and
// renders them as JSON or an ASCII waterfall (see render.go).
//
// The design constraints mirror internal/metrics: tracing must be
// provably inert. Span IDs come from a per-tracer counter (never the
// scenario PRNG), sampling decisions use a deterministic fixed-point
// accumulator, and the trace context rides in Message header fields
// that the golden-trace hash does not cover — so enabling tracing
// cannot perturb a deterministic simulation, and the golden hashes
// are bit-identical with tracing on or off. A nil *Tracer is the
// disabled state: every method is nil-safe and the whole span
// lifecycle (Start, setters, Finish) allocates nothing.
package trace

import (
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/dsim"
	"repro/internal/errs"
)

// Context is the trace context propagated across the wire. The zero
// value means "not traced"; handlers gate on Valid so untraced
// traffic never touches a tracer.
type Context struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether this context belongs to a sampled trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// Span is one finished operation in a trace. Start/Duration are read
// from the tracer's dsim.Clock, so simulated spans carry virtual
// timestamps and are bit-identical across runs. Msgs/Bytes attribute
// the wire messages this span itself sent; Err holds the structured
// errs code when the operation failed.
type Span struct {
	Trace     uint64
	ID        uint64
	Parent    uint64 // zero for a root span
	Op        string
	Node      string
	Peer      string
	Proto     string
	Community string
	Start     time.Time
	Duration  time.Duration
	Msgs      int64
	Bytes     int64
	Err       string
}

// Root reports whether this span is a trace root.
func (s Span) Root() bool { return s.Parent == 0 }

// DefaultRingSize bounds a tracer's span ring when WithRingSize is
// not given.
const DefaultRingSize = 4096

// sampleOne is the fixed-point scale of the sampling accumulator.
const sampleOne = 1 << 16

// Tracer records spans for one node into a bounded ring buffer.
// A nil *Tracer is valid and means tracing is disabled: all methods
// are no-ops and the hot path performs zero allocations.
type Tracer struct {
	node  string
	proto string
	clk   dsim.Clock

	// Span IDs are a per-node FNV prefix plus a 24-bit counter —
	// unique across a cluster, deterministic, and independent of any
	// scenario RNG (the same construction as p2p's GUID source).
	idMu sync.Mutex
	idHi uint64
	idCt uint64

	// Head-based sampling state: a fixed-point accumulator admits
	// exactly rate*N of N Root calls with no PRNG involved.
	rateFP uint64
	accum  uint64

	mu    sync.Mutex
	ring  []Span
	next  int
	total uint64
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithClock sets the clock spans are timestamped on (default
// dsim.Wall; simulations pass their VirtualClock).
func WithClock(clk dsim.Clock) Option {
	return func(t *Tracer) {
		if clk != nil {
			t.clk = clk
		}
	}
}

// WithRingSize bounds the span ring (default DefaultRingSize).
func WithRingSize(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.ring = make([]Span, n)
		}
	}
}

// WithSampling sets the head-based sampling rate in [0,1] applied by
// Root (default 1: every root is kept). Child spans are not sampled
// independently — the root's decision propagates via the context.
func WithSampling(rate float64) Option {
	return func(t *Tracer) {
		switch {
		case rate <= 0:
			t.rateFP = 0
		case rate >= 1:
			t.rateFP = sampleOne
		default:
			t.rateFP = uint64(rate * sampleOne)
		}
	}
}

// New creates a tracer labeled with a node identity and protocol
// name.
func New(node, proto string, opts ...Option) *Tracer {
	h := fnv.New64a()
	h.Write([]byte(node))
	t := &Tracer{
		node:   node,
		proto:  proto,
		clk:    dsim.Wall,
		idHi:   h.Sum64() << 24,
		rateFP: sampleOne,
	}
	for _, o := range opts {
		o(t)
	}
	if t.ring == nil {
		t.ring = make([]Span, DefaultRingSize)
	}
	return t
}

// nextID mints a cluster-unique nonzero span ID.
func (t *Tracer) nextID() uint64 {
	t.idMu.Lock()
	t.idCt++
	id := t.idHi | (t.idCt & (1<<24 - 1))
	t.idMu.Unlock()
	if id == 0 {
		id = 1 // zero means "untraced"; never mint it
	}
	return id
}

// sampled advances the sampling accumulator and reports whether this
// root is admitted.
func (t *Tracer) sampled() bool {
	if t.rateFP == 0 {
		return false
	}
	t.idMu.Lock()
	defer t.idMu.Unlock()
	t.accum += t.rateFP
	if t.accum >= sampleOne {
		t.accum -= sampleOne
		return true
	}
	return false
}

// Root starts a new trace, applying the sampling rate. The returned
// span is inactive (and the trace never exists) when the tracer is
// nil or sampling rejects it.
func (t *Tracer) Root(op string) ActiveSpan {
	if t == nil || !t.sampled() {
		return ActiveSpan{}
	}
	id := t.nextID()
	return ActiveSpan{tr: t, s: Span{
		Trace: id,
		ID:    id,
		Op:    op,
		Node:  t.node,
		Proto: t.proto,
		Start: t.clk.Now(),
	}}
}

// Start opens a child span under ctx. Inactive (records nothing)
// when the tracer is nil or ctx is not part of a sampled trace.
func (t *Tracer) Start(ctx Context, op string) ActiveSpan {
	return t.StartAt(ctx, op, 0)
}

// StartAt opens a child span whose start is offset from the clock's
// current reading. On the synchronous simulated network the clock is
// frozen while a delivery cascade runs, so message handlers pass
// transport.ChainOffset(ep) — the cumulative virtual latency of the
// chain that delivered the message — to place the span at its true
// virtual arrival instant.
func (t *Tracer) StartAt(ctx Context, op string, offset time.Duration) ActiveSpan {
	if t == nil || !ctx.Valid() {
		return ActiveSpan{}
	}
	return ActiveSpan{tr: t, s: Span{
		Trace:  ctx.Trace,
		ID:     t.nextID(),
		Parent: ctx.Span,
		Op:     op,
		Node:   t.node,
		Proto:  t.proto,
		Start:  t.clk.Now().Add(offset),
	}}
}

// record copies one finished span into the ring, evicting the oldest
// when full.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total >= uint64(len(t.ring)) {
		out := make([]Span, 0, len(t.ring))
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
		return out
	}
	out := make([]Span, t.next)
	copy(out, t.ring[:t.next])
	return out
}

// Recorded returns how many spans have ever been recorded (including
// ones since evicted).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// ActiveSpan is an in-progress span. The zero value is inactive:
// every method is a no-op, so call sites never branch on whether
// tracing is enabled. It is passed by value and lives on the caller's
// stack — starting and finishing a span allocates nothing beyond the
// ring slot it is copied into.
type ActiveSpan struct {
	tr *Tracer
	s  Span
}

// Active reports whether this span will be recorded.
func (a *ActiveSpan) Active() bool { return a != nil && a.tr != nil }

// Context returns the propagation context naming this span as
// parent; invalid when the span is inactive.
func (a *ActiveSpan) Context() Context {
	if a == nil || a.tr == nil {
		return Context{}
	}
	return Context{Trace: a.s.Trace, Span: a.s.ID}
}

// ContextOr returns this span's context, or parent when the span is
// inactive — handlers use it to pass an inbound trace context through
// a node whose own tracer is disabled, so downstream hops still
// attribute to the nearest traced ancestor.
func (a *ActiveSpan) ContextOr(parent Context) Context {
	if a == nil || a.tr == nil {
		return parent
	}
	return Context{Trace: a.s.Trace, Span: a.s.ID}
}

// SetPeer records the remote peer this span talked to.
func (a *ActiveSpan) SetPeer(peer string) {
	if a != nil && a.tr != nil {
		a.s.Peer = peer
	}
}

// SetCommunity records the community the operation targeted.
func (a *ActiveSpan) SetCommunity(c string) {
	if a != nil && a.tr != nil {
		a.s.Community = c
	}
}

// SetOp overrides the operation name (e.g. when a handler discovers
// what kind of request it is holding).
func (a *ActiveSpan) SetOp(op string) {
	if a != nil && a.tr != nil {
		a.s.Op = op
	}
}

// SetErr records the structured code of a failure (no-op for nil
// errors).
func (a *ActiveSpan) SetErr(err error) {
	if a != nil && a.tr != nil && err != nil {
		a.s.Err = errs.Code(err)
	}
}

// AddMsgs attributes sent wire messages (and their payload bytes) to
// this span.
func (a *ActiveSpan) AddMsgs(msgs, bytes int64) {
	if a != nil && a.tr != nil {
		a.s.Msgs += msgs
		a.s.Bytes += bytes
	}
}

// Finish records the span with a duration read from the clock
// (clamped at zero: on the simulator the clock is frozen during a
// cascade, so handler spans are points and hop timing lives in their
// start offsets).
func (a *ActiveSpan) Finish() {
	if a == nil || a.tr == nil {
		return
	}
	if d := a.tr.clk.Now().Sub(a.s.Start); d > 0 {
		a.s.Duration = d
	}
	a.tr.record(a.s)
	a.tr = nil
}

// FinishWithDuration records the span with an explicitly measured
// duration — the scenario driver closes a query's root span with the
// virtual path latency the harness measured, so the root duration is
// the driver-observed query latency by construction.
func (a *ActiveSpan) FinishWithDuration(d time.Duration) {
	if a == nil || a.tr == nil {
		return
	}
	if d > 0 {
		a.s.Duration = d
	}
	a.tr.record(a.s)
	a.tr = nil
}
