package trace

import (
	"sort"
	"sync"
	"time"
)

// Collector assembles cross-node span trees from a set of tracers —
// the simulation attaches one tracer per simulated peer plus the
// scenario driver's, the daemon attaches its single node's.
type Collector struct {
	mu      sync.Mutex
	tracers []*Tracer
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Attach registers a tracer's ring for gathering. Nil tracers are
// ignored so call sites need no enabled-check.
func (c *Collector) Attach(t *Tracer) {
	if c == nil || t == nil {
		return
	}
	c.mu.Lock()
	c.tracers = append(c.tracers, t)
	c.mu.Unlock()
}

// Gather snapshots every attached ring.
func (c *Collector) Gather() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	tracers := make([]*Tracer, len(c.tracers))
	copy(tracers, c.tracers)
	c.mu.Unlock()
	var out []Span
	for _, t := range tracers {
		out = append(out, t.Snapshot()...)
	}
	return out
}

// Node is one span and its children in an assembled tree.
type Node struct {
	Span     Span
	Children []*Node
}

// Tree is one assembled trace. Partial marks a tree whose root's
// parent span was not gathered (evicted from a ring, or recorded on
// a node this collector cannot see — the normal case for a single
// daemon tracing queries that transit remote peers).
type Tree struct {
	Root    *Node
	Partial bool
	Spans   int
}

// TraceID returns the trace this tree belongs to.
func (t *Tree) TraceID() uint64 { return t.Root.Span.Trace }

// Duration returns the root span's duration.
func (t *Tree) Duration() time.Duration { return t.Root.Span.Duration }

// Start returns the root span's start time.
func (t *Tree) Start() time.Time { return t.Root.Span.Start }

// Walk visits every node in the tree, parents before children.
func (t *Tree) Walk(fn func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		fn(n)
		for _, ch := range n.Children {
			rec(ch)
		}
	}
	rec(t.Root)
}

// Filter restricts which trees Assemble returns. Empty fields are
// wildcards; a tree matches when any of its spans carries the
// requested protocol and community labels.
type Filter struct {
	Proto     string
	Community string
}

func (f Filter) matches(t *Tree) bool {
	if f.Proto == "" && f.Community == "" {
		return true
	}
	ok := false
	t.Walk(func(n *Node) {
		if ok {
			return
		}
		if f.Proto != "" && n.Span.Proto != f.Proto {
			return
		}
		if f.Community != "" && n.Span.Community != f.Community {
			return
		}
		ok = true
	})
	return ok
}

// Assemble gathers all rings and links spans into trees by
// (Trace, Parent). Spans whose parent was not gathered become roots
// of Partial trees. Output is deterministic: children are ordered by
// (start, span ID) and trees by (root start, trace ID, root ID).
func (c *Collector) Assemble(f Filter) []*Tree {
	spans := c.Gather()
	byTrace := make(map[uint64][]Span)
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	var trees []*Tree
	for _, group := range byTrace {
		nodes := make(map[uint64]*Node, len(group))
		for _, s := range group {
			nodes[s.ID] = &Node{Span: s}
		}
		for _, n := range nodes {
			if n.Span.Parent != 0 {
				if p, ok := nodes[n.Span.Parent]; ok && p != n {
					p.Children = append(p.Children, n)
					continue
				}
			}
		}
		for _, n := range nodes {
			if n.Span.Parent == 0 {
				trees = append(trees, &Tree{Root: n, Spans: countNodes(n)})
			} else if _, ok := nodes[n.Span.Parent]; !ok {
				trees = append(trees, &Tree{Root: n, Partial: true, Spans: countNodes(n)})
			}
		}
	}
	for _, t := range trees {
		t.Walk(func(n *Node) {
			sort.Slice(n.Children, func(i, j int) bool {
				a, b := n.Children[i].Span, n.Children[j].Span
				if !a.Start.Equal(b.Start) {
					return a.Start.Before(b.Start)
				}
				return a.ID < b.ID
			})
		})
	}
	sort.Slice(trees, func(i, j int) bool {
		a, b := trees[i].Root.Span, trees[j].Root.Span
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		return a.ID < b.ID
	})
	out := trees[:0]
	for _, t := range trees {
		if f.matches(t) {
			out = append(out, t)
		}
	}
	return out
}

func countNodes(n *Node) int {
	total := 1
	for _, ch := range n.Children {
		total += countNodes(ch)
	}
	return total
}

// Recent returns the n most recently started trees matching f,
// newest first.
func (c *Collector) Recent(f Filter, n int) []*Tree {
	trees := c.Assemble(f)
	// Assemble orders oldest-first; reverse and truncate.
	for i, j := 0, len(trees)-1; i < j; i, j = i+1, j-1 {
		trees[i], trees[j] = trees[j], trees[i]
	}
	if n > 0 && len(trees) > n {
		trees = trees[:n]
	}
	return trees
}

// Slowest returns the n trees with the largest root durations
// matching f, slowest first — the slow-query exemplars the scenario
// harness and /debug/traces surface.
func (c *Collector) Slowest(f Filter, n int) []*Tree {
	trees := c.Assemble(f)
	sort.SliceStable(trees, func(i, j int) bool {
		return trees[i].Duration() > trees[j].Duration()
	})
	if n > 0 && len(trees) > n {
		trees = trees[:n]
	}
	return trees
}
