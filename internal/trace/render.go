package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// spanJSON is the wire shape of one span in an exported tree. Start
// times are offsets from the root span's start in microseconds, so
// the rendering is independent of the clock epoch (a virtual-clock
// trace serializes identically across runs).
type spanJSON struct {
	Op         string     `json:"op"`
	Node       string     `json:"node"`
	Peer       string     `json:"peer,omitempty"`
	Proto      string     `json:"proto,omitempty"`
	Community  string     `json:"community,omitempty"`
	OffsetUS   int64      `json:"offset_us"`
	DurationUS int64      `json:"duration_us"`
	Msgs       int64      `json:"msgs,omitempty"`
	Bytes      int64      `json:"bytes,omitempty"`
	Err        string     `json:"err,omitempty"`
	Children   []spanJSON `json:"children,omitempty"`
}

type treeJSON struct {
	Trace   string   `json:"trace"`
	Partial bool     `json:"partial,omitempty"`
	Spans   int      `json:"spans"`
	Root    spanJSON `json:"root"`
}

// MarshalJSON renders the tree with start offsets relative to the
// root.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(treeJSON{
		Trace:   fmt.Sprintf("%016x", t.TraceID()),
		Partial: t.Partial,
		Spans:   t.Spans,
		Root:    exportNode(t.Root, t.Root.Span.Start),
	})
}

func exportNode(n *Node, epoch time.Time) spanJSON {
	out := spanJSON{
		Op:         n.Span.Op,
		Node:       n.Span.Node,
		Peer:       n.Span.Peer,
		Proto:      n.Span.Proto,
		Community:  n.Span.Community,
		OffsetUS:   n.Span.Start.Sub(epoch).Microseconds(),
		DurationUS: n.Span.Duration.Microseconds(),
		Msgs:       n.Span.Msgs,
		Bytes:      n.Span.Bytes,
		Err:        n.Span.Err,
	}
	for _, ch := range n.Children {
		out.Children = append(out.Children, exportNode(ch, epoch))
	}
	return out
}

// barWidth is the waterfall bar column width in characters.
const barWidth = 32

// Waterfall renders the tree as an ASCII waterfall: one line per
// span with a proportional time bar, start offset, duration, and
// message/byte attribution. Simulated handler spans are points (the
// virtual clock freezes during a cascade), so their hop timing shows
// up as bar position rather than bar length.
func (t *Tree) Waterfall() string {
	epoch := t.Root.Span.Start
	// Scale the bar to the latest span end seen anywhere in the tree
	// (>= root duration by the completeness property, but partial or
	// in-flight trees may exceed it).
	total := t.Duration()
	t.Walk(func(n *Node) {
		if end := n.Span.Start.Sub(epoch) + n.Span.Duration; end > total {
			total = end
		}
	})
	if total <= 0 {
		total = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x  spans=%d  root=%s", t.TraceID(), t.Spans, t.Root.Span.Op)
	if t.Root.Span.Community != "" {
		fmt.Fprintf(&b, "  community=%s", t.Root.Span.Community)
	}
	fmt.Fprintf(&b, "  duration=%s", t.Duration())
	if t.Partial {
		b.WriteString("  (partial)")
	}
	b.WriteByte('\n')

	var walk func(n *Node, prefix string, last bool, depth int)
	walk = func(n *Node, prefix string, last bool, depth int) {
		branch, childPrefix := "", ""
		if depth > 0 {
			if last {
				branch, childPrefix = prefix+"`- ", prefix+"   "
			} else {
				branch, childPrefix = prefix+"|- ", prefix+"|  "
			}
		}
		label := branch + n.Span.Op
		if n.Span.Peer != "" {
			label += " ->" + n.Span.Peer
		}
		off := n.Span.Start.Sub(epoch)
		fmt.Fprintf(&b, "%-44s %-10s |%s| %8s +%-8s", clip(label, 44), clip(n.Span.Node, 10),
			bar(off, n.Span.Duration, total), fmtDur(off), fmtDur(n.Span.Duration))
		if n.Span.Msgs > 0 || n.Span.Bytes > 0 {
			fmt.Fprintf(&b, " msgs=%d bytes=%d", n.Span.Msgs, n.Span.Bytes)
		}
		if n.Span.Err != "" {
			fmt.Fprintf(&b, " err=%s", n.Span.Err)
		}
		b.WriteByte('\n')
		for i, ch := range n.Children {
			walk(ch, childPrefix, i == len(n.Children)-1, depth+1)
		}
	}
	walk(t.Root, "", true, 0)
	return b.String()
}

// bar draws a fixed-width timeline bar: '#' over the span's
// duration, '.' marking a zero-duration point span.
func bar(off, dur, total time.Duration) string {
	start := int(int64(off) * barWidth / int64(total))
	if start >= barWidth {
		start = barWidth - 1
	}
	width := int(int64(dur) * barWidth / int64(total))
	if width < 1 {
		width = 1
	}
	if start+width > barWidth {
		width = barWidth - start
	}
	cells := make([]byte, barWidth)
	for i := range cells {
		cells[i] = ' '
	}
	mark := byte('#')
	if dur == 0 {
		mark = '.'
	}
	for i := 0; i < width; i++ {
		cells[start+i] = mark
	}
	return string(cells)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dus", d.Microseconds())
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "~"
}
