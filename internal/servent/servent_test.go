package servent

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/transport"
)

// fixture: two web servents on one centralized network.
type fixture struct {
	handlers []*Handler
	servents []*core.Servent
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	net := transport.NewMemNetwork()
	sep, err := net.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	p2p.NewIndexServer(sep)
	f := &fixture{}
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("peer%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		st := index.NewStore()
		sv, err := core.NewServent(p2p.NewCentralizedClient(ep, "server", st), st)
		if err != nil {
			t.Fatal(err)
		}
		f.servents = append(f.servents, sv)
		f.handlers = append(f.handlers, New(sv))
	}
	return f
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec, rec.Body.String()
}

func postForm(t *testing.T, h http.Handler, path string, form url.Values) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHomeListsRootCommunity(t *testing.T) {
	f := newFixture(t, 1)
	rec, body := get(t, f.handlers[0], "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(body, "Community-sharing community") {
		t.Errorf("home missing root community:\n%s", body)
	}
}

func TestCommunityPageShowsGeneratedForms(t *testing.T) {
	f := newFixture(t, 1)
	c, err := f.servents[0].CreateCommunity(core.CommunitySpec{
		Name: "mp3", SchemaSrc: corpus.SongSchemaSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, body := get(t, f.handlers[0], "/community/"+c.ID)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	for _, want := range []string{`name="title"`, `name="artist"`, `<select name="genre"`, "up2p-create", "up2p-search"} {
		if !strings.Contains(body, want) {
			t.Errorf("community page missing %q", want)
		}
	}
	// Unknown community 404s.
	rec, _ = get(t, f.handlers[0], "/community/nope")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown community status = %d", rec.Code)
	}
}

func TestCreateSearchViewLoop(t *testing.T) {
	f := newFixture(t, 2)
	c, err := f.servents[0].CreateCommunity(core.CommunitySpec{Name: "mp3", SchemaSrc: corpus.SongSchemaSrc})
	if err != nil {
		t.Fatal(err)
	}
	// Create through the web form.
	rec := postForm(t, f.handlers[0], "/create?community="+c.ID, url.Values{
		"title":  {"So What"},
		"artist": {"Miles Davis"},
		"genre":  {"jazz"},
	})
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("create status = %d: %s", rec.Code, rec.Body.String())
	}
	viewPath := rec.Header().Get("Location")
	if !strings.HasPrefix(viewPath, "/view?doc=") {
		t.Fatalf("redirect = %q", viewPath)
	}
	// View renders the object.
	rec2, body := get(t, f.handlers[0], viewPath)
	if rec2.Code != http.StatusOK || !strings.Contains(body, "So What") {
		t.Errorf("view = %d:\n%s", rec2.Code, body)
	}
	// Search from the same servent through the web form.
	_, results := get(t, f.handlers[0], "/search?community="+c.ID+"&artist=Miles+Davis")
	if !strings.Contains(results, "So What") {
		t.Errorf("search results missing object:\n%s", results)
	}
	// Raw filter-language search.
	_, results = get(t, f.handlers[0], "/search?community="+c.ID+"&filter="+url.QueryEscape("(genre=jazz)"))
	if !strings.Contains(results, "So What") {
		t.Errorf("raw filter search missing object")
	}
	// Invalid create rejected with a client error.
	rec3 := postForm(t, f.handlers[0], "/create?community="+c.ID, url.Values{
		"title": {"X"}, "artist": {"Y"}, "genre": {"polka"},
	})
	if rec3.Code != http.StatusBadRequest {
		t.Errorf("bad enum create status = %d", rec3.Code)
	}
}

func TestDiscoverAndJoinFlow(t *testing.T) {
	f := newFixture(t, 2)
	creator, joiner := f.handlers[0], f.handlers[1]
	if _, err := f.servents[0].CreateCommunity(core.CommunitySpec{
		Name: "patterns", Keywords: "gof design", SchemaSrc: corpus.PatternSchemaSrc,
	}); err != nil {
		t.Fatal(err)
	}
	_ = creator
	// Discover from the second servent.
	rec, body := get(t, joiner, "/discover?keywords=gof")
	if rec.Code != http.StatusOK {
		t.Fatalf("discover = %d", rec.Code)
	}
	if !strings.Contains(body, "patterns") || !strings.Contains(body, "/join?doc=") {
		t.Fatalf("discover page missing community:\n%s", body)
	}
	// Extract the join link.
	i := strings.Index(body, "/join?doc=")
	j := strings.IndexByte(body[i:], '"')
	joinURL := strings.ReplaceAll(body[i:i+j], "&amp;", "&")
	rec2, _ := get(t, joiner, joinURL)
	if rec2.Code != http.StatusSeeOther {
		t.Fatalf("join = %d: %s", rec2.Code, rec2.Body.String())
	}
	commPath := rec2.Header().Get("Location")
	rec3, page := get(t, joiner, commPath)
	if rec3.Code != http.StatusOK || !strings.Contains(page, "patterns") {
		t.Errorf("joined community page = %d", rec3.Code)
	}
}

func TestRetrieveAcrossPeersViaWeb(t *testing.T) {
	f := newFixture(t, 2)
	c, err := f.servents[0].CreateCommunity(core.CommunitySpec{Name: "mp3", SchemaSrc: corpus.SongSchemaSrc})
	if err != nil {
		t.Fatal(err)
	}
	rec := postForm(t, f.handlers[0], "/create?community="+c.ID, url.Values{
		"title": {"Blue"}, "artist": {"A"}, "genre": {"jazz"},
	})
	if rec.Code != http.StatusSeeOther {
		t.Fatal(rec.Body.String())
	}
	// Peer 1 joins then searches and downloads via web handlers.
	_, body := get(t, f.handlers[1], "/discover?name=mp3")
	i := strings.Index(body, "/join?doc=")
	j := strings.IndexByte(body[i:], '"')
	get(t, f.handlers[1], strings.ReplaceAll(body[i:i+j], "&amp;", "&"))

	_, results := get(t, f.handlers[1], "/search?community="+c.ID+"&title=Blue")
	if !strings.Contains(results, "/retrieve?doc=") {
		t.Fatalf("no download link:\n%s", results)
	}
	i = strings.Index(results, "/retrieve?doc=")
	j = strings.IndexByte(results[i:], '"')
	rec2, _ := get(t, f.handlers[1], strings.ReplaceAll(results[i:i+j], "&amp;", "&"))
	if rec2.Code != http.StatusSeeOther {
		t.Fatalf("retrieve = %d: %s", rec2.Code, rec2.Body.String())
	}
	// Now locally viewable.
	rec3, page := get(t, f.handlers[1], rec2.Header().Get("Location"))
	if rec3.Code != http.StatusOK || !strings.Contains(page, "Blue") {
		t.Errorf("view after retrieve = %d", rec3.Code)
	}
}

func TestAttachmentEndpoint(t *testing.T) {
	f := newFixture(t, 1)
	c, err := f.servents[0].CreateCommunity(core.CommunitySpec{Name: "m", SchemaSrc: corpus.SongSchemaSrc})
	if err != nil {
		t.Fatal(err)
	}
	// Community attachments (schema etc.) are retrievable.
	uri := core.AttachmentURI(c.ID, "schema.xsd")
	rec, body := get(t, f.handlers[0], "/attachment?uri="+url.QueryEscape(uri))
	if rec.Code != http.StatusOK || !strings.Contains(body, "schema") {
		t.Errorf("attachment = %d", rec.Code)
	}
	rec, _ = get(t, f.handlers[0], "/attachment?uri=missing")
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing attachment = %d", rec.Code)
	}
}

func TestCreateRequiresPost(t *testing.T) {
	f := newFixture(t, 1)
	rec, _ := get(t, f.handlers[0], "/create?community=x")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET create = %d", rec.Code)
	}
}
