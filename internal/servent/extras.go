package servent

import (
	"fmt"
	"html"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/schemagen"
)

// newCommunity implements the §VI schema-generation tool as a web
// page: the user types a plain field list, never XML; the servent
// generates the schema, creates the community and publishes it.
func (h *Handler) newCommunity(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		h.page(w, "new community", newCommunityForm(""))
		return
	}
	if err := r.ParseForm(); err != nil {
		h.errPage(w, http.StatusBadRequest, err)
		return
	}
	schemaSrc, err := schemagen.GenerateFromText(r.PostForm.Get("fields"))
	if err != nil {
		h.page(w, "new community", newCommunityForm(err.Error()))
		return
	}
	c, err := h.sv.CreateCommunity(core.CommunitySpec{
		Name:        r.PostForm.Get("name"),
		Description: r.PostForm.Get("description"),
		Keywords:    r.PostForm.Get("keywords"),
		Category:    r.PostForm.Get("category"),
		SchemaSrc:   schemaSrc,
	})
	if err != nil {
		h.page(w, "new community", newCommunityForm(err.Error()))
		return
	}
	http.Redirect(w, r, "/community/"+c.ID, http.StatusSeeOther)
}

func newCommunityForm(errMsg string) string {
	var b strings.Builder
	b.WriteString("<h2>Create a community (no XML required)</h2>")
	if errMsg != "" {
		fmt.Fprintf(&b, `<p class="error">%s</p>`, html.EscapeString(errMsg))
	}
	b.WriteString(`<form method="post" action="/newcommunity">
<div><label>name</label> <input name="name"/></div>
<div><label>description</label> <input name="description" size="60"/></div>
<div><label>keywords</label> <input name="keywords" size="40"/></div>
<div><label>category</label> <input name="category"/></div>
<div><label>fields</label><br/>
<textarea name="fields" rows="12" cols="70">song
title   string  searchable
artist  string  searchable
genre   enum(jazz,rock,classical)  searchable
year    integer optional searchable
</textarea></div>
<p>first line: object name; then one field per line:
<code>name type [searchable] [optional] [repeated] [attachment]</code>;
types: string, integer, decimal, boolean, date, anyURI, enum(a,b,c)</p>
<input type="submit" value="Generate schema and create community"/>
</form>`)
	return b.String()
}

// xquery exposes the §VI richer-query direction: a full XPath boolean
// expression over locally stored objects of one community.
func (h *Handler) xquery(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		h.errPage(w, http.StatusBadRequest, err)
		return
	}
	communityID := r.Form.Get("community")
	expr := r.Form.Get("q")
	var b strings.Builder
	b.WriteString(`<h2>XPath query over local objects</h2>
<form method="get" action="/xquery">
<input type="hidden" name="community" value="` + html.EscapeString(communityID) + `"/>
<input name="q" size="70" value="` + html.EscapeString(expr) + `"/>
<input type="submit" value="Run"/></form>
<p>example: <code>//pattern[classification='behavioral' and count(participants) > 2]</code></p>`)
	if expr != "" {
		docs, err := h.sv.SearchLocalXPath(communityID, expr, 100)
		if err != nil {
			h.errPage(w, http.StatusBadRequest, err)
			return
		}
		fmt.Fprintf(&b, "<h3>%d match(es)</h3><ul>", len(docs))
		for _, d := range docs {
			fmt.Fprintf(&b, `<li><a href="/view?doc=%s">%s</a></li>`, d.ID, html.EscapeString(d.Title))
		}
		b.WriteString("</ul>")
	}
	h.page(w, "xquery", b.String())
}
