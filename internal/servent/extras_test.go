package servent

import (
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func TestNewCommunityViaWebTool(t *testing.T) {
	f := newFixture(t, 1)
	h := f.handlers[0]
	// GET shows the tool.
	rec, body := get(t, h, "/newcommunity")
	if rec.Code != http.StatusOK || !strings.Contains(body, "textarea") {
		t.Fatalf("tool page = %d", rec.Code)
	}
	// POST with a plain-text field spec: no XML typed by the user.
	rec = postForm(t, h, "/newcommunity", url.Values{
		"name":        {"books"},
		"description": {"book sharing"},
		"keywords":    {"books reading"},
		"fields": {`book
title  string  searchable
author string  searchable repeated
year   integer optional`},
	})
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body.String())
	}
	commPath := rec.Header().Get("Location")
	rec2, page := get(t, h, commPath)
	if rec2.Code != http.StatusOK {
		t.Fatalf("community page = %d", rec2.Code)
	}
	for _, want := range []string{`name="title"`, `name="author"`, `name="year"`} {
		if !strings.Contains(page, want) {
			t.Errorf("generated community form missing %q", want)
		}
	}
	// Publish through the generated form immediately.
	commID := strings.TrimPrefix(commPath, "/community/")
	rec3 := postForm(t, h, "/create?community="+commID, url.Values{
		"title": {"Dune"}, "author": {"Frank Herbert"}, "year": {"1965"},
	})
	if rec3.Code != http.StatusSeeOther {
		t.Errorf("publish into generated community = %d: %s", rec3.Code, rec3.Body.String())
	}
	// Bad spec re-renders the form with the error.
	rec4 := postForm(t, h, "/newcommunity", url.Values{
		"name": {"x"}, "fields": {"onlyroot"},
	})
	if rec4.Code != http.StatusOK || !strings.Contains(rec4.Body.String(), "error") {
		t.Errorf("bad spec handling = %d", rec4.Code)
	}
}

func TestXPathQueryEndpoint(t *testing.T) {
	f := newFixture(t, 1)
	sv, h := f.servents[0], f.handlers[0]
	c, err := sv.CreateCommunity(core.CommunitySpec{Name: "dp", SchemaSrc: corpus.PatternSchemaSrc})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range corpus.DesignPatterns(23, 1).Objects {
		if _, err := sv.Publish(c.ID, o.Doc, nil); err != nil {
			t.Fatal(err)
		}
	}
	q := url.QueryEscape("//pattern[classification='behavioral' and count(participants) > 3]")
	rec, body := get(t, h, "/xquery?community="+c.ID+"&q="+q)
	if rec.Code != http.StatusOK {
		t.Fatalf("xquery = %d: %s", rec.Code, body)
	}
	// Observer and Command have 4 participants in the GoF catalogue.
	if !strings.Contains(body, "Observer") {
		t.Errorf("xquery results missing Observer:\n%s", body)
	}
	if strings.Contains(body, ">Composite<") {
		t.Error("structural pattern matched behavioral xpath query")
	}
	// Bad expression is a client error.
	rec2, _ := get(t, h, "/xquery?community="+c.ID+"&q="+url.QueryEscape("[[["))
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("bad xpath = %d", rec2.Code)
	}
}
