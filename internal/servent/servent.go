// Package servent provides the web interface of §IV.B: "U-P2P is a
// web-based application. Any browser can be used to interface to a
// U-P2P servent." It wraps a core.Servent with HTTP handlers for the
// three functions (create, search, view) plus community discovery and
// join — the pages the JSP prototype served, regenerated from each
// community's schema on every request.
package servent

import (
	"fmt"
	"html"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/transport"
)

// Handler is the web front end over a core servent.
type Handler struct {
	sv  *core.Servent
	mux *http.ServeMux
}

var _ http.Handler = (*Handler)(nil)

// New builds the handler.
func New(sv *core.Servent) *Handler {
	h := &Handler{sv: sv, mux: http.NewServeMux()}
	h.mux.HandleFunc("/", h.home)
	h.mux.HandleFunc("/community/", h.community)
	h.mux.HandleFunc("/create", h.create)
	h.mux.HandleFunc("/search", h.search)
	h.mux.HandleFunc("/view", h.view)
	h.mux.HandleFunc("/retrieve", h.retrieve)
	h.mux.HandleFunc("/discover", h.discover)
	h.mux.HandleFunc("/join", h.join)
	h.mux.HandleFunc("/attachment", h.attachmentHandler)
	h.mux.HandleFunc("/newcommunity", h.newCommunity)
	h.mux.HandleFunc("/xquery", h.xquery)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) page(w http.ResponseWriter, title, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>%s — U-P2P</title></head><body>
<header><h1>U-P2P servent %s</h1><nav><a href="/">communities</a> | <a href="/discover">discover</a></nav></header>
%s</body></html>`, html.EscapeString(title), html.EscapeString(string(h.sv.PeerID())), body)
}

func (h *Handler) errPage(w http.ResponseWriter, status int, err error) {
	w.WriteHeader(status)
	h.page(w, "error", "<p class=\"error\">"+html.EscapeString(err.Error())+"</p>")
}

// home lists joined communities.
func (h *Handler) home(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	b.WriteString("<h2>Joined communities</h2><ul>")
	for _, id := range h.sv.Joined() {
		c, _ := h.sv.Community(id)
		fmt.Fprintf(&b, `<li><a href="/community/%s">%s</a> — %s (%d local objects)</li>`,
			html.EscapeString(id), html.EscapeString(c.Name),
			html.EscapeString(c.Description), h.sv.Store().CommunityLen(id))
	}
	b.WriteString("</ul>")
	h.page(w, "communities", b.String())
}

// community shows one community's generated create and search forms.
func (h *Handler) community(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/community/")
	c, ok := h.sv.Community(id)
	if !ok {
		h.errPage(w, http.StatusNotFound, fmt.Errorf("community %s not joined", id))
		return
	}
	createForm, err := c.CreateFormHTML()
	if err != nil {
		h.errPage(w, http.StatusInternalServerError, err)
		return
	}
	searchForm, err := c.SearchFormHTML()
	if err != nil {
		h.errPage(w, http.StatusInternalServerError, err)
		return
	}
	// Point the generated forms at the right endpoints.
	createForm = strings.Replace(createForm, `action="create"`, fmt.Sprintf(`action="/create?community=%s"`, id), 1)
	searchForm = strings.Replace(searchForm, `action="search"`, `action="/search"`, 1)
	searchForm = strings.Replace(searchForm, "<form ", fmt.Sprintf(`<form data-community=%q `, id), 1)
	var local strings.Builder
	local.WriteString("<h2>Local objects</h2><ul>")
	for _, d := range h.sv.SearchLocal(id, query.MatchAll{}, 50) {
		fmt.Fprintf(&local, `<li><a href="/view?doc=%s">%s</a></li>`, d.ID, html.EscapeString(d.Title))
	}
	local.WriteString("</ul>")
	hidden := fmt.Sprintf(`<input type="hidden" name="community" value="%s"/>`, html.EscapeString(id))
	searchForm = strings.Replace(searchForm, "<input type=\"submit\"", hidden+"<input type=\"submit\"", 1)
	h.page(w, c.Name, fmt.Sprintf("<h2>%s</h2><p>%s</p><h2>Create</h2>%s<h2>Search</h2>%s%s",
		html.EscapeString(c.Name), html.EscapeString(c.Description), createForm, searchForm, local.String()))
}

// create handles create-form submissions (§IV.C.1).
func (h *Handler) create(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		h.errPage(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	if err := r.ParseForm(); err != nil {
		h.errPage(w, http.StatusBadRequest, err)
		return
	}
	communityID := r.URL.Query().Get("community")
	if communityID == "" {
		communityID = r.PostForm.Get("community")
	}
	values := map[string][]string(r.PostForm)
	delete(values, "community")
	docID, err := h.sv.CreateFromForm(communityID, values)
	if err != nil {
		h.errPage(w, http.StatusBadRequest, err)
		return
	}
	http.Redirect(w, r, "/view?doc="+string(docID), http.StatusSeeOther)
}

// search handles search-form submissions (§IV.C.2).
func (h *Handler) search(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		h.errPage(w, http.StatusBadRequest, err)
		return
	}
	communityID := r.Form.Get("community")
	values := map[string][]string{}
	for k, vs := range r.Form {
		if k == "community" || k == "filter" {
			continue
		}
		values[k] = vs
	}
	var rs []p2p.Result
	var err error
	if raw := r.Form.Get("filter"); raw != "" {
		// Power users can submit the filter language directly.
		f, ferr := query.Parse(raw)
		if ferr != nil {
			h.errPage(w, http.StatusBadRequest, ferr)
			return
		}
		rs, err = h.sv.Search(communityID, f, p2p.SearchOptions{})
	} else {
		rs, err = h.sv.SearchForm(communityID, values, p2p.SearchOptions{})
	}
	if err != nil {
		h.errPage(w, http.StatusBadRequest, err)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<h2>%d results</h2><table><tr><th>title</th><th>provider</th><th>attributes</th><th></th></tr>", len(rs))
	for _, res := range rs {
		fmt.Fprintf(&b, `<tr><td>%s</td><td>%s</td><td>%s</td><td><a href="/retrieve?doc=%s&from=%s">download</a></td></tr>`,
			html.EscapeString(res.Title), html.EscapeString(string(res.Provider)),
			html.EscapeString(summarizeAttrs(res.Attrs)), res.DocID, html.EscapeString(string(res.Provider)))
	}
	b.WriteString("</table>")
	h.page(w, "search results", b.String())
}

func summarizeAttrs(attrs query.Attrs) string {
	parts := make([]string, 0, len(attrs))
	for k, vs := range attrs {
		parts = append(parts, k+"="+strings.Join(vs, ","))
		if len(parts) >= 4 {
			break
		}
	}
	return strings.Join(parts, "; ")
}

// view renders a stored object with its community stylesheet (§IV.C.3).
func (h *Handler) view(w http.ResponseWriter, r *http.Request) {
	docID := index.DocID(r.URL.Query().Get("doc"))
	out, err := h.sv.View(docID)
	if err != nil {
		h.errPage(w, http.StatusNotFound, err)
		return
	}
	doc, _ := h.sv.Store().Get(docID)
	var att strings.Builder
	if doc != nil && len(doc.Attachments) > 0 {
		att.WriteString("<h3>Attachments</h3><ul>")
		for _, uri := range doc.Attachments {
			fmt.Fprintf(&att, `<li><a href="/attachment?uri=%s">%s</a></li>`, html.EscapeString(uri), html.EscapeString(uri))
		}
		att.WriteString("</ul>")
	}
	h.page(w, "view", out+att.String())
}

// retrieve downloads an object from a provider then shows it.
func (h *Handler) retrieve(w http.ResponseWriter, r *http.Request) {
	docID := index.DocID(r.URL.Query().Get("doc"))
	from := transport.PeerID(r.URL.Query().Get("from"))
	if _, err := h.sv.Retrieve(docID, from); err != nil {
		h.errPage(w, http.StatusBadGateway, err)
		return
	}
	http.Redirect(w, r, "/view?doc="+string(docID), http.StatusSeeOther)
}

// discover searches the root community for communities.
func (h *Handler) discover(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		h.errPage(w, http.StatusBadRequest, err)
		return
	}
	values := map[string][]string{}
	for k, vs := range r.Form {
		values[k] = vs
	}
	f := query.Filter(query.MatchAll{})
	if len(values) > 0 {
		f = buildDiscoveryFilter(values)
	}
	rs, err := h.sv.DiscoverCommunities(f, p2p.SearchOptions{})
	if err != nil {
		h.errPage(w, http.StatusBadGateway, err)
		return
	}
	root, _ := h.sv.Community(core.RootCommunityID)
	searchForm, err := root.SearchFormHTML()
	if err != nil {
		h.errPage(w, http.StatusInternalServerError, err)
		return
	}
	searchForm = strings.Replace(searchForm, `action="search"`, `action="/discover"`, 1)
	var b strings.Builder
	b.WriteString("<h2>Discover communities</h2>")
	b.WriteString(searchForm)
	fmt.Fprintf(&b, "<h2>%d communities found</h2><table><tr><th>name</th><th>keywords</th><th>provider</th><th></th></tr>", len(rs))
	for _, res := range rs {
		fmt.Fprintf(&b, `<tr><td>%s</td><td>%s</td><td>%s</td><td><a href="/join?doc=%s&from=%s">join</a></td></tr>`,
			html.EscapeString(res.Attrs.Get("name")), html.EscapeString(res.Attrs.Get("keywords")),
			html.EscapeString(string(res.Provider)), res.DocID, html.EscapeString(string(res.Provider)))
	}
	b.WriteString("</table>")
	h.page(w, "discover", b.String())
}

func buildDiscoveryFilter(values map[string][]string) query.Filter {
	clean := map[string][]string{}
	for k, vs := range values {
		for _, v := range vs {
			if strings.TrimSpace(v) != "" {
				clean[k] = append(clean[k], v)
			}
		}
	}
	if len(clean) == 0 {
		return query.MatchAll{}
	}
	var subs []query.Filter
	for k, vs := range clean {
		for _, v := range vs {
			subs = append(subs, &query.Assertion{Attr: k, Op: query.OpContains, Value: v})
		}
	}
	if len(subs) == 1 {
		return subs[0]
	}
	return &query.And{Subs: subs}
}

// join downloads and installs a discovered community.
func (h *Handler) join(w http.ResponseWriter, r *http.Request) {
	docID := index.DocID(r.URL.Query().Get("doc"))
	from := transport.PeerID(r.URL.Query().Get("from"))
	c, err := h.sv.JoinFromNetwork(p2p.Result{
		DocID:       docID,
		Provider:    from,
		CommunityID: core.RootCommunityID,
	})
	if err != nil {
		h.errPage(w, http.StatusBadGateway, err)
		return
	}
	http.Redirect(w, r, "/community/"+c.ID, http.StatusSeeOther)
}

// attachmentHandler serves locally stored attachment bytes.
func (h *Handler) attachmentHandler(w http.ResponseWriter, r *http.Request) {
	uri := r.URL.Query().Get("uri")
	data, ok := h.sv.Attachment(uri)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}
