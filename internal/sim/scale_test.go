package sim

import (
	"os"
	"testing"
	"time"
)

// scaleSmokeBudget is the wall-clock ceiling for the CI scale smoke:
// the point of the job is catching scale regressions (an accidental
// O(n²) in the event engine, a per-message allocation creeping back),
// and wall time at 5k peers is the signal that moves first.
const scaleSmokeBudget = 10 * time.Minute

// TestScaleSmoke is the CI scale gate (make scale-smoke): a ~5k-peer
// DHT deployment under churn on the virtual clock, required to finish
// inside scaleSmokeBudget with healthy recall. Gated behind
// UP2P_SCALE_SMOKE=1 so ordinary `go test ./...` stays fast.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("UP2P_SCALE_SMOKE") == "" {
		t.Skip("set UP2P_SCALE_SMOKE=1 to run the 5k-peer scale smoke")
	}
	start := time.Now()
	r, err := RunScenario(ScenarioConfig{
		Cluster: Config{
			Peers:    5000,
			Protocol: DHT,
			Seed:     42,
			DHTK:     16,
			DHTAlpha: 3,
			// The whole corpus lives under one community key, so the
			// per-key holder cap must clear the object count or
			// eviction (correctly) truncates recall.
			DHTMaxRecordsPerKey: 4096,
		},
		Duration:        2 * time.Minute,
		QueryRate:       2,
		InitialObjects:  2000,
		ArrivalRate:     0.5,
		DepartureRate:   0.5,
		DHTRefreshEvery: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("5k-peer DHT churn: %d queries, recall %.1f%%, %d msgs, wall %v",
		r.Queries, 100*r.MeanRecall(0, 0), r.Messages, elapsed)
	if elapsed > scaleSmokeBudget {
		t.Errorf("scale smoke blew its wall-clock budget: %v > %v", elapsed, scaleSmokeBudget)
	}
	if r.Queries == 0 || r.TraceLen == 0 {
		t.Fatalf("degenerate run: %d queries, trace len %d", r.Queries, r.TraceLen)
	}
	if rec := r.MeanRecall(0, 0); rec < 0.9 {
		t.Errorf("recall %.2f below 0.9 at 5k peers under churn", rec)
	}
}
