package sim

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
)

// TestDHTClusterEndToEnd runs the full U-P2P flow on the structured
// overlay: community discovery through the root community (itself a
// DHT lookup on the root community key), join-by-retrieve, bulk
// publication, and filtered searches with complete recall.
func TestDHTClusterEndToEnd(t *testing.T) {
	c, err := NewCluster(Config{Peers: 32, Protocol: DHT, DHTK: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, spec())
	if err != nil {
		t.Fatal(err)
	}
	joined, err := c.DiscoverAndJoinAll("patterns", 7)
	if err != nil {
		t.Fatal(err)
	}
	if joined != 32 {
		t.Fatalf("joined = %d, want 32", joined)
	}
	// The join lookups populated every routing table.
	for i := 0; i < 32; i++ {
		if n := c.DHTNode(i); n == nil || n.TableLen() == 0 {
			t.Fatalf("peer %d has no routing state", i)
		}
	}
	objs := corpus.DesignPatterns(40, 21).Objects
	ids, err := c.PublishRoundRobin(comm.ID, objs)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[index.DocID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	for _, searcher := range []int{0, 9, 31} {
		rs, err := c.SearchFrom(searcher, comm.ID, query.MustParse("(name=*)"), p2p.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		found := map[index.DocID]bool{}
		for _, r := range rs {
			found[r.DocID] = true
			if r.Hops < 1 {
				t.Errorf("hit carries no hop count: %+v", r)
			}
		}
		for id := range want {
			if !found[id] {
				t.Fatalf("searcher %d missed %s", searcher, id)
			}
		}
	}
	// A filtered search stays consistent with a local ground-truth
	// scan, and retrieval from a reported provider works.
	rs, err := c.SearchFrom(5, comm.ID, query.MustParse("(classification=behavioral)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("filtered search found nothing")
	}
	for _, r := range rs {
		if r.Attrs.Get("classification") != "behavioral" {
			t.Fatalf("filter leaked: %+v", r)
		}
	}
	if _, err := c.Servents[5].Retrieve(rs[0].DocID, rs[0].Provider); err != nil {
		t.Fatalf("retrieve from DHT provider: %v", err)
	}
}

// TestDHTChurnRepair kills a slice of the population (taking record
// replicas with it), then checks that RefreshDHT — bucket repair plus
// republication — restores full recall over the surviving peers'
// documents.
func TestDHTChurnRepair(t *testing.T) {
	c, err := NewCluster(Config{Peers: 30, Protocol: DHT, DHTK: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallCommunityAll(comm); err != nil {
		t.Fatal(err)
	}
	objs := corpus.DesignPatterns(30, 33).Objects
	ids, err := c.PublishRoundRobin(comm.ID, objs)
	if err != nil {
		t.Fatal(err)
	}
	holders := make(map[index.DocID]int, len(ids))
	for i, id := range ids {
		// PublishRoundRobin places object i on member i mod N; every
		// peer joined, so the member list is the servent list.
		holders[id] = i % 30
	}
	for _, victim := range []int{2, 7, 11, 19, 23, 28} {
		c.KillPeer(victim)
	}
	dead := map[int]bool{2: true, 7: true, 11: true, 19: true, 23: true, 28: true}
	if c.DHTNode(2) != nil {
		t.Fatal("killed peer still exposes a DHT node")
	}
	// Churn arrivals join mid-run and publish too.
	ni, err := c.AddPeer()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Servents[ni].AdoptCommunity(comm); err != nil {
		t.Fatal(err)
	}
	extra := corpus.DesignPatterns(45, 34).Objects
	extraID, err := c.Servents[ni].Publish(comm.ID, extra[44].Doc.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Repair: liveness checks evict dead contacts, republication
	// re-replicates records whose holders died.
	refreshed, err := c.RefreshDHT()
	if err != nil {
		t.Fatal(err)
	}
	if refreshed != 25 {
		t.Fatalf("refreshed = %d, want 25 live peers", refreshed)
	}
	rs, err := c.SearchFrom(0, comm.ID, query.MustParse("(name=*)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := map[index.DocID]bool{}
	for _, r := range rs {
		found[r.DocID] = true
	}
	for id, holder := range holders {
		if dead[holder] {
			continue // its only holder died; the object is legitimately gone
		}
		if !found[id] {
			t.Fatalf("doc %s (live holder %d) not found after repair", id, holder)
		}
	}
	if !found[extraID] {
		t.Fatal("arrival's publication not found")
	}
}
