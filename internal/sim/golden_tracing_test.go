package sim

import (
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/dsim"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/trace"
)

// TestGoldenTraceTracingInert is the determinism guard for the span
// tracer: running the fully loaded golden scenario with per-query
// tracing at full sampling and with tracing disabled must produce
// bit-identical message traces on every protocol. The trace context
// rides in frame header fields the golden hash does not cover, span
// IDs come from per-node counters, and sampling never touches the
// scenario PRNG — so recording spans must never influence delivery
// order, message content, or loss decisions.
func TestGoldenTraceTracingInert(t *testing.T) {
	for _, proto := range []Protocol{Centralized, Gnutella, FastTrack, DHT} {
		t.Run(proto.String(), func(t *testing.T) {
			traced := goldenConfig(proto, 42)
			traced.TraceSample = 1
			r1, err := RunScenario(traced)
			if err != nil {
				t.Fatal(err)
			}

			plain := goldenConfig(proto, 42)
			r2, err := RunScenario(plain)
			if err != nil {
				t.Fatal(err)
			}

			if r1.TraceLen == 0 {
				t.Fatal("empty trace")
			}
			if r1.TraceLen != r2.TraceLen {
				t.Fatalf("trace lengths differ with tracing on/off: %d vs %d", r1.TraceLen, r2.TraceLen)
			}
			if r1.TraceHash != r2.TraceHash {
				t.Fatalf("trace hashes differ with tracing on/off: %x vs %x", r1.TraceHash, r2.TraceHash)
			}
			if r1.Queries != r2.Queries {
				t.Fatalf("query counts differ: %d vs %d", r1.Queries, r2.Queries)
			}
			if len(r1.Samples) != len(r2.Samples) {
				t.Fatalf("sample counts differ: %d vs %d", len(r1.Samples), len(r2.Samples))
			}
			for i := range r1.Samples {
				if r1.Samples[i] != r2.Samples[i] {
					t.Fatalf("sample %d differs: %+v vs %+v", i, r1.Samples[i], r2.Samples[i])
				}
			}
			// The traced run must have captured slow-query exemplars;
			// the untraced run must have captured none.
			if len(r1.SlowTraces) == 0 {
				t.Error("traced run kept no slow-query traces")
			}
			if len(r2.SlowTraces) != 0 {
				t.Errorf("untraced run kept %d traces", len(r2.SlowTraces))
			}
			for _, tree := range r1.SlowTraces {
				if tree.Root.Span.Op != "query" || tree.Root.Span.Node != "driver" {
					t.Errorf("slow trace rooted at %s@%s, want query@driver",
						tree.Root.Span.Op, tree.Root.Span.Node)
				}
			}
		})
	}
}

// TestTraceSpanTreeCompleteness is the structural property test for
// assembled traces: on a small fully-traced cluster of each protocol,
// every driver query must yield exactly one complete span tree — the
// root is the driver span, every non-root span's parent is present in
// the same tree, no span ends after the root ends, and the protocol
// work under the root actually sent messages.
func TestTraceSpanTreeCompleteness(t *testing.T) {
	const peers, queries = 16, 12
	for _, proto := range []Protocol{Centralized, Gnutella, FastTrack, DHT} {
		t.Run(proto.String(), func(t *testing.T) {
			c, err := NewCluster(Config{
				Peers:       peers,
				Protocol:    proto,
				DHTK:        4,
				Seed:        7,
				Latency:     10 * time.Millisecond,
				Jitter:      5 * time.Millisecond,
				Clock:       dsim.NewVirtualClock(),
				TraceSample: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			comm, err := c.SeedCommunity(0, spec())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.DiscoverAndJoinAll("patterns", 7); err != nil {
				t.Fatal(err)
			}
			objs := corpus.DesignPatterns(20, 7).Objects
			if _, err := c.PublishRoundRobin(comm.ID, objs); err != nil {
				t.Fatal(err)
			}

			f := query.MustParse("(name=*)")
			for q := 0; q < queries; q++ {
				sp := c.DriverTracer().Root("query")
				sp.SetCommunity(comm.ID)
				c.Net.ResetPath()
				rs, err := c.SearchFrom(q%peers, comm.ID, f,
					p2p.SearchOptions{TTL: 7, Trace: sp.Context()})
				sp.SetErr(err)
				sp.FinishWithDuration(c.Net.MaxPathLatency())
				if err != nil {
					t.Fatalf("query %d: %v", q, err)
				}
				if len(rs) == 0 {
					t.Fatalf("query %d found nothing", q)
				}
			}

			trees := c.TraceCollector().Assemble(trace.Filter{})
			if len(trees) != queries {
				t.Fatalf("assembled %d trees, want %d", len(trees), queries)
			}
			for _, tree := range trees {
				if tree.Partial {
					t.Fatalf("trace %016x assembled partial", tree.TraceID())
				}
				if tree.Root.Span.Op != "query" || tree.Root.Span.Node != "driver" {
					t.Errorf("root = %s@%s, want query@driver", tree.Root.Span.Op, tree.Root.Span.Node)
				}
				if tree.Spans < 2 {
					t.Errorf("trace %016x holds only %d spans; protocol work missing", tree.TraceID(), tree.Spans)
				}
				ids := make(map[uint64]bool, tree.Spans)
				tree.Walk(func(n *trace.Node) { ids[n.Span.ID] = true })
				rootEnd := tree.Start().Add(tree.Duration())
				var msgs int64
				tree.Walk(func(n *trace.Node) {
					s := n.Span
					msgs += s.Msgs
					if !s.Root() && !ids[s.Parent] {
						t.Errorf("trace %016x: span %s@%s parent %x not in tree",
							tree.TraceID(), s.Op, s.Node, s.Parent)
					}
					if end := s.Start.Add(s.Duration); end.After(rootEnd) {
						t.Errorf("trace %016x: span %s@%s ends %s after root end",
							tree.TraceID(), s.Op, s.Node, end.Sub(rootEnd))
					}
				})
				if msgs == 0 {
					t.Errorf("trace %016x recorded zero messages across %d spans", tree.TraceID(), tree.Spans)
				}
			}
		})
	}
}
