package sim

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dht"
	"repro/internal/dsim"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/transport"
)

// ScenarioConfig describes one discrete-event experiment over a
// cluster: a query workload with optional churn (Poisson arrivals and
// departures), a flash-crowd burst, and super-peer failure/failover,
// all paced on a virtual clock. Every random choice derives from Seed,
// so a scenario is bit-for-bit reproducible: two runs produce the same
// message trace hash.
type ScenarioConfig struct {
	// Cluster is the deployment to drive. Its Clock and Trace fields
	// are overridden (scenarios always run on a fresh virtual clock
	// with tracing on).
	Cluster Config
	// Seed drives workload randomness; 0 borrows Cluster.Seed.
	Seed int64
	// Duration is the virtual length of the run.
	Duration time.Duration
	// QueryRate is the mean query arrival rate per virtual second.
	QueryRate float64
	// QueryTTL bounds flooding searches (0 = protocol default).
	QueryTTL int
	// InitialObjects seeds the community before the run.
	InitialObjects int
	// ArrivalRate / DepartureRate are mean peer churn rates per virtual
	// second (0 = no churn of that kind).
	ArrivalRate   float64
	DepartureRate float64
	// ObjectsPerArrival is how many fresh objects each arriving peer
	// publishes (default 1).
	ObjectsPerArrival int
	// BurstAt, if positive, triggers a flash crowd: BurstQueries
	// back-to-back queries for one popular filter at that instant.
	BurstAt      time.Duration
	BurstQueries int
	// FailSupersAt, if positive, kills FailSupers random live
	// super-peers at that instant (FastTrack only); orphaned leaves
	// rehome RehomeDelay later.
	FailSupersAt time.Duration
	FailSupers   int
	RehomeDelay  time.Duration
	// DHTRefreshEvery, if positive (DHT protocol only), schedules
	// periodic overlay maintenance: every interval each live peer runs
	// bucket repair and republishes its documents (Cluster.RefreshDHT)
	// — the DHT's rehome-equivalent, which is what lets recall recover
	// from departed record holders.
	DHTRefreshEvery time.Duration
	// TraceSample, when positive, turns on distributed per-query
	// tracing (Config.TraceSample): the driver roots a trace for that
	// fraction of generated queries and the result carries the
	// slowest assembled span trees as exemplars.
	TraceSample float64
	// SlowTraceCount bounds ScenarioResult.SlowTraces (default 5).
	SlowTraceCount int
}

// QuerySample is one measured query.
type QuerySample struct {
	// At is the virtual instant the query ran.
	At time.Duration
	// Recall is found/expected over live ground truth, or -1 when
	// nothing was expected (excluded from aggregates).
	Recall float64
	// Latency is the query's virtual completion time: the cumulative
	// link latency of the longest delivery chain it triggered.
	Latency time.Duration
	// Messages is the number of network messages the query cost.
	Messages int64
	// Results is the number of hits returned.
	Results int
}

// ScenarioResult aggregates one run.
type ScenarioResult struct {
	Protocol string
	Samples  []QuerySample
	Queries  int
	// Failed counts queries that returned an error (e.g. timeouts
	// under loss); they carry recall 0 in Samples.
	Failed     int
	Arrivals   int
	Departures int
	Rehomed    int
	// Refreshes counts DHT maintenance rounds (peer-refreshes summed
	// over all DHTRefreshEvery firings).
	Refreshes  int
	Messages   int64
	Dropped    int64
	TraceHash  uint64
	TraceLen   uint64
	FinalPeers int
	// Elapsed is the real (wall) time the run took — the number that
	// shows virtual hours costing real seconds.
	Elapsed time.Duration
	// SlowTraces holds the slowest assembled query traces (root
	// duration descending) when TraceSample was positive — the
	// exemplar waterfalls an operator reads to see where a slow query
	// spent its virtual time.
	SlowTraces []*trace.Tree
	// Load measures per-node load skew over the flash-crowd burst
	// window; nil unless Cluster.PeerLoad was on and a burst ran.
	Load *LoadSkew
	// Metrics is the final cluster-wide registry snapshot, so callers
	// can read protocol counters (dht.cache_stores, dht.cache_hits, …)
	// after the run without holding the cluster.
	Metrics *metrics.Snapshot
}

// LoadSkew is the per-node message-load distribution across live
// peers during the flash-crowd burst: every message delivered while
// the burst queries ran, bucketed by receiving peer. The hotspot
// headline is the load on the hot key's natural holders (HolderMax /
// HolderMean) against the network average — a flash crowd without
// relief concentrates there.
type LoadSkew struct {
	// Max and Mean are burst-window messages received by the
	// hottest live peer and by the average live peer.
	Max  int64
	Mean float64
	// Skew is Max/Mean (0 when the window saw no traffic).
	Skew float64
	// HolderMsgs are the burst-window message counts of the k live
	// peers whose DHT node IDs are XOR-closest to the bursted
	// community's key — the natural holders of the hot key — closest
	// first. Empty outside the DHT protocol.
	HolderMsgs []int64
	// HolderMax and HolderMean aggregate HolderMsgs: the load on the
	// busiest holder and on the average holder.
	HolderMax  int64
	HolderMean float64
}

// MsgsPerQuery is the mean network cost per query.
func (r *ScenarioResult) MsgsPerQuery() float64 {
	if r.Queries == 0 {
		return 0
	}
	total := int64(0)
	for _, s := range r.Samples {
		total += s.Messages
	}
	return float64(total) / float64(r.Queries)
}

// MeanRecall averages recall over samples with ground truth, within
// [from, to) virtual time; pass 0,0 for the whole run. NaN when the
// window holds no measured queries — absence of data must not read as
// perfect recall.
func (r *ScenarioResult) MeanRecall(from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for _, s := range r.Samples {
		if s.Recall < 0 {
			continue
		}
		if to > 0 && (s.At < from || s.At >= to) {
			continue
		}
		sum += s.Recall
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// LatencyPercentile returns the p-th percentile (0 < p <= 100) of
// virtual query latency.
func (r *ScenarioResult) LatencyPercentile(p float64) time.Duration {
	if len(r.Samples) == 0 {
		return 0
	}
	lats := make([]time.Duration, len(r.Samples))
	for i, s := range r.Samples {
		lats[i] = s.Latency
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(p/100*float64(len(lats))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx]
}

// docTruth is driver-side ground truth for one published object.
type docTruth struct {
	attrs query.Attrs
	// holders is the servent indices holding a copy — a tiny dense
	// slice (most objects have one publisher), not a map: the truth
	// table is consulted on every query, and at 10k+ peers the
	// per-doc map headers dominated its footprint.
	holders []int
}

// scenario is the running state of one RunScenario call.
type scenario struct {
	cfg     ScenarioConfig
	clk     *dsim.VirtualClock
	cluster *Cluster
	comm    *core.Community
	rng     *rand.Rand
	start   time.Time
	end     time.Time
	truth   map[index.DocID]*docTruth
	nextObj int64
	// objs is the scenario's corpus, grown on demand. Generation is
	// prefix-stable (same seed, larger n ⇒ same leading objects), so
	// regrowing never rewrites history.
	objs []corpus.Object
	res  *ScenarioResult
	err  error
	// msgs/bytes/dropped are registry handles resolved once at setup;
	// per-query accounting reads them before and after a search instead
	// of snapshotting the whole registry.
	msgs    *metrics.Counter
	bytes   *metrics.Counter
	dropped *metrics.Counter
}

// queryTemplates are the workload's filter mix. The first is the
// "popular" query flash crowds pile onto.
var queryTemplates = []string{
	"(classification=behavioral)",
	"(classification=creational)",
	"(classification=structural)",
	"(keywords=notification)",
	"(name=*)",
}

// RunScenario executes one scenario and returns its measurements. The
// entire run — churn, bursts, failures, 100k-query workloads — executes
// without any real waiting: virtual time jumps between events and
// protocol timeouts resolve synchronously.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = time.Minute
	}
	if cfg.QueryRate <= 0 {
		cfg.QueryRate = 1
	}
	if cfg.InitialObjects <= 0 {
		cfg.InitialObjects = 2 * cfg.Cluster.Peers
	}
	if cfg.ObjectsPerArrival <= 0 {
		cfg.ObjectsPerArrival = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = cfg.Cluster.Seed
	}
	started := time.Now()
	clk := dsim.NewVirtualClock()
	ccfg := cfg.Cluster
	ccfg.Clock = clk
	ccfg.Trace = true
	if cfg.TraceSample > 0 {
		ccfg.TraceSample = cfg.TraceSample
	}
	cluster, err := NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	s := &scenario{
		cfg:     cfg,
		clk:     clk,
		cluster: cluster,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		start:   clk.Now(),
		end:     clk.Now().Add(cfg.Duration),
		truth:   make(map[index.DocID]*docTruth),
		res:     &ScenarioResult{Protocol: cfg.Cluster.Protocol.String()},
		msgs:    cluster.Registry().Counter("transport.msgs_delivered"),
		bytes:   cluster.Registry().Counter("transport.bytes_delivered"),
		dropped: cluster.Registry().Counter("transport.msgs_dropped"),
	}
	if err := s.bootstrap(); err != nil {
		return nil, err
	}
	s.scheduleStreams()
	clk.RunUntil(s.end)
	if s.err != nil {
		return nil, s.err
	}
	s.res.Messages = s.msgs.Value()
	s.res.Dropped = s.dropped.Value()
	s.res.Metrics = cluster.Metrics()
	s.res.TraceHash = cluster.Net.TraceHash()
	s.res.TraceLen = cluster.Net.TraceLen()
	s.res.FinalPeers = len(cluster.LivePeers())
	s.res.Elapsed = time.Since(started)
	if cluster.Tracing() {
		n := cfg.SlowTraceCount
		if n <= 0 {
			n = 5
		}
		s.res.SlowTraces = cluster.TraceCollector().Slowest(trace.Filter{}, n)
	}
	return s.res, nil
}

// bootstrap creates the community everywhere and seeds the corpus
// round-robin across the initial peers.
func (s *scenario) bootstrap() error {
	comm, err := s.cluster.SeedCommunity(0, core.CommunitySpec{
		Name:      "patterns",
		Keywords:  "gof design software",
		SchemaSrc: corpus.PatternSchemaSrc,
	})
	if err != nil {
		return err
	}
	s.comm = comm
	if err := s.cluster.InstallCommunityAll(comm); err != nil {
		return err
	}
	live := s.cluster.LivePeers()
	for i := 0; i < s.cfg.InitialObjects; i++ {
		if err := s.publishFresh(live[i%len(live)]); err != nil {
			return err
		}
	}
	return nil
}

// publishFresh publishes one new corpus object on peer p and records
// its ground truth. Objects are drawn in sequence from one growing
// corpus — NOT generated one at a time with n=1, which would hand
// every peer the first catalogue entry and collapse the attribute
// distribution to a single classification (leaving the flash-crowd
// filter with an empty result set).
func (s *scenario) publishFresh(p int) error {
	for int(s.nextObj) >= len(s.objs) {
		n := 2 * len(s.objs)
		if n < s.cfg.InitialObjects {
			n = s.cfg.InitialObjects
		}
		if n < 64 {
			n = 64
		}
		s.objs = corpus.DesignPatterns(n, s.cfg.Seed).Objects
	}
	obj := s.objs[s.nextObj]
	s.nextObj++
	sv := s.cluster.Servents[p]
	id, err := sv.Publish(s.comm.ID, obj.Doc.Clone(), nil)
	if err != nil {
		return fmt.Errorf("sim: scenario publish on peer %d: %w", p, err)
	}
	doc, err := sv.Store().Get(id)
	if err != nil {
		return err
	}
	t := s.truth[id]
	if t == nil {
		t = &docTruth{attrs: doc.Attrs}
		s.truth[id] = t
	}
	if !slices.Contains(t.holders, p) {
		t.holders = append(t.holders, p)
	}
	return nil
}

// expected counts ground-truth documents matching f that at least one
// live peer holds.
func (s *scenario) expected(f query.Filter) map[index.DocID]bool {
	out := make(map[index.DocID]bool)
	for id, t := range s.truth {
		if !f.Match(t.attrs) {
			continue
		}
		for _, p := range t.holders {
			if s.cluster.Alive(p) {
				out[id] = true
				break
			}
		}
	}
	return out
}

// scheduleStreams starts the self-rescheduling Poisson event streams
// and the one-shot burst/failure events.
func (s *scenario) scheduleStreams() {
	s.schedulePoisson(s.cfg.QueryRate, func(time.Time) { s.runQuery(s.pickTemplate()) })
	s.schedulePoisson(s.cfg.ArrivalRate, func(time.Time) { s.runArrival() })
	s.schedulePoisson(s.cfg.DepartureRate, func(time.Time) { s.runDeparture() })
	if s.cfg.BurstAt > 0 && s.cfg.BurstQueries > 0 {
		s.clk.Schedule(s.cfg.BurstAt, func(time.Time) {
			// Snapshot per-peer load around the burst so the skew
			// measures exactly the flash crowd, not the background
			// workload before and after it.
			before := s.cluster.Net.PeerLoad()
			for i := 0; i < s.cfg.BurstQueries && s.err == nil; i++ {
				s.runQuery(queryTemplates[0])
			}
			if before != nil && s.err == nil {
				s.res.Load = s.measureLoadSkew(before, s.cluster.Net.PeerLoad())
			}
		})
	}
	if s.cfg.FailSupersAt > 0 && s.cfg.FailSupers > 0 {
		s.clk.Schedule(s.cfg.FailSupersAt, func(time.Time) { s.runSuperFailure() })
	}
	if s.cfg.DHTRefreshEvery > 0 && s.cfg.Cluster.Protocol == DHT {
		var fire func(time.Time)
		fire = func(now time.Time) {
			if s.err != nil || now.After(s.end) {
				return
			}
			moved, err := s.cluster.RefreshDHT()
			if err != nil {
				s.err = err
				return
			}
			s.res.Refreshes += moved
			s.clk.Schedule(s.cfg.DHTRefreshEvery, fire)
		}
		s.clk.Schedule(s.cfg.DHTRefreshEvery, fire)
	}
}

// schedulePoisson schedules fn with exponential inter-event gaps of
// mean 1/rate, each firing rescheduling the next until the horizon.
func (s *scenario) schedulePoisson(rate float64, fn func(time.Time)) {
	if rate <= 0 {
		return
	}
	var fire func(time.Time)
	next := func() time.Duration {
		return time.Duration(s.rng.ExpFloat64() / rate * float64(time.Second))
	}
	fire = func(now time.Time) {
		if s.err != nil || now.After(s.end) {
			return
		}
		fn(now)
		s.clk.Schedule(next(), fire)
	}
	s.clk.Schedule(next(), fire)
}

// measureLoadSkew turns two PeerLoad snapshots bracketing the burst
// into the per-node skew measurement: delta messages per live peer,
// the max and mean over them, and the deltas of the k live peers
// closest (by XOR distance of their DHT node IDs) to the bursted
// community's key — the hot key's natural holders.
func (s *scenario) measureLoadSkew(before, after map[transport.PeerID]int64) *LoadSkew {
	live := s.cluster.LivePeers()
	if len(live) == 0 {
		return nil
	}
	ls := &LoadSkew{}
	total := int64(0)
	delta := make(map[int]int64, len(live))
	for _, p := range live {
		id := s.cluster.Servents[p].PeerID()
		d := after[id] - before[id]
		delta[p] = d
		total += d
		if d > ls.Max {
			ls.Max = d
		}
	}
	ls.Mean = float64(total) / float64(len(live))
	if ls.Mean > 0 {
		ls.Skew = float64(ls.Max) / ls.Mean
	}
	if s.cfg.Cluster.Protocol == DHT {
		key := dht.KeyForCommunity(s.comm.ID)
		ranked := append([]int(nil), live...)
		sort.Slice(ranked, func(i, j int) bool {
			a := dht.NodeIDFor(s.cluster.Servents[ranked[i]].PeerID())
			b := dht.NodeIDFor(s.cluster.Servents[ranked[j]].PeerID())
			return dht.CompareDistance(a, b, key) < 0
		})
		k := s.cfg.Cluster.DHTK
		if k <= 0 {
			k = dht.DefaultK
		}
		if k > len(ranked) {
			k = len(ranked)
		}
		holderTotal := int64(0)
		for _, p := range ranked[:k] {
			d := delta[p]
			ls.HolderMsgs = append(ls.HolderMsgs, d)
			holderTotal += d
			if d > ls.HolderMax {
				ls.HolderMax = d
			}
		}
		if k > 0 {
			ls.HolderMean = float64(holderTotal) / float64(k)
		}
	}
	return ls
}

func (s *scenario) pickTemplate() string {
	return queryTemplates[s.rng.Intn(len(queryTemplates))]
}

// runQuery issues one search from a random live peer and samples its
// cost, virtual latency, and recall.
func (s *scenario) runQuery(filter string) {
	live := s.cluster.LivePeers()
	if len(live) == 0 {
		return
	}
	from := live[s.rng.Intn(len(live))]
	f := query.MustParse(filter)
	want := s.expected(f)

	// Root one trace per sampled query: the driver is the only tracer
	// with a nonzero sampling rate, so every span tree the collector
	// assembles descends from a query issued here.
	sp := s.cluster.DriverTracer().Root("query")
	sp.SetCommunity(s.comm.ID)
	sp.SetPeer(string(s.cluster.Servents[from].PeerID()))

	before, beforeBytes := s.msgs.Value(), s.bytes.Value()
	s.cluster.Net.ResetPath()
	rs, err := s.cluster.SearchFrom(from, s.comm.ID, f, p2p.SearchOptions{
		TTL:   s.cfg.QueryTTL,
		Trace: sp.Context(),
	})
	sample := QuerySample{
		At:       s.clk.Now().Sub(s.start),
		Latency:  s.cluster.Net.MaxPathLatency(),
		Messages: s.msgs.Value() - before,
		Results:  len(rs),
	}
	sp.AddMsgs(sample.Messages, s.bytes.Value()-beforeBytes)
	sp.SetErr(err)
	// The root's duration is the driver-measured virtual completion
	// latency — by construction it covers every child span, whose
	// starts are offset by the same per-chain virtual arrival times
	// MaxPathLatency is the maximum of.
	sp.FinishWithDuration(sample.Latency)
	found := 0
	seen := make(map[index.DocID]bool)
	for _, r := range rs {
		if want[r.DocID] && !seen[r.DocID] {
			seen[r.DocID] = true
			found++
		}
	}
	switch {
	case len(want) == 0:
		sample.Recall = -1
	default:
		sample.Recall = float64(found) / float64(len(want))
	}
	if err != nil {
		s.res.Failed++
		if len(want) > 0 {
			sample.Recall = 0
		}
	}
	s.res.Samples = append(s.res.Samples, sample)
	s.res.Queries++
}

// runArrival adds a peer, hands it the community, and has it publish.
func (s *scenario) runArrival() {
	i, err := s.cluster.AddPeer()
	if err != nil {
		s.err = err
		return
	}
	if err := s.cluster.Servents[i].AdoptCommunity(s.comm); err != nil {
		s.err = err
		return
	}
	for k := 0; k < s.cfg.ObjectsPerArrival; k++ {
		if err := s.publishFresh(i); err != nil {
			s.err = err
			return
		}
	}
	s.res.Arrivals++
}

// runDeparture kills a random live peer (keeping at least one).
func (s *scenario) runDeparture() {
	live := s.cluster.LivePeers()
	if len(live) < 2 {
		return
	}
	victim := live[s.rng.Intn(len(live))]
	s.cluster.KillPeer(victim)
	s.res.Departures++
}

// runSuperFailure kills the configured number of random live
// super-peers and schedules the orphans' rehoming. A no-op outside
// FastTrack (no super-peers to fail).
func (s *scenario) runSuperFailure() {
	live := s.cluster.liveSupers()
	if len(live) < 2 {
		return // nothing to fail, or failing would kill the overlay
	}
	kills := s.cfg.FailSupers
	if kills >= len(live) {
		kills = len(live) - 1 // keep the overlay alive
	}
	s.rng.Shuffle(len(live), func(a, b int) { live[a], live[b] = live[b], live[a] })
	for _, sp := range live[:kills] {
		s.cluster.FailSuperPeer(sp)
	}
	delay := s.cfg.RehomeDelay
	if delay <= 0 {
		delay = time.Second
	}
	s.clk.Schedule(delay, func(time.Time) {
		moved, err := s.cluster.RehomeOrphans()
		if err != nil {
			s.err = err
			return
		}
		s.res.Rehomed += moved
	})
}
