package sim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/transport"
)

// TestGnutellaLossyNetwork: with message loss, searches degrade to a
// subset of results but never error or hang — datagram semantics.
func TestGnutellaLossyNetwork(t *testing.T) {
	c, err := NewCluster(Config{Peers: 10, Protocol: Gnutella, Degree: 3, Seed: 13, DropRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, spec())
	if err != nil {
		t.Fatal(err)
	}
	// Joining may partially fail under loss; require at least the
	// creator.
	joined, _ := c.DiscoverAndJoinAll("patterns", 8)
	if joined < 1 {
		t.Fatalf("joined = %d", joined)
	}
	objs := corpus.DesignPatterns(10, 13).Objects
	published := 0
	for _, o := range objs {
		if _, err := c.Servents[0].Publish(comm.ID, o.Doc.Clone(), nil); err == nil {
			published++
		}
	}
	if published != 10 {
		t.Fatalf("published = %d (gnutella publish is local, must not fail)", published)
	}
	rs, err := c.SearchFrom(0, comm.ID, query.MustParse("(name=*)"), p2p.SearchOptions{TTL: 7})
	if err != nil {
		t.Fatalf("lossy search errored: %v", err)
	}
	// Local results at minimum.
	if len(rs) < 10 {
		t.Errorf("own objects missing under loss: %d", len(rs))
	}
}

// TestCentralizedLatencyAccounting: the virtual latency model sums per
// hop, letting experiments report simulated time without sleeping.
func TestCentralizedLatencyAccounting(t *testing.T) {
	net := transport.NewMemNetwork(transport.WithFixedLatency(10 * time.Millisecond))
	sep, err := net.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	p2p.NewIndexServer(sep)
	ep, err := net.Endpoint("p")
	if err != nil {
		t.Fatal(err)
	}
	st := index.NewStore()
	client := p2p.NewCentralizedClient(ep, "server", st)
	sv, err := core.NewServent(client, st)
	if err != nil {
		t.Fatal(err)
	}
	before := net.Metrics().Snapshot()
	if _, err := sv.Search(core.RootCommunityID, query.MatchAll{}, p2p.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	simLat := net.Metrics().Snapshot().Delta(before).Counter("transport.sim_latency_ns")
	// One search = request + reply = 2 hops = 20ms simulated.
	if simLat != int64(20*time.Millisecond) {
		t.Errorf("simulated latency = %v", time.Duration(simLat))
	}
}

// TestPropertyPublishSearchRoundTrip: any subset of the corpus
// published anywhere in the cluster is found exactly once by a
// MatchAll search from any peer.
func TestPropertyPublishSearchRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	objs := corpus.DesignPatterns(23, 3).Objects
	f := func(nPub, searcher uint8) bool {
		c, err := NewCluster(Config{Peers: 5, Protocol: Gnutella, Degree: 3, Seed: 17})
		if err != nil {
			return false
		}
		comm, err := c.SeedCommunity(0, spec())
		if err != nil {
			return false
		}
		if _, err := c.DiscoverAndJoinAll("patterns", 7); err != nil {
			return false
		}
		count := int(nPub%10) + 1
		if _, err := c.PublishRoundRobin(comm.ID, objs[:count]); err != nil {
			return false
		}
		rs, err := c.SearchFrom(int(searcher)%5, comm.ID, query.MatchAll{}, p2p.SearchOptions{TTL: 7})
		if err != nil {
			return false
		}
		// Each object found exactly once (one provider each).
		seen := map[string]int{}
		for _, r := range rs {
			seen[string(r.DocID)]++
		}
		if len(seen) != count {
			t.Logf("published %d, found %d distinct", count, len(seen))
			return false
		}
		for id, n := range seen {
			if n != 1 {
				t.Logf("doc %s found %d times", id, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
