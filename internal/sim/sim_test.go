package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/p2p"
	"repro/internal/query"
)

func spec() core.CommunitySpec {
	return core.CommunitySpec{
		Name:      "patterns",
		Keywords:  "gof design",
		SchemaSrc: corpus.PatternSchemaSrc,
	}
}

func TestCentralizedClusterEndToEnd(t *testing.T) {
	c, err := NewCluster(Config{Peers: 5, Protocol: Centralized, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, spec())
	if err != nil {
		t.Fatal(err)
	}
	joined, err := c.DiscoverAndJoinAll("patterns", 7)
	if err != nil {
		t.Fatal(err)
	}
	if joined != 5 {
		t.Fatalf("joined = %d, want 5", joined)
	}
	objs := corpus.DesignPatterns(23, 1).Objects
	ids, err := c.PublishRoundRobin(comm.ID, objs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 23 {
		t.Fatalf("published = %d", len(ids))
	}
	rs, err := c.SearchFrom(3, comm.ID, query.MustParse("(name=Observer)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Errorf("Observer hits = %d", len(rs))
	}
}

func TestGnutellaClusterEndToEnd(t *testing.T) {
	c, err := NewCluster(Config{Peers: 8, Protocol: Gnutella, Degree: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, spec())
	if err != nil {
		t.Fatal(err)
	}
	joined, err := c.DiscoverAndJoinAll("patterns", 8)
	if err != nil {
		t.Fatal(err)
	}
	if joined != 8 {
		t.Fatalf("joined = %d, want 8", joined)
	}
	objs := corpus.DesignPatterns(23, 1).Objects
	if _, err := c.PublishRoundRobin(comm.ID, objs); err != nil {
		t.Fatal(err)
	}
	rs, err := c.SearchFrom(5, comm.ID, query.MustParse("(classification=behavioral)"), p2p.SearchOptions{TTL: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Error("no behavioral patterns found over flood")
	}
}

func TestKillPeerCentralized(t *testing.T) {
	c, err := NewCluster(Config{Peers: 3, Protocol: Centralized, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, spec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DiscoverAndJoinAll("patterns", 7); err != nil {
		t.Fatal(err)
	}
	objs := corpus.DesignPatterns(3, 1).Objects
	if _, err := c.PublishRoundRobin(comm.ID, objs); err != nil {
		t.Fatal(err)
	}
	// Peer 1 held object index 1; kill it.
	c.KillPeer(1)
	rs, err := c.SearchFrom(0, comm.ID, query.MatchAll{}, p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Provider == "peer001" {
			t.Errorf("dead peer still listed as provider: %+v", r)
		}
	}
}

func TestKillPeerGnutellaUnreachable(t *testing.T) {
	c, err := NewCluster(Config{Peers: 4, Protocol: Gnutella, Degree: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, spec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DiscoverAndJoinAll("patterns", 8); err != nil {
		t.Fatal(err)
	}
	// Publish everything at peer 2, then kill it: objects vanish from
	// search results.
	obj := corpus.DesignPatterns(1, 1).Objects[0]
	if _, err := c.Servents[2].Publish(comm.ID, obj.Doc.Clone(), nil); err != nil {
		t.Fatal(err)
	}
	c.KillPeer(2)
	rs, err := c.SearchFrom(0, comm.ID, query.MatchAll{}, p2p.SearchOptions{TTL: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("dead peer's objects still found: %+v", rs)
	}
}

func TestStatsAccounting(t *testing.T) {
	c, err := NewCluster(Config{Peers: 6, Protocol: Gnutella, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SeedCommunity(0, spec()); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics()
	if _, err := c.SearchFrom(0, core.RootCommunityID, query.MatchAll{}, p2p.SearchOptions{TTL: 5}); err != nil {
		t.Fatal(err)
	}
	d := c.Metrics().Delta(before)
	if d.Counter("transport.msgs_delivered") == 0 {
		t.Error("no messages counted for flood search")
	}
	if d.Label("transport.msgs_by_type", p2p.MsgQuery) == 0 {
		t.Errorf("no query messages: %v", d.Labeled["transport.msgs_by_type"])
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{Peers: 0, Protocol: Centralized}); err == nil {
		t.Error("zero peers accepted")
	}
	if _, err := NewCluster(Config{Peers: 2}); err == nil {
		t.Error("missing protocol accepted")
	}
}

func TestDeterministicTopology(t *testing.T) {
	build := func() []int {
		c, err := NewCluster(Config{Peers: 10, Protocol: Gnutella, Degree: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		degs := make([]int, 10)
		for i := 0; i < 10; i++ {
			degs[i] = len(c.Node(i).Neighbors())
		}
		return degs
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("topology differs at %d: %v vs %v", i, a, b)
		}
	}
}
