package sim

import (
	"testing"
	"time"
)

// flashCrowdConfig is the reduced flash-crowd scenario behind the
// hotspot smoke gate: 100 DHT peers, a 200-query burst at one
// community filter. k=3 keeps routing tables a small fraction of the
// population (the regime where lookups are multi-hop and a cached
// copy can intercept them — see HotspotBenchConfig in internal/bench
// for the full-size E16 rationale).
func flashCrowdConfig(cache bool) ScenarioConfig {
	return ScenarioConfig{
		Cluster: Config{
			Peers:    100,
			Protocol: DHT,
			Degree:   4,
			Seed:     11,
			DHTK:     3,
			DHTAlpha: 2,
			DHTCache: cache,
			PeerLoad: true,
		},
		Duration:        time.Minute,
		QueryRate:       0.5,
		InitialObjects:  200,
		BurstAt:         30 * time.Second,
		BurstQueries:    200,
		DHTRefreshEvery: 10 * time.Second,
	}
}

// TestFlashCrowdCachingRelief is the hotspot smoke gate (`make
// hotspot-smoke`): on the same seed, enabling the caching STORE must
// at least halve the flash-crowd load on the hot key's busiest holder
// while keeping full recall.
func TestFlashCrowdCachingRelief(t *testing.T) {
	base, err := RunScenario(flashCrowdConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunScenario(flashCrowdConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if base.Load == nil || cached.Load == nil {
		t.Fatal("burst produced no load measurement")
	}
	if cached.Load.HolderMax*2 > base.Load.HolderMax {
		t.Errorf("caching relieved the hottest holder %d -> %d, want >= 2x",
			base.Load.HolderMax, cached.Load.HolderMax)
	}
	if got := base.MeanRecall(0, 0); got < 1 {
		t.Errorf("baseline recall = %v, want 1", got)
	}
	if got := cached.MeanRecall(0, 0); got < 1 {
		t.Errorf("cached recall = %v, want 1 (caching must not cost recall)", got)
	}
}

// TestFlashCrowdDeterminism: the cache-enabled flash crowd is fully
// reproducible — same seed, same trace, same per-holder load — so the
// E16 numbers are re-runnable figures, not samples.
func TestFlashCrowdDeterminism(t *testing.T) {
	r1, err := RunScenario(flashCrowdConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunScenario(flashCrowdConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if r1.TraceHash != r2.TraceHash || r1.TraceLen != r2.TraceLen {
		t.Errorf("trace not reproducible: (%x,%d) vs (%x,%d)",
			r1.TraceHash, r1.TraceLen, r2.TraceHash, r2.TraceLen)
	}
	if len(r1.Load.HolderMsgs) != len(r2.Load.HolderMsgs) {
		t.Fatalf("holder sets differ: %v vs %v", r1.Load.HolderMsgs, r2.Load.HolderMsgs)
	}
	for i := range r1.Load.HolderMsgs {
		if r1.Load.HolderMsgs[i] != r2.Load.HolderMsgs[i] {
			t.Errorf("holder load not reproducible at %d: %v vs %v",
				i, r1.Load.HolderMsgs, r2.Load.HolderMsgs)
		}
	}
}
