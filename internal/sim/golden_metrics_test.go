package sim

import (
	"testing"

	"repro/internal/metrics"
)

// TestGoldenTraceMetricsInert is the determinism guard for the
// telemetry registry: running the fully loaded golden scenario with a
// live shared registry and with the no-op Discard registry must
// produce bit-identical message traces on every protocol. Recording a
// metric must never influence delivery order, message content, or loss
// decisions.
func TestGoldenTraceMetricsInert(t *testing.T) {
	for _, proto := range []Protocol{Centralized, Gnutella, FastTrack, DHT} {
		t.Run(proto.String(), func(t *testing.T) {
			live := goldenConfig(proto, 42)
			live.Cluster.Metrics = metrics.NewRegistry()
			r1, err := RunScenario(live)
			if err != nil {
				t.Fatal(err)
			}

			noop := goldenConfig(proto, 42)
			noop.Cluster.Metrics = metrics.Discard()
			r2, err := RunScenario(noop)
			if err != nil {
				t.Fatal(err)
			}

			if r1.TraceLen == 0 {
				t.Fatal("empty trace")
			}
			if r1.TraceLen != r2.TraceLen {
				t.Fatalf("trace lengths differ with metrics on/off: %d vs %d", r1.TraceLen, r2.TraceLen)
			}
			if r1.TraceHash != r2.TraceHash {
				t.Fatalf("trace hashes differ with metrics on/off: %x vs %x", r1.TraceHash, r2.TraceHash)
			}

			// The live registry must actually have recorded the run.
			snap := live.Cluster.Metrics.Snapshot()
			if got := snap.Counter("transport.msgs_delivered"); got != r1.Messages {
				t.Errorf("registry msgs_delivered = %d, want %d", got, r1.Messages)
			}
			if got := snap.Counter("transport.msgs_dropped"); got != r1.Dropped {
				t.Errorf("registry msgs_dropped = %d, want %d", got, r1.Dropped)
			}
			if got := snap.Label("p2p.searches", proto.String()); got == 0 {
				t.Errorf("no %s searches recorded in the shared registry", proto)
			}
			// The discard run must have recorded nothing — but the driver
			// still counted queries off the trace-independent path.
			if r2.Queries == 0 {
				t.Error("discard run reported zero queries")
			}
			if n := len(metrics.Discard().Snapshot().Counters); n != 0 {
				t.Errorf("discard registry accumulated %d counters", n)
			}
		})
	}
}
