package sim

import (
	"testing"

	"repro/internal/p2p/codec"
)

// TestCodecEquivalence proves the binary wire codec is semantically
// identical to the JSON one: the same fully loaded golden scenario
// (churn, loss, jitter, flash crowd, failover) run under each codec
// must deliver the same number of messages, drop the same ones, and
// return the same results with the same recall on every query — on
// all four protocols. Only the payload bytes (and hence the trace
// hash) may differ. This is what lets the binary codec be the default
// without re-arguing protocol correctness: any divergence it
// introduced would surface here as a recall or message-count delta.
func TestCodecEquivalence(t *testing.T) {
	for _, proto := range []Protocol{Centralized, Gnutella, FastTrack, DHT} {
		t.Run(proto.String(), func(t *testing.T) {
			cfgBin := goldenConfig(proto, 42)
			cfgBin.Cluster.Codec = codec.Binary
			rBin, err := RunScenario(cfgBin)
			if err != nil {
				t.Fatal(err)
			}
			cfgJSON := goldenConfig(proto, 42)
			cfgJSON.Cluster.Codec = codec.JSON
			rJSON, err := RunScenario(cfgJSON)
			if err != nil {
				t.Fatal(err)
			}
			if rBin.TraceLen == 0 {
				t.Fatal("empty trace")
			}
			if rBin.TraceLen != rJSON.TraceLen {
				t.Fatalf("message counts differ: binary %d vs json %d", rBin.TraceLen, rJSON.TraceLen)
			}
			if rBin.Messages != rJSON.Messages || rBin.Dropped != rJSON.Dropped {
				t.Fatalf("delivery differs: binary %d/%d vs json %d/%d",
					rBin.Messages, rBin.Dropped, rJSON.Messages, rJSON.Dropped)
			}
			if rBin.Queries != rJSON.Queries || rBin.Failed != rJSON.Failed {
				t.Fatalf("workload differs: binary %d/%d vs json %d/%d",
					rBin.Queries, rBin.Failed, rJSON.Queries, rJSON.Failed)
			}
			if len(rBin.Samples) != len(rJSON.Samples) {
				t.Fatalf("sample counts differ: %d vs %d", len(rBin.Samples), len(rJSON.Samples))
			}
			for i := range rBin.Samples {
				a, b := rBin.Samples[i], rJSON.Samples[i]
				if a.Recall != b.Recall || a.Results != b.Results || a.Messages != b.Messages {
					t.Fatalf("sample %d differs: binary %+v vs json %+v", i, a, b)
				}
			}
			// The payloads themselves must differ — equal hashes would
			// mean the codec switch never took effect.
			if rBin.TraceHash == rJSON.TraceHash {
				t.Error("binary and JSON runs hashed identically; codec selection is not wired")
			}
		})
	}
}
