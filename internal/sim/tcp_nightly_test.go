package sim

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/dht"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/transport"
)

// These are the nightly socket-truth runs (make tcp-nightly): the
// E10/E14 churn scenarios scaled down and replayed over real TCP
// sockets instead of the in-memory transport. The deterministic sim
// proves protocol logic; this proves the same nodes survive real
// framing, dialing, concurrent read loops, and dead-peer errors.
// Gated behind UP2P_TCP_NIGHTLY=1: real sockets and real timeouts
// have no place in the tier-1 suite.

func tcpDoc(i int) *index.Document {
	return &index.Document{
		ID:          index.DocID(fmt.Sprintf("doc%03d", i)),
		CommunityID: "tcp",
		Title:       fmt.Sprintf("doc %d", i),
		XML:         "<doc/>",
		Attrs:       query.Attrs{"name": {fmt.Sprintf("doc%03d", i)}},
	}
}

// TestTCPNightlyGnutella is E10 scaled down over sockets: a flooding
// overlay of real TCP nodes, full-recall search, then a churn event
// (two peers die mid-run) that the flood must route around.
func TestTCPNightlyGnutella(t *testing.T) {
	if os.Getenv("UP2P_TCP_NIGHTLY") == "" {
		t.Skip("set UP2P_TCP_NIGHTLY=1 to run the TCP nightly suite")
	}
	const n = 10
	eps := make([]*transport.TCPNode, n)
	nodes := make([]*p2p.GnutellaNode, n)
	for i := range eps {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
		nodes[i] = p2p.NewGnutellaNode(ep, index.NewStore())
	}
	// Ring plus skip-2 chords: stays connected after any two failures.
	for i := range nodes {
		for _, j := range []int{(i + 1) % n, (i + 2) % n} {
			nodes[i].AddNeighbor(eps[j].ID())
			nodes[j].AddNeighbor(eps[i].ID())
		}
	}
	for i := range nodes {
		if err := nodes[i].Publish(tcpDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	search := func() int {
		rs, err := nodes[0].Search("tcp", query.MustParse("(name=*)"),
			p2p.SearchOptions{TTL: 7, Timeout: 3 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return len(rs)
	}
	if got := search(); got != n {
		t.Fatalf("pre-churn recall: %d/%d results", got, n)
	}
	// Churn: two non-origin peers die; their documents go with them.
	for _, i := range []int{4, 7} {
		nodes[i].Close()
	}
	if got := search(); got != n-2 {
		t.Fatalf("post-churn recall: %d/%d results", got, n-2)
	}
}

// TestTCPNightlyDHT is E14 scaled down over sockets: a Kademlia
// overlay of real TCP nodes — bootstrap joins, replicated publishes,
// full-recall lookups, then churn repaired by a refresh round.
func TestTCPNightlyDHT(t *testing.T) {
	if os.Getenv("UP2P_TCP_NIGHTLY") == "" {
		t.Skip("set UP2P_TCP_NIGHTLY=1 to run the TCP nightly suite")
	}
	const n = 12
	eps := make([]*transport.TCPNode, n)
	nodes := make([]*dht.Node, n)
	cfg := dht.Config{K: 8, RPCTimeout: 2 * time.Second}
	for i := range eps {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
		nodes[i] = dht.NewNode(ep, index.NewStore(), cfg)
	}
	for i := 1; i < n; i++ {
		nodes[i].Bootstrap(eps[0].ID())
	}
	for i := range nodes {
		if err := nodes[i].Publish(tcpDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	search := func(from int) int {
		rs, err := nodes[from].Search("tcp", query.MustParse("(name=*)"), p2p.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return len(rs)
	}
	if got := search(1); got != n {
		t.Fatalf("pre-churn recall: %d/%d results", got, n)
	}
	// Churn: two peers die, taking their replicas and their own
	// documents; a refresh round on the survivors re-replicates what
	// remains onto the new closest-k sets.
	dead := map[int]bool{5: true, 9: true}
	for i := range dead {
		nodes[i].Close()
	}
	for i := range nodes {
		if dead[i] {
			continue
		}
		if err := nodes[i].Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	want := n - len(dead)
	if got := search(1); got < want {
		t.Fatalf("post-refresh recall: %d/%d results", got, want)
	}
}
