package sim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
)

func TestScenarioBasicAllProtocols(t *testing.T) {
	for _, proto := range []Protocol{Centralized, Gnutella, FastTrack, DHT} {
		t.Run(proto.String(), func(t *testing.T) {
			r, err := RunScenario(ScenarioConfig{
				Cluster:   Config{Peers: 30, Protocol: proto, Degree: 4, Seed: 5, Latency: 20 * time.Millisecond, Jitter: 10 * time.Millisecond},
				Duration:  30 * time.Second,
				QueryRate: 2, ArrivalRate: 0.2, DepartureRate: 0.2,
				InitialObjects:  40,
				DHTRefreshEvery: 10 * time.Second, // ignored outside DHT
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Queries < 20 {
				t.Errorf("queries = %d, want a steady stream", r.Queries)
			}
			if r.Arrivals == 0 || r.Departures == 0 {
				t.Errorf("churn did not happen: arrivals=%d departures=%d", r.Arrivals, r.Departures)
			}
			if r.TraceHash == 0 || r.TraceLen == 0 {
				t.Error("trace hash not recorded")
			}
			if got := r.MeanRecall(0, 0); got < 0.5 {
				t.Errorf("mean recall = %v, unexpectedly low for mild churn", got)
			}
			if r.LatencyPercentile(95) <= 0 {
				t.Error("no virtual latency recorded despite latency model")
			}
			if r.LatencyPercentile(50) > r.LatencyPercentile(99) {
				t.Error("latency percentiles not monotone")
			}
			// The whole virtual 30s ran without real sleeping.
			if r.Elapsed > 10*time.Second {
				t.Errorf("scenario took %v real time", r.Elapsed)
			}
		})
	}
}

func TestScenarioFlashCrowd(t *testing.T) {
	base := ScenarioConfig{
		Cluster:        Config{Peers: 20, Protocol: Gnutella, Degree: 4, Seed: 9},
		Duration:       20 * time.Second,
		QueryRate:      1,
		InitialObjects: 30,
	}
	burst := base
	burst.BurstAt = 10 * time.Second
	burst.BurstQueries = 50
	r0, err := RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunScenario(burst)
	if err != nil {
		t.Fatal(err)
	}
	// The flash crowd piles 50 queries onto one virtual instant.
	atBurst := 0
	for _, s := range r1.Samples {
		if s.At == burst.BurstAt {
			atBurst++
		}
	}
	if atBurst < 50 {
		t.Errorf("only %d queries at the burst instant, want >= 50", atBurst)
	}
	if r1.Queries < r0.Queries {
		t.Errorf("burst run had fewer queries overall: %d vs %d", r1.Queries, r0.Queries)
	}
}

func TestScenarioSuperPeerFailover(t *testing.T) {
	r, err := RunScenario(ScenarioConfig{
		Cluster:        Config{Peers: 48, Protocol: FastTrack, SuperPeers: 6, Seed: 12},
		Duration:       60 * time.Second,
		QueryRate:      4,
		InitialObjects: 60,
		FailSupersAt:   20 * time.Second,
		FailSupers:     2,
		RehomeDelay:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rehomed == 0 {
		t.Fatal("no leaves rehomed after super-peer failure")
	}
	before := r.MeanRecall(0, 20*time.Second)
	during := r.MeanRecall(20*time.Second, 30*time.Second)
	after := r.MeanRecall(31*time.Second, 60*time.Second)
	if before < 0.99 {
		t.Errorf("recall before failure = %v, want ~1", before)
	}
	if during >= before {
		t.Errorf("recall during outage (%v) did not dip below steady state (%v)", during, before)
	}
	if after <= during {
		t.Errorf("recall after rehoming (%v) did not recover above outage (%v)", after, during)
	}
}

// TestScenarioSuperFailureIgnoredOutsideFastTrack: configuring
// super-peer failure on a protocol without super-peers must be a
// harmless no-op, not a crash.
func TestScenarioSuperFailureIgnoredOutsideFastTrack(t *testing.T) {
	r, err := RunScenario(ScenarioConfig{
		Cluster:        Config{Peers: 10, Protocol: Gnutella, Degree: 3, Seed: 4},
		Duration:       20 * time.Second,
		QueryRate:      1,
		InitialObjects: 10,
		FailSupersAt:   5 * time.Second,
		FailSupers:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rehomed != 0 {
		t.Errorf("rehomed = %d on gnutella", r.Rehomed)
	}
}

// TestScenarioChurn1000Peers is the scale acceptance gate: a
// 1000-peer Gnutella churn scenario must finish in under 10 seconds of
// real time on one CPU and reproduce its trace hash exactly on a
// second run — the property that makes paper-scale sweeps (E10)
// routine instead of overnight.
func TestScenarioChurn1000Peers(t *testing.T) {
	if raceEnabled {
		t.Skip("timing gate; race instrumentation skews it")
	}
	if testing.Short() {
		t.Skip("heavyweight scale test")
	}
	cfg := ScenarioConfig{
		Cluster: Config{
			Peers:    1000,
			Protocol: Gnutella,
			Degree:   4,
			Seed:     11,
			Latency:  30 * time.Millisecond,
			Jitter:   20 * time.Millisecond,
		},
		Duration:       60 * time.Second,
		QueryRate:      2,
		InitialObjects: 1000,
		ArrivalRate:    1,
		DepartureRate:  1,
	}
	r1, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed > 10*time.Second || r2.Elapsed > 10*time.Second {
		t.Errorf("1000-peer churn scenario too slow: %v, %v (want < 10s)", r1.Elapsed, r2.Elapsed)
	}
	if r1.TraceHash != r2.TraceHash || r1.TraceLen != r2.TraceLen {
		t.Errorf("trace not reproducible at scale: (%x,%d) vs (%x,%d)",
			r1.TraceHash, r1.TraceLen, r2.TraceHash, r2.TraceLen)
	}
	if r1.Arrivals < 30 || r1.Departures < 30 {
		t.Errorf("churn too thin: %d arrivals, %d departures", r1.Arrivals, r1.Departures)
	}
	// Flooding is horizon-bounded: with a diverse corpus (every
	// scenario object a distinct pattern, so each query's want-set is
	// a scattered subset of peers) a degree-4 TTL-bounded flood over
	// 1000 churning peers misses the holders beyond its horizon.
	// ~0.80 is the honest flooding number at this scale; the gate
	// guards against collapse, not against the horizon.
	if got := r1.MeanRecall(0, 0); got < 0.7 {
		t.Errorf("recall = %v at scale", got)
	}
}

// TestPropertyChurnRecallEquivalence: after killing a set of FastTrack
// leaves, a search sees exactly the documents that a static cluster of
// only the survivors would have indexed — churn leaves no ghosts
// behind and loses nothing it shouldn't (content-addressed DocIDs make
// the two runs comparable).
func TestPropertyChurnRecallEquivalence(t *testing.T) {
	objs := 12
	f := func(seed int64, killMask uint8) bool {
		const peers = 8
		searchDocs := func(publishTo func(i int) bool, kill []int) (map[index.DocID]bool, error) {
			c, err := NewCluster(Config{Peers: peers, Protocol: FastTrack, SuperPeers: 3, Seed: 77})
			if err != nil {
				return nil, err
			}
			comm, err := c.SeedCommunity(0, spec())
			if err != nil {
				return nil, err
			}
			if err := c.InstallCommunityAll(comm); err != nil {
				return nil, err
			}
			corp := corpus.DesignPatterns(objs, seed).Objects
			for i := 0; i < objs; i++ {
				p := i % peers
				if !publishTo(p) {
					continue
				}
				if _, err := c.Servents[p].Publish(comm.ID, corp[i].Doc.Clone(), nil); err != nil {
					return nil, err
				}
			}
			for _, k := range kill {
				c.KillPeer(k)
			}
			searcher := 0
			for _, i := range c.LivePeers() {
				searcher = i
				break
			}
			rs, err := c.SearchFrom(searcher, comm.ID, query.MatchAll{}, p2p.SearchOptions{})
			if err != nil {
				return nil, err
			}
			out := make(map[index.DocID]bool)
			for _, r := range rs {
				out[r.DocID] = true
			}
			return out, nil
		}
		// Never kill peer 0 (it searches in both runs).
		var kills []int
		dead := map[int]bool{}
		for p := 1; p < peers; p++ {
			if killMask&(1<<p) != 0 {
				kills = append(kills, p)
				dead[p] = true
			}
		}
		churned, err := searchDocs(func(int) bool { return true }, kills)
		if err != nil {
			t.Log(err)
			return false
		}
		static, err := searchDocs(func(p int) bool { return !dead[p] }, nil)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(churned) != len(static) {
			t.Logf("kills=%v: churned=%d static=%d", kills, len(churned), len(static))
			return false
		}
		for id := range static {
			if !churned[id] {
				t.Logf("kills=%v: doc %s missing after churn", kills, id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
