//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in;
// timing-sensitive tests skip under its ~10x slowdown.
const raceEnabled = true
