package sim

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/p2p"
	"repro/internal/query"
)

func TestFastTrackClusterEndToEnd(t *testing.T) {
	c, err := NewCluster(Config{Peers: 12, Protocol: FastTrack, SuperPeers: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, spec())
	if err != nil {
		t.Fatal(err)
	}
	joined, err := c.DiscoverAndJoinAll("patterns", 7)
	if err != nil {
		t.Fatal(err)
	}
	if joined != 12 {
		t.Fatalf("joined = %d, want 12", joined)
	}
	objs := corpus.DesignPatterns(23, 1).Objects
	if _, err := c.PublishRoundRobin(comm.ID, objs); err != nil {
		t.Fatal(err)
	}
	// Every peer can find an object held by any other peer's leaf.
	rs, err := c.SearchFrom(11, comm.ID, query.MustParse("(name=Observer)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Errorf("Observer hits = %d", len(rs))
	}
	// Retrieval works leaf to leaf.
	if _, err := c.Servents[11].Retrieve(rs[0].DocID, rs[0].Provider); err != nil {
		t.Errorf("retrieve: %v", err)
	}
}

func TestFastTrackCostBetweenExtremes(t *testing.T) {
	// The hybrid's message cost per query should sit between
	// centralized (2) and full Gnutella flooding at equal N.
	const peers = 32
	cost := func(proto Protocol) float64 {
		c, err := NewCluster(Config{Peers: peers, Protocol: proto, Degree: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		comm, err := c.SeedCommunity(0, spec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DiscoverAndJoinAll("patterns", peers); err != nil {
			t.Fatal(err)
		}
		if _, err := c.PublishRoundRobin(comm.ID, corpus.DesignPatterns(23, 7).Objects); err != nil {
			t.Fatal(err)
		}
		before := c.Metrics()
		const q = 5
		for i := 0; i < q; i++ {
			if _, err := c.SearchFrom(i, comm.ID, query.MustParse("(classification=behavioral)"), p2p.SearchOptions{TTL: 7}); err != nil {
				t.Fatal(err)
			}
		}
		return float64(c.Metrics().Delta(before).Counter("transport.msgs_delivered")) / q
	}
	central := cost(Centralized)
	ft := cost(FastTrack)
	gnutella := cost(Gnutella)
	if !(central < ft && ft < gnutella) {
		t.Errorf("cost ordering violated: centralized=%v fasttrack=%v gnutella=%v", central, ft, gnutella)
	}
}

func TestFastTrackKillLeaf(t *testing.T) {
	c, err := NewCluster(Config{Peers: 6, Protocol: FastTrack, SuperPeers: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, spec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DiscoverAndJoinAll("patterns", 7); err != nil {
		t.Fatal(err)
	}
	obj := corpus.DesignPatterns(1, 8).Objects[0]
	if _, err := c.Servents[3].Publish(comm.ID, obj.Doc.Clone(), nil); err != nil {
		t.Fatal(err)
	}
	c.KillPeer(3)
	rs, err := c.SearchFrom(0, comm.ID, query.MustParse("(name=*)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("dead leaf's objects still indexed: %+v", rs)
	}
}
