// Package sim assembles multi-peer U-P2P deployments on the in-memory
// network for the repeatable experiments of EXPERIMENTS.md: N servents
// over either protocol, seeded overlay topologies, workload drivers
// and message accounting.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dht"
	"repro/internal/dsim"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/p2p"
	"repro/internal/p2p/codec"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/xmldoc"
)

// Protocol selects the network layer under the servents.
type Protocol int

// Supported protocols: the three named in the paper's Fig. 3
// enumeration plus the structured overlay the paper leaves
// unexplored.
const (
	Centralized Protocol = iota + 1
	Gnutella
	// FastTrack is the super-peer hybrid: leaves register with a
	// super-peer; queries flood the (small) super-peer overlay.
	FastTrack
	// DHT is the Kademlia-style structured overlay (internal/dht):
	// publications replicate onto the k nodes closest to their
	// community key and searches route there in O(log n) hops.
	DHT
)

func (p Protocol) String() string {
	switch p {
	case Centralized:
		return "centralized"
	case Gnutella:
		return "gnutella"
	case FastTrack:
		return "fasttrack"
	case DHT:
		return "dht"
	default:
		return "protocol?"
	}
}

// Config describes a cluster to build.
type Config struct {
	// Peers is the number of servents.
	Peers int
	// Protocol selects centralized vs gnutella.
	Protocol Protocol
	// Degree is the Gnutella overlay degree (ring + random chords);
	// ignored for centralized. Default 4.
	Degree int
	// SuperPeers is the number of FastTrack super-peers (default
	// max(2, Peers/8)); ignored for other protocols.
	SuperPeers int
	// DHTK is the DHT bucket capacity / replication factor and
	// DHTAlpha the lookup parallelism (0 = dht package defaults);
	// ignored for other protocols.
	DHTK     int
	DHTAlpha int
	// DHTRecordTTL bounds how long DHT record holders keep an
	// unrefreshed record (0 = dht package default).
	DHTRecordTTL time.Duration
	// DHTCache enables the DHT's caching STORE + value-terminating
	// FIND_VALUE (dht.Config.CacheRecords). Off by default so existing
	// baselines keep their exact message traces.
	DHTCache bool
	// DHTSplitThreshold / DHTSplitFanout configure hot-key splitting
	// (dht.Config.SplitThreshold/SplitFanout; 0 disables / package
	// default), and DHTMaxRecordsPerKey caps per-key holder state.
	DHTSplitThreshold   int
	DHTSplitFanout      int
	DHTMaxRecordsPerKey int
	// PeerLoad enables per-receiver message counting on the network
	// (transport.WithPeerLoad) — what hotspot experiments read per-node
	// load skew from.
	PeerLoad bool
	// Seed drives topology and fault randomness.
	Seed int64
	// DropRate is the per-message loss probability.
	DropRate float64
	// Latency is the per-hop virtual latency.
	Latency time.Duration
	// Jitter spreads per-link latency by ±Jitter around Latency,
	// deterministically per link (dsim.LinkLatency).
	Jitter time.Duration
	// Clock paces protocol timeouts and scenario events; nil means the
	// wall clock. Scenarios install a dsim.VirtualClock so runs never
	// wait in real time.
	Clock dsim.Clock
	// Trace enables message-trace hashing on the network (golden-trace
	// determinism tests).
	Trace bool
	// TraceSample enables distributed per-query tracing at the given
	// head-sampling rate in [0,1]: the scenario driver roots a trace
	// for that fraction of generated queries, and every node records
	// the child spans those queries touch into a small per-node ring.
	// Zero (the default) leaves every tracer nil — the zero-allocation
	// disabled state. Either way the golden trace hash is unaffected:
	// the trace context rides in frame header fields the hash does not
	// cover, and span IDs/sampling never touch the scenario PRNG.
	TraceSample float64
	// Metrics is the registry the whole cluster records into — the
	// network, every peer's protocol node, and every store share it, so
	// one snapshot covers the deployment. Nil means a fresh private
	// registry; pass metrics.Discard() to turn telemetry off.
	Metrics *metrics.Registry
	// Codec selects the wire codec every node encodes frames with
	// (nil = codec.Default, the length-lean binary format). Pass
	// codec.JSON to run the same deployment on the JSON wire format —
	// the codec-equivalence tests prove recall and message counts are
	// identical either way.
	Codec codec.Codec
	// DHTRepublishAlways disables the DHT's adaptive republish check
	// (dht.Config.RepublishAlways): every Refresh re-STOREs every key.
	// The baseline arm of the E14 adaptive-republish comparison.
	DHTRepublishAlways bool
}

// Cluster is a running multi-peer deployment.
type Cluster struct {
	// Net is the underlying instrumented network.
	Net *transport.MemNetwork
	// Server is the central index (nil under Gnutella).
	Server *p2p.IndexServer
	// Servents are the peers, index-addressable. Slots of departed
	// peers stay occupied (Alive reports liveness); arrivals append.
	Servents []*core.Servent

	cfg    Config
	clock  dsim.Clock
	cdc    codec.Codec
	nodes  []*p2p.GnutellaNode // parallel to Servents under Gnutella
	dhts   []*dht.Node         // parallel to Servents under DHT
	supers []*p2p.SuperPeer    // FastTrack super-peer overlay
	// leafSuper maps servent index to its super-peer (FastTrack);
	// -1 when the super failed and the leaf has not rehomed yet.
	leafSuper  []int
	alive      []bool
	superAlive []bool
	rng        *rand.Rand
	reg        *metrics.Registry
	collector  *trace.Collector
	driverTr   *trace.Tracer
}

// simTraceRing bounds each node's span ring in simulations: big
// enough to hold the spans of the slowest queries a scenario keeps,
// small enough that thousand-peer clusters stay cheap.
const simTraceRing = 512

// NewCluster builds and wires a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Peers <= 0 {
		return nil, fmt.Errorf("sim: need at least one peer")
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 4
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	opts := []transport.MemOption{transport.WithSeed(cfg.Seed), transport.WithMetrics(reg)}
	if cfg.DropRate > 0 {
		opts = append(opts, transport.WithDropRate(cfg.DropRate))
	}
	if cfg.Jitter > 0 {
		opts = append(opts, transport.WithLatencyModel(dsim.LinkLatency(cfg.Seed, cfg.Latency, cfg.Jitter)))
	} else if cfg.Latency > 0 {
		opts = append(opts, transport.WithFixedLatency(cfg.Latency))
	}
	if cfg.Trace {
		opts = append(opts, transport.WithTrace())
	}
	if cfg.PeerLoad {
		opts = append(opts, transport.WithPeerLoad())
	}
	net := transport.NewMemNetwork(opts...)
	clk := cfg.Clock
	if clk == nil {
		clk = dsim.Wall
	}
	cdc := cfg.Codec
	if cdc == nil {
		cdc = codec.Default
	}
	c := &Cluster{Net: net, cfg: cfg, clock: clk, cdc: cdc, rng: rand.New(rand.NewSource(cfg.Seed)), reg: reg}
	if cfg.TraceSample > 0 {
		// Per-node tracers are created with sampling 0: only the
		// scenario driver roots traces, so every recorded span tree
		// descends from a driver-issued query and the root's duration
		// is the driver-measured query latency.
		c.collector = trace.NewCollector()
		c.driverTr = trace.New("driver", cfg.Protocol.String(),
			trace.WithClock(clk), trace.WithSampling(cfg.TraceSample))
		c.collector.Attach(c.driverTr)
	}

	switch cfg.Protocol {
	case Centralized:
		sep, err := net.Endpoint("server")
		if err != nil {
			return nil, err
		}
		c.Server = p2p.NewIndexServerOn(sep, index.NewStore(index.WithMetrics(reg)))
		c.Server.SetCodec(cdc)
		c.Server.SetTracer(c.nodeTracer("server"))
	case Gnutella, DHT:
		// Peers carry the whole overlay; nothing global to set up.
	case FastTrack:
		superN := cfg.SuperPeers
		if superN <= 0 {
			superN = cfg.Peers / 8
			if superN < 2 {
				superN = 2
			}
		}
		for i := 0; i < superN; i++ {
			ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("super%03d", i)))
			if err != nil {
				return nil, err
			}
			sp := p2p.NewSuperPeer(ep)
			sp.SetCodec(cdc)
			sp.SetTracer(c.nodeTracer(ep.ID()))
			c.supers = append(c.supers, sp)
			c.superAlive = append(c.superAlive, true)
		}
		// Full mesh: super-peer counts are small (N/8), and a mesh keeps
		// the overlay connected under super-peer failures, so failover
		// recovery is limited by re-registration, not by topology luck.
		for i := 0; i < superN; i++ {
			for j := 0; j < superN; j++ {
				if i != j {
					c.supers[i].AddNeighbor(c.supers[j].PeerID())
				}
			}
		}
	default:
		return nil, fmt.Errorf("sim: unknown protocol %v", cfg.Protocol)
	}
	for i := 0; i < cfg.Peers; i++ {
		if _, err := c.newPeer(); err != nil {
			return nil, err
		}
	}
	switch cfg.Protocol {
	case Gnutella:
		c.wireOverlay(cfg.Degree)
	case DHT:
		// Kademlia join: everyone bootstraps off peer 0 and looks up
		// its own ID, populating tables along the way. Fixed iteration
		// order keeps construction traffic deterministic.
		for i := 1; i < len(c.dhts); i++ {
			c.dhts[i].Bootstrap(c.dhts[0].PeerID())
		}
	}
	return c, nil
}

// newPeer attaches one servent of the cluster's protocol, returning
// its index. It does not wire Gnutella overlay links.
func (c *Cluster) newPeer() (int, error) {
	i := len(c.Servents)
	ep, err := c.Net.Endpoint(peerID(i))
	if err != nil {
		return -1, err
	}
	st := index.NewStore(index.WithMetrics(c.reg))
	var netw p2p.Network
	switch c.cfg.Protocol {
	case Centralized:
		client := p2p.NewCentralizedClient(ep, "server", st)
		client.SetCodec(c.cdc)
		client.SetClock(c.clock)
		client.SetMetrics(c.reg)
		client.SetTracer(c.nodeTracer(ep.ID()))
		netw = client
	case Gnutella:
		node := p2p.NewGnutellaNode(ep, st)
		node.SetCodec(c.cdc)
		node.SetClock(c.clock)
		node.SetMetrics(c.reg)
		node.SetTracer(c.nodeTracer(ep.ID()))
		c.nodes = append(c.nodes, node)
		netw = node
	case DHT:
		node := dht.NewNode(ep, st, dht.Config{
			K:                c.cfg.DHTK,
			Alpha:            c.cfg.DHTAlpha,
			RecordTTL:        c.cfg.DHTRecordTTL,
			CacheRecords:     c.cfg.DHTCache,
			SplitThreshold:   c.cfg.DHTSplitThreshold,
			SplitFanout:      c.cfg.DHTSplitFanout,
			MaxRecordsPerKey: c.cfg.DHTMaxRecordsPerKey,
			RepublishAlways:  c.cfg.DHTRepublishAlways,
		})
		node.SetCodec(c.cdc)
		node.SetClock(c.clock)
		node.SetMetrics(c.reg)
		node.SetTracer(c.nodeTracer(ep.ID()))
		c.dhts = append(c.dhts, node)
		netw = node
	case FastTrack:
		var superIdx int
		if i < c.cfg.Peers {
			// Construction: round-robin, the historical placement.
			superIdx = i % len(c.supers)
		} else {
			// Churn arrival: a random live super-peer.
			live := c.liveSupers()
			if len(live) == 0 {
				return -1, fmt.Errorf("sim: no live super-peer for arrival")
			}
			superIdx = live[c.rng.Intn(len(live))]
		}
		leaf := p2p.NewFastTrackLeaf(ep, c.supers[superIdx].PeerID(), st)
		leaf.SetCodec(c.cdc)
		leaf.SetClock(c.clock)
		leaf.SetMetrics(c.reg)
		leaf.SetTracer(c.nodeTracer(ep.ID()))
		c.leafSuper = append(c.leafSuper, superIdx)
		netw = leaf
	default:
		return -1, fmt.Errorf("sim: unknown protocol %v", c.cfg.Protocol)
	}
	sv, err := core.NewServent(netw, st)
	if err != nil {
		return -1, err
	}
	c.Servents = append(c.Servents, sv)
	c.alive = append(c.alive, true)
	return i, nil
}

// AddPeer attaches a new servent mid-run — a churn arrival. Under
// Gnutella the newcomer links to Degree random live peers (its
// bootstrap neighbors); under FastTrack it registers with a random
// live super-peer; under DHT it runs the Kademlia join off a random
// live peer. The caller typically follows with AdoptCommunity and
// publication on the returned servent.
func (c *Cluster) AddPeer() (int, error) {
	i, err := c.newPeer()
	if err != nil {
		return -1, err
	}
	switch c.cfg.Protocol {
	case Gnutella:
		var candidates []int
		for j := range c.nodes {
			if j != i && c.alive[j] && c.nodes[j] != nil {
				candidates = append(candidates, j)
			}
		}
		c.rng.Shuffle(len(candidates), func(a, b int) {
			candidates[a], candidates[b] = candidates[b], candidates[a]
		})
		links := c.cfg.Degree
		if links > len(candidates) {
			links = len(candidates)
		}
		for _, j := range candidates[:links] {
			c.nodes[i].AddNeighbor(c.nodes[j].PeerID())
			c.nodes[j].AddNeighbor(c.nodes[i].PeerID())
		}
	case DHT:
		var candidates []int
		for j := range c.dhts {
			if j != i && c.alive[j] && c.dhts[j] != nil {
				candidates = append(candidates, j)
			}
		}
		if len(candidates) > 0 {
			boot := candidates[c.rng.Intn(len(candidates))]
			c.dhts[i].Bootstrap(c.dhts[boot].PeerID())
		}
	}
	return i, nil
}

// Alive reports whether servent i is still attached.
func (c *Cluster) Alive(i int) bool { return c.alive[i] }

// LivePeers returns the indexes of live servents, ascending.
func (c *Cluster) LivePeers() []int {
	var out []int
	for i, a := range c.alive {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// Clock returns the clock the cluster's protocol layers run on.
func (c *Cluster) Clock() dsim.Clock { return c.clock }

// nodeTracer mints one node's span recorder and attaches it to the
// cluster collector; nil (tracing disabled) when TraceSample is 0.
func (c *Cluster) nodeTracer(id transport.PeerID) *trace.Tracer {
	if c.collector == nil {
		return nil
	}
	t := trace.New(string(id), c.cfg.Protocol.String(),
		trace.WithClock(c.clock), trace.WithRingSize(simTraceRing), trace.WithSampling(0))
	c.collector.Attach(t)
	return t
}

// Tracing reports whether per-query tracing is enabled.
func (c *Cluster) Tracing() bool { return c.collector != nil }

// TraceCollector returns the cluster's span collector (nil when
// tracing is disabled).
func (c *Cluster) TraceCollector() *trace.Collector { return c.collector }

// DriverTracer returns the tracer scenario drivers root query traces
// on (nil when tracing is disabled).
func (c *Cluster) DriverTracer() *trace.Tracer { return c.driverTr }

// NumSuperPeers returns the super-peer count (0 outside FastTrack).
func (c *Cluster) NumSuperPeers() int { return len(c.supers) }

// SuperAlive reports whether super-peer s is still up.
func (c *Cluster) SuperAlive(s int) bool { return c.superAlive[s] }

func (c *Cluster) liveSupers() []int {
	var out []int
	for s, a := range c.superAlive {
		if a {
			out = append(out, s)
		}
	}
	return out
}

// FailSuperPeer kills super-peer s: its endpoint closes, surviving
// super-peers unlink it, and its leaves are orphaned — unable to
// search or be found — until RehomeOrphans runs. The gap between the
// two calls is the failure-detection delay, which scenarios model on
// the virtual clock.
func (c *Cluster) FailSuperPeer(s int) {
	if s < 0 || s >= len(c.supers) || !c.superAlive[s] {
		return
	}
	c.superAlive[s] = false
	dead := c.supers[s]
	_ = dead.Close()
	for j, other := range c.supers {
		if j != s && c.superAlive[j] {
			other.RemoveNeighbor(dead.PeerID())
		}
	}
	for i, sp := range c.leafSuper {
		if sp == s {
			c.leafSuper[i] = -1
		}
	}
}

// RehomeOrphans re-attaches every live leaf whose super-peer failed to
// a random live super-peer, re-registering its documents (FastTrack's
// leaf re-registration). It returns how many leaves moved.
func (c *Cluster) RehomeOrphans() (int, error) {
	if c.cfg.Protocol != FastTrack {
		return 0, nil
	}
	live := c.liveSupers()
	if len(live) == 0 {
		return 0, fmt.Errorf("sim: no live super-peers to rehome onto")
	}
	moved := 0
	for i, sp := range c.leafSuper {
		if sp != -1 || !c.alive[i] {
			continue
		}
		leaf, ok := c.Servents[i].Network().(*p2p.FastTrackLeaf)
		if !ok {
			continue
		}
		target := live[c.rng.Intn(len(live))]
		if err := leaf.Rehome(c.supers[target].PeerID()); err != nil {
			return moved, fmt.Errorf("sim: rehome peer %d: %w", i, err)
		}
		c.leafSuper[i] = target
		moved++
	}
	return moved, nil
}

// InstallCommunityAll installs comm on every live servent directly,
// without discovery traffic: the out-of-band bootstrap used by large
// scenarios where per-peer discovery floods would swamp the measured
// workload. Peers that already joined are skipped.
func (c *Cluster) InstallCommunityAll(comm *core.Community) error {
	for i, sv := range c.Servents {
		if !c.alive[i] || sv.IsJoined(comm.ID) {
			continue
		}
		if err := sv.AdoptCommunity(comm); err != nil {
			return fmt.Errorf("sim: install community on peer %d: %w", i, err)
		}
	}
	return nil
}

func peerID(i int) transport.PeerID {
	return transport.PeerID(fmt.Sprintf("peer%03d", i))
}

// wireOverlay links a ring plus random chords for diameter reduction:
// deterministic under the cluster seed.
func (c *Cluster) wireOverlay(degree int) {
	n := len(c.nodes)
	if n < 2 {
		return
	}
	link := func(a, b int) {
		if a == b {
			return
		}
		c.nodes[a].AddNeighbor(c.nodes[b].PeerID())
		c.nodes[b].AddNeighbor(c.nodes[a].PeerID())
	}
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	extra := degree - 2
	for i := 0; i < n && extra > 0; i++ {
		for k := 0; k < extra; k++ {
			link(i, c.rng.Intn(n))
		}
	}
}

// Node returns the Gnutella node backing servent i (nil under
// centralized).
func (c *Cluster) Node(i int) *p2p.GnutellaNode {
	if c.nodes == nil {
		return nil
	}
	return c.nodes[i]
}

// DHTNode returns the DHT node backing servent i (nil outside the DHT
// protocol).
func (c *Cluster) DHTNode(i int) *dht.Node {
	if c.dhts == nil {
		return nil
	}
	return c.dhts[i]
}

// Metrics snapshots the cluster-wide registry: transport, protocol,
// store, and error telemetry in one consistent view. Phase accounting
// is a pair of snapshots and a Delta, replacing the old
// Stats/ResetStats idiom.
func (c *Cluster) Metrics() *metrics.Snapshot { return c.reg.Snapshot() }

// Registry exposes the cluster's shared registry, for callers that
// want to resolve handles (scenario drivers) or serve it over HTTP.
func (c *Cluster) Registry() *metrics.Registry { return c.reg }

// SeedCommunity creates a community at the given peer.
func (c *Cluster) SeedCommunity(creator int, spec core.CommunitySpec) (*core.Community, error) {
	return c.Servents[creator].CreateCommunity(spec)
}

// DiscoverAndJoinAll makes every other peer discover the community via
// a root-community search (the paper's bootstrap) and join it from the
// providing peer. It returns how many peers joined.
func (c *Cluster) DiscoverAndJoinAll(name string, ttl int) (int, error) {
	joined := 0
	for i, sv := range c.Servents {
		if !c.alive[i] {
			continue
		}
		if has, _ := c.hasCommunityNamed(sv, name); has {
			joined++
			continue
		}
		rs, err := sv.DiscoverCommunities(query.MustParse("(name="+name+")"), p2p.SearchOptions{TTL: ttl})
		if err != nil {
			return joined, fmt.Errorf("sim: peer %d discover: %w", i, err)
		}
		if len(rs) == 0 {
			continue
		}
		if _, err := sv.JoinFromNetwork(rs[0]); err != nil {
			return joined, fmt.Errorf("sim: peer %d join: %w", i, err)
		}
		joined++
	}
	return joined, nil
}

func (c *Cluster) hasCommunityNamed(sv *core.Servent, name string) (bool, string) {
	for _, id := range sv.Joined() {
		if comm, ok := sv.Community(id); ok && comm.Name == name {
			return true, id
		}
	}
	return false, ""
}

// PublishRoundRobin distributes corpus objects across the peers that
// have joined the community. It returns the published doc IDs aligned
// with objs.
func (c *Cluster) PublishRoundRobin(communityID string, objs []corpus.Object) ([]index.DocID, error) {
	var members []*core.Servent
	for i, sv := range c.Servents {
		if c.alive[i] && sv.IsJoined(communityID) {
			members = append(members, sv)
		}
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("sim: no peer joined community %s", communityID)
	}
	// Group each member's share and publish it as one batch: the
	// store's bulk-ingest path, while keeping the round-robin
	// placement (object i still lands on member i mod N).
	ids := make([]index.DocID, len(objs))
	perMember := make([][]int, len(members))
	for i := range objs {
		m := i % len(members)
		perMember[m] = append(perMember[m], i)
	}
	for m, idxs := range perMember {
		if len(idxs) == 0 {
			continue
		}
		batch := make([]*xmldoc.Node, len(idxs))
		for j, i := range idxs {
			batch[j] = objs[i].Doc.Clone()
		}
		got, err := members[m].PublishBatch(communityID, batch)
		if err != nil {
			return nil, fmt.Errorf("sim: publish batch on peer %d: %w", m, err)
		}
		for j, i := range idxs {
			ids[i] = got[j]
		}
	}
	return ids, nil
}

// KillPeer detaches a servent abruptly (churn/fault injection): its
// endpoint closes, the central index drops its registrations, and
// overlay neighbors unlink it. Killing a dead peer is a no-op.
func (c *Cluster) KillPeer(i int) {
	if !c.alive[i] {
		return
	}
	c.alive[i] = false
	sv := c.Servents[i]
	peer := sv.PeerID()
	_ = sv.Close()
	if c.Server != nil {
		c.Server.DropPeer(peer)
	}
	if c.leafSuper != nil && c.leafSuper[i] >= 0 {
		c.supers[c.leafSuper[i]].DropLeaf(peer)
	}
	for j, node := range c.nodes {
		if j != i && node != nil {
			node.RemoveNeighbor(peer)
		}
	}
	if c.nodes != nil {
		c.nodes[i] = nil
	}
	// DHT peers deliberately get no notification: dead contacts
	// linger in routing tables until a failed send or a scheduled
	// liveness check evicts them (RefreshDHT), and the dead peer's
	// record replicas are simply gone — the failure model a UDP-style
	// overlay actually faces, and what E14 measures.
	if c.dhts != nil {
		c.dhts[i] = nil
	}
}

// RefreshDHT runs one maintenance round on every live DHT peer, in
// index order: liveness-check-driven bucket repair plus republication
// of all locally held documents (p2p.ReannounceLocal over the STORE
// path). It is the DHT's rehome-equivalent, paced by the caller's
// schedule like FastTrack's RehomeOrphans. Returns how many peers
// refreshed.
func (c *Cluster) RefreshDHT() (int, error) {
	if c.cfg.Protocol != DHT {
		return 0, nil
	}
	refreshed := 0
	for i, n := range c.dhts {
		if n == nil || !c.alive[i] {
			continue
		}
		if err := n.Refresh(); err != nil {
			return refreshed, fmt.Errorf("sim: refresh peer %d: %w", i, err)
		}
		refreshed++
	}
	return refreshed, nil
}

// SearchFrom runs a community search from peer i.
func (c *Cluster) SearchFrom(i int, communityID string, f query.Filter, opts p2p.SearchOptions) ([]p2p.Result, error) {
	return c.Servents[i].Search(communityID, f, opts)
}
