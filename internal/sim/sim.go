// Package sim assembles multi-peer U-P2P deployments on the in-memory
// network for the repeatable experiments of EXPERIMENTS.md: N servents
// over either protocol, seeded overlay topologies, workload drivers
// and message accounting.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/transport"
	"repro/internal/xmldoc"
)

// Protocol selects the network layer under the servents.
type Protocol int

// Supported protocols (the two named in Fig. 3 that the paper's
// prototype targets).
const (
	Centralized Protocol = iota + 1
	Gnutella
	// FastTrack is the super-peer hybrid: leaves register with a
	// super-peer; queries flood the (small) super-peer overlay.
	FastTrack
)

func (p Protocol) String() string {
	switch p {
	case Centralized:
		return "centralized"
	case Gnutella:
		return "gnutella"
	case FastTrack:
		return "fasttrack"
	default:
		return "protocol?"
	}
}

// Config describes a cluster to build.
type Config struct {
	// Peers is the number of servents.
	Peers int
	// Protocol selects centralized vs gnutella.
	Protocol Protocol
	// Degree is the Gnutella overlay degree (ring + random chords);
	// ignored for centralized. Default 4.
	Degree int
	// SuperPeers is the number of FastTrack super-peers (default
	// max(2, Peers/8)); ignored for other protocols.
	SuperPeers int
	// Seed drives topology and fault randomness.
	Seed int64
	// DropRate is the per-message loss probability.
	DropRate float64
	// Latency is the per-hop virtual latency.
	Latency time.Duration
}

// Cluster is a running multi-peer deployment.
type Cluster struct {
	// Net is the underlying instrumented network.
	Net *transport.MemNetwork
	// Server is the central index (nil under Gnutella).
	Server *p2p.IndexServer
	// Servents are the peers, index-addressable.
	Servents []*core.Servent

	nodes  []*p2p.GnutellaNode // parallel to Servents under Gnutella
	supers []*p2p.SuperPeer    // FastTrack super-peer overlay
	// leafSuper maps servent index to its super-peer (FastTrack).
	leafSuper []int
	rng       *rand.Rand
}

// NewCluster builds and wires a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Peers <= 0 {
		return nil, fmt.Errorf("sim: need at least one peer")
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 4
	}
	opts := []transport.MemOption{transport.WithSeed(cfg.Seed)}
	if cfg.DropRate > 0 {
		opts = append(opts, transport.WithDropRate(cfg.DropRate))
	}
	if cfg.Latency > 0 {
		opts = append(opts, transport.WithFixedLatency(cfg.Latency))
	}
	net := transport.NewMemNetwork(opts...)
	c := &Cluster{Net: net, rng: rand.New(rand.NewSource(cfg.Seed))}

	switch cfg.Protocol {
	case Centralized:
		sep, err := net.Endpoint("server")
		if err != nil {
			return nil, err
		}
		c.Server = p2p.NewIndexServer(sep)
		for i := 0; i < cfg.Peers; i++ {
			ep, err := net.Endpoint(peerID(i))
			if err != nil {
				return nil, err
			}
			st := index.NewStore()
			client := p2p.NewCentralizedClient(ep, "server", st)
			sv, err := core.NewServent(client, st)
			if err != nil {
				return nil, err
			}
			c.Servents = append(c.Servents, sv)
		}
	case Gnutella:
		for i := 0; i < cfg.Peers; i++ {
			ep, err := net.Endpoint(peerID(i))
			if err != nil {
				return nil, err
			}
			st := index.NewStore()
			node := p2p.NewGnutellaNode(ep, st)
			sv, err := core.NewServent(node, st)
			if err != nil {
				return nil, err
			}
			c.nodes = append(c.nodes, node)
			c.Servents = append(c.Servents, sv)
		}
		c.wireOverlay(cfg.Degree)
	case FastTrack:
		superN := cfg.SuperPeers
		if superN <= 0 {
			superN = cfg.Peers / 8
			if superN < 2 {
				superN = 2
			}
		}
		for i := 0; i < superN; i++ {
			ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("super%03d", i)))
			if err != nil {
				return nil, err
			}
			c.supers = append(c.supers, p2p.NewSuperPeer(ep))
		}
		for i := 0; i < superN; i++ {
			c.supers[i].AddNeighbor(c.supers[(i+1)%superN].PeerID())
			c.supers[(i+1)%superN].AddNeighbor(c.supers[i].PeerID())
		}
		for i := 0; i < cfg.Peers; i++ {
			ep, err := net.Endpoint(peerID(i))
			if err != nil {
				return nil, err
			}
			st := index.NewStore()
			superIdx := i % superN
			leaf := p2p.NewFastTrackLeaf(ep, c.supers[superIdx].PeerID(), st)
			sv, err := core.NewServent(leaf, st)
			if err != nil {
				return nil, err
			}
			c.Servents = append(c.Servents, sv)
			c.leafSuper = append(c.leafSuper, superIdx)
		}
	default:
		return nil, fmt.Errorf("sim: unknown protocol %v", cfg.Protocol)
	}
	return c, nil
}

func peerID(i int) transport.PeerID {
	return transport.PeerID(fmt.Sprintf("peer%03d", i))
}

// wireOverlay links a ring plus random chords for diameter reduction:
// deterministic under the cluster seed.
func (c *Cluster) wireOverlay(degree int) {
	n := len(c.nodes)
	if n < 2 {
		return
	}
	link := func(a, b int) {
		if a == b {
			return
		}
		c.nodes[a].AddNeighbor(c.nodes[b].PeerID())
		c.nodes[b].AddNeighbor(c.nodes[a].PeerID())
	}
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	extra := degree - 2
	for i := 0; i < n && extra > 0; i++ {
		for k := 0; k < extra; k++ {
			link(i, c.rng.Intn(n))
		}
	}
}

// Node returns the Gnutella node backing servent i (nil under
// centralized).
func (c *Cluster) Node(i int) *p2p.GnutellaNode {
	if c.nodes == nil {
		return nil
	}
	return c.nodes[i]
}

// Stats snapshots the network counters.
func (c *Cluster) Stats() transport.Stats { return c.Net.Stats() }

// ResetStats zeroes the counters between phases.
func (c *Cluster) ResetStats() { c.Net.ResetStats() }

// SeedCommunity creates a community at the given peer.
func (c *Cluster) SeedCommunity(creator int, spec core.CommunitySpec) (*core.Community, error) {
	return c.Servents[creator].CreateCommunity(spec)
}

// DiscoverAndJoinAll makes every other peer discover the community via
// a root-community search (the paper's bootstrap) and join it from the
// providing peer. It returns how many peers joined.
func (c *Cluster) DiscoverAndJoinAll(name string, ttl int) (int, error) {
	joined := 0
	for i, sv := range c.Servents {
		if has, _ := c.hasCommunityNamed(sv, name); has {
			joined++
			continue
		}
		rs, err := sv.DiscoverCommunities(query.MustParse("(name="+name+")"), p2p.SearchOptions{TTL: ttl})
		if err != nil {
			return joined, fmt.Errorf("sim: peer %d discover: %w", i, err)
		}
		if len(rs) == 0 {
			continue
		}
		if _, err := sv.JoinFromNetwork(rs[0]); err != nil {
			return joined, fmt.Errorf("sim: peer %d join: %w", i, err)
		}
		joined++
	}
	return joined, nil
}

func (c *Cluster) hasCommunityNamed(sv *core.Servent, name string) (bool, string) {
	for _, id := range sv.Joined() {
		if comm, ok := sv.Community(id); ok && comm.Name == name {
			return true, id
		}
	}
	return false, ""
}

// PublishRoundRobin distributes corpus objects across the peers that
// have joined the community. It returns the published doc IDs aligned
// with objs.
func (c *Cluster) PublishRoundRobin(communityID string, objs []corpus.Object) ([]index.DocID, error) {
	var members []*core.Servent
	for _, sv := range c.Servents {
		if sv.IsJoined(communityID) {
			members = append(members, sv)
		}
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("sim: no peer joined community %s", communityID)
	}
	// Group each member's share and publish it as one batch: the
	// store's bulk-ingest path, while keeping the round-robin
	// placement (object i still lands on member i mod N).
	ids := make([]index.DocID, len(objs))
	perMember := make([][]int, len(members))
	for i := range objs {
		m := i % len(members)
		perMember[m] = append(perMember[m], i)
	}
	for m, idxs := range perMember {
		if len(idxs) == 0 {
			continue
		}
		batch := make([]*xmldoc.Node, len(idxs))
		for j, i := range idxs {
			batch[j] = objs[i].Doc.Clone()
		}
		got, err := members[m].PublishBatch(communityID, batch)
		if err != nil {
			return nil, fmt.Errorf("sim: publish batch on peer %d: %w", m, err)
		}
		for j, i := range idxs {
			ids[i] = got[j]
		}
	}
	return ids, nil
}

// KillPeer detaches a servent abruptly (churn/fault injection): its
// endpoint closes, the central index drops its registrations, and
// overlay neighbors unlink it.
func (c *Cluster) KillPeer(i int) {
	sv := c.Servents[i]
	peer := sv.PeerID()
	_ = sv.Close()
	if c.Server != nil {
		c.Server.DropPeer(peer)
	}
	if c.leafSuper != nil {
		c.supers[c.leafSuper[i]].DropLeaf(peer)
	}
	for j, node := range c.nodes {
		if j != i && node != nil {
			node.RemoveNeighbor(peer)
		}
	}
	if c.nodes != nil {
		c.nodes[i] = nil
	}
}

// SearchFrom runs a community search from peer i.
func (c *Cluster) SearchFrom(i int, communityID string, f query.Filter, opts p2p.SearchOptions) ([]p2p.Result, error) {
	return c.Servents[i].Search(communityID, f, opts)
}
