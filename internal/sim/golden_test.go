package sim

import (
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/p2p"
	"repro/internal/query"
)

// goldenConfig is a small but fully loaded scenario: churn, loss,
// latency jitter, a flash crowd, and (for FastTrack) super-peer
// failover — every nondeterminism hazard at once.
func goldenConfig(proto Protocol, seed int64) ScenarioConfig {
	cfg := ScenarioConfig{
		Cluster: Config{
			Peers:    40,
			Protocol: proto,
			Degree:   4,
			Seed:     seed,
			DropRate: 0.02,
			Latency:  25 * time.Millisecond,
			Jitter:   15 * time.Millisecond,
		},
		Duration:       30 * time.Second,
		QueryRate:      3,
		ArrivalRate:    0.3,
		DepartureRate:  0.3,
		InitialObjects: 50,
		BurstAt:        12 * time.Second,
		BurstQueries:   10,
	}
	if proto == FastTrack {
		cfg.Cluster.SuperPeers = 5
		cfg.FailSupersAt = 15 * time.Second
		cfg.FailSupers = 1
		cfg.RehomeDelay = 3 * time.Second
	}
	if proto == DHT {
		// Small k plus a TTL shorter than the run forces every DHT
		// mechanism through the trace: replication, record expiry,
		// scheduled refresh/republish, and liveness-driven eviction.
		cfg.Cluster.DHTK = 8
		cfg.Cluster.DHTRecordTTL = 20 * time.Second
		cfg.DHTRefreshEvery = 7 * time.Second
	}
	return cfg
}

// TestGoldenTraceDeterminism: the same seed must reproduce the exact
// message trace — byte-for-byte, including loss decisions — on every
// protocol. CI runs this with -count=2, which additionally catches
// process-global state leaking between runs (e.g. a shared GUID
// counter would shift every query payload on the second run).
func TestGoldenTraceDeterminism(t *testing.T) {
	for _, proto := range []Protocol{Centralized, Gnutella, FastTrack, DHT} {
		t.Run(proto.String(), func(t *testing.T) {
			r1, err := RunScenario(goldenConfig(proto, 42))
			if err != nil {
				t.Fatal(err)
			}
			r2, err := RunScenario(goldenConfig(proto, 42))
			if err != nil {
				t.Fatal(err)
			}
			if r1.TraceLen == 0 {
				t.Fatal("empty trace")
			}
			if r1.TraceLen != r2.TraceLen {
				t.Fatalf("trace lengths differ: %d vs %d", r1.TraceLen, r2.TraceLen)
			}
			if r1.TraceHash != r2.TraceHash {
				t.Fatalf("trace hashes differ: %x vs %x", r1.TraceHash, r2.TraceHash)
			}
			if r1.Queries != r2.Queries || r1.Arrivals != r2.Arrivals || r1.Departures != r2.Departures {
				t.Fatalf("workload differs: %+v vs %+v", r1, r2)
			}
			for i := range r1.Samples {
				a, b := r1.Samples[i], r2.Samples[i]
				if a != b {
					t.Fatalf("sample %d differs: %+v vs %+v", i, a, b)
				}
			}
			// A different seed must explore a different trajectory (equal
			// 64-bit hashes across all three protocols would be a broken
			// seed plumbing, not a coincidence).
			r3, err := RunScenario(goldenConfig(proto, 43))
			if err != nil {
				t.Fatal(err)
			}
			if r3.TraceHash == r1.TraceHash {
				t.Errorf("seed change did not change the trace")
			}
		})
	}
}

// TestGoldenTraceSingleClusterDeterminism pins determinism at the
// cluster level too (no scenario driver): discovery floods, batched
// publication, and searches hash identically across runs.
func TestGoldenTraceSingleClusterDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		c, err := NewCluster(Config{Peers: 16, Protocol: Gnutella, Degree: 4, Seed: 3, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		comm, err := c.SeedCommunity(0, spec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DiscoverAndJoinAll("patterns", 7); err != nil {
			t.Fatal(err)
		}
		if _, err := c.PublishRoundRobin(comm.ID, corpus.DesignPatterns(20, 3).Objects); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := c.SearchFrom(i, comm.ID, query.MustParse("(name=*)"), p2p.SearchOptions{TTL: 7}); err != nil {
				t.Fatal(err)
			}
		}
		return c.Net.TraceHash(), c.Net.TraceLen()
	}
	h1, n1 := run()
	h2, n2 := run()
	if n1 == 0 || n1 != n2 || h1 != h2 {
		t.Errorf("cluster trace not reproducible: (%x,%d) vs (%x,%d)", h1, n1, h2, n2)
	}
}
