package dht

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/transport"
)

func rec(i int, provider string) Record {
	return Record{
		DocID:       index.DocID(fmt.Sprintf("d-%04d", i)),
		CommunityID: "patterns",
		Title:       fmt.Sprintf("doc %d", i),
		Attrs:       query.Attrs{"classification": {"behavioral"}},
		Provider:    transport.PeerID(provider),
	}
}

func countersFor(rs *recordStore) (expired, evicted, hits *metrics.Counter) {
	reg := metrics.NewRegistry()
	expired = reg.Counter("dht.records_expired")
	evicted = reg.Counter("dht.records_evicted")
	hits = reg.Counter("dht.cache_hits")
	rs.setCounters(expired, evicted, hits)
	return
}

// TestRecordCapEvictionOrder: past the per-key cap, whole cached sets
// are evicted before any primary, and among primaries the
// deterministic victim is the earliest-expiring, smallest (DocID,
// Provider) record.
func TestRecordCapEvictionOrder(t *testing.T) {
	rs := newRecordStore(time.Minute, 6)
	_, evicted, _ := countersFor(rs)
	key := KeyForCommunity("patterns")
	t0 := time.Unix(1000, 0)

	for i := 0; i < 4; i++ {
		rs.put(key, []Record{rec(i, "peerA")}, t0)
	}
	f := query.MustParse("(classification=behavioral)")
	fs := f.String()
	rs.putCached(key, []Record{rec(90, "peerB"), rec(91, "peerB")}, t0, fs)
	if got := rs.len(t0); got != 6 {
		t.Fatalf("records at cap = %d, want 6", got)
	}

	// One more primary: the cached set must go first, whole.
	rs.put(key, []Record{rec(4, "peerA")}, t0.Add(time.Second))
	if got := evicted.Value(); got != 2 {
		t.Fatalf("evicted after cached-set eviction = %d, want 2 (the whole set)", got)
	}
	if got, complete := rs.get(key, t0.Add(time.Second), "patterns", fs, f, 0); complete || len(got) != 5 {
		t.Fatalf("post-eviction get = %d records, complete=%v; want 5 primaries, incomplete", len(got), complete)
	}

	// Fill back to cap with a later-expiring primary, then overflow:
	// the victim must be the earliest-expiring primary with the
	// smallest (DocID, Provider) — d-0000 from the t0 batch.
	rs.put(key, []Record{rec(5, "peerA")}, t0.Add(2*time.Second))
	rs.put(key, []Record{rec(6, "peerA")}, t0.Add(3*time.Second))
	if got := evicted.Value(); got != 3 {
		t.Fatalf("evicted after primary eviction = %d, want 3", got)
	}
	got, _ := rs.get(key, t0.Add(3*time.Second), "patterns", fs, f, 0)
	for _, r := range got {
		if r.DocID == "d-0000" {
			t.Fatalf("deterministic victim d-0000 still present: %+v", got)
		}
	}
	if len(got) != 6 {
		t.Fatalf("records after overflow = %d, want 6", len(got))
	}
}

// TestCachedSetHalvedTTL: a cached copy expires at half the record
// TTL, while a primary stored at the same instant lives the full TTL.
func TestCachedSetHalvedTTL(t *testing.T) {
	rs := newRecordStore(time.Minute, 0)
	countersFor(rs)
	key := KeyForCommunity("patterns")
	t0 := time.Unix(1000, 0)
	f := query.MustParse("(classification=behavioral)")
	fs := f.String()

	rs.put(key, []Record{rec(0, "peerA")}, t0)
	rs.putCached(key, []Record{rec(1, "peerB")}, t0, fs)

	if got, complete := rs.get(key, t0.Add(29*time.Second), "patterns", fs, f, 0); !complete || len(got) != 2 {
		t.Fatalf("pre-half-TTL get = %d records, complete=%v; want 2, complete", len(got), complete)
	}
	// Past ttl/2 the cached copy is gone; the primary remains.
	if got, complete := rs.get(key, t0.Add(31*time.Second), "patterns", fs, f, 0); complete || len(got) != 1 || got[0].DocID != "d-0000" {
		t.Fatalf("post-half-TTL get = %+v, complete=%v; want only the primary", got, complete)
	}
	// Past the full TTL everything is gone.
	if got, _ := rs.get(key, t0.Add(61*time.Second), "patterns", fs, f, 0); len(got) != 0 {
		t.Fatalf("post-TTL get = %+v, want empty", got)
	}
}

// TestCachedSetCompleteness: a cached set is served — and marked
// complete — only for the exact filter it was stored under, and a
// limit truncation strips the completeness claim.
func TestCachedSetCompleteness(t *testing.T) {
	rs := newRecordStore(time.Minute, 0)
	_, _, hits := countersFor(rs)
	key := KeyForCommunity("patterns")
	t0 := time.Unix(1000, 0)
	f := query.MustParse("(classification=behavioral)")
	fs := f.String()

	rs.putCached(key, []Record{rec(0, "peerB"), rec(1, "peerB")}, t0, fs)
	if got, complete := rs.get(key, t0, "patterns", fs, f, 0); !complete || len(got) != 2 {
		t.Fatalf("exact-filter get = %d records, complete=%v; want 2, complete", len(got), complete)
	}
	if hits.Value() != 1 {
		t.Fatalf("cache hits = %d, want 1", hits.Value())
	}
	// A different filter must not touch the cached set.
	other := query.MustParse("(classification=creational)")
	if got, complete := rs.get(key, t0, "patterns", other.String(), other, 0); complete || len(got) != 0 {
		t.Fatalf("other-filter get = %d records, complete=%v; want none, incomplete", len(got), complete)
	}
	if hits.Value() != 1 {
		t.Fatalf("cache hits after miss = %d, want still 1", hits.Value())
	}
	// Limit truncation: still served, no longer complete.
	if got, complete := rs.get(key, t0, "patterns", fs, f, 1); complete || len(got) != 1 {
		t.Fatalf("limited get = %d records, complete=%v; want 1, incomplete", len(got), complete)
	}
}

// TestPutCachedNeverDisplacesPrimaries: when a key is at its cap with
// primaries alone, an arriving cached set is dropped whole rather
// than evicting a primary or installing partially.
func TestPutCachedNeverDisplacesPrimaries(t *testing.T) {
	rs := newRecordStore(time.Minute, 4)
	_, evicted, _ := countersFor(rs)
	key := KeyForCommunity("patterns")
	t0 := time.Unix(1000, 0)
	f := query.MustParse("(classification=behavioral)")
	fs := f.String()

	for i := 0; i < 4; i++ {
		rs.put(key, []Record{rec(i, "peerA")}, t0)
	}
	rs.putCached(key, []Record{rec(90, "peerB"), rec(91, "peerB")}, t0, fs)
	got, complete := rs.get(key, t0, "patterns", fs, f, 0)
	if complete || len(got) != 4 {
		t.Fatalf("get after rejected cache = %d records, complete=%v; want the 4 primaries, incomplete", len(got), complete)
	}
	for _, r := range got {
		if r.Provider == "peerB" {
			t.Fatalf("cached record installed despite full key: %+v", r)
		}
	}
	if evicted.Value() != 0 {
		t.Fatalf("evicted = %d, want 0 (path copies never displace primaries)", evicted.Value())
	}
}
