package dht

import (
	"sort"
	"sync"

	"repro/internal/transport"
)

// Contact is one known peer: its network identity and its point in
// the keyspace (always NodeIDFor(Peer); cached to avoid rehashing on
// every distance comparison).
type Contact struct {
	ID   ID
	Peer transport.PeerID
}

// ContactFor builds the contact for a peer.
func ContactFor(peer transport.PeerID) Contact {
	return Contact{ID: NodeIDFor(peer), Peer: peer}
}

// Table is a Kademlia routing table: IDBits k-buckets, bucket i
// holding up to k contacts whose most significant differing bit from
// the local ID is bit i. Each bucket is kept in least-recently-seen
// order (front = oldest), the order LRU eviction consumes.
//
// Eviction policy: Observe never probes the network — a full bucket
// parks newcomers in a per-bucket replacement cache instead of
// pinging the oldest contact inline. Pinging from inside a message
// handler would recurse unboundedly on the synchronous simulated
// network (A's ping makes B update its table, which pings C, ...).
// Liveness checks instead run on the owner's schedule
// (Node.CheckLiveness, driven by the simulation clock): the
// least-recently-seen contact of each bucket is probed, dead contacts
// are evicted, and the freshest replacement-cache entry takes the
// slot. Definitive send failures (transport.IsPeerDead) evict
// immediately via Remove.
type Table struct {
	self ID
	k    int

	mu      sync.Mutex
	buckets [IDBits]bucket
	size    int
}

type bucket struct {
	live  []Contact // least recently seen first
	spare []Contact // replacement cache, least recently seen first
}

// NewTable builds a table for the node with the given ID and bucket
// capacity k.
func NewTable(self ID, k int) *Table {
	if k <= 0 {
		k = DefaultK
	}
	return &Table{self: self, k: k}
}

// Self returns the table owner's ID.
func (t *Table) Self() ID { return t.self }

// Len returns the number of live contacts across all buckets.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Observe records traffic from a peer: a known contact moves to the
// most-recently-seen end of its bucket; an unknown one fills a free
// slot, or parks in the bucket's replacement cache when the bucket is
// full (evicting the cache's own oldest entry if needed).
func (t *Table) Observe(peer transport.PeerID) {
	c := ContactFor(peer)
	bi := BucketIndex(t.self, c.ID)
	if bi < 0 {
		return // self
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[bi]
	if moveToBack(&b.live, peer) {
		return
	}
	if len(b.live) < t.k {
		b.live = append(b.live, c)
		t.size++
		removeContact(&b.spare, peer)
		return
	}
	if moveToBack(&b.spare, peer) {
		return
	}
	if len(b.spare) >= t.k {
		b.spare = b.spare[1:] // drop the stalest candidate
	}
	b.spare = append(b.spare, c)
}

// Remove evicts a peer (dead by direct evidence) from its bucket and
// promotes the freshest replacement-cache candidate into the slot.
func (t *Table) Remove(peer transport.PeerID) {
	id := NodeIDFor(peer)
	bi := BucketIndex(t.self, id)
	if bi < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[bi]
	if removeContact(&b.live, peer) {
		t.size--
		if n := len(b.spare); n > 0 {
			t.size++
			b.live = append(b.live, b.spare[n-1])
			b.spare = b.spare[:n-1]
		}
	} else {
		removeContact(&b.spare, peer)
	}
}

// Oldest returns the least-recently-seen live contact of every
// non-empty bucket, in ascending bucket order: the probe set for one
// liveness-check round.
func (t *Table) Oldest() []Contact {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Contact
	for i := range t.buckets {
		if live := t.buckets[i].live; len(live) > 0 {
			out = append(out, live[0])
		}
	}
	return out
}

// Closest returns up to n live contacts sorted by XOR distance to
// target (ties — only possible between identical IDs — broken by peer
// name, so the order is total and deterministic).
func (t *Table) Closest(target ID, n int) []Contact {
	return t.ClosestAppend(nil, target, n)
}

// ClosestAppend is Closest into caller-owned storage: the contacts are
// appended to dst (reusing its capacity) and the extended slice
// returned. The lookup hot path threads its pooled shortlist through
// here so a wave costs no fresh contact slice.
func (t *Table) ClosestAppend(dst []Contact, target ID, n int) []Contact {
	start := len(dst)
	t.mu.Lock()
	for i := range t.buckets {
		dst = append(dst, t.buckets[i].live...)
	}
	t.mu.Unlock()
	sortByDistance(dst[start:], target)
	if n > 0 && len(dst)-start > n {
		dst = dst[:start+n]
	}
	return dst
}

// sortByDistance orders contacts by XOR distance to target.
func sortByDistance(cs []Contact, target ID) {
	sort.Slice(cs, func(i, j int) bool {
		if c := CompareDistance(cs[i].ID, cs[j].ID, target); c != 0 {
			return c < 0
		}
		return cs[i].Peer < cs[j].Peer
	})
}

// moveToBack relocates peer to the most-recently-seen end if present.
func moveToBack(cs *[]Contact, peer transport.PeerID) bool {
	s := *cs
	for i, c := range s {
		if c.Peer == peer {
			copy(s[i:], s[i+1:])
			s[len(s)-1] = c
			return true
		}
	}
	return false
}

// removeContact deletes peer if present.
func removeContact(cs *[]Contact, peer transport.PeerID) bool {
	s := *cs
	for i, c := range s {
		if c.Peer == peer {
			*cs = append(s[:i], s[i+1:]...)
			return true
		}
	}
	return false
}
