package dht

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/transport"
)

func peerName(i int) transport.PeerID {
	return transport.PeerID(fmt.Sprintf("peer%04d", i))
}

// TestXORMetricInvariants checks the metric axioms Kademlia routing
// relies on: identity, symmetry, and the XOR triangle equality-based
// inequality d(a,c) <= d(a,b) ^ d(b,c) == d(a,b) XOR d(b,c).
func TestXORMetricInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randID := func() ID {
		var id ID
		rng.Read(id[:])
		return id
	}
	for trial := 0; trial < 200; trial++ {
		a, b, c := randID(), randID(), randID()
		if a.XOR(a) != (ID{}) {
			t.Fatal("d(a,a) != 0")
		}
		if a.XOR(b) != b.XOR(a) {
			t.Fatal("XOR not symmetric")
		}
		// Unidirectionality via algebra: d(a,b)^d(b,c) == d(a,c).
		ab, bc, ac := a.XOR(b), b.XOR(c), a.XOR(c)
		if ab.XOR(bc) != ac {
			t.Fatal("XOR composition broken")
		}
		// CompareDistance is consistent with the numeric distance.
		if got := CompareDistance(a, b, c); got != -CompareDistance(b, a, c) {
			t.Fatalf("CompareDistance not antisymmetric: %d", got)
		}
		if CompareDistance(a, a, c) != 0 {
			t.Fatal("CompareDistance(a,a) != 0")
		}
	}
}

// TestBucketIndex pins the bucket convention: the index of the most
// significant differing bit, -1 for identical IDs, and consistency
// with distance ordering (a larger bucket index means a farther
// contact).
func TestBucketIndex(t *testing.T) {
	var zero ID
	if got := BucketIndex(zero, zero); got != -1 {
		t.Fatalf("BucketIndex(self) = %d", got)
	}
	one := ID{}
	one[IDBytes-1] = 1 // least significant bit
	if got := BucketIndex(zero, one); got != 0 {
		t.Fatalf("LSB bucket = %d, want 0", got)
	}
	top := ID{}
	top[0] = 0x80 // most significant bit
	if got := BucketIndex(zero, top); got != IDBits-1 {
		t.Fatalf("MSB bucket = %d, want %d", got, IDBits-1)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		var a, b ID
		rng.Read(a[:])
		rng.Read(b[:])
		bi := BucketIndex(a, b)
		if bi < 0 || bi >= IDBits {
			t.Fatalf("bucket out of range: %d", bi)
		}
		// All IDs in a lower bucket are strictly closer.
		if CompareDistance(a, b, a) >= 0 {
			// sanity: a is always closest to itself
			t.Fatal("self not closest to self")
		}
	}
}

// TestClosestMatchesBruteForce cross-checks Table.Closest against a
// brute-force oracle over random peer populations: the same k nearest
// contacts in the same order.
func TestClosestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		self := NodeIDFor(peerName(10000 + trial))
		tab := NewTable(self, 8)
		population := make([]Contact, 0, 300)
		for i := 0; i < 300; i++ {
			p := peerName(rng.Intn(5000))
			tab.Observe(p)
			population = append(population, ContactFor(p))
		}
		// The oracle only considers contacts the table actually kept
		// (full buckets park overflow in the replacement cache), so
		// collect the live set via Closest with no cap first.
		live := tab.Closest(self, 0)
		for _, targetSeed := range []int{1, 42, 4999} {
			target := NodeIDFor(peerName(targetSeed))
			want := append([]Contact(nil), live...)
			sortByDistance(want, target)
			for _, k := range []int{1, 5, 8, 50} {
				got := tab.Closest(target, k)
				wantK := want
				if len(wantK) > k {
					wantK = wantK[:k]
				}
				if len(got) != len(wantK) {
					t.Fatalf("Closest len = %d, want %d", len(got), len(wantK))
				}
				for i := range got {
					if got[i].Peer != wantK[i].Peer {
						t.Fatalf("Closest[%d] = %s, want %s", i, got[i].Peer, wantK[i].Peer)
					}
				}
			}
		}
	}
}

// TestBucketLRUAndEviction exercises the k-bucket lifecycle: capacity
// k per bucket, re-observation moves a contact to the fresh end,
// overflow parks in the replacement cache, and Remove promotes the
// freshest candidate.
func TestBucketLRUAndEviction(t *testing.T) {
	self := NodeIDFor("self")
	tab := NewTable(self, 2)

	// Find four peers sharing one bucket so the bucket overflows.
	byBucket := map[int][]transport.PeerID{}
	var bucket int = -1
	var crowd []transport.PeerID
	for i := 0; i < 2000 && bucket < 0; i++ {
		p := peerName(i)
		bi := BucketIndex(self, NodeIDFor(p))
		byBucket[bi] = append(byBucket[bi], p)
		if len(byBucket[bi]) == 4 {
			bucket, crowd = bi, byBucket[bi]
		}
	}
	if bucket < 0 {
		t.Fatal("no crowded bucket found")
	}
	a, b, c, d := crowd[0], crowd[1], crowd[2], crowd[3]
	tab.Observe(a)
	tab.Observe(b)
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
	// Bucket full: c and d park in the replacement cache.
	tab.Observe(c)
	tab.Observe(d)
	if tab.Len() != 2 {
		t.Fatalf("replacement cache leaked into live set: len = %d", tab.Len())
	}
	// Oldest live contact is a; re-observing a freshens it so b
	// becomes oldest.
	if oldest := tab.Oldest(); oldest[0].Peer != a {
		t.Fatalf("oldest = %s, want %s", oldest[0].Peer, a)
	}
	tab.Observe(a)
	if oldest := tab.Oldest(); oldest[0].Peer != b {
		t.Fatalf("after refresh oldest = %s, want %s", oldest[0].Peer, b)
	}
	// Evicting b promotes d (the freshest replacement candidate).
	tab.Remove(b)
	if tab.Len() != 2 {
		t.Fatalf("after eviction len = %d", tab.Len())
	}
	peers := map[transport.PeerID]bool{}
	for _, ct := range tab.Closest(self, 0) {
		peers[ct.Peer] = true
	}
	if !peers[a] || !peers[d] || peers[b] || peers[c] {
		t.Fatalf("post-eviction set = %v, want {a, d}", peers)
	}
	// Evicting a promotes c, draining the cache.
	tab.Remove(a)
	peers = map[transport.PeerID]bool{}
	for _, ct := range tab.Closest(self, 0) {
		peers[ct.Peer] = true
	}
	if !peers[c] || !peers[d] {
		t.Fatalf("cache not drained: %v", peers)
	}
	// Self is never admitted.
	tab.Observe("self")
	if tab.Len() != 2 {
		t.Fatal("table admitted its own node")
	}
}

// TestClosestDeterministicOrder re-runs Closest over a shuffled
// observation order: the (distance, peer) sort must yield the same
// sequence regardless of insertion history, a precondition for
// golden-trace determinism.
func TestClosestDeterministicOrder(t *testing.T) {
	self := NodeIDFor("origin")
	target := KeyForCommunity("patterns")
	build := func(order []int) []Contact {
		// k=64 keeps every bucket below capacity so both insertion
		// orders retain the identical live set; only the sort is under
		// test here.
		tab := NewTable(self, 64)
		for _, i := range order {
			tab.Observe(peerName(i))
		}
		return tab.Closest(target, 12)
	}
	base := make([]int, 64)
	for i := range base {
		base[i] = i
	}
	got1 := build(base)
	shuffled := append([]int(nil), base...)
	// Reversal exercises a different bucket-append order without RNG.
	sort.Sort(sort.Reverse(sort.IntSlice(shuffled)))
	got2 := build(shuffled)
	if len(got1) == 0 || len(got1) != len(got2) {
		t.Fatalf("lengths differ: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i].Peer != got2[i].Peer {
			t.Fatalf("order differs at %d: %s vs %s", i, got1[i].Peer, got2[i].Peer)
		}
	}
}
