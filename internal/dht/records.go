package dht

import (
	"sort"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/transport"
)

// recordStore holds the records this node keeps for keys it is among
// the closest to. Entries carry an expiry instant (measured on the
// owner's clock): a record whose publisher stops refreshing it ages
// out, which is what garbage-collects departed providers without any
// global coordination. Expired entries are pruned lazily on read.
type recordStore struct {
	mu  sync.Mutex
	ttl time.Duration
	// byKey maps key -> (DocID, Provider) -> entry.
	byKey map[ID]map[recordKey]recordEntry
	// expired counts lazily pruned entries (dht.records_expired);
	// installed by the node's SetMetrics before traffic starts.
	expired *metrics.Counter
}

type recordKey struct {
	docID    index.DocID
	provider transport.PeerID
}

type recordEntry struct {
	rec     Record
	expires time.Time
}

func newRecordStore(ttl time.Duration) *recordStore {
	return &recordStore{
		ttl:     ttl,
		byKey:   make(map[ID]map[recordKey]recordEntry),
		expired: metrics.Discard().Counter("dht.records_expired"),
	}
}

// setExpiredCounter installs the expiry counter handle.
func (rs *recordStore) setExpiredCounter(c *metrics.Counter) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.expired = c
}

// put upserts records under key, (re)starting their TTL at now.
func (rs *recordStore) put(key ID, recs []Record, now time.Time) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	m := rs.byKey[key]
	if m == nil {
		m = make(map[recordKey]recordEntry)
		rs.byKey[key] = m
	}
	for _, rec := range recs {
		if rec.DocID == "" || rec.Provider == "" {
			continue
		}
		m[recordKey{rec.DocID, rec.Provider}] = recordEntry{rec: rec, expires: now.Add(rs.ttl)}
	}
}

// remove withdraws one provider's record under key.
func (rs *recordStore) remove(key ID, docID index.DocID, provider transport.PeerID) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if m := rs.byKey[key]; m != nil {
		delete(m, recordKey{docID, provider})
		if len(m) == 0 {
			delete(rs.byKey, key)
		}
	}
}

// get returns the unexpired records under key that match the
// community/filter, sorted by (DocID, Provider) so replies are
// deterministic, capped at limit (0 = all). Expired entries found
// along the way are pruned.
func (rs *recordStore) get(key ID, now time.Time, communityID string, f query.Filter, limit int) []Record {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	m := rs.byKey[key]
	if len(m) == 0 {
		return nil
	}
	out := make([]Record, 0, len(m))
	for rk, e := range m {
		if !e.expires.After(now) {
			delete(m, rk)
			rs.expired.Inc()
			continue
		}
		if communityID != "" && e.rec.CommunityID != communityID {
			continue
		}
		if f != nil && !f.Match(e.rec.Attrs) {
			continue
		}
		out = append(out, e.rec)
	}
	if len(m) == 0 {
		delete(rs.byKey, key)
	}
	sortRecords(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// len counts unexpired records (for tests and metrics; prunes as a
// side effect).
func (rs *recordStore) len(now time.Time) int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := 0
	for key, m := range rs.byKey {
		for rk, e := range m {
			if !e.expires.After(now) {
				delete(m, rk)
				rs.expired.Inc()
				continue
			}
			n++
		}
		if len(m) == 0 {
			delete(rs.byKey, key)
		}
	}
	return n
}

// sortRecords orders records by (DocID, Provider): the canonical
// deterministic order for every record set that crosses the wire or
// reaches a caller.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].DocID != recs[j].DocID {
			return recs[i].DocID < recs[j].DocID
		}
		return recs[i].Provider < recs[j].Provider
	})
}
