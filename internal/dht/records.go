package dht

import (
	"sort"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/transport"
)

// recordStore holds the records this node keeps for keys it is among
// the closest to. Entries carry an expiry instant (measured on the
// owner's clock): a record whose publisher stops refreshing it ages
// out, which is what garbage-collects departed providers without any
// global coordination. Expired entries are pruned lazily on read.
//
// Two extensions beyond plain Kademlia storage:
//
//   - Cached sets (Kademlia's caching STORE): path copies placed by
//     FIND_VALUE queriers, kept at half TTL and keyed by the
//     canonical filter string their record set is complete for. A
//     cached set is atomic — installed, served, evicted, and expired
//     as a whole — because its value is the completeness guarantee
//     that lets a lookup value-terminate on it; a partially evicted
//     set would satisfy queries with silently truncated results.
//     Cached sets never displace primary replicas and are never
//     republished (republish reads the local document store).
//   - A per-key cap (maxPerKey) across primaries and cached copies: a
//     flash crowd of publishes cannot grow one key without bound.
//     Past the cap, eviction is deterministic — whole cached sets
//     first (earliest expiry, ties by filter string), then the
//     earliest-expiring primary, ties by (DocID, Provider) — and
//     counted per record in dht.records_evicted.
type recordStore struct {
	mu        sync.Mutex
	ttl       time.Duration
	maxPerKey int
	// byKey maps key -> (DocID, Provider) -> primary entry.
	byKey map[ID]map[recordKey]recordEntry
	// cached maps key -> canonical filter string -> the complete
	// cached record set for that filter.
	cached map[ID]map[string]cachedSet
	// split maps keys this holder has split to their advertised
	// sub-key fanout.
	split map[ID]int
	// Telemetry handles (dht.records_expired / records_evicted /
	// cache_hits); installed by the node's SetMetrics before traffic
	// starts.
	expired   *metrics.Counter
	evicted   *metrics.Counter
	cacheHits *metrics.Counter
}

type recordKey struct {
	docID    index.DocID
	provider transport.PeerID
}

type recordEntry struct {
	rec     Record
	expires time.Time
}

// cachedSet is one caching STORE's payload: the complete, sorted
// result set for its filter, expiring as a unit.
type cachedSet struct {
	recs    []Record
	expires time.Time
}

func newRecordStore(ttl time.Duration, maxPerKey int) *recordStore {
	if maxPerKey <= 0 {
		maxPerKey = DefaultMaxRecordsPerKey
	}
	discard := metrics.Discard()
	return &recordStore{
		ttl:       ttl,
		maxPerKey: maxPerKey,
		byKey:     make(map[ID]map[recordKey]recordEntry),
		cached:    make(map[ID]map[string]cachedSet),
		split:     make(map[ID]int),
		expired:   discard.Counter("dht.records_expired"),
		evicted:   discard.Counter("dht.records_evicted"),
		cacheHits: discard.Counter("dht.cache_hits"),
	}
}

// setCounters installs the telemetry handles.
func (rs *recordStore) setCounters(expired, evicted, cacheHits *metrics.Counter) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.expired = expired
	rs.evicted = evicted
	rs.cacheHits = cacheHits
}

// cachedCountLocked is the number of records held in key's cached
// sets. Caller holds rs.mu.
func (rs *recordStore) cachedCountLocked(key ID) int {
	n := 0
	for _, cs := range rs.cached[key] {
		n += len(cs.recs)
	}
	return n
}

// evictCachedSetLocked drops the deterministic cached-set victim of
// key — earliest expiry first, ties broken by filter string — and
// reports whether one was dropped. Caller holds rs.mu.
func (rs *recordStore) evictCachedSetLocked(key ID) bool {
	sets := rs.cached[key]
	victim := ""
	found := false
	for filter, cs := range sets {
		if !found || cs.expires.Before(sets[victim].expires) ||
			(cs.expires.Equal(sets[victim].expires) && filter < victim) {
			victim, found = filter, true
		}
	}
	if !found {
		return false
	}
	rs.evicted.Add(int64(len(sets[victim].recs)))
	delete(sets, victim)
	if len(sets) == 0 {
		delete(rs.cached, key)
	}
	return true
}

// evictPrimaryLocked removes the deterministic primary victim from m:
// earliest expiry first, ties broken by (DocID, Provider). Caller
// holds rs.mu.
func (rs *recordStore) evictPrimaryLocked(m map[recordKey]recordEntry) bool {
	var victim recordKey
	var ve recordEntry
	found := false
	for rk, e := range m {
		if found {
			if e.expires.After(ve.expires) {
				continue
			}
			if e.expires.Equal(ve.expires) &&
				(rk.docID > victim.docID ||
					(rk.docID == victim.docID && rk.provider >= victim.provider)) {
				continue
			}
		}
		victim, ve, found = rk, e, true
	}
	if !found {
		return false
	}
	delete(m, victim)
	rs.evicted.Inc()
	return true
}

// put upserts primary records under key, (re)starting their TTL at
// now. It returns the key's primary record count after the insert,
// which is what the node's split-threshold check reads. Past the
// per-key cap, whole cached sets are evicted first, then the
// earliest-expiring primaries.
func (rs *recordStore) put(key ID, recs []Record, now time.Time) int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	m := rs.byKey[key]
	if m == nil {
		m = make(map[recordKey]recordEntry)
		rs.byKey[key] = m
	}
	for _, rec := range recs {
		if rec.DocID == "" || rec.Provider == "" {
			continue
		}
		rk := recordKey{rec.DocID, rec.Provider}
		if _, exists := m[rk]; !exists {
			for len(m)+rs.cachedCountLocked(key) >= rs.maxPerKey {
				if !rs.evictCachedSetLocked(key) && !rs.evictPrimaryLocked(m) {
					break
				}
			}
		}
		m[rk] = recordEntry{rec: rec, expires: now.Add(rs.ttl)}
	}
	if len(m) == 0 {
		delete(rs.byKey, key)
		return 0
	}
	return len(m)
}

// putCached installs one caching STORE's complete record set for
// filter: half TTL, replacing any previous set for the same filter,
// atomically — if the whole set cannot fit under the per-key cap
// after evicting other cached sets, nothing is installed (path
// copies never displace primaries).
func (rs *recordStore) putCached(key ID, recs []Record, now time.Time, filter string) {
	kept := make([]Record, 0, len(recs))
	for _, rec := range recs {
		if rec.DocID != "" && rec.Provider != "" {
			kept = append(kept, rec)
		}
	}
	if len(kept) == 0 {
		return
	}
	sortRecords(kept)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	sets := rs.cached[key]
	if sets == nil {
		sets = make(map[string]cachedSet)
		rs.cached[key] = sets
	}
	delete(sets, filter) // replacing: the old set never counts against us
	for len(rs.byKey[key])+rs.cachedCountLocked(key)+len(kept) > rs.maxPerKey {
		if !rs.evictCachedSetLocked(key) {
			if len(sets) == 0 {
				delete(rs.cached, key)
			}
			return // full of primaries: drop the path copy whole
		}
		if sets = rs.cached[key]; sets == nil {
			sets = make(map[string]cachedSet)
			rs.cached[key] = sets
		}
	}
	sets[filter] = cachedSet{recs: kept, expires: now.Add(rs.ttl / 2)}
}

// get returns the unexpired records under key that match the
// community/filter, sorted by (DocID, Provider) so replies are
// deterministic, capped at limit (0 = all). filterStr is the query's
// canonical filter string: a cached set is served only to queries
// carrying the identical filter. Expired entries found along the way
// are pruned.
//
// The second result reports completeness: true when the reply draws
// on a cached set for exactly this filter (complete by construction
// — only full result sets are ever cache-STOREd, and sets evict and
// expire whole) and no limit truncated it. Primary-only replies are
// never complete: this holder may have only a partial slice of the
// key's records.
func (rs *recordStore) get(key ID, now time.Time, communityID, filterStr string, f query.Filter, limit int) ([]Record, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	merged := make(map[recordKey]Record)
	m := rs.byKey[key]
	for rk, e := range m {
		if !e.expires.After(now) {
			delete(m, rk)
			rs.expired.Inc()
			continue
		}
		if communityID != "" && e.rec.CommunityID != communityID {
			continue
		}
		if f != nil && !f.Match(e.rec.Attrs) {
			continue
		}
		merged[rk] = e.rec
	}
	if len(m) == 0 {
		delete(rs.byKey, key)
	}
	fromCache := false
	if sets := rs.cached[key]; sets != nil {
		for filter, cs := range sets {
			if !cs.expires.After(now) {
				rs.expired.Add(int64(len(cs.recs)))
				delete(sets, filter)
			}
		}
		if len(sets) == 0 {
			delete(rs.cached, key)
		} else if cs, ok := sets[filterStr]; ok {
			fromCache = true
			for _, rec := range cs.recs {
				rk := recordKey{rec.DocID, rec.Provider}
				if _, dup := merged[rk]; !dup {
					merged[rk] = rec
				}
			}
		}
	}
	if len(merged) == 0 {
		return nil, false
	}
	if fromCache {
		rs.cacheHits.Inc()
	}
	out := make([]Record, 0, len(merged))
	for _, rec := range merged {
		out = append(out, rec)
	}
	sortRecords(out)
	complete := fromCache
	if limit > 0 && len(out) > limit {
		out = out[:limit]
		complete = false
	}
	return out, complete
}

// remove withdraws one provider's record under key, from the
// primaries and from any cached sets holding it (removal reflects a
// global unpublish, so a shrunk cached set stays complete).
func (rs *recordStore) remove(key ID, docID index.DocID, provider transport.PeerID) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if m := rs.byKey[key]; m != nil {
		delete(m, recordKey{docID, provider})
		if len(m) == 0 {
			delete(rs.byKey, key)
		}
	}
	for filter, cs := range rs.cached[key] {
		kept := cs.recs[:0:0]
		for _, rec := range cs.recs {
			if rec.DocID != docID || rec.Provider != provider {
				kept = append(kept, rec)
			}
		}
		if len(kept) != len(cs.recs) {
			if len(kept) == 0 {
				delete(rs.cached[key], filter)
			} else {
				rs.cached[key][filter] = cachedSet{recs: kept, expires: cs.expires}
			}
		}
	}
	if len(rs.cached[key]) == 0 {
		delete(rs.cached, key)
	}
}

// markSplit records that this holder split key into fanout sub-keys;
// FIND_VALUE replies advertise it from then on. Reports whether the
// key was newly marked.
func (rs *recordStore) markSplit(key ID, fanout int) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, done := rs.split[key]; done {
		return false
	}
	rs.split[key] = fanout
	return true
}

// splitFanout returns the advertised sub-key fanout of key (0 when
// the key is not split at this holder).
func (rs *recordStore) splitFanout(key ID) int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.split[key]
}

// takePrimary removes and returns the unexpired primary entries of
// key, sorted — the migration set of a hot-key split. Cached sets
// stay behind (they still answer repeat queries and age out on their
// own).
func (rs *recordStore) takePrimary(key ID, now time.Time) []Record {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	m := rs.byKey[key]
	if len(m) == 0 {
		return nil
	}
	var out []Record
	for rk, e := range m {
		if e.expires.After(now) {
			out = append(out, e.rec)
		} else {
			rs.expired.Inc()
		}
		delete(m, rk)
	}
	delete(rs.byKey, key)
	sortRecords(out)
	return out
}

// len counts unexpired records (for tests and metrics; prunes as a
// side effect).
func (rs *recordStore) len(now time.Time) int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := 0
	for key, m := range rs.byKey {
		for rk, e := range m {
			if !e.expires.After(now) {
				delete(m, rk)
				rs.expired.Inc()
				continue
			}
			n++
		}
		if len(m) == 0 {
			delete(rs.byKey, key)
		}
	}
	for key, sets := range rs.cached {
		for filter, cs := range sets {
			if !cs.expires.After(now) {
				rs.expired.Add(int64(len(cs.recs)))
				delete(sets, filter)
				continue
			}
			n += len(cs.recs)
		}
		if len(sets) == 0 {
			delete(rs.cached, key)
		}
	}
	return n
}

// sortRecords orders records by (DocID, Provider): the canonical
// deterministic order for every record set that crosses the wire or
// reaches a caller.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].DocID != recs[j].DocID {
			return recs[i].DocID < recs[j].DocID
		}
		return recs[i].Provider < recs[j].Provider
	})
}
