package dht

import (
	"encoding/json"

	"repro/internal/errs"
	"repro/internal/p2p"
	"repro/internal/trace"
	"repro/internal/transport"
)

// valueQuery makes a lookup carry FIND_VALUE semantics: holders of
// the target key evaluate the community/filter server-side and return
// matching records alongside their closest contacts.
type valueQuery struct {
	communityID string
	filter      string
	limit       int
}

// lookupOutcome is the result of one iterative lookup.
type lookupOutcome struct {
	// contacts are the responsive nodes closest to the target, by
	// distance, at most K.
	contacts []Contact
	// records are the FIND_VALUE results, deduped by (DocID,
	// Provider) and sorted.
	records []Record
	// rounds is how many α-wide RPC waves the lookup took: its hop
	// count.
	rounds int
}

// peerState tracks one shortlist entry through a lookup.
type peerState int

const (
	stateNew peerState = iota
	stateResponded
	stateFailed
)

// lookup runs the iterative Kademlia node/value lookup toward target.
// Each round queries the α closest unqueried candidates among the K
// best known, merges the contacts (and records) they return, and
// stops when the K closest known nodes have all been queried — the
// standard convergence rule, reaching the key's neighborhood in
// O(log n) rounds.
//
// On the synchronous simulated network every reply has already been
// handled when Send returns, so a "parallel" wave degenerates to α
// deterministic sequential RPCs; on TCP the α RPCs genuinely overlap
// and Await applies the RPC timeout. Candidates are always processed
// in sorted distance order, never map order, so two runs of one seed
// issue identical message sequences.
//
// tctx, when valid, ties the lookup into a sampled trace: each wave
// becomes one span (a child of the caller's span) and every RPC frame
// it sends is stamped with and attributed to its wave.
func (n *Node) lookup(tctx trace.Context, target ID, vq *valueQuery) lookupOutcome {
	var out lookupOutcome
	short := n.table.Closest(target, 0)
	state := make(map[transport.PeerID]peerState, len(short))
	known := make(map[transport.PeerID]bool, len(short))
	for _, c := range short {
		known[c.Peer] = true
	}
	recs := make(map[recordKey]Record)

	type rpc struct {
		contact Contact
		reqID   uint64
		ch      chan json.RawMessage
	}
	for {
		// Pick up to α unqueried candidates among the K closest
		// still-viable entries. Each wave is one trace span; the RPCs
		// it issues are stamped with the wave's context.
		wsp := n.tr().Start(tctx, "wave")
		wctx := wsp.ContextOr(tctx)
		var wave []rpc
		viable := 0
		for _, c := range short {
			if state[c.Peer] == stateFailed {
				continue
			}
			viable++
			if viable > n.cfg.K {
				break
			}
			if state[c.Peer] != stateNew {
				continue
			}
			reqID, ch := n.pending.Create()
			nbytes, err := n.sendLookupRPC(c.Peer, reqID, target, vq, wctx)
			wsp.AddMsgs(1, int64(nbytes))
			if err != nil {
				n.pending.Drop(reqID)
				state[c.Peer] = stateFailed
				n.reg.CountError(errs.Wrap("dht.lookup_rpc", err, "dht: lookup rpc failed"))
				if transport.IsPeerDead(err) {
					n.table.Remove(c.Peer)
				}
				continue
			}
			state[c.Peer] = stateResponded // provisional; demoted on timeout
			wave = append(wave, rpc{contact: c, reqID: reqID, ch: ch})
			if len(wave) == n.cfg.Alpha {
				break
			}
		}
		if len(wave) == 0 {
			break // span dropped unrecorded: an empty wave is not a round
		}
		out.rounds++
		grew := false
		for _, r := range wave {
			raw, err := p2p.Await(n.clk, n.ep.Synchronous(), r.ch, n.cfg.RPCTimeout)
			if err != nil {
				n.pending.Drop(r.reqID)
				state[r.contact.Peer] = stateFailed
				n.reg.CountError(errs.Wrap("dht.lookup_rpc", err, "dht: lookup rpc failed"))
				continue
			}
			var reply findValueReplyPayload // superset of the find-node reply
			if err := json.Unmarshal(raw, &reply); err != nil {
				state[r.contact.Peer] = stateFailed
				continue
			}
			for _, rec := range reply.Records {
				recs[recordKey{rec.DocID, rec.Provider}] = rec
			}
			for _, peer := range reply.Peers {
				if peer == n.ep.ID() || known[peer] {
					continue
				}
				known[peer] = true
				short = append(short, ContactFor(peer))
				grew = true
			}
		}
		if grew {
			sortByDistance(short, target)
		}
		wsp.Finish()
	}

	for _, c := range short {
		if state[c.Peer] == stateResponded {
			out.contacts = append(out.contacts, c)
			if len(out.contacts) == n.cfg.K {
				break
			}
		}
	}
	if len(recs) > 0 {
		out.records = make([]Record, 0, len(recs))
		for _, rec := range recs {
			out.records = append(out.records, rec)
		}
		sortRecords(out.records)
	}
	n.mLookups.Inc()
	n.mRounds.Add(int64(out.rounds))
	return out
}

// sendLookupRPC issues the wave's RPC — FIND_VALUE when a value query
// rides along, FIND_NODE otherwise — and returns the payload size it
// sent so the caller can attribute the frame to the wave span.
func (n *Node) sendLookupRPC(to transport.PeerID, reqID uint64, target ID, vq *valueQuery, wctx trace.Context) (int, error) {
	n.mContacted.Inc()
	var typ string
	var payload []byte
	if vq != nil {
		typ = MsgFindValue
		payload = marshal(findValuePayload{
			ReqID:       reqID,
			Key:         target,
			CommunityID: vq.communityID,
			Filter:      vq.filter,
			Limit:       vq.limit,
		})
	} else {
		typ = MsgFindNode
		payload = marshal(findNodePayload{ReqID: reqID, Target: target})
	}
	err := n.ep.Send(transport.Message{
		To:      to,
		Type:    typ,
		Payload: payload,
		TraceID: wctx.Trace,
		SpanID:  wctx.Span,
	})
	return len(payload), err
}
