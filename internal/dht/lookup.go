package dht

import (
	"sync"

	"repro/internal/errs"
	"repro/internal/p2p"
	"repro/internal/trace"
	"repro/internal/transport"
)

// lookupRPC is one in-flight wave RPC.
type lookupRPC struct {
	contact Contact
	reqID   uint64
	ch      chan any
}

// lookupScratch pools a lookup's working state — shortlist, wave, and
// bookkeeping maps — so the per-lookup steady state reuses slice
// capacity and map buckets instead of reallocating them. Pooled (not
// one-per-node) because sub-key fan-in re-enters lookup recursively:
// every activation gets its own scratch.
type lookupScratch struct {
	short    []Contact
	wave     []lookupRPC
	state    map[transport.PeerID]peerState
	known    map[transport.PeerID]bool
	returned map[transport.PeerID]bool
	recs     map[recordKey]Record
}

var lookupScratchPool = sync.Pool{New: func() any {
	return &lookupScratch{
		state:    make(map[transport.PeerID]peerState),
		known:    make(map[transport.PeerID]bool),
		returned: make(map[transport.PeerID]bool),
		recs:     make(map[recordKey]Record),
	}
}}

// valueQuery makes a lookup carry FIND_VALUE semantics: holders of
// the target key evaluate the community/filter server-side and return
// matching records alongside their closest contacts.
type valueQuery struct {
	communityID string
	filter      string
	limit       int
	// stopOnValue applies Kademlia's value-terminating FIND_VALUE:
	// stop at the end of the first wave in which a node returned a
	// Complete (cached, full-result-set) reply, instead of converging
	// on the full K closest. This is what lets cached copies absorb a
	// flash crowd — a querier that hits a cache on the lookup path
	// never reaches the key's k holders at all. Termination requires
	// the Complete flag: a record set, unlike Kademlia's atomic
	// values, can be partially replicated, so stopping on just any
	// records would silently lose recall.
	stopOnValue bool
	// sub marks a sub-key fan-in lookup of a split key, which must not
	// fan in again (sub-keys live in their own derive domain and are
	// never split, so this is belt and braces).
	sub bool
}

// lookupOutcome is the result of one iterative lookup.
type lookupOutcome struct {
	// contacts are the responsive nodes closest to the target, by
	// distance, at most K.
	contacts []Contact
	// records are the FIND_VALUE results, deduped by (DocID,
	// Provider) and sorted.
	records []Record
	// rounds is how many α-wide RPC waves the lookup took: its hop
	// count.
	rounds int
	// cacheTarget is the closest responded node that returned no
	// records — Kademlia's caching-STORE recipient — valid only when
	// hasCacheTarget is set.
	cacheTarget    Contact
	hasCacheTarget bool
	// limited reports that the lookup stopped early because it had
	// collected limit records: the set may be a truncation of the full
	// result, so it must never be cached.
	limited bool
	// fromCache reports that the lookup value-terminated on a Complete
	// cached reply: the record set already includes any sub-key
	// fan-in results it was cached with, so the caller skips fan-in.
	fromCache bool
}

// peerState tracks one shortlist entry through a lookup.
type peerState int

const (
	stateNew peerState = iota
	stateResponded
	stateFailed
)

// lookup runs the iterative Kademlia node/value lookup toward target.
// Each round queries the α closest unqueried candidates among the K
// best known, merges the contacts (and records) they return, and
// stops when the K closest known nodes have all been queried — the
// standard convergence rule, reaching the key's neighborhood in
// O(log n) rounds.
//
// On the synchronous simulated network every reply has already been
// handled when Send returns, so a "parallel" wave degenerates to α
// deterministic sequential RPCs; on TCP the α RPCs genuinely overlap
// and Await applies the RPC timeout. Candidates are always processed
// in sorted distance order, never map order, so two runs of one seed
// issue identical message sequences.
//
// tctx, when valid, ties the lookup into a sampled trace: each wave
// becomes one span (a child of the caller's span) and every RPC frame
// it sends is stamped with and attributed to its wave.
func (n *Node) lookup(tctx trace.Context, target ID, vq *valueQuery) lookupOutcome {
	var out lookupOutcome
	sc := lookupScratchPool.Get().(*lookupScratch)
	short := n.table.ClosestAppend(sc.short[:0], target, 0)
	state, known, returned, recs := sc.state, sc.known, sc.returned, sc.recs
	defer func() {
		sc.short = short[:0]
		clear(state)
		clear(known)
		clear(returned)
		clear(recs)
		lookupScratchPool.Put(sc)
	}()
	for _, c := range short {
		known[c.Peer] = true
	}
	// returned marks peers whose reply carried records (they hold the
	// value, so they are not cache-STORE candidates); splitFanout is
	// the widest sub-key split any holder advertised.
	splitFanout := 0

	for {
		// Pick up to α unqueried candidates among the K closest
		// still-viable entries. Each wave is one trace span; the RPCs
		// it issues are stamped with the wave's context.
		wsp := n.tr().Start(tctx, "wave")
		wctx := wsp.ContextOr(tctx)
		wave := sc.wave[:0]
		viable := 0
		for _, c := range short {
			if state[c.Peer] == stateFailed {
				continue
			}
			viable++
			if viable > n.cfg.K {
				break
			}
			if state[c.Peer] != stateNew {
				continue
			}
			reqID, ch := n.pending.Create()
			nbytes, err := n.sendLookupRPC(c.Peer, reqID, target, vq, wctx)
			wsp.AddMsgs(1, int64(nbytes))
			if err != nil {
				n.pending.Drop(reqID)
				state[c.Peer] = stateFailed
				n.reg.CountError(errs.Wrap("dht.lookup_rpc", err, "dht: lookup rpc failed"))
				if transport.IsPeerDead(err) {
					n.table.Remove(c.Peer)
				}
				continue
			}
			state[c.Peer] = stateResponded // provisional; demoted on timeout
			wave = append(wave, lookupRPC{contact: c, reqID: reqID, ch: ch})
			if len(wave) == n.cfg.Alpha {
				break
			}
		}
		sc.wave = wave
		if len(wave) == 0 {
			break // span dropped unrecorded: an empty wave is not a round
		}
		out.rounds++
		grew := false
		for _, r := range wave {
			got, err := p2p.Await(n.clk, n.ep.Synchronous(), r.ch, n.cfg.RPCTimeout)
			if err != nil {
				n.pending.Drop(r.reqID)
				state[r.contact.Peer] = stateFailed
				n.reg.CountError(errs.Wrap("dht.lookup_rpc", err, "dht: lookup rpc failed"))
				continue
			}
			// The handler resolved the reply as a typed frame: a
			// find-value reply, or a find-node reply (peers only).
			var records []Record
			var peers []transport.PeerID
			switch reply := got.(type) {
			case *findValueReplyPayload:
				records, peers = reply.Records, reply.Peers
				if reply.Complete {
					out.fromCache = true
				}
				if reply.Split > splitFanout {
					splitFanout = reply.Split
				}
			case *findNodeReplyPayload:
				peers = reply.Peers
			default:
				state[r.contact.Peer] = stateFailed
				continue
			}
			if len(records) > 0 {
				returned[r.contact.Peer] = true
			}
			for _, rec := range records {
				recs[recordKey{rec.DocID, rec.Provider}] = rec
			}
			for _, peer := range peers {
				if peer == n.ep.ID() || known[peer] {
					continue
				}
				known[peer] = true
				short = append(short, ContactFor(peer))
				grew = true
			}
		}
		if grew {
			sortByDistance(short, target)
		}
		wsp.Finish()
		if vq != nil && len(recs) > 0 {
			// Limit short-circuit: enough matches collected, the
			// remaining convergence rounds would only cost messages.
			// The set may be a truncation, so flag it uncacheable.
			if vq.limit > 0 && len(recs) >= vq.limit {
				out.limited = true
				n.mShortcircuits.Inc()
				break
			}
			// Value termination (Kademlia FIND_VALUE): a Complete
			// cached reply ends the lookup — the flash crowd stops at
			// the path copy instead of converging on the holders.
			if vq.stopOnValue && out.fromCache {
				break
			}
		}
	}

	for _, c := range short {
		if state[c.Peer] == stateResponded {
			out.contacts = append(out.contacts, c)
			if len(out.contacts) == n.cfg.K {
				break
			}
		}
	}
	// The caching-STORE recipient: the closest observed node that
	// answered but did not itself return records. In a converged
	// lookup the top-K contacts are all holders, so the scan covers
	// the whole responded shortlist — the recipient is typically a
	// node just outside the key's replica neighborhood, which is
	// exactly where a cache intercepts the next querier's waves.
	for _, c := range short {
		if state[c.Peer] == stateResponded && !returned[c.Peer] {
			out.cacheTarget = c
			out.hasCacheTarget = true
			break
		}
	}
	// Transparent sub-key fan-in: when a holder advertised that this
	// community key is split, the matching records live spread over
	// attribute-hash sub-keys; look each one up and merge. Sub-lookups
	// are themselves plain FIND_VALUE lookups (counted as lookups, and
	// their rounds add to the hop count) but never fan in again.
	if vq != nil && !vq.sub && vq.communityID != "" && splitFanout > 0 && !out.limited && !out.fromCache {
		for shard := 0; shard < splitFanout; shard++ {
			svq := *vq
			svq.sub = true
			sub := n.lookup(tctx, KeyForCommunityShard(vq.communityID, shard), &svq)
			for _, rec := range sub.records {
				recs[recordKey{rec.DocID, rec.Provider}] = rec
			}
			out.rounds += sub.rounds
			if sub.limited {
				out.limited = true
			}
			if vq.limit > 0 && len(recs) >= vq.limit {
				out.limited = true
				break
			}
		}
	}
	if len(recs) > 0 {
		out.records = make([]Record, 0, len(recs))
		for _, rec := range recs {
			out.records = append(out.records, rec)
		}
		sortRecords(out.records)
	}
	n.mLookups.Inc()
	n.mRounds.Add(int64(out.rounds))
	return out
}

// sendLookupRPC issues the wave's RPC — FIND_VALUE when a value query
// rides along, FIND_NODE otherwise — and returns the payload size it
// sent so the caller can attribute the frame to the wave span.
func (n *Node) sendLookupRPC(to transport.PeerID, reqID uint64, target ID, vq *valueQuery, wctx trace.Context) (int, error) {
	n.mContacted.Inc()
	var typ string
	var payload []byte
	if vq != nil {
		typ = MsgFindValue
		payload = n.cdc.Encode(&findValuePayload{
			ReqID:       reqID,
			Key:         target,
			CommunityID: vq.communityID,
			Filter:      vq.filter,
			Limit:       vq.limit,
		})
	} else {
		typ = MsgFindNode
		payload = n.cdc.Encode(&findNodePayload{ReqID: reqID, Target: target})
	}
	err := n.ep.Send(transport.Message{
		To:      to,
		Type:    typ,
		Payload: payload,
		TraceID: wctx.Trace,
		SpanID:  wctx.Span,
	})
	return len(payload), err
}
