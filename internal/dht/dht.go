// Package dht implements a Kademlia-style structured overlay as a
// fourth p2p.Network protocol, alongside the paper's centralized,
// Gnutella, and FastTrack architectures. Where those either flood
// queries or depend on index servers, the DHT routes every operation
// through a 160-bit XOR keyspace: node IDs and content keys share one
// space, each node keeps k-bucket routing state of O(k log n)
// contacts, and iterative lookups with parallelism α converge on the
// k nodes closest to any key in O(log n) hops.
//
// Mapping U-P2P's community model onto the keyspace:
//
//   - KeyForCommunity(communityID) is the community's slice of the
//     distributed index. Publishing a document STOREs its metadata
//     record (the same fields the centralized register frame carries)
//     on the k nodes closest to that key; searching a community is
//     one iterative FIND_VALUE toward it, with the attribute filter
//     evaluated holder-side so only matching records travel back.
//   - KeyForDoc(docID) holds provider records for direct
//     DocID-keyed provider lookups (Node.Providers).
//
// Records expire after Config.RecordTTL on their holders; publishers
// counter expiry — and re-replicate around churn — by periodic
// republish (Node.Refresh, p2p.ReannounceLocal over the STORE path),
// driven by the caller's schedule on a dsim.Clock rather than
// internal wall-clock timers, exactly like FastTrack's rehoming.
// Retrieval reuses the shared direct fetch protocol of package p2p.
//
// Everything iterates in sorted orders (bucket scans, shortlists,
// record sets), uses per-node request IDs, and probes liveness only
// on schedule, so a simulated deployment reproduces its message trace
// bit-for-bit from the seed like the other three protocols.
package dht

import (
	"time"

	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/transport"
)

// Tunables (zero values in Config select these).
const (
	// DefaultK is the bucket capacity and replication factor.
	DefaultK = 16
	// DefaultAlpha is the lookup parallelism.
	DefaultAlpha = 3
	// DefaultRecordTTL is how long a holder keeps a stored record
	// without a refresh.
	DefaultRecordTTL = 10 * time.Minute
	// DefaultRPCTimeout bounds one lookup RPC on asynchronous
	// transports (the synchronous simulator resolves instantly).
	DefaultRPCTimeout = time.Second
	// DefaultMaxRecordsPerKey caps how many records one holder keeps
	// under a single key: past it, deterministic eviction (cached
	// entries first, then earliest-expiring primaries) keeps a flash
	// crowd of publishes from exhausting the holder's memory.
	DefaultMaxRecordsPerKey = 1024
	// DefaultSplitFanout is how many attribute-hash sub-keys a hot key
	// splits into when SplitThreshold is enabled.
	DefaultSplitFanout = 8
)

// Config tunes a Node. The zero value selects the defaults above.
type Config struct {
	// K is the bucket capacity and the replication factor: records
	// are stored on the K nodes closest to their key.
	K int
	// Alpha is the number of parallel RPCs per lookup round.
	Alpha int
	// RecordTTL is the holder-side record lifetime; publishers must
	// refresh within it or their records expire.
	RecordTTL time.Duration
	// RPCTimeout bounds one lookup RPC on asynchronous transports.
	RPCTimeout time.Duration
	// CacheRecords enables Kademlia's caching STORE: FIND_VALUE
	// lookups terminate at the first wave that returns records, and
	// the querier then replicates the (complete, filter-tagged) result
	// set onto the closest observed node that did not hold it, with a
	// halved TTL. Under a flash crowd the cached copies spread outward
	// from the key's neighborhood and absorb the load before it ever
	// reaches the k holders. Off by default: enabling it changes the
	// message trace, so golden-trace baselines keep it off.
	CacheRecords bool
	// SplitThreshold, when positive, splits hot keys: a holder whose
	// record count under one community key reaches the threshold
	// migrates those records into SplitFanout attribute-hash sub-keys
	// and advertises the split in FIND_VALUE replies, which queriers
	// fan into transparently. Zero disables splitting.
	SplitThreshold int
	// SplitFanout is the number of sub-keys a split key shards into
	// (0 selects DefaultSplitFanout; only read when SplitThreshold is
	// positive).
	SplitFanout int
	// MaxRecordsPerKey caps per-key holder state (0 selects
	// DefaultMaxRecordsPerKey).
	MaxRecordsPerKey int
	// RepublishAlways disables the adaptive republish check: every
	// Refresh cycle re-STOREs every local key even when the previous
	// announce's holder set is intact and the records are fresh.
	// The paper-faithful (and expensive) baseline — E14 measures the
	// message-count gap between this and the adaptive default.
	RepublishAlways bool
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.Alpha <= 0 {
		c.Alpha = DefaultAlpha
	}
	if c.RecordTTL <= 0 {
		c.RecordTTL = DefaultRecordTTL
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = DefaultRPCTimeout
	}
	if c.MaxRecordsPerKey <= 0 {
		c.MaxRecordsPerKey = DefaultMaxRecordsPerKey
	}
	if c.SplitFanout <= 0 {
		c.SplitFanout = DefaultSplitFanout
	}
	return c
}

// Message types on the wire. They ride the same transport.Message
// frames (and trace hashing, and Stats.PerType accounting) as the
// other protocols' messages.
const (
	MsgPing           = "dht-ping"
	MsgPong           = "dht-pong"
	MsgFindNode       = "dht-find-node"
	MsgFindNodeReply  = "dht-find-node-reply"
	MsgFindValue      = "dht-find-value"
	MsgFindValueReply = "dht-find-value-reply"
	// MsgStore replicates records to a key's closest nodes; it is
	// fire-and-forget like Kademlia's STORE (expiry plus republish
	// repair lost copies, so an ack would buy nothing).
	MsgStore = "dht-store"
	// MsgUnstore withdraws one provider's record under a key.
	MsgUnstore = "dht-unstore"
)

// Record is one replicated metadata entry: the registered fields of a
// document (exactly what the centralized register frame carries) plus
// its provider. Replicas are content-addressed by (DocID, Provider).
type Record struct {
	DocID       index.DocID      `json:"docId"`
	CommunityID string           `json:"communityId"`
	Title       string           `json:"title"`
	Attrs       query.Attrs      `json:"attrs"`
	Provider    transport.PeerID `json:"provider"`
}

// --- wire payloads ---

type pingPayload struct {
	ReqID uint64 `json:"reqId"`
}

type findNodePayload struct {
	ReqID  uint64 `json:"reqId"`
	Target ID     `json:"target"`
}

type findNodeReplyPayload struct {
	ReqID uint64             `json:"reqId"`
	Peers []transport.PeerID `json:"peers"`
}

type findValuePayload struct {
	ReqID uint64 `json:"reqId"`
	Key   ID     `json:"key"`
	// CommunityID/Filter/Limit let the holder evaluate the query
	// server-side, so only matching records travel back.
	CommunityID string `json:"communityId"`
	Filter      string `json:"filter"`
	Limit       int    `json:"limit"`
}

type findValueReplyPayload struct {
	ReqID   uint64             `json:"reqId"`
	Records []Record           `json:"records,omitempty"`
	Peers   []transport.PeerID `json:"peers"`
	// Split, when positive, advertises that the responder has split
	// this key into that many attribute-hash sub-keys; the querier
	// fans its lookup into them and merges the results.
	Split int `json:"split,omitempty"`
	// Complete marks records served from a cached copy for exactly the
	// query's filter — a complete result set by construction (only
	// full, unlimited sets are ever cache-STOREd). A value-terminating
	// lookup may stop on a Complete reply without losing recall;
	// ordinary holder replies carry no such guarantee (a record set,
	// unlike Kademlia's atomic values, can be partially replicated).
	Complete bool `json:"complete,omitempty"`
}

type storePayload struct {
	Key     ID       `json:"key"`
	Records []Record `json:"records"`
	// Cached marks a caching STORE from a FIND_VALUE querier: the
	// holder keeps the records with a halved TTL, tagged with Filter,
	// and never lets them displace primary replicas. Cached records
	// carry third-party providers, so the provider==sender provenance
	// rule is relaxed for them — the copies are short-lived and
	// age out first by construction.
	Cached bool `json:"cached,omitempty"`
	// Filter is the canonical filter string a cached record set is
	// complete for; holders serve cached entries only to queries
	// carrying the identical filter, so a cache never truncates the
	// result set of a different query.
	Filter string `json:"filter,omitempty"`
	// Split marks a hot-key migration STORE: a holder redistributing
	// its records into a sub-key's neighborhood. Like Cached it
	// relays third-party providers, so provenance is relaxed.
	Split bool `json:"split,omitempty"`
}

type unstorePayload struct {
	Key      ID               `json:"key"`
	DocID    index.DocID      `json:"docId"`
	Provider transport.PeerID `json:"provider"`
}
