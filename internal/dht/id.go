package dht

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"strconv"

	"repro/internal/index"
	"repro/internal/transport"
)

// The keyspace: 160-bit identifiers under the XOR metric, as in
// Kademlia. Node IDs and content keys share one space, so "the k
// nodes closest to a key" is well defined. IDs derive from SHA-256
// (truncated) with a domain-separation prefix per kind, so a peer
// named after a community string cannot collide with that community's
// key.

// ID sizes.
const (
	// IDBytes is the identifier width in bytes (160 bits).
	IDBytes = 20
	// IDBits is the identifier width in bits: the number of k-buckets
	// a routing table holds.
	IDBits = 8 * IDBytes
)

// ID is one point in the 160-bit XOR keyspace.
type ID [IDBytes]byte

func derive(domain, s string) ID {
	sum := sha256.Sum256([]byte(domain + "\x00" + s))
	var id ID
	copy(id[:], sum[:IDBytes])
	return id
}

// NodeIDFor maps a peer's network identity into the keyspace.
func NodeIDFor(peer transport.PeerID) ID { return derive("node", string(peer)) }

// KeyForCommunity maps a community ID to the key its metadata records
// replicate under: the community's slice of the distributed index.
func KeyForCommunity(communityID string) ID { return derive("community", communityID) }

// KeyForDoc maps a document ID to the key its provider records
// replicate under, for direct DocID-keyed provider lookups.
func KeyForDoc(id index.DocID) ID { return derive("doc", string(id)) }

// KeyForCommunityShard maps one attribute-hash sub-key of a split
// community key: the shard-th slice a hot community's records spread
// over once a holder crosses its split threshold. The domain prefix
// keeps sub-keys disjoint from community keys, so a sub-key can never
// itself be recognized as splittable — splitting is one level deep.
func KeyForCommunityShard(communityID string, shard int) ID {
	return derive("community-shard", communityID+"\x00"+strconv.Itoa(shard))
}

// RefreshTarget returns a deterministic lookup target inside bucket's
// range of self's routing table: it shares self's bits above bucket,
// differs at bit bucket, and takes the remaining low bits from a
// derived hash. Looking it up (the Kademlia bucket refresh) fills that
// bucket with peers from its distance range. Deriving the target from
// (self, bucket) instead of drawing randomness keeps joins
// reproducible.
func RefreshTarget(self ID, bucket int) ID {
	t := derive("bucket-refresh", string(self[:])+":"+strconv.Itoa(bucket))
	bi := IDBytes - 1 - bucket/8
	bit := uint(bucket % 8)
	for i := 0; i < bi; i++ {
		t[i] = self[i]
	}
	high := byte(0xFF) << bit << 1 // bits strictly above bucket's bit
	t[bi] = (self[bi] & high) | (t[bi] &^ high)
	t[bi] = (t[bi] &^ (1 << bit)) | (^self[bi] & (1 << bit))
	return t
}

// ShardOf assigns a record to one of fanout sub-keys by hashing its
// DocID — deterministic across holders, so every holder that splits a
// key migrates a given record to the same sub-key.
func ShardOf(id index.DocID, fanout int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(fanout))
}

// XOR returns the Kademlia distance vector between two points.
func (a ID) XOR(b ID) ID {
	var d ID
	for i := range a {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// BucketIndex returns which k-bucket of a's routing table b belongs
// in: the index of the most significant differing bit (0 = closest
// half of the keyspace, IDBits-1 = farthest). Returns -1 when a == b.
func BucketIndex(a, b ID) int {
	for i := range a {
		if x := a[i] ^ b[i]; x != 0 {
			bitlen := 0
			for x > 0 {
				x >>= 1
				bitlen++
			}
			return 8*(IDBytes-1-i) + bitlen - 1
		}
	}
	return -1
}

// CompareDistance orders a and b by XOR distance to target: negative
// when a is closer, positive when b is, zero when equidistant (only
// possible when a == b). It compares distance vectors bytewise, which
// is the numeric comparison of the 160-bit distances.
func CompareDistance(a, b, target ID) int {
	for i := range target {
		da, db := a[i]^target[i], b[i]^target[i]
		if da != db {
			if da < db {
				return -1
			}
			return 1
		}
	}
	return 0
}

// String renders the ID as hex.
func (a ID) String() string { return hex.EncodeToString(a[:]) }

// MarshalText implements encoding.TextMarshaler so IDs travel as hex
// strings inside JSON wire payloads.
func (a ID) MarshalText() ([]byte, error) {
	out := make([]byte, hex.EncodedLen(len(a)))
	hex.Encode(out, a[:])
	return out, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *ID) UnmarshalText(text []byte) error {
	if hex.DecodedLen(len(text)) != IDBytes {
		return fmt.Errorf("dht: bad ID length %d", len(text))
	}
	_, err := hex.Decode(a[:], text)
	return err
}
