package dht

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dsim"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/p2p"
	"repro/internal/p2p/codec"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/transport"
)

// testNet builds n bootstrapped DHT nodes on one in-memory network.
func testNet(t *testing.T, n int, cfg Config) (*transport.MemNetwork, []*Node) {
	t.Helper()
	net := transport.NewMemNetwork(transport.WithSeed(1))
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("peer%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = NewNode(ep, index.NewStore(), cfg)
	}
	for i := 1; i < n; i++ {
		nodes[i].Bootstrap(nodes[0].PeerID())
	}
	return net, nodes
}

func doc(i int, community, class string) *index.Document {
	return &index.Document{
		ID:          index.DocID(fmt.Sprintf("d-%04d", i)),
		CommunityID: community,
		Title:       fmt.Sprintf("doc %d", i),
		Attrs:       query.Attrs{"classification": {class}},
	}
}

// TestPublishSearchAcrossNodes: records published anywhere are found
// from everywhere via community-key lookups, with server-side filters
// honored.
func TestPublishSearchAcrossNodes(t *testing.T) {
	_, nodes := testNet(t, 24, Config{K: 4, Alpha: 2})
	for i := 0; i < 12; i++ {
		class := "behavioral"
		if i%2 == 0 {
			class = "creational"
		}
		if err := nodes[i].Publish(doc(i, "patterns", class)); err != nil {
			t.Fatal(err)
		}
	}
	for _, searcher := range []int{0, 7, 23} {
		rs, err := nodes[searcher].Search("patterns", query.MustParse("(classification=behavioral)"), p2p.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 6 {
			t.Fatalf("searcher %d: %d hits, want 6", searcher, len(rs))
		}
		for _, r := range rs {
			if r.CommunityID != "patterns" || r.Attrs.Get("classification") != "behavioral" {
				t.Fatalf("bad hit: %+v", r)
			}
		}
	}
	// Limit caps the merged result set.
	rs, err := nodes[3].Search("patterns", nil, p2p.SearchOptions{Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("limited search: %d hits, want 4", len(rs))
	}
}

// TestProvidersAndUnpublish exercises the DocID-keyed half of the
// keyspace and record withdrawal.
func TestProvidersAndUnpublish(t *testing.T) {
	_, nodes := testNet(t, 16, Config{K: 4, Alpha: 2})
	d := doc(1, "patterns", "structural")
	if err := nodes[5].Publish(d); err != nil {
		t.Fatal(err)
	}
	provs := nodes[11].Providers(d.ID)
	if len(provs) != 1 || provs[0].Provider != nodes[5].PeerID() {
		t.Fatalf("providers = %+v", provs)
	}
	// A second provider replicates under the same key.
	if err := nodes[8].Publish(doc(1, "patterns", "structural")); err != nil {
		t.Fatal(err)
	}
	if provs = nodes[2].Providers(d.ID); len(provs) != 2 {
		t.Fatalf("providers after replica = %+v", provs)
	}
	if err := nodes[5].Unpublish(d.ID); err != nil {
		t.Fatal(err)
	}
	provs = nodes[2].Providers(d.ID)
	if len(provs) != 1 || provs[0].Provider != nodes[8].PeerID() {
		t.Fatalf("providers after unpublish = %+v", provs)
	}
	rs, err := nodes[0].Search("patterns", nil, p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Provider == nodes[5].PeerID() {
			t.Fatalf("unpublished provider still searchable: %+v", r)
		}
	}
}

// TestRecordExpiryAndRefresh: on a virtual clock, records age out at
// RecordTTL unless the publisher's Refresh re-replicates them.
func TestRecordExpiryAndRefresh(t *testing.T) {
	clk := dsim.NewVirtualClock()
	net := transport.NewMemNetwork(transport.WithSeed(1))
	cfg := Config{K: 3, Alpha: 2, RecordTTL: 10 * time.Second}
	var nodes []*Node
	for i := 0; i < 10; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("peer%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		nd := NewNode(ep, index.NewStore(), cfg)
		nd.SetClock(clk)
		nodes = append(nodes, nd)
	}
	for i := 1; i < len(nodes); i++ {
		nodes[i].Bootstrap(nodes[0].PeerID())
	}
	if err := nodes[4].Publish(doc(9, "patterns", "behavioral")); err != nil {
		t.Fatal(err)
	}
	search := func(from int) int {
		rs, err := nodes[from].Search("patterns", nil, p2p.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return len(rs)
	}
	if got := search(7); got != 1 {
		t.Fatalf("pre-expiry hits = %d", got)
	}
	// Advance past the TTL without a refresh: the record is gone for
	// everyone but its publisher (who still holds the object).
	clk.Sleep(11 * time.Second)
	if got := search(7); got != 0 {
		t.Fatalf("post-expiry hits = %d, want 0", got)
	}
	if got := search(4); got != 1 {
		t.Fatalf("publisher lost its own object: hits = %d", got)
	}
	// Refresh republishes and restores remote discoverability.
	if err := nodes[4].Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := search(7); got != 1 {
		t.Fatalf("post-refresh hits = %d, want 1", got)
	}
}

// TestDeadContactRepair: killed peers are evicted on definitive send
// errors and scheduled liveness checks; lookups keep working.
func TestDeadContactRepair(t *testing.T) {
	_, nodes := testNet(t, 12, Config{K: 3, Alpha: 2})
	for i := 0; i < 6; i++ {
		if err := nodes[i].Publish(doc(i, "patterns", "behavioral")); err != nil {
			t.Fatal(err)
		}
	}
	// Kill a third of the network, including a publisher.
	for _, victim := range []int{1, 6, 9} {
		if err := nodes[victim].Close(); err != nil {
			t.Fatal(err)
		}
	}
	// One liveness round probes (and on success rotates) one contact
	// per bucket, so k rounds sweep a full bucket.
	for round := 0; round < 3; round++ {
		for _, alive := range []int{0, 2, 3, 4, 5, 7, 8, 10, 11} {
			nodes[alive].CheckLiveness()
		}
	}
	for _, alive := range []int{0, 2, 3, 4, 5, 7, 8, 10, 11} {
		for _, c := range nodes[alive].table.Closest(nodes[alive].self, 0) {
			if c.Peer == nodes[1].PeerID() || c.Peer == nodes[6].PeerID() || c.Peer == nodes[9].PeerID() {
				t.Fatalf("node %d still routes to dead contact %s", alive, c.Peer)
			}
		}
	}
	rs, err := nodes[11].Search("patterns", query.MustParse("(classification=behavioral)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) < 5 {
		t.Fatalf("post-churn hits = %d, want >= 5 (one publisher died)", len(rs))
	}
}

// TestLookupConvergence: at 64 nodes with k=8 the hop count stays
// logarithmic (well under the flooding diameter) and repeated
// lookups are deterministic.
func TestLookupConvergence(t *testing.T) {
	_, nodes := testNet(t, 64, Config{K: 8, Alpha: 3})
	target := KeyForCommunity("patterns")
	before := nodes[17].Metrics().Snapshot()
	out1 := nodes[17].lookup(trace.Context{}, target, nil)
	out2 := nodes[17].lookup(trace.Context{}, target, nil)
	if out1.rounds == 0 || out1.rounds > 6 {
		t.Fatalf("rounds = %d, want 1..6", out1.rounds)
	}
	d := nodes[17].Metrics().Snapshot().Delta(before)
	lookups, rounds, contacted := d.Counter("dht.lookups"), d.Counter("dht.lookup_rounds"), d.Counter("dht.peers_contacted")
	if lookups != 2 || rounds != int64(out1.rounds+out2.rounds) || contacted <= 0 {
		t.Fatalf("lookup counters inconsistent: lookups=%d rounds=%d (want %d) contacted=%d",
			lookups, rounds, out1.rounds+out2.rounds, contacted)
	}
	if len(out1.contacts) != 8 {
		t.Fatalf("contacts = %d, want k=8", len(out1.contacts))
	}
	for i := range out1.contacts {
		if out1.contacts[i].Peer != out2.contacts[i].Peer {
			t.Fatalf("lookup not deterministic at %d", i)
		}
	}
	// The lookup's k closest must equal the brute-force k closest
	// over the whole population (everyone is reachable and alive).
	all := make([]Contact, 0, len(nodes))
	for _, nd := range nodes {
		if nd.PeerID() != nodes[17].PeerID() {
			all = append(all, ContactFor(nd.PeerID()))
		}
	}
	sortByDistance(all, target)
	for i := 0; i < 8; i++ {
		if out1.contacts[i].Peer != all[i].Peer {
			t.Fatalf("lookup closest[%d] = %s, oracle %s", i, out1.contacts[i].Peer, all[i].Peer)
		}
	}
}

// TestStoreProvenance: a peer can neither forge records under another
// provider's name nor withdraw another provider's records — STORE and
// unstore frames only act when Provider matches the sender.
func TestStoreProvenance(t *testing.T) {
	net := transport.NewMemNetwork(transport.WithSeed(1))
	cfg := Config{K: 4, Alpha: 2}
	mk := func(id string) *Node {
		ep, err := net.Endpoint(transport.PeerID(id))
		if err != nil {
			t.Fatal(err)
		}
		return NewNode(ep, index.NewStore(), cfg)
	}
	holder, victim, attacker := mk("holder"), mk("victim"), mk("attacker")
	victim.Bootstrap(holder.PeerID())
	attacker.Bootstrap(holder.PeerID())
	if err := victim.Publish(doc(1, "patterns", "behavioral")); err != nil {
		t.Fatal(err)
	}
	key := KeyForCommunity("patterns")
	// Forged STORE: attacker claims the victim provides a document.
	forged := Record{DocID: "d-evil", CommunityID: "patterns", Provider: victim.PeerID(), Attrs: query.Attrs{"classification": {"behavioral"}}}
	atkEP, err := net.Endpoint("attacker-raw")
	if err != nil {
		t.Fatal(err)
	}
	forgedStore := storePayload{Key: key, Records: []Record{forged}}
	_ = atkEP.Send(transport.Message{To: holder.PeerID(), Type: MsgStore, Payload: codec.Default.Encode(&forgedStore)})
	// Forged unstore: attacker withdraws the victim's real record.
	real := doc(1, "patterns", "behavioral")
	forgedUnstore := unstorePayload{Key: key, DocID: real.ID, Provider: victim.PeerID()}
	_ = atkEP.Send(transport.Message{To: holder.PeerID(), Type: MsgUnstore, Payload: codec.Default.Encode(&forgedUnstore)})
	rs, err := attacker.Search("patterns", query.MustParse("(classification=behavioral)"), p2p.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].DocID != real.ID || rs[0].Provider != victim.PeerID() {
		t.Fatalf("results = %+v, want only the victim's real record intact", rs)
	}
}

// sharedNet is testNet with one shared metrics registry across all
// nodes, so cluster-wide counters (cache stores on queriers, cache
// hits on holders) can be asserted in one place.
func sharedNet(t *testing.T, n int, cfg Config) ([]*Node, *metrics.Registry) {
	t.Helper()
	net := transport.NewMemNetwork(transport.WithSeed(1))
	reg := metrics.NewRegistry()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("peer%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = NewNode(ep, index.NewStore(), cfg)
		nodes[i].SetMetrics(reg)
	}
	for i := 1; i < n; i++ {
		nodes[i].Bootstrap(nodes[0].PeerID())
	}
	return nodes, reg
}

// TestCachingStoreAndHits: with CacheRecords on, a successful search
// plants a cached copy on a lookup-path non-holder (dht.cache_stores),
// repeat searches for the same filter are served from it
// (dht.cache_hits), and the result set stays identical to the
// cache-off answer.
func TestCachingStoreAndHits(t *testing.T) {
	// 64 nodes at k=4: routing tables cover a fraction of the network,
	// so lookups route through non-holders — the nodes a caching STORE
	// lands on. (In a smaller net every queried node is a holder and
	// there is nowhere to cache.)
	nodes, reg := sharedNet(t, 64, Config{K: 4, Alpha: 2, CacheRecords: true})
	for i := 0; i < 12; i++ {
		class := "behavioral"
		if i%2 == 0 {
			class = "creational"
		}
		if err := nodes[i].Publish(doc(i, "patterns", class)); err != nil {
			t.Fatal(err)
		}
	}
	// A run of distinct queriers for one filter: early ones plant
	// cached copies on their lookup paths (not every searcher has a
	// non-holder on its path, but most do), later ones are served from
	// them — and every answer must be the same complete set.
	f := query.MustParse("(classification=behavioral)")
	var first []p2p.Result
	for searcher := 20; searcher < 32; searcher++ {
		rs, err := nodes[searcher].Search("patterns", f, p2p.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 6 {
			t.Fatalf("searcher %d hits = %d, want 6", searcher, len(rs))
		}
		if first == nil {
			first = rs
			continue
		}
		for i := range rs {
			if rs[i].DocID != first[i].DocID || rs[i].Provider != first[i].Provider {
				t.Fatalf("searcher %d answer diverges at %d: %+v vs %+v", searcher, i, rs[i], first[i])
			}
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter("dht.cache_stores"); got < 1 {
		t.Fatalf("cache_stores = %d, want >= 1", got)
	}
	if got := snap.Counter("dht.cache_hits"); got < 1 {
		t.Fatalf("cache_hits = %d, want >= 1", got)
	}
}

// TestLimitShortcircuit: a limited FIND_VALUE stops converging once it
// holds limit records and counts the early exit.
func TestLimitShortcircuit(t *testing.T) {
	nodes, reg := sharedNet(t, 24, Config{K: 4, Alpha: 2})
	for i := 0; i < 12; i++ {
		if err := nodes[i].Publish(doc(i, "patterns", "behavioral")); err != nil {
			t.Fatal(err)
		}
	}
	before := reg.Snapshot()
	rs, err := nodes[20].Search("patterns", nil, p2p.SearchOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("limited search hits = %d, want 2", len(rs))
	}
	if got := reg.Snapshot().Delta(before).Counter("dht.lookup_shortcircuits"); got < 1 {
		t.Fatalf("lookup_shortcircuits = %d, want >= 1", got)
	}
}

// TestAdaptiveRefreshSkips: a Refresh right after publishing finds
// every holder set intact and skips the STORE fan-out; once records
// approach half their TTL the republish is forced.
func TestAdaptiveRefreshSkips(t *testing.T) {
	clk := dsim.NewVirtualClock()
	net := transport.NewMemNetwork(transport.WithSeed(1))
	reg := metrics.NewRegistry()
	cfg := Config{K: 3, Alpha: 2, RecordTTL: 10 * time.Second}
	var nodes []*Node
	for i := 0; i < 12; i++ {
		ep, err := net.Endpoint(transport.PeerID(fmt.Sprintf("peer%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		nd := NewNode(ep, index.NewStore(), cfg)
		nd.SetClock(clk)
		nd.SetMetrics(reg)
		nodes = append(nodes, nd)
	}
	for i := 1; i < len(nodes); i++ {
		nodes[i].Bootstrap(nodes[0].PeerID())
	}
	if err := nodes[4].Publish(doc(9, "patterns", "behavioral")); err != nil {
		t.Fatal(err)
	}
	// No churn, no aging: both keys' holders are intact, so the probe
	// lookups suffice and no STORE is sent.
	before := reg.Snapshot()
	if err := nodes[4].Refresh(); err != nil {
		t.Fatal(err)
	}
	d := reg.Snapshot().Delta(before)
	if d.Counter("dht.republishes_skipped") != 2 {
		t.Fatalf("republishes_skipped = %d, want 2 (community + doc key)", d.Counter("dht.republishes_skipped"))
	}
	if d.Counter("dht.store_fanout") != 0 {
		t.Fatalf("store_fanout = %d, want 0 on an intact refresh", d.Counter("dht.store_fanout"))
	}
	// Half the TTL later the records are approaching expiry: the same
	// Refresh must now republish unconditionally.
	clk.Sleep(5 * time.Second)
	before = reg.Snapshot()
	if err := nodes[4].Refresh(); err != nil {
		t.Fatal(err)
	}
	d = reg.Snapshot().Delta(before)
	if d.Counter("dht.republishes_skipped") != 0 {
		t.Fatalf("republishes_skipped = %d after TTL/2, want 0", d.Counter("dht.republishes_skipped"))
	}
	if d.Counter("dht.store_fanout") == 0 {
		t.Fatal("store_fanout = 0 after TTL/2, want a forced republish")
	}
}

// TestRefreshTargetBuckets: the deterministic bucket-refresh targets
// land in exactly the bucket they are derived for.
func TestRefreshTargetBuckets(t *testing.T) {
	for _, seed := range []string{"node-a", "node-b", "node-c"} {
		self := NodeIDFor(transport.PeerID(seed))
		for _, b := range []int{0, 1, 5, 7, 8, 9, 63, 64, 100, 158, 159} {
			target := RefreshTarget(self, b)
			if got := BucketIndex(self, target); got != b {
				t.Fatalf("self %s bucket %d: target lands in bucket %d", seed, b, got)
			}
		}
	}
}

// TestHotKeySplitFanIn: a community key pushed past SplitThreshold
// spills into attribute-hash sub-keys, and searches transparently fan
// in with no recall loss.
func TestHotKeySplitFanIn(t *testing.T) {
	nodes, reg := sharedNet(t, 24, Config{K: 4, Alpha: 2, SplitThreshold: 8, SplitFanout: 4})
	for i := 0; i < 12; i++ {
		class := "behavioral"
		if i%2 == 0 {
			class = "creational"
		}
		if err := nodes[i].Publish(doc(i, "patterns", class)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Snapshot().Counter("dht.key_splits"); got < 1 {
		t.Fatalf("key_splits = %d, want >= 1 (threshold 8, 12 records)", got)
	}
	for _, searcher := range []int{20, 23} {
		rs, err := nodes[searcher].Search("patterns", nil, p2p.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 12 {
			t.Fatalf("searcher %d post-split hits = %d, want 12", searcher, len(rs))
		}
		rs, err = nodes[searcher].Search("patterns", query.MustParse("(classification=behavioral)"), p2p.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 6 {
			t.Fatalf("searcher %d filtered post-split hits = %d, want 6", searcher, len(rs))
		}
	}
}
