package dht

import (
	"encoding/json"
	"sort"
	"sync"

	"repro/internal/dsim"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/transport"
)

// storeChunk bounds records per STORE frame, like the register-batch
// chunking, so one bulk publication cannot exceed a transport's frame
// limit.
const storeChunk = 512

// Node is one DHT peer: a p2p.Network whose Publish/Search/Unpublish
// route through the keyspace instead of a server or a flood. The
// local index.Store holds the node's own shared objects (as on every
// protocol); the record store holds the slices of the distributed
// index this node is a closest-k holder of.
type Node struct {
	ep      transport.Endpoint
	store   *index.Store
	cfg     Config
	self    ID
	table   *Table
	records *recordStore
	pending *p2p.PendingTable
	clk     dsim.Clock

	mu     sync.RWMutex
	attach p2p.AttachmentProvider
	tracer *trace.Tracer
	closed bool

	// Telemetry handles, resolved by SetMetrics (default: a private
	// registry, preserving per-node semantics for LookupCounters).
	reg        *metrics.Registry
	nm         *p2p.NodeMetrics
	mLookups   *metrics.Counter
	mRounds    *metrics.Counter
	mContacted *metrics.Counter
	mFanout    *metrics.Counter
}

var _ p2p.Network = (*Node)(nil)

// NewNode attaches a DHT node to the network. store holds the peer's
// shared objects; cfg's zero value selects the package defaults.
// Topology comes from Bootstrap (the simulator wires it; over TCP a
// bootstrap list plays the same role).
func NewNode(ep transport.Endpoint, store *index.Store, cfg Config) *Node {
	cfg = cfg.withDefaults()
	self := NodeIDFor(ep.ID())
	n := &Node{
		ep:      ep,
		store:   store,
		cfg:     cfg,
		self:    self,
		table:   NewTable(self, cfg.K),
		records: newRecordStore(cfg.RecordTTL),
		pending: p2p.NewPendingTable(),
		clk:     dsim.Wall,
	}
	n.SetMetrics(metrics.NewRegistry())
	ep.SetHandler(n.handle)
	return n
}

// SetMetrics points the node's telemetry at reg: the dht.* lookup and
// replication counters, the protocol-labeled p2p.* families (label
// "dht"), and the record store's expiry counter. Like SetClock, call
// before traffic starts. The default is a private registry, so
// LookupCounters stays per-node unless a shared registry is injected.
func (n *Node) SetMetrics(reg *metrics.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg = reg
	n.nm = p2p.NewNodeMetrics(reg, "dht")
	n.mLookups = reg.Counter("dht.lookups")
	n.mRounds = reg.Counter("dht.lookup_rounds")
	n.mContacted = reg.Counter("dht.peers_contacted")
	n.mFanout = reg.Counter("dht.store_fanout")
	n.records.setExpiredCounter(reg.Counter("dht.records_expired"))
}

// SetTracer installs the node's span recorder (nil disables tracing,
// the default). Like SetClock, call before traffic starts.
func (n *Node) SetTracer(t *trace.Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tracer = t
}

func (n *Node) tr() *trace.Tracer {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.tracer
}

// PeerID implements p2p.Network.
func (n *Node) PeerID() transport.PeerID { return n.ep.ID() }

// ID returns the node's point in the keyspace.
func (n *Node) ID() ID { return n.self }

// SetClock installs the clock that paces RPC timeouts and record
// expiry (default wall). Call before traffic starts.
func (n *Node) SetClock(clk dsim.Clock) {
	if clk != nil {
		n.clk = clk
	}
}

// SetAttachmentProvider implements p2p.Network.
func (n *Node) SetAttachmentProvider(p p2p.AttachmentProvider) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.attach = p
}

// TableLen returns the number of live routing-table contacts.
func (n *Node) TableLen() int { return n.table.Len() }

// RecordCount returns how many unexpired records this node holds for
// the keyspace.
func (n *Node) RecordCount() int { return n.records.len(n.clk.Now()) }

// Metrics returns the registry this node records into.
func (n *Node) Metrics() *metrics.Registry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.reg
}

// Bootstrap seeds the routing table with the given peers and runs the
// Kademlia join: an iterative lookup of the node's own ID, which
// populates the table with the neighborhood and inserts this node
// into the tables of everyone contacted.
func (n *Node) Bootstrap(peers ...transport.PeerID) {
	for _, p := range peers {
		if p != n.ep.ID() {
			n.table.Observe(p)
		}
	}
	n.lookup(trace.Context{}, n.self, nil)
}

// Publish implements p2p.Network: store locally, then replicate the
// metadata record onto the k nodes closest to the community key (the
// distributed index slice) and to the document key (provider
// lookups).
func (n *Node) Publish(doc *index.Document) error {
	if err := n.store.Put(doc); err != nil {
		return err
	}
	n.nm.Publishes.Inc()
	sp := n.tr().Root("publish")
	sp.SetCommunity(doc.CommunityID)
	defer sp.Finish()
	return n.announce(sp.Context(), []*index.Document{doc})
}

// PublishBatch implements p2p.Network: one local store batch, then
// one community-key lookup per distinct community (not per document)
// with the records chunked over STORE frames.
func (n *Node) PublishBatch(docs []*index.Document) error {
	if len(docs) == 0 {
		return nil
	}
	if err := n.store.PutBatch(docs); err != nil {
		return err
	}
	n.nm.Publishes.Add(int64(len(docs)))
	sp := n.tr().Root("publish")
	defer sp.Finish()
	return n.announce(sp.Context(), docs)
}

// announce replicates records for docs into the keyspace. STOREs are
// fire-and-forget: a lost or refused replica is repaired by the next
// Refresh, exactly like Kademlia republish.
func (n *Node) announce(tctx trace.Context, docs []*index.Document) error {
	if n.isClosed() {
		return p2p.ErrClosed
	}
	byComm := make(map[string][]Record)
	for _, doc := range docs {
		byComm[doc.CommunityID] = append(byComm[doc.CommunityID], recordFor(doc, n.ep.ID()))
	}
	comms := make([]string, 0, len(byComm))
	for c := range byComm {
		comms = append(comms, c)
	}
	sort.Strings(comms)
	for _, c := range comms {
		n.storeRecords(tctx, KeyForCommunity(c), byComm[c])
	}
	for _, doc := range docs {
		n.storeRecords(tctx, KeyForDoc(doc.ID), []Record{recordFor(doc, n.ep.ID())})
	}
	return nil
}

// recordFor extracts the replicated metadata of a document.
func recordFor(doc *index.Document, provider transport.PeerID) Record {
	return Record{
		DocID:       doc.ID,
		CommunityID: doc.CommunityID,
		Title:       doc.Title,
		Attrs:       doc.Attrs,
		Provider:    provider,
	}
}

// storeRecords looks up the key's closest nodes and replicates recs
// onto them. The node keeps a local replica too when it belongs to
// the key's neighborhood (fewer than k known holders, or self closer
// than the k-th) — slight over-replication beats a coverage hole.
func (n *Node) storeRecords(tctx trace.Context, key ID, recs []Record) {
	out := n.lookup(tctx, key, nil)
	targets := out.contacts
	if len(targets) < n.cfg.K || CompareDistance(n.self, targets[len(targets)-1].ID, key) < 0 {
		n.records.put(key, recs, n.clk.Now())
	}
	// Chunk payloads are marshaled once, then replicated target-major so
	// each replica is one trace span covering all its chunk frames.
	payloads := make([][]byte, 0, (len(recs)+storeChunk-1)/storeChunk)
	for start := 0; start < len(recs); start += storeChunk {
		end := start + storeChunk
		if end > len(recs) {
			end = len(recs)
		}
		payloads = append(payloads, marshal(storePayload{Key: key, Records: recs[start:end]}))
	}
	for _, t := range targets {
		sp := n.tr().Start(tctx, "store")
		sp.SetPeer(string(t.Peer))
		sctx := sp.ContextOr(tctx)
		for _, payload := range payloads {
			n.mFanout.Inc()
			err := n.ep.Send(transport.Message{To: t.Peer, Type: MsgStore, Payload: payload,
				TraceID: sctx.Trace, SpanID: sctx.Span})
			sp.AddMsgs(1, int64(len(payload)))
			if err != nil {
				sp.SetErr(err)
				if transport.IsPeerDead(err) {
					n.table.Remove(t.Peer)
				}
			}
		}
		sp.Finish()
	}
}

// Unpublish implements p2p.Network: withdraw the record from both
// keys' neighborhoods. Replicas on nodes that miss the unstore (loss,
// stale holders) age out at RecordTTL.
func (n *Node) Unpublish(id index.DocID) error {
	if n.isClosed() {
		return p2p.ErrClosed
	}
	sp := n.tr().Root("unpublish")
	defer sp.Finish()
	tctx := sp.Context()
	doc, err := n.store.Get(id)
	n.store.Delete(id)
	if err == nil {
		n.unstore(tctx, KeyForCommunity(doc.CommunityID), id)
	}
	n.unstore(tctx, KeyForDoc(id), id)
	return nil
}

func (n *Node) unstore(tctx trace.Context, key ID, id index.DocID) {
	out := n.lookup(tctx, key, nil)
	n.records.remove(key, id, n.ep.ID())
	payload := marshal(unstorePayload{Key: key, DocID: id, Provider: n.ep.ID()})
	for _, t := range out.contacts {
		sp := n.tr().Start(tctx, "unstore")
		sp.SetPeer(string(t.Peer))
		sctx := sp.ContextOr(tctx)
		_ = n.ep.Send(transport.Message{To: t.Peer, Type: MsgUnstore, Payload: payload,
			TraceID: sctx.Trace, SpanID: sctx.Span})
		sp.AddMsgs(1, int64(len(payload)))
		sp.Finish()
	}
}

// Search implements p2p.Network: one iterative FIND_VALUE toward the
// community key. Holders filter server-side, the caller unions the
// replicas (plus its own held slice and its own store), dedupes by
// (DocID, Provider), and returns results in canonical order with
// Hops set to the lookup's round count. Unlike the centralized
// protocol there is no single point whose loss fails the query:
// under loss the lookup routes around unresponsive nodes and degrades
// gracefully instead of erroring.
func (n *Node) Search(communityID string, f query.Filter, opts p2p.SearchOptions) ([]p2p.Result, error) {
	if n.isClosed() {
		n.nm.CountError(p2p.ErrClosed)
		return nil, p2p.ErrClosed
	}
	if f == nil {
		f = query.MatchAll{}
	}
	start := n.clk.Now()
	sp := n.tr().Start(opts.Trace, "search")
	sp.SetCommunity(communityID)
	defer sp.Finish()
	key := KeyForCommunity(communityID)
	out := n.lookup(sp.ContextOr(opts.Trace), key, &valueQuery{communityID: communityID, filter: f.String(), limit: opts.Limit})
	merged := make(map[recordKey]Record, len(out.records))
	for _, rec := range out.records {
		// Holders filter server-side; re-check here so a skewed or
		// malicious holder cannot inject non-matching records.
		if rec.CommunityID != communityID || !f.Match(rec.Attrs) {
			continue
		}
		merged[recordKey{rec.DocID, rec.Provider}] = rec
	}
	for _, rec := range n.records.get(key, n.clk.Now(), communityID, f, 0) {
		merged[recordKey{rec.DocID, rec.Provider}] = rec
	}
	for _, doc := range n.store.Search(communityID, f, 0) {
		rec := recordFor(doc, n.ep.ID())
		merged[recordKey{rec.DocID, rec.Provider}] = rec
	}
	recs := make([]Record, 0, len(merged))
	for _, rec := range merged {
		recs = append(recs, rec)
	}
	sortRecords(recs)
	if opts.Limit > 0 && len(recs) > opts.Limit {
		recs = recs[:opts.Limit]
	}
	results := make([]p2p.Result, len(recs))
	for i, rec := range recs {
		results[i] = p2p.Result{
			DocID:       rec.DocID,
			Provider:    rec.Provider,
			CommunityID: rec.CommunityID,
			Title:       rec.Title,
			Attrs:       rec.Attrs,
			Hops:        out.rounds,
		}
	}
	n.nm.ObserveSearch(n.clk, start, len(results))
	return results, nil
}

// Providers returns the provider records replicated under a
// document's key: the DocID-keyed half of the keyspace.
func (n *Node) Providers(id index.DocID) []Record {
	sp := n.tr().Root("providers")
	defer sp.Finish()
	out := n.lookup(sp.Context(), KeyForDoc(id), &valueQuery{filter: query.MatchAll{}.String()})
	merged := make(map[recordKey]Record, len(out.records))
	for _, rec := range out.records {
		merged[recordKey{rec.DocID, rec.Provider}] = rec
	}
	for _, rec := range n.records.get(KeyForDoc(id), n.clk.Now(), "", nil, 0) {
		merged[recordKey{rec.DocID, rec.Provider}] = rec
	}
	recs := make([]Record, 0, len(merged))
	for _, rec := range merged {
		if rec.DocID == id {
			recs = append(recs, rec)
		}
	}
	sortRecords(recs)
	return recs
}

// Retrieve implements p2p.Network via the shared direct fetch
// protocol.
func (n *Node) Retrieve(id index.DocID, from transport.PeerID) (*index.Document, error) {
	if from == n.PeerID() {
		return n.store.Get(id)
	}
	sp := n.tr().Root("fetch")
	sp.SetPeer(string(from))
	defer sp.Finish()
	doc, err := p2p.RetrieveFrom(n.clk, n.ep, n.pending, &sp, id, from, 0)
	if err != nil {
		n.nm.CountError(err)
		return nil, err
	}
	n.nm.Fetches.Inc()
	return doc, nil
}

// RetrieveAttachment implements p2p.Network.
func (n *Node) RetrieveAttachment(uri string, from transport.PeerID) ([]byte, error) {
	sp := n.tr().Root("attachment")
	sp.SetPeer(string(from))
	defer sp.Finish()
	return p2p.RetrieveAttachmentFrom(n.clk, n.ep, n.pending, &sp, uri, from, 0)
}

// CheckLiveness probes the least-recently-seen contact of every
// bucket and evicts the ones that fail to answer, promoting
// replacement-cache candidates into the freed slots — the scheduled
// LRU eviction half of bucket maintenance. A successful probe rotates
// the contact to the fresh end (its pong is traffic), so repeated
// rounds sweep whole buckets. Returns how many contacts were evicted.
func (n *Node) CheckLiveness() int {
	evicted := 0
	for _, c := range n.table.Oldest() {
		if !n.pingPeer(c.Peer) {
			n.table.Remove(c.Peer)
			evicted++
		}
	}
	return evicted
}

// pingPeer probes one contact. Under message loss a live contact can
// fail the probe and be evicted; it re-enters the table on next
// contact, as in Kademlia.
func (n *Node) pingPeer(peer transport.PeerID) bool {
	reqID, ch := n.pending.Create()
	err := n.ep.Send(transport.Message{
		To:      peer,
		Type:    MsgPing,
		Payload: marshal(pingPayload{ReqID: reqID}),
	})
	if err != nil {
		n.pending.Drop(reqID)
		return false
	}
	if _, err := p2p.Await(n.clk, n.ep.Synchronous(), ch, n.cfg.RPCTimeout); err != nil {
		n.pending.Drop(reqID)
		return false
	}
	return true
}

// Refresh is the DHT's rehome-equivalent, run on the caller's
// schedule (the scenario driver paces it on the virtual clock):
// bucket repair (CheckLiveness plus a self-lookup that re-learns the
// neighborhood) followed by republication of every locally stored
// document through p2p.ReannounceLocal — restarting record TTLs and
// re-replicating onto the current closest-k after churn moved them.
func (n *Node) Refresh() error {
	if n.isClosed() {
		return p2p.ErrClosed
	}
	sp := n.tr().Root("refresh")
	defer sp.Finish()
	tctx := sp.Context()
	n.CheckLiveness()
	n.lookup(tctx, n.self, nil)
	return p2p.ReannounceLocal(n.store, func(docs []*index.Document) error {
		return n.announce(tctx, docs)
	})
}

// Close implements p2p.Network.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	return n.ep.Close()
}

func (n *Node) isClosed() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.closed
}

func (n *Node) handle(msg transport.Message) {
	// Every inbound message is evidence its sender is alive: the
	// Kademlia rule that keeps routing state fresh for free.
	n.table.Observe(msg.From)
	switch msg.Type {
	case MsgPing:
		var req pingPayload
		if err := json.Unmarshal(msg.Payload, &req); err != nil {
			return
		}
		_ = n.ep.Send(transport.Message{
			To:      msg.From,
			Type:    MsgPong,
			Payload: marshal(pingPayload{ReqID: req.ReqID}),
		})
	case MsgFindNode:
		var req findNodePayload
		if err := json.Unmarshal(msg.Payload, &req); err != nil {
			return
		}
		sp, tctx := n.startSpan(msg, "findnode.serve")
		payload := marshal(findNodeReplyPayload{
			ReqID: req.ReqID,
			Peers: contactPeers(n.table.Closest(req.Target, n.cfg.K)),
		})
		_ = n.ep.Send(transport.Message{
			To:      msg.From,
			Type:    MsgFindNodeReply,
			Payload: payload,
			TraceID: tctx.Trace,
			SpanID:  tctx.Span,
		})
		sp.AddMsgs(1, int64(len(payload)))
		sp.Finish()
	case MsgFindValue:
		var req findValuePayload
		if err := json.Unmarshal(msg.Payload, &req); err != nil {
			return
		}
		sp, tctx := n.startSpan(msg, "findvalue.serve")
		sp.SetCommunity(req.CommunityID)
		reply := findValueReplyPayload{
			ReqID: req.ReqID,
			Peers: contactPeers(n.table.Closest(req.Key, n.cfg.K)),
		}
		// An unparseable filter yields no records, never all of them:
		// the reply still carries contacts so the lookup can route on,
		// but failing open to the whole record set would let one
		// malformed query read the entire key.
		if f, err := query.Parse(req.Filter); err == nil {
			reply.Records = n.records.get(req.Key, n.clk.Now(), req.CommunityID, f, req.Limit)
		}
		payload := marshal(reply)
		_ = n.ep.Send(transport.Message{
			To:      msg.From,
			Type:    MsgFindValueReply,
			Payload: payload,
			TraceID: tctx.Trace,
			SpanID:  tctx.Span,
		})
		sp.AddMsgs(1, int64(len(payload)))
		sp.Finish()
	case MsgStore:
		var req storePayload
		if err := json.Unmarshal(msg.Payload, &req); err != nil {
			return
		}
		sp, _ := n.startSpan(msg, "store.serve")
		// Provenance: a peer may only store records it provides
		// itself (every legitimate publish/refresh does exactly
		// that), so one peer cannot forge records under another's
		// name. Would need revisiting for path-caching STOREs.
		kept := req.Records[:0]
		for _, rec := range req.Records {
			if rec.Provider == msg.From {
				kept = append(kept, rec)
			}
		}
		n.records.put(req.Key, kept, n.clk.Now())
		sp.Finish()
	case MsgUnstore:
		var req unstorePayload
		if err := json.Unmarshal(msg.Payload, &req); err != nil {
			return
		}
		// Same provenance rule: only the providing peer can withdraw
		// its own record.
		if req.Provider != msg.From {
			return
		}
		sp, _ := n.startSpan(msg, "unstore.serve")
		n.records.remove(req.Key, req.DocID, req.Provider)
		sp.Finish()
	case MsgPong, MsgFindNodeReply, MsgFindValueReply, p2p.MsgFetchReply, p2p.MsgAttachmentReply:
		var probe struct {
			ReqID uint64 `json:"reqId"`
		}
		if err := json.Unmarshal(msg.Payload, &probe); err != nil {
			return
		}
		n.pending.Resolve(probe.ReqID, msg.Payload)
	case p2p.MsgFetch:
		p2p.ServeFetch(n.tr(), n.ep, n.store, msg)
	case p2p.MsgAttachment:
		n.mu.RLock()
		p := n.attach
		n.mu.RUnlock()
		p2p.ServeAttachment(n.tr(), n.ep, p, msg)
	}
}

// startSpan opens a handler span for an inbound traced frame and
// returns it with the context downstream sends should carry.
func (n *Node) startSpan(msg transport.Message, op string) (trace.ActiveSpan, trace.Context) {
	inCtx := trace.Context{Trace: msg.TraceID, Span: msg.SpanID}
	sp := n.tr().StartAt(inCtx, op, transport.ChainOffset(n.ep))
	sp.SetPeer(string(msg.From))
	return sp, sp.ContextOr(inCtx)
}

// contactPeers projects contacts to their peer IDs for the wire.
func contactPeers(cs []Contact) []transport.PeerID {
	out := make([]transport.PeerID, len(cs))
	for i, c := range cs {
		out[i] = c.Peer
	}
	return out
}
